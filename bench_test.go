// Package ruru_bench holds the top-level benchmark targets, one per
// experiment in DESIGN.md §4 / EXPERIMENTS.md. Each wraps the corresponding
// experiments.E* harness (or the hot kernel it measures) in a testing.B so
// `go test -bench=.` regenerates the performance side of the evaluation;
// `cmd/ruru-bench` prints the full human-readable tables.
package ruru_bench

import (
	"io"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"

	"ruru/internal/core"
	"ruru/internal/experiments"
	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/nic"
	"ruru/internal/pkt"
	"ruru/internal/rss"
	"ruru/internal/tsdb"
)

func world(b *testing.B) *geo.World {
	b.Helper()
	w, err := geo.NewWorld(geo.WorldOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkE1HandshakeEngine measures the measurement fast path: parse +
// RSS hash + handshake-table processing per packet, on a realistic mix.
func BenchmarkE1HandshakeEngine(b *testing.B) {
	g, err := gen.New(gen.Config{
		Seed: 1, World: world(b),
		FlowRate: 10000, Duration: 1e15,
		DataSegments: 2, UDPRate: 2000, MidstreamRate: 200,
	})
	if err != nil {
		b.Fatal(err)
	}
	trace := make([]gen.TracePacket, 0, 100000)
	var p gen.Packet
	var bytes int64
	for len(trace) < 100000 && g.Next(&p) {
		frame := make([]byte, len(p.Frame))
		copy(frame, p.Frame)
		trace = append(trace, gen.TracePacket{TS: p.TS, Frame: frame})
		bytes += int64(len(frame))
	}
	table := core.NewHandshakeTable(core.TableConfig{Capacity: 1 << 17, Timeout: 1 << 62})
	h := rss.NewSymmetric()
	var parser pkt.Parser
	var sum pkt.Summary
	var m core.Measurement
	b.SetBytes(bytes / int64(len(trace)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := &trace[i%len(trace)]
		if err := parser.Parse(tp.Frame, &sum); err != nil || !sum.IsTCP() {
			continue
		}
		hash := h.HashTuple(sum.Src(), sum.Dst(), sum.TCP.SrcPort, sum.TCP.DstPort)
		table.Process(&sum, tp.TS, hash, &m)
	}
}

// BenchmarkIngest measures the raw ingest hand-off (inject → RSS queue →
// RxBurst → buffer recycle) per injection mode: the per-frame path versus
// the batched InjectBurst path that amortizes ring synchronization across
// a whole burst. The Frame→ns/op ratio between the two sub-benchmarks is
// the tentpole's amortization win.
func BenchmarkIngest(b *testing.B) {
	const burst = 64
	mkPort := func(b *testing.B) (*nic.Port, *nic.Mempool) {
		b.Helper()
		pool := nic.NewMempool(8192, 2048)
		port, err := nic.NewPort(nic.PortConfig{Queues: 1, QueueDepth: 4096, Pool: pool})
		if err != nil {
			b.Fatal(err)
		}
		return port, pool
	}
	frame := func(b *testing.B) []byte {
		b.Helper()
		spec := &pkt.TCPFrameSpec{
			SrcMAC: pkt.MAC{1}, DstMAC: pkt.MAC{2},
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("192.0.2.1"),
			SrcPort: 40000, DstPort: 443, Flags: pkt.TCPSyn, Window: 65535,
		}
		buf := make([]byte, 128)
		n, err := pkt.BuildTCPFrame(buf, spec)
		if err != nil {
			b.Fatal(err)
		}
		return buf[:n]
	}

	b.Run("frame", func(b *testing.B) {
		port, _ := mkPort(b)
		f := frame(b)
		bufs := make([]*nic.Buf, burst)
		b.ReportAllocs()
		b.SetBytes(int64(len(f)))
		for i := 0; i < b.N; i++ {
			port.InjectPreclassified(f, int64(i), uint32(i))
			if i%burst == burst-1 {
				n, _ := port.RxBurst(0, bufs)
				for j := 0; j < n; j++ {
					bufs[j].Free()
				}
			}
		}
		b.StopTimer()
		n, _ := port.RxBurst(0, bufs)
		for j := 0; j < n; j++ {
			bufs[j].Free()
		}
	})
	b.Run("burst", func(b *testing.B) {
		port, _ := mkPort(b)
		f := frame(b)
		frames := make([]nic.Frame, burst)
		hashes := make([]uint32, burst)
		for i := range frames {
			frames[i] = nic.Frame{Data: f, TS: int64(i)}
			hashes[i] = uint32(i)
		}
		bufs := make([]*nic.Buf, burst)
		b.ReportAllocs()
		b.SetBytes(int64(len(f)))
		for i := 0; i < b.N; i += burst {
			port.InjectPreclassifiedBurst(frames, hashes)
			n, _ := port.RxBurst(0, bufs)
			for j := 0; j < n; j++ {
				bufs[j].Free()
			}
		}
		b.StopTimer()
		n, _ := port.RxBurst(0, bufs)
		for j := 0; j < n; j++ {
			bufs[j].Free()
		}
	})
}

// BenchmarkE2PipelineScaling runs the multi-queue engine at each queue
// count (the Fig. 2 scaling claim) inside one bench iteration.
func BenchmarkE2PipelineScaling(b *testing.B) {
	for _, q := range []int{1, 2, 4, 8} {
		b.Run(benchName("queues", q), func(b *testing.B) {
			b.ReportAllocs()
			rows, err := experiments.E2(experiments.E2Config{
				Seed: 1, QueueList: []int{q},
				TracePkts: 100000, RunPackets: int64(b.N) + 200000,
			}, io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rows[0].Mpps, "Mpps")
			b.ReportMetric(rows[0].Gbps, "Gbps")
		})
	}
}

// BenchmarkE3Fanout measures WebSocket broadcast with 8 live clients.
func BenchmarkE3Fanout(b *testing.B) {
	b.ReportAllocs()
	rows, err := experiments.E3(experiments.E3Config{
		ClientList: []int{8}, Messages: max(b.N, 5000),
	}, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rows[0].MaxAggregateRate, "msg/s-aggregate")
	b.ReportMetric(rows[0].MaxPerClientRate, "msg/s-per-client")
}

// BenchmarkE6GeoLookup measures enrichment database lookups.
func BenchmarkE6GeoLookup(b *testing.B) {
	w := world(b)
	db := w.DB()
	probe := w.Addr(3, 2, 12345)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Lookup(probe)
	}
}

// BenchmarkE7Toeplitz measures the software RSS hash for v4 and v6 tuples.
func BenchmarkE7Toeplitz(b *testing.B) {
	h := rss.NewSymmetric()
	w := world(b)
	v4a, v4b := w.Addr(0, 0, 1), w.Addr(1, 0, 2)
	v6a, v6b := w.Addr6(0, 0, 1), w.Addr6(1, 0, 2)
	b.Run("ipv4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.HashTuple(v4a, v4b, 40000, 443)
		}
	})
	b.Run("ipv6", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.HashTuple(v6a, v6b, 40000, 443)
		}
	})
}

// BenchmarkConsume measures the sink stage's drain rate — enriched topic →
// sharded workers → batched, stripe-locked TSDB writes — at 1 worker (the
// old single-goroutine consumer topology) versus 4. The msg/s ratio between
// the sub-benchmarks is the sharded-sink scaling claim; on a single-CPU box
// the win comes from batching (one ring wakeup, one stripe lock and at most
// one WS frame per burst), not parallelism, so record the measured ratio.
func BenchmarkConsume(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			b.ReportAllocs()
			rows, err := experiments.E11(experiments.E11Config{
				WorkerList: []int{workers}, Messages: max(b.N, 20000),
			}, io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			if rows[0].Drops != 0 {
				b.Fatalf("sink dropped %d measurements", rows[0].Drops)
			}
			b.ReportMetric(rows[0].Rate, "msg/s")
		})
	}
}

// BenchmarkDBWriteBatch measures concurrent batched TSDB ingest with the
// single global lock (stripes-1, the old layout) versus striped locking.
// Each op writes one 64-point batch; every goroutine owns its own series so
// stripe contention is the only variable. Retention keeps memory bounded at
// any b.N.
func BenchmarkDBWriteBatch(b *testing.B) {
	const batchLen = 64
	for _, stripes := range []int{1, 8} {
		b.Run(benchName("stripes", stripes), func(b *testing.B) {
			db := tsdb.Open(tsdb.Options{ShardDuration: 1e9, Retention: 2e9, Stripes: stripes})
			var worker atomic.Int64
			// One shared clock for all goroutines: with per-goroutine
			// clocks, a writer descheduled behind the leader would fall
			// past the retention horizon and its batches would take the
			// cheap drop path instead of the series append being measured.
			var clock atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				city := "City" + itoa(int(worker.Add(1)))
				batch := make([]tsdb.Point, batchLen)
				for pb.Next() {
					// Reserve a window of batchLen ticks and fill it.
					t := clock.Add(batchLen*1e6) - batchLen*1e6
					for i := range batch {
						t += 1e6
						batch[i] = tsdb.Point{
							Name: "latency",
							Tags: []tsdb.Tag{
								{Key: "src_city", Value: city},
								{Key: "dst_city", Value: "Los Angeles"},
							},
							Fields: []tsdb.Field{
								{Key: "internal_ms", Value: 15},
								{Key: "external_ms", Value: 130},
								{Key: "total_ms", Value: 145},
							},
							Time: t,
						}
					}
					if _, err := db.WriteBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
			reportPPS(b, batchLen)
		})
	}
}

// BenchmarkDBWriteBatchRef is BenchmarkDBWriteBatch on the interned-handle
// fast path: same series/batch/clock shape, but each goroutine resolves its
// series to a SeriesRef once and then writes RefPoints — no per-point key
// building, tag sorting, map probing or field-name hashing. The ns/op and
// allocs/op deltas against BenchmarkDBWriteBatch are the tentpole numbers
// tracked in BENCH_*.json.
func BenchmarkDBWriteBatchRef(b *testing.B) {
	const batchLen = 64
	for _, stripes := range []int{1, 8} {
		b.Run(benchName("stripes", stripes), func(b *testing.B) {
			db := tsdb.Open(tsdb.Options{ShardDuration: 1e9, Retention: 2e9, Stripes: stripes})
			var worker atomic.Int64
			var clock atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				city := "City" + itoa(int(worker.Add(1)))
				ref, err := db.Ref("latency",
					[]tsdb.Tag{
						{Key: "src_city", Value: city},
						{Key: "dst_city", Value: "Los Angeles"},
					},
					"internal_ms", "external_ms", "total_ms")
				if err != nil {
					b.Fatal(err)
				}
				batch := make([]tsdb.RefPoint, batchLen)
				vals := make([]float64, 3*batchLen)
				for i := range batch {
					v := vals[3*i : 3*i+3 : 3*i+3]
					v[0], v[1], v[2] = 15, 130, 145
					batch[i] = tsdb.RefPoint{Ref: ref, Vals: v}
				}
				for pb.Next() {
					t := clock.Add(batchLen*1e6) - batchLen*1e6
					for i := range batch {
						t += 1e6
						batch[i].Time = t
					}
					if _, err := db.WriteBatchRef(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
			reportPPS(b, batchLen)
		})
	}
}

// BenchmarkWriteWAL prices the durability tentpole: one 64-point batched
// write in-memory versus WAL-logged under each fsync policy. The
// mem→interval ratio is the acceptance number (≤15% overhead at the
// production default); "always" pays a real fsync per op when a single
// goroutine can't group-commit, and is here to make that cost visible
// rather than to win.
func BenchmarkWriteWAL(b *testing.B) {
	const batchLen = 64
	for _, mode := range []string{"mem", "wal-off", "wal-interval", "wal-always"} {
		b.Run(mode, func(b *testing.B) {
			opts := tsdb.Options{}
			if mode != "mem" {
				opts.Persist = &tsdb.PersistOptions{
					Dir:   b.TempDir(),
					Fsync: tsdb.FsyncPolicy(strings.TrimPrefix(mode, "wal-")),
					// Manual checkpoints only: the ticker would add noise.
					CheckpointEvery: -1,
				}
			}
			db, err := tsdb.OpenDB(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			batch := make([]tsdb.Point, batchLen)
			var t int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					t += 1e6
					batch[j] = tsdb.Point{
						Name: "latency",
						Tags: []tsdb.Tag{
							{Key: "src_city", Value: "Auckland"},
							{Key: "dst_city", Value: "Los Angeles"},
						},
						Fields: []tsdb.Field{
							{Key: "internal_ms", Value: 15},
							{Key: "external_ms", Value: 130},
							{Key: "total_ms", Value: 145},
						},
						Time: t,
					}
				}
				if _, err := db.WriteBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			reportPPS(b, batchLen)
		})
	}
}

// BenchmarkE8TSDB measures point ingest (write path of every measurement).
func BenchmarkE8TSDB(b *testing.B) {
	db := tsdb.Open(tsdb.Options{ShardDuration: 600e9})
	p := tsdb.Point{
		Name: "latency",
		Tags: []tsdb.Tag{
			{Key: "src_city", Value: "Auckland"},
			{Key: "dst_city", Value: "Los Angeles"},
			{Key: "dst_asn", Value: "64004"},
		},
		Fields: []tsdb.Field{
			{Key: "internal_ms", Value: 15},
			{Key: "external_ms", Value: 130},
			{Key: "total_ms", Value: 145},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Time = int64(i) * 2e6
		if err := db.Write(&p); err != nil {
			b.Fatal(err)
		}
	}
	reportPPS(b, 1)
}

// BenchmarkE9MQ measures one bus publish with a draining subscriber — the
// per-measurement cost of the modular ("ZeroMQ") interconnect.
func BenchmarkE9MQ(b *testing.B) {
	b.ReportAllocs()
	rows, err := experiments.E9(experiments.E9Config{
		Seed: 1, Messages: max(b.N, 10000),
	}, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rows[1].NsPerMsg, "ns/msg-1hop")
	b.ReportMetric(rows[2].NsPerMsg, "ns/msg-2hop")
}

// reportPPS records sustained points/second for a benchmark whose every op
// writes pointsPerOp TSDB points — the throughput axis of the BENCH_*.json
// trajectory.
func reportPPS(b *testing.B, pointsPerOp int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)*float64(pointsPerOp)/s, "pps")
	}
}

func benchName(k string, v int) string {
	return k + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
