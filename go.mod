module ruru

go 1.24
