// Quickstart: generate 10 seconds of synthetic Auckland↔Los Angeles
// traffic, measure every TCP handshake at the tap, and print the per-flow
// internal/external/total latency split — the paper's Figure 1 in action.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ruru/internal/core"
	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/pkt"
	"ruru/internal/rss"
	"ruru/internal/stats"
)

func main() {
	// 1. A synthetic world: city catalogue + geo/AS database. City 0 is
	// Auckland (the tap location), city 1 Los Angeles.
	world, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A traffic source: 50 flows/s from NZ clients to US servers for
	// 10 virtual seconds, with data segments and background noise.
	g, err := gen.New(gen.Config{
		Seed: 7, World: world,
		FlowRate: 50, Duration: 10e9,
		ClientCities: []int{0}, ServerCities: []int{1},
		DataSegments: 2, UDPRate: 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The measurement engine: a handshake table fed with parsed
	// packets, exactly what each per-queue worker runs in the pipeline.
	table := core.NewHandshakeTable(core.TableConfig{Capacity: 1 << 12})
	hasher := rss.NewSymmetric()

	var (
		parser pkt.Parser
		p      gen.Packet
		sum    pkt.Summary
		m      core.Measurement
		histT  = stats.NewLatencyHist()
		shown  int
	)
	fmt.Println("flow                                            internal   external      total")
	for g.Next(&p) {
		if err := parser.Parse(p.Frame, &sum); err != nil || !sum.IsTCP() {
			continue
		}
		hash := hasher.HashTuple(sum.Src(), sum.Dst(), sum.TCP.SrcPort, sum.TCP.DstPort)
		if table.Process(&sum, p.TS, hash, &m) {
			histT.Add(m.Total)
			if shown < 10 {
				fmt.Printf("%-44s %7.2fms  %7.2fms  %7.2fms\n",
					m.Flow, float64(m.Internal)/1e6, float64(m.External)/1e6, float64(m.Total)/1e6)
				shown++
			}
		}
	}
	fmt.Printf("\n%d flows measured — total RTT min %.1fms / median %.1fms / mean %.1fms / max %.1fms\n",
		histT.Count(),
		float64(histT.Min())/1e6, float64(histT.Median())/1e6,
		histT.Mean()/1e6, float64(histT.Max())/1e6)
	fmt.Println("(internal = client↔tap RTT, external = tap↔server RTT; tap is in Auckland)")
}
