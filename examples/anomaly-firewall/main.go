// anomaly-firewall reproduces the paper's §3 anecdote end to end: a
// periodic firewall update adds ~4000 ms to every connection that starts
// inside a short nightly window. The example runs the same measurement
// stream through (a) Ruru's per-pair spike detector and (b) a 5-minute
// SNMP-style average, then prints both views — the glitch is obvious in
// one and invisible in the other.
//
// Run with: go run ./examples/anomaly-firewall
package main

import (
	"fmt"
	"log"
	"strings"

	"ruru/internal/anomaly"
	"ruru/internal/core"
	"ruru/internal/experiments"
	"ruru/internal/gen"
	"ruru/internal/geo"
)

func main() {
	world, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// 30 virtual minutes, 200 flows/s, "nightly" window every 5 minutes:
	// 500ms long, +4000ms external latency for flows that start inside it.
	g, err := gen.New(gen.Config{
		Seed: 42, World: world,
		FlowRate: 200, Duration: 1800e9,
		ClientCities: []int{0, 2, 3}, ServerCities: []int{1, 7, 9},
		FirewallWindows: []gen.Window{{
			Every: 300e9, Offset: 60e9, Length: 500e6, Extra: 4000e6,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	spikes := anomaly.NewSpikeBank(anomaly.SpikeConfig{}, 0)
	snmp := anomaly.NewSNMPPoller(300e9)
	var events []anomaly.Event

	rep := experiments.Replay{
		Queues: 4,
		Table:  core.TableConfig{Capacity: 1 << 16, Timeout: 60e9},
		OnMeasure: func(m *core.Measurement) {
			snmp.Offer(m.ACKTime, m.Total)
			pair := "?"
			if cs, ok := world.CityOf(m.Flow.Client); ok {
				if cd, ok := world.CityOf(m.Flow.Server); ok {
					pair = cs.Name + "→" + cd.Name
				}
			}
			if ev := spikes.Offer(pair, m.ACKTime, m.Total); ev != nil {
				events = append(events, *ev)
			}
		},
	}
	st := rep.Run(g)
	snmp.Flush()

	fmt.Printf("processed %d packets, measured %d handshakes\n\n", st.Packets, st.Tables.Completed)

	fmt.Println("── What Ruru sees ────────────────────────────────────────────")
	fmt.Printf("%d latency spikes detected; first ten:\n", len(events))
	for i, ev := range events {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(events)-10)
			break
		}
		fmt.Printf("  t=%7.1fs  %s\n", float64(ev.Time)/1e9, ev.Detail)
	}

	fmt.Println("\n── What 5-minute SNMP polling sees ───────────────────────────")
	fmt.Println("  interval    mean latency")
	for _, s := range snmp.Samples() {
		bar := strings.Repeat("█", int(s.MeanNs/1e6/20))
		fmt.Printf("  t=%4ds     %7.1fms %s\n", s.Time/1e9, s.MeanNs/1e6, bar)
	}
	fmt.Println("\nThe +4000ms glitch hits only flows started in a 500ms window, so it")
	fmt.Println("moves the 5-minute average by a few percent — no SNMP threshold would")
	fmt.Println("fire. Ruru flags every affected flow the moment its handshake completes.")
}
