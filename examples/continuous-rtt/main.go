// continuous-rtt demonstrates the extension beyond the paper: RTT
// measurement that keeps working after connection setup, via TCP timestamp
// echoes (the pping technique). The scenario includes flows established
// before the capture started — the handshake engine structurally cannot
// measure those, but the timestamp tracker can.
//
// Run with: go run ./examples/continuous-rtt
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/ruru"
	"ruru/internal/tsdb"
)

func main() {
	world, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := ruru.New(ruru.Config{
		GeoDB: world.DB(), Queues: 4,
		TrackTimestamps: true, // the extension switch
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			log.Printf("pipeline close: %v", err)
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)

	// 60 virtual seconds: new connections AND pre-established flows
	// (midstream) that never show a handshake, all carrying RFC 7323
	// timestamp options, request/response paced.
	g, err := gen.New(gen.Config{
		Seed: 5, World: world,
		FlowRate: 100, Duration: 60e9,
		ClientCities: []int{0}, ServerCities: []int{1, 12, 20},
		DataSegments: 4, DataSpacing: 400e6,
		MidstreamRate:     25,
		EmitTCPTimestamps: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	g.RunToPort(p.Port, false)

	// Let the pipeline drain.
	for prev := uint64(0); ; {
		time.Sleep(200 * time.Millisecond)
		st := p.Stats()
		if st.TSSamples == prev && st.Engine.Completed > 0 {
			break
		}
		prev = st.TSSamples
	}

	st := p.Stats()
	midstream := 0
	for _, tr := range g.Truths() {
		if tr.Midstream {
			midstream++
		}
	}
	fmt.Printf("handshake measurements:     %6d  (one per NEW connection)\n", st.Engine.Completed)
	fmt.Printf("continuous RTT samples:     %6d  (ongoing, via timestamp echoes)\n", st.TSSamples)
	fmt.Printf("pre-established flows:      %6d  (invisible to handshake measurement)\n\n", midstream)

	// The Grafana-style view of the in-stream measurement.
	res, err := p.DB.Execute(tsdb.Query{
		Measurement: "rtt_stream", Field: "rtt_ms",
		Start: 0, End: 120e9,
		GroupBy: "echoer_city",
		Aggs:    []tsdb.AggKind{tsdb.AggCount, tsdb.AggMedian, tsdb.AggP99},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("in-stream RTT by echoing city (tap in Auckland):")
	fmt.Printf("  %-16s %8s %12s %12s\n", "echoer", "samples", "median", "p99")
	for _, r := range res {
		b := r.Buckets[0]
		fmt.Printf("  %-16s %8d %10.1fms %10.1fms\n",
			r.Group, b.Count, b.Aggs[tsdb.AggMedian], b.Aggs[tsdb.AggP99])
	}
	fmt.Println("\nEvery row includes flows whose handshake was never observed — the")
	fmt.Println("tracker measures any established TCP flow with timestamps enabled.")
}
