// continuous-rtt demonstrates the extension beyond the paper: RTT
// measurement that keeps working after connection setup. Two trackers
// cooperate: TCP timestamp echoes (the pping technique) cover flows that
// carry the RFC 7323 option, and data→ACK sequence matching covers flows
// that do NOT — real captures contain both. The scenario includes flows
// established before the capture started: the handshake engine
// structurally cannot measure those, but both trackers can.
//
// Run with: go run ./examples/continuous-rtt
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/ruru"
	"ruru/internal/tsdb"
)

func main() {
	world, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := ruru.New(ruru.Config{
		GeoDB: world.DB(), Queues: 4,
		TrackTimestamps: true, // pping tracker: flows WITH the TS option
		TrackSeq:        true, // seq tracker: flows WITHOUT it
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			log.Printf("pipeline close: %v", err)
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)

	// Two 60-virtual-second workloads into the same tap: one whose stacks
	// negotiate RFC 7323 timestamps, one whose stacks do not (its server
	// ACKs still pair with client data ranges — the seq tracker's input).
	// Both include pre-established (midstream) flows with no handshake.
	run := func(seed int64, emitTS bool) {
		g, err := gen.New(gen.Config{
			Seed: seed, World: world,
			FlowRate: 100, Duration: 60e9,
			ClientCities: []int{0}, ServerCities: []int{1, 12, 20},
			DataSegments: 4, DataSpacing: 400e6,
			MidstreamRate:     25,
			EmitTCPTimestamps: emitTS,
		})
		if err != nil {
			log.Fatal(err)
		}
		g.RunToPort(p.Port, false)
	}
	run(5, true)
	run(6, false)

	// Let the pipeline drain: both trackers' stored-sample counters stable.
	for prevTS, prevSeq := uint64(0), uint64(0); ; {
		time.Sleep(200 * time.Millisecond)
		st := p.Stats()
		if st.TSSamples == prevTS && st.SeqSamples == prevSeq && st.Engine.Completed > 0 {
			break
		}
		prevTS, prevSeq = st.TSSamples, st.SeqSamples
	}

	st := p.Stats()
	fmt.Printf("handshake measurements:     %6d  (one per NEW connection)\n", st.Engine.Completed)
	fmt.Printf("continuous RTT samples:     %6d  via timestamp echoes (mode=ts)\n", st.TSSamples)
	fmt.Printf("                            %6d  via sequence matching (mode=seq — no TS option on the wire)\n", st.SeqSamples)
	fmt.Printf("loss events classified:     %6d  (retrans %d / rto %d / dupack %d)\n\n",
		st.Seq.Retrans+st.Seq.RTO+st.Seq.DupACK, st.Seq.Retrans, st.Seq.RTO, st.Seq.DupACK)

	// The Grafana-style view: one rtt_stream measurement, the mode tag
	// says which technique produced each sample.
	res, err := p.DB.Execute(tsdb.Query{
		Measurement: "rtt_stream", Field: "rtt_ms",
		Start: 0, End: 120e9,
		GroupBy: "mode",
		Aggs:    []tsdb.AggKind{tsdb.AggCount, tsdb.AggMedian, tsdb.AggP99},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("in-stream RTT by measurement mode (tap in Auckland):")
	fmt.Printf("  %-8s %8s %12s %12s\n", "mode", "samples", "median", "p99")
	for _, r := range res {
		b := r.Buckets[0]
		fmt.Printf("  %-8s %8d %10.1fms %10.1fms\n",
			r.Group, b.Count, b.Aggs[tsdb.AggMedian], b.Aggs[tsdb.AggP99])
	}

	res, err = p.DB.Execute(tsdb.Query{
		Measurement: "rtt_stream", Field: "rtt_ms",
		Start: 0, End: 120e9,
		GroupBy: "echoer_city",
		Aggs:    []tsdb.AggKind{tsdb.AggCount, tsdb.AggMedian, tsdb.AggP99},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nin-stream RTT by echoing city, both modes merged:")
	fmt.Printf("  %-16s %8s %12s %12s\n", "echoer", "samples", "median", "p99")
	for _, r := range res {
		b := r.Buckets[0]
		fmt.Printf("  %-16s %8d %10.1fms %10.1fms\n",
			r.Group, b.Count, b.Aggs[tsdb.AggMedian], b.Aggs[tsdb.AggP99])
	}
	fmt.Println("\nEvery row includes flows whose handshake was never observed, and the")
	fmt.Println("seq-matched share needs no cooperation from the endpoints' TCP stacks.")
}
