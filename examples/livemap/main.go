// livemap renders the paper's 3D-map frontend use case in a terminal: the
// full pipeline runs on synthetic traffic (with a latency anomaly on one
// route), a WebSocket client subscribes to the live feed exactly as the
// browser would, and the received measurements are drawn as great-circle
// arcs on an ASCII world map — "red lines in areas where most lines are
// green show increased latency".
//
// Run with: go run ./examples/livemap
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/arcs"
	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/ruru"
	"ruru/internal/web"
	"ruru/internal/ws"
)

func main() {
	world, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := ruru.New(ruru.Config{GeoDB: world.DB(), Queues: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			log.Printf("pipeline close: %v", err)
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)

	// Serve the real HTTP API and connect a real WebSocket client to it —
	// the same path a browser frontend uses.
	srv := httptest.NewServer(web.NewServer(p))
	defer srv.Close()
	client, err := ws.Dial("ws://" + strings.TrimPrefix(srv.URL, "http://") + "/ws")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	for p.Hub.Clients() == 0 {
		time.Sleep(5 * time.Millisecond)
	}

	// Traffic: world-wide flows, plus a degraded Auckland→Tokyo route
	// (every flow on it starts inside a permanent +3500ms window).
	g, err := gen.New(gen.Config{
		Seed: 11, World: world,
		FlowRate: 400, Duration: 5e9,
		FirewallWindows: []gen.Window{{Offset: 0, Length: 5e9, Extra: 3500e6}},
		ClientCities:    []int{0},
		ServerCities:    []int{1, 4, 12, 14, 20, 22, 30, 36},
	})
	if err != nil {
		log.Fatal(err)
	}
	go g.RunToPort(p.Port, false)

	// Collect live measurements off the WebSocket for a short while.
	var collected []arcs.Arc
	deadline := time.Now().Add(5 * time.Second)
	client.SetReadDeadline(deadline)
	for time.Now().Before(deadline) && len(collected) < 1500 {
		_, msg, err := client.ReadMessage()
		if err != nil {
			break
		}
		// Each frame is a JSON array: the sink coalesces a burst of
		// measurements per broadcast.
		var batch []analytics.Enriched
		if json.Unmarshal(msg, &batch) != nil {
			continue
		}
		for _, e := range batch {
			collected = append(collected, arcs.Arc{
				From:      arcs.Point{Lat: e.Src.Lat, Lon: e.Src.Lon},
				To:        arcs.Point{Lat: e.Dst.Lat, Lon: e.Dst.Lon},
				LatencyNs: e.TotalNs,
			})
		}
	}

	r := arcs.NewRenderer(140, 40)
	r.Scale = arcs.ColorScale{GoodNs: 100e6, BadNs: 1000e6}
	frame := r.Render(collected)
	fmt.Println(arcs.Frame(frame))
	fmt.Println(r.Legend())
	fmt.Printf("\n%d live measurements received over WebSocket; every arc above is one\n", len(collected))
	fmt.Println("measured flow (tap in Auckland). The '#' arcs are the degraded route —")
	fmt.Println("the anomaly an operator would spot as red among green on the WebGL map.")
}
