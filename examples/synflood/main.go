// synflood demonstrates the paper's real-time SYN-flood use case: the
// handshake engine's expired-incomplete evictions feed a rate detector,
// which flags the attack seconds after onset while normal measurement
// continues undisturbed.
//
// Run with: go run ./examples/synflood
package main

import (
	"fmt"
	"log"

	"ruru/internal/anomaly"
	"ruru/internal/core"
	"ruru/internal/experiments"
	"ruru/internal/gen"
	"ruru/internal/geo"
)

func main() {
	world, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Two minutes of normal traffic; at t=60s a 5000 SYN/s flood hits a
	// Los Angeles host from spoofed Sydney sources for 10 seconds.
	g, err := gen.New(gen.Config{
		Seed: 7, World: world,
		FlowRate: 100, Duration: 120e9,
		Floods: []gen.FloodSpec{
			{Start: 0, Duration: 120e9, Rate: 5, SrcCity: 12, DstCity: 3}, // ambient scanning
			{Start: 60e9, Duration: 10e9, Rate: 5000, SrcCity: 4, DstCity: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	flood := anomaly.NewFloodDetector(anomaly.FloodConfig{
		BucketNs: 1e9, MinCount: 100, Ratio: 8, WarmupBuckets: 5,
	})
	measured := 0
	rep := experiments.Replay{
		Queues: 4,
		Table: core.TableConfig{
			Capacity: 1 << 17,
			Timeout:  3e9, // unanswered SYNs expire after 3s
			OnExpire: func(lastTS int64, awaiting bool) {
				if awaiting {
					flood.ObserveUnanswered(lastTS)
				}
			},
		},
		OnMeasure: func(m *core.Measurement) { measured++ },
	}
	st := rep.Run(g)
	flood.Flush()

	fmt.Printf("packets processed:        %d\n", st.Packets)
	fmt.Printf("handshakes measured:      %d (normal traffic keeps flowing)\n", measured)
	fmt.Printf("expired unanswered SYNs:  %d\n", st.Tables.ExpiredAwait)
	fmt.Println()
	if evs := flood.Events(); len(evs) == 0 {
		fmt.Println("no flood detected (unexpected!)")
	} else {
		for _, ev := range evs {
			fmt.Printf("ALARM %s at t=%.0fs: %s\n", ev.Kind, float64(ev.Time)/1e9, ev.Detail)
		}
		fmt.Println("\n(the attack began at t=60s; detection lag = handshake timeout + one bucket)")
	}
}
