// Command ruru-gen writes a synthetic capture to a pcap file: the workload
// generator as a standalone tool, so traces can be inspected with tcpdump/
// Wireshark or replayed into `ruru -pcap`.
//
// Example:
//
//	ruru-gen -o trace.pcap -rate 1000 -duration 30s -firewall
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"ruru/internal/gen"
	"ruru/internal/geo"
)

func main() {
	var (
		out      = flag.String("o", "trace.pcap", "output pcap path")
		rate     = flag.Float64("rate", 500, "flows/s")
		duration = flag.Duration("duration", 30*time.Second, "virtual capture length")
		seed     = flag.Int64("seed", 1, "seed")
		data     = flag.Float64("data", 2, "mean data segments per flow")
		udp      = flag.Float64("udp", 100, "background UDP packets/s")
		v6       = flag.Float64("ipv6", 0.15, "IPv6 fraction of flows")
		loss     = flag.Float64("loss", 0.01, "SYN / SYN-ACK loss probability")
		firewall = flag.Bool("firewall", false, "inject nightly +4000ms firewall windows")
		flood    = flag.Bool("flood", false, "inject a SYN flood mid-capture")
	)
	flag.Parse()

	world, err := geo.NewWorld(geo.WorldOptions{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	cfg := gen.Config{
		Seed: *seed, World: world,
		FlowRate: *rate, Duration: duration.Nanoseconds(),
		DataSegments: *data, UDPRate: *udp, MidstreamRate: *rate / 20,
		SYNLoss: *loss, SYNACKLoss: *loss, IPv6Fraction: *v6,
	}
	if *firewall {
		cfg.FirewallWindows = []gen.Window{{Every: 60e9, Offset: 30e9, Length: 500e6, Extra: 4000e6}}
	}
	if *flood {
		mid := duration.Nanoseconds() / 2
		cfg.Floods = []gen.FloodSpec{
			{Start: 0, Duration: duration.Nanoseconds(), Rate: 5, SrcCity: 12, DstCity: 3},
			{Start: mid, Duration: 10e9, Rate: 5000, SrcCity: 4, DstCity: 1},
		}
	}
	g, err := gen.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := g.WritePcap(f)
	if err != nil {
		log.Fatal(err)
	}
	completing := 0
	for _, tr := range g.Truths() {
		if tr.Completes {
			completing++
		}
	}
	log.Printf("ruru-gen: wrote %d packets (%d completing flows) to %s", n, completing, *out)
}
