// Command ruru-bench regenerates the evaluation: one subcommand per
// experiment in DESIGN.md §4 / EXPERIMENTS.md, printing the corresponding
// table. "all" runs the full suite.
//
// Usage:
//
//	ruru-bench [flags] e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|e11|e12|e13|e14|e15|all
//	ruru-bench -json BENCH_PRn.json [-benchtime 1s]
//
// The second form runs the fixed microbenchmark suite (internal/bench) via
// testing.Benchmark and writes a machine-readable trajectory entry —
// the BENCH_*.json files scripts/bench_compare.sh diffs across PRs.
//
// Scale flags let CI run reduced versions; defaults reproduce the numbers
// recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"ruru/internal/bench"
	"ruru/internal/experiments"
)

func main() {
	testing.Init() // registers test.* flags: required for testing.Benchmark outside "go test"
	var (
		seed      = flag.Int64("seed", 1, "deterministic seed for all experiments")
		quick     = flag.Bool("quick", false, "reduced scale (CI-friendly)")
		jsonOut   = flag.String("json", "", "run the microbenchmark suite and write a BENCH_*.json trajectory entry to this path")
		benchtime = flag.String("benchtime", "", "per-benchmark run time for -json (default: testing's 1s)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ruru-bench [flags] e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|e11|e12|e13|e14|e15|all\n")
		fmt.Fprintf(os.Stderr, "       ruru-bench -json BENCH_PRn.json [-benchtime 1s]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut != "" {
		if err := runJSON(*jsonOut, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "ruru-bench -json: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	scale := 1.0
	if *quick {
		scale = 0.1
	}
	run := func(id string) error {
		w := os.Stdout
		switch id {
		case "e1":
			_, err := experiments.E1(experiments.E1Config{
				Seed: *seed, Flows: int(20000 * scale),
			}, w)
			return err
		case "e2":
			_, err := experiments.E2(experiments.E2Config{
				Seed: *seed, RunPackets: int64(2_000_000 * scale),
				TracePkts: int(300_000 * scale),
			}, w)
			return err
		case "e2burst":
			_, err := experiments.E2Burst(experiments.E2Config{
				Seed: *seed, RunPackets: int64(1_000_000 * scale),
				TracePkts: int(200_000 * scale),
			}, 4, nil, w)
			return err
		case "e3":
			_, err := experiments.E3(experiments.E3Config{
				Messages: int(50_000 * scale),
			}, w)
			return err
		case "e4":
			_, err := experiments.E4(experiments.E4Config{
				Seed: *seed, Hours: 0.5 * scale, PeriodS: 600, WindowMs: 500, ExtraMs: 4000,
			}, w)
			return err
		case "e5":
			_, err := experiments.E5(experiments.E5Config{Seed: *seed}, w)
			return err
		case "e6":
			_, err := experiments.E6(experiments.E6Config{
				Seed: *seed, Lookups: int(200_000 * scale),
			}, w)
			return err
		case "e7":
			_, err := experiments.E7(experiments.E7Config{
				Seed: *seed, Flows: int(20000 * scale),
			}, w)
			return err
		case "e8":
			_, err := experiments.E8(experiments.E8Config{
				Seed: *seed, Points: int(500_000 * scale),
			}, w)
			return err
		case "e9":
			_, err := experiments.E9(experiments.E9Config{
				Seed: *seed, Messages: int(300_000 * scale),
			}, w)
			return err
		case "e10":
			_, err := experiments.E10(experiments.E10Config{
				Seed: *seed, Flows: int(10000 * scale),
			}, w)
			return err
		case "e11":
			_, err := experiments.E11(experiments.E11Config{
				Messages: int(200_000 * scale),
			}, w)
			return err
		case "e12":
			_, err := experiments.E12(experiments.E12Config{
				Seed: *seed, Points: int(360_000 * scale),
			}, w)
			return err
		case "e13":
			_, err := experiments.E13(experiments.E13Config{
				Seed: *seed, Points: int(200_000 * scale),
			}, w)
			return err
		case "e14":
			_, err := experiments.E14(experiments.E14Config{
				Points: int(100_000 * scale),
			}, w)
			return err
		case "e15":
			_, err := experiments.E15(experiments.E15Config{
				Flows: int(10_000_000 * scale),
			}, w)
			return err
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
	}

	runExperiments(run)
}

// runJSON executes the internal/bench suite and writes the trajectory file.
func runJSON(path, benchtime string) error {
	if benchtime != "" {
		if err := flag.Set("test.benchtime", benchtime); err != nil {
			return err
		}
	}
	f := bench.Run(os.Stdout)
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteJSON(out, f); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func runExperiments(run func(id string) error) {
	ids := []string{flag.Arg(0)}
	if flag.Arg(0) == "all" {
		ids = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15"}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "ruru-bench %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
