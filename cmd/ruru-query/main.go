// Command ruru-query is a small CLI client for a running ruru daemon's HTTP
// API — the Grafana-panel queries from a terminal.
//
// Examples:
//
//	ruru-query -addr localhost:8080 stats
//	ruru-query -addr localhost:8080 -start 0 -end 5m -agg mean,median,p99 -group src_city query
//	ruru-query -addr localhost:8080 anomalies
//	ruru-query -addr localhost:8080 -n 5 arcs
//
// Against a federation aggregator (ruru -mode aggregate) every series
// carries the probe tag, so fleet queries are ordinary tag queries:
//
//	ruru-query -addr agg:8080 -group probe query            # one series per probe
//	ruru-query -addr agg:8080 -where probe:akl-tap-1 query  # one probe only
//	ruru-query -addr agg:8080 -group probe tags             # list the fleet
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"time"
)

func main() {
	var (
		addr   = flag.String("addr", "localhost:8080", "ruru daemon address")
		start  = flag.Duration("start", 0, "window start (virtual time offset)")
		end    = flag.Duration("end", time.Hour, "window end (virtual time offset)")
		window = flag.Duration("window", 0, "bucket width (0 = single bucket)")
		agg    = flag.String("agg", "count,mean,median", "aggregations")
		group  = flag.String("group", "", "group-by tag key")
		where  = flag.String("where", "", "filter, key:value")
		field  = flag.String("field", "total_ms", "field to aggregate")
		resol  = flag.String("resolution", "", `query resolution: "auto" (planner picks a rollup tier), "raw", or a tier width like 10s; the server reports the serving tier in each result's "tier" field`)
		n      = flag.Int("n", 10, "arcs to fetch")
		pretty = flag.Bool("pretty", true, "indent JSON output")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ruru-query [flags] stats|query|tags|arcs|anomalies")
		os.Exit(2)
	}

	var u string
	switch flag.Arg(0) {
	case "stats":
		u = fmt.Sprintf("http://%s/api/stats", *addr)
	case "query":
		v := url.Values{}
		v.Set("field", *field)
		v.Set("start", fmt.Sprint(start.Nanoseconds()))
		v.Set("end", fmt.Sprint(end.Nanoseconds()))
		if *window > 0 {
			v.Set("window", fmt.Sprint(window.Nanoseconds()))
		}
		v.Set("agg", *agg)
		if *group != "" {
			v.Set("group_by", *group)
		}
		if *where != "" {
			v.Set("where", *where)
		}
		if *resol != "" {
			v.Set("resolution", *resol)
		}
		u = fmt.Sprintf("http://%s/api/query?%s", *addr, v.Encode())
	case "tags":
		if *group == "" {
			log.Fatal("tags requires -group <key>")
		}
		u = fmt.Sprintf("http://%s/api/tags?key=%s", *addr, url.QueryEscape(*group))
	case "arcs":
		u = fmt.Sprintf("http://%s/api/arcs?n=%d", *addr, *n)
	case "anomalies":
		u = fmt.Sprintf("http://%s/api/anomalies", *addr)
	default:
		log.Fatalf("unknown subcommand %q", flag.Arg(0))
	}

	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %s", resp.Status, body)
	}
	if *pretty {
		var v any
		if err := json.Unmarshal(body, &v); err == nil {
			out, _ := json.MarshalIndent(v, "", "  ")
			fmt.Println(string(out))
			return
		}
	}
	fmt.Println(string(body))
}
