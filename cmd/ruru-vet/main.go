// Command ruru-vet is the repo-invariant multichecker: it runs the
// standard `go vet` passes followed by ruru's custom analyzers
// (lockorder, atomicmix, noalloc, mustcheck — see internal/lint) over
// the requested packages. CI runs it blocking on ./...; developers run
// it directly or through scripts/lint.sh.
//
// Usage:
//
//	go run ./cmd/ruru-vet [-vet=false] [packages...]
//
// With no package arguments it checks ./... . Exit status is nonzero if
// any check reports a finding. Findings are suppressed per line with a
// justified directive: //ruru:ignore <analyzer> <why> (see
// docs/TESTING.md "Static analysis").
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"ruru/internal/lint"
)

func main() {
	vet := flag.Bool("vet", true, "also run the standard `go vet` passes first")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := lint.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ruru-vet:", err)
		os.Exit(2)
	}
	analyzers := lint.Analyzers()
	n := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ruru-vet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "ruru-vet: %d finding(s)\n", n)
	}
	if failed || n > 0 {
		os.Exit(1)
	}
}
