// Command ruru runs the full pipeline: it taps a traffic source (the
// built-in generator or a pcap trace), measures TCP handshake latency,
// enriches with geo/AS data, stores into the embedded TSDB, and serves the
// HTTP API and WebSocket live feed — the paper's deployment in one process.
//
// Beyond the single-tap deployment, -mode assembles federated fleets: a
// "probe" additionally streams every measurement to a central aggregator
// (acked, spooled, replayed across restarts), and an "aggregate" process
// accepts N probes and serves the fleet-wide store, every series tagged
// probe=<id>.
//
// Examples:
//
//	ruru -listen :8080                          # synthetic AKL↔LA traffic
//	ruru -listen :8080 -pcap trace.pcap         # replay a capture
//	ruru -listen :8080 -rate 2000 -duration 60s # heavier synthetic load
//	ruru -mode aggregate -fed-listen :9100      # central aggregator
//	ruru -mode probe -remote-write agg:9100 -probe-id akl-tap-1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/nic"
	"ruru/internal/pcap"
	"ruru/internal/ruru"
	"ruru/internal/tsdb"
	"ruru/internal/web"
)

func main() {
	opt, err := parseFlags("ruru", os.Args[1:], os.Hostname)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatalf("ruru: %v", err)
	}

	world, err := geo.NewWorld(geo.WorldOptions{Seed: opt.seed, MislabelFraction: 0.02})
	if err != nil {
		log.Fatalf("building world: %v", err)
	}
	p, err := ruru.New(ruru.Config{
		GeoDB:           world.DB(),
		Queues:          opt.queues,
		Burst:           opt.burst,
		Overflow:        opt.overflow,
		BlockTimeout:    opt.blockMax,
		MultiConsumer:   opt.multi,
		TrackTimestamps: opt.timestamps,
		TrackSeq:        opt.trackSeq,
		OneDirection:    opt.oneDir,
		FlowTableBytes:  opt.flowTableBytes,
		QueryCacheBytes: opt.queryCacheBytes,
		SinkWorkers:     opt.sinkWk,
		SinkBatch:       opt.sinkBatch,
		DBStripes:       opt.dbStripes,
		Rollups:         opt.rollups,
		Persist:         opt.persist,
		RemoteWrite:     opt.remote,
		Federate:        opt.federate,
	})
	if err != nil {
		log.Fatalf("assembling pipeline: %v", err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			log.Printf("ruru: close: %v", err)
		}
	}()
	if opt.dataDir != "" {
		ps := p.DB.PersistStats()
		torn := ""
		if ps.ReplayTornTail {
			torn = " (torn WAL tail discarded — expected after a crash)"
		}
		log.Printf("ruru: durable storage in %s (fsync=%s): restored %d points from checkpoint, replayed %d from WAL%s",
			opt.dataDir, ps.Fsync, ps.RestoredPoints, ps.WALReplayedPoints, torn)
	}
	if opt.snapshot != "" {
		defer func() {
			f, err := os.Create(opt.snapshot)
			if err != nil {
				log.Printf("snapshot: %v", err)
				return
			}
			n, err := p.DB.Snapshot(f)
			// Report EVERY failure mode: a snapshot whose fsync or close
			// failed may be incomplete on disk, and silently trusting it
			// defeats the point of dumping state at shutdown.
			if err == nil {
				err = f.Sync()
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				log.Printf("snapshot: %s may be incomplete: %v", opt.snapshot, err)
				return
			}
			log.Printf("ruru: snapshot of %d points written to %s", n, opt.snapshot)
		}()
	}

	if p.Agg != nil {
		log.Printf("ruru: federation aggregator on %s (probes tagged %q)", p.Agg.Addr(), "probe")
	}
	if opt.remoteAddr != "" {
		log.Printf("ruru: remote-writing to %s as probe %q (spool %s)",
			opt.remote.Addr, opt.remote.ID, opt.remote.SpoolDir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		p.Run(ctx)
	}()
	// Close (deferred above) must run after the pipeline goroutines have
	// wound down: a probe's collector flushes its final partial batch to
	// the spool on shutdown, and Close sealing the spool first would
	// discard it (counted in Remote.CloseDropped, but avoidable here).
	defer func() {
		select {
		case <-runDone:
		case <-time.After(5 * time.Second):
			log.Printf("ruru: pipeline did not wind down in 5s; closing anyway")
		}
	}()

	srv := &http.Server{Addr: opt.listen, Handler: web.NewServer(p)}
	go func() {
		log.Printf("ruru: serving API on %s (endpoints: /api/stats /api/query /api/arcs /api/anomalies /ws)", opt.listen)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()
	defer srv.Shutdown(context.Background())

	// Periodic status line.
	go func() {
		t := time.NewTicker(5 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				st := p.Stats()
				switch {
				case st.Fed.Enabled:
					live := 0
					for _, ps := range st.Fed.Probes {
						if ps.Connected {
							live++
						}
					}
					log.Printf("ruru: probes=%d/%d fed_batches=%d fed_points=%d dups=%d db=%d",
						live, len(st.Fed.Probes), st.Fed.Batches, st.Fed.Points, st.Fed.DupBatches, st.DBPoints)
				case st.Remote.Enabled:
					log.Printf("ruru: pkts=%d measured=%d db=%d remote_acked=%d unacked=%d resent=%d dropped=%d connected=%v",
						st.Port.Ipackets, st.Engine.Completed, st.DBPoints,
						st.Remote.AckedSeq, st.Remote.Unacked, st.Remote.BatchesResent,
						st.Remote.Dropped, st.Remote.Connected)
				default:
					log.Printf("ruru: pkts=%d measured=%d enriched=%d db=%d ws_clients=%d",
						st.Port.Ipackets, st.Engine.Completed, st.Enricher.Out, st.DBPoints, p.Hub.Clients())
				}
			}
		}
	}()

	if opt.mode == "aggregate" {
		// No local traffic source: measurements arrive from remote probes.
	} else if opt.pcapPath != "" {
		if err := replayPcap(ctx, opt.pcapPath, p.Port, opt.burst); err != nil {
			log.Fatalf("replay: %v", err)
		}
	} else {
		cfg := gen.Config{
			Seed: opt.seed, World: world,
			FlowRate: opt.rate, Duration: opt.duration.Nanoseconds(),
			DataSegments: 2, UDPRate: opt.rate / 2, MidstreamRate: opt.rate / 20,
			SYNLoss: 0.01, SYNACKLoss: 0.01, IPv6Fraction: 0.15,
			EmitTCPTimestamps: opt.timestamps,
		}
		if opt.firewall {
			cfg.FirewallWindows = []gen.Window{{
				Every: 60e9, Offset: 30e9, Length: 500e6, Extra: 4000e6,
			}}
			log.Printf("ruru: firewall demo enabled (+4000ms window every 60s)")
		}
		g, err := gen.New(cfg)
		if err != nil {
			log.Fatalf("generator: %v", err)
		}
		// Pace injection to wall-clock so the live map looks live:
		// virtual nanoseconds map 1:1 onto wall nanoseconds.
		go func() {
			start := time.Now()
			var pk gen.Packet
			for g.Next(&pk) {
				if ctx.Err() != nil {
					return
				}
				elapsed := time.Since(start).Nanoseconds()
				if ahead := pk.TS - elapsed; ahead > 2e6 {
					select {
					case <-time.After(time.Duration(ahead)):
					case <-ctx.Done():
						return
					}
				}
				p.Port.InjectTuple(pk.Frame, pk.TS, pk.Src, pk.Dst, pk.SrcPort, pk.DstPort)
			}
			log.Printf("ruru: generator finished")
		}()
	}

	<-ctx.Done()
	fmt.Println()
	st := p.Stats()
	log.Printf("ruru: final stats: %+v", st)
}

// parseRollups parses the -rollup flag: "off" (or "") disables rollups,
// "default" selects tsdb.DefaultRollups(), and otherwise each
// comma-separated "width[:retention]" entry is a pair of Go durations
// (retention omitted or 0 = keep that tier forever).
func parseRollups(s string) ([]tsdb.RollupTier, error) {
	switch s {
	case "", "off", "none":
		return nil, nil
	case "default":
		return tsdb.DefaultRollups(), nil
	}
	var tiers []tsdb.RollupTier
	for _, part := range strings.Split(s, ",") {
		widthStr, retStr, hasRet := strings.Cut(strings.TrimSpace(part), ":")
		width, err := time.ParseDuration(widthStr)
		if err != nil || width <= 0 {
			return nil, fmt.Errorf("tier width %q (want a positive duration like 10s)", widthStr)
		}
		var ret time.Duration
		if hasRet {
			if ret, err = time.ParseDuration(retStr); err != nil || ret < 0 {
				return nil, fmt.Errorf("tier retention %q (want a non-negative duration, 0 = forever)", retStr)
			}
		}
		tiers = append(tiers, tsdb.RollupTier{Width: width.Nanoseconds(), Retention: ret.Nanoseconds()})
	}
	return tiers, nil
}

// replayPcap paces a capture into the port on its own timestamps, in
// bursts (the batched ingest path).
func replayPcap(ctx context.Context, path string, port *nic.Port, burst int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	// On interrupt the engine workers exit, so a block-policy injection
	// would wait forever for room that never comes: abort its waits.
	defer context.AfterFunc(ctx, port.Stop)()
	n, err := pcap.ReplayToPort(ctx, r, port, pcap.ReplayOptions{Burst: burst, Pace: true})
	switch {
	case errors.Is(err, context.Canceled):
		// interrupted: shut down normally
	case errors.Is(err, pcap.ErrTruncated) && n > 0:
		// a cut-short capture (tcpdump killed mid-write) is routine:
		// keep serving what was replayed
		log.Printf("ruru: capture truncated after %d packets", n)
	case err != nil:
		return err
	}
	if n == 0 && err == nil {
		return fmt.Errorf("empty capture")
	}
	log.Printf("ruru: replayed %d packets", n)
	return nil
}
