// Command ruru runs the full pipeline: it taps a traffic source (the
// built-in generator or a pcap trace), measures TCP handshake latency,
// enriches with geo/AS data, stores into the embedded TSDB, and serves the
// HTTP API and WebSocket live feed — the paper's deployment in one process.
//
// Beyond the single-tap deployment, -mode assembles federated fleets: a
// "probe" additionally streams every measurement to a central aggregator
// (acked, spooled, replayed across restarts), and an "aggregate" process
// accepts N probes and serves the fleet-wide store, every series tagged
// probe=<id>.
//
// Examples:
//
//	ruru -listen :8080                          # synthetic AKL↔LA traffic
//	ruru -listen :8080 -pcap trace.pcap         # replay a capture
//	ruru -listen :8080 -rate 2000 -duration 60s # heavier synthetic load
//	ruru -mode aggregate -fed-listen :9100      # central aggregator
//	ruru -mode probe -remote-write agg:9100 -probe-id akl-tap-1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"ruru/internal/fed"
	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/nic"
	"ruru/internal/pcap"
	"ruru/internal/ruru"
	"ruru/internal/tsdb"
	"ruru/internal/web"
)

func main() {
	var (
		listen     = flag.String("listen", ":8080", "HTTP listen address (API + /ws)")
		pcapPath   = flag.String("pcap", "", "replay this pcap instead of generating traffic")
		rate       = flag.Float64("rate", 500, "synthetic flows/s")
		duration   = flag.Duration("duration", 5*time.Minute, "synthetic capture length (virtual)")
		queues     = flag.Int("queues", 4, "RSS queues / measurement cores")
		seed       = flag.Int64("seed", 1, "generator seed")
		firewall   = flag.Bool("firewall-demo", false, "inject the nightly +4000ms firewall glitch")
		timestamps = flag.Bool("timestamps", false, "continuous RTT from TCP timestamp echoes (rtt_stream measurement)")
		snapshot   = flag.String("snapshot", "", "dump the TSDB as line protocol to this file on shutdown")
		burst      = flag.Int("burst", 64, "ingest/poll burst size (frames per ring round-trip)")
		overflow   = flag.String("overflow", "drop", "RX queue overflow policy: drop (NIC-faithful) or block (lossless source)")
		blockMax   = flag.Duration("block-timeout", 0, "deadline for block-policy injection (0: wait indefinitely)")
		multi      = flag.Bool("multi-consumer", false, "multi-consumer RX rings (several workers may share a queue)")
		sinkWk     = flag.Int("sink-workers", 4, "sharded sink workers (measurements partitioned by city pair)")
		sinkBatch  = flag.Int("sink-batch", 64, "max measurements per sink wakeup / WebSocket broadcast frame")
		dbStripes  = flag.Int("db-stripes", 8, "TSDB lock stripes (1 = single global write lock)")
		rollup     = flag.String("rollup", "default", `TSDB rollup tiers, "width[:retention],..." (e.g. "1s:2h,10s:24h,1m:168h"; retention 0 = keep forever), "default" for the 1s/10s/1m ladder, "off" to disable`)
		dataDir    = flag.String("data-dir", "", "durable TSDB storage in this directory (WAL + checkpoints, restored on start); empty = in-memory")
		fsyncMode  = flag.String("fsync", "interval", "WAL fsync policy with -data-dir: always (durable before a write returns), interval (background fsync, default), off (OS page cache only)")
		ckptEvery  = flag.Duration("checkpoint-every", time.Minute, "automatic checkpoint + WAL-truncate period with -data-dir (0 = manual only, via POST /api/checkpoint)")
		walSegMax  = flag.Int64("wal-segment-bytes", 0, "max WAL segment file size with -data-dir (0 = 64MiB default)")
		mode       = flag.String("mode", "run", "run (standalone), probe (stream measurements to -remote-write), aggregate (accept probes on -fed-listen, no local traffic source)")
		remoteAddr = flag.String("remote-write", "", "aggregator address to stream measurements to (required with -mode probe)")
		probeID    = flag.String("probe-id", "", "stable probe identity for federation (default: hostname); the aggregator tags this probe's series probe=<id>")
		spoolDir   = flag.String("spool-dir", "", "unacked-batch spool directory for -remote-write (default: <data-dir>/spool, or ./ruru-spool in-memory)")
		remBatch   = flag.Int("remote-batch", 256, "measurements per remote-write batch")
		remFlush   = flag.Duration("remote-flush", 200*time.Millisecond, "max wait before a partial remote-write batch is sent")
		fedListen  = flag.String("fed-listen", ":9100", "federation listen address with -mode aggregate")
	)
	flag.Parse()

	rollups, err := parseRollups(*rollup)
	if err != nil {
		log.Fatalf("bad -rollup: %v", err)
	}

	var fsync tsdb.FsyncPolicy
	switch *fsyncMode {
	case "always":
		fsync = tsdb.FsyncAlways
	case "interval":
		fsync = tsdb.FsyncInterval
	case "off":
		fsync = tsdb.FsyncOff
	default:
		log.Fatalf("unknown -fsync %q (want always, interval or off)", *fsyncMode)
	}
	persist := tsdb.PersistOptions{}
	if *dataDir != "" {
		persist = tsdb.PersistOptions{
			Dir: *dataDir, Fsync: fsync,
			CheckpointEvery: *ckptEvery, MaxSegmentBytes: *walSegMax,
		}
		if *ckptEvery == 0 {
			persist.CheckpointEvery = -1 // flag 0 means "manual only"
		}
	}

	var policy nic.OverflowPolicy
	switch *overflow {
	case "drop":
		policy = nic.Drop
	case "block":
		policy = nic.Block
	default:
		log.Fatalf("unknown -overflow %q (want drop or block)", *overflow)
	}

	var remote fed.ProbeConfig
	var federate fed.AggConfig
	switch *mode {
	case "run":
	case "probe":
		if *remoteAddr == "" {
			log.Fatalf("-mode probe requires -remote-write <aggregator addr>")
		}
	case "aggregate":
		federate.Listen = *fedListen
	default:
		log.Fatalf("unknown -mode %q (want run, probe or aggregate)", *mode)
	}
	if *remoteAddr != "" {
		id := *probeID
		if id == "" {
			if id, err = os.Hostname(); err != nil || id == "" {
				log.Fatalf("-probe-id required (hostname unavailable: %v)", err)
			}
		}
		dir := *spoolDir
		if dir == "" {
			if *dataDir != "" {
				dir = *dataDir + "/spool"
			} else {
				dir = "ruru-spool"
			}
		}
		remote = fed.ProbeConfig{
			Addr: *remoteAddr, ID: id, SpoolDir: dir,
			BatchSize: *remBatch, FlushEvery: *remFlush,
		}
	}

	world, err := geo.NewWorld(geo.WorldOptions{Seed: *seed, MislabelFraction: 0.02})
	if err != nil {
		log.Fatalf("building world: %v", err)
	}
	p, err := ruru.New(ruru.Config{
		GeoDB:           world.DB(),
		Queues:          *queues,
		Burst:           *burst,
		Overflow:        policy,
		BlockTimeout:    *blockMax,
		MultiConsumer:   *multi,
		TrackTimestamps: *timestamps,
		SinkWorkers:     *sinkWk,
		SinkBatch:       *sinkBatch,
		DBStripes:       *dbStripes,
		Rollups:         rollups,
		Persist:         persist,
		RemoteWrite:     remote,
		Federate:        federate,
	})
	if err != nil {
		log.Fatalf("assembling pipeline: %v", err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			log.Printf("ruru: close: %v", err)
		}
	}()
	if *dataDir != "" {
		ps := p.DB.PersistStats()
		torn := ""
		if ps.ReplayTornTail {
			torn = " (torn WAL tail discarded — expected after a crash)"
		}
		log.Printf("ruru: durable storage in %s (fsync=%s): restored %d points from checkpoint, replayed %d from WAL%s",
			*dataDir, ps.Fsync, ps.RestoredPoints, ps.WALReplayedPoints, torn)
	}
	if *snapshot != "" {
		defer func() {
			f, err := os.Create(*snapshot)
			if err != nil {
				log.Printf("snapshot: %v", err)
				return
			}
			n, err := p.DB.Snapshot(f)
			// Report EVERY failure mode: a snapshot whose fsync or close
			// failed may be incomplete on disk, and silently trusting it
			// defeats the point of dumping state at shutdown.
			if err == nil {
				err = f.Sync()
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				log.Printf("snapshot: %s may be incomplete: %v", *snapshot, err)
				return
			}
			log.Printf("ruru: snapshot of %d points written to %s", n, *snapshot)
		}()
	}

	if p.Agg != nil {
		log.Printf("ruru: federation aggregator on %s (probes tagged %q)", p.Agg.Addr(), "probe")
	}
	if *remoteAddr != "" {
		log.Printf("ruru: remote-writing to %s as probe %q (spool %s)",
			remote.Addr, remote.ID, remote.SpoolDir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		p.Run(ctx)
	}()
	// Close (deferred above) must run after the pipeline goroutines have
	// wound down: a probe's collector flushes its final partial batch to
	// the spool on shutdown, and Close sealing the spool first would
	// discard it (counted in Remote.CloseDropped, but avoidable here).
	defer func() {
		select {
		case <-runDone:
		case <-time.After(5 * time.Second):
			log.Printf("ruru: pipeline did not wind down in 5s; closing anyway")
		}
	}()

	srv := &http.Server{Addr: *listen, Handler: web.NewServer(p)}
	go func() {
		log.Printf("ruru: serving API on %s (endpoints: /api/stats /api/query /api/arcs /api/anomalies /ws)", *listen)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()
	defer srv.Shutdown(context.Background())

	// Periodic status line.
	go func() {
		t := time.NewTicker(5 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				st := p.Stats()
				switch {
				case st.Fed.Enabled:
					live := 0
					for _, ps := range st.Fed.Probes {
						if ps.Connected {
							live++
						}
					}
					log.Printf("ruru: probes=%d/%d fed_batches=%d fed_points=%d dups=%d db=%d",
						live, len(st.Fed.Probes), st.Fed.Batches, st.Fed.Points, st.Fed.DupBatches, st.DBPoints)
				case st.Remote.Enabled:
					log.Printf("ruru: pkts=%d measured=%d db=%d remote_acked=%d unacked=%d resent=%d dropped=%d connected=%v",
						st.Port.Ipackets, st.Engine.Completed, st.DBPoints,
						st.Remote.AckedSeq, st.Remote.Unacked, st.Remote.BatchesResent,
						st.Remote.Dropped, st.Remote.Connected)
				default:
					log.Printf("ruru: pkts=%d measured=%d enriched=%d db=%d ws_clients=%d",
						st.Port.Ipackets, st.Engine.Completed, st.Enricher.Out, st.DBPoints, p.Hub.Clients())
				}
			}
		}
	}()

	if *mode == "aggregate" {
		// No local traffic source: measurements arrive from remote probes.
	} else if *pcapPath != "" {
		if err := replayPcap(ctx, *pcapPath, p.Port, *burst); err != nil {
			log.Fatalf("replay: %v", err)
		}
	} else {
		cfg := gen.Config{
			Seed: *seed, World: world,
			FlowRate: *rate, Duration: duration.Nanoseconds(),
			DataSegments: 2, UDPRate: *rate / 2, MidstreamRate: *rate / 20,
			SYNLoss: 0.01, SYNACKLoss: 0.01, IPv6Fraction: 0.15,
			EmitTCPTimestamps: *timestamps,
		}
		if *firewall {
			cfg.FirewallWindows = []gen.Window{{
				Every: 60e9, Offset: 30e9, Length: 500e6, Extra: 4000e6,
			}}
			log.Printf("ruru: firewall demo enabled (+4000ms window every 60s)")
		}
		g, err := gen.New(cfg)
		if err != nil {
			log.Fatalf("generator: %v", err)
		}
		// Pace injection to wall-clock so the live map looks live:
		// virtual nanoseconds map 1:1 onto wall nanoseconds.
		go func() {
			start := time.Now()
			var pk gen.Packet
			for g.Next(&pk) {
				if ctx.Err() != nil {
					return
				}
				elapsed := time.Since(start).Nanoseconds()
				if ahead := pk.TS - elapsed; ahead > 2e6 {
					select {
					case <-time.After(time.Duration(ahead)):
					case <-ctx.Done():
						return
					}
				}
				p.Port.InjectTuple(pk.Frame, pk.TS, pk.Src, pk.Dst, pk.SrcPort, pk.DstPort)
			}
			log.Printf("ruru: generator finished")
		}()
	}

	<-ctx.Done()
	fmt.Println()
	st := p.Stats()
	log.Printf("ruru: final stats: %+v", st)
}

// parseRollups parses the -rollup flag: "off" (or "") disables rollups,
// "default" selects tsdb.DefaultRollups(), and otherwise each
// comma-separated "width[:retention]" entry is a pair of Go durations
// (retention omitted or 0 = keep that tier forever).
func parseRollups(s string) ([]tsdb.RollupTier, error) {
	switch s {
	case "", "off", "none":
		return nil, nil
	case "default":
		return tsdb.DefaultRollups(), nil
	}
	var tiers []tsdb.RollupTier
	for _, part := range strings.Split(s, ",") {
		widthStr, retStr, hasRet := strings.Cut(strings.TrimSpace(part), ":")
		width, err := time.ParseDuration(widthStr)
		if err != nil || width <= 0 {
			return nil, fmt.Errorf("tier width %q (want a positive duration like 10s)", widthStr)
		}
		var ret time.Duration
		if hasRet {
			if ret, err = time.ParseDuration(retStr); err != nil || ret < 0 {
				return nil, fmt.Errorf("tier retention %q (want a non-negative duration, 0 = forever)", retStr)
			}
		}
		tiers = append(tiers, tsdb.RollupTier{Width: width.Nanoseconds(), Retention: ret.Nanoseconds()})
	}
	return tiers, nil
}

// replayPcap paces a capture into the port on its own timestamps, in
// bursts (the batched ingest path).
func replayPcap(ctx context.Context, path string, port *nic.Port, burst int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	// On interrupt the engine workers exit, so a block-policy injection
	// would wait forever for room that never comes: abort its waits.
	defer context.AfterFunc(ctx, port.Stop)()
	n, err := pcap.ReplayToPort(ctx, r, port, pcap.ReplayOptions{Burst: burst, Pace: true})
	switch {
	case errors.Is(err, context.Canceled):
		// interrupted: shut down normally
	case errors.Is(err, pcap.ErrTruncated) && n > 0:
		// a cut-short capture (tcpdump killed mid-write) is routine:
		// keep serving what was replayed
		log.Printf("ruru: capture truncated after %d packets", n)
	case err != nil:
		return err
	}
	if n == 0 && err == nil {
		return fmt.Errorf("empty capture")
	}
	log.Printf("ruru: replayed %d packets", n)
	return nil
}
