package main

// The command-line surface, parsed and validated apart from main so the
// flag→config mapping is a testable contract (TestFlagParsing): every
// derived value — overflow policy, rollup tiers, persistence options,
// federation roles, the continuous-RTT tracker switches — is computed
// here, and main only assembles the process from the result.

import (
	"flag"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"ruru/internal/fed"
	"ruru/internal/nic"
	"ruru/internal/tsdb"
)

// options is the fully-parsed, validated command line.
type options struct {
	listen    string
	pcapPath  string
	rate      float64
	duration  time.Duration
	queues    int
	seed      int64
	firewall  bool
	snapshot  string
	burst     int
	blockMax  time.Duration
	multi     bool
	sinkWk    int
	sinkBatch int
	dbStripes int
	dataDir   string

	// flowTableBytes enables the bounded-memory sketch tier when > 0:
	// a hard byte cap across sketches, heavy-hitter summaries and every
	// exact flow-table entry (see ruru.Config.FlowTableBytes).
	flowTableBytes int64

	// queryCacheBytes is the TSDB query result cache budget; 0 disables
	// the cache (see ruru.Config.QueryCacheBytes).
	queryCacheBytes int64

	// Continuous-RTT trackers: -timestamps (TSval/TSecr echo pairing),
	// -track-seq (data→ACK sequence matching + loss classification) and
	// -one-direction (asymmetric-tap self-pairing; implies -track-seq in
	// the pipeline).
	timestamps bool
	trackSeq   bool
	oneDir     bool

	// Derived values.
	overflow nic.OverflowPolicy
	rollups  []tsdb.RollupTier
	persist  tsdb.PersistOptions

	// Federation.
	mode       string
	remoteAddr string
	remote     fed.ProbeConfig
	federate   fed.AggConfig
}

// parseFlags parses args into a validated options value. hostname supplies
// the -probe-id default (injected so tests need no real hostname).
func parseFlags(name string, args []string, hostname func() (string, error)) (*options, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	var (
		listen     = fs.String("listen", ":8080", "HTTP listen address (API + /ws)")
		pcapPath   = fs.String("pcap", "", "replay this pcap instead of generating traffic")
		rate       = fs.Float64("rate", 500, "synthetic flows/s")
		duration   = fs.Duration("duration", 5*time.Minute, "synthetic capture length (virtual)")
		queues     = fs.Int("queues", 4, "RSS queues / measurement cores")
		seed       = fs.Int64("seed", 1, "generator seed")
		firewall   = fs.Bool("firewall-demo", false, "inject the nightly +4000ms firewall glitch")
		timestamps = fs.Bool("timestamps", false, "continuous RTT from TCP timestamp echoes (rtt_stream measurement)")
		trackSeq   = fs.Bool("track-seq", false, "continuous RTT from data→ACK sequence matching plus retrans/RTO/dupack loss classification (rtt_stream mode=seq, tcp_loss measurement)")
		oneDir     = fs.Bool("one-direction", false, "asymmetric-tap mode: self-paired round-trip response latencies from a single visible direction (rtt_stream mode=onedir; implies -track-seq)")
		snapshot   = fs.String("snapshot", "", "dump the TSDB as line protocol to this file on shutdown")
		burst      = fs.Int("burst", 64, "ingest/poll burst size (frames per ring round-trip)")
		overflow   = fs.String("overflow", "drop", "RX queue overflow policy: drop (NIC-faithful) or block (lossless source)")
		blockMax   = fs.Duration("block-timeout", 0, "deadline for block-policy injection (0: wait indefinitely)")
		multi      = fs.Bool("multi-consumer", false, "multi-consumer RX rings (several workers may share a queue)")
		sinkWk     = fs.Int("sink-workers", 4, "sharded sink workers (measurements partitioned by city pair)")
		sinkBatch  = fs.Int("sink-batch", 64, "max measurements per sink wakeup / WebSocket broadcast frame")
		dbStripes  = fs.Int("db-stripes", 8, "TSDB lock stripes (1 = single global write lock)")
		flowBytes  = fs.String("flow-table-bytes", "", "hard byte cap on all per-flow state, enabling the bounded-memory sketch tier: elephants keep exact records, mice live sketch-only past the cap (size suffixes K/M/G/T, e.g. 64M; empty or 0 = exact-only)")
		qcBytes    = fs.String("query-cache-bytes", "16M", "TSDB query result cache budget: repeated dashboard queries are served from cached tier aggregates with incremental tail refresh, bit-exact with uncached execution (size suffixes K/M/G/T; 0 = no cache)")
		rollup     = fs.String("rollup", "default", `TSDB rollup tiers, "width[:retention],..." (e.g. "1s:2h,10s:24h,1m:168h"; retention 0 = keep forever), "default" for the 1s/10s/1m ladder, "off" to disable`)
		dataDir    = fs.String("data-dir", "", "durable TSDB storage in this directory (WAL + checkpoints, restored on start); empty = in-memory")
		fsyncMode  = fs.String("fsync", "interval", "WAL fsync policy with -data-dir: always (durable before a write returns), interval (background fsync, default), off (OS page cache only)")
		ckptEvery  = fs.Duration("checkpoint-every", time.Minute, "automatic checkpoint + WAL-truncate period with -data-dir (0 = manual only, via POST /api/checkpoint)")
		walSegMax  = fs.Int64("wal-segment-bytes", 0, "max WAL segment file size with -data-dir (0 = 64MiB default)")
		mode       = fs.String("mode", "run", "run (standalone), probe (stream measurements to -remote-write), aggregate (accept probes on -fed-listen, no local traffic source)")
		remoteAddr = fs.String("remote-write", "", "aggregator address to stream measurements to (required with -mode probe)")
		probeID    = fs.String("probe-id", "", "stable probe identity for federation (default: hostname); the aggregator tags this probe's series probe=<id>")
		spoolDir   = fs.String("spool-dir", "", "unacked-batch spool directory for -remote-write (default: <data-dir>/spool, or ./ruru-spool in-memory)")
		remBatch   = fs.Int("remote-batch", 256, "measurements per remote-write batch")
		remFlush   = fs.Duration("remote-flush", 200*time.Millisecond, "max wait before a partial remote-write batch is sent")
		fedListen  = fs.String("fed-listen", ":9100", "federation listen address with -mode aggregate")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q (all configuration is flags)", fs.Arg(0))
	}

	o := &options{
		listen: *listen, pcapPath: *pcapPath, rate: *rate, duration: *duration,
		queues: *queues, seed: *seed, firewall: *firewall,
		timestamps: *timestamps, trackSeq: *trackSeq, oneDir: *oneDir,
		snapshot: *snapshot, burst: *burst, blockMax: *blockMax, multi: *multi,
		sinkWk: *sinkWk, sinkBatch: *sinkBatch, dbStripes: *dbStripes,
		dataDir: *dataDir, mode: *mode, remoteAddr: *remoteAddr,
	}

	var err error
	if o.rollups, err = parseRollups(*rollup); err != nil {
		return nil, fmt.Errorf("bad -rollup: %v", err)
	}
	if o.flowTableBytes, err = parseBytes(*flowBytes); err != nil {
		return nil, fmt.Errorf("bad -flow-table-bytes: %v", err)
	}
	if o.queryCacheBytes, err = parseBytes(*qcBytes); err != nil {
		return nil, fmt.Errorf("bad -query-cache-bytes: %v", err)
	}

	var fsync tsdb.FsyncPolicy
	switch *fsyncMode {
	case "always":
		fsync = tsdb.FsyncAlways
	case "interval":
		fsync = tsdb.FsyncInterval
	case "off":
		fsync = tsdb.FsyncOff
	default:
		return nil, fmt.Errorf("unknown -fsync %q (want always, interval or off)", *fsyncMode)
	}
	if *dataDir != "" {
		o.persist = tsdb.PersistOptions{
			Dir: *dataDir, Fsync: fsync,
			CheckpointEvery: *ckptEvery, MaxSegmentBytes: *walSegMax,
		}
		if *ckptEvery == 0 {
			o.persist.CheckpointEvery = -1 // flag 0 means "manual only"
		}
	}

	switch *overflow {
	case "drop":
		o.overflow = nic.Drop
	case "block":
		o.overflow = nic.Block
	default:
		return nil, fmt.Errorf("unknown -overflow %q (want drop or block)", *overflow)
	}

	switch *mode {
	case "run":
	case "probe":
		if *remoteAddr == "" {
			return nil, fmt.Errorf("-mode probe requires -remote-write <aggregator addr>")
		}
	case "aggregate":
		o.federate.Listen = *fedListen
	default:
		return nil, fmt.Errorf("unknown -mode %q (want run, probe or aggregate)", *mode)
	}
	if *remoteAddr != "" {
		id := *probeID
		if id == "" {
			if id, err = hostname(); err != nil || id == "" {
				return nil, fmt.Errorf("-probe-id required (hostname unavailable: %v)", err)
			}
		}
		dir := *spoolDir
		if dir == "" {
			if *dataDir != "" {
				dir = *dataDir + "/spool"
			} else {
				dir = "ruru-spool"
			}
		}
		o.remote = fed.ProbeConfig{
			Addr: *remoteAddr, ID: id, SpoolDir: dir,
			BatchSize: *remBatch, FlushEvery: *remFlush,
		}
	}
	return o, nil
}

// parseBytes parses a byte count with an optional binary size suffix:
// "65536", "64K", "64M", "1G", "1T", with B/iB spellings accepted
// ("64MB", "64MiB"). Empty means 0 (feature off).
func parseBytes(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	if u == "" {
		return 0, nil
	}
	u = strings.TrimSuffix(u, "IB")
	u = strings.TrimSuffix(u, "B")
	mult := int64(1)
	if n := len(u); n > 0 {
		switch u[n-1] {
		case 'K':
			mult = 1 << 10
		case 'M':
			mult = 1 << 20
		case 'G':
			mult = 1 << 30
		case 'T':
			mult = 1 << 40
		}
		if mult > 1 {
			u = u[:n-1]
		}
	}
	v, err := strconv.ParseInt(u, 10, 64)
	if err != nil || v < 0 || v > math.MaxInt64/mult {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
