package main

// Table-driven contract for the command-line surface (TestQueryParamParsing
// style): accepted forms, applied defaults, derived values and rejections.
// The flag semantics asserted here are the ones documented in the README
// flag table — change one, change both.

import (
	"strings"
	"testing"
	"time"

	"ruru/internal/nic"
	"ruru/internal/tsdb"
)

func TestFlagParsing(t *testing.T) {
	hostname := func() (string, error) { return "test-host", nil }
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the expected error; "" = success
		check   func(t *testing.T, o *options)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, o *options) {
				if o.timestamps || o.trackSeq || o.oneDir {
					t.Errorf("trackers on by default: ts=%v seq=%v onedir=%v", o.timestamps, o.trackSeq, o.oneDir)
				}
				if o.overflow != nic.Drop {
					t.Errorf("default overflow = %v, want Drop", o.overflow)
				}
				if o.mode != "run" || o.listen != ":8080" || o.queues != 4 {
					t.Errorf("defaults: mode=%q listen=%q queues=%d", o.mode, o.listen, o.queues)
				}
				if len(o.rollups) == 0 {
					t.Error("default rollups empty, want the 1s/10s/1m ladder")
				}
				if o.persist.Dir != "" {
					t.Errorf("persistence on without -data-dir: %+v", o.persist)
				}
			},
		},
		{
			name: "timestamps tracker",
			args: []string{"-timestamps"},
			check: func(t *testing.T, o *options) {
				if !o.timestamps || o.trackSeq || o.oneDir {
					t.Errorf("ts=%v seq=%v onedir=%v, want true/false/false", o.timestamps, o.trackSeq, o.oneDir)
				}
			},
		},
		{
			name: "seq tracker",
			args: []string{"-track-seq"},
			check: func(t *testing.T, o *options) {
				if !o.trackSeq || o.oneDir || o.timestamps {
					t.Errorf("ts=%v seq=%v onedir=%v, want false/true/false", o.timestamps, o.trackSeq, o.oneDir)
				}
			},
		},
		{
			// -one-direction alone is valid: the pipeline implies TrackSeq
			// from it, the flag layer passes it through unmodified.
			name: "one-direction implies seq downstream",
			args: []string{"-one-direction"},
			check: func(t *testing.T, o *options) {
				if !o.oneDir {
					t.Error("oneDir not set")
				}
			},
		},
		{
			name: "both trackers",
			args: []string{"-timestamps", "-track-seq"},
			check: func(t *testing.T, o *options) {
				if !o.timestamps || !o.trackSeq {
					t.Errorf("ts=%v seq=%v, want both", o.timestamps, o.trackSeq)
				}
			},
		},
		{
			name: "overflow block",
			args: []string{"-overflow", "block", "-block-timeout", "2s"},
			check: func(t *testing.T, o *options) {
				if o.overflow != nic.Block || o.blockMax != 2*time.Second {
					t.Errorf("overflow=%v blockMax=%v", o.overflow, o.blockMax)
				}
			},
		},
		{
			name: "custom rollups",
			args: []string{"-rollup", "2s:1h,1m"},
			check: func(t *testing.T, o *options) {
				want := []tsdb.RollupTier{{Width: 2e9, Retention: 3600e9}, {Width: 60e9}}
				if len(o.rollups) != 2 || o.rollups[0] != want[0] || o.rollups[1] != want[1] {
					t.Errorf("rollups = %+v, want %+v", o.rollups, want)
				}
			},
		},
		{
			name: "durable storage",
			args: []string{"-data-dir", "/tmp/x", "-fsync", "always", "-checkpoint-every", "0"},
			check: func(t *testing.T, o *options) {
				if o.persist.Dir != "/tmp/x" || o.persist.Fsync != tsdb.FsyncAlways {
					t.Errorf("persist = %+v", o.persist)
				}
				if o.persist.CheckpointEvery != -1 {
					t.Errorf("checkpoint-every 0 should mean manual (-1), got %d", o.persist.CheckpointEvery)
				}
			},
		},
		{
			name: "probe mode with explicit id",
			args: []string{"-mode", "probe", "-remote-write", "agg:9100", "-probe-id", "akl-1"},
			check: func(t *testing.T, o *options) {
				if o.remote.Addr != "agg:9100" || o.remote.ID != "akl-1" || o.remote.SpoolDir != "ruru-spool" {
					t.Errorf("remote = %+v", o.remote)
				}
			},
		},
		{
			name: "probe id defaults to hostname, spool under data-dir",
			args: []string{"-mode", "probe", "-remote-write", "agg:9100", "-data-dir", "/tmp/x"},
			check: func(t *testing.T, o *options) {
				if o.remote.ID != "test-host" || o.remote.SpoolDir != "/tmp/x/spool" {
					t.Errorf("remote = %+v", o.remote)
				}
			},
		},
		{
			name: "aggregate mode",
			args: []string{"-mode", "aggregate", "-fed-listen", ":9200"},
			check: func(t *testing.T, o *options) {
				if o.federate.Listen != ":9200" {
					t.Errorf("federate = %+v", o.federate)
				}
			},
		},
		{
			name: "flow table cap with suffix",
			args: []string{"-flow-table-bytes", "64M"},
			check: func(t *testing.T, o *options) {
				if o.flowTableBytes != 64<<20 {
					t.Errorf("flowTableBytes = %d, want 64MiB", o.flowTableBytes)
				}
			},
		},
		{
			name: "flow table cap defaults to exact mode",
			args: nil,
			check: func(t *testing.T, o *options) {
				if o.flowTableBytes != 0 {
					t.Errorf("flowTableBytes = %d, want 0 (exact-only)", o.flowTableBytes)
				}
			},
		},
		{
			name: "query cache defaults to 16MiB",
			args: nil,
			check: func(t *testing.T, o *options) {
				if o.queryCacheBytes != 16<<20 {
					t.Errorf("queryCacheBytes = %d, want 16MiB", o.queryCacheBytes)
				}
			},
		},
		{
			name: "query cache sized and disabled",
			args: []string{"-query-cache-bytes", "0"},
			check: func(t *testing.T, o *options) {
				if o.queryCacheBytes != 0 {
					t.Errorf("queryCacheBytes = %d, want 0 (disabled)", o.queryCacheBytes)
				}
			},
		},
		{
			name: "query cache with suffix",
			args: []string{"-query-cache-bytes", "64M"},
			check: func(t *testing.T, o *options) {
				if o.queryCacheBytes != 64<<20 {
					t.Errorf("queryCacheBytes = %d, want 64MiB", o.queryCacheBytes)
				}
			},
		},
		{name: "unknown flag", args: []string{"-no-such-flag"}, wantErr: "not defined"},
		{name: "bad flow table cap", args: []string{"-flow-table-bytes", "lots"}, wantErr: "bad -flow-table-bytes"},
		{name: "bad query cache", args: []string{"-query-cache-bytes", "much"}, wantErr: "bad -query-cache-bytes"},
		{name: "bad overflow", args: []string{"-overflow", "spill"}, wantErr: "unknown -overflow"},
		{name: "bad fsync", args: []string{"-fsync", "sometimes"}, wantErr: "unknown -fsync"},
		{name: "bad mode", args: []string{"-mode", "relay"}, wantErr: "unknown -mode"},
		{name: "bad rollup", args: []string{"-rollup", "nope"}, wantErr: "bad -rollup"},
		{name: "probe without remote-write", args: []string{"-mode", "probe"}, wantErr: "-mode probe requires"},
		{name: "positional args rejected", args: []string{"trailing"}, wantErr: "unexpected argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseFlags("ruru-test", tc.args, hostname)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseFlags(%v): %v", tc.args, err)
			}
			tc.check(t, o)
		})
	}
}

// TestParseBytes pins the size-suffix grammar of -flow-table-bytes: plain
// integers are bytes, a trailing K/M/G/T (optionally with B or iB) is a
// binary multiplier, and anything ambiguous or overflowing is rejected.
func TestParseBytes(t *testing.T) {
	good := []struct {
		in   string
		want int64
	}{
		{"", 0}, {"0", 0}, {"123", 123},
		{"4K", 4 << 10}, {"4KB", 4 << 10}, {"4KiB", 4 << 10}, {"4kib", 4 << 10},
		{"64M", 64 << 20}, {"64MB", 64 << 20}, {"64MiB", 64 << 20},
		{"2G", 2 << 30}, {"1T", 1 << 40},
		{" 8M ", 8 << 20}, {"100B", 100},
	}
	for _, tc := range good {
		got, err := parseBytes(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, in := range []string{"lots", "-1", "-4K", "12X", "K", "4.5M", "9999999999G", "64MiBs"} {
		if got, err := parseBytes(in); err == nil {
			t.Errorf("parseBytes(%q) = %d, want error", in, got)
		}
	}
}
