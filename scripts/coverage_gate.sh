#!/usr/bin/env bash
# Coverage gate for the measurement-critical packages: internal/pkt (frame
# parsing), internal/core (handshake engine) and internal/tsdb (storage +
# WAL). The combined statement coverage recorded when this gate landed was
# 88.7%; the gate fails CI if it drops below GATE below (a small margin
# under the recorded level absorbs run-to-run noise from timing-dependent
# error branches — raise the gate when coverage meaningfully improves, and
# never lower it to make a PR pass).
#
# Usage: scripts/coverage_gate.sh [profile-out]
# The profile is left at ${1:-coverage.out} for CI artifact upload.
set -euo pipefail
cd "$(dirname "$0")/.."

GATE=87.0
PROFILE=${1:-coverage.out}
PKGS=ruru/internal/pkt,ruru/internal/core,ruru/internal/tsdb

go test -coverprofile="$PROFILE" -coverpkg="$PKGS" \
  ./internal/pkt ./internal/core ./internal/tsdb

total=$(go tool cover -func="$PROFILE" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')
awk -v t="$total" -v min="$GATE" 'BEGIN {
  if (t + 0 < min + 0) {
    printf "FAIL: combined pkt+core+tsdb coverage %.1f%% is below the %.1f%% gate\n", t, min
    exit 1
  }
  printf "coverage gate ok: %.1f%% (gate %.1f%%)\n", t, min
}'
