#!/bin/sh
# Crash-recovery smoke test (run from the repo root; CI runs it after the
# unit suite): start the full pipeline with durable storage, let it ingest
# synthetic traffic, SIGKILL it mid-stream, restart on the same -data-dir,
# and assert every point that was durable before the kill is queryable
# after recovery.
#
# With -fsync always, a point is fsynced to the WAL before it is counted in
# DBPoints, so the pre-kill DBPoints reading is a hard lower bound for the
# post-restart count: recovered < pre-kill means lost measurements.
set -eu

listen="127.0.0.1:18098"
tmp="$(mktemp -d)"
data="$tmp/data"
pid=""
trap 'if [ -n "$pid" ]; then kill -9 "$pid" 2>/dev/null || true; fi; rm -rf "$tmp"' EXIT

db_points() {
    curl -sf "http://$listen/api/stats" 2>/dev/null |
        python3 -c 'import json,sys; print(json.load(sys.stdin)["DBPoints"])' 2>/dev/null || echo 0
}

go build -o "$tmp/ruru" ./cmd/ruru

"$tmp/ruru" -listen "$listen" -rate 400 -duration 2m -queues 2 -overflow block \
    -data-dir "$data" -fsync always -checkpoint-every 4s >"$tmp/run1.log" 2>&1 &
pid=$!

pre=0
for _ in $(seq 1 30); do
    sleep 1
    pre=$(db_points)
    [ "$pre" -ge 200 ] && break
done
if [ "$pre" -lt 200 ]; then
    echo "FAIL: only $pre points ingested before kill" >&2
    cat "$tmp/run1.log" >&2
    exit 1
fi

# Exercise the manual checkpoint endpoint on the way down.
curl -sf -X POST "http://$listen/api/checkpoint" >/dev/null

kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# Restart quiescent (-rate 0: no new arrivals) on the same directory.
"$tmp/ruru" -listen "$listen" -rate 0 -data-dir "$data" >"$tmp/run2.log" 2>&1 &
pid=$!
post=0
for _ in $(seq 1 30); do
    sleep 1
    post=$(db_points)
    [ "$post" -gt 0 ] && break
done

recovered=$(curl -sf "http://$listen/api/stats" | python3 -c '
import json, sys
ps = json.load(sys.stdin)["Persist"]
print(ps["RestoredPoints"] + ps["WALReplayedPoints"])')

if [ "$post" -lt "$pre" ]; then
    echo "FAIL: $pre durable points before kill -9, only $post after restart" >&2
    cat "$tmp/run2.log" >&2
    exit 1
fi
if [ "$recovered" -lt "$pre" ]; then
    echo "FAIL: recovery path reported $recovered points (< $pre)" >&2
    cat "$tmp/run2.log" >&2
    exit 1
fi
echo "PASS: $pre durable points before kill -9, $post served after restart ($recovered via checkpoint+WAL)"
