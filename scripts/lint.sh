#!/usr/bin/env bash
# One-shot lint entry, used by CI and developers alike:
#
#   gofmt       formatting
#   go vet      the standard analyzers
#   ruru-vet    the repo-invariant suite (internal/lint): lock order,
#               atomic discipline, hot-path alloc guards, unchecked
#               load-bearing results
#   staticcheck general bug classes the custom suite does not cover
#   govulncheck known-vulnerable call paths in deps and the toolchain
#
# gofmt, go vet and ruru-vet need nothing beyond the Go toolchain and
# always run. The two third-party tools are gated: locally a missing
# binary is skipped with a note (offline checkouts must still be able to
# lint), while CI exports LINT_STRICT=1 so a missing tool fails the step
# instead of silently thinning the suite.
#
# Suppressing a ruru-vet finding requires a justified directive:
#   //ruru:ignore <analyzer> <why>
# See docs/TESTING.md "Static analysis".
set -u
cd "$(dirname "$0")/.."

fail=0

echo "== gofmt"
out="$(gofmt -l .)"
if [ -n "$out" ]; then
    echo "files need gofmt:" >&2
    echo "$out" >&2
    fail=1
fi

echo "== go vet"
go vet ./... || fail=1

echo "== ruru-vet"
go run ./cmd/ruru-vet -vet=false ./... || fail=1

run_tool() {
    tool="$1"
    shift
    bin="$(command -v "$tool" || true)"
    if [ -z "$bin" ] && [ -x "$(go env GOPATH)/bin/$tool" ]; then
        bin="$(go env GOPATH)/bin/$tool"
    fi
    if [ -n "$bin" ]; then
        echo "== $tool"
        "$bin" "$@" || fail=1
    elif [ "${LINT_STRICT:-0}" = "1" ]; then
        echo "== $tool: not installed (required with LINT_STRICT=1)" >&2
        fail=1
    else
        echo "== $tool: not installed, skipping (CI runs it; install with 'go install')"
    fi
}

run_tool staticcheck ./...
run_tool govulncheck ./...

exit "$fail"
