#!/usr/bin/env bash
# Benchmark-trajectory gate: runs the fixed microbenchmark suite
# (`ruru-bench -json`, see internal/bench) and compares ns/op per benchmark
# against the newest checked-in BENCH_*.json. A regression beyond the noise
# tolerance fails the build; a new benchmark (absent from the baseline) and
# a benchmark removed from the suite are both reported but never fail.
#
# Usage: scripts/bench_compare.sh [out.json]
#   out.json     where to write the fresh trajectory entry
#                (default: bench_current.json, uploaded as a CI artifact)
#
# Environment:
#   BENCH_TOL        allowed ns/op regression factor (default 1.15 = +15%)
#   BENCH_BASELINE   explicit baseline file (default: newest BENCH_*.json
#                    in the repo root by PR number)
#   BENCH_TIME       per-benchmark run time (default 1s)
#
# The checked-in BENCH_PRn.json files form the performance trajectory of
# the repo: one entry per PR that touched a hot path. To record a new
# entry, run `go run ./cmd/ruru-bench -json BENCH_PRn.json` on a quiet
# machine and commit the file.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-bench_current.json}
TOL=${BENCH_TOL:-1.15}
BENCHTIME=${BENCH_TIME:-1s}

baseline=${BENCH_BASELINE:-}
if [ -z "$baseline" ]; then
  # Newest trajectory entry by PR number (version sort handles PR10 > PR9).
  baseline=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -n 1 || true)
fi

go run ./cmd/ruru-bench -json "$OUT" -benchtime "$BENCHTIME"

if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
  echo "bench_compare: skipping comparison (no BENCH_*.json baseline checked in)"
  exit 0
fi
echo "bench_compare: comparing $OUT against baseline $baseline (tolerance ${TOL}x)"

# Plain-shell JSON extraction: the files are machine-written with one key
# per line, so "name"/"ns_per_op" pairs can be scraped without jq (which
# the CI image may not have).
extract() { # extract FILE -> lines "name ns_per_op"
  awk '
    /^    "[^"]+": \{$/ { name = $1; gsub(/^"|":$/, "", name); next }
    /"ns_per_op":/ && name != "" {
      v = $2; gsub(/,$/, "", v)
      print name, v
      name = ""
    }
  ' "$1"
}

extract "$baseline" | sort > /tmp/bench_base.$$
extract "$OUT" | sort > /tmp/bench_cur.$$
trap 'rm -f /tmp/bench_base.$$ /tmp/bench_cur.$$' EXIT

fail=0
while read -r name cur; do
  base=$(awk -v n="$name" '$1 == n { print $2 }' /tmp/bench_base.$$)
  if [ -z "$base" ]; then
    echo "  NEW   $name: ${cur} ns/op (no baseline entry)"
    continue
  fi
  verdict=$(awk -v b="$base" -v c="$cur" -v tol="$TOL" 'BEGIN {
    ratio = c / b
    printf "%.3f", ratio
    exit (ratio > tol) ? 1 : 0
  }') && ok=1 || ok=0
  if [ "$ok" = 1 ]; then
    echo "  ok    $name: ${cur} vs ${base} ns/op (${verdict}x)"
  else
    echo "  FAIL  $name: ${cur} vs ${base} ns/op (${verdict}x > ${TOL}x tolerance)"
    fail=1
  fi
done < /tmp/bench_cur.$$

while read -r name base; do
  if ! grep -q "^$name " /tmp/bench_cur.$$; then
    echo "  GONE  $name: in baseline ($base ns/op) but not in current suite"
  fi
done < /tmp/bench_base.$$

if [ "$fail" = 1 ]; then
  echo "bench_compare: ns/op regression beyond ${TOL}x tolerance" >&2
  exit 1
fi
echo "bench_compare: ok"
