package tsdb

// qcache.go — the query result cache in front of Execute.
//
// Every dashboard tick re-executes the same query shape over a window that
// moved by a bucket or two, so at fleet scale the read path re-aggregates
// almost entirely unchanged history on every refresh. The cache closes that
// gap: results of tier-served, bucket-aligned queries are keyed on the
// canonicalized shape (measurement, field, where, group_by, aggs, window,
// serving tier) — NOT on the time range — and a hit whose range advanced
// re-aggregates only the buckets past the cached high-water mark, re-opening
// the last possibly-partial bucket, instead of rescanning the range.
//
// Correctness model (the cache must stay bit-exact with an uncached
// Execute):
//
//   - Frozen region. An entry stores rendered buckets only up to
//     frozenEnd = floor((maxT−slack)/window)·window: everything within
//     slack of the newest point is considered still open and is always
//     re-aggregated. The slack absorbs the pipeline's routine mild
//     reordering (batched writers advance maxT before applying points).
//   - Backfill generation. A write older than maxT−slack lands (or could
//     land) inside somebody's frozen region, so the write path bumps a
//     global generation counter *after* applying the point (under the
//     stripe lock); entries remember the generation loaded *before* their
//     scan and a mismatch at lookup time discards them. Between the two
//     rules, data under a served frozen bucket provably has not changed.
//   - Group presence. Which groups appear in a result depends on shard
//     overlap and field existence over the whole range, which can change
//     without any point landing in the frozen region (a shard straddling
//     End gaining the field). Every serve therefore re-resolves presence
//     over the full range — O(series) shard-overlap checks, no bucket
//     merging — and only the per-bucket aggregation is reused.
//   - Retention. Tier sweeps drop whole tier shards behind
//     maxT−tier.Retention; a query that reaches below that horizon is
//     refused by the cache (a miss, served uncached) because its frozen
//     buckets may describe since-dropped data. At or above the horizon a
//     surviving shard still holds every bucket, so frozen state is safe.
//
// Lock/ownership contract: queryCache.mu is a leaf lock guarding only the
// table, LRU list and byte ledger. It is never held across a stripe scan —
// lookups copy out the entry pointer (entries are immutable once published;
// refreshes install a fresh entry) and the merge runs lock-free before
// re-acquiring mu to publish. The backfill generation and the stat counters
// are atomics. Registered in the repo lockorder spec (internal/lint).
//
// Entries store frozen buckets fully rendered — []Bucket with the final
// Aggs maps — and a serve copies the bucket structs while sharing the map
// values, so a hit costs a memmove per group instead of a map allocation
// per bucket. The shared maps are immutable by the same argument as the
// entries themselves; correspondingly, Execute results served through the
// cache must be treated as read-only by callers (every in-repo consumer
// only marshals them).

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
)

// qcacheSlack is how far (ns) behind the newest point the frozen high-water
// mark trails: buckets within the slack are always re-aggregated, and only
// writes older than the slack count as cache-invalidating backfills. 30s
// covers the sink's batch-induced reordering by orders of magnitude while
// keeping the per-refresh tail a few buckets wide at dashboard widths.
const qcacheSlack = 30_000_000_000

// Rough per-entry / per-group / per-bucket bookkeeping overhead charged
// against the byte budget on top of the measured key/group payloads. The
// bucket charge covers the Bucket struct plus its Aggs map header; each agg
// entry adds qcacheAggOverhead more. Refresh chains share Aggs maps between
// successive entries, so this over-counts shared state — deliberately
// conservative for a budget.
const (
	qcacheEntryOverhead  = 160
	qcacheGroupOverhead  = 64
	qcacheBucketOverhead = 72
	qcacheAggOverhead    = 16
)

// CacheStats is the query cache counter snapshot reported in /api/stats.
type CacheStats struct {
	// Enabled reports whether Options.QueryCache configured a cache at all.
	Enabled bool `json:"enabled"`
	// Hits counts queries served (at least partially) from a cached entry;
	// PartialRefreshes counts the subset that additionally re-aggregated a
	// tail past the entry's high-water mark.
	Hits             uint64 `json:"hits"`
	Misses           uint64 `json:"misses"`
	PartialRefreshes uint64 `json:"partial_refreshes"`
	// Evictions counts entries removed by byte-budget pressure (LRU order).
	Evictions uint64 `json:"evictions"`
	// Bytes is the current accounted footprint (≤ Options.QueryCache).
	Bytes int64 `json:"bytes"`
}

// queryCache is the shape-keyed result cache. See the file comment for the
// correctness model.
type queryCache struct {
	budget int64
	// slack mirrors qcacheSlack; a plain field so tests can pin the frozen
	// boundary deterministically (set before any writes or queries).
	slack int64

	// gen is the backfill generation: bumped by the write path after
	// applying any point older than maxT−slack. Entries cache the value
	// read before their scan; a mismatch at lookup invalidates them.
	gen atomic.Uint64

	hits    atomic.Uint64
	misses  atomic.Uint64
	partial atomic.Uint64
	evicted atomic.Uint64

	mu    sync.Mutex // leaf: never held across a stripe scan
	table map[string]*qcacheEntry
	head  *qcacheEntry // LRU: head = most recently used
	tail  *qcacheEntry
	bytes int64
}

// qcacheEntry is one cached shape: rendered frozen buckets for
// [start, frozenEnd) per group. Entries are immutable once published — a
// refresh installs a replacement — so lookups may use them lock-free.
type qcacheEntry struct {
	key       string
	start     int64 // first frozen bucket start (window-aligned)
	frozenEnd int64 // exclusive frozen high-water mark (window-aligned)
	window    int64
	gen       uint64
	groups    []cachedGroup // sorted by group
	size      int64

	prev, next *qcacheEntry
}

// cachedGroup holds one group's frozen buckets fully rendered, with
// absolute bucket starts and the exact float bits the original aggregation
// produced. The buckets (and their Aggs maps) are immutable: serves copy
// the structs and share the maps.
type cachedGroup struct {
	group   string
	buckets []Bucket
}

func newQueryCache(budget int64) *queryCache {
	return &queryCache{
		budget: budget,
		slack:  qcacheSlack,
		table:  make(map[string]*qcacheEntry),
	}
}

// noteBackfill is the write-path invalidation hook: called after a point is
// applied (still under the stripe lock) so that a reader whose scan missed
// the point is guaranteed to observe the bump before trusting a cached
// entry built from the pre-write state.
//
//ruru:noalloc
func (db *DB) noteBackfill(t, maxT int64) {
	if qc := db.qcache; qc != nil && t < maxT-qc.slack {
		qc.gen.Add(1)
	}
}

// CacheStats snapshots the query cache counters (zero value when the cache
// is disabled).
func (db *DB) CacheStats() CacheStats {
	qc := db.qcache
	if qc == nil {
		return CacheStats{}
	}
	qc.mu.Lock()
	bytes := qc.bytes
	qc.mu.Unlock()
	return CacheStats{
		Enabled:          true,
		Hits:             qc.hits.Load(),
		Misses:           qc.misses.Load(),
		PartialRefreshes: qc.partial.Load(),
		Evictions:        qc.evicted.Load(),
		Bytes:            bytes,
	}
}

// canonicalAggs returns the sorted, deduplicated agg set. The result map of
// a bucket depends only on the set (duplicates and order collapse in the
// map), so the canonical form can both key the cache and drive rendering.
func canonicalAggs(in []AggKind) []AggKind {
	out := append([]AggKind(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, a := range out {
		if i == 0 || a != out[n-1] {
			out[n] = a
			n++
		}
	}
	return out[:n]
}

// cacheKey builds the canonical shape key: measurement, field, group_by,
// sorted where filters, canonical aggs, window and serving tier width —
// everything that decides the result besides the time range. Components are
// length-prefixed so the encoding is unambiguous.
func cacheKey(q *Query, aggs []AggKind, window, tierWidth int64) string {
	b := make([]byte, 0, 96)
	app := func(s string) {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	app(q.Measurement)
	app(q.Field)
	app(q.GroupBy)
	where := append([]Tag(nil), q.Where...)
	sort.Slice(where, func(i, j int) bool {
		if where[i].Key != where[j].Key {
			return where[i].Key < where[j].Key
		}
		return where[i].Value < where[j].Value
	})
	b = binary.AppendUvarint(b, uint64(len(where)))
	for _, t := range where {
		app(t.Key)
		app(t.Value)
	}
	b = binary.AppendUvarint(b, uint64(len(aggs)))
	for _, a := range aggs {
		app(string(a))
	}
	b = binary.AppendVarint(b, window)
	b = binary.AppendVarint(b, tierWidth)
	return string(b)
}

// executeCached serves a tier-planned query through the cache. ok=false
// means the shape is uncacheable (no explicit window, or bounds off bucket
// boundaries) or a retention horizon forbids trusting frozen state — the
// caller falls back to the plain tier executor.
func (db *DB) executeCached(q *Query, window int64, nBuckets, ti int) ([]SeriesResult, bool) {
	qc := db.qcache
	if q.Window <= 0 ||
		floorDiv(q.Start, window)*window != q.Start ||
		floorDiv(q.End, window)*window != q.End {
		return nil, false
	}
	tier := &db.opts.Rollups[ti]
	maxT := db.maxT.Load()
	if tier.Retention > 0 && q.Start < maxT-tier.Retention {
		// Below the tier's retention horizon a sweep may already have
		// dropped shards the frozen buckets describe; neither serving nor
		// refreshing cached state is sound there.
		qc.misses.Add(1)
		return nil, false
	}
	aggs := canonicalAggs(q.Aggs)
	key := cacheKey(q, aggs, window, tier.Width)
	// Load the generation before any stripe is scanned: a backfill applied
	// after this load bumps gen after its apply, so an entry stored with
	// this value can never hide that write from a later lookup.
	gen := qc.gen.Load()

	var frozen *qcacheEntry
	tailStart := q.Start
	qc.mu.Lock()
	if e := qc.table[key]; e != nil && e.gen == gen &&
		e.window == window && q.Start >= e.start && q.Start < e.frozenEnd {
		frozen = e
		tailStart = e.frozenEnd
		if tailStart > q.End {
			tailStart = q.End
		}
		qc.touchLocked(e)
	}
	qc.mu.Unlock()

	nFrozen := int((tailStart - q.Start) / window)
	nTail := nBuckets - nFrozen
	groups := db.scanTierTail(q, window, ti, tailStart, nTail)

	if frozen != nil {
		qc.hits.Add(1)
		if nTail > 0 {
			qc.partial.Add(1)
		}
	} else {
		qc.misses.Add(1)
	}

	out := make([]SeriesResult, 0, len(groups))
	var zero rollAcc
	var zeroAggs map[AggKind]float64 // shared empty-bucket map, built lazily
	for g, accs := range groups {
		res := SeriesResult{Group: g, Tier: tier.Width, Buckets: make([]Bucket, nBuckets)}
		var fg *cachedGroup
		if frozen != nil {
			fg = frozen.groupFor(g)
		}
		if fg != nil {
			// Stored buckets carry absolute starts, so the frozen prefix is
			// a straight struct copy; the Aggs maps are shared, immutable.
			off := int((q.Start - frozen.start) / window)
			copy(res.Buckets[:nFrozen], fg.buckets[off:off+nFrozen])
		} else {
			// Present group with no frozen state: no data existed in the
			// frozen region when the entry was built (anything newer would
			// have bumped gen), so the buckets are empty. One shared map
			// serves them all.
			if nFrozen > 0 && zeroAggs == nil {
				zeroAggs = zero.toBucket(0, aggs).Aggs
			}
			for i := 0; i < nFrozen; i++ {
				res.Buckets[i] = Bucket{Start: q.Start + int64(i)*window, Aggs: zeroAggs}
			}
		}
		for i := 0; i < nTail; i++ {
			a := &zero
			if accs != nil {
				a = &accs[i]
			}
			res.Buckets[nFrozen+i] = a.toBucket(tailStart+int64(i)*window, aggs)
		}
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })

	// Publish the refreshed frozen prefix. maxT was loaded before the scan,
	// so newFe is conservative: any later write below it is a backfill by
	// construction and invalidates the entry through gen.
	newFe := floorDiv(maxT-qc.slack, window) * window
	if newFe > q.End {
		newFe = q.End
	}
	if newFe < q.Start {
		newFe = q.Start
	}
	nKeep := int((newFe - q.Start) / window)
	advanced := frozen == nil || newFe > frozen.frozenEnd
	trimmed := frozen != nil && newFe == frozen.frozenEnd && q.Start > frozen.start
	if nKeep > 0 && (advanced || trimmed) {
		e := &qcacheEntry{key: key, start: q.Start, frozenEnd: newFe, window: window, gen: gen}
		e.groups = make([]cachedGroup, 0, len(out))
		for _, res := range out {
			e.groups = append(e.groups, cachedGroup{
				group:   res.Group,
				buckets: append([]Bucket(nil), res.Buckets[:nKeep]...),
			})
		}
		e.size = e.sizeBytes(len(aggs))
		qc.insert(e)
	}
	return out, true
}

// scanTierTail resolves group presence over the full [q.Start, q.End) range
// while merging tier buckets only from tailStart on. A map entry with a nil
// accumulator slice marks a group that is present (some overlapping tier
// shard carries the field) but contributed no tail data. The loop structure
// mirrors executeTier exactly — same iteration order, same merge calls — so
// tail buckets come out bit-identical to an uncached execution.
func (db *DB) scanTierTail(q *Query, window int64, ti int, tailStart int64, nTail int) map[string][]rollAcc {
	needQuant := false
	for _, a := range q.Aggs {
		if a == AggMedian || a == AggP95 || a == AggP99 {
			needQuant = true
		}
	}
	matched := matchIdents(db.dir.Load(), q)
	groups := map[string][]rollAcc{}
	for si, st := range db.stripes {
		locked := false
		for _, id := range matched {
			if id.stripeIdx != uint32(si) {
				continue
			}
			if !locked {
				st.mu.RLock()
				locked = true
			}
			group := ""
			if q.GroupBy != "" {
				group = tagValue(id.tags, q.GroupBy)
			}
			for _, its := range id.tierShards(ti) {
				if its.end <= q.Start || its.start >= q.End {
					continue
				}
				col, ok := its.ts.fields[q.Field]
				if !ok {
					continue
				}
				accs, seen := groups[group]
				if !seen {
					groups[group] = nil
				}
				if nTail == 0 || its.end <= tailStart {
					continue
				}
				lo := sort.Search(len(col.starts), func(i int) bool { return col.starts[i] >= tailStart })
				for i := lo; i < len(col.starts) && col.starts[i] < q.End; i++ {
					if accs == nil {
						accs = make([]rollAcc, nTail)
						groups[group] = accs
					}
					accs[(col.starts[i]-tailStart)/window].merge(&col.buckets[i], needQuant)
				}
			}
		}
		if locked {
			st.mu.RUnlock()
		}
	}
	return groups
}

// groupFor returns the entry's frozen state for a group, or nil.
func (e *qcacheEntry) groupFor(g string) *cachedGroup {
	i := sort.Search(len(e.groups), func(i int) bool { return e.groups[i].group >= g })
	if i < len(e.groups) && e.groups[i].group == g {
		return &e.groups[i]
	}
	return nil
}

func (e *qcacheEntry) sizeBytes(nAggs int) int64 {
	sz := int64(len(e.key)) + qcacheEntryOverhead
	perBucket := int64(qcacheBucketOverhead + nAggs*qcacheAggOverhead)
	for i := range e.groups {
		g := &e.groups[i]
		sz += int64(len(g.group)) + qcacheGroupOverhead +
			int64(len(g.buckets))*perBucket
	}
	return sz
}

// insert publishes e, replacing any previous entry for the key, and evicts
// from the LRU tail until the byte budget holds (possibly evicting e itself
// when a single entry exceeds the whole budget).
func (qc *queryCache) insert(e *qcacheEntry) {
	qc.mu.Lock()
	if old := qc.table[e.key]; old != nil {
		qc.unlinkLocked(old) // replacement, not an eviction
	}
	qc.table[e.key] = e
	qc.pushFrontLocked(e)
	qc.bytes += e.size
	for qc.bytes > qc.budget && qc.tail != nil {
		victim := qc.tail
		qc.unlinkLocked(victim)
		delete(qc.table, victim.key)
		qc.evicted.Add(1)
	}
	qc.mu.Unlock()
}

// touchLocked moves e to the LRU front. Caller holds mu.
func (qc *queryCache) touchLocked(e *qcacheEntry) {
	if qc.head == e {
		return
	}
	qc.popLocked(e)
	qc.pushFrontLocked(e)
}

// unlinkLocked removes e from the list, table bookkeeping aside, and debits
// its bytes. Caller holds mu and owns the table update.
func (qc *queryCache) unlinkLocked(e *qcacheEntry) {
	qc.popLocked(e)
	qc.bytes -= e.size
}

func (qc *queryCache) popLocked(e *qcacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		qc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		qc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (qc *queryCache) pushFrontLocked(e *qcacheEntry) {
	e.prev, e.next = nil, qc.head
	if qc.head != nil {
		qc.head.prev = e
	}
	qc.head = e
	if qc.tail == nil {
		qc.tail = e
	}
}
