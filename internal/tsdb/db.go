package tsdb

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ruru/internal/hashx"
)

// Options configures a DB.
type Options struct {
	// ShardDuration is the time width of one shard (default 1h of the
	// data's own clock).
	ShardDuration int64
	// Retention drops shards whose end is older than this much behind the
	// newest point (0 = keep everything).
	Retention int64
	// Stripes is the number of independently locked partitions the series
	// space is hashed across (default 8, rounded up to a power of two).
	// Concurrent writers contend only when they touch series in the same
	// stripe; Stripes = 1 restores the old single-global-lock behaviour.
	Stripes int
	// Rollups enables multi-resolution downsampling: every write
	// additionally feeds each listed tier's pre-aggregates, and Execute
	// serves aligned windowed queries from the coarsest usable tier (see
	// rollup.go). Nil disables rollups. Open sorts the tiers finest-first
	// and drops invalid (non-positive width) or duplicate-width entries.
	Rollups []RollupTier
	// Persist enables durable storage (write-ahead log + checkpointed
	// snapshots under Persist.Dir, restored on open — see persist.go).
	// Requires OpenDB: enabling persistence can fail with I/O errors that
	// the error-free Open cannot report. Nil keeps the DB in-memory.
	Persist *PersistOptions
	// QueryCache, when > 0, bounds a shape-keyed result cache in front of
	// Execute in bytes (LRU-evicted; see qcache.go). Repeated dashboard
	// queries whose window merely advanced re-aggregate only the buckets
	// past the cached high-water mark; results stay bit-exact with an
	// uncached Execute. Zero disables the cache.
	QueryCache int64
}

// DB is the time-series database. Safe for concurrent use. Writes to
// different series take different stripe locks, so concurrent writers (the
// pipeline's sink workers) do not serialize on one global mutex.
type DB struct {
	opts    Options
	stripes []*stripe
	mask    uint32

	maxT atomic.Int64 // newest point time seen (retention horizon anchor)
	// sweepRet is the smallest positive retention across raw storage and
	// the rollup tiers (0 when nothing expires): it decides how often
	// maybeSweepAll must run.
	sweepRet int64
	// sweptShard is the last horizon shard index for which every stripe
	// was purged: writes to one stripe must still retire expired shards
	// in stripes that have gone idle.
	sweptShard atomic.Int64
	closed     atomic.Bool
	written    atomic.Uint64
	dropped    atomic.Uint64 // points dropped by retention at write time

	// qcache is the Execute result cache (nil unless Options.QueryCache).
	// The write paths notify it of backfills (points older than the frozen
	// slack) so served frozen buckets provably describe unchanged data.
	qcache *queryCache

	// Durability (nil / uncontended on in-memory databases). Writers hold
	// commitMu.RLock from their WAL append through their in-memory apply;
	// Checkpoint takes it exclusively for the instant of the WAL rotation
	// so the checkpoint cut is exact: state == every record below the
	// rotated-to segment. Lock order is commitMu, then stripe mu, then
	// dirMu.
	persist  *persister
	commitMu sync.RWMutex

	// Series directory: every series identity ever written, published
	// copy-on-write behind dir so queries resolve series lock-free (see
	// ref.go). byKey/refByKey and the backing arrays are guarded by dirMu;
	// a write creating a brand-new series interns it under stripe mu →
	// dirMu, which is why dirMu is last in the lock order.
	dir       atomic.Pointer[seriesDir]
	dirMu     sync.Mutex
	byKey     map[string]*seriesIdent
	refByKey  map[string]SeriesRef
	identsBuf []*seriesIdent
	refsBuf   []*refState

	// scratchPool recycles the per-batch key arena + stripe-id scratch the
	// legacy Write/WriteBatch paths use, so they no longer allocate per
	// call.
	scratchPool sync.Pool

	closeOnce sync.Once
	closeErr  error
}

// writeScratch is pooled per-call scratch for the legacy write paths: a key
// arena (all series keys of a batch, back to back), per-point arena offsets
// and per-point stripe ids.
type writeScratch struct {
	arena []byte
	offs  []int
	sids  []uint32
}

// stripe is one lock-striped partition: a full shard map for the series
// that hash into it, plus per-tier rollup shard maps for the same series.
// A series' raw points and its tier pre-aggregates always live in the same
// stripe and are only touched under mu.
type stripe struct {
	mu     sync.RWMutex
	shards map[int64]*shard // keyed by shard start time
	order  []int64          // sorted shard starts
	tiers  []tierStripe     // one per Options.Rollups entry
}

// shard holds all series for one time slice (within one stripe). Queries
// do not scan shards for series identity any more — the copy-on-write
// directory (ref.go) knows which shards every series lives in — so shards
// no longer carry an inverted tag index.
type shard struct {
	start, end int64
	series     map[string]*series
}

// series is one (measurement, tagset) column store. Fields are positional
// (fkeys[i] names cols[i]): the working field set of a series is a handful
// of keys, so a linear scan beats a map hop, gives the ref path stable
// column indices to cache, and makes snapshot iteration deterministic.
// name/tags alias the owning ident's strings.
type series struct {
	name  string
	tags  []Tag
	ident *seriesIdent
	times []int64
	fkeys []string
	cols  [][]float64
}

// findCol returns the index of the named column, or -1.
func (sr *series) findCol(key string) int {
	for i, k := range sr.fkeys {
		if k == key {
			return i
		}
	}
	return -1
}

// addCol appends a new column padded with NaN for every existing row and
// returns its index. Caller holds the owning stripe's lock.
func (sr *series) addCol(key string) int {
	col := make([]float64, len(sr.times))
	for i := range col {
		col[i] = nan
	}
	sr.fkeys = append(sr.fkeys, key)
	sr.cols = append(sr.cols, col)
	return len(sr.cols) - 1
}

// Open creates an empty in-memory DB. It panics if opts.Persist is set:
// persistence performs I/O that can fail, which only OpenDB can report.
func Open(opts Options) *DB {
	if opts.Persist != nil {
		panic("tsdb: Options.Persist requires OpenDB")
	}
	db, _ := OpenDB(opts)
	return db
}

// OpenDB creates a DB. With opts.Persist set it owns the data directory
// (refusing a second opener via the lockfile), restores the newest
// checkpoint, replays the WAL tail through the normal write path —
// rebuilding rollup tiers and re-applying retention — and then logs every
// subsequent Write/WriteBatch ahead of applying it. A torn final WAL
// record (crash mid-append) is tolerated and reported in PersistStats;
// corruption anywhere earlier fails the open. Without Persist it is
// identical to Open.
func OpenDB(opts Options) (*DB, error) {
	if opts.ShardDuration <= 0 {
		opts.ShardDuration = int64(3600) * 1e9
	}
	if opts.Stripes <= 0 {
		opts.Stripes = 8
	}
	opts.Rollups = normalizeRollups(opts.Rollups)
	n := 1
	for n < opts.Stripes {
		n <<= 1
	}
	db := &DB{opts: opts, stripes: make([]*stripe, n), mask: uint32(n - 1)}
	if opts.Retention > 0 {
		db.sweepRet = opts.Retention
	}
	for _, t := range opts.Rollups {
		if t.Retention > 0 && (db.sweepRet == 0 || t.Retention < db.sweepRet) {
			db.sweepRet = t.Retention
		}
	}
	db.sweptShard.Store(math.MinInt64)
	if opts.QueryCache > 0 {
		db.qcache = newQueryCache(opts.QueryCache)
	}
	db.byKey = make(map[string]*seriesIdent)
	db.refByKey = make(map[string]SeriesRef)
	db.dir.Store(&seriesDir{})
	db.scratchPool.New = func() any { return &writeScratch{} }
	for i := range db.stripes {
		st := &stripe{shards: make(map[int64]*shard)}
		st.tiers = make([]tierStripe, len(opts.Rollups))
		for t := range st.tiers {
			st.tiers[t].shards = make(map[int64]*tierShard)
		}
		db.stripes[i] = st
	}
	if opts.Persist != nil {
		// openPersist restores + replays with db.persist still nil (so
		// recovery writes do not re-log themselves), then arms db.persist
		// before starting the flusher/checkpointer goroutines.
		if err := openPersist(db, *opts.Persist); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// stripeIndex hashes a series key onto its stripe.
func stripeIndex(key string) uint32 {
	return hashx.FNV1a32(key)
}

// WriteStats returns (points written, points dropped by retention).
func (db *DB) WriteStats() (written, dropped uint64) {
	return db.written.Load(), db.dropped.Load()
}

// advanceMaxT raises the global newest-point clock to t and returns the
// current maximum.
func (db *DB) advanceMaxT(t int64) int64 {
	for {
		cur := db.maxT.Load()
		if t <= cur {
			return cur
		}
		if db.maxT.CompareAndSwap(cur, t) {
			return t
		}
	}
}

// Write stores one point. Tags are sorted in place. Points older than the
// retention horizon are dropped. On a persistent DB the point is logged to
// the WAL before it is applied (fsync per Options.Persist.Fsync); a WAL
// append failure fails the write, so recoverable state never runs behind
// what queries can see.
func (db *DB) Write(p *Point) error {
	if len(p.Fields) == 0 {
		return ErrNoFields
	}
	// Refuse closed before touching maxT or retention: a straggler write
	// must not advance the horizon (and purge shards) on a DB that is
	// being snapshotted for shutdown.
	if db.closed.Load() {
		return ErrClosedDB
	}
	sortTags(p.Tags)
	if pr := db.persist; pr != nil {
		// Hold commitMu.RLock from the WAL append through the in-memory
		// apply: the checkpoint cut depends on no write being between the
		// two when it rotates the log.
		db.commitMu.RLock()
		defer db.commitMu.RUnlock()
		if db.closed.Load() {
			return ErrClosedDB
		}
		if err := pr.logPoint(p); err != nil {
			return err
		}
	}
	sc := db.scratchPool.Get().(*writeScratch)
	key := appendSeriesKey(sc.arena[:0], p.Name, p.Tags)
	sc.arena = key
	maxT := db.advanceMaxT(p.Time)
	db.maybeSweepAll(maxT)
	st := db.stripes[hashx.FNV1a32Bytes(key)&db.mask]
	st.mu.Lock()
	if db.closed.Load() {
		st.mu.Unlock()
		db.scratchPool.Put(sc)
		return ErrClosedDB
	}
	db.writeLocked(st, p, key, maxT)
	st.mu.Unlock()
	db.scratchPool.Put(sc)
	return nil
}

// WriteBatch stores all points, taking each involved stripe lock exactly
// once — the sink-stage fast path that amortizes synchronization across a
// whole burst. Tags are sorted in place. A point with no fields fails the
// entire batch before anything is written. ErrClosedDB from a concurrent
// Close, however, may leave the batch partially applied (whole stripes are
// written atomically, the batch as a whole is not): applied reports how
// many points were handled (stored or retention-dropped) so callers can
// account for the remainder exactly — do not retry the batch.
func (db *DB) WriteBatch(pts []Point) (applied int, err error) {
	if len(pts) == 0 {
		return 0, nil
	}
	if db.closed.Load() {
		return 0, ErrClosedDB
	}
	sc := db.scratchPool.Get().(*writeScratch)
	applied, err = db.writeBatchScratch(pts, sc)
	db.scratchPool.Put(sc)
	return applied, err
}

func (db *DB) writeBatchScratch(pts []Point, sc *writeScratch) (applied int, err error) {
	// Per-batch series keys live back to back in one reusable arena,
	// addressed by offsets (the arena may move as it grows); stripe ids are
	// hashed straight off the arena bytes. Nothing here allocates once the
	// scratch has warmed up.
	arena := sc.arena[:0]
	offs := append(sc.offs[:0], 0)
	sids := sc.sids[:0]
	batchMax := int64(math.MinInt64)
	for i := range pts {
		p := &pts[i]
		if len(p.Fields) == 0 {
			sc.arena, sc.offs, sc.sids = arena, offs, sids
			return 0, ErrNoFields
		}
		sortTags(p.Tags)
		arena = appendSeriesKey(arena, p.Name, p.Tags)
		sids = append(sids, hashx.FNV1a32Bytes(arena[offs[i]:])&db.mask)
		offs = append(offs, len(arena))
		if p.Time > batchMax {
			batchMax = p.Time
		}
	}
	sc.arena, sc.offs, sc.sids = arena, offs, sids
	if pr := db.persist; pr != nil {
		// One WAL record (and, under FsyncAlways, at most one group-
		// committed fsync) for the whole batch — held through the apply,
		// as in Write.
		db.commitMu.RLock()
		defer db.commitMu.RUnlock()
		if db.closed.Load() {
			return 0, ErrClosedDB
		}
		if err := pr.logBatch(pts); err != nil {
			return 0, err
		}
	}
	maxT := db.advanceMaxT(batchMax)
	db.maybeSweepAll(maxT)
	for s, st := range db.stripes {
		touched := false
		for _, sid := range sids {
			if sid == uint32(s) {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		st.mu.Lock()
		if db.closed.Load() {
			st.mu.Unlock()
			return applied, ErrClosedDB
		}
		for i := range pts {
			if sids[i] == uint32(s) {
				db.writeLocked(st, &pts[i], arena[offs[i]:offs[i+1]], maxT)
				applied++
			}
		}
		st.mu.Unlock()
	}
	return applied, nil
}

// writeLocked appends p to its series in st and feeds the rollup tiers.
// Caller holds st.mu; key is the point's series key (scratch bytes, valid
// only for this call). Raw and tier retention are independent: a point too
// old for raw storage (counted in dropped) can still land in a coarse tier
// whose longer horizon covers it.
func (db *DB) writeLocked(st *stripe, p *Point, key []byte, maxT int64) {
	if len(db.opts.Rollups) > 0 {
		db.writeTiersLocked(st, p, key, maxT)
	}
	if db.opts.Retention > 0 && p.Time < maxT-db.opts.Retention {
		db.dropped.Add(1)
		db.enforceRetentionLocked(st, maxT)
		db.noteBackfill(p.Time, maxT) // tiers may still have absorbed it
		return
	}
	start := floorDiv(p.Time, db.opts.ShardDuration) * db.opts.ShardDuration
	sh := db.shardAt(st, start)
	sr, ok := sh.series[string(key)] // no-alloc map lookup
	if !ok {
		id := db.intern(p.Name, p.Tags, key)
		sr = &series{name: id.name, tags: id.tags, ident: id}
		sh.series[id.key] = sr
		id.addRawShard(identShard{start: sh.start, end: sh.end, sr: sr})
	}
	sr.times = append(sr.times, p.Time)
	for _, f := range p.Fields {
		ci := sr.findCol(f.Key)
		if ci < 0 {
			sr.fkeys = append(sr.fkeys, f.Key)
			sr.cols = append(sr.cols, nil)
			ci = len(sr.cols) - 1
		}
		col := sr.cols[ci]
		// Pad the column if this field was absent for earlier points.
		for len(col) < len(sr.times)-1 {
			col = append(col, nan)
		}
		sr.cols[ci] = append(col, f.Value)
	}
	// Pad any fields missing from this point.
	for ci, col := range sr.cols {
		if len(col) < len(sr.times) {
			sr.cols[ci] = append(col, nan)
		}
	}
	db.written.Add(1)
	db.enforceRetentionLocked(st, maxT)
	db.noteBackfill(p.Time, maxT)
}

// shardAt returns st's raw shard starting at start, creating it if absent.
// Caller holds st.mu.
func (db *DB) shardAt(st *stripe, start int64) *shard {
	sh, ok := st.shards[start]
	if !ok {
		sh = &shard{
			start:  start,
			end:    start + db.opts.ShardDuration,
			series: make(map[string]*series),
		}
		st.shards[start] = sh
		st.order = insertSorted(st.order, start)
	}
	return sh
}

// WriteLine parses one line-protocol record and stores it.
func (db *DB) WriteLine(line string) error {
	var p Point
	if err := ParseLine(line, &p); err != nil {
		return err
	}
	return db.Write(&p)
}

// maybeSweepAll retires expired shards from EVERY stripe whenever the
// tightest retention horizon (raw or any rollup tier) crosses into a new
// shard slot. Write-path retention only purges the stripe being written,
// so without this sweep a stripe whose series go idle would keep its
// expired shards (and serve them to queries) forever. The CAS bounds the
// sweep to one writer per horizon shard — at most once per ShardDuration
// of data time.
func (db *DB) maybeSweepAll(maxT int64) {
	if db.sweepRet <= 0 || db.closed.Load() {
		return
	}
	hs := floorDiv(maxT-db.sweepRet, db.opts.ShardDuration)
	for {
		cur := db.sweptShard.Load()
		if hs <= cur {
			return
		}
		if db.sweptShard.CompareAndSwap(cur, hs) {
			break
		}
	}
	for _, st := range db.stripes {
		st.mu.Lock()
		// Recheck under the lock: a Close (e.g. ahead of a shutdown
		// Snapshot) must stop an in-flight sweep from purging shards the
		// snapshot still expects to dump.
		if db.closed.Load() {
			st.mu.Unlock()
			return
		}
		db.enforceRetentionLocked(st, maxT)
		st.mu.Unlock()
	}
}

// enforceRetentionLocked drops whole shards beyond the raw horizon and
// whole tier shards beyond each tier's own horizon from one stripe.
// Caller holds st.mu.
func (db *DB) enforceRetentionLocked(st *stripe, maxT int64) {
	if len(st.tiers) > 0 {
		db.enforceTierRetentionLocked(st, maxT)
	}
	if db.opts.Retention <= 0 {
		return
	}
	horizon := maxT - db.opts.Retention
	for len(st.order) > 0 {
		start := st.order[0]
		sh := st.shards[start]
		if sh.end > horizon {
			break
		}
		// Unpublish every dropped series placement from the directory so
		// lock-free readers stop finding the pruned shard.
		for _, sr := range sh.series {
			sr.ident.dropRawShard(start)
		}
		delete(st.shards, start)
		st.order = st.order[1:]
	}
}

// ShardCount returns the number of live time shards (a time slice present
// in several stripes counts once).
func (db *DB) ShardCount() int {
	seen := map[int64]struct{}{}
	for _, st := range db.stripes {
		st.mu.RLock()
		for start := range st.shards {
			seen[start] = struct{}{}
		}
		st.mu.RUnlock()
	}
	return len(seen)
}

// SeriesCount returns the number of distinct series across shards.
func (db *DB) SeriesCount() int {
	n := 0
	for _, st := range db.stripes {
		st.mu.RLock()
		for _, sh := range st.shards {
			n += len(sh.series)
		}
		st.mu.RUnlock()
	}
	return n
}

// TagValues returns the sorted distinct values of a tag key within
// [start, end), for dashboard pickers. Entirely lock-free: it walks the
// copy-on-write directory and each series' published raw-shard placements,
// never touching a stripe lock.
func (db *DB) TagValues(key string, start, end int64) []string {
	d := db.dir.Load()
	seen := map[string]bool{}
	for _, id := range d.idents {
		v, ok := "", false
		for _, t := range id.tags {
			if t.Key == key {
				v, ok = t.Value, true
				break
			}
		}
		if !ok || seen[v] {
			continue
		}
		for _, is := range id.rawShards() {
			if is.end > start && is.start < end {
				seen[v] = true
				break
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Close marks the DB closed; subsequent writes fail. Taking every stripe
// lock once acts as a barrier: writes in flight finish, later ones fail.
// On a persistent DB it then stops the background flusher/checkpointer,
// flushes and fsyncs the WAL (so a clean shutdown loses nothing regardless
// of fsync policy) and releases the data-directory lock; the returned
// error is the first failure in that sequence (always nil in-memory).
// Close is idempotent: repeated calls return the first call's result.
func (db *DB) Close() error {
	db.closeOnce.Do(func() { db.closeErr = db.doClose() })
	return db.closeErr
}

func (db *DB) doClose() error {
	db.closed.Store(true)
	// Barrier for persistent writers between WAL append and apply…
	db.commitMu.Lock()
	//lint:ignore SA2001 empty critical section is the barrier
	db.commitMu.Unlock()
	// …and for everything already applying under a stripe lock.
	for _, st := range db.stripes {
		st.mu.Lock()
		//lint:ignore SA2001 empty critical section is the barrier
		st.mu.Unlock()
	}
	if db.persist != nil {
		return db.persist.close()
	}
	return nil
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func insertSorted(s []int64, v int64) []int64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
