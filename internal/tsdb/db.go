package tsdb

import (
	"sort"
	"sync"
)

// Options configures a DB.
type Options struct {
	// ShardDuration is the time width of one shard (default 1h of the
	// data's own clock).
	ShardDuration int64
	// Retention drops shards whose end is older than this much behind the
	// newest point (0 = keep everything).
	Retention int64
}

// DB is the time-series database. Safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	opts   Options
	shards map[int64]*shard // keyed by shard start time
	order  []int64          // sorted shard starts
	maxT   int64
	closed bool

	written uint64
	dropped uint64 // points dropped by retention at write time
}

// shard holds all series for one time slice.
type shard struct {
	start, end int64
	series     map[string]*series
	// index: tag key -> tag value -> series keys
	index map[string]map[string][]*series
}

// series is one (measurement, tagset) column store.
type series struct {
	name   string
	tags   []Tag
	times  []int64
	fields map[string][]float64
}

// Open creates an empty DB.
func Open(opts Options) *DB {
	if opts.ShardDuration <= 0 {
		opts.ShardDuration = int64(3600) * 1e9
	}
	return &DB{
		opts:   opts,
		shards: make(map[int64]*shard),
	}
}

// WriteStats returns (points written, points dropped by retention).
func (db *DB) WriteStats() (written, dropped uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.written, db.dropped
}

// Write stores one point. Tags are sorted in place. Points older than the
// retention horizon are dropped.
func (db *DB) Write(p *Point) error {
	if len(p.Fields) == 0 {
		return ErrNoFields
	}
	sortTags(p.Tags)
	key := seriesKey(p.Name, p.Tags)

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosedDB
	}
	if p.Time > db.maxT {
		db.maxT = p.Time
	}
	if db.opts.Retention > 0 && p.Time < db.maxT-db.opts.Retention {
		db.dropped++
		return nil
	}
	start := floorDiv(p.Time, db.opts.ShardDuration) * db.opts.ShardDuration
	sh, ok := db.shards[start]
	if !ok {
		sh = &shard{
			start:  start,
			end:    start + db.opts.ShardDuration,
			series: make(map[string]*series),
			index:  make(map[string]map[string][]*series),
		}
		db.shards[start] = sh
		db.order = insertSorted(db.order, start)
	}
	sr, ok := sh.series[key]
	if !ok {
		tags := make([]Tag, len(p.Tags))
		copy(tags, p.Tags)
		sr = &series{name: p.Name, tags: tags, fields: make(map[string][]float64)}
		sh.series[key] = sr
		for _, t := range tags {
			vm := sh.index[t.Key]
			if vm == nil {
				vm = make(map[string][]*series)
				sh.index[t.Key] = vm
			}
			vm[t.Value] = append(vm[t.Value], sr)
		}
	}
	sr.times = append(sr.times, p.Time)
	for _, f := range p.Fields {
		col := sr.fields[f.Key]
		// Pad the column if this field was absent for earlier points.
		for len(col) < len(sr.times)-1 {
			col = append(col, nan)
		}
		sr.fields[f.Key] = append(col, f.Value)
	}
	// Pad any fields missing from this point.
	for k, col := range sr.fields {
		if len(col) < len(sr.times) {
			sr.fields[k] = append(col, nan)
		}
	}
	db.written++
	db.enforceRetentionLocked()
	return nil
}

// WriteLine parses one line-protocol record and stores it.
func (db *DB) WriteLine(line string) error {
	var p Point
	if err := ParseLine(line, &p); err != nil {
		return err
	}
	return db.Write(&p)
}

// enforceRetentionLocked drops whole shards beyond the horizon.
func (db *DB) enforceRetentionLocked() {
	if db.opts.Retention <= 0 {
		return
	}
	horizon := db.maxT - db.opts.Retention
	for len(db.order) > 0 {
		start := db.order[0]
		sh := db.shards[start]
		if sh.end > horizon {
			break
		}
		delete(db.shards, start)
		db.order = db.order[1:]
	}
}

// ShardCount returns the number of live shards.
func (db *DB) ShardCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.shards)
}

// SeriesCount returns the number of distinct series across shards.
func (db *DB) SeriesCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, sh := range db.shards {
		n += len(sh.series)
	}
	return n
}

// TagValues returns the sorted distinct values of a tag key within
// [start, end), for dashboard pickers.
func (db *DB) TagValues(key string, start, end int64) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	seen := map[string]bool{}
	for _, shStart := range db.order {
		sh := db.shards[shStart]
		if sh.end <= start || sh.start >= end {
			continue
		}
		for v := range sh.index[key] {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Close marks the DB closed; subsequent writes fail.
func (db *DB) Close() {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func insertSorted(s []int64, v int64) []int64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
