//go:build !linux

package tsdb

import "os"

// fdatasync falls back to a full fsync where the syscall is unavailable.
func fdatasync(f *os.File) error {
	return f.Sync()
}
