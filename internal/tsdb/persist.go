package tsdb

// Durable storage: checkpointed snapshots + WAL replay (wal.go holds the
// log itself). The paper delegates long-term storage to InfluxDB; this
// subsystem gives the embedded TSDB the same crash-safety contract without
// leaving the process.
//
// Disk layout under PersistOptions.Dir:
//
//	LOCK                      flock'd while a DB owns the directory
//	wal/00000001.wal ...      CRC-framed append log, one record per
//	                          Write/WriteBatch (dictionary-compressed
//	                          binary encoding — see wal.go)
//	checkpoint/00000007.ckpt  atomic full snapshot (line protocol); the
//	                          number is the first WAL segment NOT covered,
//	                          i.e. where replay must start
//
// Write path (WAL-first): a Write/WriteBatch appends its record to the log
// under commitMu.RLock, then applies to the in-memory stripes — so every
// point visible to queries is (per the fsync policy) also on disk, and a
// record whose apply was cut short by a crash is simply replayed.
//
// Checkpoint cycle (Checkpoint, run every CheckpointEvery and on demand):
//
//  1. take commitMu exclusively — no commit is between its WAL append and
//     its in-memory apply;
//  2. rotate the WAL: records committed so far live in segments < newSeg,
//     records committed later in segments >= newSeg;
//  3. grab every stripe's read lock, then release commitMu — writers may
//     resume appending (their records are >= newSeg) but cannot touch a
//     stripe that has not been staged yet;
//  4. stage each stripe's dump into memory, releasing its lock the moment
//     the copy is done — a writer stalls only for the memory-speed copy
//     of the stripe it targets, never behind file I/O — then write the
//     staged dump to checkpoint/<newSeg>.ckpt.tmp lock-free;
//  5. fsync + rename the temp file (atomic: a crash leaves either the old
//     checkpoint or the new one, never a partial), fsync the directory;
//  6. delete older checkpoints and WAL segments < newSeg.
//
// The dump is therefore an exact cut of the state at rotation time:
// restore-on-start loads the newest checkpoint and replays exactly the
// segments >= its number, so no point is lost or double-counted. Replay
// runs through the normal write path before the WAL is re-armed, which
// rebuilds every rollup tier and re-applies retention as a side effect —
// tiers are derived data and are never serialized.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// PersistOptions enables durable storage for a DB opened with OpenDB.
type PersistOptions struct {
	// Dir is the data directory (created if absent). A lockfile refuses a
	// second concurrent open of the same directory.
	Dir string
	// Fsync selects the WAL durability policy: FsyncInterval (default),
	// FsyncAlways or FsyncOff. See the policy constants for the exact
	// data-loss window each buys.
	Fsync FsyncPolicy
	// FsyncInterval is the background fsync period under FsyncInterval
	// (default 100ms). It bounds the committed-data loss window of a
	// power failure.
	FsyncInterval time.Duration
	// CheckpointEvery is the automatic checkpoint period (default 1m;
	// negative disables automation — checkpoints then happen only via
	// DB.Checkpoint, e.g. POST /api/checkpoint). Each checkpoint bounds
	// restart replay work and truncates the WAL behind itself.
	CheckpointEvery time.Duration
	// MaxSegmentBytes caps one WAL segment file (default 64 MiB).
	MaxSegmentBytes int64
}

// ErrNoPersist reports a durability operation on an in-memory DB.
var ErrNoPersist = errors.New("tsdb: persistence not enabled")

// ErrDirLocked reports a data directory already owned by a live process.
var ErrDirLocked = errors.New("tsdb: data directory locked")

const (
	ckptDirName = "checkpoint"
	ckptSuffix  = ".ckpt"
	lockName    = "LOCK"
)

// persister is a DB's durability state; nil on in-memory databases. It is
// armed (assigned to db.persist) only after restore+replay finish, so
// recovery writes never re-log themselves.
type persister struct {
	opts PersistOptions
	lock *os.File
	wal  *wal

	ckptMu sync.Mutex // one checkpoint at a time
	stop   chan struct{}
	wg     sync.WaitGroup

	restoredPoints  atomic.Uint64
	replayedPoints  atomic.Uint64
	replayedRecords atomic.Uint64
	tornTail        atomic.Bool

	checkpoints      atomic.Uint64
	checkpointErrors atomic.Uint64
	lastCkptSeg      atomic.Uint64
	lastCkptUnixNs   atomic.Int64
}

// PersistStats is a snapshot of the durability counters — the recovery
// side of the Stats story (how much the WAL has absorbed, what the last
// restart recovered, how stale the newest checkpoint is).
type PersistStats struct {
	Enabled bool        `json:",omitempty"`
	Dir     string      `json:",omitempty"`
	Fsync   FsyncPolicy `json:",omitempty"`
	// WALAppends counts records (one per Write/WriteBatch) appended this
	// run. WALAppendErrors counts WAL I/O failures: appends that failed
	// (each one failed the write that requested it) and flush/sync errors
	// around rotation, after which records acknowledged during the
	// preceding unsynced window may be missing from the log even though
	// the write path has recovered onto a fresh segment. Non-zero means
	// durability is degraded — alert on it (see docs/OPERATIONS.md).
	// WALFsyncs counts fsync cycles (group commit makes this much smaller
	// than WALAppends under FsyncAlways with concurrent writers).
	WALAppends      uint64
	WALAppendErrors uint64
	WALFsyncs       uint64
	// WALSegment is the segment currently appended to.
	WALSegment uint64
	// RestoredPoints / WALReplayedPoints say what the last open recovered:
	// points loaded from the checkpoint and points replayed from the WAL
	// tail (WALReplayedRecords batches). ReplayTornTail reports that the
	// final record was torn — the expected shape of a crash mid-append —
	// and was discarded.
	RestoredPoints     uint64
	WALReplayedPoints  uint64
	WALReplayedRecords uint64
	ReplayTornTail     bool
	// Checkpoint health: count, failures, the WAL segment the newest
	// checkpoint covers up to, and its age (-1 before the first one).
	Checkpoints       uint64
	CheckpointErrors  uint64
	LastCheckpointSeg uint64
	CheckpointAgeNs   int64
}

// CheckpointInfo describes one completed checkpoint.
type CheckpointInfo struct {
	// WALSegment is the first segment NOT covered: replay-on-start begins
	// there. Segments below it were truncated.
	WALSegment uint64
	// Points dumped into the checkpoint file.
	Points int64
	// SegmentsRemoved is how many superseded WAL segments were deleted.
	SegmentsRemoved int
	Took            time.Duration
}

func ckptName(seg uint64) string {
	return fmt.Sprintf("%08d%s", seg, ckptSuffix)
}

// listCheckpoints returns the checkpoint sequence numbers in dir, ascending.
func listCheckpoints(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		if n, err := strconv.ParseUint(strings.TrimSuffix(name, ckptSuffix), 10, 64); err == nil {
			seqs = append(seqs, n)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// lockDataDir takes the directory's flock. flock (not O_EXCL) so the lock
// dies with the process: a kill -9 leaves no stale lock to clean up.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrDirLocked, dir)
	}
	f.Truncate(0)
	fmt.Fprintf(f, "%d\n", os.Getpid())
	return f, nil
}

// openPersist restores state from dir into db (checkpoint, then WAL tail),
// then arms db.persist and starts the background flusher and checkpointer.
// Called by OpenDB before the DB is visible to anyone, so the recovery
// writes it issues are the only traffic and are not re-logged.
func openPersist(db *DB, opts PersistOptions) error {
	if opts.Fsync == "" {
		opts.Fsync = FsyncInterval
	}
	switch opts.Fsync {
	case FsyncAlways, FsyncInterval, FsyncOff:
	default:
		return fmt.Errorf("tsdb: unknown fsync policy %q", opts.Fsync)
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = time.Minute
	}
	walDir := filepath.Join(opts.Dir, walDirName)
	ckptDir := filepath.Join(opts.Dir, ckptDirName)
	for _, d := range []string{opts.Dir, walDir, ckptDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	lock, err := lockDataDir(opts.Dir)
	if err != nil {
		return err
	}
	pr := &persister{opts: opts, lock: lock, stop: make(chan struct{})}
	fail := func(err error) error {
		syscall.Flock(int(lock.Fd()), syscall.LOCK_UN)
		lock.Close()
		return err
	}

	// Leftover temp files are checkpoints whose rename never happened:
	// dead weight from a crash mid-checkpoint, safe to delete.
	if tmps, _ := filepath.Glob(filepath.Join(ckptDir, "*.tmp")); true {
		for _, t := range tmps {
			os.Remove(t)
		}
	}

	// 1. Restore the newest checkpoint, if any.
	replayFrom := uint64(0)
	if seqs, err := listCheckpoints(ckptDir); err != nil {
		return fail(err)
	} else if len(seqs) > 0 {
		seq := seqs[len(seqs)-1]
		f, err := os.Open(filepath.Join(ckptDir, ckptName(seq)))
		if err != nil {
			return fail(err)
		}
		n, err := db.Restore(f)
		f.Close()
		if err != nil {
			return fail(fmt.Errorf("tsdb: checkpoint %s corrupt: %w", ckptName(seq), err))
		}
		pr.restoredPoints.Store(uint64(n))
		replayFrom = seq
	}

	// 2. Replay the WAL tail: every segment the checkpoint does not cover.
	segs, err := listSegments(walDir)
	if err != nil {
		return fail(err)
	}
	var p Point
	for i, seg := range segs {
		if seg < replayFrom {
			continue // superseded by the checkpoint, awaiting truncation
		}
		final := i == len(segs)-1
		// Fresh decoder per segment: the writer resets its shape
		// dictionary at every rotation, so each segment is self-contained.
		var dec walDecoder
		apply := func(payload []byte) error {
			for len(payload) > 0 {
				rest, sample, err := dec.next(payload, &p)
				if err != nil {
					// A CRC-valid record with a bad encoding is
					// corruption, not a tear.
					return fmt.Errorf("%w: replay: %v", ErrWALCorrupt, err)
				}
				payload = rest
				if !sample {
					continue
				}
				if err := db.Write(&p); err != nil {
					return err
				}
				pr.replayedPoints.Add(1)
			}
			return nil
		}
		records, err := replaySegment(filepath.Join(walDir, segName(seg)), final, apply)
		pr.replayedRecords.Add(uint64(records))
		if errors.Is(err, ErrWALTorn) {
			pr.tornTail.Store(true)
			break
		}
		if errors.Is(err, ErrWALCorrupt) && i+1 < len(segs) &&
			segmentStartsWithTear(filepath.Join(walDir, segName(segs[i+1]))) {
			// The next segment acknowledges this one's torn tail: it was
			// abandoned by an error-rotation (see wal.rotateLocked), not
			// corrupted. Everything before the tear was applied; carry on.
			pr.tornTail.Store(true)
			continue
		}
		if err != nil {
			return fail(err)
		}
	}

	// 3. Arm the log on a fresh segment after everything on disk — a torn
	// tail is never appended to, so it stays detectable.
	firstFree := replayFrom + 1
	if len(segs) > 0 && segs[len(segs)-1]+1 > firstFree {
		firstFree = segs[len(segs)-1] + 1
	}
	if firstFree == 0 {
		firstFree = 1
	}
	pr.wal, err = openWAL(walDir, firstFree, opts.MaxSegmentBytes, opts.Fsync)
	if err != nil {
		return fail(err)
	}
	db.persist = pr

	// 4. Background work: the interval flusher and the checkpointer.
	if opts.Fsync == FsyncInterval {
		pr.wg.Add(1)
		go func() {
			defer pr.wg.Done()
			t := time.NewTicker(opts.FsyncInterval)
			defer t.Stop()
			for {
				select {
				case <-pr.stop:
					return
				case <-t.C:
					// A failed tick is already counted in WALAppendErrors
					// by the sync path itself; the next tick retries.
					_ = pr.wal.Sync()
				}
			}
		}()
	}
	if opts.CheckpointEvery > 0 {
		pr.wg.Add(1)
		go func() {
			defer pr.wg.Done()
			t := time.NewTicker(opts.CheckpointEvery)
			defer t.Stop()
			for {
				select {
				case <-pr.stop:
					return
				case <-t.C:
					// Background checkpoint failures are counted in
					// CheckpointErrors by Checkpoint itself; the next
					// tick retries with the WAL still intact.
					_, _ = db.Checkpoint()
				}
			}
		}()
	}
	return nil
}

// logPoint appends one committed Write's record to the WAL. Caller holds
// db.commitMu.RLock; same error contract as logBatch.
func (pr *persister) logPoint(p *Point) error {
	return pr.wal.AppendPoint(p)
}

// close stops the background goroutines, seals the WAL and releases the
// directory lock. Called from DB.Close after the write barrier.
func (pr *persister) close() error {
	close(pr.stop)
	pr.wg.Wait()
	err := pr.wal.Close()
	if e := syscall.Flock(int(pr.lock.Fd()), syscall.LOCK_UN); err == nil {
		err = e
	}
	if e := pr.lock.Close(); err == nil {
		err = e
	}
	return err
}

// logBatch appends one committed write's record to the WAL (dictionary-
// compressed, see wal.go). Caller holds db.commitMu.RLock. An append error
// fails the write that requested it: the in-memory state never runs ahead
// of what a restart can recover (watch PersistStats.WALAppendErrors — a
// full disk surfaces here, not as silent divergence).
func (pr *persister) logBatch(pts []Point) error {
	err := pr.wal.AppendPoints(pts)
	if errors.Is(err, errWALRecordTooBig) && len(pts) > 1 {
		// A batch too big for one frame splits into several records —
		// WriteBatch promises per-stripe, not per-batch, atomicity anyway.
		if err = pr.logBatch(pts[:len(pts)/2]); err == nil {
			err = pr.logBatch(pts[len(pts)/2:])
		}
	}
	return err
}

// Checkpoint writes an atomic snapshot of the current state and truncates
// the WAL behind it. Safe to call concurrently with writes and queries:
// writers stall only while the stripe they target is being dumped (see the
// cycle description at the top of this file). Returns ErrNoPersist on an
// in-memory DB. The automatic checkpointer calls this on its ticker; the
// HTTP API exposes it as POST /api/checkpoint.
func (db *DB) Checkpoint() (CheckpointInfo, error) {
	pr := db.persist
	if pr == nil {
		return CheckpointInfo{}, ErrNoPersist
	}
	pr.ckptMu.Lock()
	defer pr.ckptMu.Unlock()
	if db.closed.Load() {
		return CheckpointInfo{}, ErrClosedDB
	}
	began := time.Now()

	// The cut: with commitMu held exclusively no write is between its WAL
	// append and its apply, so "state now" == "every record below newSeg".
	db.commitMu.Lock()
	newSeg, err := pr.wal.Rotate()
	if err != nil {
		db.commitMu.Unlock()
		pr.checkpointErrors.Add(1)
		return CheckpointInfo{}, err
	}
	for _, st := range db.stripes {
		st.mu.RLock()
	}
	db.commitMu.Unlock()

	// Stage each stripe's dump in memory and release its lock immediately:
	// a writer stalls only while the stripe it targets is being copied (at
	// memory speed), never behind file I/O. Costs one serialized copy of
	// the retained state, same as Snapshot — and like Snapshot the chunks
	// come back sorted by shard start, which restore-into-retention
	// correctness depends on (see stageDumpChunks).
	chunks, points := db.stageDumpChunks(true)

	// All file I/O happens lock-free.
	ckptDir := filepath.Join(pr.opts.Dir, ckptDirName)
	tmp := filepath.Join(ckptDir, ckptName(newSeg)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		pr.checkpointErrors.Add(1)
		return CheckpointInfo{}, err
	}
	for _, c := range chunks {
		if _, err = f.Write(c.data); err != nil {
			break
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if e := f.Close(); err == nil {
		err = e
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(ckptDir, ckptName(newSeg)))
	}
	if err == nil {
		err = syncDir(ckptDir)
	}
	if err != nil {
		os.Remove(tmp)
		pr.checkpointErrors.Add(1)
		return CheckpointInfo{}, err
	}

	// The new checkpoint supersedes everything older: previous checkpoints
	// and every WAL segment below the cut. Failures here are not fatal —
	// leftovers are skipped on restore and retried next cycle.
	if seqs, err := listCheckpoints(ckptDir); err == nil {
		for _, s := range seqs {
			if s < newSeg {
				os.Remove(filepath.Join(ckptDir, ckptName(s)))
			}
		}
	}
	removed, _ := removeSegmentsBelow(filepath.Join(pr.opts.Dir, walDirName), newSeg)

	pr.checkpoints.Add(1)
	pr.lastCkptSeg.Store(newSeg)
	pr.lastCkptUnixNs.Store(began.UnixNano())
	return CheckpointInfo{
		WALSegment: newSeg, Points: points,
		SegmentsRemoved: removed, Took: time.Since(began),
	}, nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if e := d.Close(); err == nil {
		err = e
	}
	return err
}

// PersistStats snapshots the durability counters; Enabled is false (and
// everything else zero) on an in-memory DB.
func (db *DB) PersistStats() PersistStats {
	pr := db.persist
	if pr == nil {
		return PersistStats{}
	}
	age := int64(-1)
	if last := pr.lastCkptUnixNs.Load(); last > 0 {
		age = time.Now().UnixNano() - last
	}
	pr.wal.mu.Lock()
	seg := pr.wal.seg
	pr.wal.mu.Unlock()
	return PersistStats{
		Enabled: true,
		Dir:     pr.opts.Dir,
		Fsync:   pr.opts.Fsync,

		WALAppends:      pr.wal.appends.Load(),
		WALAppendErrors: pr.wal.appendErrors.Load(),
		WALFsyncs:       pr.wal.fsyncs.Load(),
		WALSegment:      seg,

		RestoredPoints:     pr.restoredPoints.Load(),
		WALReplayedPoints:  pr.replayedPoints.Load(),
		WALReplayedRecords: pr.replayedRecords.Load(),
		ReplayTornTail:     pr.tornTail.Load(),

		Checkpoints:       pr.checkpoints.Load(),
		CheckpointErrors:  pr.checkpointErrors.Load(),
		LastCheckpointSeg: pr.lastCkptSeg.Load(),
		CheckpointAgeNs:   age,
	}
}
