package tsdb

// Multi-resolution rollups: the online downsampling subsystem.
//
// Raw storage answers any query exactly, but its cost grows linearly with
// retained traffic — a one-hour dashboard query re-scans and re-buckets
// every individual measurement in the range, under the same stripe locks
// the hot write path needs. Rollups trade a small, bounded amount of write
// work for constant-cost historical reads: at write time every point
// additionally feeds N configured tiers (default 1s/10s/1m), and each tier
// stores one pre-aggregate per (series, field, bucket) instead of raw
// points:
//
//	count, sum, min, max          — exact
//	sparse log-binned histogram   — approximate median/p95/p99
//
// Tiers have independent retention (raw short, coarse tiers long), so the
// timeline a dashboard scrolls through can span days while raw points are
// kept only minutes. The query planner in query.go picks the coarsest tier
// whose buckets align with the requested window and merges tier buckets
// streamingly — no [][]float64 buffering of raw values.
//
// Concurrency contract: tier state for a series lives in the same stripe as
// the series itself and is only touched under that stripe's lock, so the
// locking discipline (and the single-writer guarantee the sharded sink
// provides per series) is unchanged by rollups.

import (
	"math"
	"sort"
)

// RollupTier configures one pre-aggregation resolution.
type RollupTier struct {
	// Width is the tier's bucket width in the data's own clock
	// (nanoseconds). Must be > 0; tiers with non-positive or duplicate
	// widths are dropped by Open.
	Width int64
	// Retention drops tier buckets whose shard is older than this much
	// behind the newest point, independently of the raw retention
	// (0 = keep forever). Coarse tiers typically retain far longer than
	// raw points.
	Retention int64
}

// DefaultRollups returns the default tier ladder: 1s buckets kept 2h, 10s
// buckets kept 24h, 1m buckets kept 7 days.
func DefaultRollups() []RollupTier {
	return []RollupTier{
		{Width: 1e9, Retention: 2 * 3600e9},
		{Width: 10e9, Retention: 24 * 3600e9},
		{Width: 60e9, Retention: 7 * 24 * 3600e9},
	}
}

// Histogram layout: bin 0 is the underflow bin (values < histMin, including
// zero and negatives), bins 1..histBins-2 are log-spaced over
// [histMin, histMax), and bin histBins-1 is the overflow bin (≥ histMax).
// With 126 log bins over 12 decades each bin spans a factor of ~1.245, so
// quantile estimates stay within one bin of the raw answer — ≤ ~25%
// relative error in the worst case, typically a few percent — plenty for
// the p95/p99 panels this exists to serve. The range is chosen for Ruru's
// millisecond
// latency fields (1µs .. 11.5 days in ms units) but the units are whatever
// the field's are.
const (
	histBins = 128
	histMin  = 1e-3
	histMax  = 1e9
)

var (
	histInvLogGamma float64
	// histBounds[i] is the lower bound of bin i for i ≥ 1
	// (histBounds[1] == histMin, histBounds[histBins-1] == histMax).
	histBounds [histBins]float64
)

func init() {
	logGamma := math.Log(histMax/histMin) / float64(histBins-2)
	histInvLogGamma = 1 / logGamma
	for i := 1; i < histBins; i++ {
		histBounds[i] = histMin * math.Exp(float64(i-1)*logGamma)
	}
}

// binOf maps a value to its histogram bin: bin 0 below histMin, the last
// bin at or above histMax, a log bin in between. NaN never reaches here
// (the write path skips NaN field values, mirroring the raw query path).
func binOf(v float64) uint16 {
	if !(v >= histMin) {
		return 0
	}
	if v >= histMax {
		return histBins - 1
	}
	i := 1 + int(math.Log(v/histMin)*histInvLogGamma)
	// Clamp and correct for floating-point rounding at bin boundaries.
	if i < 1 {
		i = 1
	} else if i > histBins-2 {
		i = histBins - 2
	}
	if v < histBounds[i] {
		i--
	} else if i+1 < histBins && v >= histBounds[i+1] {
		i++
	}
	return uint16(i)
}

// histEntry is one occupied histogram bin. Buckets store their histogram
// sparsely (sorted by bin): a series' latency mass concentrates in a few
// adjacent bins, so this is typically a handful of entries instead of a
// dense 128-counter array per bucket.
type histEntry struct {
	bin uint16
	n   uint32
}

// rbucket is one tier bucket's pre-aggregate for one (series, field).
type rbucket struct {
	count    uint64
	sum      float64
	min, max float64
	hist     []histEntry // sorted by bin
}

// add folds one sample into the bucket.
func (b *rbucket) add(v float64, bin uint16) {
	if b.count == 0 || v < b.min {
		b.min = v
	}
	if b.count == 0 || v > b.max {
		b.max = v
	}
	b.count++
	b.sum += v
	// Sorted insert into the sparse histogram; the common case is the
	// last-touched (largest) bin or one near it, so scan from the tail.
	for i := len(b.hist) - 1; i >= 0; i-- {
		e := &b.hist[i]
		if e.bin == bin {
			e.n++
			return
		}
		if e.bin < bin {
			b.hist = append(b.hist, histEntry{})
			copy(b.hist[i+2:], b.hist[i+1:])
			b.hist[i+1] = histEntry{bin: bin, n: 1}
			return
		}
	}
	b.hist = append(b.hist, histEntry{})
	copy(b.hist[1:], b.hist)
	b.hist[0] = histEntry{bin: bin, n: 1}
}

// tierColumn holds one (series, field)'s buckets within one tier shard,
// as parallel slices sorted by bucket start.
type tierColumn struct {
	starts  []int64
	buckets []rbucket
}

// at returns the bucket starting at start, inserting it if absent. The
// returned pointer is only valid until the next insertion (single-threaded
// under the stripe lock; used immediately).
func (c *tierColumn) at(start int64) *rbucket {
	n := len(c.starts)
	if n > 0 && c.starts[n-1] == start { // in-order arrival fast path
		return &c.buckets[n-1]
	}
	i := sort.Search(n, func(i int) bool { return c.starts[i] >= start })
	if i < n && c.starts[i] == start {
		return &c.buckets[i]
	}
	c.starts = append(c.starts, 0)
	copy(c.starts[i+1:], c.starts[i:])
	c.starts[i] = start
	c.buckets = append(c.buckets, rbucket{})
	copy(c.buckets[i+1:], c.buckets[i:])
	c.buckets[i] = rbucket{}
	return &c.buckets[i]
}

// tierSeries is one (measurement, tagset)'s rollup state within one tier
// shard — the tier analogue of series. name/tags alias the owning ident's
// strings.
type tierSeries struct {
	name   string
	tags   []Tag
	ident  *seriesIdent
	fields map[string]*tierColumn
}

// tierShard groups a tier's series for one ShardDuration time slice. Tier
// queries resolve series through the copy-on-write directory (ref.go), so
// tier shards carry no inverted index.
type tierShard struct {
	start, end int64
	series     map[string]*tierSeries
}

// tierStripe is one tier's shard map within one stripe.
type tierStripe struct {
	shards map[int64]*tierShard
	order  []int64 // sorted shard starts
}

// normalizeRollups sorts tiers by width and drops invalid (non-positive
// width) or duplicate-width entries. Called once by Open.
func normalizeRollups(tiers []RollupTier) []RollupTier {
	out := make([]RollupTier, 0, len(tiers))
	for _, t := range tiers {
		if t.Width > 0 && t.Retention >= 0 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Width < out[j].Width })
	dedup := out[:0]
	for i, t := range out {
		if i > 0 && t.Width == out[i-1].Width {
			continue
		}
		dedup = append(dedup, t)
	}
	return dedup
}

// Rollups returns the configured tiers, finest first (nil when rollups are
// disabled). The slice is shared; callers must not modify it.
func (db *DB) Rollups() []RollupTier {
	return db.opts.Rollups
}

// writeTiersLocked folds one point into every tier whose retention still
// covers it. Caller holds st.mu. A point behind the raw retention horizon
// but within a coarse tier's horizon still lands in that tier — long tier
// retention is the reason rollups exist.
func (db *DB) writeTiersLocked(st *stripe, p *Point, key []byte, maxT int64) {
	// One histogram bin computation per field, shared across tiers.
	var binsArr [8]uint16
	bins := binsArr[:0]
	for _, f := range p.Fields {
		bins = append(bins, binOf(f.Value))
	}
	for ti := range db.opts.Rollups {
		tier := &db.opts.Rollups[ti]
		if tier.Retention > 0 && p.Time < maxT-tier.Retention {
			continue
		}
		bStart := floorDiv(p.Time, tier.Width) * tier.Width
		shStart := floorDiv(bStart, db.opts.ShardDuration) * db.opts.ShardDuration
		ts := &st.tiers[ti]
		sh, ok := ts.shards[shStart]
		if !ok {
			sh = &tierShard{
				start:  shStart,
				end:    shStart + db.opts.ShardDuration,
				series: make(map[string]*tierSeries),
			}
			ts.shards[shStart] = sh
			ts.order = insertSorted(ts.order, shStart)
		}
		sr, ok := sh.series[string(key)] // no-alloc map lookup
		if !ok {
			id := db.intern(p.Name, p.Tags, key)
			sr = &tierSeries{name: id.name, tags: id.tags, ident: id, fields: make(map[string]*tierColumn)}
			sh.series[id.key] = sr
			id.addTierShard(ti, identTierShard{start: sh.start, end: sh.end, ts: sr})
		}
		for fi, f := range p.Fields {
			if math.IsNaN(f.Value) {
				continue // raw queries skip NaN; keep tiers equivalent
			}
			col := sr.fields[f.Key]
			if col == nil {
				col = &tierColumn{}
				sr.fields[f.Key] = col
			}
			col.at(bStart).add(f.Value, bins[fi])
		}
	}
}

// enforceTierRetentionLocked drops whole tier shards beyond each tier's
// horizon from one stripe. Caller holds st.mu.
func (db *DB) enforceTierRetentionLocked(st *stripe, maxT int64) {
	for ti := range db.opts.Rollups {
		tier := &db.opts.Rollups[ti]
		if tier.Retention <= 0 {
			continue
		}
		horizon := maxT - tier.Retention
		ts := &st.tiers[ti]
		for len(ts.order) > 0 {
			start := ts.order[0]
			sh := ts.shards[start]
			if sh.end > horizon {
				break
			}
			for _, sr := range sh.series {
				sr.ident.dropTierShard(ti, start)
			}
			delete(ts.shards, start)
			ts.order = ts.order[1:]
		}
	}
}

// rollAcc accumulates merged tier buckets for one query output bucket.
// The dense histogram is only materialized when the query requests a
// quantile aggregation.
type rollAcc struct {
	count    uint64
	sum      float64
	min, max float64
	hist     *[histBins]uint64
}

// merge folds one tier bucket into the accumulator.
func (a *rollAcc) merge(b *rbucket, needQuant bool) {
	if b.count == 0 {
		return
	}
	if a.count == 0 || b.min < a.min {
		a.min = b.min
	}
	if a.count == 0 || b.max > a.max {
		a.max = b.max
	}
	a.count += b.count
	a.sum += b.sum
	if needQuant {
		if a.hist == nil {
			a.hist = new([histBins]uint64)
		}
		for _, e := range b.hist {
			a.hist[e.bin] += uint64(e.n)
		}
	}
}

// toBucket renders the accumulator as a query output bucket. Count, sum,
// min and max are exact (identical to the raw path up to float summation
// order); median/p95/p99 are estimated from the merged histogram and clamped
// into [min, max]. Empty accumulators mirror the raw path: count/sum 0,
// everything else NaN.
func (a *rollAcc) toBucket(start int64, aggs []AggKind) Bucket {
	b := Bucket{Start: start, Count: int(a.count), Aggs: make(map[AggKind]float64, len(aggs))}
	for _, k := range aggs {
		switch {
		case a.count == 0:
			if k == AggCount || k == AggSum {
				b.Aggs[k] = 0
			} else {
				b.Aggs[k] = nan
			}
		case k == AggMin:
			b.Aggs[k] = a.min
		case k == AggMax:
			b.Aggs[k] = a.max
		case k == AggMean:
			b.Aggs[k] = a.sum / float64(a.count)
		case k == AggSum:
			b.Aggs[k] = a.sum
		case k == AggCount:
			b.Aggs[k] = float64(a.count)
		case k == AggMedian:
			b.Aggs[k] = histQuantile(a.hist, a.count, 0.5, a.min, a.max)
		case k == AggP95:
			b.Aggs[k] = histQuantile(a.hist, a.count, 0.95, a.min, a.max)
		case k == AggP99:
			b.Aggs[k] = histQuantile(a.hist, a.count, 0.99, a.min, a.max)
		}
	}
	return b
}

// histQuantile estimates the q-quantile from a merged histogram with the
// same rank convention as quantileSorted: the fractional rank q·(n−1)
// linearly interpolates between the two adjacent order statistics, each of
// which is located in the histogram independently. Interpolating between
// per-statistic estimates (rather than within a single bin) keeps the
// estimate within one bin of the raw answer even for tiny counts, where
// adjacent order statistics can sit in distant bins. Every estimate is
// clamped into the exact [lo, hi] the bucket tracked.
func histQuantile(h *[histBins]uint64, count uint64, q float64, lo, hi float64) float64 {
	if count == 0 || h == nil {
		return nan
	}
	rank := q * float64(count-1)
	k := uint64(rank)
	frac := rank - float64(k)
	est := histValueAt(h, k, lo, hi)
	if frac > 0 && k+1 < count {
		est = est*(1-frac) + histValueAt(h, k+1, lo, hi)*frac
	}
	return math.Min(math.Max(est, lo), hi)
}

// histValueAt estimates the k-th order statistic (0-based) from the
// histogram: the underflow bin resolves to the exact minimum, the overflow
// bin to the exact maximum, and interior bins interpolate linearly by the
// statistic's position within the bin's population.
func histValueAt(h *[histBins]uint64, k uint64, lo, hi float64) float64 {
	var cum uint64
	for i := 0; i < histBins; i++ {
		c := h[i]
		if c == 0 {
			continue
		}
		if k < cum+c {
			switch i {
			case 0:
				return lo
			case histBins - 1:
				return hi
			default:
				l, u := histBounds[i], histBounds[i+1]
				return l + (u-l)*((float64(k-cum)+0.5)/float64(c))
			}
		}
		cum += c
	}
	return hi
}

// executeTier serves a query from one rollup tier by streaming tier buckets
// into per-group accumulators — the whole scan touches O(range/tierWidth)
// pre-aggregates per series instead of every raw sample. Candidate series
// are resolved lock-free from the copy-on-write directory; stripe read
// locks are held only while a stripe's tier buckets are merged. The planner
// (planTier) has already verified alignment, so each tier bucket maps to
// exactly one output bucket.
func (db *DB) executeTier(q *Query, window int64, nBuckets, ti int) ([]SeriesResult, error) {
	tier := &db.opts.Rollups[ti]
	needQuant := false
	for _, a := range q.Aggs {
		if a == AggMedian || a == AggP95 || a == AggP99 {
			needQuant = true
		}
	}
	matched := matchIdents(db.dir.Load(), q)
	groups := map[string][]rollAcc{}
	for si, st := range db.stripes {
		locked := false
		for _, id := range matched {
			if id.stripeIdx != uint32(si) {
				continue
			}
			if !locked {
				st.mu.RLock()
				locked = true
			}
			group := ""
			if q.GroupBy != "" {
				group = tagValue(id.tags, q.GroupBy)
			}
			for _, its := range id.tierShards(ti) {
				if its.end <= q.Start || its.start >= q.End {
					continue
				}
				col, ok := its.ts.fields[q.Field]
				if !ok {
					continue
				}
				accs := groups[group]
				if accs == nil {
					accs = make([]rollAcc, nBuckets)
					groups[group] = accs
				}
				// Tier buckets are sorted by start; visit only those in
				// [q.Start, q.End).
				lo := sort.Search(len(col.starts), func(i int) bool { return col.starts[i] >= q.Start })
				for i := lo; i < len(col.starts) && col.starts[i] < q.End; i++ {
					accs[(col.starts[i]-q.Start)/window].merge(&col.buckets[i], needQuant)
				}
			}
		}
		if locked {
			st.mu.RUnlock()
		}
	}

	out := make([]SeriesResult, 0, len(groups))
	for g, accs := range groups {
		res := SeriesResult{Group: g, Tier: tier.Width, Buckets: make([]Bucket, nBuckets)}
		for i := range accs {
			res.Buckets[i] = accs[i].toBucket(q.Start+int64(i)*window, q.Aggs)
		}
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out, nil
}
