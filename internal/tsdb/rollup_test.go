package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// testRollups is the tier ladder used throughout: 1s/10s/1m, no tier
// retention unless a test configures it.
func testRollups() []RollupTier {
	return []RollupTier{{Width: 1e9}, {Width: 10e9}, {Width: 60e9}}
}

// binDist returns how many histogram bins apart two values fall — the unit
// in which rollup quantile error is specified.
func binDist(a, b float64) int {
	d := int(binOf(a)) - int(binOf(b))
	if d < 0 {
		d = -d
	}
	return d
}

// TestRollupDashboardQueryServedFromTier is the acceptance shape: a 1-hour
// range at 10s windows over rollup-enabled data must be served from a tier,
// agree exactly with the raw path on count/min/max/sum (and mean), and put
// quantiles within histogram-bin error of the raw answer.
func TestRollupDashboardQueryServedFromTier(t *testing.T) {
	db := Open(Options{Rollups: testRollups()})
	rng := rand.New(rand.NewSource(7))
	cities := []string{"Auckland", "Sydney"}
	const hour = 3600e9
	for i := 0; i < 72000; i++ { // 20 points/s for an hour
		v := float64(100 + rng.Intn(200)) // integer-valued: sums stay exact
		db.Write(pt("latency", int64(rng.Int63n(hour)),
			map[string]string{"src_city": cities[i%2]},
			map[string]float64{"total_ms": v}))
	}
	q := Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: hour, Window: 10e9, GroupBy: "src_city",
		Aggs: []AggKind{AggCount, AggMin, AggMax, AggSum, AggMean, AggMedian, AggP95, AggP99},
	}
	tiered, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	q.Resolution = ResolutionRaw
	raw, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiered) != 2 || len(raw) != 2 {
		t.Fatalf("groups: tier=%d raw=%d", len(tiered), len(raw))
	}
	for g := range tiered {
		if tiered[g].Tier != 10e9 {
			t.Fatalf("group %q served from tier %d, want 10s tier", tiered[g].Group, tiered[g].Tier)
		}
		if raw[g].Tier != 0 {
			t.Fatalf("raw path reported tier %d", raw[g].Tier)
		}
		if tiered[g].Group != raw[g].Group || len(tiered[g].Buckets) != 360 {
			t.Fatalf("shape mismatch: %q/%q, %d buckets", tiered[g].Group, raw[g].Group, len(tiered[g].Buckets))
		}
		for i := range tiered[g].Buckets {
			tb, rb := tiered[g].Buckets[i], raw[g].Buckets[i]
			if tb.Start != rb.Start || tb.Count != rb.Count {
				t.Fatalf("bucket %d: start/count %d/%d vs %d/%d", i, tb.Start, tb.Count, rb.Start, rb.Count)
			}
			for _, k := range []AggKind{AggCount, AggMin, AggMax, AggSum, AggMean} {
				if tb.Aggs[k] != rb.Aggs[k] {
					t.Fatalf("bucket %d %s: tier %v raw %v", i, k, tb.Aggs[k], rb.Aggs[k])
				}
			}
			for _, k := range []AggKind{AggMedian, AggP95, AggP99} {
				if d := binDist(tb.Aggs[k], rb.Aggs[k]); d > 1 {
					t.Fatalf("bucket %d %s: tier %v raw %v (%d bins apart)", i, k, tb.Aggs[k], rb.Aggs[k], d)
				}
			}
		}
	}
}

// TestRollupEquivalenceRandomized fuzzes the tier path against the raw path
// over random data and random aligned query shapes: exact equality for
// count/min/max/sum/mean (integer-valued samples keep float sums exact under
// reordering), histogram-bin error for quantiles.
func TestRollupEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		db := Open(Options{ShardDuration: 600e9, Rollups: testRollups()})
		span := int64(600e9)
		nSeries := 1 + rng.Intn(4)
		for i := 0; i < 4000; i++ {
			s := rng.Intn(nSeries)
			db.Write(pt("m", rng.Int63n(span),
				map[string]string{"city": fmt.Sprintf("c%d", s), "kind": fmt.Sprintf("k%d", s%2)},
				map[string]float64{"v": float64(1 + rng.Intn(500))}))
		}
		// Random aligned query shape: window a multiple of a random tier.
		widths := []int64{1e9, 10e9, 60e9}
		w := widths[rng.Intn(len(widths))]
		window := w * int64(1+rng.Intn(6))
		start := w * rng.Int63n(4)
		nb := int64(1 + rng.Intn(10))
		q := Query{
			Measurement: "m", Field: "v",
			Start: start, End: start + nb*window, Window: window,
			Aggs: []AggKind{AggCount, AggMin, AggMax, AggSum, AggMean, AggMedian, AggP95},
		}
		if rng.Intn(2) == 0 {
			q.GroupBy = "city"
		}
		if rng.Intn(3) == 0 {
			q.Where = []Tag{{Key: "kind", Value: "k0"}}
		}
		tiered, err := db.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		q.Resolution = ResolutionRaw
		raw, err := db.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(tiered) != len(raw) {
			t.Fatalf("trial %d: %d vs %d groups", trial, len(tiered), len(raw))
		}
		for g := range tiered {
			tg, rg := tiered[g], raw[g]
			if tg.Group != rg.Group || tg.Tier == 0 {
				t.Fatalf("trial %d: group %q tier %d (raw group %q)", trial, tg.Group, tg.Tier, rg.Group)
			}
			for i := range tg.Buckets {
				tb, rb := tg.Buckets[i], rg.Buckets[i]
				if tb.Count != rb.Count {
					t.Fatalf("trial %d bucket %d: count %d vs %d", trial, i, tb.Count, rb.Count)
				}
				if tb.Count == 0 {
					if !math.IsNaN(tb.Aggs[AggMean]) || tb.Aggs[AggSum] != 0 || tb.Aggs[AggCount] != 0 {
						t.Fatalf("trial %d bucket %d: empty-bucket aggs %v", trial, i, tb.Aggs)
					}
					continue
				}
				for _, k := range []AggKind{AggCount, AggMin, AggMax, AggSum, AggMean} {
					if tb.Aggs[k] != rb.Aggs[k] {
						t.Fatalf("trial %d bucket %d %s: %v vs %v", trial, i, k, tb.Aggs[k], rb.Aggs[k])
					}
				}
				for _, k := range []AggKind{AggMedian, AggP95} {
					if d := binDist(tb.Aggs[k], rb.Aggs[k]); d > 1 {
						t.Fatalf("trial %d bucket %d %s: %v vs %v (%d bins)", trial, i, k, tb.Aggs[k], rb.Aggs[k], d)
					}
					if tb.Aggs[k] < rb.Aggs[AggMin] || tb.Aggs[k] > rb.Aggs[AggMax] {
						t.Fatalf("trial %d bucket %d %s: %v outside [min,max]", trial, i, k, tb.Aggs[k])
					}
				}
			}
		}
	}
}

// TestRollupPlannerSelection pins the planner contract: coarsest aligned
// tier wins, misalignment falls back to raw, and forced resolutions are
// honored or rejected.
func TestRollupPlannerSelection(t *testing.T) {
	db := Open(Options{Rollups: testRollups()})
	for i := 0; i < 1000; i++ {
		db.Write(pt("m", int64(i)*600e6, nil, map[string]float64{"v": float64(i)}))
	}
	serve := func(q Query) (int64, error) {
		res, err := db.Execute(q)
		if err != nil {
			return 0, err
		}
		if len(res) == 0 {
			t.Fatalf("no groups for %+v", q)
		}
		return res[0].Tier, nil
	}
	base := Query{Measurement: "m", Field: "v", Aggs: []AggKind{AggCount}}

	cases := []struct {
		name    string
		mutate  func(*Query)
		want    int64
		wantErr error
	}{
		{"1m window picks 1m tier", func(q *Query) { q.Start, q.End, q.Window = 0, 600e9, 60e9 }, 60e9, nil},
		{"10s window picks 10s tier", func(q *Query) { q.Start, q.End, q.Window = 0, 600e9, 10e9 }, 10e9, nil},
		{"90s window picks 10s tier (1m does not divide)", func(q *Query) { q.Start, q.End, q.Window = 0, 540e9, 90e9 }, 10e9, nil},
		{"7s window picks 1s tier", func(q *Query) { q.Start, q.End, q.Window = 0, 7e9*20, 7e9 }, 1e9, nil},
		{"sub-second window falls back to raw", func(q *Query) { q.Start, q.End, q.Window = 0, 60e9, 500e6 }, 0, nil},
		{"misaligned start falls back to raw", func(q *Query) { q.Start, q.End, q.Window = 5e8, 600e9+5e8, 10e9 }, 0, nil},
		{"misaligned end falls back to raw", func(q *Query) { q.Start, q.End, q.Window = 0, 595e9+5e8, 10e9 }, 0, nil},
		{"whole-range single bucket uses coarsest tier", func(q *Query) { q.Start, q.End, q.Window = 0, 600e9, 0 }, 60e9, nil},
		{"forced raw", func(q *Query) { q.Start, q.End, q.Window, q.Resolution = 0, 600e9, 60e9, ResolutionRaw }, 0, nil},
		{"forced 1s tier", func(q *Query) { q.Start, q.End, q.Window, q.Resolution = 0, 600e9, 60e9, 1e9 }, 1e9, nil},
		{"forced unknown width", func(q *Query) { q.Start, q.End, q.Window, q.Resolution = 0, 600e9, 60e9, 5e9 }, 0, ErrBadResolution},
		{"forced misaligned tier", func(q *Query) { q.Start, q.End, q.Window, q.Resolution = 0, 600e9, 15e9, 10e9 }, 0, ErrBadResolution},
		{"negative non-raw resolution", func(q *Query) { q.Start, q.End, q.Resolution = 0, 600e9, -2 }, 0, ErrBadResolution},
	}
	for _, c := range cases {
		q := base
		c.mutate(&q)
		tier, err := serve(q)
		if err != c.wantErr {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.wantErr)
			continue
		}
		if err == nil && tier != c.want {
			t.Errorf("%s: served from tier %d, want %d", c.name, tier, c.want)
		}
	}

	// Forcing a tier on a DB without rollups is an error; raw is not.
	plain := Open(Options{})
	plain.Write(pt("m", 0, nil, map[string]float64{"v": 1}))
	if _, err := plain.Execute(Query{Measurement: "m", Field: "v", End: 10e9, Resolution: 10e9}); err != ErrBadResolution {
		t.Fatalf("forced tier without rollups: err = %v", err)
	}
	if _, err := plain.Execute(Query{Measurement: "m", Field: "v", End: 10e9, Resolution: ResolutionRaw}); err != nil {
		t.Fatalf("forced raw without rollups: err = %v", err)
	}
}

// TestRollupTierRetention exercises independent horizons: raw kept briefly,
// the 1m tier kept much longer — the long-range query is answered by the
// tier after raw storage has forgotten the data, and the tier itself is
// purged once its own horizon passes.
func TestRollupTierRetention(t *testing.T) {
	db := Open(Options{
		ShardDuration: 60e9,
		Retention:     120e9, // raw: 2 minutes
		Rollups: []RollupTier{
			{Width: 1e9, Retention: 120e9},
			{Width: 60e9, Retention: 3600e9}, // 1m tier: 1 hour
		},
	})
	for i := 0; i < 600; i++ { // 10 minutes of data at 1/s
		db.Write(pt("m", int64(i)*1e9, nil, map[string]float64{"v": 1}))
	}
	// Early range: raw is gone (retention 2m, newest point ~10m), the 1m
	// tier still has it.
	q := Query{Measurement: "m", Field: "v", Start: 0, End: 300e9, Window: 60e9,
		Aggs: []AggKind{AggCount}}
	res, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Tier != 60e9 {
		t.Fatalf("res = %+v", res)
	}
	for i, b := range res[0].Buckets {
		if b.Count != 60 {
			t.Fatalf("tier bucket %d count = %d, want 60", i, b.Count)
		}
	}
	q.Resolution = ResolutionRaw
	res, err = db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	rawCount := 0
	for _, r := range res {
		for _, b := range r.Buckets {
			rawCount += b.Count
		}
	}
	if rawCount != 0 {
		t.Fatalf("raw storage still holds %d expired points", rawCount)
	}
	// The auto planner must not hand the early range to the short-retention
	// 1s tier (which, like raw, has forgotten it).
	q = Query{Measurement: "m", Field: "v", Start: 0, End: 300e9, Window: 1e9,
		Aggs: []AggKind{AggCount}}
	res, err = db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 { // 1s tier is not eligible, raw has nothing
		t.Fatalf("short-retention tier served expired range: %+v", res)
	}
	// Push maxT past the 1m tier's horizon: its old shards must be purged.
	db.Write(pt("m", 4000e9, nil, map[string]float64{"v": 1}))
	q = Query{Measurement: "m", Field: "v", Start: 0, End: 300e9, Window: 60e9,
		Aggs: []AggKind{AggCount}}
	res, err = db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range res {
		for _, b := range r.Buckets {
			total += b.Count
		}
	}
	if total != 0 {
		t.Fatalf("1m tier still holds %d samples past its horizon", total)
	}
}

// TestRollupLateWriteSkipsExpiredTier pins the independent write-time
// horizons: a straggler behind the raw horizon still reaches a coarse tier
// that covers it, but not a tier whose own horizon has passed.
func TestRollupLateWriteSkipsExpiredTier(t *testing.T) {
	db := Open(Options{
		ShardDuration: 60e9,
		Retention:     60e9,
		Rollups: []RollupTier{
			{Width: 1e9, Retention: 60e9},
			{Width: 60e9, Retention: 0},
		},
	})
	db.Write(pt("m", 1000e9, nil, map[string]float64{"v": 1}))
	// 900s behind maxT: outside raw and the 1s tier, inside the 1m tier.
	db.Write(pt("m", 100e9, nil, map[string]float64{"v": 5}))
	if w, d := db.WriteStats(); w != 1 || d != 1 {
		t.Fatalf("written=%d dropped=%d", w, d)
	}
	res, err := db.Execute(Query{Measurement: "m", Field: "v",
		Start: 60e9, End: 180e9, Window: 60e9, Resolution: 60e9,
		Aggs: []AggKind{AggCount, AggSum}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Buckets[0].Count != 1 || res[0].Buckets[0].Aggs[AggSum] != 5 {
		t.Fatalf("1m tier missed the late write: %+v", res)
	}
	res, err = db.Execute(Query{Measurement: "m", Field: "v",
		Start: 60e9, End: 180e9, Window: 60e9, Resolution: 1e9,
		Aggs: []AggKind{AggCount}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		for _, b := range r.Buckets {
			if b.Count != 0 {
				t.Fatalf("1s tier accepted a write behind its horizon: %+v", res)
			}
		}
	}
}

// TestHistogramBins pins the bin function invariants the quantile error
// bound rests on.
func TestHistogramBins(t *testing.T) {
	if binOf(-5) != 0 || binOf(0) != 0 || binOf(histMin/2) != 0 {
		t.Fatal("underflow values must land in bin 0")
	}
	if binOf(histMax) != histBins-1 || binOf(1e300) != histBins-1 {
		t.Fatal("overflow values must land in the last bin")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.Float64()*55 - 14) // ~1e-6 .. 1e17
		b := binOf(v)
		if b >= 1 && b <= histBins-2 {
			if v < histBounds[b] || (b+1 < histBins && v >= histBounds[b+1]) {
				t.Fatalf("v=%g in bin %d bounds [%g,%g)", v, b, histBounds[b], histBounds[b+1])
			}
		}
	}
	// Exact bucket boundaries must not be mis-binned by rounding.
	for i := 1; i < histBins-1; i++ {
		if b := binOf(histBounds[i]); int(b) != i {
			t.Fatalf("boundary %g binned to %d, want %d", histBounds[i], b, i)
		}
	}
}

// BenchmarkExecuteRollup is the tentpole's performance claim: the dashboard
// query shape (1h range, 10s windows) served from the 10s tier versus
// re-scanning raw samples. The target is ≥10× fewer ns/query for the tier.
func BenchmarkExecuteRollup(b *testing.B) {
	db := Open(Options{Rollups: testRollups()})
	rng := rand.New(rand.NewSource(1))
	cities := []string{"Auckland", "Sydney", "Tokyo"}
	const hour = 3600e9
	for i := 0; i < 360000; i++ { // 100 points/s for an hour
		db.Write(pt("latency", int64(rng.Int63n(hour)),
			map[string]string{"src_city": cities[i%len(cities)]},
			map[string]float64{"total_ms": 100 + rng.Float64()*200}))
	}
	q := Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: hour, Window: 10e9, GroupBy: "src_city",
		Aggs: []AggKind{AggCount, AggMean, AggP95, AggP99},
	}
	b.Run("raw", func(b *testing.B) {
		qq := q
		qq.Resolution = ResolutionRaw
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Execute(qq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tier", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := db.Execute(q)
			if err != nil {
				b.Fatal(err)
			}
			if res[0].Tier != 10e9 {
				b.Fatalf("served from tier %d", res[0].Tier)
			}
		}
	})
}

// BenchmarkWriteRollup measures the write-amplification cost of feeding
// three tiers on every write, against the raw-only write path.
func BenchmarkWriteRollup(b *testing.B) {
	for _, tiers := range []struct {
		name string
		r    []RollupTier
	}{{"raw-only", nil}, {"3-tiers", testRollups()}} {
		b.Run(tiers.name, func(b *testing.B) {
			db := Open(Options{Rollups: tiers.r})
			tags := map[string]string{"src_city": "Auckland", "dst_city": "Los Angeles"}
			fields := map[string]float64{"internal_ms": 15, "external_ms": 130, "total_ms": 145}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db.Write(pt("latency", int64(i)*1e6, tags, fields))
			}
		})
	}
}
