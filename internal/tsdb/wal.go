package tsdb

// The write-ahead log: the append-only half of the durability subsystem
// (persist.go holds the checkpoint/restore half).
//
// Layout: Options.Persist.Dir/wal/ holds numbered segment files
// (00000001.wal, 00000002.wal, ...). Each segment starts with an 8-byte
// magic and then carries CRC-framed records:
//
//	[4B little-endian payload length][4B CRC-32C of payload][payload]
//
// One record is one committed write: the batch of points the Write or
// WriteBatch carried, in a dictionary-compressed binary encoding — binary,
// not line protocol, because the WAL rides the hot write path, where float
// formatting alone would blow the E13/BenchmarkWriteWAL ≤15%-overhead
// target, and byte volume is the binding constraint once the disk's
// buffered-write throughput saturates. Each segment carries its own series
// dictionary: the first point of a (name, tags, field-key-set) shape emits
// a define entry with the strings, and every subsequent point of that
// shape is a sample entry of roughly
//
//	[1B kind][uvarint shape id][uvarint per field][varint time delta]
//
// Sample values are delta-compressed Gorilla-style against the shape's
// previous sample: timestamps as zigzag-varint deltas, float fields as
// the XOR of their bit patterns (byte-reversed so the leading-zero high
// bytes of similar values varint-encode short — an unchanged value costs
// one byte). Together the dictionary and delta coding cut a steady-state
// point to ~10–15 bytes, an order of magnitude under re-encoding the
// strings — and byte volume is what binds the write path once the disk's
// buffered throughput saturates. All per-shape state (dictionary ids,
// previous time/values) resets at every segment boundary, so a segment is
// always decodable on its own — replay can start at any checkpoint cut
// without context from truncated segments. Checkpoint files, written off
// the hot path, stay in interoperable line protocol. The CRC frame is
// what makes a torn tail detectable.
//
// Group commit: appends serialize under mu; Sync (fsync=always) lets
// concurrent committers piggyback on one fsync — each waiter re-checks the
// synced LSN under syncMu and only the first one behind it pays the
// syscall, covering everything appended up to that instant.
//
// Torn-tail contract: a crash can leave the final record of the final
// segment incomplete. replaySegment stops cleanly at the first frame whose
// header is short, whose length is implausible, or whose CRC mismatches —
// in the FINAL segment that is expected (ErrWALTorn, data up to the tear is
// kept); in any earlier segment it is real corruption (ErrWALCorrupt) and
// open fails rather than silently dropping the segments behind it.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// FsyncPolicy selects when WAL appends are made durable.
type FsyncPolicy string

const (
	// FsyncInterval (the default) leaves appends buffered and has a
	// background flusher fsync every PersistOptions.FsyncInterval: bounded
	// data-loss window, near-in-memory write latency.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncAlways fsyncs before a write returns (group-committed across
	// concurrent writers): zero committed-data loss on power failure, at
	// the cost of an fsync on the write path.
	FsyncAlways FsyncPolicy = "always"
	// FsyncOff writes each record through to the OS (one write syscall per
	// batch) but never fsyncs: survives process crashes, not power loss.
	FsyncOff FsyncPolicy = "off"
)

var (
	// ErrWALTorn reports a torn final record at the tail of the last
	// segment — the expected shape of a crash mid-append. Replay keeps
	// everything before the tear.
	ErrWALTorn = errors.New("tsdb: torn WAL tail")
	// ErrWALCorrupt reports a bad frame in a non-final segment: data after
	// it would be silently lost, so open fails instead.
	ErrWALCorrupt = errors.New("tsdb: corrupt WAL segment")
)

const (
	walDirName      = "wal"
	walSuffix       = ".wal"
	walMagic        = "RUWAL001"
	walHeaderBytes  = 8
	walFrameBytes   = 8 // 4B length + 4B CRC
	defaultSegBytes = 64 << 20
)

// maxRecordBytes bounds a single frame on both sides: the writer refuses
// (errWALRecordTooBig — logBatch splits oversized batches in response) and
// the reader treats anything larger in a header as a tear/corruption, not
// an allocation request. It must stay far below the frame's 4 GiB uint32
// length limit. A var only so tests can shrink it.
var maxRecordBytes = int64(256 << 20)

// errWALRecordTooBig reports a single record that would exceed
// maxRecordBytes; the caller splits the batch and retries.
var errWALRecordTooBig = errors.New("tsdb: WAL record exceeds frame limit")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Entry kinds within a record payload.
const (
	walEntryDefine = 0 // uvarint id, name, tags, field keys (all length-prefixed)
	walEntrySample = 1 // uvarint id, per-field XOR uvarints, varint time delta
	// walEntryTornPrev, written as the first record of a segment opened by
	// an error-rotation, acknowledges that the PREVIOUS segment may end in
	// a torn frame: replay tolerates that tear (it would otherwise read as
	// mid-stream corruption, since the previous segment is no longer the
	// final one) and skips the marker itself.
	walEntryTornPrev = 2
)

var errWALDecode = errors.New("tsdb: bad WAL point encoding")

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// shapeKey builds the injective dictionary key of a point's shape: name,
// tags and the ordered field-key set, all length-prefixed (so no separator
// can be forged by key contents).
func shapeKey(buf []byte, p *Point) []byte {
	buf = appendString(buf, p.Name)
	for _, t := range p.Tags {
		buf = appendString(buf, t.Key)
		buf = appendString(buf, t.Value)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Fields)))
	for _, f := range p.Fields {
		buf = appendString(buf, f.Key)
	}
	return buf
}

// appendDefine emits a dictionary entry for a new shape.
func appendDefine(buf []byte, id uint64, p *Point) []byte {
	buf = append(buf, walEntryDefine)
	buf = binary.AppendUvarint(buf, id)
	buf = appendString(buf, p.Name)
	buf = binary.AppendUvarint(buf, uint64(len(p.Tags)))
	for _, t := range p.Tags {
		buf = appendString(buf, t.Key)
		buf = appendString(buf, t.Value)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Fields)))
	for _, f := range p.Fields {
		buf = appendString(buf, f.Key)
	}
	return buf
}

// shapeEnc is the write-side delta state of one shape within the current
// segment: the previous sample's timestamp and field bit patterns.
type shapeEnc struct {
	prevTime int64
	prev     []uint64
}

// appendSample emits one point against an already-defined shape, delta-
// coded against (and updating) the shape's state.
func appendSample(buf []byte, id uint64, p *Point, st *shapeEnc) []byte {
	buf = append(buf, walEntrySample)
	buf = binary.AppendUvarint(buf, id)
	for i, f := range p.Fields {
		b := math.Float64bits(f.Value)
		// Byte-reverse the XOR so similar values' leading-zero high bytes
		// become trailing zeros and the uvarint stays short (0 = 1 byte).
		buf = binary.AppendUvarint(buf, bits.ReverseBytes64(b^st.prev[i]))
		st.prev[i] = b
	}
	buf = binary.AppendVarint(buf, p.Time-st.prevTime)
	st.prevTime = p.Time
	return buf
}

// walShape is a decoded dictionary entry on the replay side, carrying the
// same delta state the writer kept.
type walShape struct {
	name      string
	tags      []Tag // sorted (points are tag-sorted before logging)
	fieldKeys []string
	prevTime  int64
	prev      []uint64
}

// walDecoder decodes one segment's entry stream. A fresh decoder per
// segment mirrors the per-segment dictionary reset on the write side.
type walDecoder struct {
	shapes []walShape
}

// next decodes the next entry from payload. A define returns (rest, false,
// nil) after registering the shape; a sample fills p and returns (rest,
// true, nil).
func (d *walDecoder) next(payload []byte, p *Point) (rest []byte, sample bool, err error) {
	if len(payload) == 0 {
		return nil, false, errWALDecode
	}
	kind := payload[0]
	data := payload[1:]
	if kind == walEntryTornPrev {
		return data, false, nil // tear acknowledgement; carries nothing
	}
	readStr := func() (string, bool) {
		n, w := binary.Uvarint(data)
		if w <= 0 || uint64(len(data)-w) < n {
			return "", false
		}
		s := string(data[w : w+int(n)])
		data = data[w+int(n):]
		return s, true
	}
	id, w := binary.Uvarint(data)
	if w <= 0 {
		return nil, false, errWALDecode
	}
	data = data[w:]
	switch kind {
	case walEntryDefine:
		if id != uint64(len(d.shapes)) {
			return nil, false, errWALDecode // ids are sequential per segment
		}
		var sh walShape
		var ok bool
		if sh.name, ok = readStr(); !ok {
			return nil, false, errWALDecode
		}
		ntags, w := binary.Uvarint(data)
		if w <= 0 {
			return nil, false, errWALDecode
		}
		data = data[w:]
		for i := uint64(0); i < ntags; i++ {
			var t Tag
			if t.Key, ok = readStr(); !ok {
				return nil, false, errWALDecode
			}
			if t.Value, ok = readStr(); !ok {
				return nil, false, errWALDecode
			}
			sh.tags = append(sh.tags, t)
		}
		nfields, w := binary.Uvarint(data)
		if w <= 0 {
			return nil, false, errWALDecode
		}
		data = data[w:]
		for i := uint64(0); i < nfields; i++ {
			k, ok := readStr()
			if !ok {
				return nil, false, errWALDecode
			}
			sh.fieldKeys = append(sh.fieldKeys, k)
		}
		sh.prev = make([]uint64, len(sh.fieldKeys))
		d.shapes = append(d.shapes, sh)
		return data, false, nil
	case walEntrySample:
		if id >= uint64(len(d.shapes)) {
			return nil, false, errWALDecode
		}
		sh := &d.shapes[id]
		p.Name = sh.name
		p.Tags = append(p.Tags[:0], sh.tags...)
		p.Fields = p.Fields[:0]
		for i, k := range sh.fieldKeys {
			x, w := binary.Uvarint(data)
			if w <= 0 {
				return nil, false, errWALDecode
			}
			data = data[w:]
			b := bits.ReverseBytes64(x) ^ sh.prev[i]
			sh.prev[i] = b
			p.Fields = append(p.Fields, Field{Key: k, Value: math.Float64frombits(b)})
		}
		dt, w := binary.Varint(data)
		if w <= 0 {
			return nil, false, errWALDecode
		}
		data = data[w:]
		sh.prevTime += dt
		p.Time = sh.prevTime
		return data, true, nil
	default:
		return nil, false, errWALDecode
	}
}

// wal is the segmented append log. All mutation happens under mu; Sync
// additionally serializes under syncMu so fsyncs group-commit.
type wal struct {
	dir         string
	maxSegBytes int64
	policy      FsyncPolicy

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	seg      uint64 // current segment index
	segBytes int64
	lsn      uint64 // records appended (monotonic)
	closed   bool
	// poisoned marks the current segment's tail as possibly mid-frame
	// (a record write failed): the next append must rotate, and the new
	// segment must open with a tear acknowledgement.
	poisoned bool
	// retired holds rotated-out segment files awaiting fsync+close by the
	// next sync cycle (empty under FsyncOff, which closes eagerly). Files
	// are only closed under syncMu, so a sync never races a close.
	retired []*os.File
	// dict maps a point shape (shapeKey) to its id in the CURRENT segment,
	// and state[id] holds that shape's delta-coding state; both reset at
	// every rotation so each segment decodes stand-alone.
	dict    map[string]uint64
	state   []shapeEnc
	scratch []byte // record payload build buffer
	keyBuf  []byte // shapeKey build buffer
	// last-shape cache: consecutive points of one series (the common case
	// in a sink batch) skip the shapeKey build and map lookup entirely.
	// The string comparisons short-circuit on pointer equality when the
	// caller reuses its tag/field structures. Invalidated by rotation.
	lastValid     bool
	lastID        uint64
	lastName      string
	lastTags      []Tag
	lastFieldKeys []string

	syncMu    sync.Mutex
	syncedLSN atomic.Uint64

	appends      atomic.Uint64
	appendErrors atomic.Uint64
	fsyncs       atomic.Uint64
}

func segName(seg uint64) string {
	return fmt.Sprintf("%08d%s", seg, walSuffix)
}

// parseSegName returns the index encoded in a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(name, walSuffix), 10, 64)
	return n, err == nil
}

// listSegments returns the segment indexes present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range ents {
		if n, ok := parseSegName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// openWAL starts appending to a fresh segment numbered after every existing
// one (a possibly-torn old tail is never appended to, so its tear stays
// detectable and everything after it stays readable).
func openWAL(dir string, firstFree uint64, maxSegBytes int64, policy FsyncPolicy) (*wal, error) {
	w := &wal{dir: dir, maxSegBytes: maxSegBytes, policy: policy}
	if w.maxSegBytes <= 0 {
		w.maxSegBytes = defaultSegBytes
	}
	if err := w.openSegment(firstFree); err != nil {
		return nil, err
	}
	return w, nil
}

// openSegment creates segment seg and makes it current. Caller holds mu (or
// is the constructor).
func (w *wal) openSegment(seg uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(seg)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.WriteString(walMagic); err != nil {
		// Remove the half-born segment so a retry does not trip O_EXCL.
		f.Close()
		os.Remove(f.Name())
		return err
	}
	w.f, w.bw, w.seg, w.segBytes = f, bw, seg, walHeaderBytes
	if w.dict == nil {
		w.dict = make(map[string]uint64, 64)
	} else {
		clear(w.dict) // every segment re-defines the shapes it uses
	}
	w.state = w.state[:0]
	w.lastValid = false
	return nil
}

// sameAsLast reports whether p has the cached last shape.
func (w *wal) sameAsLast(p *Point) bool {
	if p.Name != w.lastName || len(p.Tags) != len(w.lastTags) ||
		len(p.Fields) != len(w.lastFieldKeys) {
		return false
	}
	for i, t := range p.Tags {
		if t.Key != w.lastTags[i].Key || t.Value != w.lastTags[i].Value {
			return false
		}
	}
	for i, f := range p.Fields {
		if f.Key != w.lastFieldKeys[i] {
			return false
		}
	}
	return true
}

// encodeOneLocked appends one point's entries to a record payload: a
// define the first time its shape appears in this segment, then the
// sample. Caller holds mu.
func (w *wal) encodeOneLocked(payload []byte, p *Point) []byte {
	if w.lastValid && w.sameAsLast(p) {
		return appendSample(payload, w.lastID, p, &w.state[w.lastID])
	}
	w.keyBuf = shapeKey(w.keyBuf[:0], p)
	id, ok := w.dict[string(w.keyBuf)]
	if !ok {
		id = uint64(len(w.dict))
		w.dict[string(w.keyBuf)] = id
		w.state = append(w.state, shapeEnc{prev: make([]uint64, len(p.Fields))})
		payload = appendDefine(payload, id, p)
	}
	w.lastValid, w.lastID, w.lastName = true, id, p.Name
	w.lastTags = append(w.lastTags[:0], p.Tags...)
	w.lastFieldKeys = w.lastFieldKeys[:0]
	for _, f := range p.Fields {
		w.lastFieldKeys = append(w.lastFieldKeys, f.Key)
	}
	return appendSample(payload, id, p, &w.state[id])
}

// appendRecord encodes one committed write via encode, rotating first if
// the segment is full (and re-encoding, since rotation resets the
// dictionary), and writes the CRC-framed record. Under FsyncAlways it
// returns only after the record is fsynced (group-committed); under
// FsyncOff it is flushed to the OS; under FsyncInterval it may sit in the
// buffer until the flusher's next tick.
func (w *wal) appendRecord(encode func(buf []byte) []byte) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosedDB
	}
	payload := encode(w.scratch[:0])
	if int64(len(payload)) > maxRecordBytes {
		// Refuse rather than write a frame replay would reject. The
		// dictionary may claim defines this record never wrote, so poison:
		// the next append rotates onto a fresh segment and dictionary.
		w.scratch = payload[:0]
		w.poisoned = true
		w.segBytes = w.maxSegBytes + 1
		w.mu.Unlock()
		w.appendErrors.Add(1)
		return errWALRecordTooBig
	}
	if w.segBytes+walFrameBytes+int64(len(payload)) > w.maxSegBytes && w.segBytes > walHeaderBytes {
		if err := w.rotateLocked(); err != nil {
			w.mu.Unlock()
			w.appendErrors.Add(1)
			return err
		}
		// Rotation reset the dictionary: re-encode so this record carries
		// its own defines in the new segment.
		payload = encode(payload[:0])
	}
	w.scratch = payload[:0]
	err := w.writeRecordLocked(payload)
	if err != nil {
		// The tail of this segment may now hold a partial frame and the
		// dictionary may claim defines that never hit the stream: poison
		// the segment so the next append rotates to a clean one (which
		// will carry the tear acknowledgement for this segment's tail).
		w.poisoned = true
		w.segBytes = w.maxSegBytes + 1
		w.mu.Unlock()
		w.appendErrors.Add(1)
		return err
	}
	w.lsn++
	lsn := w.lsn
	w.mu.Unlock()
	w.appends.Add(1)
	if w.policy == FsyncAlways {
		return w.syncTo(lsn)
	}
	return nil
}

// writeRecordLocked frames and writes one payload. Caller holds mu.
func (w *wal) writeRecordLocked(payload []byte) error {
	var hdr [walFrameBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	if w.policy == FsyncOff {
		if err := w.bw.Flush(); err != nil {
			return err
		}
	}
	w.segBytes += walFrameBytes + int64(len(payload))
	return nil
}

// AppendPoints logs one committed WriteBatch as a single record.
func (w *wal) AppendPoints(pts []Point) error {
	return w.appendRecord(func(buf []byte) []byte {
		for i := range pts {
			buf = w.encodeOneLocked(buf, &pts[i])
		}
		return buf
	})
}

// AppendPoint logs one committed Write as a single record.
func (w *wal) AppendPoint(p *Point) error {
	return w.appendRecord(func(buf []byte) []byte {
		return w.encodeOneLocked(buf, p)
	})
}

// syncTo makes every record up to at least lsn durable. Concurrent callers
// group-commit: whoever wins syncMu flushes and fsyncs everything appended
// so far, and the rest observe syncedLSN and return without a syscall.
// The fsync itself runs OUTSIDE the append lock — only the buffer flush
// holds mu — so writers keep committing while the disk syncs; this is what
// keeps the fsync=interval write path within its overhead budget. A
// concurrent rotation may retire the captured file mid-sync; that is safe
// because files are only closed here, under syncMu.
func (w *wal) syncTo(lsn uint64) error {
	if w.syncedLSN.Load() >= lsn {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.syncedLSN.Load() >= lsn {
		return nil
	}
	w.mu.Lock()
	target := w.lsn
	err := w.bw.Flush()
	f := w.f
	retired := w.retired
	w.retired = nil
	w.mu.Unlock()
	// On any failure, hand the not-yet-synced retirees back (ahead of any
	// newer ones) so the next cycle retries them: dropping one would leak
	// its descriptor AND let a later cycle advance syncedLSN past records
	// that were never made durable — a false group-commit acknowledgement.
	requeue := func(from int) {
		w.mu.Lock()
		w.retired = append(append([]*os.File{}, retired[from:]...), w.retired...)
		w.mu.Unlock()
	}
	if err != nil {
		requeue(0)
		w.appendErrors.Add(1)
		return err
	}
	// Oldest first: every byte of records ≤ target is in (retired..., f).
	for i, r := range retired {
		if e := fdatasync(r); e != nil {
			requeue(i)
			w.appendErrors.Add(1)
			return e
		}
		r.Close() // data is durable; nothing left to lose in a close error
	}
	if err = fdatasync(f); err != nil {
		w.appendErrors.Add(1)
		return err
	}
	w.fsyncs.Add(1)
	w.syncedLSN.Store(target)
	return nil
}

// Sync flushes and fsyncs everything appended so far (the interval
// flusher's tick, and the Close path).
func (w *wal) Sync() error {
	w.mu.Lock()
	lsn := w.lsn
	w.mu.Unlock()
	if lsn == 0 {
		return nil
	}
	return w.syncTo(lsn)
}

// rotateLocked finishes the current segment and starts the next. Caller
// holds mu. No fsync here (it would stall every committer behind the
// rotation): under FsyncAlways/FsyncInterval the old file is retired for
// the next sync cycle to fsync and close; FsyncOff never fsyncs, so the
// file is closed eagerly.
//
// A flush failure on the old segment does NOT abort the rotation:
// bufio.Writer errors are sticky, so the only way back to a working log
// is a fresh segment with a fresh writer. The failed buffer's records are
// gone from the log — counted in appendErrors, which is the signal the
// runbook alerts on — and rotation proceeds so the NEXT append lands
// cleanly instead of the WAL staying wedged forever on a transient error
// (e.g. ENOSPC that was later cleared). Because the abandoned segment may
// end mid-frame and will no longer be the final segment on disk, the new
// segment opens with a walEntryTornPrev record acknowledging the tear —
// without it, the next open would misread the tail as mid-stream
// corruption and refuse to start.
func (w *wal) rotateLocked() error {
	tear := w.poisoned
	if err := w.bw.Flush(); err != nil {
		w.appendErrors.Add(1)
		tear = true
		// The stream may end mid-frame: close now rather than retiring a
		// broken segment for a later fsync.
		w.f.Close()
	} else if w.policy == FsyncOff {
		if err := w.f.Close(); err != nil {
			w.appendErrors.Add(1)
		}
	} else {
		w.retired = append(w.retired, w.f)
	}
	if err := w.openSegment(w.seg + 1); err != nil {
		return err
	}
	w.poisoned = false
	if tear {
		if err := w.writeRecordLocked([]byte{walEntryTornPrev}); err != nil {
			// Still failing: poison again so the next append rotates again.
			w.poisoned = true
			w.segBytes = w.maxSegBytes + 1
			w.appendErrors.Add(1)
			return err
		}
	}
	return nil
}

// Rotate seals the current segment and opens the next; returns the new
// segment's index. The checkpoint cut: every record appended before Rotate
// returns lives in a segment numbered below the result.
func (w *wal) Rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosedDB
	}
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.seg, nil
}

// Close flushes, fsyncs and closes the current segment and any retired
// ones awaiting their sync cycle.
func (w *wal) Close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.bw.Flush()
	for _, r := range w.retired {
		if e := fdatasync(r); err == nil {
			err = e
		}
		if e := r.Close(); err == nil {
			err = e
		}
	}
	w.retired = nil
	if e := fdatasync(w.f); err == nil {
		err = e
	}
	if e := w.f.Close(); err == nil {
		err = e
	}
	return err
}

// removeSegmentsBelow deletes segments with index < bound (the ones a
// checkpoint has superseded).
func removeSegmentsBelow(dir string, bound uint64) (removed int, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	for _, s := range segs {
		if s >= bound {
			break
		}
		if e := os.Remove(filepath.Join(dir, segName(s))); e != nil && err == nil {
			err = e
			continue
		}
		removed++
	}
	return removed, err
}

// segmentStartsWithTear reports whether the segment's first record is a
// tear acknowledgement — i.e. the previous segment was abandoned by an
// error-rotation and its torn tail is expected, not corruption.
func segmentStartsWithTear(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var head [walHeaderBytes + walFrameBytes + 1]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false
	}
	if string(head[:walHeaderBytes]) != walMagic {
		return false
	}
	length := binary.LittleEndian.Uint32(head[walHeaderBytes : walHeaderBytes+4])
	payload := head[walHeaderBytes+walFrameBytes:]
	return length == 1 &&
		crc32.Checksum(payload, crcTable) == binary.LittleEndian.Uint32(head[walHeaderBytes+4:walHeaderBytes+8]) &&
		payload[0] == walEntryTornPrev
}

// replaySegment streams one segment's records to apply. final marks the
// last segment on disk: only there is a bad frame a tolerable tear
// (ErrWALTorn) rather than fatal corruption (ErrWALCorrupt).
func replaySegment(path string, final bool, apply func(payload []byte) error) (records int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var magic [walHeaderBytes]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != walMagic {
		if final {
			return 0, ErrWALTorn
		}
		return 0, fmt.Errorf("%w: %s: bad magic", ErrWALCorrupt, filepath.Base(path))
	}
	torn := func(why string) (int, error) {
		if final {
			return records, ErrWALTorn
		}
		return records, fmt.Errorf("%w: %s: %s", ErrWALCorrupt, filepath.Base(path), why)
	}
	var hdr [walFrameBytes]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return records, nil // clean end
			}
			return torn("short frame header")
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(length) > maxRecordBytes {
			return torn("implausible record length")
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return torn("short record body")
		}
		if crc32.Checksum(payload, crcTable) != want {
			return torn("CRC mismatch")
		}
		if err := apply(payload); err != nil {
			return records, err
		}
		records++
	}
}
