package tsdb

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	db := Open(Options{ShardDuration: 10e9})
	cities := []string{"Auckland", "Sydney", "Tokyo"}
	const n = 5000
	for i := 0; i < n; i++ {
		db.Write(pt("latency", int64(i)*1e7,
			map[string]string{"src_city": cities[i%3]},
			map[string]float64{"total_ms": float64(i%500) + 0.5, "internal_ms": float64(i % 50)}))
	}
	var buf bytes.Buffer
	points, err := db.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if points != n {
		t.Fatalf("snapshot wrote %d points, want %d", points, n)
	}

	db2 := Open(Options{ShardDuration: 10e9})
	restored, err := db2.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored != n {
		t.Fatalf("restored %d points", restored)
	}
	// Queries must agree exactly.
	q := Query{Measurement: "latency", Field: "total_ms", Start: 0, End: 1e12,
		GroupBy: "src_city",
		Aggs:    []AggKind{AggCount, AggMin, AggMax, AggMean, AggMedian}}
	r1, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("group counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Group != r2[i].Group {
			t.Fatalf("group %d: %q vs %q", i, r1[i].Group, r2[i].Group)
		}
		b1, b2 := r1[i].Buckets[0], r2[i].Buckets[0]
		if b1.Count != b2.Count {
			t.Fatalf("%s: count %d vs %d", r1[i].Group, b1.Count, b2.Count)
		}
		for _, agg := range q.Aggs {
			if math.Abs(b1.Aggs[agg]-b2.Aggs[agg]) > 1e-9 {
				t.Fatalf("%s %s: %v vs %v", r1[i].Group, agg, b1.Aggs[agg], b2.Aggs[agg])
			}
		}
	}
}

func TestSnapshotMixedFields(t *testing.T) {
	// Points with different field sets in one series: NaN padding must
	// not leak into the snapshot.
	db := Open(Options{})
	db.Write(pt("m", 1, nil, map[string]float64{"a": 1}))
	db.Write(pt("m", 2, nil, map[string]float64{"b": 2}))
	var buf bytes.Buffer
	points, err := db.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if points != 2 {
		t.Fatalf("points = %d", points)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatalf("NaN leaked: %s", buf.String())
	}
	db2 := Open(Options{})
	if _, err := db2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	ra, _ := db2.Execute(Query{Measurement: "m", Field: "a", Start: 0, End: 10, Aggs: []AggKind{AggCount}})
	rb, _ := db2.Execute(Query{Measurement: "m", Field: "b", Start: 0, End: 10, Aggs: []AggKind{AggCount}})
	if ra[0].Buckets[0].Count != 1 || rb[0].Buckets[0].Count != 1 {
		t.Fatal("field separation lost through snapshot")
	}
}

func TestSnapshotRestoreRebuildsTiers(t *testing.T) {
	// Pins the Snapshot doc's "tiers are derived data" claim: a snapshot
	// carries only raw points, and Restore rebuilds every rollup tier well
	// enough that tier-served queries agree with pre-restart raw exactly
	// on the exact aggregates.
	src := Open(Options{Rollups: DefaultRollups()})
	const n = 6000
	for i := 0; i < n; i++ {
		city := []string{"Auckland", "Sydney"}[i%2]
		src.Write(pt("latency", int64(i)*1e7,
			map[string]string{"src_city": city},
			map[string]float64{"total_ms": float64(1 + i%499)}))
	}
	q := Query{Measurement: "latency", Field: "total_ms",
		Start: 0, End: 60e9, Window: 10e9, GroupBy: "src_city",
		Aggs: []AggKind{AggCount, AggMin, AggMax, AggSum, AggMean}}
	qRaw := q
	qRaw.Resolution = ResolutionRaw
	want, err := src.Execute(qRaw)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := Open(Options{Rollups: DefaultRollups()})
	if restored, err := dst.Restore(&buf); err != nil || restored != n {
		t.Fatalf("restored %d points, err %v", restored, err)
	}
	got, err := dst.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d groups vs %d", len(got), len(want))
	}
	for g := range got {
		if got[g].Tier == 0 {
			t.Fatalf("group %q not tier-served after restore", got[g].Group)
		}
		for i := range got[g].Buckets {
			gb, wb := got[g].Buckets[i], want[g].Buckets[i]
			if gb.Count != wb.Count {
				t.Fatalf("%s bucket %d: count %d vs raw %d", got[g].Group, i, gb.Count, wb.Count)
			}
			for _, agg := range q.Aggs {
				if gb.Aggs[agg] != wb.Aggs[agg] {
					t.Fatalf("%s bucket %d %s: tier %v vs raw %v",
						got[g].Group, i, agg, gb.Aggs[agg], wb.Aggs[agg])
				}
			}
		}
	}
}

// gatedWriter blocks inside its first Write until released — a stand-in
// for the slow HTTP client that used to stall every TSDB write for the
// whole duration of a GET /snapshot stream.
type gatedWriter struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
	n       int
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	g.once.Do(func() {
		close(g.started)
		<-g.release
	})
	g.n += len(p)
	return len(p), nil
}

func TestSnapshotSlowConsumerDoesNotBlockWrites(t *testing.T) {
	db := Open(Options{ShardDuration: 10e9})
	for i := 0; i < 5000; i++ {
		db.Write(pt("latency", int64(i)*1e7,
			map[string]string{"src_city": "Auckland"},
			map[string]float64{"total_ms": float64(i % 500)}))
	}
	gw := &gatedWriter{started: make(chan struct{}), release: make(chan struct{})}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := db.Snapshot(gw); err != nil {
			t.Error(err)
		}
	}()
	<-gw.started // the dump is staged and mid-stream, consumer stalled

	// Writes must proceed: the stripe locks were released at staging time.
	wrote := make(chan error, 1)
	go func() {
		wrote <- db.Write(pt("latency", 1e12,
			map[string]string{"src_city": "Sydney"},
			map[string]float64{"total_ms": 1}))
	}()
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Write blocked behind a stalled Snapshot consumer")
	}
	close(gw.release)
	<-done
}

func TestRestoreRejectsGarbage(t *testing.T) {
	db := Open(Options{})
	n, err := db.Restore(strings.NewReader("latency v=1 1\nGARBAGE\n"))
	if err == nil {
		t.Fatal("garbage accepted")
	}
	if n != 1 {
		t.Fatalf("points before error = %d", n)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	db := Open(Options{})
	var buf bytes.Buffer
	points, err := db.Snapshot(&buf)
	if err != nil || points != 0 || buf.Len() != 0 {
		t.Fatalf("empty snapshot: %d points, %d bytes, %v", points, buf.Len(), err)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	db := Open(Options{})
	for i := 0; i < 100000; i++ {
		db.Write(pt("latency", int64(i)*1e6,
			map[string]string{"src_city": "Auckland"},
			map[string]float64{"total_ms": float64(i % 500)}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := db.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
