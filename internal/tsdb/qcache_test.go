package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// qcacheOptions is the standard cache-enabled configuration under test:
// short shards so retention tests cycle several, a two-tier ladder, and a
// comfortable byte budget.
func qcacheOptions() Options {
	return Options{
		ShardDuration: 10e9,
		Rollups:       []RollupTier{{Width: 1e9}, {Width: 10e9}},
		QueryCache:    1 << 20,
	}
}

// requireSameResults asserts bit-exact equality between two Execute
// results: groups, serving tier, bucket starts/counts, and every aggregate
// compared by Float64bits (NaN-safe). Both results come from the same tier
// over the same data, so even quantile estimates must agree to the bit.
func requireSameResults(t *testing.T, label string, got, want []SeriesResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: group count %d != %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := &got[i], &want[i]
		if g.Group != w.Group || g.Tier != w.Tier {
			t.Fatalf("%s: series %d: (%q tier %d) != (%q tier %d)",
				label, i, g.Group, g.Tier, w.Group, w.Tier)
		}
		if len(g.Buckets) != len(w.Buckets) {
			t.Fatalf("%s: %q: bucket count %d != %d", label, g.Group, len(g.Buckets), len(w.Buckets))
		}
		for bi := range w.Buckets {
			gb, wb := &g.Buckets[bi], &w.Buckets[bi]
			if gb.Start != wb.Start || gb.Count != wb.Count {
				t.Fatalf("%s: %q bucket %d: (start %d count %d) != (start %d count %d)",
					label, g.Group, bi, gb.Start, gb.Count, wb.Start, wb.Count)
			}
			if len(gb.Aggs) != len(wb.Aggs) {
				t.Fatalf("%s: %q bucket %d: agg sets differ: %v vs %v",
					label, g.Group, bi, gb.Aggs, wb.Aggs)
			}
			for k, wv := range wb.Aggs {
				gv, ok := gb.Aggs[k]
				if !ok {
					t.Fatalf("%s: %q bucket %d: missing agg %s", label, g.Group, bi, k)
				}
				if math.Float64bits(gv) != math.Float64bits(wv) {
					t.Fatalf("%s: %q bucket %d agg %s: %v (%#x) != %v (%#x)",
						label, g.Group, bi, k, gv, math.Float64bits(gv), wv, math.Float64bits(wv))
				}
			}
		}
	}
}

// TestCachedExecuteEquivalenceRandomized is the dual-DB discipline from the
// ref-vs-legacy suite applied to the read path: an identical random
// interleaving of in-order writes, backfills and retention-horizon
// movement is applied to a cached and an uncached DB, and every query —
// repeated shapes with advancing windows, so hits, partial refreshes and
// invalidations all occur — must return bit-identical results from both.
func TestCachedExecuteEquivalenceRandomized(t *testing.T) {
	type shape struct {
		window  int64
		groupBy string
		where   []Tag
		aggs    []AggKind
		res     int64
	}
	shapes := []shape{
		{window: 2e9, groupBy: "src_city", aggs: []AggKind{AggMean}},
		{window: 10e9, groupBy: "src_city", aggs: []AggKind{AggCount, AggSum, AggMin, AggMax, AggMean}},
		{window: 10e9, groupBy: "", aggs: []AggKind{AggP95, AggMedian, AggCount}},
		// Duplicate + unsorted aggs exercise key canonicalization.
		{window: 2e9, groupBy: "dst_city", aggs: []AggKind{AggSum, AggCount, AggSum}},
		{window: 10e9, where: []Tag{{"src_city", "akl"}}, aggs: []AggKind{AggMean, AggMax}},
		// Raw-forced queries bypass the cache but must stay correct too.
		{window: 10e9, groupBy: "src_city", aggs: []AggKind{AggMean}, res: ResolutionRaw},
	}
	srcs := []string{"akl", "syd", "lax", "lhr"}
	dsts := []string{"lax", "lhr"}

	for _, withRetention := range []bool{false, true} {
		for seed := int64(0); seed < 4; seed++ {
			opts := qcacheOptions()
			if withRetention {
				opts.Retention = 50e9
				opts.Rollups = []RollupTier{
					{Width: 1e9, Retention: 100e9},
					{Width: 10e9, Retention: 200e9},
				}
			}
			uopts := opts
			uopts.QueryCache = 0
			cached := Open(opts)
			uncached := Open(uopts)

			rng := rand.New(rand.NewSource(900 + seed))
			now := int64(0)
			write := func(p *Point) {
				// Clone per DB: Write sorts tags in place.
				q := *p
				q.Tags = append([]Tag(nil), p.Tags...)
				if err := cached.Write(&q); err != nil {
					t.Fatal(err)
				}
				q = *p
				q.Tags = append([]Tag(nil), p.Tags...)
				if err := uncached.Write(&q); err != nil {
					t.Fatal(err)
				}
			}
			for step := 0; step < 400; step++ {
				switch r := rng.Intn(10); {
				case r < 6: // in-order-ish burst
					n := 1 + rng.Intn(6)
					for i := 0; i < n; i++ {
						write(pt("latency", now+rng.Int63n(2e9),
							map[string]string{"src_city": srcs[rng.Intn(len(srcs))], "dst_city": dsts[rng.Intn(len(dsts))]},
							map[string]float64{"total_ms": float64(100 + rng.Intn(300))}))
					}
					now += rng.Int63n(3e9)
				case r < 7: // backfill behind the frozen slack → invalidation
					old := now - qcacheSlack - rng.Int63n(30e9)
					write(pt("latency", old,
						map[string]string{"src_city": srcs[rng.Intn(len(srcs))], "dst_city": dsts[0]},
						map[string]float64{"total_ms": float64(50 + rng.Intn(100))}))
				default: // query a pooled shape over an advancing window
					s := shapes[rng.Intn(len(shapes))]
					end := floorDiv(now, s.window) * s.window
					if end <= 0 {
						continue
					}
					lookback := (3 + rng.Int63n(20)) * s.window
					start := end - lookback
					if start < 0 {
						start = 0
					}
					if rng.Intn(8) == 0 {
						start++ // misaligned: must bypass the cache, stay correct
					}
					if end <= start {
						continue
					}
					q := Query{
						Measurement: "latency", Field: "total_ms",
						Start: start, End: end, Window: s.window,
						GroupBy: s.groupBy, Where: s.where, Aggs: s.aggs,
						Resolution: s.res,
					}
					got, err := cached.Execute(q)
					if err != nil {
						t.Fatal(err)
					}
					want, err := uncached.Execute(q)
					if err != nil {
						t.Fatal(err)
					}
					requireSameResults(t,
						fmt.Sprintf("seed %d ret=%v step %d [%d,%d)w%d", seed, withRetention, step, start, end, s.window),
						got, want)
				}
			}
			st := cached.CacheStats()
			if st.Hits == 0 || st.Misses == 0 || st.PartialRefreshes == 0 {
				t.Fatalf("seed %d ret=%v: scenario did not exercise the cache: %+v", seed, withRetention, st)
			}
			if ust := uncached.CacheStats(); ust.Enabled {
				t.Fatalf("uncached DB reports an enabled cache: %+v", ust)
			}
		}
	}
}

// TestCacheTailRefreshDeterministic pins the incremental-refresh mechanics:
// a repeated advancing query re-aggregates only the tail, appends land in
// re-opened buckets, a backfill behind the slack invalidates via the
// generation, and a query reaching under a tier retention horizon bypasses
// the cache — all while staying equal to an uncached Execute.
func TestCacheTailRefreshDeterministic(t *testing.T) {
	opts := qcacheOptions()
	cached := Open(opts)
	uopts := opts
	uopts.QueryCache = 0
	uncached := Open(uopts)
	// Pin the slack so the frozen boundary is exact: with slack 5s and
	// maxT=99s the high-water mark for 10s windows is floor(94/10)*10 = 90s.
	cached.qcache.slack = 5e9

	write := func(tm int64, v float64) {
		for _, db := range []*DB{cached, uncached} {
			if err := db.Write(pt("latency", tm,
				map[string]string{"src_city": "akl"}, map[string]float64{"total_ms": v})); err != nil {
				t.Fatal(err)
			}
		}
	}
	exec := func(start, end int64) ([]SeriesResult, []SeriesResult) {
		q := Query{Measurement: "latency", Field: "total_ms",
			Start: start, End: end, Window: 10e9,
			Aggs: []AggKind{AggCount, AggSum, AggMean}}
		got, err := cached.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := uncached.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		return got, want
	}

	for i := int64(0); i < 100; i++ {
		write(i*1e9, float64(100+i))
	}
	got, want := exec(0, 100e9)
	requireSameResults(t, "fill", got, want)
	st := cached.CacheStats()
	if st.Hits != 0 || st.Misses != 1 || st.Bytes == 0 {
		t.Fatalf("after fill: %+v", st)
	}

	// Identical query again: frozen prefix [0,90s) serves, tail [90s,100s)
	// re-aggregates — a hit and a partial refresh.
	got, want = exec(0, 100e9)
	requireSameResults(t, "repeat", got, want)
	st = cached.CacheStats()
	if st.Hits != 1 || st.PartialRefreshes != 1 || st.Misses != 1 {
		t.Fatalf("after repeat: %+v", st)
	}

	// Append into the open tail bucket and beyond, then advance the window:
	// still a hit; only the tail past the high-water mark is recomputed.
	for i := int64(100); i < 120; i++ {
		write(i*1e9, float64(100+i))
	}
	got, want = exec(10e9, 120e9)
	requireSameResults(t, "advance", got, want)
	st = cached.CacheStats()
	if st.Hits != 2 || st.PartialRefreshes != 2 {
		t.Fatalf("after advance: %+v", st)
	}

	// A backfill far behind the slack bumps the generation: the next query
	// must refuse the (stale-capable) entry and refill.
	write(20e9, 9000)
	got, want = exec(10e9, 120e9)
	requireSameResults(t, "backfill", got, want)
	st = cached.CacheStats()
	if st.Misses != 2 {
		t.Fatalf("backfill did not invalidate: %+v", st)
	}
	// The refilled entry serves again and reflects the backfilled value.
	got, want = exec(10e9, 120e9)
	requireSameResults(t, "refill", got, want)
	if st = cached.CacheStats(); st.Hits != 3 {
		t.Fatalf("after refill: %+v", st)
	}
}

// TestCacheRetentionHorizonBypass covers invalidation by retention
// movement: once the serving tier's horizon passes a cached range's start,
// the cache refuses to serve it (frozen buckets may describe swept shards)
// and results still match an uncached DB that swept identically.
func TestCacheRetentionHorizonBypass(t *testing.T) {
	opts := Options{
		ShardDuration: 10e9,
		Retention:     50e9,
		// Both tiers outlive raw retention, so the planner serves queries
		// below the tier horizon too (tierCovers' "no worse than raw" rule)
		// — exactly the shape the cache must refuse.
		Rollups:    []RollupTier{{Width: 10e9, Retention: 100e9}},
		QueryCache: 1 << 20,
	}
	cached := Open(opts)
	uopts := opts
	uopts.QueryCache = 0
	uncached := Open(uopts)

	write := func(tm int64) {
		for _, db := range []*DB{cached, uncached} {
			if err := db.Write(pt("latency", tm,
				map[string]string{"src_city": "akl"}, map[string]float64{"total_ms": 100})); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := int64(0); i < 120; i++ {
		write(i * 1e9)
	}
	q := Query{Measurement: "latency", Field: "total_ms",
		Start: 0, End: 120e9, Window: 10e9, Aggs: []AggKind{AggCount, AggSum}}
	got, _ := cached.Execute(q)
	want, _ := uncached.Execute(q)
	requireSameResults(t, "pre-sweep", got, want)
	missesBefore := cached.CacheStats().Misses

	// Jump maxT so the tier horizon (maxT−100s) crosses the cached start;
	// the sweep drops tier shards on both DBs identically.
	write(160e9)
	got, err := cached.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err = uncached.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "post-sweep", got, want)
	st := cached.CacheStats()
	if st.Misses != missesBefore+1 {
		t.Fatalf("horizon query should count as a miss: before=%d after %+v", missesBefore, st)
	}
	if len(got) == 0 || got[0].Buckets[0].Count != 0 {
		t.Fatalf("swept leading bucket should be empty, got %+v", got[0].Buckets[0])
	}
}

// TestCacheEvictionUnderBudget forces byte-budget pressure with many
// distinct shapes and checks the LRU ledger: evictions occur, the
// accounted footprint never exceeds the budget, and every result (cached,
// evicted-and-refilled, or fresh) stays correct.
func TestCacheEvictionUnderBudget(t *testing.T) {
	opts := qcacheOptions()
	opts.QueryCache = 4096 // a handful of entries at most
	cached := Open(opts)
	uopts := opts
	uopts.QueryCache = 0
	uncached := Open(uopts)

	srcs := []string{"akl", "syd", "lax", "lhr", "nrt", "fra"}
	for i := int64(0); i < 200; i++ {
		p := pt("latency", i*1e9,
			map[string]string{"src_city": srcs[i%int64(len(srcs))]},
			map[string]float64{"total_ms": float64(100 + i)})
		for _, db := range []*DB{cached, uncached} {
			q := *p
			q.Tags = append([]Tag(nil), p.Tags...)
			if err := db.Write(&q); err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := 0; round < 3; round++ {
		for _, src := range srcs {
			for _, w := range []int64{1e9, 2e9, 10e9} {
				q := Query{Measurement: "latency", Field: "total_ms",
					Start: 0, End: 200e9, Window: w,
					Where: []Tag{{"src_city", src}},
					Aggs:  []AggKind{AggCount, AggSum, AggMean}}
				got, err := cached.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				want, err := uncached.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResults(t, fmt.Sprintf("round %d %s w%d", round, src, w), got, want)
				if st := cached.CacheStats(); st.Bytes > opts.QueryCache {
					t.Fatalf("footprint %d exceeds budget %d", st.Bytes, opts.QueryCache)
				}
			}
		}
	}
	st := cached.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("expected byte-budget evictions, got %+v", st)
	}
}

// TestCacheConcurrentStress runs queries, advancing writes, backfills
// (generation bumps) and retention sweeps concurrently — primarily a -race
// exercise of the lookup/publish/evict paths; results are checked for
// well-formedness only (bucket layout), not cross-DB equality, since the
// interleaving is nondeterministic.
func TestCacheConcurrentStress(t *testing.T) {
	opts := qcacheOptions()
	opts.QueryCache = 1 << 14 // small: eviction races included
	opts.Rollups = []RollupTier{{Width: 1e9, Retention: 300e9}, {Width: 10e9}}
	opts.Retention = 200e9
	db := Open(opts)
	defer db.Close()

	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			now := int64(0)
			for i := 0; i < iters; i++ {
				pts := make([]Point, 1+rng.Intn(4))
				for j := range pts {
					tm := now + rng.Int63n(2e9)
					if rng.Intn(10) == 0 {
						tm = now - qcacheSlack - rng.Int63n(50e9) // backfill
					}
					pts[j] = *pt("latency", tm,
						map[string]string{"src_city": []string{"akl", "syd", "lax"}[rng.Intn(3)]},
						map[string]float64{"total_ms": float64(100 + rng.Intn(200))})
				}
				if _, err := db.WriteBatch(pts); err != nil {
					t.Error(err)
					return
				}
				now += rng.Int63n(2e9)
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < iters; i++ {
				w := []int64{1e9, 10e9}[rng.Intn(2)]
				end := (10 + rng.Int63n(400)) * w
				q := Query{Measurement: "latency", Field: "total_ms",
					Start: end - 10*w, End: end, Window: w,
					GroupBy: "src_city", Aggs: []AggKind{AggCount, AggMean, AggP95}}
				res, err := db.Execute(q)
				if err != nil {
					t.Error(err)
					return
				}
				for _, sr := range res {
					if len(sr.Buckets) != 10 {
						t.Errorf("query [%d,%d)w%d: got %d buckets", q.Start, q.End, w, len(sr.Buckets))
						return
					}
				}
				_ = db.CacheStats()
			}
		}(r)
	}
	wg.Wait()
}

// BenchmarkQueryCached is the acceptance benchmark: the live-dashboard
// shape — a 1h window at 10s buckets advancing by 10s per refresh over a
// 16-pair deployment with a 1s rollup ladder — served uncached (full tier
// re-aggregation every tick) versus through the cache (frozen prefix +
// one-bucket tail refresh). The cached path must come in ≥10× faster;
// equivalence is pinned by the tests above, speed by this benchmark.
func BenchmarkQueryCached(b *testing.B) {
	const (
		hour   = int64(3600e9)
		window = int64(10e9)
	)
	build := func(cacheBytes int64) *DB {
		db := Open(Options{
			Rollups:    []RollupTier{{Width: 1e9}},
			QueryCache: cacheBytes,
		})
		srcs := []string{"akl", "syd", "lax", "lhr"}
		dsts := []string{"nrt", "fra", "jfk", "sin"}
		pts := make([]Point, 0, 4096)
		flush := func() {
			if _, err := db.WriteBatch(pts); err != nil {
				b.Fatal(err)
			}
			pts = pts[:0]
		}
		for sec := int64(0); sec < 2*hour/1e9; sec++ {
			for si, src := range srcs {
				for di, dst := range dsts {
					pts = append(pts, *pt("latency", sec*1e9,
						map[string]string{"src_city": src, "dst_city": dst},
						map[string]float64{"total_ms": float64(100 + (sec+int64(si*4+di))%200)}))
				}
			}
			if len(pts) >= 4000 {
				flush()
			}
		}
		flush()
		return db
	}
	run := func(b *testing.B, db *DB) {
		q := Query{Measurement: "latency", Field: "total_ms",
			Window: window, GroupBy: "src_city",
			Aggs: []AggKind{AggCount, AggMean, AggP95}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := (int64(i) * window) % hour
			q.Start, q.End = off, off+hour
			res, err := db.Execute(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) != 4 {
				b.Fatalf("groups: %d", len(res))
			}
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, build(0)) })
	b.Run("cached", func(b *testing.B) { run(b, build(16<<20)) })
}
