package tsdb

import (
	"math"
	"sort"
)

var nan = math.NaN()

// AggKind selects an aggregation function.
type AggKind string

// Supported aggregations — the set Ruru's Grafana dashboards display
// ("min, max, median, mean" plus tail quantiles and counts).
const (
	AggMin    AggKind = "min"
	AggMax    AggKind = "max"
	AggMean   AggKind = "mean"
	AggMedian AggKind = "median"
	AggP95    AggKind = "p95"
	AggP99    AggKind = "p99"
	AggCount  AggKind = "count"
	AggSum    AggKind = "sum"
)

// ValidAgg reports whether k names a supported aggregation.
func ValidAgg(k AggKind) bool {
	switch k {
	case AggMin, AggMax, AggMean, AggMedian, AggP95, AggP99, AggCount, AggSum:
		return true
	}
	return false
}

// Query selects windowed aggregates of one field.
type Query struct {
	Measurement string
	Field       string
	Start, End  int64 // [Start, End)
	Where       []Tag // equality filters, ANDed
	GroupBy     string
	Aggs        []AggKind
	// Window is the time bucket width; 0 means one bucket spanning the
	// whole range.
	Window int64
}

// Bucket is one output time window.
type Bucket struct {
	Start int64               `json:"start"`
	Count int                 `json:"count"`
	Aggs  map[AggKind]float64 `json:"aggs"`
}

// SeriesResult is the output for one group.
type SeriesResult struct {
	Group   string   `json:"group"` // GroupBy tag value, "" without GroupBy
	Buckets []Bucket `json:"buckets"`
}

// Execute runs q and returns one SeriesResult per group, sorted by group.
func (db *DB) Execute(q Query) ([]SeriesResult, error) {
	if q.Measurement == "" || q.Field == "" || q.End <= q.Start {
		return nil, ErrBadQuery
	}
	if len(q.Aggs) == 0 {
		q.Aggs = []AggKind{AggMean}
	}
	for _, a := range q.Aggs {
		if !ValidAgg(a) {
			return nil, ErrUnknownAgg
		}
	}
	window := q.Window
	if window <= 0 {
		window = q.End - q.Start
	}
	nBuckets := int((q.End - q.Start + window - 1) / window)
	if nBuckets <= 0 || nBuckets > 1<<20 {
		return nil, ErrBadQuery
	}

	// Collect per-group, per-bucket raw values, one stripe at a time. A
	// series lives entirely within one stripe, so values are never split;
	// a query concurrent with writes sees each stripe at a (slightly)
	// different instant — fine for the monitoring workload this serves.
	groups := map[string][][]float64{}
	for _, st := range db.stripes {
		st.mu.RLock()
		for _, shStart := range st.order {
			sh := st.shards[shStart]
			if sh.end <= q.Start || sh.start >= q.End {
				continue
			}
			for _, sr := range candidateSeries(sh, q) {
				if sr.name != q.Measurement || !matchTags(sr.tags, q.Where) {
					continue
				}
				col, ok := sr.fields[q.Field]
				if !ok {
					continue
				}
				group := ""
				if q.GroupBy != "" {
					group = tagValue(sr.tags, q.GroupBy)
				}
				buckets := groups[group]
				if buckets == nil {
					buckets = make([][]float64, nBuckets)
					groups[group] = buckets
				}
				// Series times are append-ordered; measurements arrive
				// roughly in order but not strictly — scan all.
				for i, ts := range sr.times {
					if ts < q.Start || ts >= q.End {
						continue
					}
					v := col[i]
					if math.IsNaN(v) {
						continue
					}
					b := int((ts - q.Start) / window)
					buckets[b] = append(buckets[b], v)
				}
			}
		}
		st.mu.RUnlock()
	}

	out := make([]SeriesResult, 0, len(groups))
	for g, buckets := range groups {
		res := SeriesResult{Group: g, Buckets: make([]Bucket, nBuckets)}
		for i := range buckets {
			res.Buckets[i] = aggregate(q.Start+int64(i)*window, buckets[i], q.Aggs)
		}
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out, nil
}

// candidateSeries narrows the scan using the inverted index when a filter
// or group-by key exists; otherwise returns all series in the shard.
func candidateSeries(sh *shard, q Query) []*series {
	// Use the most selective Where clause available in this shard's index.
	var best []*series
	found := false
	for _, w := range q.Where {
		if vm, ok := sh.index[w.Key]; ok {
			list := vm[w.Value]
			if !found || len(list) < len(best) {
				best = list
				found = true
			}
		} else {
			// Key not present in this shard at all: no series matches.
			return nil
		}
	}
	if found {
		return best
	}
	all := make([]*series, 0, len(sh.series))
	for _, sr := range sh.series {
		all = append(all, sr)
	}
	return all
}

func matchTags(tags []Tag, where []Tag) bool {
	for _, w := range where {
		if tagValue(tags, w.Key) != w.Value {
			return false
		}
	}
	return true
}

func tagValue(tags []Tag, key string) string {
	for _, t := range tags {
		if t.Key == key {
			return t.Value
		}
	}
	return ""
}

// aggregate computes the requested aggregations over vals.
func aggregate(start int64, vals []float64, aggs []AggKind) Bucket {
	b := Bucket{Start: start, Count: len(vals), Aggs: make(map[AggKind]float64, len(aggs))}
	if len(vals) == 0 {
		for _, a := range aggs {
			if a == AggCount || a == AggSum {
				b.Aggs[a] = 0
			} else {
				b.Aggs[a] = nan
			}
		}
		return b
	}
	var sorted []float64
	needSort := false
	for _, a := range aggs {
		if a == AggMedian || a == AggP95 || a == AggP99 {
			needSort = true
		}
	}
	if needSort {
		sorted = make([]float64, len(vals))
		copy(sorted, vals)
		sort.Float64s(sorted)
	}
	for _, a := range aggs {
		switch a {
		case AggMin:
			m := vals[0]
			for _, v := range vals[1:] {
				if v < m {
					m = v
				}
			}
			b.Aggs[a] = m
		case AggMax:
			m := vals[0]
			for _, v := range vals[1:] {
				if v > m {
					m = v
				}
			}
			b.Aggs[a] = m
		case AggMean:
			s := 0.0
			for _, v := range vals {
				s += v
			}
			b.Aggs[a] = s / float64(len(vals))
		case AggSum:
			s := 0.0
			for _, v := range vals {
				s += v
			}
			b.Aggs[a] = s
		case AggCount:
			b.Aggs[a] = float64(len(vals))
		case AggMedian:
			b.Aggs[a] = quantileSorted(sorted, 0.5)
		case AggP95:
			b.Aggs[a] = quantileSorted(sorted, 0.95)
		case AggP99:
			b.Aggs[a] = quantileSorted(sorted, 0.99)
		}
	}
	return b
}

// quantileSorted returns the linear-interpolated q-quantile of sorted vs.
func quantileSorted(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return nan
	}
	if q <= 0 {
		return vs[0]
	}
	if q >= 1 {
		return vs[len(vs)-1]
	}
	idx := q * float64(len(vs)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(vs) {
		return vs[lo]
	}
	return vs[lo]*(1-frac) + vs[lo+1]*frac
}
