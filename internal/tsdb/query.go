package tsdb

import (
	"encoding/json"
	"math"
	"sort"
)

var nan = math.NaN()

// AggKind selects an aggregation function.
type AggKind string

// Supported aggregations — the set Ruru's Grafana dashboards display
// ("min, max, median, mean" plus tail quantiles and counts).
const (
	AggMin    AggKind = "min"
	AggMax    AggKind = "max"
	AggMean   AggKind = "mean"
	AggMedian AggKind = "median"
	AggP95    AggKind = "p95"
	AggP99    AggKind = "p99"
	AggCount  AggKind = "count"
	AggSum    AggKind = "sum"
)

// ValidAgg reports whether k names a supported aggregation.
func ValidAgg(k AggKind) bool {
	switch k {
	case AggMin, AggMax, AggMean, AggMedian, AggP95, AggP99, AggCount, AggSum:
		return true
	}
	return false
}

// Resolution values for Query.Resolution beyond an explicit tier width.
const (
	// ResolutionAuto lets the planner pick the coarsest rollup tier whose
	// buckets align with the requested window, falling back to raw.
	ResolutionAuto int64 = 0
	// ResolutionRaw forces the raw-sample path even when a tier could
	// serve the query.
	ResolutionRaw int64 = -1
)

// Query selects windowed aggregates of one field.
type Query struct {
	// Measurement and Field name the series column to aggregate; both are
	// required.
	Measurement string
	Field       string
	// Start and End bound the query range [Start, End) in the data's own
	// clock (nanoseconds). End must be greater than Start.
	Start, End int64
	// Where lists equality filters on tag values, ANDed together.
	Where []Tag
	// GroupBy, when non-empty, produces one SeriesResult per distinct
	// value of this tag key (series without the key group under "").
	GroupBy string
	// Aggs selects the aggregations to compute; empty defaults to
	// []AggKind{AggMean}.
	Aggs []AggKind
	// Window is the output bucket width in nanoseconds. Window <= 0 means
	// a single bucket spanning the whole [Start, End) range.
	Window int64
	// Resolution controls which storage resolution serves the query:
	// ResolutionAuto (the zero value) lets the planner choose,
	// ResolutionRaw forces the raw path, and a positive value forces the
	// rollup tier with exactly that bucket width — failing with
	// ErrBadResolution if no such tier exists or its buckets do not align
	// with the requested window.
	Resolution int64
}

// Bucket is one output time window. Count is the number of raw samples the
// bucket aggregates (0 for an empty bucket) and is always populated;
// Aggs[AggCount] is the same value as a float64, present only when
// AggCount was requested.
type Bucket struct {
	Start int64               `json:"start"`
	Count int                 `json:"count"`
	Aggs  map[AggKind]float64 `json:"aggs"`
}

// MarshalJSON emits non-finite aggregate values (the NaN an empty bucket
// carries for value aggregations) as JSON null: encoding/json has no
// representation for NaN/±Inf and would otherwise fail the entire
// response mid-stream.
func (b Bucket) MarshalJSON() ([]byte, error) {
	type bucketJSON struct {
		Start int64                `json:"start"`
		Count int                  `json:"count"`
		Aggs  map[AggKind]*float64 `json:"aggs"`
	}
	out := bucketJSON{Start: b.Start, Count: b.Count}
	if b.Aggs != nil {
		out.Aggs = make(map[AggKind]*float64, len(b.Aggs))
		for k, v := range b.Aggs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				out.Aggs[k] = nil
				continue
			}
			v := v
			out.Aggs[k] = &v
		}
	}
	return json.Marshal(out)
}

// SeriesResult is the output for one group.
type SeriesResult struct {
	Group string `json:"group"` // GroupBy tag value, "" without GroupBy
	// Tier reports which storage resolution served the query: the bucket
	// width (ns) of the rollup tier, or 0 when raw samples were scanned.
	Tier    int64    `json:"tier"`
	Buckets []Bucket `json:"buckets"`
}

// Execute runs q and returns one SeriesResult per group, sorted by group.
//
// When rollup tiers are configured (Options.Rollups) the resolution-aware
// planner first tries to serve the query from pre-aggregates: it picks the
// coarsest tier whose bucket width divides the window and whose buckets
// align with [Start, End), subject to Query.Resolution. A tier-served
// query merges O(range/tierWidth) pre-aggregates per series instead of
// buffering every raw sample; count/min/max are exact, sum/mean exact up
// to floating-point summation order (bit-identical to the raw path for
// integer-valued fields), and median/p95/p99 stay within one histogram
// bin (≤ ~25% relative error, typically a few percent) of the raw answer.
// The serving resolution is reported in SeriesResult.Tier.
func (db *DB) Execute(q Query) ([]SeriesResult, error) {
	if q.Measurement == "" || q.Field == "" || q.End <= q.Start {
		return nil, ErrBadQuery
	}
	if len(q.Aggs) == 0 {
		q.Aggs = []AggKind{AggMean}
	}
	for _, a := range q.Aggs {
		if !ValidAgg(a) {
			return nil, ErrUnknownAgg
		}
	}
	window := q.Window
	if window <= 0 {
		window = q.End - q.Start
	}
	nBuckets := int((q.End - q.Start + window - 1) / window)
	if nBuckets <= 0 || nBuckets > 1<<20 {
		return nil, ErrBadQuery
	}
	if ti, err := db.planTier(&q, window); err != nil {
		return nil, err
	} else if ti >= 0 {
		if db.qcache != nil {
			if res, ok := db.executeCached(&q, window, nBuckets, ti); ok {
				return res, nil
			}
		}
		return db.executeTier(&q, window, nBuckets, ti)
	}

	// Raw path. Candidate series are resolved lock-free from the
	// copy-on-write directory; each stripe's read lock is held only while
	// that stripe's columns are scanned. A series lives entirely within one
	// stripe, so values are never split; a query concurrent with writes
	// sees each stripe at a (slightly) different instant — fine for the
	// monitoring workload this serves.
	matched := matchIdents(db.dir.Load(), &q)
	groups := map[string][][]float64{}
	for si, st := range db.stripes {
		locked := false
		for _, id := range matched {
			if id.stripeIdx != uint32(si) {
				continue
			}
			if !locked {
				st.mu.RLock()
				locked = true
			}
			group := ""
			if q.GroupBy != "" {
				group = tagValue(id.tags, q.GroupBy)
			}
			for _, is := range id.rawShards() {
				if is.end <= q.Start || is.start >= q.End {
					continue
				}
				sr := is.sr
				ci := sr.findCol(q.Field)
				if ci < 0 {
					continue
				}
				col := sr.cols[ci]
				buckets := groups[group]
				if buckets == nil {
					buckets = make([][]float64, nBuckets)
					groups[group] = buckets
				}
				// Series times are append-ordered; measurements arrive
				// roughly in order but not strictly — scan all.
				for i, ts := range sr.times {
					if ts < q.Start || ts >= q.End {
						continue
					}
					v := col[i]
					if math.IsNaN(v) {
						continue
					}
					b := int((ts - q.Start) / window)
					buckets[b] = append(buckets[b], v)
				}
			}
		}
		if locked {
			st.mu.RUnlock()
		}
	}

	out := make([]SeriesResult, 0, len(groups))
	for g, buckets := range groups {
		res := SeriesResult{Group: g, Buckets: make([]Bucket, nBuckets)}
		for i := range buckets {
			res.Buckets[i] = aggregate(q.Start+int64(i)*window, buckets[i], q.Aggs)
		}
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out, nil
}

// planTier is the resolution-aware planner: it returns the index into
// Options.Rollups of the tier that should serve the query, or -1 for the
// raw path. A tier is usable when its bucket width divides the effective
// window AND the query's Start/End both fall on tier bucket boundaries
// (otherwise tier buckets would straddle output buckets and the answer
// would differ from the raw path), AND its retention still covers Start.
// Under ResolutionAuto the coarsest usable tier wins; a positive
// Query.Resolution demands the tier with exactly that width and fails with
// ErrBadResolution when it does not exist or is not usable for this shape.
func (db *DB) planTier(q *Query, window int64) (int, error) {
	switch {
	case q.Resolution == ResolutionRaw:
		return -1, nil
	case q.Resolution > 0:
		for i := range db.opts.Rollups {
			if db.opts.Rollups[i].Width == q.Resolution {
				if !tierAligned(q, window, q.Resolution) {
					return -1, ErrBadResolution
				}
				return i, nil
			}
		}
		return -1, ErrBadResolution
	case q.Resolution != ResolutionAuto:
		return -1, ErrBadResolution
	}
	best := -1
	maxT := db.maxT.Load()
	for i := range db.opts.Rollups {
		t := &db.opts.Rollups[i]
		if tierAligned(q, window, t.Width) && db.tierCovers(t, q.Start, maxT) {
			best = i // tiers are sorted finest-first; keep the coarsest
		}
	}
	return best, nil
}

// tierAligned reports whether a tier of the given bucket width can serve
// the query shape exactly: width divides the window and both range bounds
// sit on tier bucket boundaries.
func tierAligned(q *Query, window, width int64) bool {
	return width <= window && window%width == 0 &&
		floorDiv(q.Start, width)*width == q.Start &&
		floorDiv(q.End, width)*width == q.End
}

// tierCovers reports whether the tier's retention still holds data back to
// start. A tier that retains at least as long as raw storage is always
// acceptable: past both horizons neither source has the data, so the tier
// answers no worse than raw would.
func (db *DB) tierCovers(t *RollupTier, start, maxT int64) bool {
	return t.Retention == 0 || start >= maxT-t.Retention ||
		(db.opts.Retention > 0 && t.Retention >= db.opts.Retention)
}

// matchIdents returns the directory entries matching the query's
// measurement and Where filters, in interned (first-write) order — a fully
// lock-free scan of the published snapshot. A Where clause requires the
// tag key to be present with an equal value: a series without the key does
// not match even when the filter value is "" (the semantics the inverted
// index used to enforce).
func matchIdents(d *seriesDir, q *Query) []*seriesIdent {
	var out []*seriesIdent
	for _, id := range d.idents {
		if id.name != q.Measurement || !matchWhere(id.tags, q.Where) {
			continue
		}
		out = append(out, id)
	}
	return out
}

func matchWhere(tags []Tag, where []Tag) bool {
	for _, w := range where {
		ok := false
		for _, t := range tags {
			if t.Key == w.Key {
				ok = t.Value == w.Value
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func tagValue(tags []Tag, key string) string {
	for _, t := range tags {
		if t.Key == key {
			return t.Value
		}
	}
	return ""
}

// aggregate computes the requested aggregations over vals.
func aggregate(start int64, vals []float64, aggs []AggKind) Bucket {
	b := Bucket{Start: start, Count: len(vals), Aggs: make(map[AggKind]float64, len(aggs))}
	if len(vals) == 0 {
		for _, a := range aggs {
			if a == AggCount || a == AggSum {
				b.Aggs[a] = 0
			} else {
				b.Aggs[a] = nan
			}
		}
		return b
	}
	var sorted []float64
	needSort, needSum := false, false
	for _, a := range aggs {
		switch a {
		case AggMedian, AggP95, AggP99:
			needSort = true
		case AggMean, AggSum:
			needSum = true
		}
	}
	if needSort {
		sorted = make([]float64, len(vals))
		copy(sorted, vals)
		sort.Float64s(sorted)
	}
	// One pass for the sum even when both mean and sum are requested.
	sum := 0.0
	if needSum {
		for _, v := range vals {
			sum += v
		}
	}
	for _, a := range aggs {
		switch a {
		case AggMin:
			m := vals[0]
			for _, v := range vals[1:] {
				if v < m {
					m = v
				}
			}
			b.Aggs[a] = m
		case AggMax:
			m := vals[0]
			for _, v := range vals[1:] {
				if v > m {
					m = v
				}
			}
			b.Aggs[a] = m
		case AggMean:
			b.Aggs[a] = sum / float64(len(vals))
		case AggSum:
			b.Aggs[a] = sum
		case AggCount:
			b.Aggs[a] = float64(len(vals))
		case AggMedian:
			b.Aggs[a] = quantileSorted(sorted, 0.5)
		case AggP95:
			b.Aggs[a] = quantileSorted(sorted, 0.95)
		case AggP99:
			b.Aggs[a] = quantileSorted(sorted, 0.99)
		}
	}
	return b
}

// quantileSorted returns the linear-interpolated q-quantile of sorted vs.
func quantileSorted(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return nan
	}
	if q <= 0 {
		return vs[0]
	}
	if q >= 1 {
		return vs[len(vs)-1]
	}
	idx := q * float64(len(vs)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(vs) {
		return vs[lo]
	}
	return vs[lo]*(1-frac) + vs[lo+1]*frac
}
