//go:build linux

package tsdb

import (
	"os"
	"syscall"
)

// fdatasync makes a file's DATA durable without forcing a metadata-only
// journal commit (ext4 still syncs the size change when the file grew —
// exactly what a growing WAL segment needs). Measurably cheaper than
// fsync on the WAL hot path; see BenchmarkWriteWAL / E13.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
