package tsdb

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestRefValidation(t *testing.T) {
	db := Open(Options{})
	defer db.Close()

	if _, err := db.Ref("latency", nil); err != ErrNoFields {
		t.Fatalf("no fields: got %v, want ErrNoFields", err)
	}
	if _, err := db.Ref("latency", nil, "a", "b", "a"); err != ErrBadRef {
		t.Fatalf("dup fields: got %v, want ErrBadRef", err)
	}

	tags := []Tag{{Key: "dst", Value: "x"}, {Key: "src", Value: "y"}}
	r1, err := db.Ref("latency", tags, "total_ms")
	if err != nil {
		t.Fatal(err)
	}
	// Same identity in different tag order → same handle.
	r2, err := db.Ref("latency", []Tag{tags[1], tags[0]}, "total_ms")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("Ref not idempotent: %d vs %d", r1, r2)
	}
	// Different field set → different handle.
	r3, err := db.Ref("latency", tags, "total_ms", "internal_ms")
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatalf("distinct field sets share a handle")
	}

	if _, err := db.WriteBatchRef([]RefPoint{{Ref: 99, Time: 1, Vals: []float64{1}}}); err != ErrBadRef {
		t.Fatalf("unknown ref: got %v, want ErrBadRef", err)
	}
	if _, err := db.WriteBatchRef([]RefPoint{{Ref: r1, Time: 1, Vals: []float64{1, 2}}}); err != ErrBadRef {
		t.Fatalf("wrong Vals len: got %v, want ErrBadRef", err)
	}
	if n, err := db.WriteBatchRef(nil); n != 0 || err != nil {
		t.Fatalf("empty batch: got (%d, %v)", n, err)
	}
	if n, err := db.WriteBatchRef([]RefPoint{{Ref: r1, Time: 1, Vals: []float64{5}}}); n != 1 || err != nil {
		t.Fatalf("write: got (%d, %v)", n, err)
	}

	db.Close()
	if _, err := db.Ref("latency", tags, "total_ms"); err != ErrClosedDB {
		t.Fatalf("closed Ref: got %v, want ErrClosedDB", err)
	}
	if _, err := db.WriteBatchRef([]RefPoint{{Ref: r1, Time: 2, Vals: []float64{5}}}); err != ErrClosedDB {
		t.Fatalf("closed WriteBatchRef: got %v, want ErrClosedDB", err)
	}
}

// preGrowSeries re-backs a ref's live raw columns with large-capacity
// slices so a measured write loop never triggers slice growth — the test
// pins the write path's own allocations, not amortized storage growth.
func preGrowSeries(db *DB, ref SeriesRef, rows int) {
	rs := db.dir.Load().refs[ref]
	st := db.stripes[rs.ident.stripeIdx]
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, is := range rs.ident.rawShards() {
		sr := is.sr
		sr.times = append(make([]int64, 0, rows), sr.times...)
		for ci := range sr.cols {
			sr.cols[ci] = append(make([]float64, 0, rows), sr.cols[ci]...)
		}
	}
}

// TestWriteBatchRefZeroAllocSteadyState pins the tentpole claim: once a
// ref's series, columns and tier buckets exist (and column capacity is
// pre-grown so slice growth is out of the picture), WriteBatchRef performs
// zero heap allocations per batch — rollup tiers included.
func TestWriteBatchRefZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	db := Open(Options{Rollups: []RollupTier{{Width: 1e9}, {Width: 10e9}}})
	defer db.Close()

	ref, err := db.Ref("latency",
		[]Tag{{Key: "src_city", Value: "Auckland"}, {Key: "dst_city", Value: "Los Angeles"}},
		"internal_ms", "external_ms", "total_ms")
	if err != nil {
		t.Fatal(err)
	}
	const batchLen = 64
	pts := make([]RefPoint, batchLen)
	vals := make([]float64, 3*batchLen)
	for i := range pts {
		v := vals[3*i : 3*i+3 : 3*i+3]
		v[0], v[1], v[2] = 1.5, 20.25, 21.75
		// Fixed timestamps inside one shard and one tier bucket: repeated
		// runs hit the hot caches, the point of a steady-state measurement.
		pts[i] = RefPoint{Ref: ref, Time: int64(i) * 1e6, Vals: v}
	}
	// Warm: create shard/series/columns/tier buckets.
	if n, err := db.WriteBatchRef(pts); n != batchLen || err != nil {
		t.Fatalf("warm write: (%d, %v)", n, err)
	}
	const runs = 100
	preGrowSeries(db, ref, (runs+8)*batchLen+batchLen)

	allocs := testing.AllocsPerRun(runs, func() {
		if _, err := db.WriteBatchRef(pts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WriteBatchRef steady state allocated %.1f times per batch, want 0", allocs)
	}
}

// TestWriteBatchLegacyAllocBudget documents the legacy path's allocation
// budget after the scratch-pool fix: with warm scratch, existing series and
// sorted tags, WriteBatch itself allocates nothing per batch (slice growth
// excluded via pre-grow). The legacy path still pays per-point hashing and
// map/sort work — only the ref path caches resolution — but it must not
// regress back to per-call key/scratch allocations.
func TestWriteBatchLegacyAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	db := Open(Options{Rollups: []RollupTier{{Width: 1e9}, {Width: 10e9}}})
	defer db.Close()

	const batchLen = 64
	pts := make([]Point, batchLen)
	for i := range pts {
		pts[i] = Point{
			Name: "latency",
			Tags: []Tag{{Key: "src_city", Value: "Auckland"}, {Key: "dst_city", Value: "Los Angeles"}},
			Fields: []Field{
				{Key: "internal_ms", Value: 1.5},
				{Key: "external_ms", Value: 20.25},
				{Key: "total_ms", Value: 21.75},
			},
			Time: int64(i) * 1e6,
		}
	}
	if n, err := db.WriteBatch(pts); n != batchLen || err != nil {
		t.Fatalf("warm write: (%d, %v)", n, err)
	}
	ref, err := db.Ref("latency", pts[0].Tags, "internal_ms", "external_ms", "total_ms")
	if err != nil {
		t.Fatal(err)
	}
	const runs = 100
	preGrowSeries(db, ref, (runs+8)*batchLen+2*batchLen)

	allocs := testing.AllocsPerRun(runs, func() {
		if _, err := db.WriteBatch(pts); err != nil {
			t.Fatal(err)
		}
	})
	const legacyBudget = 1.0 // allocs per BATCH (not per point)
	if allocs > legacyBudget {
		t.Fatalf("legacy WriteBatch allocated %.1f times per batch, budget %.1f", allocs, legacyBudget)
	}
}

// resultsEqual compares query results treating NaN == NaN (empty buckets
// carry NaN value aggregates, which reflect.DeepEqual would reject).
func resultsEqual(a, b []SeriesResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Group != b[i].Group || a[i].Tier != b[i].Tier || len(a[i].Buckets) != len(b[i].Buckets) {
			return false
		}
		for j := range a[i].Buckets {
			ba, bb := a[i].Buckets[j], b[i].Buckets[j]
			if ba.Start != bb.Start || ba.Count != bb.Count || len(ba.Aggs) != len(bb.Aggs) {
				return false
			}
			for k, va := range ba.Aggs {
				vb, ok := bb.Aggs[k]
				if !ok {
					return false
				}
				// Bit-identical: NaN matches NaN, and -0 vs +0 would differ.
				if math.Float64bits(va) != math.Float64bits(vb) {
					return false
				}
			}
		}
	}
	return true
}

// refSeriesShape is one randomized series identity with a fixed field set.
type refSeriesShape struct {
	name   string
	tags   []Tag
	fields []string
	ref    SeriesRef
}

// writeShapesEverywhere writes identical random data into legacy (via
// Write/WriteBatch) and refDB (via WriteBatchRef) and returns the shapes.
func writeShapesEverywhere(t *testing.T, rng *rand.Rand, legacy, refDB *DB, nPoints int) []refSeriesShape {
	t.Helper()
	cities := []string{"Auckland", "Wellington", "Sydney", "Tokyo"}
	allFields := []string{"internal_ms", "external_ms", "total_ms"}
	var shapes []refSeriesShape
	for _, src := range cities {
		for _, dst := range cities[:2] {
			fs := allFields[:1+rng.Intn(3)]
			sh := refSeriesShape{
				name: "latency",
				tags: []Tag{
					{Key: "src_city", Value: src},
					{Key: "dst_city", Value: dst},
				},
				fields: append([]string(nil), fs...),
			}
			ref, err := refDB.Ref(sh.name, sh.tags, sh.fields...)
			if err != nil {
				t.Fatal(err)
			}
			sh.ref = ref
			shapes = append(shapes, sh)
		}
	}

	var legacyBatch []Point
	var refBatch []RefPoint
	flush := func() {
		if len(legacyBatch) == 0 {
			return
		}
		if n, err := legacy.WriteBatch(legacyBatch); n != len(legacyBatch) || err != nil {
			t.Fatalf("legacy WriteBatch: (%d, %v)", n, err)
		}
		if n, err := refDB.WriteBatchRef(refBatch); n != len(refBatch) || err != nil {
			t.Fatalf("WriteBatchRef: (%d, %v)", n, err)
		}
		legacyBatch, refBatch = legacyBatch[:0], refBatch[:0]
	}
	for i := 0; i < nPoints; i++ {
		sh := shapes[rng.Intn(len(shapes))]
		tm := rng.Int63n(100e9)
		vals := make([]float64, len(sh.fields))
		var fields []Field
		for j, k := range sh.fields {
			v := float64(1 + rng.Intn(97)) // integer values: float sums exact under reordering
			if rng.Intn(10) == 0 {
				v = math.NaN() // absent field
			}
			vals[j] = v
			fields = append(fields, Field{Key: k, Value: v})
		}
		// Unsorted tags on the legacy side exercise sortTags.
		tags := []Tag{sh.tags[1], sh.tags[0]}
		legacyBatch = append(legacyBatch, Point{Name: sh.name, Tags: tags, Fields: fields, Time: tm})
		refBatch = append(refBatch, RefPoint{Ref: sh.ref, Time: tm, Vals: vals})
		if len(legacyBatch) == 37 || rng.Intn(50) == 0 {
			flush()
		}
	}
	flush()
	return shapes
}

// compareDBs asserts legacy and refDB answer identically: write stats,
// series counts, tag values, raw-path and tier-served queries, grouped and
// filtered.
func compareDBs(t *testing.T, legacy, refDB *DB, field string) {
	t.Helper()
	lw, ld := legacy.WriteStats()
	rw, rd := refDB.WriteStats()
	if lw != rw || ld != rd {
		t.Fatalf("WriteStats differ: legacy (%d,%d) ref (%d,%d)", lw, ld, rw, rd)
	}
	if a, b := legacy.SeriesCount(), refDB.SeriesCount(); a != b {
		t.Fatalf("SeriesCount differ: %d vs %d", a, b)
	}
	for _, key := range []string{"src_city", "dst_city", "nope"} {
		a := legacy.TagValues(key, 0, 100e9)
		b := refDB.TagValues(key, 0, 100e9)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("TagValues(%q) differ: %v vs %v", key, a, b)
		}
	}
	queries := []Query{
		{Measurement: "latency", Field: field, Start: 0, End: 100e9,
			Aggs:       []AggKind{AggCount, AggMin, AggMax, AggSum, AggMean, AggMedian, AggP95, AggP99},
			Resolution: ResolutionRaw},
		{Measurement: "latency", Field: field, Start: 0, End: 100e9, Window: 10e9,
			GroupBy: "src_city", Aggs: []AggKind{AggCount, AggSum, AggMin, AggMax},
			Resolution: ResolutionRaw},
		{Measurement: "latency", Field: field, Start: 0, End: 100e9, Window: 10e9,
			Where: []Tag{{Key: "dst_city", Value: "Auckland"}}, GroupBy: "src_city",
			Aggs: []AggKind{AggCount, AggSum}},
		{Measurement: "latency", Field: field, Start: 0, End: 100e9, Window: 10e9,
			GroupBy: "src_city", Aggs: []AggKind{AggCount, AggSum, AggMin, AggMax, AggMean}},
	}
	for qi, q := range queries {
		a, errA := legacy.Execute(q)
		b, errB := refDB.Execute(q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("query %d: errs %v vs %v", qi, errA, errB)
		}
		if !resultsEqual(a, b) {
			t.Fatalf("query %d results differ:\nlegacy: %+v\nref:    %+v", qi, a, b)
		}
	}
}

// TestRefLegacyEquivalenceRandomized drives identical randomized writes
// through the legacy and the interned-ref paths and asserts bit-identical
// query results — raw and tier-served — plus identical stats and tag
// indexes.
func TestRefLegacyEquivalenceRandomized(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		opts := Options{
			ShardDuration: 10e9,
			Stripes:       1 << uint(rng.Intn(4)),
			Rollups:       []RollupTier{{Width: 1e9}, {Width: 10e9}},
		}
		if trial%2 == 1 {
			opts.Retention = 50e9 // exercise retention drops + directory unpublish
		}
		legacy := Open(opts)
		refDB := Open(opts)
		writeShapesEverywhere(t, rng, legacy, refDB, 2000)
		for _, f := range []string{"internal_ms", "external_ms", "total_ms"} {
			compareDBs(t, legacy, refDB, f)
		}
		legacy.Close()
		refDB.Close()
	}
}

// TestRefMixedWithLegacyWrites interleaves ref writes with legacy writes
// that extend the same series with a new field, forcing the ref hot cache
// to re-resolve and pad foreign columns — and checks against a pure-legacy
// mirror of the same sequence.
func TestRefMixedWithLegacyWrites(t *testing.T) {
	opts := Options{ShardDuration: 10e9, Rollups: []RollupTier{{Width: 1e9}}}
	legacy := Open(opts)
	refDB := Open(opts)
	defer legacy.Close()
	defer refDB.Close()

	tags := []Tag{{Key: "src_city", Value: "Auckland"}, {Key: "dst_city", Value: "Sydney"}}
	ref, err := refDB.Ref("latency", tags, "total_ms")
	if err != nil {
		t.Fatal(err)
	}
	writeBoth := func(p Point) {
		q := p
		q.Tags = append([]Tag(nil), p.Tags...)
		q.Fields = append([]Field(nil), p.Fields...)
		if err := legacy.Write(&q); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		tm := int64(i) * 1e8
		if i%3 == 2 {
			// Legacy write extending the series with a second field.
			p := Point{Name: "latency", Tags: tags,
				Fields: []Field{{Key: "total_ms", Value: float64(i)}, {Key: "retrans", Value: float64(i % 3)}},
				Time:   tm}
			writeBoth(p)
			r := p
			r.Tags = append([]Tag(nil), tags...)
			r.Fields = append([]Field(nil), p.Fields...)
			if err := refDB.Write(&r); err != nil {
				t.Fatal(err)
			}
			continue
		}
		writeBoth(Point{Name: "latency", Tags: tags,
			Fields: []Field{{Key: "total_ms", Value: float64(i)}}, Time: tm})
		if n, err := refDB.WriteBatchRef([]RefPoint{{Ref: ref, Time: tm, Vals: []float64{float64(i)}}}); n != 1 || err != nil {
			t.Fatalf("WriteBatchRef: (%d, %v)", n, err)
		}
	}
	for _, f := range []string{"total_ms", "retrans"} {
		compareDBs(t, legacy, refDB, f)
	}
}

// TestRefWALCrashRestoreEquivalence writes through the ref path into a
// persistent DB, simulates a crash, reopens, and asserts the recovered
// state answers identically to an in-memory DB fed the same data through
// the legacy path — the WAL's self-describing record format makes the
// write path invisible to durability.
func TestRefWALCrashRestoreEquivalence(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		ShardDuration: 10e9,
		Rollups:       []RollupTier{{Width: 1e9}, {Width: 10e9}},
		// FsyncAlways: every acked batch survives the simulated crash, so
		// recovered state must equal the mirror exactly.
		Persist: persistOpts(dir, FsyncAlways),
	}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	memOpts := opts
	memOpts.Persist = nil
	mirror := Open(memOpts)
	defer mirror.Close()

	rng := rand.New(rand.NewSource(99))
	writeShapesEverywhere(t, rng, mirror, db, 1200)
	crashDB(db)

	db2, err := OpenDB(opts)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	for _, key := range []string{"src_city", "dst_city"} {
		a := mirror.TagValues(key, 0, 100e9)
		b := db2.TagValues(key, 0, 100e9)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("TagValues(%q) differ after crash restore: %v vs %v", key, a, b)
		}
	}
	for _, f := range []string{"internal_ms", "external_ms", "total_ms"} {
		for _, resolution := range []int64{ResolutionRaw, ResolutionAuto} {
			q := Query{Measurement: "latency", Field: f, Start: 0, End: 100e9, Window: 10e9,
				GroupBy: "src_city", Resolution: resolution,
				Aggs: []AggKind{AggCount, AggMin, AggMax, AggSum, AggMean}}
			a, errA := mirror.Execute(q)
			b, errB := db2.Execute(q)
			if errA != nil || errB != nil {
				t.Fatalf("Execute: %v / %v", errA, errB)
			}
			if !resultsEqual(a, b) {
				t.Fatalf("field %s resolution %d differs after crash restore:\nmirror: %+v\nrestored: %+v",
					f, resolution, a, b)
			}
		}
	}
}
