package tsdb

import (
	"fmt"
	"io"
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func pt(name string, time int64, tags map[string]string, fields map[string]float64) *Point {
	p := &Point{Name: name, Time: time}
	for k, v := range tags {
		p.Tags = append(p.Tags, Tag{k, v})
	}
	for k, v := range fields {
		p.Fields = append(p.Fields, Field{k, v})
	}
	return p
}

func TestLineProtocolRoundTrip(t *testing.T) {
	p := &Point{
		Name:   "latency",
		Tags:   []Tag{{"dst_city", "Los Angeles"}, {"src_city", "Auckland"}},
		Fields: []Field{{"total_ms", 145.25}, {"internal_ms", 15.5}},
		Time:   1700000000123456789,
	}
	line := string(MarshalLine(nil, p))
	var got Point
	if err := ParseLine(line, &got); err != nil {
		t.Fatalf("%v (line %q)", err, line)
	}
	if got.Name != p.Name || got.Time != p.Time {
		t.Fatalf("got %+v", got)
	}
	if !reflect.DeepEqual(got.Tags, p.Tags) {
		t.Fatalf("tags: %+v", got.Tags)
	}
	if !reflect.DeepEqual(got.Fields, p.Fields) {
		t.Fatalf("fields: %+v", got.Fields)
	}
}

func TestLineProtocolEscaping(t *testing.T) {
	p := &Point{
		Name:   "my measure,ment",
		Tags:   []Tag{{"ke y", "va=lue,x"}},
		Fields: []Field{{"f 1", 2}},
		Time:   42,
	}
	line := string(MarshalLine(nil, p))
	var got Point
	if err := ParseLine(line, &got); err != nil {
		t.Fatalf("%v (line %q)", err, line)
	}
	if got.Name != p.Name || got.Tags[0] != p.Tags[0] || got.Fields[0] != p.Fields[0] {
		t.Fatalf("escaping lost data: %+v (line %q)", got, line)
	}
}

func TestParseLineInfluxExamples(t *testing.T) {
	var p Point
	// Canonical Influx docs example adapted to float/int/bool fields.
	if err := ParseLine(`weather,location=us-midwest temperature=82 1465839830100400200`, &p); err != nil {
		t.Fatal(err)
	}
	if p.Name != "weather" || p.Tags[0] != (Tag{"location", "us-midwest"}) ||
		p.Fields[0] != (Field{"temperature", 82}) || p.Time != 1465839830100400200 {
		t.Fatalf("%+v", p)
	}
	if err := ParseLine(`m f=10i 1`, &p); err != nil || p.Fields[0].Value != 10 {
		t.Fatalf("int field: %v %+v", err, p)
	}
	if err := ParseLine(`m f=true 1`, &p); err != nil || p.Fields[0].Value != 1 {
		t.Fatalf("bool field: %v %+v", err, p)
	}
	if err := ParseLine(`m,a=1,b=2 f=1,g=2`, &p); err != nil || p.Time != 0 || len(p.Tags) != 2 || len(p.Fields) != 2 {
		t.Fatalf("no-timestamp: %v %+v", err, p)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	var p Point
	for _, line := range []string{
		"", "nofields", "m ", "m =1", "m f=", "m f=abc", `m f="str"`,
		"m,tag f=1 notanumber", `m,=v f=1`, "m f=1 1 trailing",
		"m\\", // dangling escape
	} {
		if err := ParseLine(line, &p); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestWriteAndQuerySingleSeries(t *testing.T) {
	db := Open(Options{})
	for i := 0; i < 100; i++ {
		err := db.Write(pt("latency", int64(i)*1e9,
			map[string]string{"src_city": "Auckland"},
			map[string]float64{"total_ms": float64(i + 1)}))
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Execute(Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: 100e9,
		Aggs: []AggKind{AggMin, AggMax, AggMean, AggMedian, AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Buckets) != 1 {
		t.Fatalf("res = %+v", res)
	}
	b := res[0].Buckets[0]
	if b.Count != 100 || b.Aggs[AggMin] != 1 || b.Aggs[AggMax] != 100 {
		t.Fatalf("bucket = %+v", b)
	}
	if math.Abs(b.Aggs[AggMean]-50.5) > 1e-9 || math.Abs(b.Aggs[AggMedian]-50.5) > 1e-9 {
		t.Fatalf("mean/median = %v/%v", b.Aggs[AggMean], b.Aggs[AggMedian])
	}
}

func TestQueryWindowing(t *testing.T) {
	db := Open(Options{})
	for i := 0; i < 60; i++ {
		db.Write(pt("m", int64(i)*1e9, nil, map[string]float64{"v": float64(i)}))
	}
	res, err := db.Execute(Query{
		Measurement: "m", Field: "v",
		Start: 0, End: 60e9, Window: 10e9,
		Aggs: []AggKind{AggCount, AggMean},
	})
	if err != nil {
		t.Fatal(err)
	}
	bs := res[0].Buckets
	if len(bs) != 6 {
		t.Fatalf("%d buckets", len(bs))
	}
	for i, b := range bs {
		if b.Count != 10 {
			t.Fatalf("bucket %d count = %d", i, b.Count)
		}
		wantMean := float64(i*10) + 4.5
		if math.Abs(b.Aggs[AggMean]-wantMean) > 1e-9 {
			t.Fatalf("bucket %d mean = %v, want %v", i, b.Aggs[AggMean], wantMean)
		}
		if b.Start != int64(i)*10e9 {
			t.Fatalf("bucket %d start = %d", i, b.Start)
		}
	}
}

func TestQueryFilterAndGroupBy(t *testing.T) {
	db := Open(Options{})
	cities := []string{"Auckland", "Sydney", "Tokyo"}
	for i := 0; i < 300; i++ {
		city := cities[i%3]
		db.Write(pt("latency", int64(i)*1e6,
			map[string]string{"src_city": city, "dst_city": "Los Angeles"},
			map[string]float64{"total_ms": float64(i % 3 * 100)}))
	}
	// Filter to one city.
	res, err := db.Execute(Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: 1e12,
		Where: []Tag{{"src_city", "Sydney"}},
		Aggs:  []AggKind{AggCount, AggMean},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Buckets[0].Count != 100 || res[0].Buckets[0].Aggs[AggMean] != 100 {
		t.Fatalf("filtered: %+v", res[0].Buckets[0])
	}
	// Group by city.
	res, err = db.Execute(Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: 1e12,
		GroupBy: "src_city",
		Aggs:    []AggKind{AggMean},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d groups", len(res))
	}
	if res[0].Group != "Auckland" || res[1].Group != "Sydney" || res[2].Group != "Tokyo" {
		t.Fatalf("group order: %v, %v, %v", res[0].Group, res[1].Group, res[2].Group)
	}
	if res[0].Buckets[0].Aggs[AggMean] != 0 || res[1].Buckets[0].Aggs[AggMean] != 100 ||
		res[2].Buckets[0].Aggs[AggMean] != 200 {
		t.Fatal("group means wrong")
	}
	// Filter with no matching key.
	res, err = db.Execute(Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: 1e12,
		Where: []Tag{{"nonexistent", "x"}},
		Aggs:  []AggKind{AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("unexpected groups: %+v", res)
	}
}

func TestQueryAcrossShards(t *testing.T) {
	db := Open(Options{ShardDuration: 10e9})
	for i := 0; i < 100; i++ {
		db.Write(pt("m", int64(i)*1e9, nil, map[string]float64{"v": 1}))
	}
	if db.ShardCount() != 10 {
		t.Fatalf("shards = %d", db.ShardCount())
	}
	res, err := db.Execute(Query{
		Measurement: "m", Field: "v", Start: 0, End: 100e9,
		Aggs: []AggKind{AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Buckets[0].Count != 100 {
		t.Fatalf("count = %d", res[0].Buckets[0].Count)
	}
	// Sub-range crossing a shard boundary.
	res, _ = db.Execute(Query{
		Measurement: "m", Field: "v", Start: 5e9, End: 25e9,
		Aggs: []AggKind{AggCount},
	})
	if res[0].Buckets[0].Count != 20 {
		t.Fatalf("subrange count = %d", res[0].Buckets[0].Count)
	}
}

func TestRetentionDropsOldShards(t *testing.T) {
	db := Open(Options{ShardDuration: 10e9, Retention: 30e9})
	for i := 0; i < 100; i++ {
		db.Write(pt("m", int64(i)*1e9, nil, map[string]float64{"v": 1}))
	}
	// maxT = 99e9, horizon = 69e9 → shards ending ≤69e9 dropped.
	if got := db.ShardCount(); got > 4 {
		t.Fatalf("%d shards survive retention", got)
	}
	res, err := db.Execute(Query{
		Measurement: "m", Field: "v", Start: 0, End: 100e9, Aggs: []AggKind{AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Buckets[0].Count > 40 {
		t.Fatalf("old data still queryable: %d", res[0].Buckets[0].Count)
	}
	// Writing a point older than the horizon is dropped.
	db.Write(pt("m", 1, nil, map[string]float64{"v": 1}))
	if _, dropped := db.WriteStats(); dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestQueryValidation(t *testing.T) {
	db := Open(Options{})
	cases := []Query{
		{},
		{Measurement: "m"},
		{Measurement: "m", Field: "v"}, // End <= Start
		{Measurement: "m", Field: "v", Start: 10, End: 5}, // inverted
		{Measurement: "m", Field: "v", End: 10, Aggs: []AggKind{"bogus"}},
		{Measurement: "m", Field: "v", End: 1 << 40, Window: 1}, // too many buckets
	}
	for i, q := range cases {
		if _, err := db.Execute(q); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEmptyBucketAggs(t *testing.T) {
	db := Open(Options{})
	db.Write(pt("m", 5e9, nil, map[string]float64{"v": 7}))
	res, err := db.Execute(Query{
		Measurement: "m", Field: "v", Start: 0, End: 20e9, Window: 10e9,
		Aggs: []AggKind{AggMean, AggCount, AggMin},
	})
	if err != nil {
		t.Fatal(err)
	}
	b0, b1 := res[0].Buckets[0], res[0].Buckets[1]
	if b0.Count != 1 || b0.Aggs[AggMean] != 7 {
		t.Fatalf("bucket0 = %+v", b0)
	}
	if b1.Count != 0 || !math.IsNaN(b1.Aggs[AggMean]) || b1.Aggs[AggCount] != 0 {
		t.Fatalf("bucket1 = %+v", b1)
	}
}

func TestTagValues(t *testing.T) {
	// The tag index is shard-granular (as in Influx), so use small shards
	// to observe the time bounds.
	db := Open(Options{ShardDuration: 10e9})
	for _, c := range []string{"Tokyo", "Auckland", "Auckland", "Sydney"} {
		db.Write(pt("m", 1e9, map[string]string{"city": c}, map[string]float64{"v": 1}))
	}
	got := db.TagValues("city", 0, 10e9)
	want := []string{"Auckland", "Sydney", "Tokyo"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	if vals := db.TagValues("city", 20e9, 30e9); len(vals) != 0 {
		t.Fatalf("out-of-range tag values: %v", vals)
	}
	if vals := db.TagValues("nope", 0, 10e9); len(vals) != 0 {
		t.Fatalf("unknown key: %v", vals)
	}
}

func TestWriteValidation(t *testing.T) {
	db := Open(Options{})
	if err := db.Write(&Point{Name: "m", Time: 1}); err != ErrNoFields {
		t.Fatalf("err = %v", err)
	}
	db.Close()
	if err := db.Write(pt("m", 1, nil, map[string]float64{"v": 1})); err != ErrClosedDB {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteLine(t *testing.T) {
	db := Open(Options{})
	if err := db.WriteLine(`latency,src_city=Auckland total_ms=145.5 1000000000`); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteLine(`garbage`); err == nil {
		t.Fatal("garbage accepted")
	}
	res, err := db.Execute(Query{
		Measurement: "latency", Field: "total_ms", Start: 0, End: 2e9,
		Aggs: []AggKind{AggMax},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Buckets[0].Aggs[AggMax] != 145.5 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMixedFieldsPadWithNaN(t *testing.T) {
	// Points in one series with different field sets must not corrupt
	// columns.
	db := Open(Options{})
	db.Write(pt("m", 1, nil, map[string]float64{"a": 1}))
	db.Write(pt("m", 2, nil, map[string]float64{"b": 2}))
	db.Write(pt("m", 3, nil, map[string]float64{"a": 3, "b": 4}))
	resA, _ := db.Execute(Query{Measurement: "m", Field: "a", Start: 0, End: 10, Aggs: []AggKind{AggCount, AggSum}})
	resB, _ := db.Execute(Query{Measurement: "m", Field: "b", Start: 0, End: 10, Aggs: []AggKind{AggCount, AggSum}})
	if resA[0].Buckets[0].Count != 2 || resA[0].Buckets[0].Aggs[AggSum] != 4 {
		t.Fatalf("a: %+v", resA[0].Buckets[0])
	}
	if resB[0].Buckets[0].Count != 2 || resB[0].Buckets[0].Aggs[AggSum] != 6 {
		t.Fatalf("b: %+v", resB[0].Buckets[0])
	}
}

func TestQuantileSorted(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantileSorted(vs, 0.5); math.Abs(q-5.5) > 1e-9 {
		t.Fatalf("median = %v", q)
	}
	if q := quantileSorted(vs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := quantileSorted(vs, 1); q != 10 {
		t.Fatalf("q1 = %v", q)
	}
	if !math.IsNaN(quantileSorted(nil, 0.5)) {
		t.Fatal("empty quantile")
	}
}

func TestLineRoundTripProperty(t *testing.T) {
	f := func(name string, tagK, tagV string, fieldV float64, ts int64) bool {
		if name == "" || tagK == "" {
			return true // identifiers must be non-empty; skip
		}
		if len(name) > 100 {
			name = name[:100]
		}
		if len(tagK) > 100 {
			tagK = tagK[:100]
		}
		if len(tagV) > 100 {
			tagV = tagV[:100]
		}
		// Line protocol cannot carry newlines, backslashes at end, NaN or Inf.
		for _, s := range []string{name, tagK, tagV} {
			for _, r := range s {
				if r == '\n' || r == '\r' || r == '\\' {
					return true
				}
			}
		}
		if math.IsNaN(fieldV) || math.IsInf(fieldV, 0) {
			return true
		}
		p := &Point{Name: name, Tags: []Tag{{tagK, tagV}}, Fields: []Field{{"v", fieldV}}, Time: ts}
		line := string(MarshalLine(nil, p))
		var got Point
		if err := ParseLine(line, &got); err != nil {
			return false
		}
		return got.Name == name && got.Tags[0] == p.Tags[0] &&
			got.Fields[0].Value == fieldV && got.Time == ts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBatch(t *testing.T) {
	db := Open(Options{})
	cities := []string{"Auckland", "Sydney", "Tokyo", "London"}
	batch := make([]Point, 0, 64)
	for i := 0; i < 64; i++ {
		batch = append(batch, *pt("latency", int64(i)*1e9,
			map[string]string{"src_city": cities[i%len(cities)]},
			map[string]float64{"total_ms": float64(i)}))
	}
	applied, err := db.WriteBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 64 {
		t.Fatalf("applied = %d", applied)
	}
	if w, d := db.WriteStats(); w != 64 || d != 0 {
		t.Fatalf("written=%d dropped=%d", w, d)
	}
	if db.SeriesCount() != len(cities) {
		t.Fatalf("series = %d", db.SeriesCount())
	}
	res, err := db.Execute(Query{
		Measurement: "latency", Field: "total_ms", Start: 0, End: 64e9,
		GroupBy: "src_city", Aggs: []AggKind{AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(cities) {
		t.Fatalf("%d groups", len(res))
	}
	for _, r := range res {
		if r.Buckets[0].Count != 16 {
			t.Fatalf("group %s count = %d", r.Group, r.Buckets[0].Count)
		}
	}
	// An empty batch is a no-op; a fieldless point fails the whole batch
	// before anything is written.
	if _, err := db.WriteBatch(nil); err != nil {
		t.Fatal(err)
	}
	bad := []Point{*pt("m", 1, nil, map[string]float64{"v": 1}), {Name: "m", Time: 2}}
	if n, err := db.WriteBatch(bad); err != ErrNoFields || n != 0 {
		t.Fatalf("err = %v, applied = %d", err, n)
	}
	if w, _ := db.WriteStats(); w != 64 {
		t.Fatalf("failed batch wrote points: written=%d", w)
	}
}

func TestWriteBatchRetention(t *testing.T) {
	db := Open(Options{ShardDuration: 10e9, Retention: 30e9})
	batch := []Point{
		*pt("m", 100e9, nil, map[string]float64{"v": 1}),
		*pt("m", 1e9, nil, map[string]float64{"v": 1}), // behind the horizon set by the first point
	}
	applied, err := db.WriteBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 { // retention-dropped points count as applied (handled)
		t.Fatalf("applied = %d", applied)
	}
	if w, d := db.WriteStats(); w != 1 || d != 1 {
		t.Fatalf("written=%d dropped=%d", w, d)
	}
}

func TestRetentionSweepsIdleStripes(t *testing.T) {
	// Regression: per-stripe retention only purged the stripe being
	// written, so a stripe whose series went idle kept expired shards —
	// and served them to queries — forever.
	db := Open(Options{ShardDuration: 10e9, Retention: 30e9, Stripes: 8})
	idle := map[string]string{"city": "IdleCity"}
	busy := map[string]string{"city": "BusyCity"}
	idleKey := seriesKey("m", []Tag{{"city", "IdleCity"}})
	busyKey := seriesKey("m", []Tag{{"city", "BusyCity"}})
	if stripeIndex(idleKey)&db.mask == stripeIndex(busyKey)&db.mask {
		t.Skip("keys collide onto one stripe; pick different names")
	}
	for i := 0; i < 10; i++ {
		db.Write(pt("m", int64(i)*1e9, idle, map[string]float64{"v": 1}))
	}
	// Only the busy series advances time, far past the idle data's horizon.
	for i := 0; i < 100; i++ {
		db.Write(pt("m", int64(100+i)*1e9, busy, map[string]float64{"v": 1}))
	}
	res, err := db.Execute(Query{Measurement: "m", Field: "v",
		Start: 0, End: 50e9, Where: []Tag{{"city", "IdleCity"}},
		Aggs: []AggKind{AggCount}})
	if err != nil {
		t.Fatal(err)
	}
	// The expired shards must be gone entirely (no groups) — not merely
	// empty buckets.
	if len(res) != 0 {
		t.Fatalf("idle stripe still serves expired data: %+v", res)
	}
	// maxT=199e9, horizon=169e9: only shards ending after that survive.
	if got := db.ShardCount(); got > 4 {
		t.Fatalf("%d shards survive retention", got)
	}
}

func TestStripeCountEquivalence(t *testing.T) {
	// The same writes through a single-lock DB and a striped DB must
	// answer queries identically.
	single := Open(Options{ShardDuration: 10e9, Stripes: 1})
	striped := Open(Options{ShardDuration: 10e9, Stripes: 16})
	cities := []string{"Auckland", "Sydney", "Tokyo", "London", "Frankfurt"}
	for i := 0; i < 500; i++ {
		p := pt("latency", int64(i)*1e8,
			map[string]string{"src_city": cities[i%len(cities)]},
			map[string]float64{"total_ms": float64(i % 97)})
		single.Write(p)
		striped.Write(pt("latency", int64(i)*1e8,
			map[string]string{"src_city": cities[i%len(cities)]},
			map[string]float64{"total_ms": float64(i % 97)}))
	}
	// End at 50e9 so every bucket is populated: empty buckets carry NaN
	// aggregates, which DeepEqual would (correctly) refuse to equate.
	q := Query{Measurement: "latency", Field: "total_ms", Start: 0, End: 50e9,
		Window: 10e9, GroupBy: "src_city",
		Aggs: []AggKind{AggCount, AggMean, AggMedian, AggP99}}
	a, err := single.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := striped.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("striped results differ:\nsingle:  %+v\nstriped: %+v", a, b)
	}
	if single.ShardCount() != striped.ShardCount() {
		t.Fatalf("shard counts differ: %d vs %d", single.ShardCount(), striped.ShardCount())
	}
	if single.SeriesCount() != striped.SeriesCount() {
		t.Fatalf("series counts differ: %d vs %d", single.SeriesCount(), striped.SeriesCount())
	}
}

func TestConcurrentWriteBatchAndQueries(t *testing.T) {
	// Race contract for the sink stage: several workers calling WriteBatch
	// on disjoint series while queries, tag scans and snapshots run.
	db := Open(Options{ShardDuration: 1e9})
	const workers, batches, batchLen = 4, 50, 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			city := fmt.Sprintf("c%d", w)
			for n := 0; n < batches; n++ {
				batch := make([]Point, 0, batchLen)
				for i := 0; i < batchLen; i++ {
					batch = append(batch, *pt("m", int64(n*batchLen+i)*1e6,
						map[string]string{"city": city},
						map[string]float64{"v": float64(i)}))
				}
				if _, err := db.WriteBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 200; i++ {
			if _, err := db.Execute(Query{Measurement: "m", Field: "v",
				Start: 0, End: 10e9, GroupBy: "city", Aggs: []AggKind{AggCount, AggP95}}); err != nil {
				t.Error(err)
				return
			}
			db.TagValues("city", 0, 10e9)
			db.Snapshot(io.Discard)
		}
	}()
	wg.Wait()
	<-readerDone
	if w, _ := db.WriteStats(); w != workers*batches*batchLen {
		t.Fatalf("written = %d, want %d", w, workers*batches*batchLen)
	}
	res, err := db.Execute(Query{Measurement: "m", Field: "v",
		Start: 0, End: 10e9, Aggs: []AggKind{AggCount}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Buckets[0].Count != workers*batches*batchLen {
		t.Fatalf("count = %d", res[0].Buckets[0].Count)
	}
}

func TestConcurrentWritesAndQueries(t *testing.T) {
	db := Open(Options{ShardDuration: 1e9})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			db.Write(pt("m", int64(i)*1e6,
				map[string]string{"city": fmt.Sprintf("c%d", i%8)},
				map[string]float64{"v": float64(i)}))
		}
	}()
	for {
		select {
		case <-done:
			res, err := db.Execute(Query{Measurement: "m", Field: "v", Start: 0, End: 21e9, Aggs: []AggKind{AggCount}})
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, r := range res {
				for _, b := range r.Buckets {
					total += b.Count
				}
			}
			if total != 20000 {
				t.Fatalf("count = %d", total)
			}
			return
		default:
			_, err := db.Execute(Query{Measurement: "m", Field: "v", Start: 0, End: 21e9,
				GroupBy: "city", Aggs: []AggKind{AggMean, AggP99}})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func BenchmarkWrite(b *testing.B) {
	db := Open(Options{})
	tags := map[string]string{"src_city": "Auckland", "dst_city": "Los Angeles", "dst_asn": "64004"}
	fields := map[string]float64{"internal_ms": 15, "external_ms": 130, "total_ms": 145}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Write(pt("latency", int64(i)*1e6, tags, fields))
	}
}

func BenchmarkQueryGrouped(b *testing.B) {
	db := Open(Options{})
	cities := []string{"Auckland", "Sydney", "Tokyo", "London", "Frankfurt"}
	for i := 0; i < 100000; i++ {
		db.Write(pt("latency", int64(i)*1e6,
			map[string]string{"src_city": cities[i%len(cities)]},
			map[string]float64{"total_ms": float64(i % 500)}))
	}
	q := Query{Measurement: "latency", Field: "total_ms", Start: 0, End: 101e9,
		Window: 10e9, GroupBy: "src_city",
		Aggs: []AggKind{AggMin, AggMax, AggMean, AggMedian}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}
