package tsdb

// Interned series handles: the zero-allocation write path.
//
// The legacy Write/WriteBatch path pays a per-point identity cost — build
// the series key, sort tags, hash, two map hops for the series, one map hop
// per field, plus the same again per rollup tier. All of it re-derives
// facts that never change for a given series. Ref interns that identity
// once: the caller exchanges (name, tags, fields) for a small integer
// SeriesRef whose refState caches the resolved series pointer, per-field
// column indices and per-tier column pointers, so the steady-state cost of
// WriteBatchRef is a handful of bounds checks and column appends — zero
// heap allocations.
//
// The series directory is published copy-on-write behind an atomic.Pointer
// (the userspace-RCU idiom): writers append under db.dirMu and then store a
// fresh seriesDir header; readers (Execute, TagValues, WriteBatchRef's ref
// resolution) load the pointer and walk an immutable snapshot without
// taking any lock. Each interned identity (seriesIdent) likewise publishes
// its per-shard placement lists copy-on-write, mutated only under the
// owning stripe's lock, so queries can discover where a series lives
// without contending with ingest stripe locks.
//
// Lock order: commitMu → stripe mu → dirMu. Ref/intern may take dirMu
// alone; nothing takes a stripe lock while holding dirMu.

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
)

// SeriesRef is an interned series handle issued by DB.Ref. Refs are only
// meaningful on the DB that issued them.
type SeriesRef uint32

// RefPoint is one datum addressed by a SeriesRef: Vals[i] is the value of
// the ref's i-th field key (as passed to Ref). A NaN value means the field
// is absent for this point — identical to writing a NaN field value through
// the legacy path.
type RefPoint struct {
	Ref  SeriesRef
	Time int64
	Vals []float64
}

// seriesDir is the copy-on-write series directory snapshot. The backing
// arrays are append-only: a new ident/ref is appended in place under dirMu
// (into spare capacity or via realloc) and then a fresh header is
// published, so a reader's snapshot never observes an entry beyond its own
// len.
type seriesDir struct {
	idents []*seriesIdent
	refs   []*refState
}

// seriesIdent is one interned (measurement, sorted tagset) identity. It is
// the canonical owner of the series' key/name/tags strings — shards and
// refs alias them — and publishes where the series currently lives (raw
// shards, tier shards) as copy-on-write lists mutated only under the
// owning stripe's lock.
type seriesIdent struct {
	key       string
	name      string
	tags      []Tag // sorted; owned by the ident, aliased everywhere else
	stripeIdx uint32

	raw   atomic.Pointer[[]identShard]
	tiers []atomic.Pointer[[]identTierShard] // one per Options.Rollups entry
}

// identShard is one raw-shard placement of a series.
type identShard struct {
	start, end int64
	sr         *series
}

// identTierShard is one tier-shard placement of a series.
type identTierShard struct {
	start, end int64
	ts         *tierSeries
}

func (id *seriesIdent) rawShards() []identShard {
	if p := id.raw.Load(); p != nil {
		return *p
	}
	return nil
}

func (id *seriesIdent) tierShards(ti int) []identTierShard {
	if p := id.tiers[ti].Load(); p != nil {
		return *p
	}
	return nil
}

// addRawShard publishes a new raw placement, keeping the list sorted by
// shard start. Caller holds the owning stripe's write lock (the only
// mutator of this ident's lists).
func (id *seriesIdent) addRawShard(e identShard) {
	old := id.rawShards()
	next := make([]identShard, 0, len(old)+1)
	i := 0
	for ; i < len(old) && old[i].start < e.start; i++ {
		next = append(next, old[i])
	}
	next = append(next, e)
	next = append(next, old[i:]...)
	id.raw.Store(&next)
}

// dropRawShard unpublishes the placement for the pruned shard starting at
// start. Caller holds the owning stripe's write lock.
func (id *seriesIdent) dropRawShard(start int64) {
	old := id.rawShards()
	next := make([]identShard, 0, len(old))
	for _, e := range old {
		if e.start != start {
			next = append(next, e)
		}
	}
	id.raw.Store(&next)
}

func (id *seriesIdent) addTierShard(ti int, e identTierShard) {
	old := id.tierShards(ti)
	next := make([]identTierShard, 0, len(old)+1)
	i := 0
	for ; i < len(old) && old[i].start < e.start; i++ {
		next = append(next, old[i])
	}
	next = append(next, e)
	next = append(next, old[i:]...)
	id.tiers[ti].Store(&next)
}

func (id *seriesIdent) dropTierShard(ti int, start int64) {
	old := id.tierShards(ti)
	next := make([]identTierShard, 0, len(old))
	for _, e := range old {
		if e.start != start {
			next = append(next, e)
		}
	}
	id.tiers[ti].Store(&next)
}

// refState is the per-ref write cache: the resolved field set plus hot
// pointers into the current shard. hot is guarded by the ident's stripe
// lock (WriteBatchRef only touches it with that lock held).
type refState struct {
	ident     *seriesIdent
	fieldKeys []string
	hot       refHot
}

// refHot caches the resolution of a ref against one raw shard and the
// matching tier shards: the series pointer, each field's column index, and
// each tier's column pointers. ncols snapshots len(sr.cols) at resolve
// time so a legacy write adding a column to the same series forces a
// re-resolve (mixed mode pads the foreign columns with NaN, exactly as the
// legacy path pads columns missing from a point).
type refHot struct {
	shardStart int64
	sr         *series
	colIdx     []int32
	ncols      int
	mixed      bool
	tiers      []refTierHot
}

// refTierHot caches one tier's resolution: the tier series and one column
// pointer per ref field (nil until the field's first non-NaN value, so a
// never-written field creates no tier column — mirroring the legacy path).
type refTierHot struct {
	shardStart int64
	ts         *tierSeries
	cols       []*tierColumn
}

// loadDir returns the current directory snapshot (never nil).
func (db *DB) loadDir() *seriesDir {
	return db.dir.Load()
}

// publishDirLocked publishes the current backing arrays as a fresh
// snapshot. Caller holds dirMu.
func (db *DB) publishDirLocked() {
	db.dir.Store(&seriesDir{idents: db.identsBuf, refs: db.refsBuf})
}

// internLocked returns the ident for key, creating and publishing it if
// new. Caller holds dirMu. tags must be sorted; they are copied.
func (db *DB) internLocked(name string, tags []Tag, key []byte) *seriesIdent {
	if id, ok := db.byKey[string(key)]; ok {
		return id
	}
	id := &seriesIdent{
		key:   string(key),
		name:  name,
		tags:  append([]Tag(nil), tags...),
		tiers: make([]atomic.Pointer[[]identTierShard], len(db.opts.Rollups)),
	}
	id.stripeIdx = stripeIndex(id.key) & db.mask
	db.byKey[id.key] = id
	db.identsBuf = append(db.identsBuf, id)
	db.publishDirLocked()
	return id
}

// intern is internLocked behind dirMu, for callers holding a stripe lock
// (lock order stripe → dirMu). Only reached when a write creates a series
// whose identity has never been seen — never on the steady-state path.
func (db *DB) intern(name string, tags []Tag, key []byte) *seriesIdent {
	db.dirMu.Lock()
	id := db.internLocked(name, tags, key)
	db.dirMu.Unlock()
	return id
}

// Ref interns a series identity plus an ordered field set and returns a
// reusable handle for WriteBatchRef. Tags are copied and sorted; fields
// must be non-empty and distinct. Calling Ref again with the same
// (name, tags, fields) returns the same handle. Refs are cheap to hold
// and never invalidated for the life of the DB.
func (db *DB) Ref(name string, tags []Tag, fields ...string) (SeriesRef, error) {
	if db.closed.Load() {
		return 0, ErrClosedDB
	}
	if len(fields) == 0 {
		return 0, ErrNoFields
	}
	for i := range fields {
		for j := i + 1; j < len(fields); j++ {
			if fields[i] == fields[j] {
				return 0, ErrBadRef
			}
		}
	}
	sorted := append([]Tag(nil), tags...)
	sortTags(sorted)
	key := appendSeriesKey(nil, name, sorted)
	// Ref identity = series key + ordered field keys, length-prefixed so
	// the encoding is unambiguous.
	rk := make([]byte, 0, len(key)+16)
	rk = binary.AppendUvarint(rk, uint64(len(key)))
	rk = append(rk, key...)
	for _, f := range fields {
		rk = binary.AppendUvarint(rk, uint64(len(f)))
		rk = append(rk, f...)
	}

	db.dirMu.Lock()
	defer db.dirMu.Unlock()
	if r, ok := db.refByKey[string(rk)]; ok {
		return r, nil
	}
	id := db.internLocked(name, sorted, key)
	rs := &refState{ident: id, fieldKeys: append([]string(nil), fields...)}
	rs.hot.colIdx = make([]int32, len(fields))
	rs.hot.tiers = make([]refTierHot, len(db.opts.Rollups))
	for ti := range rs.hot.tiers {
		rs.hot.tiers[ti].cols = make([]*tierColumn, len(fields))
	}
	r := SeriesRef(len(db.refsBuf))
	db.refsBuf = append(db.refsBuf, rs)
	db.refByKey[string(rk)] = r
	db.publishDirLocked()
	return r, nil
}

// WriteBatchRef stores all points through their interned handles — the
// zero-allocation fast path. Semantics match WriteBatch exactly: one stripe
// lock per involved stripe, retention applied per point, rollup tiers fed,
// WAL-logged as full (name, tags, fields) records on a persistent DB (the
// wire/durability formats are unchanged), and the same partial-apply
// contract under a concurrent Close. A NaN in Vals writes a NaN field
// value (the point still lands; queries skip the NaN), bit-identical to
// the legacy path. Fails with ErrBadRef before writing anything if any
// point carries an unknown ref or a Vals length that does not match the
// ref's field set.
//
// Steady state (in-memory DB, warm columns) must not allocate; the noalloc
// analyzer enforces the construct-level discipline and BenchmarkWriteRef
// gates the measured result.
//
//ruru:noalloc
func (db *DB) WriteBatchRef(pts []RefPoint) (applied int, err error) {
	if len(pts) == 0 {
		return 0, nil
	}
	if db.closed.Load() {
		return 0, ErrClosedDB
	}
	d := db.dir.Load()
	refs := d.refs
	batchMax := int64(math.MinInt64)
	for i := range pts {
		p := &pts[i]
		if int(p.Ref) >= len(refs) || len(p.Vals) != len(refs[p.Ref].fieldKeys) {
			return 0, ErrBadRef
		}
		if p.Time > batchMax {
			batchMax = p.Time
		}
	}
	if pr := db.persist; pr != nil {
		// Materialize full (name, tags, fields) points into pooled scratch
		// for the WAL: the durable format stays self-describing, so
		// crash/restore and federation remain oblivious to refs.
		db.commitMu.RLock()
		defer db.commitMu.RUnlock()
		if db.closed.Load() {
			return 0, ErrClosedDB
		}
		if err := db.logRefBatch(pr, refs, pts); err != nil {
			return 0, err
		}
	}
	maxT := db.advanceMaxT(batchMax)
	db.maybeSweepAll(maxT)
	for s, st := range db.stripes {
		touched := false
		for i := range pts {
			if refs[pts[i].Ref].ident.stripeIdx == uint32(s) {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		st.mu.Lock()
		if db.closed.Load() {
			st.mu.Unlock()
			return applied, ErrClosedDB
		}
		for i := range pts {
			rs := refs[pts[i].Ref]
			if rs.ident.stripeIdx != uint32(s) {
				continue
			}
			db.writeRefLocked(st, rs, &pts[i], maxT)
			applied++
		}
		st.mu.Unlock()
	}
	return applied, nil
}

// writeRefLocked is writeLocked for the ref path: identical ordering
// contract (tiers first — they accept points behind the raw horizon — then
// raw retention, then append, then retention enforcement). Caller holds
// st.mu.
//
//ruru:noalloc
func (db *DB) writeRefLocked(st *stripe, rs *refState, p *RefPoint, maxT int64) {
	if len(db.opts.Rollups) > 0 {
		db.writeRefTiersLocked(st, rs, p, maxT)
	}
	if db.opts.Retention > 0 && p.Time < maxT-db.opts.Retention {
		db.dropped.Add(1)
		db.enforceRetentionLocked(st, maxT)
		db.noteBackfill(p.Time, maxT) // tiers may still have absorbed it
		return
	}
	start := floorDiv(p.Time, db.opts.ShardDuration) * db.opts.ShardDuration
	h := &rs.hot
	sr := h.sr
	if sr == nil || h.shardStart != start || len(sr.cols) != h.ncols {
		sr = db.resolveRefRaw(st, rs, start)
	}
	sr.times = append(sr.times, p.Time)
	for i, v := range p.Vals {
		ci := h.colIdx[i]
		sr.cols[ci] = append(sr.cols[ci], v)
	}
	if h.mixed {
		// Legacy writes added columns this ref does not carry: pad them so
		// every column stays aligned with times.
		for ci := range sr.cols {
			if len(sr.cols[ci]) < len(sr.times) {
				sr.cols[ci] = append(sr.cols[ci], nan)
			}
		}
	}
	db.written.Add(1)
	db.enforceRetentionLocked(st, maxT)
	db.noteBackfill(p.Time, maxT)
}

// resolveRefRaw points the ref's hot cache at the raw shard starting at
// start, creating shard/series/columns as needed. Caller holds st.mu.
func (db *DB) resolveRefRaw(st *stripe, rs *refState, start int64) *series {
	sh := db.shardAt(st, start)
	id := rs.ident
	sr, ok := sh.series[id.key]
	if !ok {
		sr = &series{name: id.name, tags: id.tags, ident: id}
		sh.series[id.key] = sr
		id.addRawShard(identShard{start: sh.start, end: sh.end, sr: sr})
	}
	h := &rs.hot
	h.sr = sr
	h.shardStart = start
	for i, k := range rs.fieldKeys {
		ci := sr.findCol(k)
		if ci < 0 {
			ci = sr.addCol(k)
		}
		h.colIdx[i] = int32(ci)
	}
	h.ncols = len(sr.cols)
	h.mixed = h.ncols > len(rs.fieldKeys)
	return sr
}

// writeRefTiersLocked is writeTiersLocked for the ref path. Caller holds
// st.mu.
//
//ruru:noalloc
func (db *DB) writeRefTiersLocked(st *stripe, rs *refState, p *RefPoint, maxT int64) {
	var binsArr [8]uint16
	var bins []uint16
	if len(p.Vals) <= len(binsArr) {
		bins = binsArr[:len(p.Vals)]
	} else {
		bins = make([]uint16, len(p.Vals))
	}
	for i, v := range p.Vals {
		if !math.IsNaN(v) {
			bins[i] = binOf(v)
		}
	}
	for ti := range db.opts.Rollups {
		tier := &db.opts.Rollups[ti]
		if tier.Retention > 0 && p.Time < maxT-tier.Retention {
			continue
		}
		bStart := floorDiv(p.Time, tier.Width) * tier.Width
		shStart := floorDiv(bStart, db.opts.ShardDuration) * db.opts.ShardDuration
		th := &rs.hot.tiers[ti]
		if th.ts == nil || th.shardStart != shStart {
			db.resolveRefTier(st, rs, ti, shStart)
		}
		for i, v := range p.Vals {
			if math.IsNaN(v) {
				continue // raw queries skip NaN; keep tiers equivalent
			}
			col := th.cols[i]
			if col == nil {
				k := rs.fieldKeys[i]
				col = th.ts.fields[k]
				if col == nil {
					col = &tierColumn{}
					th.ts.fields[k] = col
				}
				th.cols[i] = col
			}
			col.at(bStart).add(v, bins[i])
		}
	}
}

// resolveRefTier points the ref's tier-hot cache at the tier shard starting
// at shStart, creating shard/series as needed. Caller holds st.mu.
func (db *DB) resolveRefTier(st *stripe, rs *refState, ti int, shStart int64) {
	tstr := &st.tiers[ti]
	sh, ok := tstr.shards[shStart]
	if !ok {
		sh = &tierShard{
			start:  shStart,
			end:    shStart + db.opts.ShardDuration,
			series: make(map[string]*tierSeries),
		}
		tstr.shards[shStart] = sh
		tstr.order = insertSorted(tstr.order, shStart)
	}
	id := rs.ident
	ts, ok := sh.series[id.key]
	if !ok {
		ts = &tierSeries{name: id.name, tags: id.tags, ident: id, fields: make(map[string]*tierColumn)}
		sh.series[id.key] = ts
		id.addTierShard(ti, identTierShard{start: sh.start, end: sh.end, ts: ts})
	}
	th := &rs.hot.tiers[ti]
	th.ts = ts
	th.shardStart = shStart
	for i := range th.cols {
		th.cols[i] = ts.fields[rs.fieldKeys[i]] // nil until first value
	}
}

// refLogScratch is pooled scratch for materializing a ref batch into full
// WAL points.
type refLogScratch struct {
	pts    []Point
	fields []Field
}

var refLogPool = sync.Pool{New: func() any { return &refLogScratch{} }}

// logRefBatch WAL-logs a ref batch as full self-describing points. Tags
// alias the idents' owned slices and field headers point into one arena —
// safe because the WAL encoder copies everything into its own buffers
// before logBatch returns.
func (db *DB) logRefBatch(pr *persister, refs []*refState, pts []RefPoint) error {
	sc := refLogPool.Get().(*refLogScratch)
	total := 0
	for i := range pts {
		total += len(refs[pts[i].Ref].fieldKeys)
	}
	if cap(sc.fields) < total {
		sc.fields = make([]Field, 0, total)
	}
	if cap(sc.pts) < len(pts) {
		sc.pts = make([]Point, 0, len(pts))
	}
	fields := sc.fields[:0]
	out := sc.pts[:0]
	for i := range pts {
		rs := refs[pts[i].Ref]
		base := len(fields)
		for j, k := range rs.fieldKeys {
			fields = append(fields, Field{Key: k, Value: pts[i].Vals[j]})
		}
		out = append(out, Point{
			Name:   rs.ident.name,
			Tags:   rs.ident.tags,
			Fields: fields[base:len(fields):len(fields)],
			Time:   pts[i].Time,
		})
	}
	err := pr.logBatch(out)
	sc.pts, sc.fields = out[:0], fields[:0]
	refLogPool.Put(sc)
	return err
}
