//go:build !race

package tsdb

// raceEnabled reports whether the race detector is active; allocation-count
// tests skip under -race because its instrumentation allocates.
const raceEnabled = false
