package tsdb

import (
	"bufio"
	"io"
	"sort"
)

// Snapshot serializes the database's full contents as Influx line protocol,
// one point per line — the "long-term storage" half of the paper's InfluxDB
// role. The format is interoperable: a snapshot can be replayed into a real
// InfluxDB, POSTed to another Ruru's /write endpoint, or restored with
// Restore.
//
// Snapshot acquires every stripe's read lock (in index order) and holds
// them all for the duration, so each stripe is dumped at a single point in
// time and writes block until the dump completes. Because acquisition is
// sequential and WriteBatch applies a batch stripe by stripe, a batch
// racing the acquisition phase can appear partially in the dump — same
// per-stripe (not per-batch) consistency WriteBatch itself documents.
//
// Rollup tiers are derived data and are NOT serialized: Restore rebuilds
// them from the raw points it replays. Consequently a snapshot taken with
// short raw retention cannot reconstruct the long history a coarse tier
// held — only the raw points still inside the retention horizon survive a
// snapshot/restore round trip.
func (db *DB) Snapshot(w io.Writer) (points int64, err error) {
	starts := map[int64]struct{}{}
	for _, st := range db.stripes {
		st.mu.RLock()
		defer st.mu.RUnlock()
		for _, start := range st.order {
			starts[start] = struct{}{}
		}
	}
	order := make([]int64, 0, len(starts))
	for start := range starts {
		order = append(order, start)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 512)
	var p Point
	for _, start := range order {
		for _, st := range db.stripes {
			sh, ok := st.shards[start]
			if !ok {
				continue
			}
			for _, sr := range sh.series {
				for i, ts := range sr.times {
					p.Name = sr.name
					p.Tags = sr.tags
					p.Fields = p.Fields[:0]
					for k, col := range sr.fields {
						v := col[i]
						if v != v { // NaN: field absent for this point
							continue
						}
						p.Fields = append(p.Fields, Field{Key: k, Value: v})
					}
					if len(p.Fields) == 0 {
						continue
					}
					p.Time = ts
					buf = MarshalLine(buf[:0], &p)
					buf = append(buf, '\n')
					if _, err := bw.Write(buf); err != nil {
						return points, err
					}
					points++
				}
			}
		}
	}
	return points, bw.Flush()
}

// Restore replays a line-protocol stream (as produced by Snapshot) into the
// database. Returns the number of points written; stops at the first
// malformed line.
func (db *DB) Restore(r io.Reader) (points int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var p Point
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		if err := ParseLine(line, &p); err != nil {
			return points, err
		}
		if err := db.Write(&p); err != nil {
			return points, err
		}
		points++
	}
	return points, sc.Err()
}
