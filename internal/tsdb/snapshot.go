package tsdb

import (
	"bufio"
	"bytes"
	"io"
	"sort"
)

// Snapshot serializes the database's full contents as Influx line protocol,
// one point per line — the "long-term storage" half of the paper's InfluxDB
// role. The format is interoperable: a snapshot can be replayed into a real
// InfluxDB, POSTed to another Ruru's /write endpoint, or restored with
// Restore.
//
// Locking: the dump is staged stripe by stripe — each stripe's read lock is
// held only while that stripe's points are copied into memory, never while
// bytes travel to w. A slow consumer (a throttled HTTP client on
// GET /snapshot) therefore cannot stall writes: the worst-case write stall
// is one stripe's copy, and it costs staging memory proportional to the
// serialized size of the DB (bounded by retention). Consistency is
// per-stripe, exactly the granularity WriteBatch itself documents: a batch
// racing the staging phase can appear partially in the dump.
//
// Output is ordered by shard start time (ascending), so replaying a
// snapshot into a retention-bounded DB never drops points that were live
// when the snapshot was taken.
//
// Rollup tiers are derived data and are NOT serialized: Restore rebuilds
// them from the raw points it replays. Consequently a snapshot taken with
// short raw retention cannot reconstruct the long history a coarse tier
// held — only the raw points still inside the retention horizon survive a
// snapshot/restore round trip.
func (db *DB) Snapshot(w io.Writer) (points int64, err error) {
	chunks, points := db.stageDumpChunks(false)
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, c := range chunks {
		if _, err := bw.Write(c.data); err != nil {
			return points, err
		}
	}
	return points, bw.Flush()
}

// dumpChunk is one shard's serialized points.
type dumpChunk struct {
	start int64
	data  []byte
}

// stageDumpChunks copies every stripe's shards into per-shard
// line-protocol chunks and returns them sorted by shard start (ascending)
// plus the total point count. If preLocked, the caller already holds every
// stripe's read lock (the checkpoint cut); otherwise each stripe is
// read-locked just for its copy. Either way a stripe's lock is released
// the moment that stripe is staged.
//
// The ascending order is load-bearing for restores into retention-bounded
// DBs: retention keeps whole shards, so a shard straddling the horizon
// holds points individually older than it. Replaying old→new stores those
// sliver points while the horizon is still behind them; any other order
// would re-drop them at write time and a checkpoint/restore cycle would
// silently lose live data (pinned by
// TestPersistCheckpointPreservesRetentionSliver).
func (db *DB) stageDumpChunks(preLocked bool) ([]dumpChunk, int64) {
	var chunks []dumpChunk
	var points int64
	buf := make([]byte, 0, 512)
	for _, st := range db.stripes {
		if !preLocked {
			st.mu.RLock()
		}
		for _, start := range st.order {
			var bb bytes.Buffer
			var n int64
			n, buf, _ = marshalShardLocked(&bb, st.shards[start], buf) // Buffer writes cannot fail
			points += n
			if bb.Len() > 0 {
				chunks = append(chunks, dumpChunk{start: start, data: bb.Bytes()})
			}
		}
		st.mu.RUnlock()
	}
	sort.SliceStable(chunks, func(i, j int) bool { return chunks[i].start < chunks[j].start })
	return chunks, points
}

// marshalShardLocked writes every point of one shard as line protocol to w,
// returning the point count and the (possibly grown) scratch buffer.
// Caller holds the owning stripe's lock (read or write).
func marshalShardLocked(w io.Writer, sh *shard, buf []byte) (int64, []byte, error) {
	var points int64
	var p Point
	for _, sr := range sh.series {
		for i, ts := range sr.times {
			p.Name = sr.name
			p.Tags = sr.tags
			p.Fields = p.Fields[:0]
			for ci, k := range sr.fkeys {
				v := sr.cols[ci][i]
				if v != v { // NaN: field absent for this point
					continue
				}
				p.Fields = append(p.Fields, Field{Key: k, Value: v})
			}
			if len(p.Fields) == 0 {
				continue
			}
			p.Time = ts
			buf = MarshalLine(buf[:0], &p)
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return points, buf, err
			}
			points++
		}
	}
	return points, buf, nil
}

// Restore replays a line-protocol stream (as produced by Snapshot) into the
// database. Points flow through the normal write path: retention applies,
// rollup tiers are fed, and on a persistent DB each restored point is
// WAL-logged like any other write. Returns the number of points written;
// stops at the first malformed line.
func (db *DB) Restore(r io.Reader) (points int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var p Point
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		if err := ParseLine(line, &p); err != nil {
			return points, err
		}
		if err := db.Write(&p); err != nil {
			return points, err
		}
		points++
	}
	return points, sc.Err()
}
