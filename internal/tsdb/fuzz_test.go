package tsdb

// Native fuzz targets for the durability decode paths: a WAL segment is
// the one file format the database must read back after arbitrary crash
// interleavings, so the reader's contract under garbage is absolute —
// never panic, never allocate unboundedly, never apply a record that did
// not survive its CRC ("over-apply"). Corpus regeneration: RURU_UPDATE=1
// (see docs/TESTING.md).

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSegmentSeeds builds WAL segment images: a real multi-record segment
// produced by the writer, plus truncated/corrupted variants and frames
// with hostile length fields.
func fuzzSegmentSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	dir, err := os.MkdirTemp("", "ruru-walfuzz-")
	if err != nil {
		tb.Fatal(err)
	}
	defer os.RemoveAll(dir)
	w, err := openWAL(dir, 1, 1<<20, FsyncOff)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		pts := []Point{
			{Name: "latency",
				Tags:   []Tag{{Key: "src_city", Value: "Auckland"}, {Key: "dst_city", Value: "Los Angeles"}},
				Fields: []Field{{Key: "total_ms", Value: 145.5 + float64(i)}},
				Time:   int64(i) * 1e9},
			{Name: "latency",
				Tags:   []Tag{{Key: "src_city", Value: "Sydney"}, {Key: "dst_city", Value: "Tokyo"}},
				Fields: []Field{{Key: "total_ms", Value: 99.25}, {Key: "internal_ms", Value: 10}},
				Time:   int64(i)*1e9 + 5e8},
		}
		if err := w.AppendPoints(pts); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		tb.Fatal(err)
	}

	seeds := [][]byte{valid}
	seeds = append(seeds, valid[:len(valid)-3])   // torn tail
	seeds = append(seeds, valid[:walHeaderBytes]) // header only
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0xff // CRC mismatch mid-file
	seeds = append(seeds, flip)
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	seeds = append(seeds, badMagic)
	// Hostile frame header: implausible record length after the magic.
	hostile := append([]byte(nil), valid[:walHeaderBytes]...)
	var hdr [walFrameBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 0xffffff00)
	seeds = append(seeds, append(hostile, hdr[:]...))
	// A frame whose CRC is valid but whose payload is not a legal entry
	// stream (decode-layer corruption behind a good checksum).
	junk := []byte{walEntrySample, 0x80, 0x80, 0x80} // dangling uvarint
	frame := append([]byte(nil), valid[:walHeaderBytes]...)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(junk)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(junk, crcTable))
	frame = append(append(frame, hdr[:]...), junk...)
	seeds = append(seeds, frame)
	return seeds
}

// fuzzScratch is the one segment file every fuzz exec rewrites: fuzz
// workers are separate processes, so a per-process path is race-free, and
// skipping a fresh TempDir per exec keeps the fuzzer's throughput at
// parser-like levels instead of filesystem-bound ones.
var fuzzScratch string

func fuzzScratchPath() string {
	if fuzzScratch == "" {
		dir, err := os.MkdirTemp("", "ruru-walfuzz-scratch-")
		if err != nil {
			panic(err)
		}
		fuzzScratch = filepath.Join(dir, segName(1))
	}
	return fuzzScratch
}

// FuzzWALReplay feeds arbitrary bytes to the segment reader + entry
// decoder exactly the way open-time recovery does.
func FuzzWALReplay(f *testing.F) {
	for _, s := range fuzzSegmentSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Shrink the frame-size bound so hostile length fields cannot make
		// the reader stage hundreds of MB per exec; the reader must treat
		// anything above the bound as a tear, whatever the bound is.
		old := maxRecordBytes
		maxRecordBytes = 1 << 20
		defer func() { maxRecordBytes = old }()

		path := fuzzScratchPath()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		run := func(final bool) (applied int, records int, err error) {
			var dec walDecoder
			var p Point
			records, err = replaySegment(path, final, func(payload []byte) error {
				for len(payload) > 0 {
					rest, sample, derr := dec.next(payload, &p)
					if derr != nil {
						return derr
					}
					payload = rest
					if sample {
						applied++
					}
				}
				return nil
			})
			return applied, records, err
		}
		appliedFinal, recsFinal, errFinal := run(true)
		appliedMid, recsMid, errMid := run(false)
		// The valid prefix is a property of the bytes, not of the
		// final-segment flag: both passes must apply identical work, only
		// the error classification may differ (ErrWALTorn vs ErrWALCorrupt).
		if appliedFinal != appliedMid || recsFinal != recsMid {
			t.Fatalf("replay not deterministic: final=(%d,%d,%v) mid=(%d,%d,%v)",
				appliedFinal, recsFinal, errFinal, appliedMid, recsMid, errMid)
		}
		if (errFinal == nil) != (errMid == nil) {
			t.Fatalf("error presence differs: final=%v mid=%v", errFinal, errMid)
		}
	})
}

// TestRecordCodecRoundTrip pins the exported self-contained record codec
// (the federation wire format) against the WAL entry encoding it reuses.
func TestRecordCodecRoundTrip(t *testing.T) {
	var enc RecordEncoder
	mk := func(n int) []Point {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				Name: "latency",
				Tags: []Tag{
					{Key: "src_city", Value: "City" + strconv.Itoa(i%3)},
					{Key: "dst_city", Value: "Los Angeles"},
				},
				Fields: []Field{
					{Key: "total_ms", Value: 100.5 + float64(i)},
					{Key: "internal_ms", Value: float64(i) / 7},
				},
				Time: int64(i) * 1e7,
			}
		}
		return pts
	}
	// Two records from one encoder must each decode stand-alone.
	for round := 0; round < 2; round++ {
		pts := mk(100 + round)
		rec := enc.AppendRecord(nil, pts)
		var got []Point
		err := DecodeRecord(rec, func(p *Point) error {
			got = append(got, Point{
				Name:   p.Name,
				Tags:   append([]Tag(nil), p.Tags...),
				Fields: append([]Field(nil), p.Fields...),
				Time:   p.Time,
			})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pts) {
			t.Fatalf("round %d: decoded %d points, want %d", round, len(got), len(pts))
		}
		for i := range pts {
			want, have := pts[i], got[i]
			if want.Name != have.Name || want.Time != have.Time ||
				len(want.Tags) != len(have.Tags) || len(want.Fields) != len(have.Fields) {
				t.Fatalf("round %d point %d mismatch:\nwant %+v\ngot  %+v", round, i, want, have)
			}
			for j := range want.Tags {
				if want.Tags[j] != have.Tags[j] {
					t.Fatalf("point %d tag %d: %+v != %+v", i, j, want.Tags[j], have.Tags[j])
				}
			}
			for j := range want.Fields {
				if want.Fields[j] != have.Fields[j] {
					t.Fatalf("point %d field %d: %+v != %+v", i, j, want.Fields[j], have.Fields[j])
				}
			}
		}
	}
}

// TestWriteWALFuzzCorpus regenerates testdata/fuzz/FuzzWALReplay.
// Run with RURU_UPDATE=1; skipped otherwise.
func TestWriteWALFuzzCorpus(t *testing.T) {
	if os.Getenv("RURU_UPDATE") == "" {
		t.Skip("set RURU_UPDATE=1 to regenerate the fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzSegmentSeeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed-"+strconv.Itoa(i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
