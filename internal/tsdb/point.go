// Package tsdb is the embedded time-series database standing in for the
// paper's InfluxDB deployment: geo-tagged latency measurements are written
// at connection rate, retained for a configurable horizon, and queried with
// the windowed aggregations Ruru's Grafana panels use (min, max, mean,
// median, quantiles over arbitrary intervals, grouped and filtered by
// geo-location and AS tags — "InfluxDB takes care of indexing data on
// geo-location and AS information").
//
// The engine is deliberately Influx-shaped: points carry a measurement
// name, sorted key=value tags and float fields; the text ingest format is
// Influx line protocol; storage is time-sharded and series-columnar, with
// every series interned once into a copy-on-write directory that queries
// resolve lock-free (see ref.go).
//
// Storage is in-memory by default. Opened through OpenDB with
// Options.Persist set, the database is durable: every write is logged to a
// segmented write-ahead log before it is applied (fsync per
// PersistOptions.Fsync), checkpoints bound replay work and WAL growth, and
// open restores the newest checkpoint plus the WAL tail — tolerating the
// torn final record a crash leaves — rebuilding rollup tiers along the
// way. See PersistOptions, DB.Checkpoint and PersistStats for the
// contract, and wal.go/persist.go for the design.
package tsdb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tag is one key=value dimension of a point.
type Tag struct {
	Key, Value string
}

// Field is one named float value of a point.
type Field struct {
	Key   string
	Value float64
}

// Point is a single time-series datum.
type Point struct {
	Name   string
	Tags   []Tag // will be sorted by key on write
	Fields []Field
	Time   int64 // ns
}

// Errors returned by the package.
var (
	ErrBadLine    = errors.New("tsdb: malformed line protocol")
	ErrNoFields   = errors.New("tsdb: point has no fields")
	ErrClosedDB   = errors.New("tsdb: database closed")
	ErrBadQuery   = errors.New("tsdb: malformed query")
	ErrUnknownAgg = errors.New("tsdb: unknown aggregation")
	// ErrBadResolution reports a Query.Resolution that names no configured
	// rollup tier, or one whose buckets cannot align with the requested
	// window and range.
	ErrBadResolution = errors.New("tsdb: unusable query resolution")
	// ErrBadRef reports a SeriesRef that this DB never issued, a RefPoint
	// whose Vals length does not match the ref's field set, or a Ref
	// request with duplicate field keys.
	ErrBadRef = errors.New("tsdb: bad series ref")
)

// seriesKey builds the canonical identity string: name,k1=v1,k2=v2 with
// sorted tag keys.
func seriesKey(name string, tags []Tag) string {
	return string(appendSeriesKey(nil, name, tags))
}

// appendSeriesKey appends the canonical series identity to buf. The write
// hot paths build keys into per-DB scratch arenas with this and hash/look
// up the bytes directly, so steady-state writes never materialize a key
// string.
func appendSeriesKey(buf []byte, name string, tags []Tag) []byte {
	buf = append(buf, name...)
	for _, t := range tags {
		buf = append(buf, ',')
		buf = append(buf, t.Key...)
		buf = append(buf, '=')
		buf = append(buf, t.Value...)
	}
	return buf
}

// sortTags sorts tags by key. Already-sorted input (the overwhelmingly
// common case: every write after a series' first re-presents tags the
// previous write left sorted in place) is detected and returned without
// the sort.Slice closure allocations; small unsorted tag sets use an
// in-place insertion sort.
func sortTags(tags []Tag) {
	sorted := true
	for i := 1; i < len(tags); i++ {
		if tags[i].Key < tags[i-1].Key {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	if len(tags) <= 16 {
		for i := 1; i < len(tags); i++ {
			t := tags[i]
			j := i - 1
			for j >= 0 && tags[j].Key > t.Key {
				tags[j+1] = tags[j]
				j--
			}
			tags[j+1] = t
		}
		return
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i].Key < tags[j].Key })
}

// escapes for line protocol: comma, space and equals in identifiers.
var lineEscaper = strings.NewReplacer(",", `\,`, " ", `\ `, "=", `\=`)

// MarshalLine appends the point in Influx line protocol to buf.
func MarshalLine(buf []byte, p *Point) []byte {
	buf = append(buf, lineEscaper.Replace(p.Name)...)
	for _, t := range p.Tags {
		buf = append(buf, ',')
		buf = append(buf, lineEscaper.Replace(t.Key)...)
		buf = append(buf, '=')
		buf = append(buf, lineEscaper.Replace(t.Value)...)
	}
	buf = append(buf, ' ')
	for i, f := range p.Fields {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, lineEscaper.Replace(f.Key)...)
		buf = append(buf, '=')
		buf = strconv.AppendFloat(buf, f.Value, 'g', -1, 64)
	}
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, p.Time, 10)
	return buf
}

// ParseLine parses one line of Influx line protocol into p.
// Supported value types: floats, integers (with or without the trailing
// 'i'), booleans (stored as 0/1).
func ParseLine(line string, p *Point) error {
	p.Name = ""
	p.Tags = p.Tags[:0]
	p.Fields = p.Fields[:0]
	p.Time = 0

	// Split into measurement+tags / fields / timestamp respecting escapes.
	parts, err := splitUnescaped(line, ' ', 3)
	if err != nil || len(parts) < 2 {
		return ErrBadLine
	}
	head, err := splitUnescaped(parts[0], ',', -1)
	if err != nil || len(head) == 0 || head[0] == "" {
		return ErrBadLine
	}
	p.Name = unescape(head[0])
	for _, kv := range head[1:] {
		k, v, ok := cutUnescaped(kv, '=')
		if !ok || k == "" {
			return ErrBadLine
		}
		p.Tags = append(p.Tags, Tag{Key: unescape(k), Value: unescape(v)})
	}
	fields, err := splitUnescaped(parts[1], ',', -1)
	if err != nil || len(fields) == 0 {
		return ErrBadLine
	}
	for _, kv := range fields {
		k, v, ok := cutUnescaped(kv, '=')
		if !ok || k == "" || v == "" {
			return ErrBadLine
		}
		val, err := parseFieldValue(v)
		if err != nil {
			return ErrBadLine
		}
		p.Fields = append(p.Fields, Field{Key: unescape(k), Value: val})
	}
	if len(p.Fields) == 0 {
		return ErrNoFields
	}
	if len(parts) == 3 {
		ts, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil {
			return ErrBadLine
		}
		p.Time = ts
	}
	return nil
}

func parseFieldValue(s string) (float64, error) {
	switch s {
	case "t", "T", "true", "True", "TRUE":
		return 1, nil
	case "f", "F", "false", "False", "FALSE":
		return 0, nil
	}
	if strings.HasSuffix(s, "i") || strings.HasSuffix(s, "u") {
		n, err := strconv.ParseInt(strings.TrimRight(s, "iu"), 10, 64)
		return float64(n), err
	}
	if strings.HasPrefix(s, `"`) {
		return 0, fmt.Errorf("tsdb: string fields unsupported")
	}
	return strconv.ParseFloat(s, 64)
}

// splitUnescaped splits s on sep ignoring backslash-escaped separators.
// limit > 0 caps the number of pieces (like SplitN).
func splitUnescaped(s string, sep byte, limit int) ([]string, error) {
	var out []string
	start := 0
	esc := false
	for i := 0; i < len(s); i++ {
		switch {
		case esc:
			esc = false
		case s[i] == '\\':
			esc = true
		case s[i] == sep:
			if limit > 0 && len(out) == limit-1 {
				continue
			}
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if esc {
		return nil, ErrBadLine
	}
	out = append(out, s[start:])
	return out, nil
}

// cutUnescaped splits s at the first unescaped sep.
func cutUnescaped(s string, sep byte) (before, after string, ok bool) {
	esc := false
	for i := 0; i < len(s); i++ {
		switch {
		case esc:
			esc = false
		case s[i] == '\\':
			esc = true
		case s[i] == sep:
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

func unescape(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var sb strings.Builder
	esc := false
	for i := 0; i < len(s); i++ {
		if esc {
			sb.WriteByte(s[i])
			esc = false
			continue
		}
		if s[i] == '\\' {
			esc = true
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}
