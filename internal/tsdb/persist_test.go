package tsdb

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"syscall"
	"testing"
)

// persistOpts returns manual-checkpoint-only options so tests control the
// checkpoint/truncate cycle deterministically.
func persistOpts(dir string, fsync FsyncPolicy) *PersistOptions {
	return &PersistOptions{Dir: dir, Fsync: fsync, CheckpointEvery: -1}
}

// writePersistPoints writes n deterministic points: two city-pair series,
// 100ms apart, values cycling over a prime so count/min/max/sum pin content.
// Half go through Write, half through WriteBatch, so both WAL record shapes
// are exercised.
func writePersistPoints(t *testing.T, db *DB, n, offset int) {
	t.Helper()
	batch := make([]Point, 0, 16)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if applied, err := db.WriteBatch(batch); err != nil || applied != len(batch) {
			t.Fatalf("WriteBatch applied %d/%d: %v", applied, len(batch), err)
		}
		batch = batch[:0]
	}
	for i := offset; i < offset+n; i++ {
		city := "Auckland"
		if i%2 == 1 {
			city = "Wellington"
		}
		p := Point{
			Name: "latency",
			Tags: []Tag{
				{Key: "src_city", Value: city},
				{Key: "dst_city", Value: "Los Angeles"},
			},
			Fields: []Field{{Key: "total_ms", Value: float64(1 + i%997)}},
			Time:   int64(i) * 1e8,
		}
		if i%2 == 0 {
			if err := db.Write(&p); err != nil {
				t.Fatalf("Write: %v", err)
			}
			continue
		}
		batch = append(batch, p)
		if len(batch) == cap(batch) {
			flush()
		}
	}
	flush()
}

// fullQuery runs the exact-aggregate dashboard query over every point the
// tests write, at the given resolution.
func fullQuery(t *testing.T, db *DB, n int, resolution int64) []SeriesResult {
	t.Helper()
	end := (int64(n)*1e8 + 10e9 - 1) / 10e9 * 10e9
	res, err := db.Execute(Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: end, Window: 10e9, GroupBy: "src_city",
		Resolution: resolution,
		Aggs:       []AggKind{AggCount, AggMin, AggMax, AggSum, AggMean},
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

// stripTier zeroes the Tier marker so tier-served and raw-served results
// can be compared for value equality.
func stripTier(res []SeriesResult) []SeriesResult {
	out := make([]SeriesResult, len(res))
	copy(out, res)
	for i := range out {
		out[i].Tier = 0
	}
	return out
}

// crashDB simulates kill -9: background goroutines stop, the WAL file
// descriptor is closed without flushing the user-space buffer, and the
// directory lock is dropped (flock dies with the process) — but none of
// the orderly Close work (final flush/fsync) happens.
func crashDB(db *DB) {
	pr := db.persist
	db.closed.Store(true)
	close(pr.stop)
	pr.wg.Wait()
	pr.wal.mu.Lock()
	pr.wal.closed = true
	pr.wal.f.Close() // raw close: buffered bytes are lost, like a dead process's heap
	pr.wal.mu.Unlock()
	syscall.Flock(int(pr.lock.Fd()), syscall.LOCK_UN)
	pr.lock.Close()
}

func TestPersistRoundTripRebuildsTiers(t *testing.T) {
	dir := t.TempDir()
	const n = 4000
	opts := Options{Rollups: DefaultRollups(), Persist: persistOpts(dir, FsyncOff)}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	writePersistPoints(t, db, n, 0)
	wantRaw := fullQuery(t, db, n, ResolutionRaw)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := OpenDB(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	ps := db2.PersistStats()
	if !ps.Enabled || ps.WALReplayedPoints != n || ps.RestoredPoints != 0 {
		t.Fatalf("replay stats = %+v, want %d WAL-replayed, 0 restored", ps, n)
	}
	if ps.ReplayTornTail {
		t.Fatal("clean close reported a torn tail")
	}
	if got := fullQuery(t, db2, n, ResolutionRaw); !reflect.DeepEqual(got, wantRaw) {
		t.Fatalf("raw query diverged after restart:\n got %+v\nwant %+v", got, wantRaw)
	}
	// The rollup tiers were rebuilt by replay: a tier-served query must
	// agree with raw on the exact aggregates.
	tier := fullQuery(t, db2, n, ResolutionAuto)
	if len(tier) == 0 || tier[0].Tier == 0 {
		t.Fatalf("query not tier-served after restart: %+v", tier)
	}
	if !reflect.DeepEqual(stripTier(tier), stripTier(wantRaw)) {
		t.Fatal("tier-served query diverged from raw after restart")
	}
}

func TestPersistCheckpointRestoreAndTruncate(t *testing.T) {
	dir := t.TempDir()
	const n = 3000
	opts := Options{
		Rollups: DefaultRollups(),
		Persist: &PersistOptions{Dir: dir, Fsync: FsyncOff, CheckpointEvery: -1,
			MaxSegmentBytes: 64 << 10}, // force several segments
	}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	writePersistPoints(t, db, n, 0)
	info, err := db.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if info.Points != n {
		t.Fatalf("checkpoint dumped %d points, want %d", info.Points, n)
	}
	if info.SegmentsRemoved == 0 {
		t.Fatal("checkpoint removed no WAL segments despite 64KiB segment cap")
	}
	segs, err := listSegments(filepath.Join(dir, walDirName))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s < info.WALSegment {
			t.Fatalf("segment %d survived truncation below checkpoint %d", s, info.WALSegment)
		}
	}
	// Writes after the checkpoint land in the replayed tail.
	writePersistPoints(t, db, n, n)
	wantRaw := fullQuery(t, db, 2*n, ResolutionRaw)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	ps := db2.PersistStats()
	if ps.RestoredPoints != n || ps.WALReplayedPoints != n {
		t.Fatalf("recovery = %d restored + %d replayed, want %d + %d",
			ps.RestoredPoints, ps.WALReplayedPoints, n, n)
	}
	if got := fullQuery(t, db2, 2*n, ResolutionRaw); !reflect.DeepEqual(got, wantRaw) {
		t.Fatal("checkpoint + WAL-tail recovery diverged from pre-restart state")
	}
	tier := fullQuery(t, db2, 2*n, ResolutionAuto)
	if len(tier) == 0 || tier[0].Tier == 0 {
		t.Fatal("query not tier-served after checkpointed restart")
	}
	if !reflect.DeepEqual(stripTier(tier), stripTier(wantRaw)) {
		t.Fatal("tier-served query diverged from raw after checkpointed restart")
	}
}

func TestPersistCrashRecoveryOracle(t *testing.T) {
	// The acceptance shape: sustained ingest, a checkpoint mid-stream, a
	// hard crash (no orderly shutdown), restart — everything the oracle
	// snapshot saw must be queryable, bit-equal, with tiers equivalent.
	dir := t.TempDir()
	const n = 2500
	opts := Options{Rollups: DefaultRollups(), Persist: persistOpts(dir, FsyncOff)}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	writePersistPoints(t, db, n, 0)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writePersistPoints(t, db, n, n)
	var oracle bytes.Buffer
	oraclePts, err := db.Snapshot(&oracle)
	if err != nil || oraclePts != 2*n {
		t.Fatalf("oracle snapshot: %d points, err %v", oraclePts, err)
	}
	wantRaw := fullQuery(t, db, 2*n, ResolutionRaw)
	crashDB(db)

	db2, err := OpenDB(opts)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	ps := db2.PersistStats()
	if ps.RestoredPoints+ps.WALReplayedPoints != 2*n {
		t.Fatalf("recovered %d+%d points, want %d", ps.RestoredPoints, ps.WALReplayedPoints, 2*n)
	}
	if got := fullQuery(t, db2, 2*n, ResolutionRaw); !reflect.DeepEqual(got, wantRaw) {
		t.Fatal("post-crash query diverged from the pre-kill oracle")
	}
	tier := fullQuery(t, db2, 2*n, ResolutionAuto)
	if !reflect.DeepEqual(stripTier(tier), stripTier(wantRaw)) {
		t.Fatal("post-crash tier-served query diverged from raw")
	}
	var recovered bytes.Buffer
	if pts, err := db2.Snapshot(&recovered); err != nil || pts != 2*n {
		t.Fatalf("recovered snapshot: %d points, err %v", pts, err)
	}
}

func TestPersistTornTailTolerated(t *testing.T) {
	for _, tear := range []struct {
		name string
		mut  func(t *testing.T, path string)
	}{
		{"truncated-mid-record", func(t *testing.T, path string) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt-crc", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0xff
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			const n = 200
			opts := Options{Persist: persistOpts(dir, FsyncOff)}
			db, err := OpenDB(opts)
			if err != nil {
				t.Fatal(err)
			}
			writePersistPoints(t, db, n, 0)
			crashDB(db)

			segs, err := listSegments(filepath.Join(dir, walDirName))
			if err != nil || len(segs) == 0 {
				t.Fatalf("segments: %v, err %v", segs, err)
			}
			tear.mut(t, filepath.Join(dir, walDirName, segName(segs[len(segs)-1])))

			db2, err := OpenDB(opts)
			if err != nil {
				t.Fatalf("reopen with torn tail: %v", err)
			}
			defer db2.Close()
			ps := db2.PersistStats()
			if !ps.ReplayTornTail {
				t.Fatal("torn tail not reported")
			}
			// Everything before the tear survives; only the final record
			// (up to one WriteBatch) is lost.
			written, _ := db2.WriteStats()
			if written == 0 || written >= n {
				t.Fatalf("replayed %d points, want within (0, %d)", written, n)
			}
			if written < n-16-1 {
				t.Fatalf("replayed %d points — tear may only cost the final record (≥ %d)", written, n-16-1)
			}
		})
	}
}

func TestPersistCorruptMiddleSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Persist: &PersistOptions{Dir: dir, Fsync: FsyncOff,
		CheckpointEvery: -1, MaxSegmentBytes: 16 << 10}}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	writePersistPoints(t, db, 2000, 0)
	crashDB(db)

	segs, err := listSegments(filepath.Join(dir, walDirName))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %v (err %v)", segs, err)
	}
	first := filepath.Join(dir, walDirName, segName(segs[0]))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDB(opts); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("open over corrupt middle segment: err %v, want ErrWALCorrupt", err)
	}
}

func TestPersistMidCheckpointCrashLeftovers(t *testing.T) {
	dir := t.TempDir()
	const n = 500
	opts := Options{Persist: persistOpts(dir, FsyncOff)}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	writePersistPoints(t, db, n, 0)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	writePersistPoints(t, db, n, n)
	crashDB(db)

	// A crash mid-checkpoint leaves a temp file (never renamed) and can
	// leave stale pre-checkpoint artifacts. None of them may confuse
	// recovery: the temp is deleted, the garbage "old" checkpoint and
	// segment are below the newest checkpoint and skipped.
	ckptDir := filepath.Join(dir, ckptDirName)
	if err := os.WriteFile(filepath.Join(ckptDir, ckptName(99)+".tmp"),
		[]byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ckptDir, ckptName(0)),
		[]byte("not line protocol at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walDirName, segName(0)),
		[]byte("stale segment garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	ps := db2.PersistStats()
	if ps.RestoredPoints != n || ps.WALReplayedPoints != n {
		t.Fatalf("recovery = %d restored + %d replayed, want %d + %d",
			ps.RestoredPoints, ps.WALReplayedPoints, n, n)
	}
	if tmps, _ := filepath.Glob(filepath.Join(ckptDir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("stale temp checkpoints survived open: %v", tmps)
	}
}

func TestPersistLockfileRefusesDoubleOpen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Persist: persistOpts(dir, FsyncOff)}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDB(opts); !errors.Is(err, ErrDirLocked) {
		t.Fatalf("double open: err %v, want ErrDirLocked", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(opts)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	db2.Close()
}

func TestPersistFsyncAlwaysGroupCommit(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Persist: persistOpts(dir, FsyncAlways)}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p := Point{
					Name:   "latency",
					Tags:   []Tag{{Key: "src_city", Value: fmt.Sprintf("City%d", w)}},
					Fields: []Field{{Key: "total_ms", Value: float64(i)}},
					Time:   int64(w*per+i) * 1e6,
				}
				if err := db.Write(&p); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ps := db.PersistStats()
	if ps.WALFsyncs == 0 || ps.WALAppends != writers*per {
		t.Fatalf("fsyncs=%d appends=%d, want >0 and %d", ps.WALFsyncs, ps.WALAppends, writers*per)
	}
	// Under FsyncAlways every completed write is durable before it
	// returns: even a raw crash loses nothing.
	crashDB(db)
	db2, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if written, _ := db2.WriteStats(); written != writers*per {
		t.Fatalf("recovered %d points after crash, want %d (fsync=always)", written, writers*per)
	}
}

func TestPersistConcurrentCheckpointNoLossNoDup(t *testing.T) {
	// The checkpoint cut must be exact under concurrent ingest: after a
	// crash, restored + replayed points must equal exactly the writes that
	// completed — a lost point breaks durability, a duplicated one breaks
	// the cut (it would be both in the checkpoint and replayed).
	dir := t.TempDir()
	opts := Options{Persist: persistOpts(dir, FsyncOff)}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	const writers, batches, batchLen = 4, 60, 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]Point, batchLen)
			for i := 0; i < batches; i++ {
				for j := range batch {
					batch[j] = Point{
						Name:   "latency",
						Tags:   []Tag{{Key: "src_city", Value: fmt.Sprintf("City%d", w)}},
						Fields: []Field{{Key: "total_ms", Value: float64(i*batchLen + j)}},
						Time:   int64(w)*1e12 + int64(i*batchLen+j)*1e6,
					}
				}
				if applied, err := db.WriteBatch(batch); err != nil || applied != batchLen {
					t.Errorf("WriteBatch applied %d: %v", applied, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			if _, err := db.Checkpoint(); err != nil {
				t.Errorf("Checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if t.Failed() {
		return
	}
	const total = writers * batches * batchLen
	if written, _ := db.WriteStats(); written != total {
		t.Fatalf("pre-crash written=%d, want %d", written, total)
	}
	crashDB(db)

	db2, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ps := db2.PersistStats()
	if got := ps.RestoredPoints + ps.WALReplayedPoints; got != total {
		t.Fatalf("recovered %d (%d restored + %d replayed), want exactly %d",
			got, ps.RestoredPoints, ps.WALReplayedPoints, total)
	}
}

// failingWriter fails every write — the fault-injecting writer behind the
// WAL append error-path test.
type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("injected disk failure") }

func TestPersistWALAppendFailureFailsWriteThenSelfHeals(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(Options{Persist: persistOpts(dir, FsyncOff)})
	if err != nil {
		t.Fatal(err)
	}
	writePersistPoints(t, db, 10, 0)
	// Swap the segment writer for one that always fails: the next write
	// must surface the error and must NOT become queryable — otherwise
	// memory runs ahead of what a restart can recover.
	db.persist.wal.mu.Lock()
	db.persist.wal.bw = bufio.NewWriterSize(failingWriter{}, 1)
	db.persist.wal.mu.Unlock()

	p := Point{Name: "latency", Fields: []Field{{Key: "total_ms", Value: 1}}, Time: 1e15}
	if err := db.Write(&p); err == nil {
		t.Fatal("Write succeeded despite WAL append failure")
	}
	written, _ := db.WriteStats()
	if written != 10 {
		t.Fatalf("failed write reached memory: written=%d, want 10", written)
	}
	if ps := db.PersistStats(); ps.WALAppendErrors == 0 {
		t.Fatal("append errors not counted")
	}
	// The failure poisoned the segment; the next write must rotate onto a
	// fresh one and succeed — a transient disk error (ENOSPC later
	// cleared) must not wedge the WAL until restart.
	if applied, err := db.WriteBatch([]Point{p}); err != nil || applied != 1 {
		t.Fatalf("write after WAL failure did not self-heal: applied=%d err=%v", applied, err)
	}
	if written, _ := db.WriteStats(); written != 11 {
		t.Fatalf("written=%d after heal, want 11", written)
	}
	// And the healed segment replays: the 10 pre-failure points plus the
	// healed one survive a crash (the poisoned segment's tail is torn).
	crashDB(db)
	db2, err := OpenDB(Options{Persist: persistOpts(dir, FsyncOff)})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if written, _ := db2.WriteStats(); written != 11 {
		t.Fatalf("recovered %d points after heal+crash, want 11", written)
	}
}

func TestPersistCheckpointPreservesRetentionSliver(t *testing.T) {
	// Retention keeps whole shards, so a shard straddling the horizon
	// holds points individually older than it. The checkpoint dump must
	// come back shard-time ascending: replayed old→new those sliver
	// points are stored before the horizon advances past them. Unordered
	// (stripe-major) dumps silently re-drop them at restore time.
	dir := t.TempDir()
	opts := Options{ShardDuration: 10e9, Retention: 30e9,
		Persist: persistOpts(dir, FsyncOff)}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	write := func(city string, ts int64) {
		p := Point{Name: "latency",
			Tags:   []Tag{{Key: "src_city", Value: city}},
			Fields: []Field{{Key: "total_ms", Value: 1}}, Time: ts}
		if err := db.Write(&p); err != nil {
			t.Fatal(err)
		}
	}
	// Slivers: t=5e9 lives in shard [0,10e9); with maxT=39e9 the horizon
	// is 9e9, so those points are older than the horizon but their shard
	// survives. 16 cities put slivers and newer points in every stripe: a
	// stripe-major dump replays some stripe's 39e9 point before a later
	// stripe's sliver, advancing the horizon past it.
	for i := 0; i < 16; i++ {
		write(fmt.Sprintf("City%d", i), 5e9)
	}
	for i := 0; i < 16; i++ {
		write(fmt.Sprintf("City%d", i), 39e9)
	}
	if written, dropped := db.WriteStats(); written != 32 || dropped != 0 {
		t.Fatalf("pre-checkpoint: written=%d dropped=%d, want 32/0", written, dropped)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if written, dropped := db2.WriteStats(); written != 32 || dropped != 0 {
		t.Fatalf("restore kept %d points (dropped %d), want all 32: slivers lost to dump order", written, dropped)
	}
}

// partialWriter passes writes through to the real file until failAfter
// bytes, then fails forever — leaving a genuinely torn frame ON DISK, the
// way a full disk does.
type partialWriter struct {
	f         *os.File
	remaining int
}

func (p *partialWriter) Write(b []byte) (int, error) {
	if p.remaining <= 0 {
		return 0, errors.New("injected disk full")
	}
	n := len(b)
	if n > p.remaining {
		n = p.remaining
	}
	n, err := p.f.Write(b[:n])
	p.remaining -= n
	if err == nil && n < len(b) {
		err = errors.New("injected disk full")
	}
	return n, err
}

func TestPersistTornMidStreamAfterIOErrorTolerated(t *testing.T) {
	// An error-rotation abandons a segment whose tail holds a REAL partial
	// frame on disk. Once later segments exist it is no longer the final
	// segment, so without the tear acknowledgement the next open would
	// refuse with ErrWALCorrupt — turning a transient disk-full event into
	// a permanent startup failure.
	dir := t.TempDir()
	opts := Options{Persist: persistOpts(dir, FsyncOff)}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	writePersistPoints(t, db, 10, 0)
	// Route the current segment through a writer that lets 5 more bytes
	// through to the real file, then fails: the next record is torn mid-
	// frame on disk.
	w := db.persist.wal
	w.mu.Lock()
	w.bw.Flush()
	w.bw = bufio.NewWriterSize(&partialWriter{f: w.f, remaining: 5}, 1)
	w.mu.Unlock()

	p := Point{Name: "latency", Fields: []Field{{Key: "total_ms", Value: 1}}, Time: 1e15}
	if err := db.Write(&p); err == nil {
		t.Fatal("Write succeeded despite injected disk failure")
	}
	// Self-heal onto a fresh segment (which must carry the tear marker),
	// then keep writing.
	writePersistPoints(t, db, 10, 100)
	crashDB(db)

	db2, err := OpenDB(opts)
	if err != nil {
		t.Fatalf("reopen after error-rotation: %v", err)
	}
	defer db2.Close()
	ps := db2.PersistStats()
	if !ps.ReplayTornTail {
		t.Fatal("acknowledged tear not reported")
	}
	if written, _ := db2.WriteStats(); written != 20 {
		t.Fatalf("recovered %d points, want 20 (10 pre-tear + 10 healed)", written)
	}
}

func TestPersistOversizeBatchSplits(t *testing.T) {
	old := maxRecordBytes
	maxRecordBytes = 4096
	defer func() { maxRecordBytes = old }()

	dir := t.TempDir()
	opts := Options{Persist: persistOpts(dir, FsyncOff)}
	db, err := OpenDB(opts)
	if err != nil {
		t.Fatal(err)
	}
	// One batch far beyond the frame limit: must be split across several
	// records, not written as a frame replay would reject.
	writePersistPoints(t, db, 2000, 0)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	ps := db2.PersistStats()
	if ps.WALReplayedPoints != 2000 {
		t.Fatalf("replayed %d of 2000 points written through oversized batches", ps.WALReplayedPoints)
	}
}

func TestPersistCloseIdempotent(t *testing.T) {
	db, err := OpenDB(Options{Persist: persistOpts(t.TempDir(), FsyncOff)})
	if err != nil {
		t.Fatal(err)
	}
	writePersistPoints(t, db, 10, 0)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// A second Close (defer + explicit, or two racing callers) must be a
	// no-op, not a close-of-closed-channel panic.
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestOpenPanicsOnPersist(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Open(Options{Persist}) did not panic")
		}
	}()
	Open(Options{Persist: persistOpts(t.TempDir(), FsyncOff)})
}
