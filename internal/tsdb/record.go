package tsdb

// The exported face of the WAL entry codec (wal.go): self-contained,
// dictionary-compressed point records for transports that frame and
// checksum on their own — the federation remote-write stream reuses the
// exact on-disk record encoding as its wire format, so a probe's batch
// costs the same ~10–15 bytes per steady-state point as a WAL append.
//
// Unlike WAL segments, where the shape dictionary spans a whole segment,
// every record produced here is SELF-CONTAINED: the dictionary and all
// delta-coding state reset at each AppendRecord, so a record can be
// spooled, resent over a different connection, or decoded in isolation
// without any stream context. A batch of points from a handful of series
// still amortizes its define entries over the whole record.

// RecordEncoder encodes batches of points into self-contained records.
// The zero value is ready to use. Not safe for concurrent use; the
// internal dictionary is scratch state reused across calls.
type RecordEncoder struct {
	dict   map[string]uint64
	state  []shapeEnc
	keyBuf []byte
}

// AppendRecord appends the encoding of pts to buf and returns the extended
// slice. Tags of each point are sorted in place (the canonical point form,
// as Write would). The record decodes stand-alone with DecodeRecord.
func (e *RecordEncoder) AppendRecord(buf []byte, pts []Point) []byte {
	if e.dict == nil {
		e.dict = make(map[string]uint64, 8)
	} else {
		clear(e.dict)
	}
	e.state = e.state[:0]
	for i := range pts {
		p := &pts[i]
		sortTags(p.Tags)
		e.keyBuf = shapeKey(e.keyBuf[:0], p)
		id, ok := e.dict[string(e.keyBuf)]
		if !ok {
			id = uint64(len(e.dict))
			e.dict[string(e.keyBuf)] = id
			if cap(e.state) > len(e.state) {
				// Reuse the previous record's per-shape state storage.
				e.state = e.state[:len(e.state)+1]
				st := &e.state[id]
				st.prevTime = 0
				if cap(st.prev) >= len(p.Fields) {
					st.prev = st.prev[:len(p.Fields)]
					clear(st.prev)
				} else {
					st.prev = make([]uint64, len(p.Fields))
				}
			} else {
				e.state = append(e.state, shapeEnc{prev: make([]uint64, len(p.Fields))})
			}
			buf = appendDefine(buf, id, p)
		}
		buf = appendSample(buf, id, p, &e.state[id])
	}
	return buf
}

// DecodeRecord decodes one self-contained record, calling fn for every
// point. The *Point passed to fn is reused between calls — copy what you
// keep. Decoding stops at the first malformed entry with an error; points
// already handed to fn stand (the caller decides whether a partial record
// is usable — the federation aggregator does not, because the record CRC
// is checked before decode, making any failure here real corruption).
// Arbitrary input never panics and allocates at most in proportion to
// len(payload) — the fuzz targets pin both properties.
func DecodeRecord(payload []byte, fn func(*Point) error) error {
	var dec walDecoder
	var p Point
	for len(payload) > 0 {
		rest, sample, err := dec.next(payload, &p)
		if err != nil {
			return err
		}
		payload = rest
		if !sample {
			continue
		}
		if err := fn(&p); err != nil {
			return err
		}
	}
	return nil
}
