// Package stats provides the streaming statistics Ruru's analytics and
// anomaly stages use: running mean/variance (Welford), exponentially
// weighted moving averages, a log-bucketed latency histogram with quantile
// estimation (the HDR-histogram idea specialized for latency in
// nanoseconds), a fixed-size reservoir sample for exact small-set quantiles,
// and a rolling median/MAD window for robust anomaly baselines.
//
// Everything here is allocation-free after construction and safe to embed in
// per-queue hot paths. None of the types are safe for concurrent use; give
// each goroutine its own and merge.
package stats

import (
	"math"
	"math/bits"
	"sort"
)

// Welford tracks count, mean and variance in one pass (Welford's online
// algorithm, numerically stable for long streams).
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge combines another Welford into w (parallel variance formula).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Count returns the number of samples.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// EWMA is an exponentially weighted moving average with configurable alpha.
type EWMA struct {
	Alpha float64 // weight of the newest sample, in (0,1]
	value float64
	init  bool
}

// Add incorporates x and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value += e.Alpha * (x - e.value)
	return e.value
}

// Value returns the current average (0 before any samples).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been added.
func (e *EWMA) Initialized() bool { return e.init }

// LatencyHist is a log-bucketed histogram for latency values in nanoseconds.
// Buckets are arranged as (exponent, mantissa) pairs giving a fixed relative
// error of about 1/32 (3%), enough to reproduce the paper's min/max/median/
// mean/quantile panels. Range: 1ns to ~146h. Values outside are clamped.
type LatencyHist struct {
	counts [nBuckets]uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

const (
	mantissaBits = 5 // 32 sub-buckets per octave: ~3% relative error
	nOctaves     = 40
	nBuckets     = nOctaves << mantissaBits
)

// NewLatencyHist returns an empty histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{min: math.MaxInt64, max: math.MinInt64}
}

func bucketIndex(v int64) int {
	if v < 1 {
		v = 1
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v)
	var mant int
	if exp > mantissaBits {
		mant = int((uint64(v) >> (uint(exp) - mantissaBits)) & (1<<mantissaBits - 1))
	} else {
		mant = int(uint64(v)<<(mantissaBits-uint(exp))) & (1<<mantissaBits - 1)
	}
	idx := exp<<mantissaBits | mant
	if idx >= nBuckets {
		idx = nBuckets - 1
	}
	return idx
}

// bucketLow returns the lower bound of bucket idx (inverse of bucketIndex).
func bucketLow(idx int) int64 {
	exp := idx >> mantissaBits
	mant := idx & (1<<mantissaBits - 1)
	if exp > mantissaBits {
		return (1 << uint(exp)) | int64(mant)<<(uint(exp)-mantissaBits)
	}
	return (1 << uint(exp)) | int64(mant)>>(mantissaBits-uint(exp))
}

// Add records one latency sample in nanoseconds.
func (h *LatencyHist) Add(v int64) {
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *LatencyHist) Count() uint64 { return h.total }

// Min and Max return exact extrema (0 if empty).
func (h *LatencyHist) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum (0 if empty).
func (h *LatencyHist) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact mean (0 if empty).
func (h *LatencyHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns the approximate q-quantile (q in [0,1]) with ~3% relative
// error. Returns 0 if empty.
func (h *LatencyHist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q >= 1 {
		return h.max // exact, like HDR's ValueAtPercentile(100)
	}
	rank := uint64(q * float64(h.total-1))
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Median is Quantile(0.5).
func (h *LatencyHist) Median() int64 { return h.Quantile(0.5) }

// Merge adds another histogram's contents into h.
func (h *LatencyHist) Merge(o *LatencyHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Reset clears the histogram.
func (h *LatencyHist) Reset() {
	*h = LatencyHist{min: math.MaxInt64, max: math.MinInt64}
}

// RollingMedian maintains a sliding window of the last N samples and serves
// robust statistics: median and MAD (median absolute deviation). The anomaly
// detectors use median+k·MAD as a spike threshold because a 4000 ms outlier
// would drag a mean/stddev baseline along with it, masking itself.
type RollingMedian struct {
	window  []float64
	scratch []float64
	next    int
	filled  bool
}

// NewRollingMedian creates a window of size n (n ≥ 1).
func NewRollingMedian(n int) *RollingMedian {
	if n < 1 {
		n = 1
	}
	return &RollingMedian{
		window:  make([]float64, n),
		scratch: make([]float64, n),
	}
}

// Add inserts a sample, evicting the oldest when full.
func (r *RollingMedian) Add(x float64) {
	r.window[r.next] = x
	r.next++
	if r.next == len(r.window) {
		r.next = 0
		r.filled = true
	}
}

// Len returns the number of valid samples in the window.
func (r *RollingMedian) Len() int {
	if r.filled {
		return len(r.window)
	}
	return r.next
}

func (r *RollingMedian) values() []float64 {
	n := r.Len()
	copy(r.scratch[:n], r.window[:n])
	return r.scratch[:n]
}

// Median returns the window median (0 if empty).
func (r *RollingMedian) Median() float64 {
	vs := r.values()
	if len(vs) == 0 {
		return 0
	}
	return medianOf(vs)
}

// MAD returns the median absolute deviation about the window median.
func (r *RollingMedian) MAD() float64 {
	vs := r.values()
	if len(vs) == 0 {
		return 0
	}
	m := medianOf(vs)
	for i, v := range vs {
		vs[i] = math.Abs(v - m)
	}
	return medianOf(vs)
}

// medianOf sorts vs in place and returns its median.
func medianOf(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// Reservoir keeps a uniform random sample of a stream (Vitter's algorithm R)
// for exact quantiles over modest sample sizes; used to validate the
// histogram's approximation in tests and benchmarks.
type Reservoir struct {
	sample []float64
	seen   uint64
	rng    uint64 // xorshift state; deterministic given the seed
}

// NewReservoir creates a reservoir of capacity n with a deterministic seed.
func NewReservoir(n int, seed uint64) *Reservoir {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Reservoir{sample: make([]float64, 0, n), rng: seed}
}

func (r *Reservoir) rand() uint64 {
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	return x
}

// Add offers x to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.sample) < cap(r.sample) {
		r.sample = append(r.sample, x)
		return
	}
	// Replace a random element with probability cap/seen.
	j := r.rand() % r.seen
	if j < uint64(cap(r.sample)) {
		r.sample[j] = x
	}
}

// Quantile returns the exact q-quantile of the current sample (0 if empty).
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.sample) == 0 {
		return 0
	}
	vs := make([]float64, len(r.sample))
	copy(vs, r.sample)
	sort.Float64s(vs)
	if q <= 0 {
		return vs[0]
	}
	if q >= 1 {
		return vs[len(vs)-1]
	}
	idx := q * float64(len(vs)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(vs) {
		return vs[lo]
	}
	return vs[lo]*(1-frac) + vs[lo+1]*frac
}

// Seen returns how many values were offered.
func (r *Reservoir) Seen() uint64 { return r.seen }
