package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if math.Abs(w.Variance()-4) > 1e-12 {
		t.Fatalf("variance = %v", w.Variance())
	}
	if math.Abs(w.Stddev()-2) > 1e-12 {
		t.Fatalf("stddev = %v", w.Stddev())
	}
	w.Reset()
	if w.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		clamp := func(vs []float64) []float64 {
			out := vs
			for i, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					out[i] = 0
				}
				// keep magnitudes moderate for float comparison
				out[i] = math.Mod(out[i], 1e6)
			}
			return out
		}
		a, b = clamp(a), clamp(b)
		var all, wa, wb Welford
		for _, v := range a {
			all.Add(v)
			wa.Add(v)
		}
		for _, v := range b {
			all.Add(v)
			wb.Add(v)
		}
		wa.Merge(&wb)
		if wa.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		meanOK := math.Abs(wa.Mean()-all.Mean()) <= 1e-6*(1+math.Abs(all.Mean()))
		varOK := math.Abs(wa.Variance()-all.Variance()) <= 1e-6*(1+all.Variance())
		return meanOK && varOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(5)
	a.Merge(&b) // merging empty changes nothing
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty broke accumulator")
	}
	b.Merge(&a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 5 {
		t.Fatal("merge into empty failed")
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Initialized() {
		t.Fatal("initialized before any sample")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first sample: %v", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("after second: %v", e.Value())
	}
	e.Add(15)
	if e.Value() != 15 {
		t.Fatalf("after third: %v", e.Value())
	}
}

func TestLatencyHistBasics(t *testing.T) {
	h := NewLatencyHist()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Median() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for i := int64(1); i <= 1000; i++ {
		h.Add(i * 1000) // 1µs .. 1ms
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1000 || h.Max() != 1000000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if math.Abs(h.Mean()-500500) > 1 {
		t.Fatalf("mean = %v", h.Mean())
	}
	med := h.Median()
	if math.Abs(float64(med)-500000) > 0.04*500000 {
		t.Fatalf("median = %d, want ~500000 within 4%%", med)
	}
}

func TestLatencyHistQuantileAccuracy(t *testing.T) {
	// Against a log-uniform stream, every quantile must be within the
	// advertised ~3% relative error (we allow 5% for bucket-edge effects).
	h := NewLatencyHist()
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := int64(math.Exp(rng.Float64()*14 + 7)) // ~1µs .. ~20min spread
		h.Add(v)
		vals = append(vals, float64(v))
	}
	res := NewReservoir(20000, 1)
	for _, v := range vals {
		res.Add(v)
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		exact := res.Quantile(q)
		got := float64(h.Quantile(q))
		if math.Abs(got-exact) > 0.05*exact {
			t.Errorf("q=%.2f: hist=%v exact=%v (err %.1f%%)", q, got, exact, 100*math.Abs(got-exact)/exact)
		}
	}
}

func TestLatencyHistClamping(t *testing.T) {
	h := NewLatencyHist()
	h.Add(0)  // clamps to 1
	h.Add(-5) // clamps to 1
	h.Add(math.MaxInt64)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(0) < 0 {
		t.Fatal("negative quantile")
	}
	if h.Quantile(2) != h.Max() || h.Quantile(-1) <= 0 {
		t.Fatal("q clamping broken")
	}
}

func TestLatencyHistMerge(t *testing.T) {
	a, b, all := NewLatencyHist(), NewLatencyHist(), NewLatencyHist()
	for i := int64(1); i < 500; i++ {
		a.Add(i * 10)
		all.Add(i * 10)
	}
	for i := int64(500); i < 1000; i++ {
		b.Add(i * 10)
		all.Add(i * 10)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merge lost data")
	}
	if a.Median() != all.Median() {
		t.Fatalf("merged median %d != %d", a.Median(), all.Median())
	}
	// Merging an empty histogram must not disturb min/max.
	a.Merge(NewLatencyHist())
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("empty merge disturbed extrema")
	}
}

func TestBucketMonotonicity(t *testing.T) {
	// bucketIndex must be monotone non-decreasing and bucketLow must
	// invert it to within one bucket.
	prev := -1
	for v := int64(1); v < 1<<30; v = v*5/4 + 1 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
		low := bucketLow(idx)
		if low > v {
			t.Fatalf("bucketLow(%d)=%d exceeds value %d", idx, low, v)
		}
		// relative error bound
		if float64(v-low)/float64(v) > 0.04 {
			t.Fatalf("bucket error at %d: low=%d", v, low)
		}
	}
}

func TestRollingMedian(t *testing.T) {
	r := NewRollingMedian(5)
	if r.Median() != 0 || r.MAD() != 0 || r.Len() != 0 {
		t.Fatal("empty window not zeroed")
	}
	for _, v := range []float64{10, 12, 11, 13, 9} {
		r.Add(v)
	}
	if r.Len() != 5 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Median() != 11 {
		t.Fatalf("median = %v", r.Median())
	}
	// MAD of {10,12,11,13,9} about 11 is median{1,1,0,2,2} = 1.
	if r.MAD() != 1 {
		t.Fatalf("MAD = %v", r.MAD())
	}
	// Sliding: push 5 large values; median must follow.
	for i := 0; i < 5; i++ {
		r.Add(100)
	}
	if r.Median() != 100 {
		t.Fatalf("median after slide = %v", r.Median())
	}
}

func TestRollingMedianPartialWindow(t *testing.T) {
	r := NewRollingMedian(10)
	r.Add(5)
	r.Add(7)
	if r.Median() != 6 {
		t.Fatalf("median of two = %v", r.Median())
	}
	if NewRollingMedian(0).Len() != 0 {
		t.Fatal("size-0 window should clamp to 1")
	}
}

func TestRollingMedianRobustToOutlier(t *testing.T) {
	// The property the firewall experiment relies on: one 4000ms outlier
	// in a 100-sample window barely moves median/MAD, while it would
	// shift a mean noticeably.
	r := NewRollingMedian(100)
	var w Welford
	for i := 0; i < 99; i++ {
		r.Add(150)
		w.Add(150)
	}
	r.Add(4000)
	w.Add(4000)
	if r.Median() != 150 {
		t.Fatalf("median moved to %v", r.Median())
	}
	if w.Mean() < 185 {
		t.Fatalf("mean should have been dragged: %v", w.Mean())
	}
}

func TestReservoirExactWhenSmall(t *testing.T) {
	r := NewReservoir(100, 42)
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	if r.Quantile(0) != 1 || r.Quantile(1) != 100 {
		t.Fatalf("extrema: %v..%v", r.Quantile(0), r.Quantile(1))
	}
	if q := r.Quantile(0.5); math.Abs(q-50.5) > 0.01 {
		t.Fatalf("median = %v", q)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Sampling 1k from 100k uniform values: the sample mean must be near
	// the stream mean.
	r := NewReservoir(1000, 99)
	for i := 0; i < 100000; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != 100000 {
		t.Fatalf("seen = %d", r.Seen())
	}
	mean := r.Quantile(0.5)
	if math.Abs(mean-50000) > 5000 {
		t.Fatalf("reservoir median %v too far from 50000", mean)
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(10, 0)
	if r.Quantile(0.5) != 0 {
		t.Fatal("empty reservoir quantile")
	}
}

func BenchmarkLatencyHistAdd(b *testing.B) {
	h := NewLatencyHist()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(int64(i)%1000000 + 1)
	}
}

func BenchmarkLatencyHistQuantile(b *testing.B) {
	h := NewLatencyHist()
	for i := int64(0); i < 100000; i++ {
		h.Add(i%1000000 + 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Add(float64(i))
	}
}

func BenchmarkRollingMedian(b *testing.B) {
	r := NewRollingMedian(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(float64(i % 1000))
		if i%128 == 0 {
			_ = r.Median()
		}
	}
}
