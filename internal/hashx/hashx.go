// Package hashx holds tiny allocation-free hash helpers shared by the hot
// paths (stdlib hash/fnv works through a heap-allocated hash.Hash32, which
// the per-measurement paths cannot afford).
package hashx

// FNV1a32 is the 32-bit FNV-1a hash of s. Used to partition series across
// TSDB lock stripes and measurements across sink workers.
func FNV1a32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// FNV1a32Bytes is FNV1a32 over a byte slice, for hot paths that build keys
// in a reusable scratch buffer and must not materialize a string just to
// hash it. Produces the same hash as FNV1a32 on equal bytes.
func FNV1a32Bytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}

// FNV1a64 is the 64-bit FNV-1a hash of b, for consumers that need the
// wider state space (the sketch tier derives per-row count-min indexes
// from one 64-bit flow hash).
func FNV1a64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}
