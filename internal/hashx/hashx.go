// Package hashx holds tiny allocation-free hash helpers shared by the hot
// paths (stdlib hash/fnv works through a heap-allocated hash.Hash32, which
// the per-measurement paths cannot afford).
package hashx

// FNV1a32 is the 32-bit FNV-1a hash of s. Used to partition series across
// TSDB lock stripes and measurements across sink workers.
func FNV1a32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
