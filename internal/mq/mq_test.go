package mq

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPubSubBasic(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, err := b.Subscribe("latency.", 16)
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(Message{Topic: "latency.v4", Payload: []byte("a")})
	b.Publish(Message{Topic: "stats.port", Payload: []byte("b")}) // filtered out
	b.Publish(Message{Topic: "latency.v6", Payload: []byte("c")})

	got := []string{}
	for i := 0; i < 2; i++ {
		select {
		case m := <-sub.C():
			got = append(got, m.Topic)
		case <-time.After(time.Second):
			t.Fatal("timeout")
		}
	}
	if got[0] != "latency.v4" || got[1] != "latency.v6" {
		t.Fatalf("got %v", got)
	}
	select {
	case m := <-sub.C():
		t.Fatalf("unexpected message %v", m.Topic)
	default:
	}
}

func TestEmptyPrefixMatchesAll(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, _ := b.Subscribe("", 4)
	b.Publish(Message{Topic: "x"})
	b.Publish(Message{Topic: "y"})
	if len(sub.ch) != 2 {
		t.Fatalf("queued %d", len(sub.ch))
	}
}

func TestHWMDropsInsteadOfBlocking(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, _ := b.Subscribe("", 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			b.Publish(Message{Topic: "t", Payload: []byte{byte(i)}})
		}
	}()
	select {
	case <-done: // must not block even though nobody drains
	case <-time.After(2 * time.Second):
		t.Fatal("publisher blocked on a slow subscriber")
	}
	if sub.Dropped() != 98 {
		t.Fatalf("dropped = %d, want 98", sub.Dropped())
	}
	pub, dropped := b.Stats()
	if pub != 100 || dropped != 98 {
		t.Fatalf("bus stats = %d published, %d dropped", pub, dropped)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, _ := b.Subscribe("", 4)
	sub.Close()
	sub.Close() // idempotent
	b.Publish(Message{Topic: "t"})
	if _, ok := <-sub.C(); ok {
		t.Fatal("received on closed subscription")
	}
}

func TestBusCloseClosesSubscribers(t *testing.T) {
	b := NewBus()
	sub, _ := b.Subscribe("", 4)
	b.Close()
	b.Close() // idempotent
	if _, ok := <-sub.C(); ok {
		t.Fatal("subscription channel not closed")
	}
	if _, err := b.Subscribe("", 1); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := NewBus()
	defer b.Close()
	sub, _ := b.Subscribe("", 1<<16)
	var wg sync.WaitGroup
	const perPub = 1000
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				b.Publish(Message{Topic: fmt.Sprintf("pub%d", p)})
			}
		}(p)
	}
	wg.Wait()
	if len(sub.ch) != 8*perPub {
		t.Fatalf("received %d, want %d", len(sub.ch), 8*perPub)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := func(topic string, payload []byte) bool {
		if len(topic) > 1000 {
			topic = topic[:1000]
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, Message{Topic: topic, Payload: payload}); err != nil {
			return false
		}
		m, err := readFrame(&frameReader{r: &buf})
		if err != nil {
			return false
		}
		return m.Topic == topic && bytes.Equal(m.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	var buf bytes.Buffer
	// uvarint topic length of 1GB
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x04, 0x00})
	if _, err := readFrame(&frameReader{r: &buf}); err != ErrFrameTooBig {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPTransport(t *testing.T) {
	b := NewBus()
	defer b.Close()
	pub, err := NewTCPPublisher(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	sub, err := DialTCP(pub.Addr().String(), "latency.")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Give the publisher a moment to register the subscription.
	time.Sleep(50 * time.Millisecond)

	b.Publish(Message{Topic: "stats.x", Payload: []byte("no")})
	b.Publish(Message{Topic: "latency.v4", Payload: []byte("yes")})

	type result struct {
		m   Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, err := sub.Recv()
		ch <- result{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.m.Topic != "latency.v4" || string(r.m.Payload) != "yes" {
			t.Fatalf("got %q %q", r.m.Topic, r.m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for TCP message")
	}
}

func TestTCPMultipleSubscribers(t *testing.T) {
	b := NewBus()
	defer b.Close()
	pub, err := NewTCPPublisher(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const n = 4
	subs := make([]*TCPSubscriber, n)
	for i := range subs {
		s, err := DialTCP(pub.Addr().String(), "")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		subs[i] = s
	}
	time.Sleep(50 * time.Millisecond)
	const msgs = 50
	for i := 0; i < msgs; i++ {
		b.Publish(Message{Topic: "m", Payload: []byte{byte(i)}})
	}
	for i, s := range subs {
		for j := 0; j < msgs; j++ {
			m, err := s.Recv()
			if err != nil {
				t.Fatalf("sub %d msg %d: %v", i, j, err)
			}
			if m.Payload[0] != byte(j) {
				t.Fatalf("sub %d msg %d: got %d", i, j, m.Payload[0])
			}
		}
	}
}

func TestTCPPublisherCloseUnblocksSubscribers(t *testing.T) {
	b := NewBus()
	defer b.Close()
	pub, err := NewTCPPublisher(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := DialTCP(pub.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	time.Sleep(20 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := sub.Recv()
		done <- err
	}()
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv succeeded after publisher close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber still blocked after publisher close")
	}
}

func BenchmarkPublishOneSubscriber(b *testing.B) {
	bus := NewBus()
	defer bus.Close()
	sub, _ := bus.Subscribe("", 1<<20)
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(Message{Topic: "latency.v4", Payload: payload})
		if len(sub.ch) > 1<<19 {
			for len(sub.ch) > 0 {
				<-sub.ch
			}
		}
	}
}

func BenchmarkPublishFourSubscribers(b *testing.B) {
	bus := NewBus()
	defer bus.Close()
	for i := 0; i < 4; i++ {
		s, _ := bus.Subscribe("", 64)
		go func() {
			for range s.C() {
			}
		}()
	}
	payload := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(Message{Topic: "latency.v4", Payload: payload})
	}
}
