// Package mq is the ZeroMQ substitute: a topic-based PUB/SUB message bus
// that decouples Ruru's pipeline stages exactly the way the paper's ZeroMQ
// sockets do (§2: "zero-copy ZeroMQ sockets ... allowing efficient and fast
// interconnect of modules", including the ability to splice a filter module
// into the pipeline).
//
// Two transports are provided:
//
//   - inproc: in-process subscriptions backed by buffered channels — the
//     zero-copy path between the DPDK app and the analytics stage;
//   - tcp: length-prefixed frames over TCP for out-of-process subscribers
//     (the frontend bridge), with the same topic semantics.
//
// Semantics follow ZeroMQ PUB/SUB: publishers never block. Each subscriber
// has a high-water mark; when a subscriber's queue is full, messages for it
// are dropped and counted. Topic matching is prefix-based, like ZeroMQ
// subscription filters.
package mq

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
)

// Message is one published datum: a topic and an opaque payload.
type Message struct {
	Topic   string
	Payload []byte
}

// DefaultHWM is the default per-subscriber high-water mark.
const DefaultHWM = 8192

// Errors returned by the package.
var (
	ErrClosed      = errors.New("mq: closed")
	ErrFrameTooBig = errors.New("mq: frame exceeds limit")
)

// maxFrame bounds wire frames to protect TCP peers from corrupt lengths.
const maxFrame = 16 << 20

// Bus is an in-process PUB/SUB broker. Safe for concurrent use.
type Bus struct {
	mu     sync.RWMutex
	subs   map[*Subscription]struct{}
	closed bool

	published atomic.Uint64
	dropped   atomic.Uint64
}

// NewBus returns an empty broker.
func NewBus() *Bus {
	return &Bus{subs: make(map[*Subscription]struct{})}
}

// Subscription is one subscriber's queue.
type Subscription struct {
	bus    *Bus
	prefix string
	ch     chan Message
	once   sync.Once

	dropped atomic.Uint64
}

// Subscribe registers a subscriber for all topics with the given prefix
// ("" = everything). hwm ≤ 0 uses DefaultHWM.
func (b *Bus) Subscribe(prefix string, hwm int) (*Subscription, error) {
	if hwm <= 0 {
		hwm = DefaultHWM
	}
	s := &Subscription{bus: b, prefix: prefix, ch: make(chan Message, hwm)}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.subs[s] = struct{}{}
	return s, nil
}

// C returns the subscriber's receive channel. It is closed when the
// subscription (or the bus) is closed.
func (s *Subscription) C() <-chan Message { return s.ch }

// Dropped returns how many messages were discarded because this subscriber
// was over its high-water mark.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close unsubscribes. Safe to call twice.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.bus.mu.Lock()
		delete(s.bus.subs, s)
		s.bus.mu.Unlock()
		close(s.ch)
	})
}

// Publish delivers msg to every matching subscriber without blocking:
// subscribers at their HWM miss the message (counted on both sides).
// The payload is not copied; subscribers must treat it as read-only.
func (b *Bus) Publish(msg Message) {
	b.published.Add(1)
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return
	}
	for s := range b.subs {
		if !strings.HasPrefix(msg.Topic, s.prefix) {
			continue
		}
		select {
		case s.ch <- msg:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
}

// Stats returns (published, dropped) counters.
func (b *Bus) Stats() (published, dropped uint64) {
	return b.published.Load(), b.dropped.Load()
}

// Close shuts the bus and all subscriptions.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// --- Wire framing (TCP transport) ---

// writeFrame emits topic and payload with uvarint length prefixes.
func writeFrame(w io.Writer, msg Message) error {
	if len(msg.Topic) > maxFrame || len(msg.Payload) > maxFrame {
		return ErrFrameTooBig
	}
	var hdr [2 * binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(len(msg.Topic)))
	n += binary.PutUvarint(hdr[n:], uint64(len(msg.Payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, msg.Topic); err != nil {
		return err
	}
	_, err := w.Write(msg.Payload)
	return err
}

// readFrame reads one frame. The returned message owns its buffers.
func readFrame(r *frameReader) (Message, error) {
	tlen, err := binary.ReadUvarint(r)
	if err != nil {
		return Message{}, err
	}
	plen, err := binary.ReadUvarint(r)
	if err != nil {
		return Message{}, err
	}
	if tlen > maxFrame || plen > maxFrame {
		return Message{}, ErrFrameTooBig
	}
	buf := make([]byte, tlen+plen)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return Message{}, err
	}
	return Message{Topic: string(buf[:tlen]), Payload: buf[tlen:]}, nil
}

type frameReader struct {
	r io.Reader
	b [1]byte
}

func (f *frameReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(f.r, f.b[:]); err != nil {
		return 0, err
	}
	return f.b[0], nil
}

// WriteFrame writes one frame in the TCP transport's wire format (uvarint
// topic and payload lengths, then the bytes). It is the framing layer
// point-to-point protocols built on this transport reuse — the federation
// probe↔aggregator stream (internal/fed) speaks frames in both directions
// over one connection, unlike the one-way PUB/SUB endpoints below.
func WriteFrame(w io.Writer, msg Message) error { return writeFrame(w, msg) }

// FrameReader decodes the TCP transport's frames from a byte stream. Each
// returned Message owns its buffers. Not safe for concurrent use.
type FrameReader struct {
	fr frameReader
}

// NewFrameReader wraps r for frame-at-a-time reading.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{fr: frameReader{r: r}}
}

// Read blocks for the next frame. Oversized length prefixes fail with
// ErrFrameTooBig before any allocation is attempted.
func (r *FrameReader) Read() (Message, error) {
	return readFrame(&r.fr)
}

// --- TCP publisher endpoint ---

// TCPPublisher bridges a Bus onto a TCP listener: every remote subscriber
// receives the frames matching its requested prefix. Wire protocol: the
// subscriber sends one frame (topic = subscription prefix, empty payload),
// then receives frames forever.
type TCPPublisher struct {
	bus *Bus
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewTCPPublisher starts serving bus messages on addr (e.g. "127.0.0.1:0").
func NewTCPPublisher(bus *Bus, addr string) (*TCPPublisher, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &TCPPublisher{bus: bus, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the bound listen address.
func (p *TCPPublisher) Addr() net.Addr { return p.ln.Addr() }

func (p *TCPPublisher) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serve(conn)
	}
}

func (p *TCPPublisher) serve(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
		conn.Close()
	}()
	// Handshake: read the subscription prefix.
	hello, err := readFrame(&frameReader{r: conn})
	if err != nil {
		return
	}
	sub, err := p.bus.Subscribe(hello.Topic, 0)
	if err != nil {
		return
	}
	defer sub.Close()
	// Subscribers send nothing after the handshake; a read unblocking
	// means the peer hung up (or Close closed the conn). Closing the
	// subscription unblocks the send loop below.
	go func() {
		var scratch [1]byte
		for {
			if _, err := conn.Read(scratch[:]); err != nil {
				sub.Close()
				return
			}
		}
	}()
	// Frames go through a buffered writer flushed only when the
	// subscription queue is momentarily empty: a draining burst costs one
	// syscall per buffer-full instead of the three unbuffered conn.Writes
	// per frame (header, topic, payload) the old loop issued, while the
	// flush-on-idle keeps per-frame latency when traffic is sparse.
	bw := bufio.NewWriterSize(conn, 64<<10)
	for msg := range sub.C() {
		if err := writeFrame(bw, msg); err != nil {
			return
		}
		for drained := false; !drained; {
			select {
			case next, ok := <-sub.C():
				if !ok {
					bw.Flush()
					return
				}
				if err := writeFrame(bw, next); err != nil {
					return
				}
			default:
				drained = true
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops accepting, drops all remote subscribers and waits for the
// serving goroutines.
func (p *TCPPublisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	// Bus subscriptions of live conns close when their reads fail; wait.
	p.wg.Wait()
	return err
}

// --- TCP subscriber ---

// TCPSubscriber connects to a TCPPublisher and receives matching frames.
type TCPSubscriber struct {
	conn net.Conn
	fr   frameReader
}

// DialTCP connects and subscribes to the given topic prefix.
func DialTCP(addr, prefix string) (*TCPSubscriber, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, Message{Topic: prefix}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mq: subscribe handshake: %w", err)
	}
	return &TCPSubscriber{conn: conn, fr: frameReader{r: conn}}, nil
}

// Recv blocks for the next message.
func (s *TCPSubscriber) Recv() (Message, error) {
	return readFrame(&s.fr)
}

// Close closes the connection.
func (s *TCPSubscriber) Close() error { return s.conn.Close() }
