// Package nic implements the poll-mode packet I/O substrate that stands in
// for DPDK in this reproduction. It mirrors the parts of the DPDK dataplane
// Ruru's pipeline is built on:
//
//   - a Mempool of fixed-size packet buffers with explicit alloc/free
//     (rte_mempool / rte_mbuf),
//   - a Port with N receive queues fed through RSS (rte_eth_dev with an
//     RSS-configured rx queue set), and
//   - a burst receive API, RxBurst, the analogue of rte_eth_rx_burst.
//
// Traffic sources (the synthetic generator, the pcap replayer) inject frames
// with Port.Inject, which classifies them onto a queue by Toeplitz hash of
// the 4-tuple — bit-exact with what NIC hardware RSS would do — and hands the
// buffer to that queue's SPSC ring. Worker cores poll their queue with
// RxBurst and return buffers to the pool when done. When a queue overflows,
// the frame is dropped and counted in Stats.Imissed, the same back-pressure
// signal a real NIC exposes.
package nic

import (
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"

	"ruru/internal/pkt"
	"ruru/internal/ring"
	"ruru/internal/rss"
)

// Errors returned by the package.
var (
	ErrPoolExhausted = errors.New("nic: mempool exhausted")
	ErrFrameTooBig   = errors.New("nic: frame exceeds buffer size")
	ErrBadQueue      = errors.New("nic: queue index out of range")
)

// Buf is a packet buffer: the rte_mbuf analogue. Data is a fixed-capacity
// slice owned by the Mempool; Len bytes of it are valid. Timestamp is the
// capture timestamp in nanoseconds on the source's clock (sub-microsecond
// resolution, as in the paper). RSSHash is the Toeplitz hash computed at
// injection, which the measurement engine reuses to index its flow tables.
type Buf struct {
	Data      []byte
	Len       int
	Timestamp int64
	RSSHash   uint32

	pool *Mempool
}

// Bytes returns the valid frame contents.
func (b *Buf) Bytes() []byte { return b.Data[:b.Len] }

// Free returns the buffer to its mempool. The buffer must not be used after
// Free. Double frees are detected by the pool in tests via accounting.
func (b *Buf) Free() { b.pool.put(b) }

// Mempool is a fixed-size pool of packet buffers. Allocation never touches
// the Go heap after construction: buffers circulate between the pool, the
// queues and the workers.
type Mempool struct {
	free    chan *Buf
	bufSize int
	size    int

	allocFail atomic.Uint64
}

// NewMempool creates a pool of n buffers of bufSize bytes each.
func NewMempool(n, bufSize int) *Mempool {
	p := &Mempool{
		free:    make(chan *Buf, n),
		bufSize: bufSize,
		size:    n,
	}
	backing := make([]byte, n*bufSize) // single allocation, like a hugepage arena
	for i := 0; i < n; i++ {
		p.free <- &Buf{
			Data: backing[i*bufSize : (i+1)*bufSize : (i+1)*bufSize],
			pool: p,
		}
	}
	return p
}

// Get allocates a buffer, or nil if the pool is exhausted (counted).
func (p *Mempool) Get() *Buf {
	select {
	case b := <-p.free:
		return b
	default:
		p.allocFail.Add(1)
		return nil
	}
}

func (p *Mempool) put(b *Buf) {
	b.Len = 0
	b.Timestamp = 0
	b.RSSHash = 0
	p.free <- b
}

// Size returns the pool capacity; Available the buffers currently free;
// AllocFailures the number of failed Gets.
func (p *Mempool) Size() int             { return p.size }
func (p *Mempool) Available() int        { return len(p.free) }
func (p *Mempool) BufSize() int          { return p.bufSize }
func (p *Mempool) AllocFailures() uint64 { return p.allocFail.Load() }

// Stats holds port-level counters matching the rte_eth_stats fields Ruru
// monitors.
type Stats struct {
	Ipackets uint64 // frames successfully enqueued
	Ibytes   uint64 // bytes successfully enqueued
	Imissed  uint64 // frames dropped: queue full
	Ierrors  uint64 // frames dropped: malformed (no parseable tuple)
	NoMbuf   uint64 // frames dropped: mempool exhausted
}

// PortConfig configures a Port.
type PortConfig struct {
	// Queues is the number of RX queues (≥1): the paper's per-core DPDK
	// receiver queues.
	Queues int
	// QueueDepth is the per-queue ring capacity (power of two).
	QueueDepth int
	// Pool provides packet buffers. Required.
	Pool *Mempool
	// Hasher computes the RSS hash. Defaults to the symmetric key,
	// matching Ruru's production configuration.
	Hasher *rss.Hasher
}

// Port is the receive side of the virtual NIC.
type Port struct {
	queues []*ring.Ring[*Buf]
	pool   *Mempool
	hasher *rss.Hasher

	ipackets atomic.Uint64
	ibytes   atomic.Uint64
	imissed  atomic.Uint64
	ierrors  atomic.Uint64
	nombuf   atomic.Uint64

	// scratch parser used only on the injection path (single producer).
	parser pkt.Parser
}

// NewPort creates a port with the given configuration.
func NewPort(cfg PortConfig) (*Port, error) {
	if cfg.Queues < 1 {
		return nil, fmt.Errorf("nic: need at least one queue, got %d", cfg.Queues)
	}
	if cfg.Pool == nil {
		return nil, errors.New("nic: PortConfig.Pool is required")
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = 4096
	}
	h := cfg.Hasher
	if h == nil {
		h = rss.NewSymmetric()
	}
	p := &Port{
		queues: make([]*ring.Ring[*Buf], cfg.Queues),
		pool:   cfg.Pool,
		hasher: h,
	}
	for i := range p.queues {
		r, err := ring.New[*Buf](depth)
		if err != nil {
			return nil, err
		}
		p.queues[i] = r
	}
	return p, nil
}

// NumQueues returns the number of RX queues.
func (p *Port) NumQueues() int { return len(p.queues) }

// Inject delivers one frame to the port as if it arrived on the wire at
// timestamp ts (nanoseconds). The frame is copied into a pool buffer,
// classified by RSS hash, and enqueued on the owning queue. Injection is
// single-producer: one traffic source goroutine per port.
func (p *Port) Inject(frame []byte, ts int64) {
	if len(frame) > p.pool.bufSize {
		p.ierrors.Add(1)
		return
	}
	var s pkt.Summary
	hash := uint32(0)
	if err := p.parser.Parse(frame, &s); err == nil {
		switch {
		case s.Decoded&pkt.LayerTCP != 0:
			hash = p.hasher.HashTuple(s.Src(), s.Dst(), s.TCP.SrcPort, s.TCP.DstPort)
		case s.Decoded&pkt.LayerUDP != 0:
			hash = p.hasher.HashTuple(s.Src(), s.Dst(), s.UDP.SrcPort, s.UDP.DstPort)
		case s.Decoded&(pkt.LayerIPv4|pkt.LayerIPv6) != 0:
			hash = p.hasher.HashTuple(s.Src(), s.Dst(), 0, 0)
		}
	}
	b := p.pool.Get()
	if b == nil {
		p.nombuf.Add(1)
		return
	}
	b.Len = copy(b.Data, frame)
	b.Timestamp = ts
	b.RSSHash = hash
	q := rss.Queue(hash, len(p.queues))
	if !p.queues[q].Push(b) {
		p.imissed.Add(1)
		b.Free()
		return
	}
	p.ipackets.Add(1)
	p.ibytes.Add(uint64(len(frame)))
}

// InjectTuple is a fast-path injection for sources that already know the
// frame's 4-tuple (the synthetic generator): it skips re-parsing the frame.
func (p *Port) InjectTuple(frame []byte, ts int64, src, dst netip.Addr, srcPort, dstPort uint16) {
	if len(frame) > p.pool.bufSize {
		p.ierrors.Add(1)
		return
	}
	hash := p.hasher.HashTuple(src, dst, srcPort, dstPort)
	b := p.pool.Get()
	if b == nil {
		p.nombuf.Add(1)
		return
	}
	b.Len = copy(b.Data, frame)
	b.Timestamp = ts
	b.RSSHash = hash
	q := rss.Queue(hash, len(p.queues))
	if !p.queues[q].Push(b) {
		p.imissed.Add(1)
		b.Free()
		return
	}
	p.ipackets.Add(1)
	p.ibytes.Add(uint64(len(frame)))
}

// InjectPreclassified delivers a frame whose RSS hash was computed by the
// caller — the hardware-RSS model, where classification happened in NIC
// silicon and software only sees the hash in the descriptor. No parsing, no
// hashing: buffer copy and enqueue only. Single producer per port.
func (p *Port) InjectPreclassified(frame []byte, ts int64, hash uint32) {
	if len(frame) > p.pool.bufSize {
		p.ierrors.Add(1)
		return
	}
	b := p.pool.Get()
	if b == nil {
		p.nombuf.Add(1)
		return
	}
	b.Len = copy(b.Data, frame)
	b.Timestamp = ts
	b.RSSHash = hash
	q := rss.Queue(hash, len(p.queues))
	if !p.queues[q].Push(b) {
		p.imissed.Add(1)
		b.Free()
		return
	}
	p.ipackets.Add(1)
	p.ibytes.Add(uint64(len(frame)))
}

// RxBurst polls queue q for up to len(bufs) packets, returning the count.
// This is the rte_eth_rx_burst analogue; workers call it in a poll loop.
// The caller owns returned buffers and must Free them.
func (p *Port) RxBurst(q int, bufs []*Buf) (int, error) {
	if q < 0 || q >= len(p.queues) {
		return 0, ErrBadQueue
	}
	return p.queues[q].PopBurst(bufs), nil
}

// QueueLen returns the instantaneous depth of queue q (for monitoring).
func (p *Port) QueueLen(q int) int {
	if q < 0 || q >= len(p.queues) {
		return 0
	}
	return p.queues[q].Len()
}

// Stats returns a snapshot of the port counters.
func (p *Port) Stats() Stats {
	return Stats{
		Ipackets: p.ipackets.Load(),
		Ibytes:   p.ibytes.Load(),
		Imissed:  p.imissed.Load(),
		Ierrors:  p.ierrors.Load(),
		NoMbuf:   p.nombuf.Load(),
	}
}
