// Package nic implements the poll-mode packet I/O substrate that stands in
// for DPDK in this reproduction. It mirrors the parts of the DPDK dataplane
// Ruru's pipeline is built on:
//
//   - a Mempool of fixed-size packet buffers with explicit alloc/free
//     (rte_mempool / rte_mbuf),
//   - a Port with N receive queues fed through RSS (rte_eth_dev with an
//     RSS-configured rx queue set), and
//   - burst I/O: RxBurst (rte_eth_rx_burst) on the consumer side and
//     InjectBurst on the producer side, amortizing per-packet ring
//     synchronization over whole bursts.
//
// Traffic sources (the synthetic generator, the pcap replayer) inject frames
// with Port.Inject/InjectBurst, which classify them onto a queue by Toeplitz
// hash of the 4-tuple — bit-exact with what NIC hardware RSS would do — and
// hand the buffer to that queue's ring. Worker cores poll their queue with
// RxBurst and return buffers to the pool when done.
//
// What happens when a queue is full is the port's overflow policy:
//
//   - Drop (default) is NIC-faithful: the frame is lost and counted in
//     Stats.Imissed exactly once, the same back-pressure signal a real NIC
//     exposes when software can't keep up with the wire.
//   - Block makes injection wait (spin → yield → sleep) for queue space, up
//     to an optional deadline — the right policy for lossless sources such
//     as pcap replay or correctness harnesses, where the source can be
//     paced by backpressure instead of silently corrupting the measurement
//     distribution.
//
// Queues are SPSC rings by default (one worker per queue, the paper's
// topology). PortConfig.MultiConsumer switches them to multi-consumer-safe
// CAS rings so several workers may drain one queue (work stealing, elastic
// worker pools).
package nic

import (
	"errors"
	"fmt"
	"net/netip"
	"runtime"
	"sync/atomic"
	"time"

	"ruru/internal/pkt"
	"ruru/internal/ring"
	"ruru/internal/rss"
)

// Errors returned by the package.
var (
	ErrPoolExhausted = errors.New("nic: mempool exhausted")
	ErrFrameTooBig   = errors.New("nic: frame exceeds buffer size")
	ErrBadQueue      = errors.New("nic: queue index out of range")
)

// Buf is a packet buffer: the rte_mbuf analogue. Data is a fixed-capacity
// slice owned by the Mempool; Len bytes of it are valid. Timestamp is the
// capture timestamp in nanoseconds on the source's clock (sub-microsecond
// resolution, as in the paper). RSSHash is the Toeplitz hash computed at
// injection, which the measurement engine reuses to index its flow tables.
type Buf struct {
	Data      []byte
	Len       int
	Timestamp int64
	RSSHash   uint32

	pool *Mempool
}

// Bytes returns the valid frame contents.
func (b *Buf) Bytes() []byte { return b.Data[:b.Len] }

// Free returns the buffer to its mempool. The buffer must not be used after
// Free. Double frees are detected by the pool in tests via accounting.
func (b *Buf) Free() { b.pool.put(b) }

// Mempool is a fixed-size pool of packet buffers. Allocation never touches
// the Go heap after construction: buffers circulate between the pool, the
// queues and the workers.
type Mempool struct {
	free    chan *Buf
	bufSize int
	size    int

	allocFail atomic.Uint64
}

// NewMempool creates a pool of n buffers of bufSize bytes each.
func NewMempool(n, bufSize int) *Mempool {
	p := &Mempool{
		free:    make(chan *Buf, n),
		bufSize: bufSize,
		size:    n,
	}
	backing := make([]byte, n*bufSize) // single allocation, like a hugepage arena
	for i := 0; i < n; i++ {
		p.free <- &Buf{
			Data: backing[i*bufSize : (i+1)*bufSize : (i+1)*bufSize],
			pool: p,
		}
	}
	return p
}

// Get allocates a buffer, or nil if the pool is exhausted (counted).
func (p *Mempool) Get() *Buf {
	select {
	case b := <-p.free:
		return b
	default:
		p.allocFail.Add(1)
		return nil
	}
}

func (p *Mempool) put(b *Buf) {
	b.Len = 0
	b.Timestamp = 0
	b.RSSHash = 0
	p.free <- b
}

// Size returns the pool capacity; Available the buffers currently free;
// AllocFailures the number of failed Gets.
func (p *Mempool) Size() int             { return p.size }
func (p *Mempool) Available() int        { return len(p.free) }
func (p *Mempool) BufSize() int          { return p.bufSize }
func (p *Mempool) AllocFailures() uint64 { return p.allocFail.Load() }

// OverflowPolicy selects what injection does when the target queue is full.
type OverflowPolicy uint8

const (
	// Drop loses the frame and counts it in Imissed exactly once — the
	// behaviour of real NIC hardware when RX descriptors run out.
	Drop OverflowPolicy = iota
	// Block waits for queue space (spin → yield → sleep), bounded by
	// PortConfig.BlockTimeout when set. Lossless while the deadline holds;
	// frames that still can't be placed at the deadline are dropped and
	// counted once.
	Block
)

// String names the policy for logs and flags.
func (o OverflowPolicy) String() string {
	if o == Block {
		return "block"
	}
	return "drop"
}

// InjectStatus reports the fate of one injected frame.
type InjectStatus uint8

const (
	// InjectOK: the frame was enqueued.
	InjectOK InjectStatus = iota
	// InjectDropped: the queue was full (Drop policy) or stayed full past
	// the block deadline. Counted in Imissed.
	InjectDropped
	// InjectNoBuf: the mempool was exhausted. Counted in NoMbuf.
	InjectNoBuf
	// InjectErrFrame: the frame is oversize or unusable — permanent; do
	// not retry. Counted in Ierrors.
	InjectErrFrame
)

// OK reports whether the frame was enqueued.
func (s InjectStatus) OK() bool { return s == InjectOK }

// Retryable reports whether re-injecting the same frame can succeed once
// the pipeline drains (queue-full and pool-exhausted are transient;
// oversize frames are not).
func (s InjectStatus) Retryable() bool { return s == InjectDropped || s == InjectNoBuf }

// Frame is one wire frame handed to InjectBurst: the data plus its capture
// timestamp.
type Frame struct {
	Data []byte
	TS   int64
}

// Stats holds port-level counters matching the rte_eth_stats fields Ruru
// monitors.
type Stats struct {
	Ipackets uint64 // frames successfully enqueued
	Ibytes   uint64 // bytes successfully enqueued
	Imissed  uint64 // frames dropped: queue full (counted once per frame)
	Ierrors  uint64 // frames dropped: oversize/malformed
	NoMbuf   uint64 // frames dropped: mempool exhausted
}

// QueueStats is the per-RX-queue view: counters plus ring introspection
// (the DPDK rte_eth_dev per-queue stats plus ring watermarks).
type QueueStats struct {
	Ipackets  uint64 // frames enqueued on this queue
	Ibytes    uint64 // bytes enqueued on this queue
	Imissed   uint64 // frames dropped with this queue full
	Depth     int    // instantaneous ring occupancy
	Watermark int    // highest occupancy ever observed at enqueue
	Capacity  int    // ring capacity
}

// queueCounters is the hot per-queue counter block, cache-line padded so
// queues injected back-to-back don't false-share.
type queueCounters struct {
	ipackets atomic.Uint64
	ibytes   atomic.Uint64
	imissed  atomic.Uint64
	_        [40]byte
}

// PortConfig configures a Port.
type PortConfig struct {
	// Queues is the number of RX queues (≥1): the paper's per-core DPDK
	// receiver queues.
	Queues int
	// QueueDepth is the per-queue ring capacity (power of two).
	QueueDepth int
	// Pool provides packet buffers. Required.
	Pool *Mempool
	// Hasher computes the RSS hash. Defaults to the symmetric key,
	// matching Ruru's production configuration.
	Hasher *rss.Hasher
	// Policy selects the overflow behaviour (default Drop, NIC-faithful).
	Policy OverflowPolicy
	// BlockTimeout bounds how long Block-policy injection waits for queue
	// space. Zero means wait indefinitely.
	BlockTimeout time.Duration
	// MultiConsumer switches the queue rings to the CAS-based
	// multi-consumer implementation, allowing several workers to drain
	// the same queue. The default SPSC rings support exactly one
	// consumer per queue.
	MultiConsumer bool
}

// Port is the receive side of the virtual NIC.
type Port struct {
	queues []ring.Buffer[*Buf]
	qstats []queueCounters
	pool   *Mempool
	hasher *rss.Hasher

	policy       OverflowPolicy
	blockTimeout time.Duration
	stopped      atomic.Bool

	ierrors atomic.Uint64
	nombuf  atomic.Uint64

	// scratch used only on the injection path (single producer per port).
	parser pkt.Parser
	stage  [][]*Buf // per-queue staging for InjectBurst
}

// NewPort creates a port with the given configuration.
func NewPort(cfg PortConfig) (*Port, error) {
	if cfg.Queues < 1 {
		return nil, fmt.Errorf("nic: need at least one queue, got %d", cfg.Queues)
	}
	if cfg.Pool == nil {
		return nil, errors.New("nic: PortConfig.Pool is required")
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = 4096
	}
	h := cfg.Hasher
	if h == nil {
		h = rss.NewSymmetric()
	}
	p := &Port{
		queues:       make([]ring.Buffer[*Buf], cfg.Queues),
		qstats:       make([]queueCounters, cfg.Queues),
		pool:         cfg.Pool,
		hasher:       h,
		policy:       cfg.Policy,
		blockTimeout: cfg.BlockTimeout,
		stage:        make([][]*Buf, cfg.Queues),
	}
	for i := range p.queues {
		var (
			r   ring.Buffer[*Buf]
			err error
		)
		if cfg.MultiConsumer {
			r, err = ring.NewMP[*Buf](depth)
		} else {
			r, err = ring.New[*Buf](depth)
		}
		if err != nil {
			return nil, err
		}
		p.queues[i] = r
	}
	return p, nil
}

// NumQueues returns the number of RX queues.
func (p *Port) NumQueues() int { return len(p.queues) }

// Policy returns the configured overflow policy.
func (p *Port) Policy() OverflowPolicy { return p.policy }

// Stop aborts in-progress and future Block-policy waits: blocked
// injections give up immediately (their frames are dropped and counted
// once, like a deadline expiry). Use it to unwedge a lossless source at
// shutdown, when the consumers that would have made room are gone.
func (p *Port) Stop() { p.stopped.Store(true) }

// classify computes the frame's RSS hash the way NIC silicon would.
func (p *Port) classify(frame []byte) uint32 {
	var s pkt.Summary
	if err := p.parser.Parse(frame, &s); err != nil {
		return 0
	}
	switch {
	case s.Decoded&pkt.LayerTCP != 0:
		return p.hasher.HashTuple(s.Src(), s.Dst(), s.TCP.SrcPort, s.TCP.DstPort)
	case s.Decoded&pkt.LayerUDP != 0:
		return p.hasher.HashTuple(s.Src(), s.Dst(), s.UDP.SrcPort, s.UDP.DstPort)
	case s.Decoded&(pkt.LayerIPv4|pkt.LayerIPv6) != 0:
		return p.hasher.HashTuple(s.Src(), s.Dst(), 0, 0)
	}
	return 0
}

// blockWait is the Block policy's wait loop: it retries try on the
// backoff ladder until it succeeds, the port is stopped, or the
// BlockTimeout deadline (when configured) passes. Reports try's success.
func (p *Port) blockWait(try func() bool) bool {
	if p.stopped.Load() {
		return false
	}
	var deadline time.Time
	if p.blockTimeout > 0 {
		deadline = time.Now().Add(p.blockTimeout)
	}
	var bo backoff
	for {
		bo.wait()
		if try() {
			return true
		}
		if p.stopped.Load() {
			return false
		}
		if p.blockTimeout > 0 && time.Now().After(deadline) {
			return false
		}
	}
}

// tryGetBuf is a non-counting pool allocation attempt (the injection
// paths count a failure only on final give-up).
func (p *Port) tryGetBuf() *Buf {
	select {
	case b := <-p.pool.free:
		return b
	default:
		return nil
	}
}

// fill copies a frame into a pool buffer, or reports why it couldn't.
// Under the Block policy an exhausted mempool is waited out like a full
// queue (buffers come back as workers free them), bounded by BlockTimeout,
// so a lossless source never needs a caller-side retry loop. onStarve,
// when non-nil, runs once before blocking — the burst path uses it to
// flush its staged buffers, which would otherwise deadlock the wait (the
// pool's missing buffers sitting in our own unpushed stage).
func (p *Port) fill(frame []byte, ts int64, hash uint32, onStarve func()) (*Buf, InjectStatus) {
	if len(frame) > p.pool.bufSize {
		p.ierrors.Add(1)
		return nil, InjectErrFrame
	}
	b := p.tryGetBuf()
	if b == nil && p.policy == Block {
		if onStarve != nil {
			onStarve()
		}
		p.blockWait(func() bool {
			b = p.tryGetBuf()
			return b != nil
		})
	}
	if b == nil {
		p.pool.allocFail.Add(1)
		p.nombuf.Add(1)
		return nil, InjectNoBuf
	}
	b.Len = copy(b.Data, frame)
	b.Timestamp = ts
	b.RSSHash = hash
	return b, InjectOK
}

// backoff is the wait ladder used while blocking on a full queue:
// hot spin first, then cooperative yields, then exponentially growing
// sleeps capped at 64µs — long enough to let a stalled worker run,
// short enough that drain latency stays in the microsecond regime.
type backoff struct{ n int }

func (b *backoff) wait() {
	switch {
	case b.n < 64:
		// spin: the consumer is likely mid-burst on another core
	case b.n < 128:
		runtime.Gosched()
	default:
		shift := b.n - 128
		if shift > 6 {
			shift = 6
		}
		time.Sleep(time.Duration(1<<uint(shift)) * time.Microsecond)
	}
	b.n++
}

// enqueue places one filled buffer on queue q, applying the overflow
// policy. It owns accounting for both outcomes.
func (p *Port) enqueue(q int, b *Buf) InjectStatus {
	nbytes := uint64(b.Len)
	ok := p.queues[q].Push(b)
	if !ok && p.policy == Block {
		ok = p.blockWait(func() bool { return p.queues[q].Push(b) })
	}
	if ok {
		p.qstats[q].ipackets.Add(1)
		p.qstats[q].ibytes.Add(nbytes)
		return InjectOK
	}
	p.qstats[q].imissed.Add(1)
	b.Free()
	return InjectDropped
}

// injectOne is the single-frame injection tail shared by the Inject
// variants: copy into a pool buffer, enqueue on the hash's queue.
func (p *Port) injectOne(frame []byte, ts int64, hash uint32) InjectStatus {
	b, st := p.fill(frame, ts, hash, nil)
	if st != InjectOK {
		return st
	}
	return p.enqueue(rss.Queue(hash, len(p.queues)), b)
}

// Inject delivers one frame to the port as if it arrived on the wire at
// timestamp ts (nanoseconds). The frame is copied into a pool buffer,
// classified by RSS hash, and enqueued on the owning queue. Injection is
// single-producer: one traffic source goroutine per port.
func (p *Port) Inject(frame []byte, ts int64) InjectStatus {
	return p.injectOne(frame, ts, p.classify(frame))
}

// InjectTuple is a fast-path injection for sources that already know the
// frame's 4-tuple (the synthetic generator): it skips re-parsing the frame.
func (p *Port) InjectTuple(frame []byte, ts int64, src, dst netip.Addr, srcPort, dstPort uint16) InjectStatus {
	return p.injectOne(frame, ts, p.hasher.HashTuple(src, dst, srcPort, dstPort))
}

// InjectPreclassified delivers a frame whose RSS hash was computed by the
// caller — the hardware-RSS model, where classification happened in NIC
// silicon and software only sees the hash in the descriptor. No parsing, no
// hashing: buffer copy and enqueue only. Single producer per port.
func (p *Port) InjectPreclassified(frame []byte, ts int64, hash uint32) InjectStatus {
	return p.injectOne(frame, ts, hash)
}

// InjectBurst delivers a batch of frames in one call: every frame is
// classified and copied into a pool buffer, the batch is grouped by target
// queue, and each queue receives its group with a single burst enqueue —
// one synchronization round-trip per queue per burst instead of one per
// frame. Returns the number of frames enqueued.
//
// Frames that can't be placed follow the overflow policy: with Drop they
// are lost and counted (Imissed/NoMbuf/Ierrors) exactly once each; with
// Block the call waits for queue space up to BlockTimeout. Single producer
// per port, like all injection paths.
func (p *Port) InjectBurst(frames []Frame) int {
	return p.injectStaged(frames, func(i int) uint32 {
		return p.classify(frames[i].Data)
	})
}

// InjectPreclassifiedBurst is InjectBurst for sources that already know
// each frame's RSS hash (hashes[i] belongs to frames[i]) — the
// hardware-RSS model at burst granularity. Extra hashes are ignored;
// missing ones default to 0.
func (p *Port) InjectPreclassifiedBurst(frames []Frame, hashes []uint32) int {
	return p.injectStaged(frames, func(i int) uint32 {
		if i < len(hashes) {
			return hashes[i]
		}
		return 0
	})
}

// injectStaged is the burst-injection body shared by InjectBurst and
// InjectPreclassifiedBurst: copy each frame into a pool buffer, stage per
// target queue in arrival order, burst-push each queue's group. When the
// mempool runs dry mid-burst under the Block policy, the stage is flushed
// first — those buffers are exactly what the pool is missing, and blocking
// while holding them would deadlock against ourselves.
func (p *Port) injectStaged(frames []Frame, hashOf func(i int) uint32) int {
	for q := range p.stage {
		p.stage[q] = p.stage[q][:0]
	}
	accepted := 0
	flushAll := func() {
		for q := range p.stage {
			accepted += p.flushQueue(q, p.stage[q])
			p.stage[q] = p.stage[q][:0]
		}
	}
	for i := range frames {
		f := &frames[i]
		hash := hashOf(i)
		b, st := p.fill(f.Data, f.TS, hash, flushAll)
		if st != InjectOK {
			continue // already counted
		}
		q := rss.Queue(hash, len(p.queues))
		p.stage[q] = append(p.stage[q], b)
	}
	flushAll()
	return accepted
}

// flushQueue burst-pushes staged buffers onto queue q under the overflow
// policy, returning how many were enqueued. Byte totals are tallied BEFORE
// publishing: once pushed, a buffer belongs to the consumer, which may
// free (and zero) it concurrently.
func (p *Port) flushQueue(q int, bufs []*Buf) int {
	if len(bufs) == 0 {
		return 0
	}
	var nbytes uint64
	for _, b := range bufs {
		nbytes += uint64(b.Len)
	}
	n := p.queues[q].PushBurst(bufs)
	rest := bufs[n:]
	if len(rest) > 0 && p.policy == Block {
		p.blockWait(func() bool {
			k := p.queues[q].PushBurst(rest)
			n += k
			rest = rest[k:]
			return len(rest) == 0
		})
	}
	if len(rest) > 0 {
		p.qstats[q].imissed.Add(uint64(len(rest)))
		for _, b := range rest {
			nbytes -= uint64(b.Len) // still ours: safe to read
			b.Free()
		}
	}
	p.qstats[q].ipackets.Add(uint64(n))
	p.qstats[q].ibytes.Add(nbytes)
	return n
}

// BurstStager batches frames for InjectBurst on behalf of sources that
// reuse their read buffer between packets (the generator, the pcap
// reader): each Add copies the frame into a per-slot staging arena and a
// full batch is injected in one call. Shared by the lossless drive paths
// so their batching semantics can't drift apart.
type BurstStager struct {
	port     *Port
	staging  [][]byte
	frames   []Frame
	accepted int
}

// NewBurstStager creates a stager that flushes every burst frames
// (default 64).
func NewBurstStager(port *Port, burst int) *BurstStager {
	if burst <= 0 {
		burst = 64
	}
	return &BurstStager{
		port:    port,
		staging: make([][]byte, burst),
		frames:  make([]Frame, 0, burst),
	}
}

// Add copies one frame into the batch, injecting the batch when full.
func (s *BurstStager) Add(data []byte, ts int64) {
	i := len(s.frames)
	if cap(s.staging[i]) < len(data) {
		s.staging[i] = make([]byte, len(data))
	}
	s.staging[i] = s.staging[i][:len(data)]
	copy(s.staging[i], data)
	s.frames = append(s.frames, Frame{Data: s.staging[i], TS: ts})
	if len(s.frames) == cap(s.frames) {
		s.Flush()
	}
}

// Flush injects any pending frames immediately (call before pacing sleeps
// and at end of stream).
func (s *BurstStager) Flush() {
	if len(s.frames) > 0 {
		s.accepted += s.port.InjectBurst(s.frames)
		s.frames = s.frames[:0]
	}
}

// Accepted returns the total number of frames the port has accepted.
func (s *BurstStager) Accepted() int { return s.accepted }

// RxBurst polls queue q for up to len(bufs) packets, returning the count.
// This is the rte_eth_rx_burst analogue; workers call it in a poll loop.
// The caller owns returned buffers and must Free them. With the default
// SPSC rings exactly one worker may poll a given queue; MultiConsumer
// ports allow any number.
func (p *Port) RxBurst(q int, bufs []*Buf) (int, error) {
	if q < 0 || q >= len(p.queues) {
		return 0, ErrBadQueue
	}
	return p.queues[q].PopBurst(bufs), nil
}

// QueueLen returns the instantaneous depth of queue q (for monitoring).
func (p *Port) QueueLen(q int) int {
	if q < 0 || q >= len(p.queues) {
		return 0
	}
	return p.queues[q].Len()
}

// QueueStats returns the per-queue counter and ring-introspection snapshot
// for queue q (zero value for out-of-range q).
func (p *Port) QueueStats(q int) QueueStats {
	if q < 0 || q >= len(p.queues) {
		return QueueStats{}
	}
	c := &p.qstats[q]
	r := p.queues[q]
	return QueueStats{
		Ipackets:  c.ipackets.Load(),
		Ibytes:    c.ibytes.Load(),
		Imissed:   c.imissed.Load(),
		Depth:     r.Len(),
		Watermark: r.Watermark(),
		Capacity:  r.Cap(),
	}
}

// Stats returns a snapshot of the port counters (per-queue counters summed).
func (p *Port) Stats() Stats {
	s := Stats{
		Ierrors: p.ierrors.Load(),
		NoMbuf:  p.nombuf.Load(),
	}
	for i := range p.qstats {
		s.Ipackets += p.qstats[i].ipackets.Load()
		s.Ibytes += p.qstats[i].ibytes.Load()
		s.Imissed += p.qstats[i].imissed.Load()
	}
	return s
}
