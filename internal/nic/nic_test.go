package nic

import (
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ruru/internal/pkt"
	"ruru/internal/rss"
)

func buildSYN(t testing.TB, src, dst string, sp, dp uint16) []byte {
	t.Helper()
	spec := &pkt.TCPFrameSpec{
		SrcMAC: pkt.MAC{1, 1, 1, 1, 1, 1}, DstMAC: pkt.MAC{2, 2, 2, 2, 2, 2},
		Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
		SrcPort: sp, DstPort: dp, Flags: pkt.TCPSyn, Window: 65535,
	}
	buf := make([]byte, 128)
	n, err := pkt.BuildTCPFrame(buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

func TestMempoolAccounting(t *testing.T) {
	p := NewMempool(4, 256)
	if p.Size() != 4 || p.Available() != 4 || p.BufSize() != 256 {
		t.Fatalf("pool geometry: %d/%d/%d", p.Size(), p.Available(), p.BufSize())
	}
	bufs := make([]*Buf, 4)
	for i := range bufs {
		bufs[i] = p.Get()
		if bufs[i] == nil {
			t.Fatalf("Get %d failed", i)
		}
	}
	if p.Available() != 0 {
		t.Fatalf("available = %d", p.Available())
	}
	if p.Get() != nil {
		t.Fatal("Get from empty pool returned a buffer")
	}
	if p.AllocFailures() != 1 {
		t.Fatalf("alloc failures = %d", p.AllocFailures())
	}
	for _, b := range bufs {
		b.Free()
	}
	if p.Available() != 4 {
		t.Fatalf("available after free = %d", p.Available())
	}
}

func TestMempoolBuffersDistinct(t *testing.T) {
	p := NewMempool(8, 64)
	seen := map[*byte]bool{}
	for i := 0; i < 8; i++ {
		b := p.Get()
		if len(b.Data) != 64 || cap(b.Data) != 64 {
			t.Fatalf("buf %d geometry: len=%d cap=%d", i, len(b.Data), cap(b.Data))
		}
		if seen[&b.Data[0]] {
			t.Fatal("two buffers share backing memory")
		}
		seen[&b.Data[0]] = true
	}
}

func TestPortValidation(t *testing.T) {
	if _, err := NewPort(PortConfig{Queues: 0, Pool: NewMempool(1, 64)}); err == nil {
		t.Fatal("zero queues accepted")
	}
	if _, err := NewPort(PortConfig{Queues: 1}); err == nil {
		t.Fatal("nil pool accepted")
	}
	if _, err := NewPort(PortConfig{Queues: 1, QueueDepth: 3, Pool: NewMempool(1, 64)}); err == nil {
		t.Fatal("non-power-of-two depth accepted")
	}
}

func TestInjectAndRxBurst(t *testing.T) {
	pool := NewMempool(64, 2048)
	port, err := NewPort(PortConfig{Queues: 1, QueueDepth: 64, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1234, 80)
	port.Inject(frame, 1000)
	port.Inject(frame, 2000)

	bufs := make([]*Buf, 32)
	n, err := port.RxBurst(0, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("RxBurst = %d, want 2", n)
	}
	if bufs[0].Timestamp != 1000 || bufs[1].Timestamp != 2000 {
		t.Fatalf("timestamps: %d, %d", bufs[0].Timestamp, bufs[1].Timestamp)
	}
	if string(bufs[0].Bytes()) != string(frame) {
		t.Fatal("frame contents corrupted")
	}
	st := port.Stats()
	if st.Ipackets != 2 || st.Ibytes != uint64(2*len(frame)) {
		t.Fatalf("stats: %+v", st)
	}
	for i := 0; i < n; i++ {
		bufs[i].Free()
	}
	if pool.Available() != pool.Size() {
		t.Fatal("buffers leaked")
	}
}

func TestSymmetricQueueAssignment(t *testing.T) {
	// The SYN (C→S) and SYN-ACK (S→C) of one flow must land on the same
	// queue under symmetric RSS — the property the core engine requires.
	pool := NewMempool(256, 2048)
	port, err := NewPort(PortConfig{Queues: 8, QueueDepth: 64, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		src := netip.AddrFrom4([4]byte{10, 0, byte(i), 1})
		dst := netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})
		sp, dp := uint16(1024+i), uint16(443)

		synSpec := &pkt.TCPFrameSpec{
			SrcMAC: pkt.MAC{1}, DstMAC: pkt.MAC{2},
			Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Flags: pkt.TCPSyn,
		}
		buf := make([]byte, 128)
		n, _ := pkt.BuildTCPFrame(buf, synSpec)
		port.Inject(buf[:n], 1)

		saSpec := &pkt.TCPFrameSpec{
			SrcMAC: pkt.MAC{2}, DstMAC: pkt.MAC{1},
			Src: dst, Dst: src, SrcPort: dp, DstPort: sp, Flags: pkt.TCPSyn | pkt.TCPAck,
		}
		n, _ = pkt.BuildTCPFrame(buf, saSpec)
		port.Inject(buf[:n], 2)
	}
	// Drain every queue; each must contain an even number of packets and
	// each flow's pair must be co-located.
	bufs := make([]*Buf, 256)
	var parser pkt.Parser
	for q := 0; q < port.NumQueues(); q++ {
		n, _ := port.RxBurst(q, bufs)
		flows := map[[2]uint16]int{}
		for i := 0; i < n; i++ {
			var s pkt.Summary
			if err := parser.Parse(bufs[i].Bytes(), &s); err != nil {
				t.Fatal(err)
			}
			// Canonical flow id: min/max of ports.
			a, b := s.TCP.SrcPort, s.TCP.DstPort
			if a > b {
				a, b = b, a
			}
			flows[[2]uint16{a, b}]++
			bufs[i].Free()
		}
		for f, c := range flows {
			if c != 2 {
				t.Errorf("queue %d: flow %v has %d packets, want both directions (2)", q, f, c)
			}
		}
	}
}

func TestQueueOverflowCountsImissed(t *testing.T) {
	pool := NewMempool(64, 2048)
	port, err := NewPort(PortConfig{Queues: 1, QueueDepth: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	for i := 0; i < 5; i++ {
		port.Inject(frame, int64(i))
	}
	st := port.Stats()
	if st.Ipackets != 2 || st.Imissed != 3 {
		t.Fatalf("stats: %+v", st)
	}
	// Dropped frames must return their buffers to the pool.
	if pool.Available() != pool.Size()-2 {
		t.Fatalf("pool: %d available, want %d", pool.Available(), pool.Size()-2)
	}
}

func TestPoolExhaustionCountsNoMbuf(t *testing.T) {
	pool := NewMempool(1, 2048)
	port, err := NewPort(PortConfig{Queues: 1, QueueDepth: 8, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	port.Inject(frame, 1)
	port.Inject(frame, 2)
	st := port.Stats()
	if st.Ipackets != 1 || st.NoMbuf != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestOversizeFrameCountsIerrors(t *testing.T) {
	pool := NewMempool(4, 64)
	port, err := NewPort(PortConfig{Queues: 1, QueueDepth: 8, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	port.Inject(make([]byte, 128), 1)
	if st := port.Stats(); st.Ierrors != 1 || st.Ipackets != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInjectTupleMatchesInject(t *testing.T) {
	// InjectTuple must classify onto the same queue as Inject for the
	// same flow.
	pool := NewMempool(64, 2048)
	port, _ := NewPort(PortConfig{Queues: 4, QueueDepth: 64, Pool: pool})
	src := netip.MustParseAddr("10.9.8.7")
	dst := netip.MustParseAddr("192.0.2.3")
	frame := buildSYN(t, "10.9.8.7", "192.0.2.3", 5555, 80)
	port.Inject(frame, 1)
	port.InjectTuple(frame, 2, src, dst, 5555, 80)
	bufs := make([]*Buf, 8)
	found := -1
	for q := 0; q < 4; q++ {
		n, _ := port.RxBurst(q, bufs)
		if n > 0 {
			if n != 2 {
				t.Fatalf("queue %d has %d packets, want both on one queue", q, n)
			}
			found = q
			for i := 0; i < n; i++ {
				bufs[i].Free()
			}
		}
	}
	if found == -1 {
		t.Fatal("no packets found")
	}
}

func TestInjectPreclassified(t *testing.T) {
	pool := NewMempool(16, 2048)
	port, _ := NewPort(PortConfig{Queues: 4, QueueDepth: 8, Pool: pool})
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	// The supplied hash alone must decide the queue (via the indirection
	// mapping, same as every injection path).
	q5 := rss.Queue(5, 4)
	port.InjectPreclassified(frame, 42, 5)
	bufs := make([]*Buf, 4)
	n, _ := port.RxBurst(q5, bufs)
	if n != 1 {
		t.Fatalf("packet not on queue %d (got %d)", q5, n)
	}
	if bufs[0].RSSHash != 5 || bufs[0].Timestamp != 42 {
		t.Fatalf("descriptor: hash=%d ts=%d", bufs[0].RSSHash, bufs[0].Timestamp)
	}
	bufs[0].Free()
	// Oversize and overflow accounting still apply.
	if st := port.InjectPreclassified(make([]byte, 4096), 1, 0); st != InjectErrFrame {
		t.Fatalf("oversize status = %v", st)
	}
	if st := port.Stats(); st.Ierrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
	for i := 0; i < 10; i++ {
		port.InjectPreclassified(frame, 1, 8) // one queue, depth 8
	}
	if st := port.Stats(); st.Imissed != 2 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	q8 := rss.Queue(8, 4)
	wantPkts := uint64(8)
	if q8 == q5 {
		wantPkts++ // the hash-5 packet landed on the same queue
	}
	qs := port.QueueStats(q8)
	if qs.Ipackets != wantPkts || qs.Imissed != 2 || qs.Depth != 8 || qs.Watermark != 8 || qs.Capacity != 8 {
		t.Fatalf("queue stats: %+v", qs)
	}
}

func TestRxBurstBadQueue(t *testing.T) {
	pool := NewMempool(4, 64)
	port, _ := NewPort(PortConfig{Queues: 1, QueueDepth: 8, Pool: pool})
	if _, err := port.RxBurst(1, make([]*Buf, 1)); err != ErrBadQueue {
		t.Fatalf("err = %v", err)
	}
	if _, err := port.RxBurst(-1, make([]*Buf, 1)); err != ErrBadQueue {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentWorkersDrain(t *testing.T) {
	// One producer injecting, N workers polling their queues — the
	// paper's Fig. 2 topology. All injected packets must be received
	// exactly once and all buffers returned. The port runs the Block
	// policy: a lossless source needs no caller-side retry loop (the
	// seed's stats-diff retry hack recorded ~290k Imissed for 20k
	// frames), and nothing may be counted missed.
	const queues = 4
	const frames = 20000
	pool := NewMempool(8192, 2048)
	port, err := NewPort(PortConfig{
		Queues: queues, QueueDepth: 4096, Pool: pool, Policy: Block,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	received := make([]uint64, queues)
	done := make(chan struct{})
	for q := 0; q < queues; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			bufs := make([]*Buf, 64)
			for {
				n, _ := port.RxBurst(q, bufs)
				for i := 0; i < n; i++ {
					received[q]++
					bufs[i].Free()
				}
				if n == 0 {
					select {
					case <-done:
						// Injection finished: drain until empty.
						for {
							n, _ := port.RxBurst(q, bufs)
							if n == 0 {
								return
							}
							for i := 0; i < n; i++ {
								received[q]++
								bufs[i].Free()
							}
						}
					default:
					}
				}
			}
		}(q)
	}
	frame := make([]byte, 128)
	for i := 0; i < frames; i++ {
		src := netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		dst := netip.AddrFrom4([4]byte{192, 0, 2, 1})
		spec := &pkt.TCPFrameSpec{
			SrcMAC: pkt.MAC{1}, DstMAC: pkt.MAC{2},
			Src: src, Dst: dst, SrcPort: uint16(i), DstPort: 443, Flags: pkt.TCPSyn,
		}
		n, _ := pkt.BuildTCPFrame(frame, spec)
		// Block policy: one call, backpressure is handled by the port.
		if st := port.InjectTuple(frame[:n], int64(i), src, dst, uint16(i), 443); !st.OK() {
			t.Fatalf("frame %d rejected: %v", i, st)
		}
	}
	close(done)
	wg.Wait()
	var total uint64
	for _, r := range received {
		total += r
	}
	st := port.Stats()
	if total != frames {
		t.Fatalf("received %d, want %d (stats %+v)", total, frames, st)
	}
	if st.Imissed != 0 || st.Ipackets != frames {
		t.Fatalf("lossless drain counted drops: %+v", st)
	}
	if pool.Available() != pool.Size() {
		t.Fatalf("leaked buffers: %d/%d available", pool.Available(), pool.Size())
	}
}

func TestMultiConsumerWorkersSharedQueue(t *testing.T) {
	// Several workers draining the SAME queue — only sound on a
	// MultiConsumer port (the SPSC fast path supports exactly one
	// consumer per queue). Every packet must arrive exactly once.
	const workers = 4
	const frames = 20000
	pool := NewMempool(4096, 2048)
	port, err := NewPort(PortConfig{
		Queues: 1, QueueDepth: 2048, Pool: pool,
		Policy: Block, MultiConsumer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var received atomic.Uint64
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bufs := make([]*Buf, 64)
			for {
				n, _ := port.RxBurst(0, bufs)
				for i := 0; i < n; i++ {
					received.Add(1)
					bufs[i].Free()
				}
				if n == 0 {
					select {
					case <-done:
						for {
							n, _ := port.RxBurst(0, bufs)
							if n == 0 {
								return
							}
							for i := 0; i < n; i++ {
								received.Add(1)
								bufs[i].Free()
							}
						}
					default:
					}
				}
			}
		}()
	}
	frame := buildSYN(t, "10.0.0.1", "192.0.2.1", 1234, 443)
	for i := 0; i < frames; i++ {
		if st := port.InjectPreclassified(frame, int64(i), uint32(i)); !st.OK() {
			t.Fatalf("frame %d rejected: %v", i, st)
		}
	}
	close(done)
	wg.Wait()
	if got := received.Load(); got != frames {
		t.Fatalf("received %d, want %d (stats %+v)", got, frames, port.Stats())
	}
	if pool.Available() != pool.Size() {
		t.Fatalf("leaked buffers: %d/%d available", pool.Available(), pool.Size())
	}
}

func TestInjectBurst(t *testing.T) {
	pool := NewMempool(64, 2048)
	port, err := NewPort(PortConfig{Queues: 4, QueueDepth: 64, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	// A burst covering many flows must fan out to the same queues the
	// per-frame path picks, preserving per-queue arrival order.
	var frames []Frame
	for i := 0; i < 32; i++ {
		frames = append(frames, Frame{
			Data: buildSYN(t, "10.0.0.1", "192.0.2.1", uint16(1000+i), 443),
			TS:   int64(i),
		})
	}
	if n := port.InjectBurst(frames); n != 32 {
		t.Fatalf("accepted %d/32", n)
	}
	st := port.Stats()
	if st.Ipackets != 32 || st.Imissed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Drain and check per-queue timestamp order (arrival order preserved).
	bufs := make([]*Buf, 64)
	seen := 0
	for q := 0; q < 4; q++ {
		n, _ := port.RxBurst(q, bufs)
		last := int64(-1)
		for i := 0; i < n; i++ {
			if bufs[i].Timestamp <= last {
				t.Fatalf("queue %d out of order: %d after %d", q, bufs[i].Timestamp, last)
			}
			last = bufs[i].Timestamp
			bufs[i].Free()
			seen++
		}
	}
	if seen != 32 {
		t.Fatalf("drained %d/32", seen)
	}
	if pool.Available() != pool.Size() {
		t.Fatal("buffers leaked")
	}
}

func TestInjectBurstDropPolicyCountsOnce(t *testing.T) {
	// Overfill a tiny port: the drop policy must lose exactly the
	// overflow, count each lost frame once, and free its buffer.
	pool := NewMempool(64, 2048)
	port, err := NewPort(PortConfig{Queues: 1, QueueDepth: 8, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	frames := make([]Frame, 20)
	for i := range frames {
		frames[i] = Frame{Data: frame, TS: int64(i)}
	}
	if n := port.InjectBurst(frames); n != 8 {
		t.Fatalf("accepted %d, want 8", n)
	}
	st := port.Stats()
	if st.Ipackets != 8 || st.Imissed != 12 {
		t.Fatalf("stats: %+v", st)
	}
	if pool.Available() != pool.Size()-8 {
		t.Fatalf("dropped frames leaked buffers: %d/%d", pool.Available(), pool.Size())
	}
}

func TestInjectBurstOversizeMixed(t *testing.T) {
	// Oversize frames inside a burst are skipped (Ierrors) without
	// disturbing the rest of the batch.
	pool := NewMempool(16, 64)
	port, _ := NewPort(PortConfig{Queues: 1, QueueDepth: 16, Pool: pool})
	small := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	frames := []Frame{
		{Data: small, TS: 1},
		{Data: make([]byte, 128), TS: 2},
		{Data: small, TS: 3},
	}
	if n := port.InjectBurst(frames); n != 2 {
		t.Fatalf("accepted %d, want 2", n)
	}
	if st := port.Stats(); st.Ipackets != 2 || st.Ierrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInjectBurstBlockSurvivesPoolSmallerThanBurst(t *testing.T) {
	// Regression: a Block-policy burst larger than the mempool used to
	// deadlock — fill() blocked waiting for buffers that were sitting in
	// the port's own unflushed stage, which no consumer could ever free.
	// The stage must flush before blocking on the pool.
	const frames = 20
	pool := NewMempool(16, 2048) // smaller than the burst
	port, err := NewPort(PortConfig{Queues: 2, QueueDepth: 64, Pool: pool, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // consumer freeing buffers back to the pool
		defer wg.Done()
		bufs := make([]*Buf, 8)
		for {
			idle := true
			for q := 0; q < 2; q++ {
				n, _ := port.RxBurst(q, bufs)
				for i := 0; i < n; i++ {
					bufs[i].Free()
				}
				if n > 0 {
					idle = false
				}
			}
			if idle {
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}
	}()
	batch := make([]Frame, frames)
	for i := range batch {
		batch[i] = Frame{Data: buildSYN(t, "10.0.0.1", "192.0.2.1", uint16(1000+i), 443), TS: int64(i)}
	}
	done := make(chan int, 1)
	go func() { done <- port.InjectBurst(batch) }()
	select {
	case n := <-done:
		if n != frames {
			t.Fatalf("accepted %d/%d", n, frames)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("InjectBurst deadlocked with burst > pool size")
	}
	close(stop)
	wg.Wait()
	if st := port.Stats(); st.Ipackets != frames || st.Imissed != 0 || st.NoMbuf != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if pool.Available() != pool.Size() {
		t.Fatal("buffers leaked")
	}
}

func TestBlockPolicyDeadline(t *testing.T) {
	// With no consumer, a Block port with a deadline must give up,
	// count the miss once, and return the buffer.
	pool := NewMempool(8, 2048)
	port, err := NewPort(PortConfig{
		Queues: 1, QueueDepth: 2, Pool: pool,
		Policy: Block, BlockTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	port.Inject(frame, 1)
	port.Inject(frame, 2)
	start := time.Now()
	st := port.Inject(frame, 3) // queue full, nobody draining
	if st != InjectDropped {
		t.Fatalf("status = %v", st)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("gave up after %v, before the deadline", elapsed)
	}
	if s := port.Stats(); s.Ipackets != 2 || s.Imissed != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if pool.Available() != pool.Size()-2 {
		t.Fatal("dropped frame leaked its buffer")
	}
}

func TestStopUnblocksBlockedInjection(t *testing.T) {
	// Port.Stop must abort an indefinite (no-deadline) block wait — the
	// shutdown path when the consumers that would make room are gone.
	pool := NewMempool(8, 2048)
	port, err := NewPort(PortConfig{Queues: 1, QueueDepth: 2, Pool: pool, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	port.Inject(frame, 1)
	port.Inject(frame, 2) // queue now full, nobody draining
	done := make(chan InjectStatus, 1)
	go func() { done <- port.Inject(frame, 3) }()
	time.Sleep(10 * time.Millisecond)
	port.Stop()
	select {
	case st := <-done:
		if st != InjectDropped {
			t.Fatalf("status = %v, want InjectDropped", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not unblock the injection")
	}
	if pool.Available() != pool.Size()-2 {
		t.Fatal("aborted injection leaked its buffer")
	}
}

func TestBlockWaitsForMempoolWithoutFailureCount(t *testing.T) {
	// A Block-policy injection that waits out transient mempool
	// exhaustion must not count an allocation failure: the run is
	// lossless and the counters must say so.
	pool := NewMempool(1, 2048)
	port, err := NewPort(PortConfig{Queues: 1, QueueDepth: 8, Pool: pool, Policy: Block})
	if err != nil {
		t.Fatal(err)
	}
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	if st := port.Inject(frame, 1); !st.OK() {
		t.Fatalf("first inject: %v", st)
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		bufs := make([]*Buf, 1)
		if n, _ := port.RxBurst(0, bufs); n == 1 {
			bufs[0].Free() // return the only buffer to the pool
		}
	}()
	if st := port.Inject(frame, 2); st != InjectOK {
		t.Fatalf("blocked inject: %v", st)
	}
	if af := pool.AllocFailures(); af != 0 {
		t.Fatalf("lossless run counted %d alloc failures", af)
	}
	if s := port.Stats(); s.NoMbuf != 0 || s.Ipackets != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestBlockPolicyUnblocksWhenDrained(t *testing.T) {
	// A blocked injection must complete once a consumer makes room.
	pool := NewMempool(8, 2048)
	port, err := NewPort(PortConfig{
		Queues: 1, QueueDepth: 2, Pool: pool, Policy: Block,
	})
	if err != nil {
		t.Fatal(err)
	}
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	port.Inject(frame, 1)
	port.Inject(frame, 2)
	go func() {
		time.Sleep(5 * time.Millisecond)
		bufs := make([]*Buf, 1)
		n, _ := port.RxBurst(0, bufs)
		if n == 1 {
			bufs[0].Free()
		}
	}()
	if st := port.Inject(frame, 3); st != InjectOK {
		t.Fatalf("status = %v", st)
	}
	if s := port.Stats(); s.Ipackets != 3 || s.Imissed != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func BenchmarkInjectRx(b *testing.B) {
	pool := NewMempool(4096, 2048)
	port, _ := NewPort(PortConfig{Queues: 1, QueueDepth: 2048, Pool: pool})
	frame := buildSYN(b, "10.0.0.1", "10.0.0.2", 1234, 80)
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	bufs := make([]*Buf, 32)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		port.InjectTuple(frame, int64(i), src, dst, 1234, 80)
		if i%32 == 31 {
			n, _ := port.RxBurst(0, bufs)
			for j := 0; j < n; j++ {
				bufs[j].Free()
			}
		}
	}
	b.StopTimer()
	n, _ := port.RxBurst(0, bufs)
	for j := 0; j < n; j++ {
		bufs[j].Free()
	}
}

func BenchmarkInjectBurst(b *testing.B) {
	// The burst counterpart of BenchmarkInjectRx: 32-frame batches through
	// InjectBurst, drained with RxBurst. One ring round-trip per batch per
	// queue instead of one per frame.
	const burst = 32
	pool := NewMempool(4096, 2048)
	port, _ := NewPort(PortConfig{Queues: 1, QueueDepth: 2048, Pool: pool})
	frame := buildSYN(b, "10.0.0.1", "10.0.0.2", 1234, 80)
	frames := make([]Frame, burst)
	for i := range frames {
		frames[i] = Frame{Data: frame, TS: int64(i)}
	}
	bufs := make([]*Buf, burst)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i += burst {
		port.InjectBurst(frames)
		n, _ := port.RxBurst(0, bufs)
		for j := 0; j < n; j++ {
			bufs[j].Free()
		}
	}
	b.StopTimer()
	n, _ := port.RxBurst(0, bufs)
	for j := 0; j < n; j++ {
		bufs[j].Free()
	}
}
