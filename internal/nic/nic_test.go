package nic

import (
	"net/netip"
	"sync"
	"testing"

	"ruru/internal/pkt"
	"ruru/internal/rss"
)

func buildSYN(t testing.TB, src, dst string, sp, dp uint16) []byte {
	t.Helper()
	spec := &pkt.TCPFrameSpec{
		SrcMAC: pkt.MAC{1, 1, 1, 1, 1, 1}, DstMAC: pkt.MAC{2, 2, 2, 2, 2, 2},
		Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
		SrcPort: sp, DstPort: dp, Flags: pkt.TCPSyn, Window: 65535,
	}
	buf := make([]byte, 128)
	n, err := pkt.BuildTCPFrame(buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

func TestMempoolAccounting(t *testing.T) {
	p := NewMempool(4, 256)
	if p.Size() != 4 || p.Available() != 4 || p.BufSize() != 256 {
		t.Fatalf("pool geometry: %d/%d/%d", p.Size(), p.Available(), p.BufSize())
	}
	bufs := make([]*Buf, 4)
	for i := range bufs {
		bufs[i] = p.Get()
		if bufs[i] == nil {
			t.Fatalf("Get %d failed", i)
		}
	}
	if p.Available() != 0 {
		t.Fatalf("available = %d", p.Available())
	}
	if p.Get() != nil {
		t.Fatal("Get from empty pool returned a buffer")
	}
	if p.AllocFailures() != 1 {
		t.Fatalf("alloc failures = %d", p.AllocFailures())
	}
	for _, b := range bufs {
		b.Free()
	}
	if p.Available() != 4 {
		t.Fatalf("available after free = %d", p.Available())
	}
}

func TestMempoolBuffersDistinct(t *testing.T) {
	p := NewMempool(8, 64)
	seen := map[*byte]bool{}
	for i := 0; i < 8; i++ {
		b := p.Get()
		if len(b.Data) != 64 || cap(b.Data) != 64 {
			t.Fatalf("buf %d geometry: len=%d cap=%d", i, len(b.Data), cap(b.Data))
		}
		if seen[&b.Data[0]] {
			t.Fatal("two buffers share backing memory")
		}
		seen[&b.Data[0]] = true
	}
}

func TestPortValidation(t *testing.T) {
	if _, err := NewPort(PortConfig{Queues: 0, Pool: NewMempool(1, 64)}); err == nil {
		t.Fatal("zero queues accepted")
	}
	if _, err := NewPort(PortConfig{Queues: 1}); err == nil {
		t.Fatal("nil pool accepted")
	}
	if _, err := NewPort(PortConfig{Queues: 1, QueueDepth: 3, Pool: NewMempool(1, 64)}); err == nil {
		t.Fatal("non-power-of-two depth accepted")
	}
}

func TestInjectAndRxBurst(t *testing.T) {
	pool := NewMempool(64, 2048)
	port, err := NewPort(PortConfig{Queues: 1, QueueDepth: 64, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1234, 80)
	port.Inject(frame, 1000)
	port.Inject(frame, 2000)

	bufs := make([]*Buf, 32)
	n, err := port.RxBurst(0, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("RxBurst = %d, want 2", n)
	}
	if bufs[0].Timestamp != 1000 || bufs[1].Timestamp != 2000 {
		t.Fatalf("timestamps: %d, %d", bufs[0].Timestamp, bufs[1].Timestamp)
	}
	if string(bufs[0].Bytes()) != string(frame) {
		t.Fatal("frame contents corrupted")
	}
	st := port.Stats()
	if st.Ipackets != 2 || st.Ibytes != uint64(2*len(frame)) {
		t.Fatalf("stats: %+v", st)
	}
	for i := 0; i < n; i++ {
		bufs[i].Free()
	}
	if pool.Available() != pool.Size() {
		t.Fatal("buffers leaked")
	}
}

func TestSymmetricQueueAssignment(t *testing.T) {
	// The SYN (C→S) and SYN-ACK (S→C) of one flow must land on the same
	// queue under symmetric RSS — the property the core engine requires.
	pool := NewMempool(256, 2048)
	port, err := NewPort(PortConfig{Queues: 8, QueueDepth: 64, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		src := netip.AddrFrom4([4]byte{10, 0, byte(i), 1})
		dst := netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})
		sp, dp := uint16(1024+i), uint16(443)

		synSpec := &pkt.TCPFrameSpec{
			SrcMAC: pkt.MAC{1}, DstMAC: pkt.MAC{2},
			Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Flags: pkt.TCPSyn,
		}
		buf := make([]byte, 128)
		n, _ := pkt.BuildTCPFrame(buf, synSpec)
		port.Inject(buf[:n], 1)

		saSpec := &pkt.TCPFrameSpec{
			SrcMAC: pkt.MAC{2}, DstMAC: pkt.MAC{1},
			Src: dst, Dst: src, SrcPort: dp, DstPort: sp, Flags: pkt.TCPSyn | pkt.TCPAck,
		}
		n, _ = pkt.BuildTCPFrame(buf, saSpec)
		port.Inject(buf[:n], 2)
	}
	// Drain every queue; each must contain an even number of packets and
	// each flow's pair must be co-located.
	bufs := make([]*Buf, 256)
	var parser pkt.Parser
	for q := 0; q < port.NumQueues(); q++ {
		n, _ := port.RxBurst(q, bufs)
		flows := map[[2]uint16]int{}
		for i := 0; i < n; i++ {
			var s pkt.Summary
			if err := parser.Parse(bufs[i].Bytes(), &s); err != nil {
				t.Fatal(err)
			}
			// Canonical flow id: min/max of ports.
			a, b := s.TCP.SrcPort, s.TCP.DstPort
			if a > b {
				a, b = b, a
			}
			flows[[2]uint16{a, b}]++
			bufs[i].Free()
		}
		for f, c := range flows {
			if c != 2 {
				t.Errorf("queue %d: flow %v has %d packets, want both directions (2)", q, f, c)
			}
		}
	}
}

func TestQueueOverflowCountsImissed(t *testing.T) {
	pool := NewMempool(64, 2048)
	port, err := NewPort(PortConfig{Queues: 1, QueueDepth: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	for i := 0; i < 5; i++ {
		port.Inject(frame, int64(i))
	}
	st := port.Stats()
	if st.Ipackets != 2 || st.Imissed != 3 {
		t.Fatalf("stats: %+v", st)
	}
	// Dropped frames must return their buffers to the pool.
	if pool.Available() != pool.Size()-2 {
		t.Fatalf("pool: %d available, want %d", pool.Available(), pool.Size()-2)
	}
}

func TestPoolExhaustionCountsNoMbuf(t *testing.T) {
	pool := NewMempool(1, 2048)
	port, err := NewPort(PortConfig{Queues: 1, QueueDepth: 8, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	port.Inject(frame, 1)
	port.Inject(frame, 2)
	st := port.Stats()
	if st.Ipackets != 1 || st.NoMbuf != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestOversizeFrameCountsIerrors(t *testing.T) {
	pool := NewMempool(4, 64)
	port, err := NewPort(PortConfig{Queues: 1, QueueDepth: 8, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	port.Inject(make([]byte, 128), 1)
	if st := port.Stats(); st.Ierrors != 1 || st.Ipackets != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInjectTupleMatchesInject(t *testing.T) {
	// InjectTuple must classify onto the same queue as Inject for the
	// same flow.
	pool := NewMempool(64, 2048)
	port, _ := NewPort(PortConfig{Queues: 4, QueueDepth: 64, Pool: pool})
	src := netip.MustParseAddr("10.9.8.7")
	dst := netip.MustParseAddr("192.0.2.3")
	frame := buildSYN(t, "10.9.8.7", "192.0.2.3", 5555, 80)
	port.Inject(frame, 1)
	port.InjectTuple(frame, 2, src, dst, 5555, 80)
	bufs := make([]*Buf, 8)
	found := -1
	for q := 0; q < 4; q++ {
		n, _ := port.RxBurst(q, bufs)
		if n > 0 {
			if n != 2 {
				t.Fatalf("queue %d has %d packets, want both on one queue", q, n)
			}
			found = q
			for i := 0; i < n; i++ {
				bufs[i].Free()
			}
		}
	}
	if found == -1 {
		t.Fatal("no packets found")
	}
}

func TestInjectPreclassified(t *testing.T) {
	pool := NewMempool(16, 2048)
	port, _ := NewPort(PortConfig{Queues: 4, QueueDepth: 8, Pool: pool})
	frame := buildSYN(t, "10.0.0.1", "10.0.0.2", 1, 2)
	// The supplied hash alone must decide the queue.
	port.InjectPreclassified(frame, 42, 5) // 5 % 4 = queue 1
	bufs := make([]*Buf, 4)
	n, _ := port.RxBurst(1, bufs)
	if n != 1 {
		t.Fatalf("packet not on queue 1 (got %d)", n)
	}
	if bufs[0].RSSHash != 5 || bufs[0].Timestamp != 42 {
		t.Fatalf("descriptor: hash=%d ts=%d", bufs[0].RSSHash, bufs[0].Timestamp)
	}
	bufs[0].Free()
	// Oversize and overflow accounting still apply.
	port.InjectPreclassified(make([]byte, 4096), 1, 0)
	if st := port.Stats(); st.Ierrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
	for i := 0; i < 10; i++ {
		port.InjectPreclassified(frame, 1, 8) // queue 0, depth 8
	}
	if st := port.Stats(); st.Imissed != 2 {
		t.Fatalf("stats after overflow: %+v", st)
	}
}

func TestRxBurstBadQueue(t *testing.T) {
	pool := NewMempool(4, 64)
	port, _ := NewPort(PortConfig{Queues: 1, QueueDepth: 8, Pool: pool})
	if _, err := port.RxBurst(1, make([]*Buf, 1)); err != ErrBadQueue {
		t.Fatalf("err = %v", err)
	}
	if _, err := port.RxBurst(-1, make([]*Buf, 1)); err != ErrBadQueue {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentWorkersDrain(t *testing.T) {
	// One producer injecting, N workers polling their queues — the
	// paper's Fig. 2 topology. All injected packets must be received
	// exactly once and all buffers returned.
	const queues = 4
	const frames = 20000
	pool := NewMempool(8192, 2048)
	port, err := NewPort(PortConfig{Queues: queues, QueueDepth: 4096, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	received := make([]uint64, queues)
	done := make(chan struct{})
	for q := 0; q < queues; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			bufs := make([]*Buf, 64)
			for {
				n, _ := port.RxBurst(q, bufs)
				for i := 0; i < n; i++ {
					received[q]++
					bufs[i].Free()
				}
				if n == 0 {
					select {
					case <-done:
						// Final drain.
						n, _ := port.RxBurst(q, bufs)
						for i := 0; i < n; i++ {
							received[q]++
							bufs[i].Free()
						}
						return
					default:
					}
				}
			}
		}(q)
	}
	frame := make([]byte, 128)
	for i := 0; i < frames; i++ {
		src := netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		dst := netip.AddrFrom4([4]byte{192, 0, 2, 1})
		spec := &pkt.TCPFrameSpec{
			SrcMAC: pkt.MAC{1}, DstMAC: pkt.MAC{2},
			Src: src, Dst: dst, SrcPort: uint16(i), DstPort: 443, Flags: pkt.TCPSyn,
		}
		n, _ := pkt.BuildTCPFrame(frame, spec)
		for {
			before := port.Stats()
			port.InjectTuple(frame[:n], int64(i), src, dst, uint16(i), 443)
			after := port.Stats()
			if after.Ipackets > before.Ipackets {
				break // accepted
			}
			// Queue full or pool empty: let workers catch up.
		}
	}
	close(done)
	wg.Wait()
	var total uint64
	for _, r := range received {
		total += r
	}
	if total != frames {
		t.Fatalf("received %d, want %d (stats %+v)", total, frames, port.Stats())
	}
	if pool.Available() != pool.Size() {
		t.Fatalf("leaked buffers: %d/%d available", pool.Available(), pool.Size())
	}
}

func BenchmarkInjectRx(b *testing.B) {
	pool := NewMempool(4096, 2048)
	port, _ := NewPort(PortConfig{Queues: 1, QueueDepth: 2048, Pool: pool})
	frame := buildSYN(b, "10.0.0.1", "10.0.0.2", 1234, 80)
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	bufs := make([]*Buf, 32)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		port.InjectTuple(frame, int64(i), src, dst, 1234, 80)
		if i%32 == 31 {
			n, _ := port.RxBurst(0, bufs)
			for j := 0; j < n; j++ {
				bufs[j].Free()
			}
		}
	}
	b.StopTimer()
	n, _ := port.RxBurst(0, bufs)
	for j := 0; j < n; j++ {
		bufs[j].Free()
	}
}

var _ = rss.NewSymmetric // keep import for documentation cross-reference
