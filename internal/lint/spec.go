package lint

// The repo spec: the invariants documented in ARCHITECTURE.md, as data.
// When a lock is added or renamed, this file is the one to update — the
// TestRepoSpecResolves test fails if a class stops matching a real field,
// so the spec cannot silently rot.

// RepoLockOrder declares ruru's mutex partial order:
//
//   - tsdb (ARCHITECTURE.md "Lock order"): ckptMu → commitMu → stripe mu
//     → dirMu, with the WAL's syncMu → mu chain nesting inside commitMu
//     and nothing ever acquired under dirMu or the WAL mu (leaf-only:
//     no outgoing edges).
//   - fed: Aggregator.mu, aggProbe.mu and Probe.mu have no edges at all —
//     no two of them may ever nest (the PR-5 Stats fix made this an
//     explicit invariant).
//   - core: statsCell.mu is strictly leaf (ARCHITECTURE.md "Continuous
//     RTT": the queue worker owns its trackers lock-free; the cell mutex
//     only guards the per-burst snapshot publish/read hand-off and nothing
//     may be acquired under it — in particular no DB write, since sinks
//     run outside the cell).
//   - ruru: Pipeline.pairTopMu (the sketch tier's city-pair summary) is
//     strictly leaf: sink workers and /api/topk readers take it for a
//     bounded heap update or copy and may acquire nothing under it. The
//     same goes for RollupDelta.mu (the /ws?stream=rollup accumulator):
//     sink workers fold cells and the flusher swaps the map under it,
//     marshalling outside.
//   - tsdb query cache: queryCache.mu guards only the entry table, LRU
//     list and byte ledger. It is strictly leaf and in particular is never
//     held across a stripe scan — executeCached copies the entry pointer
//     out, scans lock-free, and re-acquires to publish.
func RepoLockOrder() *LockOrderSpec {
	return &LockOrderSpec{
		Classes: []LockClass{
			{ID: "tsdb.ckptMu", Type: "ruru/internal/tsdb.persister", Field: "ckptMu"},
			{ID: "tsdb.commitMu", Type: "ruru/internal/tsdb.DB", Field: "commitMu"},
			{ID: "tsdb.stripeMu", Type: "ruru/internal/tsdb.stripe", Field: "mu"},
			{ID: "tsdb.dirMu", Type: "ruru/internal/tsdb.DB", Field: "dirMu"},
			{ID: "tsdb.walSyncMu", Type: "ruru/internal/tsdb.wal", Field: "syncMu"},
			{ID: "tsdb.walMu", Type: "ruru/internal/tsdb.wal", Field: "mu"},
			{ID: "tsdb.qcacheMu", Type: "ruru/internal/tsdb.queryCache", Field: "mu"},
			{ID: "fed.aggMu", Type: "ruru/internal/fed.Aggregator", Field: "mu"},
			{ID: "fed.aggProbeMu", Type: "ruru/internal/fed.aggProbe", Field: "mu"},
			{ID: "fed.probeMu", Type: "ruru/internal/fed.Probe", Field: "mu"},
			{ID: "core.statsCellMu", Type: "ruru/internal/core.statsCell", Field: "mu"},
			{ID: "ruru.pairTopMu", Type: "ruru/internal/ruru.Pipeline", Field: "pairTopMu"},
			{ID: "ruru.rollupDeltaMu", Type: "ruru/internal/ruru.RollupDelta", Field: "mu"},
		},
		Order: [][2]string{
			{"tsdb.ckptMu", "tsdb.commitMu"},
			{"tsdb.commitMu", "tsdb.stripeMu"},
			{"tsdb.stripeMu", "tsdb.dirMu"},
			{"tsdb.commitMu", "tsdb.walSyncMu"},
			{"tsdb.walSyncMu", "tsdb.walMu"},
		},
	}
}

// RepoMustCheck lists the APIs whose dropped results have bitten before.
func RepoMustCheck() *MustCheckSpec {
	return &MustCheckSpec{Funcs: []string{
		"(*ruru/internal/tsdb.DB).Close",
		"(*ruru/internal/tsdb.DB).Write",
		"(*ruru/internal/tsdb.DB).WriteBatch",
		"(*ruru/internal/tsdb.DB).WriteBatchRef",
		"(*ruru/internal/tsdb.DB).Checkpoint",
		"(*ruru/internal/tsdb.DB).Snapshot",
		"(*ruru/internal/tsdb.wal).appendRecord",
		"(*ruru/internal/tsdb.wal).AppendPoint",
		"(*ruru/internal/tsdb.wal).AppendPoints",
		"(*ruru/internal/tsdb.wal).Rotate",
		"(*ruru/internal/tsdb.wal).Sync",
		"ruru/internal/mq.WriteFrame",
		"(*ruru/internal/ruru.Pipeline).Close",
		"(*ruru/internal/fed.Probe).Close",
	}}
}

// Analyzers returns the full suite, configured for this repository, in
// the order ruru-vet runs them.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockOrder(RepoLockOrder()),
		AtomicMix(),
		NoAlloc(),
		MustCheck(RepoMustCheck()),
	}
}
