package lint

// noalloc: static allocation gate for //ruru:noalloc functions.
//
// The zero-allocation contracts of the hot paths (tsdb's WriteBatchRef
// steady path, pkt parse, ring ops, the sink burst loop) were previously
// pinned only by testing.AllocsPerRun benchmarks that are skipped under
// -race — so an alloc regression could land through a race-enabled CI
// lane untested. This analyzer makes the contract an always-on static
// property: a function whose doc comment carries the line
//
//	//ruru:noalloc
//
// is rejected if its body contains an allocating construct:
//
//   - make / new
//   - composite literals that allocate: &T{…}, slice literals, map
//     literals (plain value struct/array literals live on the stack)
//   - function literals that capture variables (closure allocation);
//     capture-free literals compile to static functions and are allowed
//   - conversions of a non-pointer-shaped concrete value to an interface
//     type (in call arguments, assignments and returns)
//   - any fmt.* call
//   - string concatenation, string([]byte) / []byte(string) conversions
//   - append to a slice declared locally without capacity (a fresh
//     per-call slice; append to reused scratch, fields or parameters is
//     the amortized idiom the AllocsPerRun pins keep honest)
//
// Warm-up guards are recognized: an allocation inside an if/else whose
// condition tests capacity, length or nil-ness (`if cap(buf) < need`,
// `if col == nil`) is an init-once path by construction and allowed.
// Anything else that is intentionally cold can be suppressed with
// //ruru:ignore noalloc <why>.
//
// Calls to other functions are NOT charged to the caller: annotate the
// callee too if it is part of the steady path. The annotation is a
// contract about this function's own body.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc returns the analyzer.
func NoAlloc() *Analyzer {
	return &Analyzer{
		Name: "noalloc",
		Doc:  "rejects allocating constructs inside functions annotated //ruru:noalloc",
		Run:  runNoAlloc,
	}
}

// noallocMarker matches the annotation line inside a doc comment.
func hasNoAllocMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//ruru:noalloc" {
			return true
		}
	}
	return false
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoAllocMarker(fd.Doc) {
				continue
			}
			r := &noallocRun{pass: pass, fn: fd}
			r.collectLocalSlices(fd.Body)
			r.walk(fd.Body, false)
		}
	}
	return nil
}

type noallocRun struct {
	pass *Pass
	fn   *ast.FuncDecl
	// freshLocals are slice variables declared in this body with no
	// backing capacity: `var s []T`, `s := []T{}`; appending to one grows
	// a fresh per-call allocation.
	freshLocals map[*types.Var]bool
}

func (r *noallocRun) reportf(pos token.Pos, format string, args ...any) {
	name := r.fn.Name.Name
	r.pass.Reportf(pos, "%s is //ruru:noalloc: "+format, append([]any{name}, args...)...)
}

// collectLocalSlices records locally declared unsized slices.
func (r *noallocRun) collectLocalSlices(body *ast.BlockStmt) {
	r.freshLocals = map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ValueSpec: // var s []T (no initializer)
			if len(n.Values) != 0 {
				return true
			}
			for _, name := range n.Names {
				if v, ok := r.pass.Info.Defs[name].(*types.Var); ok && isSlice(v.Type()) {
					r.freshLocals[v] = true
				}
			}
		case *ast.AssignStmt: // s := []T{}
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := r.pass.Info.Defs[id].(*types.Var)
				if !ok || !isSlice(v.Type()) {
					continue
				}
				if lit, ok := n.Rhs[i].(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
					r.freshLocals[v] = true
				}
			}
		}
		return true
	})
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isWarmupGuard reports whether cond is a capacity/length/nil test — the
// shape of an init-once guard around a lazily allocated buffer.
func isWarmupGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				found = true
			}
		case *ast.Ident:
			if n.Name == "nil" {
				found = true
			}
		}
		return true
	})
	return found
}

// walk visits the body; guarded is true inside a warm-up guard branch.
func (r *noallocRun) walk(n ast.Node, guarded bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.IfStmt:
		r.walk(n.Init, guarded)
		r.checkExpr(n.Cond, guarded)
		branchGuarded := guarded || isWarmupGuard(n.Cond)
		r.walk(n.Body, branchGuarded)
		r.walk(n.Else, branchGuarded)
		return
	case *ast.BlockStmt:
		for _, s := range n.List {
			r.walk(s, guarded)
		}
		return
	case *ast.LabeledStmt:
		r.walk(n.Stmt, guarded)
		return
	case *ast.ForStmt:
		r.walk(n.Init, guarded)
		r.checkExpr(n.Cond, guarded)
		r.walk(n.Body, guarded)
		r.walk(n.Post, guarded)
		return
	case *ast.RangeStmt:
		r.checkExpr(n.X, guarded)
		r.walk(n.Body, guarded)
		return
	case *ast.SwitchStmt:
		r.walk(n.Init, guarded)
		r.checkExpr(n.Tag, guarded)
		for _, c := range n.Body.List {
			for _, s := range c.(*ast.CaseClause).Body {
				r.walk(s, guarded)
			}
		}
		return
	case *ast.TypeSwitchStmt:
		r.walk(n.Init, guarded)
		for _, c := range n.Body.List {
			for _, s := range c.(*ast.CaseClause).Body {
				r.walk(s, guarded)
			}
		}
		return
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				r.walk(cc.Comm, guarded)
			}
			for _, s := range cc.Body {
				r.walk(s, guarded)
			}
		}
		return
	case ast.Stmt:
		// Leaf statements: check their expressions.
		ast.Inspect(n, func(c ast.Node) bool {
			if e, ok := c.(ast.Expr); ok {
				r.checkExprNode(e, guarded)
				if _, isLit := c.(*ast.FuncLit); isLit {
					return false // the literal itself was checked; skip its body
				}
			}
			return true
		})
		return
	}
}

// checkExpr inspects one expression subtree.
func (r *noallocRun) checkExpr(e ast.Expr, guarded bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(c ast.Node) bool {
		if expr, ok := c.(ast.Expr); ok {
			r.checkExprNode(expr, guarded)
			if _, isLit := c.(*ast.FuncLit); isLit {
				return false
			}
		}
		return true
	})
}

// checkExprNode applies the allocation rules to a single expression node.
func (r *noallocRun) checkExprNode(e ast.Expr, guarded bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		r.checkCall(e, guarded)
	case *ast.CompositeLit:
		r.checkCompositeLit(e, guarded)
	case *ast.UnaryExpr:
		if e.Op == token.AND && !guarded {
			if _, ok := e.X.(*ast.CompositeLit); ok {
				r.reportf(e.Pos(), "&composite literal escapes to the heap")
			}
		}
	case *ast.FuncLit:
		if caps := r.captures(e); len(caps) > 0 {
			r.reportf(e.Pos(), "closure captures %s (heap-allocates the closure and its captures)",
				strings.Join(caps, ", "))
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if t, ok := r.pass.Info.Types[e]; ok && isString(t.Type) {
				r.reportf(e.Pos(), "string concatenation allocates")
			}
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func (r *noallocRun) checkCall(call *ast.CallExpr, guarded bool) {
	// Type conversions: string([]byte) and []byte(string) copy.
	if tv, ok := r.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		src, dst := r.pass.Info.Types[call.Args[0]].Type, tv.Type
		if (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src)) {
			if !guarded {
				r.reportf(call.Pos(), "string/[]byte conversion allocates a copy")
			}
		}
		return
	}

	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := r.pass.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				if !guarded {
					r.reportf(call.Pos(), "%s allocates (wrap cold init in a cap/len/nil guard, or reuse scratch)", b.Name())
				}
				return
			case "append":
				r.checkAppend(call)
				return
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := r.pass.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			r.reportf(call.Pos(), "fmt.%s allocates (formatting is not hot-path work)", fn.Name())
			return
		}
	}
	r.checkInterfaceArgs(call, guarded)
}

// checkAppend flags appends that grow a fresh per-call slice.
func (r *noallocRun) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	if v, ok := r.pass.Info.Uses[id].(*types.Var); ok && r.freshLocals[v] {
		r.reportf(call.Pos(), "append grows %s, a locally declared slice with no reserved capacity", v.Name())
	}
}

// pointerShaped reports whether a value of type t fits an interface word
// without boxing (pointers, maps, chans, funcs, unsafe pointers).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// checkInterfaceArgs flags non-pointer-shaped concrete values passed to
// interface-typed parameters (the conversion boxes onto the heap).
func (r *noallocRun) checkInterfaceArgs(call *ast.CallExpr, guarded bool) {
	if guarded {
		return
	}
	tv, ok := r.pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var paramType types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through ... does not box
			}
			paramType = sig.Params().At(sig.Params().Len() - 1).Type().Underlying().(*types.Slice).Elem()
		} else if i < sig.Params().Len() {
			paramType = sig.Params().At(i).Type()
		} else {
			continue
		}
		r.checkIfaceConversion(arg, paramType)
	}
}

// checkIfaceConversion reports arg if assigning it to dst boxes a value.
func (r *noallocRun) checkIfaceConversion(arg ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := r.pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type) || pointerShaped(tv.Type) {
		return
	}
	r.reportf(arg.Pos(), "converting %s to interface %s boxes the value on the heap",
		types.TypeString(tv.Type, types.RelativeTo(r.pass.Pkg)),
		types.TypeString(dst, types.RelativeTo(r.pass.Pkg)))
}

// checkCompositeLit flags literal forms that allocate.
func (r *noallocRun) checkCompositeLit(lit *ast.CompositeLit, guarded bool) {
	if guarded {
		return
	}
	tv, ok := r.pass.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		r.reportf(lit.Pos(), "slice literal allocates")
	case *types.Map:
		r.reportf(lit.Pos(), "map literal allocates")
	}
	// A plain value struct/array literal stays on the stack; &T{…} is
	// reported by the UnaryExpr case in checkExprNode.
}

// captures returns the names of variables a function literal captures
// from its enclosing function.
func (r *noallocRun) captures(lit *ast.FuncLit) []string {
	var names []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := r.pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() == r.pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		// Declared inside the literal (params included): not a capture.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}
