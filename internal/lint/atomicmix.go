package lint

// atomicmix: atomics-only discipline for struct fields.
//
// If any code in a package touches a struct field through the sync/atomic
// free functions (atomic.AddUint64(&s.n, 1), atomic.LoadUint64(&s.n), …),
// then every other access to that field in the package must also be
// atomic: one plain read racing one atomic write is a data race the race
// detector only catches if a test happens to interleave it. This is the
// bug class behind several past review-round fixes (mixed head/tail
// access on the ingest ring, stats counters read plainly in snapshots).
//
// Fields of the typed atomic.* wrapper types (atomic.Uint64, atomic.Bool,
// atomic.Pointer[T], …) are type-safe by construction — every access goes
// through Load/Store/Add — so they need no tracking here; go vet's
// copylocks already rejects copying them. The analyzer therefore tracks
// exactly the fields addressed by sync/atomic free-function calls.
//
// Initialization inside a composite literal (S{n: 0}) is allowed: a value
// under construction is unpublished. Every other plain read, write, or
// address-taking of a tracked field is reported; a pre-publication access
// that is genuinely race-free can be suppressed with
// //ruru:ignore atomicmix <why>.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix returns the analyzer.
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "flags non-atomic access to struct fields that are accessed with sync/atomic elsewhere in the package",
		Run:  runAtomicMix,
	}
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: collect fields addressed by sync/atomic free functions, and
	// the selector nodes sanctioned by appearing there.
	tracked := map[*types.Var]token.Pos{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			// First argument is the address of the atomic word.
			unary, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			fieldSel, ok := unary.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv, ok := pass.Info.Uses[fieldSel.Sel].(*types.Var)
			if !ok || !fv.IsField() {
				return true
			}
			if _, seen := tracked[fv]; !seen {
				tracked[fv] = fieldSel.Pos()
			}
			sanctioned[fieldSel] = true
			return true
		})
	}
	if len(tracked) == 0 {
		return nil
	}

	// Pass 2: every other selector resolving to a tracked field is a
	// non-atomic access. (Composite-literal field keys are plain idents,
	// not selectors, so S{n: 0} initialization is inherently tolerated.)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv, ok := pass.Info.Uses[sel.Sel].(*types.Var)
			if !ok || !fv.IsField() {
				return true
			}
			first, isTracked := tracked[fv]
			if !isTracked || sanctioned[sel] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"non-atomic access to field %s, which is accessed with sync/atomic (e.g. at %s); use sync/atomic here too",
				fv.Name(), pass.Fset.Position(first))
			return true
		})
	}
	return nil
}
