// Regression fixture: the PR-5 federation Stats bug. Stats originally
// walked the aggregator's probe map and took each probe's lock while
// still holding the map lock — nesting two classes the spec declares
// unordered (fed.aggMu and fed.aggProbeMu have no edges). The fix was a
// two-phase snapshot; both shapes are pinned here so the analyzer
// provably flags the old one and accepts the new one.
package fedstats

import "sync"

type Aggregator struct {
	mu     sync.Mutex
	probes map[string]*aggProbe
}

type aggProbe struct {
	mu          sync.Mutex
	lastApplied uint64
}

// statsNested is the pre-fix shape.
func (a *Aggregator) statsNested() uint64 {
	var total uint64
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, p := range a.probes {
		p.mu.Lock() // want `acquires fed.aggProbeMu while holding fed.aggMu .* forbids`
		total += p.lastApplied
		p.mu.Unlock()
	}
	return total
}

// statsTwoPhase is the fixed shape: snapshot the probe set under the map
// lock, then visit each probe with nothing else held.
func (a *Aggregator) statsTwoPhase() uint64 {
	a.mu.Lock()
	snapshot := make([]*aggProbe, 0, len(a.probes))
	for _, p := range a.probes {
		snapshot = append(snapshot, p)
	}
	a.mu.Unlock()
	var total uint64
	for _, p := range snapshot {
		p.mu.Lock()
		total += p.lastApplied
		p.mu.Unlock()
	}
	return total
}
