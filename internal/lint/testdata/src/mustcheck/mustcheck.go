// Fixture for the mustcheck analyzer: dropped results of the APIs the
// test's spec names, in every dropping position (expression statement,
// defer, go), plus the accepted handling forms.
package mustcheck

type DB struct{}

func (db *DB) Close() error                      { return nil }
func (db *DB) WriteBatch(pts []int) (int, error) { return len(pts), nil }
func (db *DB) Len() int                          { return 0 }

func open() *DB { return &DB{} }

func dropped() {
	db := open()
	db.WriteBatch(nil) // want `result of \(\*mustcheck.DB\).WriteBatch is dropped`
	db.Close()         // want `result of \(\*mustcheck.DB\).Close is dropped`
}

func deferred() error {
	db := open()
	defer db.Close() // want `dropped by defer`
	return nil
}

func spawned() {
	db := open()
	go db.Close() // want `dropped by go`
}

func checked() error {
	db := open()
	if _, err := db.WriteBatch(nil); err != nil {
		return err
	}
	return db.Close()
}

// Explicitly assigning every result to blank is a visible acknowledgement.
func blankAssign() {
	db := open()
	_, _ = db.WriteBatch(nil)
	_ = db.Close()
}

// Functions outside the spec are not flagged.
func unlisted() {
	db := open()
	db.Len()
}
