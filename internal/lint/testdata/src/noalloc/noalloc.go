// Fixture for the noalloc analyzer: allocating constructs inside
// functions annotated //ruru:noalloc, and the warm-up-guard and reuse
// idioms that are allowed.
package noalloc

import "fmt"

type buf struct {
	scratch []byte
	vals    []float64
}

//ruru:noalloc
func useMake(n int) []int {
	s := make([]int, n) // want `make allocates`
	return s
}

//ruru:noalloc
func useNew() *buf {
	return new(buf) // want `new allocates`
}

// An allocation behind a capacity test is the init-once warm-up idiom.
//
//ruru:noalloc
func warmup(b *buf, need int) {
	if cap(b.scratch) < need {
		b.scratch = make([]byte, 0, need)
	}
	b.scratch = b.scratch[:0]
}

// Nil tests guard lazily allocated state the same way.
//
//ruru:noalloc
func nilGuard(b *buf) {
	if b.scratch == nil {
		b.scratch = make([]byte, 0, 64)
	}
}

//ruru:noalloc
func sliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

//ruru:noalloc
func mapLit() map[string]int {
	return map[string]int{} // want `map literal allocates`
}

//ruru:noalloc
func ptrLit() *buf {
	return &buf{} // want `&composite literal escapes to the heap`
}

// A plain value literal stays on the stack.
//
//ruru:noalloc
func valueLit() buf {
	return buf{}
}

//ruru:noalloc
func closure(n int) func() int {
	return func() int { return n } // want `closure captures n`
}

// A capture-free literal compiles to a static function.
//
//ruru:noalloc
func staticClosure() func() int {
	return func() int { return 1 }
}

//ruru:noalloc
func format(n int) {
	fmt.Println(n) // want `fmt.Println allocates`
}

//ruru:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//ruru:noalloc
func convert(b []byte) string {
	return string(b) // want `conversion allocates a copy`
}

type sink interface{ put(v any) }

//ruru:noalloc
func box(s sink, v [4]int) {
	s.put(v) // want `converting \[4\]int to interface .* boxes the value`
}

// Pointer-shaped values fit the interface word without boxing.
//
//ruru:noalloc
func noBox(s sink, p *buf) {
	s.put(p)
}

//ruru:noalloc
func freshAppend(n int) int {
	var s []int
	for i := 0; i < n; i++ {
		s = append(s, i) // want `append grows s, a locally declared slice`
	}
	return len(s)
}

// Appending to caller-owned scratch is the amortized idiom.
//
//ruru:noalloc
func reusedAppend(b *buf, v float64) {
	b.vals = append(b.vals, v)
}

// Unannotated functions may allocate freely.
func unannotated() []int {
	return make([]int, 8)
}

// An intentionally cold allocation can be suppressed with a justified
// directive.
//
//ruru:noalloc
func coldPath(b *buf) {
	b.scratch = make([]byte, 16) //ruru:ignore noalloc one-time reconfiguration, pinned by the alloc benchmark
}
