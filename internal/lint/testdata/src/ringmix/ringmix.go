// Regression fixture: the PR-2 ingest-ring bug class. The ring's
// head/tail cursors were plain uint64 fields updated through sync/atomic
// by producers and consumers — until a depth helper read one of them
// plainly, racing the atomic writers. (The production rings have since
// moved to typed atomic.Uint64 fields, which are safe by construction;
// this fixture pins that the analyzer catches the original mixed shape.)
package ringmix

import "sync/atomic"

type ring struct {
	buf  []int
	head uint64
	tail uint64
}

func (r *ring) push(v int) bool {
	tail := atomic.LoadUint64(&r.tail)
	if tail-atomic.LoadUint64(&r.head) >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&uint64(len(r.buf)-1)] = v
	atomic.StoreUint64(&r.tail, tail+1)
	return true
}

func (r *ring) pop() (int, bool) {
	head := atomic.LoadUint64(&r.head)
	if head == atomic.LoadUint64(&r.tail) {
		return 0, false
	}
	v := r.buf[head&uint64(len(r.buf)-1)]
	atomic.StoreUint64(&r.head, head+1)
	return v, true
}

// depth mixes a plain read of tail with the atomic writers above — the
// data race the regression fixed.
func (r *ring) depth() int {
	return int(r.tail - atomic.LoadUint64(&r.head)) // want `non-atomic access to field tail`
}
