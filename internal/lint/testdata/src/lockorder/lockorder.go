// Fixture for the lockorder analyzer. The test declares classes A, B, C
// and leaf over the fields of S with order A → B → {C, leaf}: C and leaf
// are leaves (nothing may be acquired under them) and, as siblings with
// no connecting path, must never nest with each other.
package lockorder

import "sync"

type S struct {
	a sync.Mutex
	b sync.RWMutex
	c sync.Mutex
	l sync.Mutex
}

// Straight-line nesting in declared order is fine.
func ok(s *S) {
	s.a.Lock()
	s.b.Lock()
	s.c.Lock()
	s.c.Unlock()
	s.b.Unlock()
	s.a.Unlock()
}

// Transitive closure: A → C directly, without B in between.
func okSkip(s *S) {
	s.a.Lock()
	defer s.a.Unlock()
	s.c.Lock()
	s.c.Unlock()
}

// Releasing the earlier lock makes the later acquisition unordered.
func okRelease(s *S) {
	s.b.Lock()
	s.b.Unlock()
	s.a.Lock()
	s.a.Unlock()
}

// Re-acquiring a held class is allowed: several instances of one class
// (every tsdb stripe during a checkpoint) may legally be held together.
func okSameClass(s1, s2 *S) {
	s1.c.Lock()
	s2.c.Lock()
	s2.c.Unlock()
	s1.c.Unlock()
}

// A lock acquired inside a branch is not considered held after the join —
// the analyzer's documented under-approximation.
func okBranch(s *S, p bool) {
	if p {
		s.b.Lock()
	}
	s.a.Lock()
	s.a.Unlock()
}

// A goroutine starts with nothing held, so its body is walked with an
// empty held set even when the spawner holds a leaf.
func okGo(s *S) {
	s.c.Lock()
	defer s.c.Unlock()
	go func() {
		s.b.Lock()
		s.b.Unlock()
	}()
}

func inversion(s *S) {
	s.b.Lock()
	s.a.Lock() // want `acquires A while holding B .* the declared lock order is A before B`
	s.a.Unlock()
	s.b.Unlock()
}

// `defer b.Unlock()` keeps B held for the rest of the walk.
func deferHeld(s *S) {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock() // want `acquires A while holding B`
	s.a.Unlock()
}

// leaf has no outgoing edge: nothing may be acquired under it.
func underLeaf(s *S) {
	s.l.Lock()
	defer s.l.Unlock()
	s.c.Lock() // want `acquires C while holding leaf .* forbids`
	s.c.Unlock()
}

// C and leaf have no connecting path: forbidden in both directions.
func siblings(s *S) {
	s.c.Lock()
	s.l.Lock() // want `acquires leaf while holding C .* forbids`
	s.l.Unlock()
	s.c.Unlock()
}

// RLock is an acquisition like any other.
func rlockInversion(s *S) {
	s.c.Lock()
	s.b.RLock() // want `acquires B while holding C .* the declared lock order is B before C`
	s.b.RUnlock()
	s.c.Unlock()
}

func lockB(s *S) {
	s.b.Lock()
	s.b.Unlock()
}

func lockBIndirect(s *S) {
	lockB(s)
}

// Call-graph propagation: calling a function that may (transitively)
// acquire B is checked like acquiring B.
func viaCall(s *S) {
	s.c.Lock()
	defer s.c.Unlock()
	lockB(s) // want `calls lockB, which may acquire B while holding C`
}

func viaTwoCalls(s *S) {
	s.c.Lock()
	defer s.c.Unlock()
	lockBIndirect(s) // want `calls lockBIndirect, which may acquire B while holding C`
}
