// Fixture for the atomicmix analyzer: fields touched through sync/atomic
// anywhere in the package must be touched that way everywhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits uint64
	cold uint64
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) load() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counters) snapshot() uint64 {
	return c.hits // want `non-atomic access to field hits`
}

func (c *counters) reset() {
	c.hits = 0 // want `non-atomic access to field hits`
}

func (c *counters) addr() *uint64 {
	return &c.hits // want `non-atomic access to field hits`
}

// cold is never touched atomically; plain access is fine.
func (c *counters) touchCold() uint64 {
	c.cold++
	return c.cold
}

// Composite-literal initialization of a tracked field is unpublished
// state under construction, and allowed.
func fresh() *counters {
	return &counters{hits: 1}
}

// A genuinely race-free pre-publication write can be suppressed with a
// justified directive.
func freshCopy(seed uint64) *counters {
	c := &counters{}
	c.hits = seed //ruru:ignore atomicmix unpublished: no other goroutine can see c yet
	return c
}
