// Fixture for the //ruru:ignore directive rules: a bare directive and one
// naming an unknown analyzer are themselves errors and suppress nothing;
// a justified directive suppresses exactly its analyzer on its line. The
// expectations live in TestIgnoreDirectives rather than want comments,
// because the diagnostics land on the directive lines themselves.
package directive

import "sync/atomic"

type c struct {
	n uint64
}

func bump(x *c) {
	atomic.AddUint64(&x.n, 1)
}

func bare(x *c) uint64 {
	//ruru:ignore atomicmix
	return x.n
}

func unknown(x *c) {
	x.n = 0 //ruru:ignore atomicmux pre-publication write
}

func justified(x *c) uint64 {
	return x.n //ruru:ignore atomicmix single-goroutine helper with no concurrent writers
}
