package lint_test

import (
	"go/types"
	"strings"
	"testing"

	"ruru/internal/lint"
)

// TestRepoSpecResolves pins the repo spec to the real tree: every lock
// class must name an existing mutex field and every mustcheck entry an
// existing function, so renaming a lock or an API without updating
// spec.go fails here instead of silently disabling the analyzer.
func TestRepoSpecResolves(t *testing.T) {
	pkgs, err := lint.LoadPackages(".", []string{
		"ruru/internal/tsdb",
		"ruru/internal/fed",
		"ruru/internal/mq",
		"ruru/internal/ruru",
	})
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*lint.Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}

	lockSpec := lint.RepoLockOrder()
	ids := map[string]bool{}
	for _, c := range lockSpec.Classes {
		ids[c.ID] = true
		i := strings.LastIndex(c.Type, ".")
		if i < 0 {
			t.Errorf("class %s: malformed type %q", c.ID, c.Type)
			continue
		}
		pkgPath, typeName := c.Type[:i], c.Type[i+1:]
		p := byPath[pkgPath]
		if p == nil {
			t.Errorf("class %s: package %s not loaded", c.ID, pkgPath)
			continue
		}
		obj := p.Types.Scope().Lookup(typeName)
		if obj == nil {
			t.Errorf("class %s: type %s not found in %s", c.ID, typeName, pkgPath)
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			t.Errorf("class %s: %s is not a struct", c.ID, c.Type)
			continue
		}
		var field *types.Var
		for j := 0; j < st.NumFields(); j++ {
			if st.Field(j).Name() == c.Field {
				field = st.Field(j)
				break
			}
		}
		if field == nil {
			t.Errorf("class %s: %s has no field %s", c.ID, c.Type, c.Field)
			continue
		}
		ft := field.Type().String()
		if ft != "sync.Mutex" && ft != "sync.RWMutex" {
			t.Errorf("class %s: field %s.%s has type %s, not a sync mutex", c.ID, c.Type, c.Field, ft)
		}
	}
	for _, e := range lockSpec.Order {
		if !ids[e[0]] || !ids[e[1]] {
			t.Errorf("order edge %s → %s references an undeclared class", e[0], e[1])
		}
	}

	known := map[string]bool{}
	for _, p := range pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.Func:
				known[obj.FullName()] = true
			case *types.TypeName:
				if named, ok := obj.Type().(*types.Named); ok {
					for i := 0; i < named.NumMethods(); i++ {
						known[named.Method(i).FullName()] = true
					}
				}
			}
		}
	}
	for _, fn := range lint.RepoMustCheck().Funcs {
		if !known[fn] {
			t.Errorf("mustcheck spec names %s, which does not resolve in the tree", fn)
		}
	}
}
