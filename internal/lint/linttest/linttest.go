// Package linttest runs lint analyzers over fixture packages and checks
// their findings against `// want` annotations — the standard-library
// stand-in for golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is one Go package in a directory under testdata/src/<name>,
// relative to the calling test's package directory. Every line expected
// to produce a finding carries an end-of-line comment holding one or more
// quoted regular expressions:
//
//	s.b.Lock() // want `acquires B while holding C`
//	x, y := f() // want "first finding" "second finding"
//
// Each regexp must match the message of one diagnostic reported on that
// line. A diagnostic with no matching want, and a want with no matching
// diagnostic, both fail the test. Fixtures run through lint.RunAnalyzers
// — the same path ruru-vet uses — so //ruru:ignore suppression behaves
// identically, and fixtures can exercise the directives themselves.
package linttest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ruru/internal/lint"
)

// want is one expected-diagnostic annotation.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`^//\s*want\s+(.+)$`)
var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the fixture at testdata/src/<fixture>, applies analyzers, and
// diffs the diagnostics against the fixture's want annotations.
func Run(t *testing.T, fixture string, analyzers ...*lint.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := lint.LoadFixture(dir, fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := lint.RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", fixture, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// collectWants parses every `// want` comment in the fixture.
func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				out = append(out, parseWantComment(t, pkg, c)...)
			}
		}
	}
	return out
}

func parseWantComment(t *testing.T, pkg *lint.Package, c *ast.Comment) []*want {
	m := wantRe.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*want
	for _, q := range wantArgRe.FindAllString(m[1], -1) {
		var pattern string
		if strings.HasPrefix(q, "`") {
			pattern = strings.Trim(q, "`")
		} else {
			var err error
			pattern, err = strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
			}
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
		}
		out = append(out, &want{
			file: filepath.Base(pos.Filename),
			line: pos.Line,
			re:   re,
			raw:  q,
		})
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want comment with no quoted patterns: %s", pos.Filename, pos.Line, c.Text)
	}
	return out
}
