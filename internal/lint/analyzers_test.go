package lint_test

import (
	"strings"
	"testing"

	"ruru/internal/lint"
	"ruru/internal/lint/linttest"
)

// fixtureLockSpec mirrors the shape of the repo spec over the fixture's S
// type: A → B → {C, leaf}, so C and leaf are leaves and mutually
// forbidden siblings.
func fixtureLockSpec() *lint.LockOrderSpec {
	return &lint.LockOrderSpec{
		Classes: []lint.LockClass{
			{ID: "A", Type: "lockorder.S", Field: "a"},
			{ID: "B", Type: "lockorder.S", Field: "b"},
			{ID: "C", Type: "lockorder.S", Field: "c"},
			{ID: "leaf", Type: "lockorder.S", Field: "l"},
		},
		Order: [][2]string{
			{"A", "B"},
			{"B", "C"},
			{"B", "leaf"},
		},
	}
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "lockorder", lint.LockOrder(fixtureLockSpec()))
}

// TestLockOrderFedStatsRegression pins the PR-5 federation bug: Stats
// taking per-probe locks under the aggregator's map lock, two classes the
// spec leaves unordered.
func TestLockOrderFedStatsRegression(t *testing.T) {
	spec := &lint.LockOrderSpec{
		Classes: []lint.LockClass{
			{ID: "fed.aggMu", Type: "fedstats.Aggregator", Field: "mu"},
			{ID: "fed.aggProbeMu", Type: "fedstats.aggProbe", Field: "mu"},
		},
		// No edges: the two classes must never nest, in either order.
	}
	linttest.Run(t, "fedstats", lint.LockOrder(spec))
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, "atomicmix", lint.AtomicMix())
}

// TestAtomicMixRingRegression pins the PR-2 bug class: a ring cursor
// updated through sync/atomic but read plainly in a depth helper.
func TestAtomicMixRingRegression(t *testing.T) {
	linttest.Run(t, "ringmix", lint.AtomicMix())
}

func TestNoAlloc(t *testing.T) {
	linttest.Run(t, "noalloc", lint.NoAlloc())
}

func TestMustCheck(t *testing.T) {
	spec := &lint.MustCheckSpec{Funcs: []string{
		"(*mustcheck.DB).Close",
		"(*mustcheck.DB).WriteBatch",
	}}
	linttest.Run(t, "mustcheck", lint.MustCheck(spec))
}

// TestIgnoreDirectives checks the directive rules directly: a bare
// directive and an unknown-analyzer directive are reported and suppress
// nothing, while a justified one suppresses exactly its line. The
// expectations are asserted programmatically because the diagnostics land
// on the directive lines themselves, where a want comment cannot sit.
func TestIgnoreDirectives(t *testing.T) {
	pkg, err := lint.LoadFixture("testdata/src/directive", "directive")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{lint.AtomicMix()})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	wantSubstrings := []string{
		// bare: the unjustified directive is an error AND the finding on
		// the next line survives.
		"requires a justification",
		"non-atomic access to field n", // bare's return x.n
		// unknown: the misspelled analyzer is an error AND the finding on
		// its own line survives.
		`unknown analyzer "atomicmux"`,
		"non-atomic access to field n", // unknown's x.n = 0
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wantSubstrings), strings.Join(got, "\n"))
	}
	matched := make([]bool, len(diags))
	for _, w := range wantSubstrings {
		found := false
		for i, g := range got {
			if !matched[i] && strings.Contains(g, w) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q; got:\n%s", w, strings.Join(got, "\n"))
		}
	}
	// The justified directive must have suppressed its line entirely.
	for _, g := range got {
		if strings.Contains(g, "single-goroutine") {
			t.Errorf("justified suppression failed: %s", g)
		}
	}
}
