// Package lint implements ruru's repo-invariant static analyzers and the
// minimal go/analysis-style framework they run on.
//
// The repo's hardest correctness properties are runtime invariants that do
// not show up in any unit test until they are violated under load: the
// tsdb lock order (commitMu → stripe mu → dirMu, WAL mu/syncMu as leaves),
// the federation rule that Aggregator.mu and aggProbe.mu never nest, the
// atomics-only discipline on counter fields, and the zero-allocation
// contract of the hot write paths. Each of these classes has produced a
// real bug that was caught late (see docs/TESTING.md "Static analysis").
// This package turns them into machine-checked properties: four analyzers
// — lockorder, atomicmix, noalloc, mustcheck — run by `go run
// ./cmd/ruru-vet ./...` as a blocking CI step.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is built on the standard library only:
// the repo has no third-party dependencies and keeps it that way. Loading
// is export-data based (see load.go), so analysis of one package never
// re-type-checks its dependencies from source.
//
// # Suppressing a finding
//
// A diagnostic can be suppressed with a justified ignore directive:
//
//	//ruru:ignore <analyzer> <justification>
//
// placed either at the end of the offending line or on the line directly
// above it. The justification is mandatory — a bare directive is itself
// reported as an error — so every suppression documents why the invariant
// does not apply. Directives name exactly one analyzer; suppressing all
// analyzers at once is intentionally impossible.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant it encodes.
	Doc string
	// Run performs the check on one package, reporting findings through
	// the pass.
	Run func(*Pass) error
}

// A Pass connects one Analyzer run to one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ignoreDirective is one parsed //ruru:ignore comment.
type ignoreDirective struct {
	analyzer      string
	justification string
	pos           token.Position
	// line is the source line the directive applies to: its own line for
	// an end-of-line comment, the following line for a standalone one.
	line int
	used bool
}

var ignoreRe = regexp.MustCompile(`^//ruru:ignore\s+(\S+)\s*(.*)$`)

// parseIgnores extracts every //ruru:ignore directive from the package,
// keyed by (filename, effective line).
func parseIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		// Record which lines hold non-comment code, to decide whether a
		// directive is end-of-line (applies to its own line) or standalone
		// (applies to the next line).
		codeLines := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			codeLines[fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &ignoreDirective{
					analyzer:      m[1],
					justification: strings.TrimSpace(m[2]),
					pos:           pos,
					line:          pos.Line,
				}
				if !codeLines[pos.Line] {
					d.line = pos.Line + 1
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// RunAnalyzers executes every analyzer on pkg and returns the surviving
// diagnostics: findings suppressed by a justified //ruru:ignore directive
// are dropped, directives with no justification or naming no known
// analyzer are themselves reported.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		all = append(all, pass.diags...)
	}

	directives := parseIgnores(pkg.Fset, pkg.Files)
	byKey := map[string][]*ignoreDirective{}
	for _, d := range directives {
		byKey[fmt.Sprintf("%s:%d:%s", d.pos.Filename, d.line, d.analyzer)] = append(
			byKey[fmt.Sprintf("%s:%d:%s", d.pos.Filename, d.line, d.analyzer)], d)
	}
	kept := all[:0]
	for _, diag := range all {
		key := fmt.Sprintf("%s:%d:%s", diag.Pos.Filename, diag.Pos.Line, diag.Analyzer)
		suppressed := false
		for _, d := range byKey[key] {
			if d.justification != "" {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	for _, d := range directives {
		switch {
		case d.justification == "":
			kept = append(kept, Diagnostic{Pos: d.pos, Analyzer: "directive",
				Message: "//ruru:ignore requires a justification: //ruru:ignore <analyzer> <why>"})
		case !known[d.analyzer]:
			kept = append(kept, Diagnostic{Pos: d.pos, Analyzer: "directive",
				Message: fmt.Sprintf("//ruru:ignore names unknown analyzer %q", d.analyzer)})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept, nil
}

// derefNamed unwraps pointers and returns the named type beneath, or nil.
func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// namedFQN returns "pkgpath.TypeName" for a named type (generic origin
// name for instantiated generics), or "".
func namedFQN(n *types.Named) string {
	if n == nil {
		return ""
	}
	obj := n.Origin().Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
