package lint

// lockorder: a declarative partial order over named mutexes.
//
// The spec names lock classes — (struct type, field) pairs — and the
// allowed nestings between them as directed edges; the transitive closure
// of those edges is the set of (outer, inner) acquisitions permitted.
// Acquiring one tracked lock while another tracked lock is held in any
// pair NOT in that closure is a violation: this single rule expresses
// ordered chains (commitMu → stripe mu → dirMu), leaf-only locks (no
// outgoing edge: nothing may be acquired under them) and forbidden pairs
// (no edge in either direction, e.g. fed's Aggregator.mu ∦ aggProbe.mu).
//
// Tracking is intra-procedural — held locks are followed through
// straight-line code, with control-flow branches analyzed under a copy of
// the held set (an under-approximation: a lock acquired inside a branch
// is not considered held after it) — plus call-graph propagation within
// the package: every function's set of transitively acquired classes is
// computed to a fixpoint, and calling a function that may acquire class C
// while holding class H is checked like a direct acquisition of C.
//
// Deliberate approximations, chosen to keep the checker FP-free on real
// code:
//   - `defer mu.Unlock()` keeps the lock held for the rest of the walk
//     (which is exactly its meaning).
//   - `go f()` bodies and goroutine spawns are not charged to the
//     spawner: a new goroutine starts with nothing held.
//   - Function literals are analyzed as independent functions with an
//     empty held set.
//   - Re-acquiring a held class is allowed: several instances of one
//     class (e.g. every tsdb stripe during a checkpoint) may legally be
//     held together.
//   - RLock and Lock are one acquisition kind: the order invariants here
//     do not distinguish read from write acquisition.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A LockClass names one mutex field the analyzer tracks.
type LockClass struct {
	// ID is the short name used in spec edges and diagnostics, e.g.
	// "tsdb.commitMu".
	ID string
	// Type is the fully qualified named type holding the field, e.g.
	// "ruru/internal/tsdb.DB".
	Type string
	// Field is the mutex field name, e.g. "commitMu". The field's type
	// must be sync.Mutex or sync.RWMutex.
	Field string
}

// A LockOrderSpec is the declarative partial order for one repository.
type LockOrderSpec struct {
	Classes []LockClass
	// Order lists allowed (outer, inner) nestings by class ID; the
	// transitive closure is taken. A class with no outgoing edge is
	// leaf-only; two classes with no connecting path must never nest.
	Order [][2]string
}

// LockOrder builds the analyzer for spec.
func LockOrder(spec *LockOrderSpec) *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "checks Lock/RLock acquisitions against the declared mutex partial order",
		Run:  func(p *Pass) error { return runLockOrder(p, spec) },
	}
}

// allowed returns the closure of spec.Order as a set of "outer→inner".
func (s *LockOrderSpec) allowed() map[string]bool {
	adj := map[string][]string{}
	for _, e := range s.Order {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	closure := map[string]bool{}
	var dfs func(root, cur string)
	dfs = func(root, cur string) {
		for _, next := range adj[cur] {
			key := root + "\x00" + next
			if !closure[key] {
				closure[key] = true
				dfs(root, next)
			}
		}
	}
	for _, c := range s.Classes {
		dfs(c.ID, c.ID)
	}
	return closure
}

// lockOrderRun is the per-pass state.
type lockOrderRun struct {
	pass    *Pass
	spec    *LockOrderSpec
	classOf map[string]string // "pkgpath.Type\x00field" -> class ID
	allowed map[string]bool   // "outer\x00inner"
	// summary maps each package function to the set of tracked classes it
	// may transitively acquire.
	summary map[*types.Func]map[string]bool
	// funcs maps the declared functions to their bodies for the fixpoint.
	funcs map[*types.Func]*ast.FuncDecl
}

func runLockOrder(pass *Pass, spec *LockOrderSpec) error {
	r := &lockOrderRun{
		pass:    pass,
		spec:    spec,
		classOf: map[string]string{},
		allowed: spec.allowed(),
		summary: map[*types.Func]map[string]bool{},
		funcs:   map[*types.Func]*ast.FuncDecl{},
	}
	for _, c := range spec.Classes {
		r.classOf[c.Type+"\x00"+c.Field] = c.ID
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				r.funcs[fn] = fd
			}
		}
	}

	// Pass 1: direct acquisitions per function.
	direct := map[*types.Func]map[string]bool{}
	for fn, fd := range r.funcs {
		direct[fn] = r.directAcquires(fd.Body)
	}
	// Fixpoint: propagate through same-package calls.
	for fn := range r.funcs {
		r.summary[fn] = map[string]bool{}
		for c := range direct[fn] {
			r.summary[fn][c] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range r.funcs {
			for callee := range r.callees(fd.Body) {
				for c := range r.summary[callee] {
					if !r.summary[fn][c] {
						r.summary[fn][c] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: walk every function (and every function literal,
	// independently) with held-set tracking.
	for _, fd := range r.funcs {
		r.walkBody(fd.Body)
	}
	return nil
}

// walkBody analyzes body with an empty held set and then recurses into
// every function literal it contains, each with its own empty held set.
func (r *lockOrderRun) walkBody(body *ast.BlockStmt) {
	held := map[string]token.Pos{}
	r.walkStmts(body.List, held)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			inner := map[string]token.Pos{}
			r.walkStmts(lit.Body.List, inner)
			// Literals nested inside this one are reached by the
			// recursive Inspect; do not double-walk.
		}
		return true
	})
}

// lockCall classifies a call expression as an acquisition/release of a
// tracked class. kind is "lock", "unlock" or "".
func (r *lockOrderRun) lockCall(call *ast.CallExpr) (class, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return "", ""
	}
	fn, ok := r.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	// The receiver must itself be a field selection on a tracked type:
	// x.mu.Lock() with x of (or pointing to) a spec'd named type.
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	tv, ok := r.pass.Info.Types[inner.X]
	if !ok {
		return "", ""
	}
	cls, ok := r.classOf[namedFQN(derefNamed(tv.Type))+"\x00"+inner.Sel.Name]
	if !ok {
		return "", ""
	}
	return cls, kind
}

// directAcquires collects the tracked classes body may acquire directly,
// excluding function literals and `go` statements (new goroutines start
// with nothing held) but including deferred unlock-free paths.
func (r *lockOrderRun) directAcquires(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if cls, kind := r.lockCall(n); kind == "lock" {
				out[cls] = true
			}
		}
		return true
	})
	return out
}

// callees collects the same-package functions body calls directly,
// excluding calls inside function literals, `go` and `defer` statements.
func (r *lockOrderRun) callees(body *ast.BlockStmt) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if fn := r.staticCallee(n); fn != nil {
				out[fn] = true
			}
		}
		return true
	})
	return out
}

// staticCallee resolves a call to a function declared in this package.
func (r *lockOrderRun) staticCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := r.pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != r.pass.Pkg {
		return nil
	}
	if _, declared := r.funcs[fn]; !declared {
		return nil
	}
	return fn
}

// walkStmts processes a statement list sequentially, mutating held.
func (r *lockOrderRun) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		r.walkStmt(s, held)
	}
}

// fork returns a copy of held for analyzing a control-flow branch.
func fork(held map[string]token.Pos) map[string]token.Pos {
	cp := make(map[string]token.Pos, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

func (r *lockOrderRun) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		r.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		r.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		r.walkStmt(s.Init, held)
		r.checkExpr(s.Cond, held)
		r.walkStmt(s.Body, fork(held))
		r.walkStmt(s.Else, fork(held))
	case *ast.ForStmt:
		r.walkStmt(s.Init, held)
		r.checkExpr(s.Cond, held)
		body := fork(held)
		r.walkStmt(s.Body, body)
		r.walkStmt(s.Post, body)
	case *ast.RangeStmt:
		r.checkExpr(s.X, held)
		r.walkStmt(s.Body, fork(held))
	case *ast.SwitchStmt:
		r.walkStmt(s.Init, held)
		r.checkExpr(s.Tag, held)
		for _, c := range s.Body.List {
			r.walkStmts(c.(*ast.CaseClause).Body, fork(held))
		}
	case *ast.TypeSwitchStmt:
		r.walkStmt(s.Init, held)
		r.walkStmt(s.Assign, held)
		for _, c := range s.Body.List {
			r.walkStmts(c.(*ast.CaseClause).Body, fork(held))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := fork(held)
			r.walkStmt(cc.Comm, branch)
			r.walkStmts(cc.Body, branch)
		}
	case *ast.GoStmt:
		// A spawned goroutine starts with nothing held; its body (if a
		// literal) is walked independently by walkBody.
	case *ast.DeferStmt:
		// `defer mu.Unlock()` means the lock stays held for the rest of
		// this walk, which is already how held models it: no-op. Deferred
		// arbitrary calls run at return time in an unknowable lock
		// context; skipped.
	default:
		// Plain statements: check every call in their expressions in
		// source order.
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				r.checkCall(n, held)
			}
			return true
		})
	}
}

// checkExpr checks the calls inside one expression.
func (r *lockOrderRun) checkExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			r.checkCall(n, held)
		}
		return true
	})
}

// checkCall applies one call's effect on held: a tracked Lock acquires
// (after order validation), a tracked Unlock releases, and a call to a
// same-package function is validated against that function's transitive
// acquisition summary.
func (r *lockOrderRun) checkCall(call *ast.CallExpr, held map[string]token.Pos) {
	if cls, kind := r.lockCall(call); kind != "" {
		switch kind {
		case "lock":
			r.checkAcquire(call.Pos(), cls, held, "")
			held[cls] = call.Pos()
		case "unlock":
			delete(held, cls)
		}
		return
	}
	if fn := r.staticCallee(call); fn != nil {
		for cls := range r.summary[fn] {
			r.checkAcquire(call.Pos(), cls, held, fn.Name())
		}
	}
}

// checkAcquire reports acquiring cls while holding any class it is not
// ordered after. via names the callee for indirect acquisitions.
func (r *lockOrderRun) checkAcquire(pos token.Pos, cls string, held map[string]token.Pos, via string) {
	for outer, at := range held {
		if outer == cls {
			continue // multiple instances of one class may nest
		}
		if r.allowed[outer+"\x00"+cls] {
			continue
		}
		what := fmt.Sprintf("acquires %s", cls)
		if via != "" {
			what = fmt.Sprintf("calls %s, which may acquire %s", via, cls)
		}
		why := "which the declared lock order forbids"
		if r.allowed[cls+"\x00"+outer] {
			why = fmt.Sprintf("but the declared lock order is %s before %s", cls, outer)
		}
		r.pass.Reportf(pos, "%s while holding %s (held since %s), %s",
			what, outer, r.pass.Fset.Position(at), why)
	}
}

// String renders the spec's order edges for documentation/tests.
func (s *LockOrderSpec) String() string {
	var b strings.Builder
	for i, e := range s.Order {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s → %s", e[0], e[1])
	}
	return b.String()
}
