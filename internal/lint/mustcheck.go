package lint

// mustcheck: repo-specific unchecked-result lint.
//
// errcheck-style tools flag every dropped error; this analyzer instead
// names the specific APIs whose results have historically been dropped
// in review and whose loss is silently corrupting:
//
//   - (*tsdb.DB).Close — on a persistent DB the final WAL flush/fsync
//     error surfaces only here; dropping it turns "clean shutdown loses
//     nothing" into a hope.
//   - (*tsdb.DB).Write / WriteBatch / WriteBatchRef — (applied, err):
//     under a concurrent Close a batch may be partially applied, and the
//     caller owes the loss ledger the remainder.
//   - the WAL's append/rotate/sync results — an unchecked append error
//     means acknowledging a write that was never made durable.
//   - mq.WriteFrame — the federation ack path; a dropped write error
//     desynchronizes the ack stream.
//
// A call whose results are dropped in an expression statement, or whose
// call is deferred or spawned with `go` (both discard results), is
// reported. Explicitly assigning every result to blank (`_ = db.Close()`)
// is accepted as a deliberate, visible acknowledgement.

import (
	"go/ast"
	"go/types"
)

// MustCheckSpec lists functions whose results must be used, by
// (*types.Func).FullName(): "(*ruru/internal/tsdb.DB).Close",
// "ruru/internal/mq.WriteFrame".
type MustCheckSpec struct {
	Funcs []string
}

// MustCheck builds the analyzer for spec.
func MustCheck(spec *MustCheckSpec) *Analyzer {
	required := make(map[string]bool, len(spec.Funcs))
	for _, f := range spec.Funcs {
		required[f] = true
	}
	return &Analyzer{
		Name: "mustcheck",
		Doc:  "flags dropped results of APIs whose errors are load-bearing (DB.Close, WriteBatch, WAL append/rotate, mq.WriteFrame)",
		Run: func(p *Pass) error {
			return runMustCheck(p, required)
		},
	}
}

func runMustCheck(pass *Pass, required map[string]bool) error {
	report := func(call *ast.CallExpr, how string) {
		fn := calleeFunc(pass, call)
		if fn == nil || !required[fn.FullName()] {
			return
		}
		pass.Reportf(call.Pos(), "result of %s is %s — handle it or assign it to _ explicitly", fn.FullName(), how)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call, "dropped")
				}
			case *ast.DeferStmt:
				report(n.Call, "dropped by defer (wrap it: defer func() { … Close() … }())")
			case *ast.GoStmt:
				report(n.Call, "dropped by go")
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves the called function/method, if statically known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}
