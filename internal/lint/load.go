package lint

// Export-data package loading. The stdlib go/importer can read compiled
// export data through a lookup function; `go list -export` produces (and
// caches) that export data for every dependency. Together they give the
// same loading model as golang.org/x/tools/go/packages — parse and
// type-check only the packages under analysis, resolve everything they
// import from export data — without any dependency outside the standard
// library and the go toolchain itself.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` on patterns in dir.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function over go list results.
func exportLookup(pkgs []*listedPackage) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// newInfo allocates the full types.Info the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadPackages loads and type-checks the non-test Go files of every
// non-standard-library package matched by patterns (e.g. "./...")
// relative to dir. Dependencies are resolved from compiled export data,
// never re-parsed.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(listed))

	var out []*Package
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadFixture loads one test-fixture package: every .go file directly in
// dir, type-checked under import path path, with its imports resolved
// from toolchain export data (`go list -export` over the imports the
// fixture names). Fixture trees live under testdata/, which go list's
// ./... patterns never match, so fixtures stay invisible to the module
// build and to ruru-vet itself; the linttest harness loads them through
// this entry point.
func LoadFixture(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var imports []string
	seen := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, im := range f.Imports {
			p := strings.Trim(im.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in fixture %s", dir)
	}
	var imp types.Importer
	if len(imports) > 0 {
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		imp = importer.ForCompiler(fset, "gc", exportLookup(listed))
	} else {
		imp = importer.ForCompiler(fset, "gc", nil)
	}
	info := newInfo()
	tpkg, err := (&types.Config{Importer: imp}).Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", dir, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// checkPackage parses files (named relative to dir) and type-checks them
// as one package using imp for imports.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
