package experiments

import (
	"fmt"
	"io"

	"ruru/internal/anomaly"
	"ruru/internal/core"
	"ruru/internal/gen"
	"ruru/internal/geo"
)

// E5Result covers the paper's other real-time detection claims (§3):
// SYN floods and unusual connection counts between two locations.
type E5Result struct {
	// SYN flood detection.
	FloodStart        int64 // ground truth, ns
	FloodDetected     bool
	FloodDetectAt     int64 // detection bucket timestamp
	FloodDetectDelayS float64
	FloodFalseAlarms  int // alarms outside [start, end+grace]

	// Connection surge detection.
	SurgeStart        int64
	SurgeDetected     bool
	SurgeDetectAt     int64
	SurgeDetectDelayS float64
	SurgeFalseAlarms  int
}

// E5Config parameterizes the detection experiment.
type E5Config struct {
	Seed      int64
	FlowRate  float64 // background flows/s (default 100)
	Duration  int64   // default 120s
	FloodAt   int64   // default 60s
	FloodLen  int64   // default 10s
	FloodRate float64 // default 5000 SYN/s
	SurgeAt   int64   // default 70s
	SurgeLen  int64   // default 10s
	SurgeRate float64 // default 800 conn/s
}

// E5 runs flood + surge detection over the full measurement path.
func E5(cfg E5Config, w io.Writer) (E5Result, error) {
	if cfg.FlowRate <= 0 {
		cfg.FlowRate = 100
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 120e9
	}
	if cfg.FloodAt <= 0 {
		cfg.FloodAt = 60e9
	}
	if cfg.FloodLen <= 0 {
		cfg.FloodLen = 10e9
	}
	if cfg.FloodRate <= 0 {
		cfg.FloodRate = 5000
	}
	if cfg.SurgeAt <= 0 {
		cfg.SurgeAt = 70e9
	}
	if cfg.SurgeLen <= 0 {
		cfg.SurgeLen = 10e9
	}
	if cfg.SurgeRate <= 0 {
		cfg.SurgeRate = 800
	}
	world, err := geo.NewWorld(geo.WorldOptions{Seed: cfg.Seed})
	if err != nil {
		return E5Result{}, err
	}
	g, err := gen.New(gen.Config{
		Seed: cfg.Seed, World: world,
		FlowRate: cfg.FlowRate, Duration: cfg.Duration,
		Floods: []gen.FloodSpec{
			// Ambient scanning noise throughout: the baseline.
			{Start: 0, Duration: cfg.Duration, Rate: 5, SrcCity: 12, DstCity: 3},
			// The attack.
			{Start: cfg.FloodAt, Duration: cfg.FloodLen, Rate: cfg.FloodRate, SrcCity: 4, DstCity: 1},
		},
		Surges: []gen.SurgeSpec{
			{Start: cfg.SurgeAt, Duration: cfg.SurgeLen, Rate: cfg.SurgeRate, SrcCity: 12, DstCity: 14},
		},
	})
	if err != nil {
		return E5Result{}, err
	}

	// Short handshake timeout so unanswered SYNs become flood signal
	// quickly — this is the operational knob for detection latency.
	const timeout = 3e9
	flood := anomaly.NewFloodDetector(anomaly.FloodConfig{
		BucketNs: 1e9, MinCount: 100, Ratio: 8, WarmupBuckets: 5,
	})
	surge := anomaly.NewSurgeDetector(anomaly.SurgeConfig{
		BucketNs: 1e9, MinCount: 50, Ratio: 6, WarmupBuckets: 5,
	})
	rep := Replay{
		Queues: 4,
		Table: core.TableConfig{
			Capacity: 1 << 17, Timeout: timeout,
			OnExpire: func(lastTS int64, awaiting bool) {
				if awaiting {
					flood.ObserveUnanswered(lastTS)
				}
			},
		},
		OnMeasure: func(m *core.Measurement) {
			pair := "?"
			if cs, ok := world.CityOf(m.Flow.Client); ok {
				if cd, ok := world.CityOf(m.Flow.Server); ok {
					pair = cs.Name + "→" + cd.Name
				}
			}
			surge.Observe(pair, m.ACKTime)
		},
	}
	rep.Run(g)
	flood.Flush()
	surge.Flush()

	res := E5Result{FloodStart: cfg.FloodAt, SurgeStart: cfg.SurgeAt}
	for _, ev := range flood.Events() {
		// Event time is in expiry-timestamp space: the flood SYN's last
		// activity. Compare against the flood window itself.
		if ev.Time >= cfg.FloodAt-2e9 && ev.Time <= cfg.FloodAt+cfg.FloodLen+2*timeout {
			if !res.FloodDetected {
				res.FloodDetected = true
				res.FloodDetectAt = ev.Time
				// Detection delay includes the handshake timeout: SYNs
				// must expire before they count as unanswered.
				res.FloodDetectDelayS = float64(ev.Time-cfg.FloodAt)/1e9 + float64(timeout)/1e9
			}
		} else {
			res.FloodFalseAlarms++
		}
	}
	for _, ev := range surge.Events() {
		if ev.Time >= cfg.SurgeAt-2e9 && ev.Time <= cfg.SurgeAt+cfg.SurgeLen+5e9 {
			if !res.SurgeDetected {
				res.SurgeDetected = true
				res.SurgeDetectAt = ev.Time
				res.SurgeDetectDelayS = float64(ev.Time-cfg.SurgeAt) / 1e9
			}
		} else {
			res.SurgeFalseAlarms++
		}
	}

	if w != nil {
		fmt.Fprintf(w, "E5: real-time SYN flood and connection-surge detection (§3)\n")
		fmt.Fprintf(w, "  flood injected at t=%ds (%.0f SYN/s for %ds), handshake timeout %ds\n",
			cfg.FloodAt/1e9, cfg.FloodRate, cfg.FloodLen/1e9, int64(timeout)/1e9)
		if res.FloodDetected {
			fmt.Fprintf(w, "  flood detected              yes, ~%.1fs after onset (0 false alarms: %v)\n",
				res.FloodDetectDelayS, res.FloodFalseAlarms == 0)
		} else {
			fmt.Fprintf(w, "  flood detected              NO\n")
		}
		fmt.Fprintf(w, "  surge injected at t=%ds (%.0f conn/s for %ds)\n",
			cfg.SurgeAt/1e9, cfg.SurgeRate, cfg.SurgeLen/1e9)
		if res.SurgeDetected {
			fmt.Fprintf(w, "  surge detected              yes, ~%.1fs after onset (0 false alarms: %v)\n",
				res.SurgeDetectDelayS, res.SurgeFalseAlarms == 0)
		} else {
			fmt.Fprintf(w, "  surge detected              NO\n")
		}
	}
	return res, nil
}
