package experiments

import (
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"ruru/internal/core"
	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/nic"
	"ruru/internal/pkt"
	"ruru/internal/rss"
)

// E2Row is one point of the throughput-scaling experiment: aggregate packet
// rate with a given number of RSS queues/cores (paper Fig. 2 and the
// "high-speed, 10 Gbit/s" claim).
type E2Row struct {
	Queues      int
	Packets     int64
	Elapsed     time.Duration
	Mpps        float64
	Gbps        float64 // at the trace's mean frame size
	MeanFrameSz float64
	Measured    uint64 // handshakes completed during the run
}

// E2Config parameterizes the scaling sweep.
type E2Config struct {
	Seed       int64
	QueueList  []int // default {1,2,4,8}
	TracePkts  int   // packets in the pre-rendered trace (default 300k)
	RunPackets int64 // total packets per row (default 2M)
	Burst      int   // default 64
}

// E2 runs the sweep.
//
// Topology per row: Q fully independent units, each owning one RSS queue —
// its own mempool, SPSC ring, delivery goroutine (standing in for the NIC's
// per-queue DMA engine) and measurement worker polling with RxBurst. This is
// the paper's architecture: hardware RSS classifies (here: pre-computed
// before the clock starts, since a real NIC does it at line rate in
// silicon), then each core polls its own queue sharing nothing. The timed
// region covers delivery, buffer recycling, burst polling, parsing and
// handshake-table processing.
func E2(cfg E2Config, w io.Writer) ([]E2Row, error) {
	if len(cfg.QueueList) == 0 {
		cfg.QueueList = []int{1, 2, 4, 8}
	}
	if cfg.TracePkts <= 0 {
		cfg.TracePkts = 300_000
	}
	if cfg.RunPackets <= 0 {
		cfg.RunPackets = 2_000_000
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 64
	}
	world, err := geo.NewWorld(geo.WorldOptions{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	// A handshake-heavy but realistic mix: data segments and UDP noise
	// exercise the negative-lookup path that dominates a real link.
	g, err := gen.New(gen.Config{
		Seed: cfg.Seed, World: world,
		FlowRate: 20_000, Duration: 1e15,
		DataSegments: 3, UDPRate: 4_000, MidstreamRate: 500,
	})
	if err != nil {
		return nil, err
	}
	trace := make([]gen.TracePacket, 0, cfg.TracePkts)
	var p gen.Packet
	var bytes int64
	for len(trace) < cfg.TracePkts && g.Next(&p) {
		frame := make([]byte, len(p.Frame))
		copy(frame, p.Frame)
		tp := gen.TracePacket{TS: p.TS, Frame: frame, SrcPort: p.SrcPort, DstPort: p.DstPort}
		tp.Src, tp.Dst = p.Src.As16(), p.Dst.As16()
		tp.Is6 = p.Src.Is6() && !p.Src.Is4In6()
		trace = append(trace, tp)
		bytes += int64(len(frame))
	}
	meanFrame := float64(bytes) / float64(len(trace))

	if w != nil {
		fmt.Fprintf(w, "E2: pipeline throughput vs RSS queues (Fig. 2; %d-pkt trace, mean frame %.0fB, GOMAXPROCS=%d)\n",
			len(trace), meanFrame, runtime.GOMAXPROCS(0))
		fmt.Fprintf(w, "  %-7s %12s %10s %8s %8s %10s\n", "queues", "packets", "elapsed", "Mpps", "Gbps", "measured")
	}
	rows := make([]E2Row, 0, len(cfg.QueueList))
	for _, q := range cfg.QueueList {
		row := e2Run(trace, meanFrame, q, cfg)
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "  %-7d %12d %10s %8.2f %8.2f %10d\n",
				row.Queues, row.Packets, row.Elapsed.Round(time.Millisecond),
				row.Mpps, row.Gbps, row.Measured)
		}
	}
	return rows, nil
}

func e2Run(trace []gen.TracePacket, meanFrame float64, queues int, cfg E2Config) E2Row {
	hasher := rss.NewSymmetric()

	// Pre-classify the trace onto queues with the symmetric RSS hash —
	// the work NIC silicon does at line rate — before the clock starts.
	type classified struct {
		frame []byte
		ts    int64
		hash  uint32
	}
	perQueue := make([][]classified, queues)
	for i := range trace {
		tp := &trace[i]
		src := addrFrom(tp.Src, tp.Is6)
		dst := addrFrom(tp.Dst, tp.Is6)
		h := hasher.HashTuple(src, dst, tp.SrcPort, tp.DstPort)
		q := rss.Queue(h, queues)
		perQueue[q] = append(perQueue[q], classified{frame: tp.Frame, ts: tp.TS, hash: h})
	}
	perUnit := cfg.RunPackets / int64(queues)

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		totalPkts int64
		totalMeas uint64
	)
	start := time.Now()
	for q := 0; q < queues; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			share := perQueue[q]
			if len(share) == 0 {
				return
			}
			pool := nic.NewMempool(8192, 2048)
			port, err := nic.NewPort(nic.PortConfig{
				Queues: 1, QueueDepth: 4096, Pool: pool,
				// The DMA stand-in is a lossless looping source: Block
				// makes backpressure a port concern instead of a
				// caller-side stats-diff retry loop.
				Policy: nic.Block,
			})
			if err != nil {
				return
			}
			// Delivery goroutine: the per-queue DMA engine. It streams the
			// unit's share of the trace into the port in preclassified
			// bursts until the target is reached.
			var delivered int64
			go func() {
				burst := cfg.Burst
				frames := make([]nic.Frame, 0, burst)
				hashes := make([]uint32, 0, burst)
				i := 0
				for delivered < perUnit {
					frames, hashes = frames[:0], hashes[:0]
					for len(frames) < burst && delivered+int64(len(frames)) < perUnit {
						c := &share[i]
						i++
						if i == len(share) {
							i = 0
						}
						frames = append(frames, nic.Frame{Data: c.frame, TS: c.ts})
						hashes = append(hashes, c.hash)
					}
					delivered += int64(port.InjectPreclassifiedBurst(frames, hashes))
				}
			}()

			// Measurement worker: burst-poll, parse, process.
			table := core.NewHandshakeTable(core.TableConfig{
				Capacity: 1 << 16,
				Timeout:  1 << 62, // replay laps reuse timestamps
				Queue:    q,
			})
			var (
				parser   pkt.Parser
				sum      pkt.Summary
				m        core.Measurement
				bufs     = make([]*nic.Buf, cfg.Burst)
				done     int64
				measured uint64
			)
			for done < perUnit {
				n, _ := port.RxBurst(0, bufs)
				if n == 0 {
					runtime.Gosched()
					continue
				}
				for i := 0; i < n; i++ {
					b := bufs[i]
					if err := parser.Parse(b.Bytes(), &sum); err == nil && sum.IsTCP() {
						if table.Process(&sum, b.Timestamp, b.RSSHash, &m) {
							measured++
						}
					}
					b.Free()
					done++
				}
			}
			mu.Lock()
			totalPkts += done
			totalMeas += measured
			mu.Unlock()
		}(q)
	}
	wg.Wait()
	elapsed := time.Since(start)

	return E2Row{
		Queues:      queues,
		Packets:     totalPkts,
		Elapsed:     elapsed,
		Mpps:        float64(totalPkts) / elapsed.Seconds() / 1e6,
		Gbps:        float64(totalPkts) * meanFrame * 8 / elapsed.Seconds() / 1e9,
		MeanFrameSz: meanFrame,
		Measured:    totalMeas,
	}
}

func addrFrom(b [16]byte, is6 bool) netip.Addr {
	if is6 {
		return netip.AddrFrom16(b)
	}
	return netip.AddrFrom16(b).Unmap()
}

// E2BurstRow is one point of the burst-size ablation.
type E2BurstRow struct {
	Burst int
	Mpps  float64
}

// E2Burst sweeps the RxBurst size at a fixed queue count — the batching
// ablation. DPDK's poll-mode performance rests on amortizing per-packet
// overhead (ring synchronization, cache misses) across bursts; this
// quantifies how much of that story survives in the reproduction.
func E2Burst(cfg E2Config, queues int, burstList []int, w io.Writer) ([]E2BurstRow, error) {
	if len(burstList) == 0 {
		burstList = []int{1, 4, 16, 64, 256}
	}
	if queues <= 0 {
		queues = 4
	}
	base := cfg
	base.QueueList = []int{queues}
	if w != nil {
		fmt.Fprintf(w, "E2b: burst-size ablation at %d queues\n", queues)
		fmt.Fprintf(w, "  %-7s %8s\n", "burst", "Mpps")
	}
	rows := make([]E2BurstRow, 0, len(burstList))
	for _, burst := range burstList {
		c := base
		c.Burst = burst
		out, err := E2(c, nil)
		if err != nil {
			return rows, err
		}
		row := E2BurstRow{Burst: burst, Mpps: out[0].Mpps}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "  %-7d %8.2f\n", row.Burst, row.Mpps)
		}
	}
	return rows, nil
}
