package experiments

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/core"
	"ruru/internal/geo"
	"ruru/internal/mq"
)

// E9Row measures the cost of the paper's modularity claim (§2: "Due to the
// modular nature of the pipeline, and the use of ZeroMQ sockets ... Ruru
// can be easily extended ... one could add a filter module"): measurement
// throughput with zero, one and two bus hops between the engine and the
// sink, where the extra hop is a live filter module.
type E9Row struct {
	Topology  string
	Messages  int
	Elapsed   time.Duration
	MsgPerSec float64
	NsPerMsg  float64
}

// E9Config parameterizes the hop benchmark.
type E9Config struct {
	Seed     int64
	Messages int // default 300k
}

// E9 runs the benchmark.
func E9(cfg E9Config, w io.Writer) ([]E9Row, error) {
	if cfg.Messages <= 0 {
		cfg.Messages = 300_000
	}
	world, err := geo.NewWorld(geo.WorldOptions{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	m := core.Measurement{
		Flow: core.FlowKey{
			Client:     world.Addr(0, 1, 42),
			Server:     world.Addr(1, 2, 99),
			ClientPort: 40000, ServerPort: 443,
		},
		Internal: 15e6, External: 130e6, Total: 145e6, ACKTime: 1,
	}

	if w != nil {
		fmt.Fprintf(w, "E9: modularity — bus hops between engine and sink (%d measurements)\n", cfg.Messages)
		fmt.Fprintf(w, "  %-34s %10s %12s %10s\n", "topology", "elapsed", "msg/s", "ns/msg")
	}
	var rows []E9Row

	// Topology A: direct function-call sink (no bus) — the floor.
	{
		var count atomic.Uint64
		sink := core.SinkFunc(func(*core.Measurement) { count.Add(1) })
		start := time.Now()
		for i := 0; i < cfg.Messages; i++ {
			sink.Emit(&m)
		}
		rows = append(rows, e9Row("direct (no bus)", cfg.Messages, time.Since(start), w))
	}

	// Topology B: engine → bus(raw) → enricher → bus(enriched) → sink.
	// The paper's production layout: one analytics hop.
	{
		elapsed, err := e9Bus(world, &m, cfg.Messages, false)
		if err != nil {
			return rows, err
		}
		rows = append(rows, e9Row("bus + enricher (paper layout)", cfg.Messages, elapsed, w))
	}

	// Topology C: as B plus a filter module spliced in between the
	// enriched topic and the sink (re-publishing to a third topic).
	{
		elapsed, err := e9Bus(world, &m, cfg.Messages, true)
		if err != nil {
			return rows, err
		}
		rows = append(rows, e9Row("bus + enricher + filter module", cfg.Messages, elapsed, w))
	}
	return rows, nil
}

func e9Row(name string, msgs int, elapsed time.Duration, w io.Writer) E9Row {
	row := E9Row{
		Topology:  name,
		Messages:  msgs,
		Elapsed:   elapsed,
		MsgPerSec: float64(msgs) / elapsed.Seconds(),
		NsPerMsg:  float64(elapsed.Nanoseconds()) / float64(msgs),
	}
	if w != nil {
		fmt.Fprintf(w, "  %-34s %10s %12.0f %10.0f\n",
			row.Topology, row.Elapsed.Round(time.Millisecond), row.MsgPerSec, row.NsPerMsg)
	}
	return row
}

const e9FilteredTopic = "ruru.filtered"

func e9Bus(world *geo.World, m *core.Measurement, messages int, withFilter bool) (time.Duration, error) {
	bus := mq.NewBus()
	defer bus.Close()
	// HWMs sized to the full run: this measures hop cost, not shedding.
	enr, err := analytics.NewEnricher(analytics.Config{
		DB: world.DB(), Bus: bus, Workers: 2, HWM: messages + 1,
	})
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go enr.Run(ctx)

	finalTopic := analytics.TopicEnriched
	if withFilter {
		// The filter module: subscribe to enriched, drop nothing (worst
		// case for overhead), republish on a new topic.
		filterSub, err := bus.Subscribe(analytics.TopicEnriched, messages+1)
		if err != nil {
			return 0, err
		}
		go func() {
			var e analytics.Enriched
			for msg := range filterSub.C() {
				if analytics.UnmarshalEnriched(msg.Payload, &e) != nil {
					continue
				}
				if e.TotalNs < 0 { // never: pass-through filter
					continue
				}
				bus.Publish(mq.Message{Topic: e9FilteredTopic, Payload: msg.Payload})
			}
		}()
		finalTopic = e9FilteredTopic
	}
	out, err := bus.Subscribe(finalTopic, messages+1)
	if err != nil {
		return 0, err
	}
	var received atomic.Uint64
	go func() {
		for range out.C() {
			received.Add(1)
		}
	}()

	sink := analytics.NewBusSink(bus)
	start := time.Now()
	for i := 0; i < messages; i++ {
		sink.Emit(m)
	}
	deadline := time.Now().Add(60 * time.Second)
	for received.Load() < uint64(messages) {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("stalled: %d/%d through %s", received.Load(), messages, finalTopic)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return time.Since(start), nil
}
