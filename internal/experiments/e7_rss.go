package experiments

import (
	"fmt"
	"io"

	"ruru/internal/core"
	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/rss"
)

// E7Row is one point of the symmetric-RSS ablation (paper §2: "we configure
// symmetric Receiver Side Scaling (RSS)"). An asymmetric key breaks the
// pipeline in two distinct ways, and the ablation separates them:
//
//  1. Table indexing: Ruru reuses the NIC's RSS hash as the flow-table
//     index. With an asymmetric key the SYN-ACK's reverse-tuple hash differs
//     from the SYN's, so the lookup itself fails — handshake matching
//     collapses even on a single queue ("microsoft/hash-reuse").
//  2. Queue co-location: even if software recomputes a symmetric hash for
//     the table (extra per-packet work, "microsoft/sw-rehash"), the two
//     directions still land on different queues ~ (Q-1)/Q of the time, and
//     per-queue tables can't see each other's state.
//
// Only the symmetric key gives both correct lookups and co-location for
// free — which is the design decision the paper states in one sentence.
type E7Row struct {
	Queues     int
	Config     string // "symmetric", "microsoft/hash-reuse", "microsoft/sw-rehash"
	Flows      int
	Completed  uint64
	MatchRate  float64
	OrphanedSA uint64 // SYN-ACKs finding no SYN state on their queue
}

// E7Config parameterizes the ablation.
type E7Config struct {
	Seed      int64
	QueueList []int // default {1, 2, 4, 8}
	Flows     int   // default 20000
}

// E7 runs the ablation.
func E7(cfg E7Config, w io.Writer) ([]E7Row, error) {
	if len(cfg.QueueList) == 0 {
		cfg.QueueList = []int{1, 2, 4, 8}
	}
	if cfg.Flows <= 0 {
		cfg.Flows = 20000
	}
	world, err := geo.NewWorld(geo.WorldOptions{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "E7: symmetric vs asymmetric RSS ablation (per-queue tables, no shared state)\n")
		fmt.Fprintf(w, "  %-7s %-22s %9s %11s %11s %12s\n", "queues", "config", "flows", "completed", "match-rate", "orphan-SA")
	}
	sym := rss.NewSymmetric()
	ms := rss.New(rss.MicrosoftKey)
	configs := []struct {
		name         string
		queueH, tblH *rss.Hasher
	}{
		{"symmetric", sym, sym},
		{"microsoft/hash-reuse", ms, ms},
		{"microsoft/sw-rehash", ms, sym},
	}
	var rows []E7Row
	for _, q := range cfg.QueueList {
		for _, c := range configs {
			rate := 2000.0
			dur := int64(float64(cfg.Flows)/rate*1e9) + 1e9
			g, err := gen.New(gen.Config{
				Seed: cfg.Seed, World: world,
				FlowRate: rate, Duration: dur,
			})
			if err != nil {
				return rows, err
			}
			rep := Replay{
				Queues:      q,
				Hasher:      c.queueH,
				TableHasher: c.tblH,
				Table:       core.TableConfig{Capacity: 1 << 17, Timeout: 60e9},
			}
			st := rep.Run(g)
			flows := 0
			for _, tr := range g.Truths() {
				if tr.Completes {
					flows++
				}
			}
			row := E7Row{
				Queues: q, Config: c.name, Flows: flows,
				Completed:  st.Tables.Completed,
				OrphanedSA: st.Tables.OrphanSYNACKs,
			}
			if flows > 0 {
				row.MatchRate = float64(row.Completed) / float64(flows)
			}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "  %-7d %-22s %9d %11d %10.1f%% %12d\n",
					row.Queues, row.Config, row.Flows, row.Completed, 100*row.MatchRate, row.OrphanedSA)
			}
		}
	}
	return rows, nil
}
