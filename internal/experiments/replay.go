// Package experiments implements the evaluation harness: one reproducible
// experiment per claim in the paper (see DESIGN.md §4 for the index).
// Each experiment returns a typed result and can print the table/series the
// paper-style report needs; cmd/ruru-bench is the CLI front end and the
// repo-root bench_test.go wraps the performance-sensitive ones in
// testing.B.
package experiments

import (
	"ruru/internal/core"
	"ruru/internal/gen"
	"ruru/internal/pkt"
	"ruru/internal/rss"
)

// Replay drives a generated packet stream through per-queue handshake
// tables synchronously — single goroutine, virtual time, fully
// deterministic. It models the paper's multi-queue architecture (RSS hash →
// queue → per-queue table) without wall-clock scheduling noise, which is
// what correctness and detection experiments need. Throughput experiments
// (E2) use the real concurrent engine instead.
type Replay struct {
	// Queues is the number of simulated RSS queues (default 4).
	Queues int
	// Hasher classifies packets to queues (default symmetric RSS).
	Hasher *rss.Hasher
	// TableHasher computes the hash handed to the handshake tables.
	// Defaults to Hasher — the paper's design, where the NIC's RSS hash
	// is reused as the flow-table index. E7 sets this independently to
	// separate the two failure modes of an asymmetric key (broken table
	// lookups vs broken queue co-location).
	TableHasher *rss.Hasher
	// Table configures each queue's handshake table.
	Table core.TableConfig
	// OnMeasure receives each completed measurement.
	OnMeasure func(*core.Measurement)
}

// ReplayStats summarizes a replay run.
type ReplayStats struct {
	Packets   int
	TCP       int
	Tables    core.TableStats
	LastTS    int64
	BytesSeen int64
}

// Run consumes the generator's whole stream. The final SweepAll uses the
// last timestamp plus the table timeout so end-of-trace incompletes expire.
func (r *Replay) Run(g *gen.Generator) ReplayStats {
	queues := r.Queues
	if queues <= 0 {
		queues = 4
	}
	h := r.Hasher
	if h == nil {
		h = rss.NewSymmetric()
	}
	th := r.TableHasher
	if th == nil {
		th = h
	}
	tables := make([]*core.HandshakeTable, queues)
	for q := range tables {
		tc := r.Table
		tc.Queue = q
		tables[q] = core.NewHandshakeTable(tc)
	}

	var (
		parser pkt.Parser
		p      gen.Packet
		sum    pkt.Summary
		m      core.Measurement
		st     ReplayStats
	)
	for g.Next(&p) {
		st.Packets++
		st.BytesSeen += int64(len(p.Frame))
		st.LastTS = p.TS
		if err := parser.Parse(p.Frame, &sum); err != nil || !sum.IsTCP() {
			continue
		}
		st.TCP++
		hash := h.HashTuple(sum.Src(), sum.Dst(), sum.TCP.SrcPort, sum.TCP.DstPort)
		q := rss.Queue(hash, queues)
		tblHash := hash
		if th != h {
			tblHash = th.HashTuple(sum.Src(), sum.Dst(), sum.TCP.SrcPort, sum.TCP.DstPort)
		}
		if tables[q].Process(&sum, p.TS, tblHash, &m) && r.OnMeasure != nil {
			r.OnMeasure(&m)
		}
	}
	timeout := r.Table.Timeout
	if timeout <= 0 {
		timeout = 10e9
	}
	for _, t := range tables {
		t.SweepAll(st.LastTS + 2*timeout)
	}
	for _, t := range tables {
		s := t.Stats()
		st.Tables.Packets += s.Packets
		st.Tables.SYNs += s.SYNs
		st.Tables.SYNRetrans += s.SYNRetrans
		st.Tables.SYNACKs += s.SYNACKs
		st.Tables.OrphanSYNACKs += s.OrphanSYNACKs
		st.Tables.Completed += s.Completed
		st.Tables.InvalidACKs += s.InvalidACKs
		st.Tables.MidstreamACKs += s.MidstreamACKs
		st.Tables.Aborted += s.Aborted
		st.Tables.Expired += s.Expired
		st.Tables.ExpiredAwait += s.ExpiredAwait
		st.Tables.TableFull += s.TableFull
	}
	return st
}
