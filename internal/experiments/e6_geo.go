package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"time"

	"ruru/internal/geo"
)

// E6Row is one point of the geolocation accuracy/throughput experiment
// (paper §2 quotes IP2Location's "98% country-level accuracy"; here the
// database's mislabel rate is a controlled variable, so the quoted accuracy
// becomes a measured quantity).
type E6Row struct {
	MislabelFraction float64
	Lookups          int
	CountryAccuracy  float64 // fraction of lookups with correct country
	CityAccuracy     float64
	NsPerLookup      float64
}

// E6Config parameterizes the sweep.
type E6Config struct {
	Seed      int64
	Fractions []float64 // default {0, 0.02, 0.05, 0.10}
	Lookups   int       // default 200k
}

// E6 runs the sweep.
func E6(cfg E6Config, w io.Writer) ([]E6Row, error) {
	if len(cfg.Fractions) == 0 {
		cfg.Fractions = []float64{0, 0.02, 0.05, 0.10}
	}
	if cfg.Lookups <= 0 {
		cfg.Lookups = 200_000
	}
	if w != nil {
		fmt.Fprintf(w, "E6: geolocation database accuracy and lookup throughput (IP2Location substitute)\n")
		fmt.Fprintf(w, "  %-10s %10s %12s %12s %12s\n", "mislabel", "lookups", "country-acc", "city-acc", "ns/lookup")
	}
	rows := make([]E6Row, 0, len(cfg.Fractions))
	for _, frac := range cfg.Fractions {
		world, err := geo.NewWorld(geo.WorldOptions{Seed: cfg.Seed, MislabelFraction: frac})
		if err != nil {
			return rows, err
		}
		db := world.DB()
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		// Pre-draw addresses so RNG cost stays out of the timing.
		type probe struct {
			addr    netip.Addr
			city    string
			country string
		}
		probes := make([]probe, cfg.Lookups)
		for i := range probes {
			ci := rng.Intn(len(world.Cities))
			slot := rng.Intn(4)
			var a netip.Addr
			if i%5 == 0 { // 20% IPv6, like the traffic mix
				a = world.Addr6(ci, slot, rng.Uint64())
			} else {
				a = world.Addr(ci, slot, rng.Uint32())
			}
			probes[i] = probe{addr: a, city: world.Cities[ci].Name, country: world.Cities[ci].CountryCode}
		}
		countryOK, cityOK := 0, 0
		start := time.Now()
		for i := range probes {
			rec, ok := db.Lookup(probes[i].addr)
			if !ok {
				continue
			}
			if rec.CountryCode == probes[i].country {
				countryOK++
			}
			if rec.City == probes[i].city {
				cityOK++
			}
		}
		elapsed := time.Since(start)
		row := E6Row{
			MislabelFraction: frac,
			Lookups:          cfg.Lookups,
			CountryAccuracy:  float64(countryOK) / float64(cfg.Lookups),
			CityAccuracy:     float64(cityOK) / float64(cfg.Lookups),
			NsPerLookup:      float64(elapsed.Nanoseconds()) / float64(cfg.Lookups),
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "  %-10.2f %10d %11.2f%% %11.2f%% %12.1f\n",
				frac, row.Lookups, 100*row.CountryAccuracy, 100*row.CityAccuracy, row.NsPerLookup)
		}
	}
	return rows, nil
}
