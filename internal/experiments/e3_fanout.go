package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/ws"
)

// E3Row is one point of the frontend fan-out experiment (paper §3:
// "visualizes multiple thousands of connections per second on a live 3D map
// on-the-fly"). Two numbers matter: the maximum rate at which every
// connected client can actually be fed (sustained delivery), and whether a
// paced measurement stream at the paper's claimed scale flows with zero
// loss.
type E3Row struct {
	Clients int

	// Max-rate phase: broadcast as fast as clients drain.
	MaxPerClientRate float64 // delivered msgs/s per client
	MaxAggregateRate float64 // delivered msgs/s across all clients

	// Paced phase at PacedRate msg/s (default 5000 — "multiple
	// thousands of connections per second").
	PacedRate    float64
	PacedLossPct float64
}

// E3Config parameterizes the fan-out sweep.
type E3Config struct {
	ClientList []int   // default {1, 4, 16}
	Messages   int     // messages per phase (default 50k)
	HubQueue   int     // per-client queue (default 8192)
	PacedRate  float64 // default 5000 msg/s
}

// E3 runs the sweep against real WebSocket connections over loopback.
func E3(cfg E3Config, w io.Writer) ([]E3Row, error) {
	if len(cfg.ClientList) == 0 {
		cfg.ClientList = []int{1, 4, 16}
	}
	if cfg.Messages <= 0 {
		cfg.Messages = 50_000
	}
	if cfg.HubQueue <= 0 {
		cfg.HubQueue = 8192
	}
	if cfg.PacedRate <= 0 {
		cfg.PacedRate = 5000
	}
	e := analytics.Enriched{
		Time: 1700000000000000000, InternalNs: 15e6, ExternalNs: 130e6, TotalNs: 145e6,
		Src: analytics.Endpoint{CountryCode: "NZ", Country: "New Zealand", City: "Auckland",
			Lat: -36.85, Lon: 174.76, ASN: 64000, ASName: "AS-Auckland-0"},
		Dst: analytics.Endpoint{CountryCode: "US", Country: "United States", City: "Los Angeles",
			Lat: 34.05, Lon: -118.24, ASN: 64004, ASName: "AS-LosAngeles-0"},
	}
	payload, err := json.Marshal(&e)
	if err != nil {
		return nil, err
	}

	if w != nil {
		fmt.Fprintf(w, "E3: WebSocket live-map fan-out (%dB JSON frames; paced phase at %.0f msg/s)\n",
			len(payload), cfg.PacedRate)
		fmt.Fprintf(w, "  %-8s %16s %16s %14s\n", "clients", "max msg/s/client", "max aggregate/s", "paced loss")
	}
	rows := make([]E3Row, 0, len(cfg.ClientList))
	for _, n := range cfg.ClientList {
		row, err := e3Run(n, cfg, payload)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "  %-8d %16.0f %16.0f %13.2f%%\n",
				row.Clients, row.MaxPerClientRate, row.MaxAggregateRate, row.PacedLossPct)
		}
	}
	return rows, nil
}

type e3Harness struct {
	hub       *ws.Hub
	srv       *httptest.Server
	conns     []*ws.Conn
	delivered *atomic.Uint64
}

func e3Setup(clients, hubQueue int) (*e3Harness, error) {
	hub := ws.NewHub(hubQueue)
	srv := httptest.NewServer(hub)
	url := "ws://" + strings.TrimPrefix(srv.URL, "http://") + "/"
	h := &e3Harness{hub: hub, srv: srv, delivered: new(atomic.Uint64)}
	for i := 0; i < clients; i++ {
		c, err := ws.Dial(url)
		if err != nil {
			h.close()
			return nil, err
		}
		h.conns = append(h.conns, c)
		go func(c *ws.Conn) {
			for {
				if _, _, err := c.ReadMessage(); err != nil {
					return
				}
				h.delivered.Add(1)
			}
		}(c)
	}
	deadline := time.Now().Add(5 * time.Second)
	for hub.Clients() < clients {
		if time.Now().After(deadline) {
			h.close()
			return nil, fmt.Errorf("only %d/%d clients connected", hub.Clients(), clients)
		}
		time.Sleep(time.Millisecond)
	}
	return h, nil
}

func (h *e3Harness) close() {
	for _, c := range h.conns {
		c.Close()
	}
	h.hub.Close()
	h.srv.Close()
}

func e3Run(clients int, cfg E3Config, payload []byte) (E3Row, error) {
	row := E3Row{Clients: clients, PacedRate: cfg.PacedRate}

	// Phase 1: maximum sustained delivery. Broadcast with back-pressure:
	// when any client queue is saturated the hub drops, so we throttle to
	// the drain rate by watching the delivered counter.
	{
		h, err := e3Setup(clients, cfg.HubQueue)
		if err != nil {
			return row, err
		}
		start := time.Now()
		sent := 0
		for sent < cfg.Messages {
			// Keep at most one queue-depth in flight per client.
			inFlight := uint64(sent*clients) - h.delivered.Load()
			if inFlight > uint64(cfg.HubQueue*clients/2) {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			h.hub.Broadcast(payload)
			sent++
		}
		deadline := time.Now().Add(30 * time.Second)
		for h.delivered.Load() < uint64(sent*clients) {
			sentHub, dropped := h.hub.Stats()
			if h.delivered.Load() >= sentHub && sentHub+dropped >= uint64(sent*clients) {
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		elapsed := time.Since(start)
		row.MaxAggregateRate = float64(h.delivered.Load()) / elapsed.Seconds()
		row.MaxPerClientRate = row.MaxAggregateRate / float64(clients)
		h.close()
	}

	// Phase 2: paced at the paper's claimed scale; loss must be ~0.
	{
		h, err := e3Setup(clients, cfg.HubQueue)
		if err != nil {
			return row, err
		}
		interval := time.Duration(float64(time.Second) / cfg.PacedRate)
		msgs := cfg.Messages / 5
		if msgs > 20000 {
			msgs = 20000
		}
		start := time.Now()
		for i := 0; i < msgs; i++ {
			target := start.Add(time.Duration(i) * interval)
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
			h.hub.Broadcast(payload)
		}
		deadline := time.Now().Add(10 * time.Second)
		for h.delivered.Load() < uint64(msgs*clients) {
			_, dropped := h.hub.Stats()
			if h.delivered.Load()+dropped >= uint64(msgs*clients) {
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		lost := uint64(msgs*clients) - h.delivered.Load()
		row.PacedLossPct = 100 * float64(lost) / float64(msgs*clients)
		h.close()
	}
	return row, nil
}
