package experiments

import (
	"fmt"
	"io"

	"ruru/internal/core"
	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/pkt"
	"ruru/internal/rss"
	"ruru/internal/stats"
)

// E10Result covers the continuous-RTT extension: pping-style RTT samples
// from TCP timestamp echoes, complementing the paper's handshake-only
// measurement ("latency for all individual TCP flows" — the handshake gives
// one sample per flow at setup; timestamp echoes keep measuring for the
// flow's lifetime). Validated against the generator oracle exactly like E1.
type E10Result struct {
	Flows          int // completing, TS-clean flows with data segments
	ExpectedData   int // oracle: expected external data samples
	MatchedData    int // samples with the exact oracle RTT
	WrongData      int // samples off the oracle value
	TotalSamples   uint64
	MedianExtMs    float64 // median of external data samples
	HandshakeExtMs float64 // median handshake external (for comparison)

	// Midstream flows: connections established before the capture. The
	// handshake engine structurally cannot measure them; the TS tracker
	// can — the extension's headline capability.
	MidstreamFlows    int // TS-clean midstream flows with expected echoes
	MidstreamMeasured int // of those, flows with ≥1 exact RTT sample
	MidstreamExpected int
	MidstreamMatched  int
}

// E10Config parameterizes the experiment.
type E10Config struct {
	Seed  int64
	Flows int // target completing flows (default 10000)
}

// E10 runs the continuous-RTT validation.
func E10(cfg E10Config, w io.Writer) (E10Result, error) {
	if cfg.Flows <= 0 {
		cfg.Flows = 10000
	}
	world, err := geo.NewWorld(geo.WorldOptions{Seed: cfg.Seed})
	if err != nil {
		return E10Result{}, err
	}
	rate := 2000.0
	dur := int64(float64(cfg.Flows)/rate*1e9) + 1e9
	g, err := gen.New(gen.Config{
		Seed: cfg.Seed, World: world,
		FlowRate: rate, Duration: dur,
		// Request/response pacing: data segments spaced beyond the path
		// RTT so echoes return before the pending window rolls over —
		// the traffic shape continuous RTT measurement is designed for.
		DataSegments: 3, DataSpacing: 400e6,
		// Server think time makes the handshake's external latency
		// (2·dTS + think) distinct from the data-echo RTT (2·dTS), so
		// the oracle can tell the two sample kinds apart by value.
		ServerDelay: 5e6,
		// Pre-established flows: invisible to the handshake engine,
		// measurable by the tracker.
		MidstreamRate:     rate / 10,
		EmitTCPTimestamps: true,
	})
	if err != nil {
		return E10Result{}, err
	}

	// Replay through both the handshake engine and the TS tracker, the
	// way a production queue worker would run them side by side.
	const queues = 4
	hasher := rss.NewSymmetric()
	tables := make([]*core.HandshakeTable, queues)
	trackers := make([]*core.TSTracker, queues)
	for q := 0; q < queues; q++ {
		tables[q] = core.NewHandshakeTable(core.TableConfig{Capacity: 1 << 16, Timeout: 60e9, Queue: q})
		trackers[q] = core.NewTSTracker(core.TSConfig{Capacity: 1 << 16, Timeout: 60e9, Queue: q})
	}
	type flowAgg struct {
		samples []int64
	}
	perFlow := map[core.FlowKey]*flowAgg{}
	extHist := stats.NewLatencyHist()
	hsHist := stats.NewLatencyHist()

	var (
		parser pkt.Parser
		p      gen.Packet
		sum    pkt.Summary
		m      core.Measurement
		ts     core.TSSample
		total  uint64
	)
	for g.Next(&p) {
		if err := parser.Parse(p.Frame, &sum); err != nil || !sum.IsTCP() {
			continue
		}
		hash := hasher.HashTuple(sum.Src(), sum.Dst(), sum.TCP.SrcPort, sum.TCP.DstPort)
		q := rss.Queue(hash, queues)
		if tables[q].Process(&sum, p.TS, hash, &m) {
			hsHist.Add(m.External)
		}
		if trackers[q].Process(&sum, p.TS, hash, &ts) {
			total++
			// Orient: the sample measures the echoer's side. Group by
			// canonical tuple of the *data* direction (client→server).
			key := core.FlowKey{Client: ts.Peer, Server: ts.Echoer,
				ClientPort: ts.PeerPort, ServerPort: ts.EchoerPort}
			fa := perFlow[key]
			if fa == nil {
				fa = &flowAgg{}
				perFlow[key] = fa
			}
			fa.samples = append(fa.samples, ts.RTT)
		}
	}

	res := E10Result{TotalSamples: total}
	for _, tr := range g.Truths() {
		if !tr.TSClean || tr.TSDataEchoes == 0 {
			continue
		}
		fa := perFlow[tr.Key] // samples where the SERVER echoed
		if tr.Midstream {
			res.MidstreamFlows++
			res.MidstreamExpected += tr.TSDataEchoes
			if fa == nil {
				continue
			}
			measured := false
			for _, rtt := range fa.samples {
				if rtt == tr.TSDataRTT {
					res.MidstreamMatched++
					measured = true
				} else {
					res.WrongData++
				}
			}
			if measured {
				res.MidstreamMeasured++
			}
			continue
		}
		if !tr.Completes {
			continue
		}
		res.Flows++
		res.ExpectedData += tr.TSDataEchoes
		if fa == nil {
			continue
		}
		for _, rtt := range fa.samples {
			// The flow's server-side samples are the data echoes plus
			// the SYN→SYN-ACK echo (value ExpectedExternal).
			switch rtt {
			case tr.TSDataRTT:
				res.MatchedData++
				extHist.Add(rtt)
			case tr.ExpectedExternal:
				// handshake-derived sample; not a data echo
			default:
				res.WrongData++
			}
		}
	}
	res.MedianExtMs = float64(extHist.Median()) / 1e6
	res.HandshakeExtMs = float64(hsHist.Median()) / 1e6

	if w != nil {
		fmt.Fprintf(w, "E10: continuous RTT from TCP timestamp echoes (pping-style extension)\n")
		fmt.Fprintf(w, "  TS-clean flows with data      %d\n", res.Flows)
		fmt.Fprintf(w, "  expected data samples         %d\n", res.ExpectedData)
		fmt.Fprintf(w, "  exact oracle matches          %d (%.2f%%)\n", res.MatchedData, pct(res.MatchedData, res.ExpectedData))
		fmt.Fprintf(w, "  off-oracle samples            %d\n", res.WrongData)
		fmt.Fprintf(w, "  total samples (all flows)     %d\n", res.TotalSamples)
		fmt.Fprintf(w, "  median external: in-stream %.2fms vs handshake %.2fms\n",
			res.MedianExtMs, res.HandshakeExtMs)
		fmt.Fprintf(w, "  midstream flows (no handshake observable): %d; measured %d (%.1f%%), %d/%d samples exact\n",
			res.MidstreamFlows, res.MidstreamMeasured,
			pct(res.MidstreamMeasured, res.MidstreamFlows),
			res.MidstreamMatched, res.MidstreamExpected)
	}
	return res, nil
}
