package experiments

import (
	"fmt"
	"io"

	"ruru/internal/core"
	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/stats"
)

// E1Result is the Figure-1 correctness experiment outcome: does the engine
// report exactly the internal/external/total split the oracle predicts?
type E1Result struct {
	Flows        int // completing flows generated
	Measured     int // flows the engine measured
	ExactMatches int // measurements equal to the oracle, bit for bit
	MaxErrorNs   int64

	// Latency distribution of measured totals (sanity panel).
	MedianInternalMs float64
	MedianExternalMs float64
	MedianTotalMs    float64

	// Flows with loss-driven retransmissions, measured correctly.
	RetransFlows   int
	RetransCorrect int
}

// E1Config parameterizes the experiment.
type E1Config struct {
	Seed     int64
	Flows    int     // target completing flows (default 20000)
	Queues   int     // RSS queues (default 4)
	SYNLoss  float64 // default 0.02
	SABLoss  float64 // SYN-ACK loss, default 0.02
	IPv6Frac float64 // default 0.2
}

// E1 runs the correctness experiment.
func E1(cfg E1Config, w io.Writer) (E1Result, error) {
	if cfg.Flows <= 0 {
		cfg.Flows = 20000
	}
	if cfg.Queues <= 0 {
		cfg.Queues = 4
	}
	if cfg.SYNLoss == 0 {
		cfg.SYNLoss = 0.02
	}
	if cfg.SABLoss == 0 {
		cfg.SABLoss = 0.02
	}
	if cfg.IPv6Frac == 0 {
		cfg.IPv6Frac = 0.2
	}
	world, err := geo.NewWorld(geo.WorldOptions{Seed: cfg.Seed})
	if err != nil {
		return E1Result{}, err
	}
	rate := 2000.0
	dur := int64(float64(cfg.Flows)/rate*1e9) + 1e9
	g, err := gen.New(gen.Config{
		Seed: cfg.Seed, World: world,
		FlowRate: rate, Duration: dur,
		DataSegments: 1, UDPRate: 500, MidstreamRate: 50,
		SYNLoss: cfg.SYNLoss, SYNACKLoss: cfg.SABLoss,
		IPv6Fraction: cfg.IPv6Frac,
	})
	if err != nil {
		return E1Result{}, err
	}

	measured := map[core.FlowKey]core.Measurement{}
	rep := Replay{
		Queues: cfg.Queues,
		Table:  core.TableConfig{Capacity: 1 << 17, Timeout: 60e9},
		OnMeasure: func(m *core.Measurement) {
			measured[m.Flow] = *m
		},
	}
	rep.Run(g)

	res := E1Result{}
	histI, histE, histT := stats.NewLatencyHist(), stats.NewLatencyHist(), stats.NewLatencyHist()
	for _, tr := range g.Truths() {
		if !tr.Completes {
			continue
		}
		res.Flows++
		m, ok := measured[tr.Key]
		if !ok {
			continue
		}
		res.Measured++
		errI := abs64(m.Internal - tr.ExpectedInternal)
		errE := abs64(m.External - tr.ExpectedExternal)
		if errI == 0 && errE == 0 {
			res.ExactMatches++
		}
		if errI > res.MaxErrorNs {
			res.MaxErrorNs = errI
		}
		if errE > res.MaxErrorNs {
			res.MaxErrorNs = errE
		}
		if tr.SYNRetrans > 0 || tr.SYNACKRetrans > 0 {
			res.RetransFlows++
			if errI == 0 && errE == 0 {
				res.RetransCorrect++
			}
		}
		histI.Add(m.Internal)
		histE.Add(m.External)
		histT.Add(m.Total)
	}
	res.MedianInternalMs = float64(histI.Median()) / 1e6
	res.MedianExternalMs = float64(histE.Median()) / 1e6
	res.MedianTotalMs = float64(histT.Median()) / 1e6

	if w != nil {
		fmt.Fprintf(w, "E1: handshake latency calculation correctness (Figure 1)\n")
		fmt.Fprintf(w, "  completing flows        %d\n", res.Flows)
		fmt.Fprintf(w, "  measured                %d (%.2f%%)\n", res.Measured, pct(res.Measured, res.Flows))
		fmt.Fprintf(w, "  exact oracle matches    %d (%.2f%%)\n", res.ExactMatches, pct(res.ExactMatches, res.Measured))
		fmt.Fprintf(w, "  max abs error           %d ns\n", res.MaxErrorNs)
		fmt.Fprintf(w, "  flows w/ retransmission %d (correct: %d)\n", res.RetransFlows, res.RetransCorrect)
		fmt.Fprintf(w, "  median internal/external/total  %.2f / %.2f / %.2f ms\n",
			res.MedianInternalMs, res.MedianExternalMs, res.MedianTotalMs)
	}
	return res, nil
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
