package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/geo"
	"ruru/internal/mq"
	"ruru/internal/ruru"
)

// E11Row is one point of the sink-stage throughput experiment: the rate at
// which a given number of sharded sink workers drains the enriched stream
// into the TSDB (batched, stripe-locked writes), with the measurement-loss
// ledger alongside. The Workers=1 row is the old single-goroutine consumer
// topology; the ratio against it is the tentpole's scaling claim.
type E11Row struct {
	Workers   int
	Stripes   int
	Messages  int
	Stored    uint64
	Drops     uint64 // enriched-subscription HWM losses
	DecodeErr uint64
	Rate      float64 // stored measurements per wall-clock second
}

// E11Config parameterizes the sink sweep.
type E11Config struct {
	WorkerList []int // default {1, 4}
	Messages   int   // measurements per row (default 200k)
	Batch      int   // sink batch size (default 64)
	Stripes    int   // TSDB lock stripes (default 8)
	Pairs      int   // distinct city pairs, i.e. shard keys (default 32)
}

// E11 publishes pre-marshalled enriched measurements straight onto the
// enriched topic — isolating the storage/visualization stage from packet
// processing — and measures how fast each sink configuration drains them.
// The producer is flow-controlled under the subscription HWM so the number
// reported is the sink's drain rate, not the publisher's; any HWM drop is
// reported in the row.
func E11(cfg E11Config, w io.Writer) ([]E11Row, error) {
	if len(cfg.WorkerList) == 0 {
		cfg.WorkerList = []int{1, 4}
	}
	if cfg.Messages <= 0 {
		cfg.Messages = 200_000
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 8
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = 32
	}
	payloads := make([][]byte, cfg.Pairs)
	for i := range payloads {
		e := analytics.Enriched{
			Time: 1e9, InternalNs: 15e6, ExternalNs: 130e6, TotalNs: 145e6,
			Src: analytics.Endpoint{City: fmt.Sprintf("SrcCity%d", i), CountryCode: "NZ",
				Lat: -36.85, Lon: 174.76, ASN: uint32(64000 + i)},
			Dst: analytics.Endpoint{City: fmt.Sprintf("DstCity%d", i), CountryCode: "US",
				Lat: 34.05, Lon: -118.24, ASN: 64500},
		}
		payloads[i] = analytics.MarshalEnriched(nil, &e)
	}

	if w != nil {
		fmt.Fprintf(w, "E11: sharded sink drain rate (%d measurements, batch %d, %d DB stripes, %d city pairs)\n",
			cfg.Messages, cfg.Batch, cfg.Stripes, cfg.Pairs)
		fmt.Fprintf(w, "  %-8s %12s %10s %10s %12s\n", "workers", "stored", "drops", "decodeErr", "msg/s")
	}
	rows := make([]E11Row, 0, len(cfg.WorkerList))
	for _, workers := range cfg.WorkerList {
		row, err := e11Run(workers, cfg, payloads)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "  %-8d %12d %10d %10d %12.0f\n",
				row.Workers, row.Stored, row.Drops, row.DecodeErr, row.Rate)
		}
	}
	return rows, nil
}

func e11Run(workers int, cfg E11Config, payloads [][]byte) (row E11Row, err error) {
	row = E11Row{Workers: workers, Stripes: cfg.Stripes, Messages: cfg.Messages}
	world, err := geo.NewWorld(geo.WorldOptions{Seed: 1})
	if err != nil {
		return row, err
	}
	p, err := ruru.New(ruru.Config{
		GeoDB:       world.DB(),
		Queues:      1, // no packet traffic; keep idle pollers minimal
		SinkWorkers: workers,
		SinkBatch:   cfg.Batch,
		DBStripes:   cfg.Stripes,
	})
	if err != nil {
		return row, err
	}
	defer func() {
		if cerr := p.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx)
	}()

	accounted := func() uint64 {
		st := p.Stats()
		return st.DBPoints + st.SinkDrop + st.SinkDecodeErrors + st.DBDropped
	}
	// Flow-control check only once per window: Stats() walks every stage,
	// and probing it per message would throttle the producer enough to
	// understate the drain rate being measured.
	const window = 1 << 12
	start := time.Now()
	published := 0
	for published < cfg.Messages {
		if published%window == 0 {
			for uint64(published)-accounted() > 1<<14 {
				time.Sleep(50 * time.Microsecond)
			}
		}
		p.Bus.Publish(mq.Message{Topic: ruru.TopicEnriched, Payload: payloads[published%len(payloads)]})
		published++
	}
	deadline := time.Now().Add(60 * time.Second)
	for accounted() < uint64(cfg.Messages) {
		if time.Now().After(deadline) {
			return row, fmt.Errorf("e11: sink never drained (%+v)", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	cancel()
	<-done

	st := p.Stats()
	row.Stored = st.DBPoints
	row.Drops = st.SinkDrop
	row.DecodeErr = st.SinkDecodeErrors
	row.Rate = float64(st.DBPoints) / elapsed.Seconds()
	return row, nil
}
