package experiments

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"sync"
	"time"

	"ruru/internal/core"
	"ruru/internal/pkt"
	"ruru/internal/sketch"
)

// E15Result measures the bounded-memory sketch tier under flow-count
// pressure far beyond the exact tables' byte budget:
//
//   - Capacity: Flows distinct TCP flows arrive across Queues RSS queues,
//     each attempting an exact handshake-table admission; all but a few
//     planted elephants are 40-byte mice. The per-queue tier byte total
//     (fixed sketch overhead + charged exact state) is sampled throughout
//     and must never exceed the per-queue budget — CapHeld is that
//     invariant, and MaxTierBytes the high-water mark actually observed.
//   - Accuracy: after the churn, the heavy-hitter summaries (the exact
//     data /api/topk serves) must rank every planted elephant above every
//     mouse, with volume estimates that never undercount: the cap trades
//     per-mouse state away, not elephant visibility.
type E15Result struct {
	Flows     int // distinct flows driven, all queues
	Queues    int
	Elephants int // planted heavy flows, all queues

	Rate            float64 // flow arrivals/s, all queues
	BudgetBytes     int64   // per-queue cap
	MaxTierBytes    int64   // high-water fixed+live across all samples
	LiveBytes       int64   // charged exact state at the end, all queues
	ExactFlows      uint64  // flows holding an exact record at the end
	SketchOnly      uint64  // admission refusals (mice living sketch-only)
	Promoted        uint64  // elephant-path admissions
	EpsilonBytes    uint64  // worst per-queue count-min error bound εN
	ElephantsRanked int     // planted elephants found above every mouse
	CapHeld         bool    // no sample ever exceeded the budget
}

// E15Config parameterizes the memory-cap soak.
type E15Config struct {
	Flows       int   // distinct flows across all queues (default 10M)
	Queues      int   // default 4
	BudgetBytes int64 // total cap, split per queue (default 64MiB)
	Elephants   int   // planted heavy flows per queue (default 16)
}

// e15Flow builds the i-th distinct flow on queue q: a unique client
// 4-tuple against a fixed service endpoint. 15 bits of i go to the source
// port and the rest to the source address, supporting ~8M flows per queue.
func e15Flow(q, i int) *pkt.Summary {
	s := &pkt.Summary{}
	s.IP4.Src = netip.AddrFrom4([4]byte{10, byte(q), byte(i >> 23), byte(i >> 15)})
	s.IP4.Dst = netip.AddrFrom4([4]byte{192, 0, 2, 1})
	s.IP4.TotalLen = 40
	s.Decoded = pkt.LayerEthernet | pkt.LayerIPv4 | pkt.LayerTCP
	s.TCP = pkt.TCP{
		SrcPort: uint16(i&0x7fff) + 1024, DstPort: 443,
		Flags: pkt.TCPSyn, Seq: uint32(i),
	}
	return s
}

// e15ID is the canonical FlowID of e15Flow(q, i): the client address sorts
// below 192.0.2.1, so it is always endpoint A.
func e15ID(q, i int) sketch.FlowID {
	s := e15Flow(q, i)
	return sketch.FlowID{A: s.IP4.Src, B: s.IP4.Dst, APort: s.TCP.SrcPort, BPort: s.TCP.DstPort}
}

// E15 runs the soak: per queue, one FlowTier owning the budget and one
// HandshakeTable gated by it, single-writer like the real engine workers.
func E15(cfg E15Config, w io.Writer) (E15Result, error) {
	if cfg.Flows <= 0 {
		cfg.Flows = 10_000_000
	}
	if cfg.Queues <= 0 {
		cfg.Queues = 4
	}
	if cfg.BudgetBytes <= 0 {
		cfg.BudgetBytes = 64 << 20
	}
	if cfg.Elephants <= 0 {
		cfg.Elephants = 16
	}
	perQ := cfg.BudgetBytes / int64(cfg.Queues)
	flowsPerQ := cfg.Flows / cfg.Queues
	res := E15Result{
		Flows: flowsPerQ * cfg.Queues, Queues: cfg.Queues,
		Elephants: cfg.Elephants * cfg.Queues, BudgetBytes: perQ,
		CapHeld: true,
	}
	if flowsPerQ <= cfg.Elephants {
		return res, fmt.Errorf("e15: %d flows/queue cannot hold %d elephants", flowsPerQ, cfg.Elephants)
	}

	type queueOut struct {
		tier    *sketch.FlowTier
		exact   uint64
		maxSeen int64
		capOK   bool
		ranked  int
		underEl int // elephants whose estimate undercounts (must stay 0)
	}
	outs := make([]queueOut, cfg.Queues)
	errs := make([]error, cfg.Queues)

	began := time.Now()
	var wg sync.WaitGroup
	for q := 0; q < cfg.Queues; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			out := &outs[q]
			tier, err := sketch.NewFlowTier(sketch.TierConfig{BudgetBytes: perQ, Queue: q})
			if err != nil {
				errs[q] = err
				return
			}
			out.tier = tier
			out.capOK = true
			// Capacity well above what the byte budget can ever admit
			// (miceMax/96B ≈ 130K at the default 16MiB/queue), so the
			// admission cap — not the table's own high-water mark — is the
			// binding constraint under test.
			tbl := core.NewHandshakeTable(core.TableConfig{Capacity: 1 << 18, Queue: q, Admit: tier})

			// Plant elephants evenly through the arrival order so promotion
			// is exercised against every budget phase (empty, mice-full).
			every := flowsPerQ / cfg.Elephants
			const elephantPkts, elephantLen = 120, 1500
			var m core.Measurement
			for i := 0; i < flowsPerQ; i++ {
				s := e15Flow(q, i)
				if i%every == 0 && i/every < cfg.Elephants {
					// A burst of full-size segments: the sketch learns the
					// volume, so the SYN admission takes the elephant path.
					s.IP4.TotalLen = elephantLen
					for p := 0; p < elephantPkts; p++ {
						tier.Observe(s)
					}
				} else {
					tier.Observe(s)
				}
				tbl.Process(s, int64(i+1)*1000, uint32(q)<<28^uint32(i), &m)
				if i%4096 == 0 {
					if tb := tier.TotalBytes(); tb > out.maxSeen {
						out.maxSeen = tb
					}
					if tier.TotalBytes() > tier.Budget() {
						out.capOK = false
					}
				}
			}
			if tb := tier.TotalBytes(); tb > out.maxSeen {
				out.maxSeen = tb
			}
			out.capOK = out.capOK && tier.TotalBytes() <= tier.Budget()
			out.exact = uint64(tbl.Len())
			tier.Publish(true)

			// Rank check on the published snapshot — the same data the
			// /api/topk flow view serves: every planted elephant must sit
			// above every mouse, with an estimate >= its true volume.
			snap := tier.Snapshot()
			flows := append([]sketch.Item[sketch.FlowID](nil), snap.Flows...)
			sort.Slice(flows, func(a, b int) bool { return flows[a].Count > flows[b].Count })
			planted := make(map[sketch.FlowID]bool, cfg.Elephants)
			for e := 0; e < cfg.Elephants; e++ {
				planted[e15ID(q, e*every)] = true
			}
			for _, it := range flows[:min(cfg.Elephants, len(flows))] {
				if planted[it.Key] {
					out.ranked++
					if it.Count < elephantPkts*elephantLen {
						out.underEl++
					}
				}
			}
		}(q)
	}
	wg.Wait()
	took := time.Since(began)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	res.Rate = float64(res.Flows) / took.Seconds()
	for q := range outs {
		out := &outs[q]
		st := out.tier.Stats()
		res.LiveBytes += st.LiveBytes
		res.ExactFlows += out.exact
		res.SketchOnly += st.SketchOnlyFlows
		res.Promoted += st.Promoted
		if st.EpsilonBytes > res.EpsilonBytes {
			res.EpsilonBytes = st.EpsilonBytes
		}
		if out.maxSeen > res.MaxTierBytes {
			res.MaxTierBytes = out.maxSeen
		}
		res.CapHeld = res.CapHeld && out.capOK
		res.ElephantsRanked += out.ranked
		if out.underEl > 0 {
			return res, fmt.Errorf("e15: queue %d undercounted %d elephants", q, out.underEl)
		}
	}

	if w != nil {
		fmt.Fprintf(w, "E15: bounded-memory soak (%d flows over %d queues, %d elephants, cap %d MiB/queue)\n",
			res.Flows, res.Queues, res.Elephants, res.BudgetBytes>>20)
		fmt.Fprintf(w, "  arrival rate             %12.0f flows/s\n", res.Rate)
		fmt.Fprintf(w, "  tier high-water          %12d bytes (cap %d, held: %v)\n",
			res.MaxTierBytes, res.BudgetBytes, res.CapHeld)
		fmt.Fprintf(w, "  exact / sketch-only      %12d / %d flows (promoted %d)\n",
			res.ExactFlows, res.SketchOnly, res.Promoted)
		fmt.Fprintf(w, "  elephants ranked         %12d / %d (εN = %d bytes)\n",
			res.ElephantsRanked, res.Elephants, res.EpsilonBytes)
	}
	if !res.CapHeld {
		return res, fmt.Errorf("e15: tier bytes exceeded the %d-byte cap (saw %d)", res.BudgetBytes, res.MaxTierBytes)
	}
	if res.ElephantsRanked != res.Elephants {
		return res, fmt.Errorf("e15: only %d/%d planted elephants ranked above the mice",
			res.ElephantsRanked, res.Elephants)
	}
	return res, nil
}
