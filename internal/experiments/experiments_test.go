package experiments

import (
	"io"
	"strings"
	"testing"
)

// The experiment suite is exercised at reduced scale so `go test` stays
// fast; cmd/ruru-bench runs the full-size versions.

func TestE1SmallScale(t *testing.T) {
	res, err := E1(E1Config{Seed: 1, Flows: 2000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured != res.Flows {
		t.Fatalf("measured %d/%d flows", res.Measured, res.Flows)
	}
	if res.ExactMatches != res.Measured {
		t.Fatalf("only %d/%d exact matches (max err %dns)", res.ExactMatches, res.Measured, res.MaxErrorNs)
	}
	if res.MaxErrorNs != 0 {
		t.Fatalf("max error %dns, want 0", res.MaxErrorNs)
	}
	if res.RetransFlows == 0 {
		t.Fatal("loss injection produced no retransmitting flows")
	}
	if res.MedianTotalMs <= 0 {
		t.Fatal("no latency distribution")
	}
}

func TestE2SingleRow(t *testing.T) {
	rows, err := E2(E2Config{Seed: 1, QueueList: []int{2}, TracePkts: 20000, RunPackets: 100000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.Packets < 50000 {
		t.Fatalf("only %d packets processed", r.Packets)
	}
	if r.Mpps <= 0 {
		t.Fatalf("Mpps = %v", r.Mpps)
	}
	if r.Measured == 0 {
		t.Fatal("no handshakes measured during the run")
	}
}

func TestE2BurstSweep(t *testing.T) {
	rows, err := E2Burst(E2Config{Seed: 1, TracePkts: 20000, RunPackets: 60000},
		2, []int{1, 64}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Mpps <= 0 {
			t.Fatalf("burst %d: Mpps = %v", r.Burst, r.Mpps)
		}
	}
}

func TestE3SingleRow(t *testing.T) {
	rows, err := E3(E3Config{ClientList: []int{2}, Messages: 5000, PacedRate: 2000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.MaxPerClientRate < 1000 {
		t.Fatalf("per-client delivery rate %.0f msg/s — cannot sustain 'thousands per second'", r.MaxPerClientRate)
	}
	if r.PacedLossPct > 1 {
		t.Fatalf("paced stream lost %.2f%%", r.PacedLossPct)
	}
}

func TestE4FirewallDetection(t *testing.T) {
	var sb strings.Builder
	res, err := E4(E4Config{Seed: 1, FlowRate: 100, Hours: 0.15, PeriodS: 120, WindowMs: 500, ExtraMs: 4000}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected == 0 {
		t.Fatal("no affected flows")
	}
	if res.Recall < 0.9 {
		t.Fatalf("recall %.2f too low (affected %d, TP %d)", res.Recall, res.Affected, res.TruePositives)
	}
	if res.Precision < 0.8 {
		t.Fatalf("precision %.2f too low (%d firings)", res.Precision, res.SpikeFirings)
	}
	// The paper's point: the SNMP average must NOT show the glitch
	// prominently. With 0.4% of flows affected by +4000ms on a ~200ms
	// baseline, the 5-min mean moves by ~10%, well under alerting
	// thresholds.
	if res.SNMPDeviationPct > 40 {
		t.Fatalf("SNMP deviation %.1f%% — glitch should be invisible to 5-min averages", res.SNMPDeviationPct)
	}
	if !strings.Contains(sb.String(), "Ruru spike detections") {
		t.Fatal("report not printed")
	}
}

func TestE5FloodAndSurge(t *testing.T) {
	res, err := E5(E5Config{Seed: 1}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FloodDetected {
		t.Fatal("flood not detected")
	}
	if res.FloodDetectDelayS > 15 {
		t.Fatalf("flood detection took %.1fs", res.FloodDetectDelayS)
	}
	if res.FloodFalseAlarms != 0 {
		t.Fatalf("%d flood false alarms", res.FloodFalseAlarms)
	}
	if !res.SurgeDetected {
		t.Fatal("surge not detected")
	}
	if res.SurgeFalseAlarms != 0 {
		t.Fatalf("%d surge false alarms", res.SurgeFalseAlarms)
	}
}

func TestE6AccuracyTracksMislabelFraction(t *testing.T) {
	rows, err := E6(E6Config{Seed: 1, Fractions: []float64{0, 0.1}, Lookups: 20000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].CityAccuracy != 1.0 {
		t.Fatalf("clean DB city accuracy %.3f", rows[0].CityAccuracy)
	}
	// 10% of ranges mislabeled → city accuracy near 90%.
	if rows[1].CityAccuracy > 0.97 || rows[1].CityAccuracy < 0.8 {
		t.Fatalf("10%% mislabels → city accuracy %.3f, want ~0.9", rows[1].CityAccuracy)
	}
	// Country accuracy must be >= city accuracy (mislabels within the
	// same country still count for country).
	if rows[1].CountryAccuracy < rows[1].CityAccuracy {
		t.Fatalf("country %.3f < city %.3f", rows[1].CountryAccuracy, rows[1].CityAccuracy)
	}
	if rows[0].NsPerLookup <= 0 || rows[0].NsPerLookup > 100000 {
		t.Fatalf("lookup cost %v ns implausible", rows[0].NsPerLookup)
	}
}

func TestE7SymmetricRSSIsTheDesignRequirement(t *testing.T) {
	rows, err := E7(E7Config{Seed: 1, QueueList: []int{1, 4}, Flows: 3000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]map[int]E7Row{}
	for _, r := range rows {
		if byCfg[r.Config] == nil {
			byCfg[r.Config] = map[int]E7Row{}
		}
		byCfg[r.Config][r.Queues] = r
	}
	// Symmetric: 100% at any queue count.
	for q, r := range byCfg["symmetric"] {
		if r.MatchRate < 0.999 {
			t.Fatalf("symmetric key at %d queues: match rate %.3f", q, r.MatchRate)
		}
	}
	// Hash-reuse with the asymmetric key: table lookups themselves break,
	// so matching collapses even on one queue.
	for q, r := range byCfg["microsoft/hash-reuse"] {
		if r.MatchRate > 0.05 {
			t.Fatalf("hash-reuse at %d queues: match rate %.3f, expected near-total collapse", q, r.MatchRate)
		}
		if r.OrphanedSA == 0 {
			t.Fatalf("hash-reuse at %d queues produced no orphan SYN-ACKs", q)
		}
	}
	// Software rehash fixes the table, so 1 queue is perfect...
	if r := byCfg["microsoft/sw-rehash"][1]; r.MatchRate < 0.999 {
		t.Fatalf("sw-rehash at 1 queue: match rate %.3f", r.MatchRate)
	}
	// ...but queue co-location still fails ~3/4 of the time at 4 queues.
	r4 := byCfg["microsoft/sw-rehash"][4]
	if r4.MatchRate > 0.6 || r4.MatchRate < 0.1 {
		t.Fatalf("sw-rehash at 4 queues: match rate %.3f, want ~0.25", r4.MatchRate)
	}
	if r4.OrphanedSA == 0 {
		t.Fatal("sw-rehash at 4 queues produced no orphan SYN-ACKs")
	}
}

func TestE8StorageBench(t *testing.T) {
	res, err := E8(E8Config{Seed: 1, Points: 50000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.IngestPerSec < 1000 {
		t.Fatalf("ingest %.0f points/s implausibly slow", res.IngestPerSec)
	}
	if res.Series == 0 || len(res.QueryResults) != 4 {
		t.Fatalf("result incomplete: %+v", res)
	}
	for _, q := range res.QueryResults {
		if q.Latency <= 0 {
			t.Fatalf("query %q has no latency", q.Name)
		}
	}
}

func TestE10ContinuousRTTMatchesOracle(t *testing.T) {
	res, err := E10(E10Config{Seed: 1, Flows: 3000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows < 1000 {
		t.Fatalf("only %d TS-clean flows", res.Flows)
	}
	if res.MatchedData != res.ExpectedData {
		t.Fatalf("matched %d/%d data echoes", res.MatchedData, res.ExpectedData)
	}
	if res.WrongData != 0 {
		t.Fatalf("%d off-oracle samples", res.WrongData)
	}
	// In-stream external excludes server think time; handshake includes
	// it — so in-stream must be strictly lower.
	if res.MedianExtMs >= res.HandshakeExtMs {
		t.Fatalf("in-stream median %.2f >= handshake median %.2f", res.MedianExtMs, res.HandshakeExtMs)
	}
	// Midstream flows are invisible to the handshake engine but must all
	// be measured by the tracker.
	if res.MidstreamFlows == 0 {
		t.Fatal("no midstream flows generated")
	}
	if res.MidstreamMeasured != res.MidstreamFlows {
		t.Fatalf("midstream: measured %d/%d flows", res.MidstreamMeasured, res.MidstreamFlows)
	}
	if res.MidstreamMatched != res.MidstreamExpected {
		t.Fatalf("midstream: %d/%d samples exact", res.MidstreamMatched, res.MidstreamExpected)
	}
}

func TestE9HopOverheadOrdering(t *testing.T) {
	rows, err := E9(E9Config{Seed: 1, Messages: 20000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	direct, oneHop, twoHop := rows[0], rows[1], rows[2]
	if direct.NsPerMsg >= oneHop.NsPerMsg {
		t.Fatalf("direct (%.0fns) should be cheaper than bus (%.0fns)", direct.NsPerMsg, oneHop.NsPerMsg)
	}
	// The modularity claim: the extra filter hop costs something but not
	// an order of magnitude.
	if twoHop.NsPerMsg > oneHop.NsPerMsg*10 {
		t.Fatalf("filter hop blew up: %.0f vs %.0f ns/msg", twoHop.NsPerMsg, oneHop.NsPerMsg)
	}
}

func TestE11SinkSweep(t *testing.T) {
	rows, err := E11(E11Config{WorkerList: []int{1, 4}, Messages: 20000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The flow-controlled producer must make the run lossless, and
		// the ledger must balance: everything published is stored.
		if r.Drops != 0 || r.DecodeErr != 0 {
			t.Fatalf("workers=%d lost measurements: %+v", r.Workers, r)
		}
		if r.Stored != uint64(r.Messages) {
			t.Fatalf("workers=%d stored %d/%d", r.Workers, r.Stored, r.Messages)
		}
		if r.Rate <= 0 {
			t.Fatalf("workers=%d rate = %v", r.Workers, r.Rate)
		}
	}
}

func TestE12RollupQuery(t *testing.T) {
	res, err := E12(E12Config{Seed: 1, Points: 60000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The dashboard shape must be planned onto the 10s tier, agree exactly
	// with raw on the exact aggregations, and keep quantiles within the
	// histogram's documented one-bin error (≤ ~25% relative).
	if res.TierNs != 10e9 {
		t.Fatalf("served from tier %d, want 10s", res.TierNs)
	}
	if !res.ExactAggsEqual {
		t.Fatal("count/min/max/sum/mean diverged from the raw path")
	}
	if res.MaxQuantRelErr > 0.25 {
		t.Fatalf("quantile error %.1f%% exceeds bin error", 100*res.MaxQuantRelErr)
	}
	if res.RawLatency <= 0 || res.TierLatency <= 0 {
		t.Fatalf("latencies not measured: %+v", res)
	}
}

func TestE13Durability(t *testing.T) {
	res, err := E13(E13Config{Seed: 1, Points: 30000}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Recovery must be lossless and duplicate-free (checkpoint + WAL tail
	// sum to exactly the written points), bit-equal on the exact
	// aggregates, and the rollup tiers must be rebuilt by replay.
	if !res.RecoverOK {
		t.Fatalf("recovered %d+%d of %d points", res.Restored, res.Replayed, res.Points)
	}
	if res.Restored == 0 || res.Replayed == 0 {
		t.Fatalf("recovery exercised only one path: %d restored, %d replayed", res.Restored, res.Replayed)
	}
	if !res.ExactAggs {
		t.Fatal("post-restart raw query diverged from pre-restart state")
	}
	if !res.TierRebuilt {
		t.Fatal("rollup tiers not rebuilt (or diverged) after restart")
	}
	if res.MemRate <= 0 || res.WALOffRate <= 0 || res.WALIntRate <= 0 {
		t.Fatalf("rates not measured: %+v", res)
	}
}

func TestE14Federation(t *testing.T) {
	res, err := E14(E14Config{Probes: 2, Points: 4000, Batch: 64}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactlyOnce {
		t.Fatalf("exactly-once violated: %+v", res)
	}
	if res.Applied != res.Sent || res.Sent != 8000 {
		t.Fatalf("sent %d applied %d", res.Sent, res.Applied)
	}
}

func TestE15SketchSoakSmall(t *testing.T) {
	res, err := E15(E15Config{Flows: 200_000, Queues: 4, BudgetBytes: 16 << 20, Elephants: 8}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CapHeld {
		t.Fatalf("byte cap exceeded: high-water %d > %d", res.MaxTierBytes, res.BudgetBytes)
	}
	if res.ElephantsRanked != res.Elephants {
		t.Fatalf("elephants ranked %d/%d", res.ElephantsRanked, res.Elephants)
	}
	// The cap must actually bind at this scale: most mice refused into
	// sketch-only state, yet some exact records (incl. every elephant) live.
	if res.SketchOnly == 0 {
		t.Fatal("cap never bound: zero sketch-only flows")
	}
	if res.ExactFlows == 0 || res.Promoted < uint64(res.Elephants) {
		t.Fatalf("exact tier empty or elephants not promoted: %+v", res)
	}
	if res.LiveBytes > res.BudgetBytes*int64(res.Queues) {
		t.Fatalf("live %d exceeds total cap", res.LiveBytes)
	}
}

// TestE15FullScaleSoak is the 10M-flow memory-cap soak from the issue:
// tier bytes stay under the 16MiB/queue cap for the whole run while the
// heavy-hitter view still surfaces every planted elephant.
func TestE15FullScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-flow soak skipped in -short")
	}
	res, err := E15(E15Config{}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CapHeld || res.ElephantsRanked != res.Elephants || res.SketchOnly == 0 {
		t.Fatalf("soak invariants violated: %+v", res)
	}
}
