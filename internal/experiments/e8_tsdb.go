package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ruru/internal/tsdb"
)

// E8Result measures the storage stage: ingest rate for geo-tagged latency
// points and latency of the Grafana-panel query shapes (paper §2: min/max/
// median/mean over a required time interval, indexed by geo/AS).
type E8Result struct {
	Points       int
	IngestPerSec float64
	Series       int
	QueryResults []E8Query
}

// E8Query is one measured query shape.
type E8Query struct {
	Name    string
	Latency time.Duration
	Groups  int
}

// E8Config parameterizes the benchmark.
type E8Config struct {
	Seed   int64
	Points int // default 500k
}

// E8 runs the storage benchmark.
func E8(cfg E8Config, w io.Writer) (E8Result, error) {
	if cfg.Points <= 0 {
		cfg.Points = 500_000
	}
	db := tsdb.Open(tsdb.Options{ShardDuration: 600e9})
	rng := rand.New(rand.NewSource(cfg.Seed))
	cities := []string{"Auckland", "Wellington", "Christchurch", "Sydney", "Tokyo", "Singapore", "London"}
	dsts := []string{"Los Angeles", "San Francisco", "Seattle", "New York"}

	start := time.Now()
	p := tsdb.Point{Name: "latency"}
	for i := 0; i < cfg.Points; i++ {
		src := cities[rng.Intn(len(cities))]
		dst := dsts[rng.Intn(len(dsts))]
		total := 100 + rng.Float64()*200
		p.Tags = p.Tags[:0]
		p.Tags = append(p.Tags,
			tsdb.Tag{Key: "src_city", Value: src},
			tsdb.Tag{Key: "dst_city", Value: dst},
			tsdb.Tag{Key: "dst_asn", Value: fmt.Sprint(64000 + rng.Intn(16))},
		)
		p.Fields = p.Fields[:0]
		p.Fields = append(p.Fields,
			tsdb.Field{Key: "internal_ms", Value: total * 0.1},
			tsdb.Field{Key: "external_ms", Value: total * 0.9},
			tsdb.Field{Key: "total_ms", Value: total},
		)
		p.Time = int64(i) * 2e6 // 500 points/s of virtual time
		if err := db.Write(&p); err != nil {
			return E8Result{}, err
		}
	}
	ingestElapsed := time.Since(start)
	res := E8Result{
		Points:       cfg.Points,
		IngestPerSec: float64(cfg.Points) / ingestElapsed.Seconds(),
		Series:       db.SeriesCount(),
	}

	end := int64(cfg.Points) * 2e6
	queries := []struct {
		name string
		q    tsdb.Query
	}{
		{"full-range min/max/mean/median", tsdb.Query{
			Measurement: "latency", Field: "total_ms", Start: 0, End: end,
			Aggs: []tsdb.AggKind{tsdb.AggMin, tsdb.AggMax, tsdb.AggMean, tsdb.AggMedian},
		}},
		{"windowed (60s buckets) mean", tsdb.Query{
			Measurement: "latency", Field: "total_ms", Start: 0, End: end, Window: 60e9,
			Aggs: []tsdb.AggKind{tsdb.AggMean},
		}},
		{"group-by src_city p95/p99", tsdb.Query{
			Measurement: "latency", Field: "total_ms", Start: 0, End: end,
			GroupBy: "src_city", Aggs: []tsdb.AggKind{tsdb.AggP95, tsdb.AggP99},
		}},
		{"filtered city pair, windowed", tsdb.Query{
			Measurement: "latency", Field: "external_ms", Start: 0, End: end, Window: 60e9,
			Where: []tsdb.Tag{{Key: "src_city", Value: "Auckland"}, {Key: "dst_city", Value: "Los Angeles"}},
			Aggs:  []tsdb.AggKind{tsdb.AggMedian},
		}},
	}
	for _, qq := range queries {
		qStart := time.Now()
		out, err := db.Execute(qq.q)
		if err != nil {
			return res, err
		}
		res.QueryResults = append(res.QueryResults, E8Query{
			Name: qq.name, Latency: time.Since(qStart), Groups: len(out),
		})
	}

	if w != nil {
		fmt.Fprintf(w, "E8: time-series storage (InfluxDB substitute; %d points, %d series)\n", res.Points, res.Series)
		fmt.Fprintf(w, "  ingest                     %.0f points/s\n", res.IngestPerSec)
		for _, q := range res.QueryResults {
			fmt.Fprintf(w, "  query: %-34s %10s (%d groups)\n", q.Name, q.Latency.Round(time.Microsecond), q.Groups)
		}
	}
	return res, nil
}
