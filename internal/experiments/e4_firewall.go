package experiments

import (
	"fmt"
	"io"
	"sort"

	"ruru/internal/anomaly"
	"ruru/internal/core"
	"ruru/internal/gen"
	"ruru/internal/geo"
)

// E4Result reproduces the paper's headline anecdote: a nightly firewall
// update adds ~4000 ms to every connection started in a short window; Ruru
// sees it immediately while the 5-minute SNMP-style average does not (§3:
// "This 4000 ms increase had not been noticed by conventional measurement
// tools (e.g., SNMP polls), however, it was clearly shown in our Grafana
// UI").
type E4Result struct {
	Flows    int // completing flows measured
	Affected int // ground-truth anomalous flows measured

	SpikeFirings  int // detector firings
	TruePositives int // firings on genuinely anomalous flows
	Recall        float64
	Precision     float64

	// Conventional-monitoring comparison.
	SNMPIntervals    int
	SNMPBaselineMs   float64 // median interval mean
	SNMPWorstMs      float64 // worst interval mean
	SNMPDeviationPct float64 // worst deviation from the baseline
}

// E4Config parameterizes the firewall experiment.
type E4Config struct {
	Seed     int64
	FlowRate float64 // default 200 flows/s
	Hours    float64 // virtual capture length (default 0.5)
	PeriodS  int64   // glitch period (default 600s)
	WindowMs int64   // glitch window (default 500ms)
	ExtraMs  int64   // added delay (default 4000ms, the paper's number)
}

// E4 runs the experiment over the full measurement path with both the
// Ruru spike detector and the SNMP strawman consuming the same stream.
func E4(cfg E4Config, w io.Writer) (E4Result, error) {
	if cfg.FlowRate <= 0 {
		cfg.FlowRate = 200
	}
	if cfg.Hours <= 0 {
		cfg.Hours = 0.5
	}
	if cfg.PeriodS <= 0 {
		cfg.PeriodS = 600
	}
	if cfg.WindowMs <= 0 {
		cfg.WindowMs = 500
	}
	if cfg.ExtraMs <= 0 {
		cfg.ExtraMs = 4000
	}
	world, err := geo.NewWorld(geo.WorldOptions{Seed: cfg.Seed})
	if err != nil {
		return E4Result{}, err
	}
	dur := int64(cfg.Hours * 3600 * 1e9)
	g, err := gen.New(gen.Config{
		Seed: cfg.Seed, World: world,
		FlowRate: cfg.FlowRate, Duration: dur,
		// The deployment scenario: NZ clients, US servers.
		ClientCities: []int{0, 2, 3}, ServerCities: []int{1, 7, 8, 9},
		FirewallWindows: []gen.Window{{
			Every: cfg.PeriodS * 1e9, Offset: 60e9,
			Length: cfg.WindowMs * 1e6, Extra: cfg.ExtraMs * 1e6,
		}},
	})
	if err != nil {
		return E4Result{}, err
	}

	spikes := anomaly.NewSpikeBank(anomaly.SpikeConfig{}, 0)
	snmp := anomaly.NewSNMPPoller(300e9)

	type outcome struct {
		flow  core.FlowKey
		fired bool
	}
	var outcomes []outcome
	rep := Replay{
		Queues: 4,
		Table:  core.TableConfig{Capacity: 1 << 17, Timeout: 60e9},
		OnMeasure: func(m *core.Measurement) {
			snmp.Offer(m.ACKTime, m.Total)
			pair := "?"
			if cs, ok := world.CityOf(m.Flow.Client); ok {
				if cd, ok := world.CityOf(m.Flow.Server); ok {
					pair = cs.Name + "→" + cd.Name
				}
			}
			ev := spikes.Offer(pair, m.ACKTime, m.Total)
			outcomes = append(outcomes, outcome{flow: m.Flow, fired: ev != nil})
		},
	}
	rep.Run(g)
	snmp.Flush()

	truthByKey := map[core.FlowKey]*gen.FlowTruth{}
	truths := g.Truths()
	for i := range truths {
		truthByKey[truths[i].Key] = &truths[i]
	}

	res := E4Result{}
	for _, o := range outcomes {
		tr, ok := truthByKey[o.flow]
		if !ok {
			continue
		}
		res.Flows++
		if tr.Anomalous {
			res.Affected++
			if o.fired {
				res.TruePositives++
			}
		}
		if o.fired {
			res.SpikeFirings++
		}
	}
	if res.Affected > 0 {
		res.Recall = float64(res.TruePositives) / float64(res.Affected)
	}
	if res.SpikeFirings > 0 {
		res.Precision = float64(res.TruePositives) / float64(res.SpikeFirings)
	}

	samples := snmp.Samples()
	res.SNMPIntervals = len(samples)
	if len(samples) > 0 {
		means := make([]float64, len(samples))
		worst := 0.0
		for i, s := range samples {
			means[i] = s.MeanNs / 1e6
			if means[i] > worst {
				worst = means[i]
			}
		}
		sort.Float64s(means)
		res.SNMPBaselineMs = means[len(means)/2]
		res.SNMPWorstMs = worst
		if res.SNMPBaselineMs > 0 {
			res.SNMPDeviationPct = 100 * (worst - res.SNMPBaselineMs) / res.SNMPBaselineMs
		}
	}

	if w != nil {
		fmt.Fprintf(w, "E4: nightly firewall glitch (+%dms for flows started in a %dms window every %ds)\n",
			cfg.ExtraMs, cfg.WindowMs, cfg.PeriodS)
		fmt.Fprintf(w, "  flows measured              %d\n", res.Flows)
		fmt.Fprintf(w, "  ground-truth affected       %d (%.3f%% of traffic)\n", res.Affected, pct(res.Affected, res.Flows))
		fmt.Fprintf(w, "  Ruru spike detections       %d  (recall %.1f%%, precision %.1f%%)\n",
			res.SpikeFirings, 100*res.Recall, 100*res.Precision)
		fmt.Fprintf(w, "  SNMP 5-min intervals        %d\n", res.SNMPIntervals)
		fmt.Fprintf(w, "  SNMP baseline mean          %.1f ms\n", res.SNMPBaselineMs)
		fmt.Fprintf(w, "  SNMP worst interval mean    %.1f ms (deviation %.1f%% — %s)\n",
			res.SNMPWorstMs, res.SNMPDeviationPct, e4Verdict(res.SNMPDeviationPct))
	}
	return res, nil
}

func e4Verdict(devPct float64) string {
	if devPct < 25 {
		return "invisible to threshold alerting, as the paper reports"
	}
	return "visible"
}
