package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"ruru/internal/tsdb"
)

// E13Result measures the durability tentpole from both sides:
//
//   - Cost: the batched TSDB write path in-memory versus WAL-logged at
//     fsync=off and fsync=interval — OverheadPct (interval vs in-memory)
//     is the headline number. The ≤15% acceptance target is pinned by
//     BenchmarkWriteWAL's steady-series shape, where the WAL's own cost
//     is isolated; this experiment randomizes the series per point and
//     writes at disk-saturating rate, so it additionally prices shape-
//     dictionary lookups and the kernel writeback that a deployment at
//     realistic rates amortizes over idle time — treat its number as the
//     harsher upper bound.
//   - Benefit: after a checkpoint mid-stream and a clean close, a fresh
//     open of the same directory must recover every point, and both the
//     raw path and the rebuilt rollup tiers must serve the dashboard
//     query with exactly the pre-restart aggregates.
type E13Result struct {
	Points int
	Batch  int

	MemRate      float64 // points/s, in-memory WriteBatch
	WALOffRate   float64 // points/s, fsync=off
	WALIntRate   float64 // points/s, fsync=interval
	OverheadPct  float64 // (tInterval - tMem) / tMem, percent
	CheckpointMS float64 // one full checkpoint at half load

	Restored    uint64 // points recovered from the checkpoint
	Replayed    uint64 // points recovered from the WAL tail
	RecoverOK   bool   // Restored+Replayed == Points
	ExactAggs   bool   // raw query after reopen bit-equal to before
	TierRebuilt bool   // reopen serves from a tier, equal to raw
}

// E13Config parameterizes the durability experiment.
type E13Config struct {
	Seed   int64
	Points int // default 200k
	Batch  int // default 64
}

// E13 writes the same deterministic latency workload through three DB
// configurations to price the WAL, then exercises the full recovery path:
// checkpoint at half load, clean close, reopen, and raw/tier query
// equivalence against the pre-restart state.
func E13(cfg E13Config, w io.Writer) (E13Result, error) {
	if cfg.Points <= 0 {
		cfg.Points = 200_000
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	res := E13Result{Points: cfg.Points, Batch: cfg.Batch}

	mkBatches := func() [][]tsdb.Point {
		rng := rand.New(rand.NewSource(cfg.Seed))
		batches := make([][]tsdb.Point, 0, cfg.Points/cfg.Batch+1)
		for i := 0; i < cfg.Points; {
			n := cfg.Batch
			if cfg.Points-i < n {
				n = cfg.Points - i
			}
			batch := make([]tsdb.Point, n)
			for j := range batch {
				batch[j] = tsdb.Point{
					Name: "latency",
					Tags: []tsdb.Tag{
						{Key: "src_city", Value: fmt.Sprintf("City%d", rng.Intn(8))},
						{Key: "dst_city", Value: "Los Angeles"},
					},
					// Integer-valued ms so float sums reorder exactly and
					// the post-restart comparison can demand bit equality.
					Fields: []tsdb.Field{{Key: "total_ms", Value: float64(100 + rng.Intn(300))}},
					Time:   int64(i+j) * 1e7, // 100µs apart: ~33min of data
				}
			}
			batches = append(batches, batch)
			i += n
		}
		return batches
	}

	run := func(db *tsdb.DB, batches [][]tsdb.Point, from, to int) (float64, error) {
		start := time.Now()
		n := 0
		for _, b := range batches[from:to] {
			applied, err := db.WriteBatch(b)
			if err != nil {
				return 0, err
			}
			n += applied
		}
		return float64(n) / time.Since(start).Seconds(), nil
	}
	// The cost legs run INTERLEAVED (mem, off, interval, mem, off, …) on
	// fresh DBs and each config takes its median: the true WAL cost is
	// small enough that sequential one-shot legs diverge with whatever
	// drift (GC debt, writeback, noisy neighbors) happens to fall on one
	// of them, while interleaving exposes every config to the same
	// conditions.
	const attempts = 3
	oneRun := func(open func() (*tsdb.DB, error), batches [][]tsdb.Point) (float64, error) {
		db, err := open()
		if err != nil {
			return 0, err
		}
		rate, err := run(db, batches, 0, len(batches))
		if cerr := db.Close(); err == nil {
			err = cerr
		}
		return rate, err
	}
	median := func(rates []float64) float64 {
		sort.Float64s(rates)
		return rates[len(rates)/2]
	}

	// 1. The query oracle: one in-memory population kept for comparison.
	memDB := tsdb.Open(tsdb.Options{Rollups: tsdb.DefaultRollups()})
	memBatches := mkBatches()
	var err error
	if _, err = run(memDB, memBatches, 0, len(memBatches)); err != nil {
		return res, err
	}

	query := tsdb.Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: (int64(cfg.Points)*1e7 + 60e9 - 1) / 60e9 * 60e9,
		Window: 60e9, GroupBy: "src_city",
		Aggs: []tsdb.AggKind{tsdb.AggCount, tsdb.AggMin, tsdb.AggMax, tsdb.AggSum, tsdb.AggMean},
	}
	runQuery := func(db *tsdb.DB, resolution int64) ([]tsdb.SeriesResult, error) {
		q := query
		q.Resolution = resolution
		return db.Execute(q)
	}
	wantRaw, err := runQuery(memDB, tsdb.ResolutionRaw)
	if err != nil {
		return res, err
	}
	if err := memDB.Close(); err != nil {
		return res, err
	}

	// 2. Interleaved cost legs: in-memory, WAL fsync=off (marshal+write,
	// no fsync) and WAL fsync=interval (the production default), each on
	// a fresh DB / throwaway directory per attempt.
	var dirs []string
	defer func() {
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}()
	openMem := func() (*tsdb.DB, error) {
		return tsdb.Open(tsdb.Options{Rollups: tsdb.DefaultRollups()}), nil
	}
	openPersist := func(pattern string, fsync tsdb.FsyncPolicy) func() (*tsdb.DB, error) {
		return func() (*tsdb.DB, error) {
			dir, err := os.MkdirTemp("", pattern)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, dir)
			return tsdb.OpenDB(tsdb.Options{Rollups: tsdb.DefaultRollups(),
				Persist: &tsdb.PersistOptions{Dir: dir, Fsync: fsync, CheckpointEvery: -1}})
		}
	}
	var memRates, offRates, intRates []float64
	for a := 0; a < attempts; a++ {
		for _, leg := range []struct {
			open  func() (*tsdb.DB, error)
			rates *[]float64
		}{
			{openMem, &memRates},
			{openPersist("ruru-e13-off-*", tsdb.FsyncOff), &offRates},
			{openPersist("ruru-e13-int-*", tsdb.FsyncInterval), &intRates},
		} {
			rate, err := oneRun(leg.open, memBatches)
			if err != nil {
				return res, err
			}
			*leg.rates = append(*leg.rates, rate)
		}
	}
	res.MemRate = median(memRates)
	res.WALOffRate = median(offRates)
	res.WALIntRate = median(intRates)
	if res.WALIntRate > 0 && res.MemRate > 0 {
		res.OverheadPct = (res.MemRate/res.WALIntRate - 1) * 100
	}

	// 3. The recovery story: checkpoint at half load, finish, clean close,
	// reopen, compare against the in-memory oracle.
	intDir, err := os.MkdirTemp("", "ruru-e13-rec-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(intDir)
	intOpts := tsdb.Options{Rollups: tsdb.DefaultRollups(),
		Persist: &tsdb.PersistOptions{Dir: intDir, Fsync: tsdb.FsyncInterval, CheckpointEvery: -1}}
	intDB, err := tsdb.OpenDB(intOpts)
	if err != nil {
		return res, err
	}
	intBatches := mkBatches()
	half := len(intBatches) / 2
	if _, err := run(intDB, intBatches, 0, half); err != nil {
		return res, err
	}
	ckStart := time.Now()
	if _, err := intDB.Checkpoint(); err != nil {
		return res, err
	}
	res.CheckpointMS = float64(time.Since(ckStart).Microseconds()) / 1e3
	if _, err := run(intDB, intBatches, half, len(intBatches)); err != nil {
		return res, err
	}
	if err := intDB.Close(); err != nil {
		return res, err
	}

	reDB, err := tsdb.OpenDB(intOpts)
	if err != nil {
		return res, err
	}
	// reDB is read-only verification state; nothing new was written, so
	// a close error cannot change what the experiment measured.
	defer func() { _ = reDB.Close() }()
	ps := reDB.PersistStats()
	res.Restored, res.Replayed = ps.RestoredPoints, ps.WALReplayedPoints
	res.RecoverOK = res.Restored+res.Replayed == uint64(cfg.Points)
	gotRaw, err := runQuery(reDB, tsdb.ResolutionRaw)
	if err != nil {
		return res, err
	}
	gotTier, err := runQuery(reDB, tsdb.ResolutionAuto)
	if err != nil {
		return res, err
	}
	res.ExactAggs = seriesResultsEqual(gotRaw, wantRaw, query.Aggs)
	res.TierRebuilt = len(gotTier) > 0 && gotTier[0].Tier != 0 &&
		seriesResultsEqual(gotTier, wantRaw, query.Aggs)

	if w != nil {
		fmt.Fprintf(w, "E13: durable storage — WAL cost and crash recovery (%d points, batch %d)\n",
			res.Points, res.Batch)
		fmt.Fprintf(w, "  in-memory WriteBatch        %12.0f points/s\n", res.MemRate)
		fmt.Fprintf(w, "  WAL fsync=off               %12.0f points/s\n", res.WALOffRate)
		fmt.Fprintf(w, "  WAL fsync=interval          %12.0f points/s\n", res.WALIntRate)
		fmt.Fprintf(w, "  write-path overhead         %11.1f%%  (≤15%% target is pinned by\n"+
			"    BenchmarkWriteWAL's steady-series shape; this leg randomizes the\n"+
			"    series per point and runs at disk-saturating rate, so it also pays\n"+
			"    dictionary lookups and the kernel writeback a real deployment\n"+
			"    spreads over idle time)\n", res.OverheadPct)
		fmt.Fprintf(w, "  checkpoint at half load     %11.1fms\n", res.CheckpointMS)
		fmt.Fprintf(w, "  recovery: %d from checkpoint + %d from WAL = all %d: %v\n",
			res.Restored, res.Replayed, res.Points, res.RecoverOK)
		fmt.Fprintf(w, "  post-restart equivalence    raw exact=%v, tiers rebuilt+exact=%v\n",
			res.ExactAggs, res.TierRebuilt)
	}
	return res, nil
}

// seriesResultsEqual compares the exact aggregates of two result sets
// (group order is already sorted by Execute).
func seriesResultsEqual(got, want []tsdb.SeriesResult, aggs []tsdb.AggKind) bool {
	if len(got) != len(want) {
		return false
	}
	for g := range got {
		if got[g].Group != want[g].Group || len(got[g].Buckets) != len(want[g].Buckets) {
			return false
		}
		for i := range got[g].Buckets {
			gb, wb := got[g].Buckets[i], want[g].Buckets[i]
			if gb.Count != wb.Count {
				return false
			}
			for _, k := range aggs {
				gv, wv := gb.Aggs[k], wb.Aggs[k]
				if gv != wv && !(math.IsNaN(gv) && math.IsNaN(wv)) {
					return false
				}
			}
		}
	}
	return true
}
