package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"ruru/internal/tsdb"
)

// E12Result measures the rollup tentpole: the dashboard query shape (a long
// range at an aligned window) served by re-scanning raw samples versus
// merging one tier's pre-aggregates, over the same rollup-enabled DB. The
// Speedup column is the claim the query planner exists for: tier-served
// reads cost O(range/tierWidth) regardless of ingest rate, so the live
// timeline stays interactive as retention and traffic grow.
type E12Result struct {
	Points      int
	Series      int
	RangeNs     int64
	WindowNs    int64
	TierNs      int64 // tier the planner chose (bucket width, ns)
	RawLatency  time.Duration
	TierLatency time.Duration
	Speedup     float64
	// Equivalence of the two paths over every bucket of the measured
	// query: count/min/max/sum must agree exactly, quantiles within the
	// tier histogram's bin error.
	ExactAggsEqual bool
	MaxQuantRelErr float64
}

// E12Config parameterizes the rollup experiment.
type E12Config struct {
	Seed   int64
	Points int   // default 360k (100/s over the hour)
	Pairs  int   // distinct src_city values (default 8)
	Range  int64 // query range, default 1h
	Window int64 // query window, default 10s
}

// E12 populates a rollup-enabled TSDB with an hour of geo-tagged latency
// points, runs the 1h/10s dashboard query through the raw path and the
// resolution-aware planner, and reports latencies, the serving tier, and
// raw-vs-tier equivalence.
func E12(cfg E12Config, w io.Writer) (E12Result, error) {
	if cfg.Points <= 0 {
		cfg.Points = 360_000
	}
	if cfg.Pairs <= 0 {
		cfg.Pairs = 8
	}
	if cfg.Range <= 0 {
		cfg.Range = 3600e9
	}
	if cfg.Window <= 0 {
		cfg.Window = 10e9
	}
	db := tsdb.Open(tsdb.Options{Rollups: tsdb.DefaultRollups()})
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := tsdb.Point{Name: "latency"}
	for i := 0; i < cfg.Points; i++ {
		// Integer-valued ms so float sums are exact under reordering and
		// the raw/tier comparison below can demand bitwise equality.
		total := float64(100 + rng.Intn(300))
		p.Tags = append(p.Tags[:0],
			tsdb.Tag{Key: "src_city", Value: fmt.Sprintf("City%d", rng.Intn(cfg.Pairs))},
			tsdb.Tag{Key: "dst_city", Value: "Los Angeles"},
		)
		p.Fields = append(p.Fields[:0], tsdb.Field{Key: "total_ms", Value: total})
		p.Time = rng.Int63n(cfg.Range)
		if err := db.Write(&p); err != nil {
			return E12Result{}, err
		}
	}
	res := E12Result{
		Points: cfg.Points, Series: db.SeriesCount(),
		RangeNs: cfg.Range, WindowNs: cfg.Window,
		ExactAggsEqual: true,
	}

	q := tsdb.Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: cfg.Range, Window: cfg.Window, GroupBy: "src_city",
		Aggs: []tsdb.AggKind{tsdb.AggCount, tsdb.AggMin, tsdb.AggMax, tsdb.AggSum,
			tsdb.AggMean, tsdb.AggP95, tsdb.AggP99},
	}
	run := func(resolution int64) ([]tsdb.SeriesResult, time.Duration, error) {
		qq := q
		qq.Resolution = resolution
		start := time.Now()
		out, err := db.Execute(qq)
		return out, time.Since(start), err
	}
	// Warm both paths once, then measure the better of 3 runs each.
	if _, _, err := run(tsdb.ResolutionRaw); err != nil {
		return res, err
	}
	tiered, _, err := run(tsdb.ResolutionAuto)
	if err != nil {
		return res, err
	}
	raw, rawLat, err := run(tsdb.ResolutionRaw)
	res.RawLatency = rawLat
	if err != nil {
		return res, err
	}
	for i := 0; i < 2; i++ {
		if _, lat, err := run(tsdb.ResolutionRaw); err == nil && lat < res.RawLatency {
			res.RawLatency = lat
		}
	}
	res.TierLatency = time.Duration(math.MaxInt64)
	for i := 0; i < 3; i++ {
		if _, lat, err := run(tsdb.ResolutionAuto); err == nil && lat < res.TierLatency {
			res.TierLatency = lat
		}
	}
	if res.TierLatency > 0 {
		res.Speedup = float64(res.RawLatency) / float64(res.TierLatency)
	}

	if len(tiered) != len(raw) {
		return res, fmt.Errorf("e12: %d tier groups vs %d raw groups", len(tiered), len(raw))
	}
	for g := range tiered {
		res.TierNs = tiered[g].Tier
		if tiered[g].Tier == 0 {
			return res, fmt.Errorf("e12: group %q not served from a tier", tiered[g].Group)
		}
		for i := range tiered[g].Buckets {
			tb, rb := tiered[g].Buckets[i], raw[g].Buckets[i]
			if tb.Count != rb.Count {
				res.ExactAggsEqual = false
			}
			for _, k := range []tsdb.AggKind{tsdb.AggCount, tsdb.AggMin, tsdb.AggMax, tsdb.AggSum, tsdb.AggMean} {
				if tb.Aggs[k] != rb.Aggs[k] {
					res.ExactAggsEqual = false
				}
			}
			for _, k := range []tsdb.AggKind{tsdb.AggP95, tsdb.AggP99} {
				if rb.Aggs[k] != 0 {
					if rel := math.Abs(tb.Aggs[k]-rb.Aggs[k]) / math.Abs(rb.Aggs[k]); rel > res.MaxQuantRelErr {
						res.MaxQuantRelErr = rel
					}
				}
			}
		}
	}

	if w != nil {
		fmt.Fprintf(w, "E12: rollup-served dashboard query (%d points, %d series, %s range, %s windows)\n",
			res.Points, res.Series,
			time.Duration(res.RangeNs).Round(time.Second), time.Duration(res.WindowNs).Round(time.Second))
		fmt.Fprintf(w, "  raw path                   %12s\n", res.RawLatency.Round(time.Microsecond))
		fmt.Fprintf(w, "  tier path (%s buckets)    %12s\n",
			time.Duration(res.TierNs).Round(time.Second), res.TierLatency.Round(time.Microsecond))
		fmt.Fprintf(w, "  speedup                    %11.1fx\n", res.Speedup)
		fmt.Fprintf(w, "  count/min/max/sum/mean     exact=%v, max quantile rel err %.1f%%\n",
			res.ExactAggsEqual, 100*res.MaxQuantRelErr)
	}
	return res, nil
}
