package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/fed"
	"ruru/internal/mq"
	"ruru/internal/tsdb"
)

// E14Result measures the federation tentpole from both sides:
//
//   - Throughput: N probes streaming batched, acked, CRC-framed
//     measurement records over loopback TCP into one aggregator DB —
//     points/s applied end to end (bus → probe batcher → spool → wire →
//     dedup → WriteBatch).
//   - Recovery: mid-stream every connection is severed (probes reconnect
//     and replay from their spools), and one probe is crashed outright
//     (its goroutines reaped without Close, its spool reopened by a
//     fresh probe with the same identity). ExactlyOnce demands the
//     aggregator applied every measurement exactly once anyway —
//     Applied == Sent with zero lost and all resent batches absorbed by
//     sequence dedup (Duplicates is how many the dedup caught).
type E14Result struct {
	Probes int
	Points int // per probe

	Rate        float64 // aggregator points/s, end to end
	Sent        uint64  // measurements handed to the probes
	Applied     uint64  // measurements the aggregator wrote
	Duplicates  uint64  // resent batches absorbed by sequence dedup
	Resent      uint64  // batch frames the probes sent more than once
	ExactlyOnce bool
}

// E14Config parameterizes the federation experiment.
type E14Config struct {
	Probes int // default 2
	Points int // per probe (default 100k)
	Batch  int // remote-write batch size (default 256)
}

// E14 runs the probe→aggregator federation pipeline in-process with real
// TCP and real spool files, injecting a full-fleet disconnect and one
// probe crash mid-stream.
func E14(cfg E14Config, w io.Writer) (E14Result, error) {
	if cfg.Probes <= 0 {
		cfg.Probes = 2
	}
	if cfg.Points <= 0 {
		cfg.Points = 100_000
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	res := E14Result{Probes: cfg.Probes, Points: cfg.Points}

	db := tsdb.Open(tsdb.Options{})
	// In-memory DB: Close only errors on double-close, which would be a
	// harness bug worth keeping invisible to the experiment result.
	defer func() { _ = db.Close() }()
	agg, err := fed.NewAggregator(fed.AggConfig{Listen: "127.0.0.1:0"}, db)
	if err != nil {
		return res, err
	}
	defer agg.Close()

	tmp, err := os.MkdirTemp("", "ruru-e14-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(tmp)

	// Pre-marshal one payload per city pair; publishing is then cheap
	// enough that the probes' drain rate is what is measured.
	payloads := make([][]byte, 16)
	for i := range payloads {
		e := analytics.Enriched{
			Time: int64(i+1) * 1e6, InternalNs: 15e6, ExternalNs: 130e6, TotalNs: 145e6,
			Src: analytics.Endpoint{City: fmt.Sprintf("SrcCity%d", i), CountryCode: "NZ", ASN: 64000},
			Dst: analytics.Endpoint{City: "Los Angeles", CountryCode: "US", ASN: 64500},
		}
		payloads[i] = analytics.MarshalEnriched(nil, &e)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type probeRig struct {
		bus  *mq.Bus
		pr   *fed.Probe
		id   string
		dir  string
		done chan struct{}
	}
	start := func(id, dir string) (*probeRig, error) {
		rig := &probeRig{bus: mq.NewBus(), id: id, dir: dir, done: make(chan struct{})}
		pr, err := fed.NewProbe(fed.ProbeConfig{
			Addr: agg.Addr().String(), ID: id, SpoolDir: dir,
			BatchSize: cfg.Batch, FlushEvery: 20 * time.Millisecond,
		}, rig.bus)
		if err != nil {
			return nil, err
		}
		rig.pr = pr
		go func() { pr.Run(ctx); close(rig.done) }()
		return rig, nil
	}

	rigs := make([]*probeRig, cfg.Probes)
	for i := range rigs {
		if rigs[i], err = start(fmt.Sprintf("probe-%d", i),
			fmt.Sprintf("%s/p%d", tmp, i)); err != nil {
			return res, err
		}
	}

	// Flow-controlled publishing: keep the publish-ahead backlog under the
	// subscription HWM so no measurement is shed (this experiment measures
	// delivery, not backpressure policy).
	publish := func(rig *probeRig, from, to int) {
		base := rig.pr.Stats().PointsOut
		for i := from; i < to; i++ {
			for {
				st := rig.pr.Stats()
				if uint64(i-from)-(st.PointsOut-base) < mq.DefaultHWM/2 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			rig.bus.Publish(mq.Message{Topic: analytics.TopicEnriched,
				Payload: payloads[i%len(payloads)]})
		}
	}
	waitApplied := func(want uint64, d time.Duration) error {
		deadline := time.Now().Add(d)
		for {
			written, _ := db.WriteStats()
			if written >= want {
				if written > want {
					return fmt.Errorf("over-applied: %d > %d", written, want)
				}
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("timed out at %d/%d applied", written, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	began := time.Now()
	half := cfg.Points / 2

	// Leg 1: first half at full speed, then a fleet-wide disconnect.
	for _, rig := range rigs {
		go publish(rig, 0, half)
	}
	if err := waitApplied(uint64(cfg.Probes*half), 2*time.Minute); err != nil {
		return res, err
	}
	agg.DropConnections()

	// Leg 2: crash the whole fleet without Close — kill -9 semantics, each
	// spool left exactly as the crash left it (ACKED possibly stale) —
	// restart every probe from its own spool under the same identity, then
	// stream the second half.
	cancel()
	for _, rig := range rigs {
		<-rig.done
		rig.bus.Close()
	}
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	for i := range rigs {
		if rigs[i], err = start(rigs[i].id, rigs[i].dir); err != nil {
			return res, err
		}
	}
	for _, rig := range rigs {
		go publish(rig, half, cfg.Points)
	}
	if err := waitApplied(uint64(cfg.Probes*cfg.Points), 2*time.Minute); err != nil {
		return res, err
	}
	took := time.Since(began)

	// Settle, then assert nothing trickled in twice.
	time.Sleep(100 * time.Millisecond)
	written, _ := db.WriteStats()
	st := agg.Stats()
	res.Sent = uint64(cfg.Probes * cfg.Points)
	res.Applied = written
	res.Duplicates = st.DupBatches
	for _, rig := range rigs {
		res.Resent += rig.pr.Stats().BatchesResent
	}
	res.ExactlyOnce = res.Applied == res.Sent
	res.Rate = float64(res.Applied) / took.Seconds()

	cancel()
	var closeErr error
	for _, rig := range rigs {
		<-rig.done
		if cerr := rig.pr.Close(); cerr != nil && closeErr == nil {
			closeErr = cerr
		}
		rig.bus.Close()
	}
	if closeErr != nil {
		return res, closeErr
	}

	if w != nil {
		fmt.Fprintf(w, "E14: federation throughput/recovery (%d probes × %d points, batch %d)\n",
			cfg.Probes, cfg.Points, cfg.Batch)
		fmt.Fprintf(w, "  end-to-end rate          %12.0f points/s (incl. fleet disconnect + restart)\n", res.Rate)
		fmt.Fprintf(w, "  sent / applied           %12d / %d\n", res.Sent, res.Applied)
		fmt.Fprintf(w, "  resent batches           %12d (dedup absorbed %d)\n", res.Resent, res.Duplicates)
		fmt.Fprintf(w, "  exactly-once             %12v\n", res.ExactlyOnce)
	}
	if !res.ExactlyOnce {
		return res, fmt.Errorf("exactly-once violated: sent %d, applied %d", res.Sent, res.Applied)
	}
	return res, nil
}
