package geo

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary database format ("RGDB"), the stand-in for the IP2Location .BIN
// download. Layout, all little-endian:
//
//	magic   [4]byte  "RGDB"
//	version uint16   (1)
//	nRec    uint32
//	nV4     uint32
//	nV6     uint32
//	records: per record — countryCode, country, city, asName as
//	         (uint16 len + bytes); lat, lon float64; asn uint32
//	v4 ranges: start uint32, end uint32, rec uint32   (sorted by start)
//	v6 ranges: start [16]byte, end [16]byte, rec uint32 (sorted by start)
const (
	formatMagic   = "RGDB"
	formatVersion = 1
)

// WriteTo serializes the builder's contents (validated and sorted via Build)
// in RGDB format.
func (b *Builder) WriteTo(w io.Writer) (int64, error) {
	db, err := b.Build()
	if err != nil {
		return 0, err
	}
	return db.WriteTo(w)
}

// WriteTo serializes the database in RGDB format.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := cw.Write([]byte(formatMagic)); err != nil {
		return cw.n, err
	}
	writeU16 := func(v uint16) error {
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], v)
		_, err := cw.Write(b[:])
		return err
	}
	writeU32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		_, err := cw.Write(b[:])
		return err
	}
	writeStr := func(s string) error {
		if len(s) > math.MaxUint16 {
			return fmt.Errorf("geo: string too long (%d bytes)", len(s))
		}
		if err := writeU16(uint16(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, s)
		return err
	}
	writeF64 := func(v float64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		_, err := cw.Write(b[:])
		return err
	}
	if err := writeU16(formatVersion); err != nil {
		return cw.n, err
	}
	if err := writeU32(uint32(len(db.records))); err != nil {
		return cw.n, err
	}
	if err := writeU32(uint32(len(db.v4))); err != nil {
		return cw.n, err
	}
	if err := writeU32(uint32(len(db.v6))); err != nil {
		return cw.n, err
	}
	for _, r := range db.records {
		for _, s := range []string{r.CountryCode, r.Country, r.City, r.ASName} {
			if err := writeStr(s); err != nil {
				return cw.n, err
			}
		}
		if err := writeF64(r.Lat); err != nil {
			return cw.n, err
		}
		if err := writeF64(r.Lon); err != nil {
			return cw.n, err
		}
		if err := writeU32(r.ASN); err != nil {
			return cw.n, err
		}
	}
	for _, r := range db.v4 {
		if err := writeU32(r.start); err != nil {
			return cw.n, err
		}
		if err := writeU32(r.end); err != nil {
			return cw.n, err
		}
		if err := writeU32(r.rec); err != nil {
			return cw.n, err
		}
	}
	for _, r := range db.v6 {
		if _, err := cw.Write(r.start[:]); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(r.end[:]); err != nil {
			return cw.n, err
		}
		if err := writeU32(r.rec); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Read deserializes an RGDB database.
func Read(r io.Reader) (*DB, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, ErrBadFormat
	}
	if string(magic[:]) != formatMagic {
		return nil, ErrBadFormat
	}
	readU16 := func() (uint16, error) {
		var b [2]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, ErrBadFormat
		}
		return binary.LittleEndian.Uint16(b[:]), nil
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, ErrBadFormat
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	readStr := func() (string, error) {
		n, err := readU16()
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", ErrBadFormat
		}
		return string(b), nil
	}
	readF64 := func() (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, ErrBadFormat
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}
	ver, err := readU16()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadFormat, ver)
	}
	nRec, err := readU32()
	if err != nil {
		return nil, err
	}
	nV4, err := readU32()
	if err != nil {
		return nil, err
	}
	nV6, err := readU32()
	if err != nil {
		return nil, err
	}
	const maxEntries = 1 << 26 // refuse absurd headers before allocating
	if nRec > maxEntries || nV4 > maxEntries || nV6 > maxEntries {
		return nil, ErrBadFormat
	}
	db := &DB{
		records: make([]Record, nRec),
		v4:      make([]v4range, nV4),
		v6:      make([]v6range, nV6),
	}
	for i := range db.records {
		rec := &db.records[i]
		for _, dst := range []*string{&rec.CountryCode, &rec.Country, &rec.City, &rec.ASName} {
			if *dst, err = readStr(); err != nil {
				return nil, err
			}
		}
		if rec.Lat, err = readF64(); err != nil {
			return nil, err
		}
		if rec.Lon, err = readF64(); err != nil {
			return nil, err
		}
		if rec.ASN, err = readU32(); err != nil {
			return nil, err
		}
	}
	for i := range db.v4 {
		if db.v4[i].start, err = readU32(); err != nil {
			return nil, err
		}
		if db.v4[i].end, err = readU32(); err != nil {
			return nil, err
		}
		if db.v4[i].rec, err = readU32(); err != nil {
			return nil, err
		}
		if db.v4[i].rec >= nRec {
			return nil, ErrBadFormat
		}
		if i > 0 && db.v4[i].start <= db.v4[i-1].end {
			return nil, ErrOverlap
		}
	}
	for i := range db.v6 {
		if _, err := io.ReadFull(br, db.v6[i].start[:]); err != nil {
			return nil, ErrBadFormat
		}
		if _, err := io.ReadFull(br, db.v6[i].end[:]); err != nil {
			return nil, ErrBadFormat
		}
		if db.v6[i].rec, err = readU32(); err != nil {
			return nil, err
		}
		if db.v6[i].rec >= nRec {
			return nil, ErrBadFormat
		}
	}
	return db, nil
}
