package geo

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// World is the deterministic synthetic internet the experiments run against.
// It stands in for the production traffic mix on REANNZ's Auckland–Los
// Angeles link: a set of cities with real coordinates, each owning IPv4 and
// IPv6 address space announced by a handful of ASes. Because addresses are
// derived from the city index arithmetically, ground truth for any generated
// address is known exactly — which is what lets E6 measure database accuracy
// against the paper's quoted 98%.
type World struct {
	Cities []City
	db     *DB
}

// City is one location in the synthetic world.
type City struct {
	Index       int
	Name        string
	CountryCode string
	Country     string
	Lat, Lon    float64
	// V4Base is the first octet of the city's 10.x.0.0-style /8 block;
	// addresses are v4Base.0.0.0/8.
	V4Base byte
	ASNs   [asnsPerCity]uint32
}

const (
	asnsPerCity = 4
	v4FirstBase = 16 // city i owns (16+i).0.0.0/8
	maxCities   = 64
)

// cityData holds the fixed city catalogue: name, ISO country code, country,
// latitude, longitude. The first two entries are the paper's deployment
// endpoints (Auckland and Los Angeles).
var cityData = []struct {
	name, cc, country string
	lat, lon          float64
}{
	{"Auckland", "NZ", "New Zealand", -36.85, 174.76},
	{"Los Angeles", "US", "United States", 34.05, -118.24},
	{"Wellington", "NZ", "New Zealand", -41.29, 174.78},
	{"Christchurch", "NZ", "New Zealand", -43.53, 172.64},
	{"Sydney", "AU", "Australia", -33.87, 151.21},
	{"Melbourne", "AU", "Australia", -37.81, 144.96},
	{"Brisbane", "AU", "Australia", -27.47, 153.03},
	{"San Francisco", "US", "United States", 37.77, -122.42},
	{"Seattle", "US", "United States", 47.61, -122.33},
	{"New York", "US", "United States", 40.71, -74.01},
	{"Chicago", "US", "United States", 41.88, -87.63},
	{"Dallas", "US", "United States", 32.78, -96.80},
	{"Tokyo", "JP", "Japan", 35.68, 139.69},
	{"Osaka", "JP", "Japan", 34.69, 135.50},
	{"Singapore", "SG", "Singapore", 1.35, 103.82},
	{"Hong Kong", "HK", "Hong Kong", 22.32, 114.17},
	{"Seoul", "KR", "South Korea", 37.57, 126.98},
	{"Taipei", "TW", "Taiwan", 25.03, 121.57},
	{"Mumbai", "IN", "India", 19.08, 72.88},
	{"Chennai", "IN", "India", 13.08, 80.27},
	{"London", "GB", "United Kingdom", 51.51, -0.13},
	{"Manchester", "GB", "United Kingdom", 53.48, -2.24},
	{"Frankfurt", "DE", "Germany", 50.11, 8.68},
	{"Berlin", "DE", "Germany", 52.52, 13.41},
	{"Amsterdam", "NL", "Netherlands", 52.37, 4.90},
	{"Paris", "FR", "France", 48.86, 2.35},
	{"Madrid", "ES", "Spain", 40.42, -3.70},
	{"Milan", "IT", "Italy", 45.46, 9.19},
	{"Stockholm", "SE", "Sweden", 59.33, 18.07},
	{"Warsaw", "PL", "Poland", 52.23, 21.01},
	{"São Paulo", "BR", "Brazil", -23.55, -46.63},
	{"Buenos Aires", "AR", "Argentina", -34.60, -58.38},
	{"Santiago", "CL", "Chile", -33.45, -70.67},
	{"Mexico City", "MX", "Mexico", 19.43, -99.13},
	{"Toronto", "CA", "Canada", 43.65, -79.38},
	{"Vancouver", "CA", "Canada", 49.28, -123.12},
	{"Johannesburg", "ZA", "South Africa", -26.20, 28.05},
	{"Cape Town", "ZA", "South Africa", -33.92, 18.42},
	{"Nairobi", "KE", "Kenya", -1.29, 36.82},
	{"Cairo", "EG", "Egypt", 30.04, 31.24},
	{"Dubai", "AE", "United Arab Emirates", 25.20, 55.27},
	{"Tel Aviv", "IL", "Israel", 32.09, 34.78},
	{"Istanbul", "TR", "Turkey", 41.01, 28.98},
	{"Moscow", "RU", "Russia", 55.76, 37.62},
	{"Helsinki", "FI", "Finland", 60.17, 24.94},
	{"Oslo", "NO", "Norway", 59.91, 10.75},
	{"Dublin", "IE", "Ireland", 53.35, -6.26},
	{"Lisbon", "PT", "Portugal", 38.72, -9.14},
}

// WorldOptions configures NewWorld.
type WorldOptions struct {
	// Cities limits the catalogue to the first N cities (0 = all).
	Cities int
	// MislabelFraction is the fraction of database ranges whose record is
	// deliberately swapped to a different city, emulating the real-world
	// inaccuracy of commercial geo databases (IP2Location quotes ~98%
	// country accuracy, i.e. ~2% mislabels). Ground truth (CityOf) is
	// unaffected; only the queryable DB lies.
	MislabelFraction float64
	// Seed drives the deterministic mislabeling permutation.
	Seed int64
}

// NewWorld builds the synthetic world and its geo database.
func NewWorld(opts WorldOptions) (*World, error) {
	n := opts.Cities
	if n <= 0 || n > len(cityData) {
		n = len(cityData)
	}
	if n > maxCities {
		n = maxCities
	}
	w := &World{Cities: make([]City, n)}
	for i := 0; i < n; i++ {
		cd := cityData[i]
		c := City{
			Index:       i,
			Name:        cd.name,
			CountryCode: cd.cc,
			Country:     cd.country,
			Lat:         cd.lat,
			Lon:         cd.lon,
			V4Base:      byte(v4FirstBase + i),
		}
		for j := 0; j < asnsPerCity; j++ {
			c.ASNs[j] = uint32(64000 + i*asnsPerCity + j)
		}
		w.Cities[i] = c
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	b := NewBuilder()
	for i := range w.Cities {
		c := &w.Cities[i]
		// Four /10s per city, one per ASN. A mislabeled range reports a
		// different city's record while still covering this city's space.
		for j := 0; j < asnsPerCity; j++ {
			recCity := c
			if opts.MislabelFraction > 0 && rng.Float64() < opts.MislabelFraction {
				other := rng.Intn(len(w.Cities))
				recCity = &w.Cities[other]
			}
			rec := Record{
				CountryCode: recCity.CountryCode,
				Country:     recCity.Country,
				City:        recCity.Name,
				Lat:         recCity.Lat,
				Lon:         recCity.Lon,
				ASN:         c.ASNs[j],
				ASName:      fmt.Sprintf("AS-%s-%d", recCity.Name, j),
			}
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{c.V4Base, byte(j << 6), 0, 0}), 10)
			if err := b.AddPrefix(p, rec); err != nil {
				return nil, err
			}
			// v6: 2001:db8:<city>:<asn-slot>::/64-ish — use a /50 within
			// the city's /48 so four slots fit.
			v6 := netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, byte(i), byte(j << 6)})
			if err := b.AddPrefix(netip.PrefixFrom(v6, 50), rec); err != nil {
				return nil, err
			}
		}
	}
	db, err := b.Build()
	if err != nil {
		return nil, err
	}
	w.db = db
	return w, nil
}

// DB returns the queryable geo database (which may contain deliberate
// mislabels per WorldOptions).
func (w *World) DB() *DB { return w.db }

// Addr returns the host-th IPv4 address inside city's ASN slot.
// Host is folded into the 22 host bits of the /10.
func (w *World) Addr(city, asnSlot int, host uint32) netip.Addr {
	c := &w.Cities[city%len(w.Cities)]
	slot := asnSlot % asnsPerCity
	host %= 1 << 22
	return netip.AddrFrom4([4]byte{
		c.V4Base,
		byte(slot<<6) | byte(host>>16&0x3f),
		byte(host >> 8),
		byte(host),
	})
}

// Addr6 returns an IPv6 address inside city's ASN slot.
func (w *World) Addr6(city, asnSlot int, host uint64) netip.Addr {
	c := &w.Cities[city%len(w.Cities)]
	slot := asnSlot % asnsPerCity
	var a [16]byte
	a[0], a[1], a[2], a[3] = 0x20, 0x01, 0x0d, 0xb8
	a[4] = byte(c.Index)
	a[5] = byte(slot << 6)
	for i := 0; i < 8; i++ {
		a[15-i] = byte(host >> (8 * i))
	}
	return netip.AddrFrom16(a)
}

// CityOf returns the ground-truth city for an address generated by Addr or
// Addr6, and ok=false for foreign addresses.
func (w *World) CityOf(addr netip.Addr) (*City, bool) {
	if addr.Is4() || addr.Is4In6() {
		b := addr.Unmap().As4()
		idx := int(b[0]) - v4FirstBase
		if idx < 0 || idx >= len(w.Cities) {
			return nil, false
		}
		return &w.Cities[idx], true
	}
	b := addr.As16()
	if b[0] != 0x20 || b[1] != 0x01 || b[2] != 0x0d || b[3] != 0xb8 {
		return nil, false
	}
	idx := int(b[4])
	if idx >= len(w.Cities) {
		return nil, false
	}
	return &w.Cities[idx], true
}

// ASNOf returns the ground-truth ASN for a generated address.
func (w *World) ASNOf(addr netip.Addr) (uint32, bool) {
	c, ok := w.CityOf(addr)
	if !ok {
		return 0, false
	}
	var slot int
	if addr.Is4() || addr.Is4In6() {
		b := addr.Unmap().As4()
		slot = int(b[1] >> 6)
	} else {
		b := addr.As16()
		slot = int(b[5] >> 6)
	}
	return c.ASNs[slot], true
}

// Distance returns the great-circle distance in km between two cities.
func (w *World) Distance(a, b int) float64 {
	ca, cb := &w.Cities[a%len(w.Cities)], &w.Cities[b%len(w.Cities)]
	return Haversine(ca.Lat, ca.Lon, cb.Lat, cb.Lon)
}
