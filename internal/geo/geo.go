// Package geo implements the geolocation and AS-number database Ruru's
// analytics stage consults for every measurement (the paper uses the
// IP2Location LITE databases, quoting 98% country-level accuracy).
//
// The database is the same shape as the commercial product: sorted,
// non-overlapping IP ranges, each mapping to a (country, city, lat/lon, ASN,
// AS name) record, queried by binary search. A compact binary file format
// ("RGDB") with a builder and loader replaces the vendor download, and a
// deterministic synthetic world (see world.go) provides ground truth so
// accuracy is measurable rather than quoted.
package geo

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net/netip"
	"sort"
)

// Record is the enrichment result for one IP range.
type Record struct {
	CountryCode string // ISO 3166-1 alpha-2
	Country     string
	City        string
	Lat, Lon    float64
	ASN         uint32
	ASName      string
}

// Errors returned by the package.
var (
	ErrBadFormat  = errors.New("geo: malformed database")
	ErrOverlap    = errors.New("geo: overlapping ranges")
	ErrBadRange   = errors.New("geo: range start after end")
	ErrMixedRange = errors.New("geo: range endpoints of different families")
)

type v4range struct {
	start, end uint32
	rec        uint32
}

type v6range struct {
	start, end [16]byte
	rec        uint32
}

// DB is an immutable, queryable geo/AS database. Safe for concurrent use.
type DB struct {
	records []Record
	v4      []v4range
	v6      []v6range
}

// Builder accumulates ranges and produces a DB or its serialized form.
type Builder struct {
	records []Record
	recIdx  map[string]uint32
	v4      []v4range
	v6      []v6range
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{recIdx: make(map[string]uint32)}
}

func (b *Builder) intern(r Record) uint32 {
	key := fmt.Sprintf("%s|%s|%s|%g|%g|%d|%s", r.CountryCode, r.Country, r.City, r.Lat, r.Lon, r.ASN, r.ASName)
	if idx, ok := b.recIdx[key]; ok {
		return idx
	}
	idx := uint32(len(b.records))
	b.records = append(b.records, r)
	b.recIdx[key] = idx
	return idx
}

// Add registers the inclusive IP range [start, end] with the given record.
func (b *Builder) Add(start, end netip.Addr, r Record) error {
	s4, d4 := start.Is4() || start.Is4In6(), end.Is4() || end.Is4In6()
	if s4 != d4 {
		return ErrMixedRange
	}
	idx := b.intern(r)
	if s4 {
		s := binary.BigEndian.Uint32(addr4(start))
		e := binary.BigEndian.Uint32(addr4(end))
		if s > e {
			return ErrBadRange
		}
		b.v4 = append(b.v4, v4range{s, e, idx})
		return nil
	}
	s, e := start.As16(), end.As16()
	if bytes.Compare(s[:], e[:]) > 0 {
		return ErrBadRange
	}
	b.v6 = append(b.v6, v6range{s, e, idx})
	return nil
}

// AddPrefix registers a CIDR prefix with the given record.
func (b *Builder) AddPrefix(p netip.Prefix, r Record) error {
	first := p.Masked().Addr()
	last := lastAddr(p)
	return b.Add(first, last, r)
}

func addr4(a netip.Addr) []byte {
	v := a.Unmap().As4()
	return v[:]
}

// lastAddr returns the highest address in prefix p.
func lastAddr(p netip.Prefix) netip.Addr {
	a := p.Masked().Addr()
	if a.Is4() {
		v := a.As4()
		x := binary.BigEndian.Uint32(v[:])
		bitsLeft := 32 - p.Bits()
		switch {
		case bitsLeft >= 32:
			x = ^uint32(0)
		case bitsLeft > 0:
			x |= uint32(1)<<bitsLeft - 1
		}
		var out [4]byte
		binary.BigEndian.PutUint32(out[:], x)
		return netip.AddrFrom4(out)
	}
	v := a.As16()
	bitsLeft := 128 - p.Bits()
	for i := 15; i >= 0 && bitsLeft > 0; i-- {
		n := bitsLeft
		if n > 8 {
			n = 8
		}
		v[i] |= byte(1<<n - 1)
		bitsLeft -= n
	}
	return netip.AddrFrom16(v)
}

// Build validates (sorted, non-overlapping after sorting) and returns the DB.
func (b *Builder) Build() (*DB, error) {
	v4 := make([]v4range, len(b.v4))
	copy(v4, b.v4)
	sort.Slice(v4, func(i, j int) bool { return v4[i].start < v4[j].start })
	for i := 1; i < len(v4); i++ {
		if v4[i].start <= v4[i-1].end {
			return nil, fmt.Errorf("%w: v4 %d-%d overlaps %d-%d", ErrOverlap,
				v4[i].start, v4[i].end, v4[i-1].start, v4[i-1].end)
		}
	}
	v6 := make([]v6range, len(b.v6))
	copy(v6, b.v6)
	sort.Slice(v6, func(i, j int) bool { return bytes.Compare(v6[i].start[:], v6[j].start[:]) < 0 })
	for i := 1; i < len(v6); i++ {
		if bytes.Compare(v6[i].start[:], v6[i-1].end[:]) <= 0 {
			return nil, fmt.Errorf("%w: v6 range %d", ErrOverlap, i)
		}
	}
	records := make([]Record, len(b.records))
	copy(records, b.records)
	return &DB{records: records, v4: v4, v6: v6}, nil
}

// Lookup returns the record covering addr, or ok=false when the address is
// not in the database (the paper's pipeline counts these and moves on).
func (db *DB) Lookup(addr netip.Addr) (Record, bool) {
	if addr.Is4() || addr.Is4In6() {
		x := binary.BigEndian.Uint32(addr4(addr))
		i := sort.Search(len(db.v4), func(i int) bool { return db.v4[i].end >= x })
		if i < len(db.v4) && db.v4[i].start <= x {
			return db.records[db.v4[i].rec], true
		}
		return Record{}, false
	}
	a := addr.As16()
	i := sort.Search(len(db.v6), func(i int) bool { return bytes.Compare(db.v6[i].end[:], a[:]) >= 0 })
	if i < len(db.v6) && bytes.Compare(db.v6[i].start[:], a[:]) <= 0 {
		return db.records[db.v6[i].rec], true
	}
	return Record{}, false
}

// NumRanges returns the count of v4 and v6 ranges (for diagnostics).
func (db *DB) NumRanges() (int, int) { return len(db.v4), len(db.v6) }

// NumRecords returns the number of distinct records.
func (db *DB) NumRecords() int { return len(db.records) }

// Haversine returns the great-circle distance in kilometers between two
// (lat, lon) points in degrees. Used by the RTT model and the arc renderer.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371.0
	rad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := rad(lat2 - lat1)
	dLon := rad(lon2 - lon1)
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(rad(lat1))*math.Cos(rad(lat2))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}
