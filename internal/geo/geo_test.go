package geo

import (
	"bytes"
	"math"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestBuilderLookup(t *testing.T) {
	b := NewBuilder()
	nz := Record{CountryCode: "NZ", Country: "New Zealand", City: "Auckland",
		Lat: -36.85, Lon: 174.76, ASN: 9500, ASName: "REANNZ"}
	us := Record{CountryCode: "US", Country: "United States", City: "Los Angeles",
		Lat: 34.05, Lon: -118.24, ASN: 2906, ASName: "Example-LA"}
	if err := b.AddPrefix(netip.MustParsePrefix("103.0.0.0/16"), nz); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPrefix(netip.MustParsePrefix("23.0.0.0/12"), us); err != nil {
		t.Fatal(err)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, ok := db.Lookup(netip.MustParseAddr("103.0.42.1"))
	if !ok || r.City != "Auckland" || r.ASN != 9500 {
		t.Fatalf("lookup = %+v, %v", r, ok)
	}
	r, ok = db.Lookup(netip.MustParseAddr("23.15.0.9"))
	if !ok || r.City != "Los Angeles" {
		t.Fatalf("lookup = %+v, %v", r, ok)
	}
	if _, ok := db.Lookup(netip.MustParseAddr("8.8.8.8")); ok {
		t.Fatal("lookup of uncovered address succeeded")
	}
	// Range edges are inclusive.
	if _, ok := db.Lookup(netip.MustParseAddr("103.0.255.255")); !ok {
		t.Fatal("last address of range not covered")
	}
	if _, ok := db.Lookup(netip.MustParseAddr("103.1.0.0")); ok {
		t.Fatal("address past range covered")
	}
}

func TestOverlapRejected(t *testing.T) {
	b := NewBuilder()
	r := Record{City: "X"}
	if err := b.AddPrefix(netip.MustParsePrefix("10.0.0.0/8"), r); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPrefix(netip.MustParsePrefix("10.1.0.0/16"), r); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("overlap not rejected")
	}
}

func TestBadRange(t *testing.T) {
	b := NewBuilder()
	err := b.Add(netip.MustParseAddr("10.0.0.2"), netip.MustParseAddr("10.0.0.1"), Record{})
	if err != ErrBadRange {
		t.Fatalf("err = %v", err)
	}
	err = b.Add(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("::1"), Record{})
	if err != ErrMixedRange {
		t.Fatalf("err = %v", err)
	}
}

func TestIPv6Lookup(t *testing.T) {
	b := NewBuilder()
	r := Record{CountryCode: "JP", City: "Tokyo", ASN: 2500}
	if err := b.AddPrefix(netip.MustParsePrefix("2001:db8:aaaa::/48"), r); err != nil {
		t.Fatal(err)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := db.Lookup(netip.MustParseAddr("2001:db8:aaaa::1234"))
	if !ok || got.City != "Tokyo" {
		t.Fatalf("v6 lookup = %+v, %v", got, ok)
	}
	if _, ok := db.Lookup(netip.MustParseAddr("2001:db8:bbbb::1")); ok {
		t.Fatal("uncovered v6 lookup succeeded")
	}
}

func TestV4MappedLookup(t *testing.T) {
	b := NewBuilder()
	if err := b.AddPrefix(netip.MustParsePrefix("192.0.2.0/24"), Record{City: "T"}); err != nil {
		t.Fatal(err)
	}
	db, _ := b.Build()
	if _, ok := db.Lookup(netip.MustParseAddr("::ffff:192.0.2.7")); !ok {
		t.Fatal("v4-mapped address not found in v4 table")
	}
}

func TestLastAddr(t *testing.T) {
	cases := []struct{ prefix, want string }{
		{"10.0.0.0/8", "10.255.255.255"},
		{"192.0.2.0/24", "192.0.2.255"},
		{"192.0.2.4/30", "192.0.2.7"},
		{"192.0.2.9/32", "192.0.2.9"},
		{"0.0.0.0/0", "255.255.255.255"},
		{"2001:db8::/48", "2001:db8:0:ffff:ffff:ffff:ffff:ffff"},
		{"2001:db8::7/128", "2001:db8::7"},
	}
	for _, c := range cases {
		got := lastAddr(netip.MustParsePrefix(c.prefix))
		if got != netip.MustParseAddr(c.want) {
			t.Errorf("lastAddr(%s) = %v, want %s", c.prefix, got, c.want)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	w, err := NewWorld(WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.DB().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumRecords() != w.DB().NumRecords() {
		t.Fatalf("records: %d vs %d", db2.NumRecords(), w.DB().NumRecords())
	}
	n4a, n6a := w.DB().NumRanges()
	n4b, n6b := db2.NumRanges()
	if n4a != n4b || n6a != n6b {
		t.Fatalf("ranges: %d/%d vs %d/%d", n4a, n6a, n4b, n6b)
	}
	// Every lookup agrees after the round trip.
	for i := range w.Cities {
		for slot := 0; slot < asnsPerCity; slot++ {
			a := w.Addr(i, slot, 12345)
			r1, ok1 := w.DB().Lookup(a)
			r2, ok2 := db2.Lookup(a)
			if ok1 != ok2 || r1 != r2 {
				t.Fatalf("lookup disagreement at %v: %+v/%v vs %+v/%v", a, r1, ok1, r2, ok2)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE"))); err != ErrBadFormat {
		t.Fatalf("err = %v", err)
	}
	if _, err := Read(bytes.NewReader([]byte("RG"))); err != ErrBadFormat {
		t.Fatalf("short err = %v", err)
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	w, _ := NewWorld(WorldOptions{Cities: 2})
	w.DB().WriteTo(&buf)
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated database accepted")
	}
}

func TestWorldGroundTruth(t *testing.T) {
	w, err := NewWorld(WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Cities) < 40 {
		t.Fatalf("only %d cities", len(w.Cities))
	}
	if w.Cities[0].Name != "Auckland" || w.Cities[1].Name != "Los Angeles" {
		t.Fatal("deployment endpoints missing from catalogue head")
	}
	for i := range w.Cities {
		for slot := 0; slot < asnsPerCity; slot++ {
			a := w.Addr(i, slot, uint32(i*1000+slot))
			c, ok := w.CityOf(a)
			if !ok || c.Index != i {
				t.Fatalf("CityOf(%v) = %v, %v; want city %d", a, c, ok, i)
			}
			asn, ok := w.ASNOf(a)
			if !ok || asn != w.Cities[i].ASNs[slot] {
				t.Fatalf("ASNOf(%v) = %d, want %d", a, asn, w.Cities[i].ASNs[slot])
			}
			// With no mislabeling, the DB must agree with ground truth.
			r, ok := w.DB().Lookup(a)
			if !ok || r.City != w.Cities[i].Name || r.ASN != w.Cities[i].ASNs[slot] {
				t.Fatalf("DB lookup(%v) = %+v, %v", a, r, ok)
			}
			// Same for v6.
			a6 := w.Addr6(i, slot, uint64(i))
			c6, ok := w.CityOf(a6)
			if !ok || c6.Index != i {
				t.Fatalf("CityOf(%v) = %v, %v", a6, c6, ok)
			}
			r6, ok := w.DB().Lookup(a6)
			if !ok || r6.ASN != w.Cities[i].ASNs[slot] {
				t.Fatalf("DB v6 lookup(%v) = %+v, %v", a6, r6, ok)
			}
		}
	}
	if _, ok := w.CityOf(netip.MustParseAddr("8.8.8.8")); ok {
		t.Fatal("foreign address claimed")
	}
	if _, ok := w.CityOf(netip.MustParseAddr("2001:dead::1")); ok {
		t.Fatal("foreign v6 address claimed")
	}
}

func TestWorldMislabeling(t *testing.T) {
	// With a 20% mislabel fraction, a noticeable share of lookups must
	// disagree with ground truth at the city level — and the DB is still
	// deterministic for a fixed seed.
	w1, err := NewWorld(WorldOptions{MislabelFraction: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := NewWorld(WorldOptions{MislabelFraction: 0.2, Seed: 7})
	mislabels := 0
	total := 0
	for i := range w1.Cities {
		for slot := 0; slot < asnsPerCity; slot++ {
			a := w1.Addr(i, slot, 99)
			r1, ok1 := w1.DB().Lookup(a)
			r2, ok2 := w2.DB().Lookup(a)
			if !ok1 || !ok2 || r1 != r2 {
				t.Fatal("mislabeling not deterministic")
			}
			total++
			if r1.City != w1.Cities[i].Name {
				mislabels++
			}
		}
	}
	if mislabels == 0 {
		t.Fatal("no mislabels despite 20% fraction")
	}
	if mislabels > total/2 {
		t.Fatalf("too many mislabels: %d/%d", mislabels, total)
	}
}

func TestHaversine(t *testing.T) {
	// Auckland–Los Angeles is about 10,480 km.
	d := Haversine(-36.85, 174.76, 34.05, -118.24)
	if math.Abs(d-10480) > 150 {
		t.Fatalf("AKL-LAX distance = %v km", d)
	}
	if Haversine(0, 0, 0, 0) != 0 {
		t.Fatal("zero distance")
	}
	// Symmetry.
	if math.Abs(Haversine(10, 20, 30, 40)-Haversine(30, 40, 10, 20)) > 1e-9 {
		t.Fatal("not symmetric")
	}
}

func TestLookupNeverPanicsProperty(t *testing.T) {
	w, err := NewWorld(WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f4 := func(b [4]byte) bool {
		_, _ = w.DB().Lookup(netip.AddrFrom4(b))
		return true
	}
	f6 := func(b [16]byte) bool {
		_, _ = w.DB().Lookup(netip.AddrFrom16(b))
		return true
	}
	if err := quick.Check(f4, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(f6, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupConsistentWithGroundTruthEverywhere(t *testing.T) {
	// Property: for random host bits, DB city == ground-truth city when
	// the world is built without mislabels.
	w, err := NewWorld(WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(city uint8, slot uint8, host uint32) bool {
		i := int(city) % len(w.Cities)
		a := w.Addr(i, int(slot), host)
		r, ok := w.DB().Lookup(a)
		return ok && r.City == w.Cities[i].Name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupV4(b *testing.B) {
	w, err := NewWorld(WorldOptions{})
	if err != nil {
		b.Fatal(err)
	}
	db := w.DB()
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = w.Addr(i%len(w.Cities), i%4, uint32(i*7919))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = db.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkLookupV6(b *testing.B) {
	w, err := NewWorld(WorldOptions{})
	if err != nil {
		b.Fatal(err)
	}
	db := w.DB()
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = w.Addr6(i%len(w.Cities), i%4, uint64(i*7919))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = db.Lookup(addrs[i%len(addrs)])
	}
}
