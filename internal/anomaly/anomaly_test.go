package anomaly

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestSpikeDetectorCatchesFirewallGlitch(t *testing.T) {
	// Baseline ~150ms with jitter; one 4150ms sample must fire.
	d := NewSpikeDetector(SpikeConfig{})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		ts := int64(i) * 1e9
		lat := int64(150e6 + rng.NormFloat64()*10e6)
		if ev := d.Offer(ts, lat); ev != nil {
			t.Fatalf("false positive at %d: %+v", i, ev)
		}
	}
	ev := d.Offer(501e9, 4150e6)
	if ev == nil {
		t.Fatal("4000ms glitch not detected")
	}
	if ev.Kind != "latency_spike" || ev.Value != 4150e6 {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Baseline > 200e6 {
		t.Fatalf("baseline contaminated: %v", ev.Baseline)
	}
}

func TestSpikeDetectorBaselineNotPoisoned(t *testing.T) {
	// A run of anomalous samples must all fire (they are excluded from
	// the baseline).
	d := NewSpikeDetector(SpikeConfig{})
	for i := 0; i < 200; i++ {
		// ~150ms with ±4ms deterministic jitter so MAD is realistic.
		d.Offer(int64(i)*1e9, 150e6+int64(i%5)*2e6)
	}
	fired := 0
	for i := 0; i < 50; i++ {
		if ev := d.Offer(int64(200+i)*1e9, 4000e6); ev != nil {
			fired++
		}
	}
	if fired != 50 {
		t.Fatalf("only %d/50 anomalous samples fired", fired)
	}
	// And the baseline must still be normal afterwards.
	if ev := d.Offer(300e9, 156e6); ev != nil {
		t.Fatalf("normal sample fired after anomaly run: %+v", ev)
	}
}

func TestSpikeDetectorWarmup(t *testing.T) {
	d := NewSpikeDetector(SpikeConfig{MinSamples: 64})
	// Early outliers must not fire during warmup.
	if ev := d.Offer(1, 4000e6); ev != nil {
		t.Fatal("fired during warmup")
	}
}

func TestSpikeDetectorAdaptsToShift(t *testing.T) {
	// A permanent latency shift (e.g. a path change) should stop firing
	// once the window has absorbed it... but because anomalous samples
	// are excluded, a large step stays anomalous by design. A moderate
	// step (below K·MAD) must be absorbed.
	d := NewSpikeDetector(SpikeConfig{K: 8, Window: 64})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		d.Offer(int64(i)*1e9, int64(150e6+rng.NormFloat64()*15e6))
	}
	// Step +60ms: within 8·MAD of ~10ms-ish MAD... borderline; verify no
	// sustained alarm after the window refills.
	fired := 0
	for i := 0; i < 200; i++ {
		if ev := d.Offer(int64(300+i)*1e9, int64(210e6+rng.NormFloat64()*15e6)); ev != nil {
			fired++
		}
	}
	if fired > 100 {
		t.Fatalf("moderate shift never absorbed: %d alarms", fired)
	}
}

func TestSpikeBankShardsByKey(t *testing.T) {
	b := NewSpikeBank(SpikeConfig{MinSamples: 64}, 10)
	// Auckland→LA is fast; Auckland→Tokyo is slow. Each key learns its
	// own baseline, so Tokyo's 300ms must not alarm.
	for i := 0; i < 200; i++ {
		ts := int64(i) * 1e9
		if ev := b.Offer("AKL→LAX", ts, 130e6); ev != nil {
			t.Fatalf("LAX false positive: %+v", ev)
		}
		if ev := b.Offer("AKL→TYO", ts, 300e6); ev != nil {
			t.Fatalf("TYO false positive: %+v", ev)
		}
	}
	if ev := b.Offer("AKL→LAX", 999e9, 320e6); ev == nil {
		t.Fatal("LAX at Tokyo-latency must alarm on the LAX baseline")
	}
	if b.Keys() != 2 {
		t.Fatalf("keys = %d", b.Keys())
	}
}

func TestSpikeBankKeyLimit(t *testing.T) {
	b := NewSpikeBank(SpikeConfig{}, 2)
	b.Offer("a", 1, 1)
	b.Offer("b", 1, 1)
	b.Offer("c", 1, 1) // over limit: ignored
	if b.Keys() != 2 {
		t.Fatalf("keys = %d", b.Keys())
	}
}

func TestFloodDetector(t *testing.T) {
	d := NewFloodDetector(FloodConfig{BucketNs: 1e9, MinCount: 50, Ratio: 8})
	// 20 normal buckets: ~5 unanswered/s (random scanning noise).
	ts := int64(0)
	for b := 0; b < 20; b++ {
		for i := 0; i < 5; i++ {
			d.ObserveUnanswered(ts + int64(i)*100e6)
		}
		ts += 1e9
	}
	if len(d.Events()) != 0 {
		t.Fatalf("false positives: %+v", d.Events())
	}
	// Flood: 2000 unanswered SYNs in one second.
	for i := 0; i < 2000; i++ {
		d.ObserveUnanswered(ts + int64(i)*400e3)
	}
	ts += 1e9
	d.ObserveUnanswered(ts) // roll the bucket
	d.Flush()
	evs := d.Events()
	if len(evs) == 0 {
		t.Fatal("flood not detected")
	}
	if evs[0].Kind != "syn_flood" || evs[0].Value < 1500 {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestFloodDetectorAlarmOncePerEpisode(t *testing.T) {
	d := NewFloodDetector(FloodConfig{BucketNs: 1e9, MinCount: 50, Ratio: 4, WarmupBuckets: 3})
	ts := int64(0)
	for b := 0; b < 10; b++ {
		d.ObserveUnanswered(ts)
		ts += 1e9
	}
	// A 5-bucket flood episode must raise ONE event.
	for b := 0; b < 5; b++ {
		for i := 0; i < 500; i++ {
			d.ObserveUnanswered(ts + int64(i)*1e6)
		}
		ts += 1e9
	}
	// Back to normal, then a second episode → a second event.
	for b := 0; b < 10; b++ {
		d.ObserveUnanswered(ts)
		ts += 1e9
	}
	for i := 0; i < 500; i++ {
		d.ObserveUnanswered(ts + int64(i)*1e6)
	}
	ts += 1e9
	d.ObserveUnanswered(ts)
	d.Flush()
	if got := len(d.Events()); got != 2 {
		t.Fatalf("%d events, want 2 (one per episode): %+v", got, d.Events())
	}
}

func TestFloodWarmupSuppressesEarlyAlarms(t *testing.T) {
	d := NewFloodDetector(FloodConfig{BucketNs: 1e9, WarmupBuckets: 5, MinCount: 10, Ratio: 2})
	// Immediate flood in bucket 0 — within warmup, no alarm.
	for i := 0; i < 1000; i++ {
		d.ObserveUnanswered(int64(i) * 1e6)
	}
	d.ObserveUnanswered(2e9)
	if len(d.Events()) != 0 {
		t.Fatalf("alarmed during warmup: %+v", d.Events())
	}
}

func TestSurgeDetector(t *testing.T) {
	d := NewSurgeDetector(SurgeConfig{BucketNs: 1e9, MinCount: 50, Ratio: 6})
	ts := int64(0)
	// Normal: ~10 conns/s AKL→LAX, ~3 conns/s AKL→TYO.
	for b := 0; b < 20; b++ {
		for i := 0; i < 10; i++ {
			d.Observe("AKL→LAX", ts+int64(i)*1e6)
		}
		for i := 0; i < 3; i++ {
			d.Observe("AKL→TYO", ts+int64(i)*1e6)
		}
		ts += 1e9
	}
	if len(d.Events()) != 0 {
		t.Fatalf("false positives: %+v", d.Events())
	}
	// Surge on one pair only.
	for i := 0; i < 500; i++ {
		d.Observe("AKL→TYO", ts+int64(i)*1e6)
	}
	ts += 1e9
	d.Observe("AKL→TYO", ts)
	d.Flush()
	evs := d.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events: %+v", len(evs), evs)
	}
	if evs[0].Kind != "conn_surge" || evs[0].Value < 400 {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestSNMPPollerMissesShortGlitch(t *testing.T) {
	// The E4 premise in miniature: 300s of ~150ms traffic at 100 flows/s
	// with a 0.5s window of 4000ms flows. The 5-minute average moves by
	// less than 15ms — far below any plausible alert threshold — while a
	// spike detector fires on every affected flow.
	snmp := NewSNMPPoller(300e9)
	spike := NewSpikeDetector(SpikeConfig{})
	rng := rand.New(rand.NewSource(3))
	affected := 0
	spikes := 0
	for i := 0; i < 30000; i++ { // 100 flows/s for 300s
		ts := int64(i) * 10e6
		lat := int64(150e6 + rng.NormFloat64()*10e6)
		// glitch window: [100s, 100.5s)
		if ts >= 100e9 && ts < 100.5e9 {
			lat += 4000e6
			affected++
		}
		snmp.Offer(ts, lat)
		if ev := spike.Offer(ts, lat); ev != nil {
			spikes++
		}
	}
	snmp.Flush()
	samples := snmp.Samples()
	if len(samples) != 1 {
		t.Fatalf("%d SNMP samples", len(samples))
	}
	if samples[0].MeanNs > 165e6 {
		t.Fatalf("SNMP mean %.1fms — glitch leaked into the average more than expected", samples[0].MeanNs/1e6)
	}
	if affected == 0 {
		t.Fatal("no affected flows generated")
	}
	if spikes < affected*9/10 {
		t.Fatalf("spike detector caught %d/%d affected flows", spikes, affected)
	}
}

func TestSNMPPollerBucketsCorrectly(t *testing.T) {
	p := NewSNMPPoller(10e9)
	for i := 0; i < 30; i++ {
		p.Offer(int64(i)*1e9, int64(i)*1e6)
	}
	p.Flush()
	s := p.Samples()
	if len(s) != 3 {
		t.Fatalf("%d samples", len(s))
	}
	if s[0].Count != 10 || s[1].Count != 10 || s[2].Count != 10 {
		t.Fatalf("counts: %+v", s)
	}
	if s[0].MeanNs != 4.5e6 || s[1].MeanNs != 14.5e6 {
		t.Fatalf("means: %v %v", s[0].MeanNs, s[1].MeanNs)
	}
}

func BenchmarkSpikeOffer(b *testing.B) {
	d := NewSpikeDetector(SpikeConfig{Window: 256})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Offer(int64(i), int64(150e6+i%1000))
	}
}

func BenchmarkSpikeBankOffer(b *testing.B) {
	bank := NewSpikeBank(SpikeConfig{Window: 256}, 1024)
	keys := []string{"a", "b", "c", "d"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bank.Offer(keys[i%4], int64(i), int64(150e6+i%1000))
	}
}

func TestConcurrentOfferContract(t *testing.T) {
	// The contract the sharded sink relies on (run under -race in CI):
	// SpikeBank.Offer and SurgeDetector.Observe from several goroutines —
	// each goroutine owning its keys, as worker affinity guarantees —
	// while Keys/Events readers run concurrently. A FloodDetector behind
	// an external mutex (the pipeline's arrangement) joins in.
	const workers, perWorker = 4, 5000
	bank := NewSpikeBank(SpikeConfig{MinSamples: 64}, 0)
	surge := NewSurgeDetector(SurgeConfig{BucketNs: 1e9, MinCount: 10, WarmupBuckets: 1})
	flood := NewFloodDetector(FloodConfig{BucketNs: 1e9, MinCount: 10, WarmupBuckets: 1})
	var floodMu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			key := fmt.Sprintf("City%d→City%d", w, w+1)
			for i := 0; i < perWorker; i++ {
				// 100 conns/s baseline for 40s, then the final 1000
				// offers crammed into a tenth of a second: a real surge
				// every key's detector must flag.
				ts := int64(i) * 1e7
				if i >= 4000 {
					ts = 40e9 + int64(i-4000)*1e5
				}
				bank.Offer(key, ts, int64(150e6+rng.NormFloat64()*10e6))
				surge.Observe(key, ts)
				floodMu.Lock()
				flood.ObserveUnanswered(ts)
				floodMu.Unlock()
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				bank.Keys()
				surge.Events()
				floodMu.Lock()
				flood.Events()
				floodMu.Unlock()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	if bank.Keys() != workers {
		t.Fatalf("keys = %d, want %d", bank.Keys(), workers)
	}
	surge.Flush()
	// Every key ramped from 100/bucket to 1000/bucket, so every key's
	// detector must have fired exactly one surge episode.
	keysFired := map[string]bool{}
	for _, ev := range surge.Events() {
		keysFired[ev.Detail] = true
	}
	if len(keysFired) != workers {
		t.Fatalf("surge events for %d/%d keys: %+v", len(keysFired), workers, surge.Events())
	}
}
