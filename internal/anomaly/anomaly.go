// Package anomaly implements the operational use cases from the paper's §3:
// detection of fine-grained latency anomalies ("micro-glitches ... that no
// other monitoring system had previously identified", the nightly firewall
// update adding ~4000 ms), SYN floods, and unusual connection counts between
// locations — all in real time, on the enriched measurement stream.
//
// It also implements the strawman the paper compares against: an SNMP-style
// poller that only sees five-minute aggregates, which experiment E4 uses to
// show why the firewall glitch was invisible to conventional monitoring.
//
// # Concurrency contract
//
// The pipeline's sharded sink offers measurements from several workers at
// once, so each type states its contract explicitly:
//
//   - SpikeBank.Offer and SurgeDetector.Observe/Events are safe for
//     concurrent use (internal locks). Detection state is per key, so
//     results are deterministic as long as each KEY's samples arrive in
//     order — which the sink guarantees by hashing every src→dst pair to a
//     single worker. Offers for different keys may interleave freely.
//   - SpikeDetector and FloodDetector are single-goroutine types: callers
//     serialize access (the pipeline guards its FloodDetector with a
//     mutex; SpikeDetector is always used through a SpikeBank).
//   - SNMPPoller is single-goroutine; the pipeline serializes Offer/Flush.
package anomaly

import (
	"fmt"
	"sync"

	"ruru/internal/stats"
)

// Event is one detected anomaly.
type Event struct {
	Time   int64  // detection timestamp (ns, measurement clock)
	Kind   string // "latency_spike", "syn_flood", "conn_surge"
	Detail string
	// Value is the observed metric, Baseline the expected level.
	Value, Baseline float64
}

// SpikeConfig tunes the latency spike detector.
type SpikeConfig struct {
	// Window is the number of recent samples forming the baseline
	// (default 512).
	Window int
	// K is the robust z-score threshold: a sample is anomalous when
	// |x - median| > K · max(MAD, MinMAD) (default 8).
	K float64
	// MinMADNs floors the MAD so ultra-stable baselines don't turn noise
	// into alarms (default 1 ms).
	MinMADNs float64
	// MinSamples before any detection fires (default 64).
	MinSamples int
}

// SpikeDetector flags individual measurements far outside the recent
// latency distribution. It uses median/MAD, not mean/stddev: a 4000 ms
// outlier would inflate a standard deviation enough to hide its successors,
// but barely moves the median (see stats.RollingMedian).
//
// Not safe for concurrent use; shard per key (e.g. per city pair) with
// SpikeBank.
type SpikeDetector struct {
	cfg    SpikeConfig
	window *stats.RollingMedian
	seen   int
	events []Event
}

// NewSpikeDetector returns a detector with cfg defaults applied.
func NewSpikeDetector(cfg SpikeConfig) *SpikeDetector {
	if cfg.Window <= 0 {
		cfg.Window = 512
	}
	if cfg.K <= 0 {
		cfg.K = 8
	}
	if cfg.MinMADNs <= 0 {
		cfg.MinMADNs = 1e6
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 64
	}
	return &SpikeDetector{cfg: cfg, window: stats.NewRollingMedian(cfg.Window)}
}

// Offer examines one latency sample (ns). It returns a non-nil Event when
// the sample is anomalous. Anomalous samples are NOT added to the baseline
// (self-poisoning protection).
func (d *SpikeDetector) Offer(ts int64, latencyNs int64) *Event {
	x := float64(latencyNs)
	if d.seen >= d.cfg.MinSamples {
		med := d.window.Median()
		mad := d.window.MAD()
		if mad < d.cfg.MinMADNs {
			mad = d.cfg.MinMADNs
		}
		if x-med > d.cfg.K*mad { // one-sided: slow is anomalous, fast is fine
			ev := Event{
				Time: ts, Kind: "latency_spike",
				Detail:   fmt.Sprintf("latency %.1fms vs median %.1fms (MAD %.2fms)", x/1e6, med/1e6, mad/1e6),
				Value:    x,
				Baseline: med,
			}
			d.events = append(d.events, ev)
			return &d.events[len(d.events)-1]
		}
	}
	d.window.Add(x)
	d.seen++
	return nil
}

// Events returns all detections so far.
func (d *SpikeDetector) Events() []Event { return d.events }

// SpikeBank shards SpikeDetectors by key (city pair, AS pair...), with a
// bound on the number of tracked keys.
type SpikeBank struct {
	mu      sync.Mutex
	cfg     SpikeConfig
	byKey   map[string]*SpikeDetector
	maxKeys int
}

// NewSpikeBank creates a bank with the given per-key config.
func NewSpikeBank(cfg SpikeConfig, maxKeys int) *SpikeBank {
	if maxKeys <= 0 {
		maxKeys = 4096
	}
	return &SpikeBank{cfg: cfg, byKey: make(map[string]*SpikeDetector), maxKeys: maxKeys}
}

// Offer routes the sample to its key's detector. Safe for concurrent use;
// per-key determinism requires each key's samples to arrive in order (one
// offering goroutine per key, as the sharded sink guarantees).
func (b *SpikeBank) Offer(key string, ts, latencyNs int64) *Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.byKey[key]
	if !ok {
		if len(b.byKey) >= b.maxKeys {
			return nil
		}
		d = NewSpikeDetector(b.cfg)
		b.byKey[key] = d
	}
	return d.Offer(ts, latencyNs)
}

// Keys returns the number of tracked keys.
func (b *SpikeBank) Keys() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.byKey)
}

// FloodConfig tunes the SYN flood detector.
type FloodConfig struct {
	// BucketNs is the counting interval (default 1s).
	BucketNs int64
	// Alpha is the EWMA weight for the baseline (default 0.05).
	Alpha float64
	// Ratio: alarm when unanswered-SYN count exceeds Ratio × baseline
	// (default 8) AND exceeds MinCount (default 100).
	Ratio    float64
	MinCount float64
	// WarmupBuckets before alarms can fire (default 5).
	WarmupBuckets int
}

// FloodDetector consumes per-flow outcome signals: a new SYN (pending) and
// its resolution (completed or expired-unanswered). A surge in the
// unanswered rate relative to its EWMA baseline raises an event — the
// paper's "SYN floods can also be identified in real-time".
//
// Not safe for concurrent use: callers serialize Observe*/Flush/Events
// (the pipeline guards its instance with a mutex; expiries are rare
// relative to packets, so the lock is uncontended).
type FloodDetector struct {
	cfg FloodConfig

	started     bool
	bucketStart int64
	unanswered  float64
	syns        float64
	baseline    stats.EWMA
	buckets     int
	events      []Event
	inAlarm     bool
}

// NewFloodDetector returns a detector with defaults applied.
func NewFloodDetector(cfg FloodConfig) *FloodDetector {
	if cfg.BucketNs <= 0 {
		cfg.BucketNs = 1e9
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.05
	}
	if cfg.Ratio <= 0 {
		cfg.Ratio = 8
	}
	if cfg.MinCount <= 0 {
		cfg.MinCount = 100
	}
	if cfg.WarmupBuckets <= 0 {
		cfg.WarmupBuckets = 5
	}
	d := &FloodDetector{cfg: cfg}
	d.baseline.Alpha = cfg.Alpha
	return d
}

// ObserveSYN records a new connection attempt at ts.
func (d *FloodDetector) ObserveSYN(ts int64) {
	d.roll(ts)
	d.syns++
}

// ObserveUnanswered records a handshake that expired without completing.
func (d *FloodDetector) ObserveUnanswered(ts int64) {
	d.roll(ts)
	d.unanswered++
}

// Flush closes the current bucket (call at end of stream).
func (d *FloodDetector) Flush() { d.closeBucket(d.bucketStart + d.cfg.BucketNs) }

func (d *FloodDetector) roll(ts int64) {
	if !d.started {
		d.started = true
		d.bucketStart = ts - ts%d.cfg.BucketNs
		return
	}
	for ts >= d.bucketStart+d.cfg.BucketNs {
		d.closeBucket(d.bucketStart + d.cfg.BucketNs)
	}
}

func (d *FloodDetector) closeBucket(next int64) {
	count := d.unanswered
	base := d.baseline.Value()
	if d.buckets >= d.cfg.WarmupBuckets &&
		count >= d.cfg.MinCount && count > d.cfg.Ratio*(base+1) {
		if !d.inAlarm {
			d.events = append(d.events, Event{
				Time: d.bucketStart, Kind: "syn_flood",
				Detail: fmt.Sprintf("%d unanswered SYNs in %.0fs bucket (baseline %.1f)",
					int(count), float64(d.cfg.BucketNs)/1e9, base),
				Value: count, Baseline: base,
			})
			d.inAlarm = true
		}
		// Do not feed attack buckets into the baseline.
	} else {
		d.baseline.Add(count)
		d.inAlarm = false
	}
	d.unanswered = 0
	d.syns = 0
	d.buckets++
	d.bucketStart = next
}

// Events returns all detections so far.
func (d *FloodDetector) Events() []Event { return d.events }

// SurgeConfig tunes the connection-count detector (per location pair).
type SurgeConfig struct {
	BucketNs      int64   // default 1s
	Alpha         float64 // default 0.05
	Ratio         float64 // default 6
	MinCount      float64 // default 50
	WarmupBuckets int     // default 5
	MaxKeys       int     // default 4096
}

// SurgeDetector counts completed connections per key (e.g. "src→dst" city
// pair) per bucket and alarms on surges over the per-key EWMA baseline —
// "unusual number of TCP connections between two locations".
type SurgeDetector struct {
	cfg SurgeConfig

	mu     sync.Mutex
	perKey map[string]*surgeState
	events []Event
}

type surgeState struct {
	bucketStart int64
	count       float64
	baseline    stats.EWMA
	buckets     int
	inAlarm     bool
}

// NewSurgeDetector returns a detector with defaults applied.
func NewSurgeDetector(cfg SurgeConfig) *SurgeDetector {
	if cfg.BucketNs <= 0 {
		cfg.BucketNs = 1e9
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.05
	}
	if cfg.Ratio <= 0 {
		cfg.Ratio = 6
	}
	if cfg.MinCount <= 0 {
		cfg.MinCount = 50
	}
	if cfg.WarmupBuckets <= 0 {
		cfg.WarmupBuckets = 5
	}
	if cfg.MaxKeys <= 0 {
		cfg.MaxKeys = 4096
	}
	return &SurgeDetector{cfg: cfg, perKey: make(map[string]*surgeState)}
}

// Observe records one completed connection for key at ts. Safe for
// concurrent use.
func (d *SurgeDetector) Observe(key string, ts int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.perKey[key]
	if !ok {
		if len(d.perKey) >= d.cfg.MaxKeys {
			return
		}
		st = &surgeState{bucketStart: ts - ts%d.cfg.BucketNs}
		st.baseline.Alpha = d.cfg.Alpha
		d.perKey[key] = st
	}
	for ts >= st.bucketStart+d.cfg.BucketNs {
		d.closeBucketLocked(key, st)
	}
	st.count++
}

// Flush closes all open buckets.
func (d *SurgeDetector) Flush() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for key, st := range d.perKey {
		d.closeBucketLocked(key, st)
	}
}

func (d *SurgeDetector) closeBucketLocked(key string, st *surgeState) {
	base := st.baseline.Value()
	if st.buckets >= d.cfg.WarmupBuckets &&
		st.count >= d.cfg.MinCount && st.count > d.cfg.Ratio*(base+1) {
		if !st.inAlarm {
			d.events = append(d.events, Event{
				Time: st.bucketStart, Kind: "conn_surge",
				Detail: fmt.Sprintf("%s: %d connections/bucket (baseline %.1f)",
					key, int(st.count), base),
				Value: st.count, Baseline: base,
			})
			st.inAlarm = true
		}
	} else {
		st.baseline.Add(st.count)
		st.inAlarm = false
	}
	st.count = 0
	st.buckets++
	st.bucketStart += d.cfg.BucketNs
}

// Events returns all detections so far.
func (d *SurgeDetector) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Event, len(d.events))
	copy(out, d.events)
	return out
}

// SNMPPoller is the conventional-monitoring strawman: it averages all
// latency samples over a long poll interval (five minutes for classic SNMP
// counters). E4 shows that the firewall anomaly — a 4000 ms increase
// confined to flows started in a sub-second window — vanishes into this
// average, while the SpikeDetector catches every affected flow.
type SNMPPoller struct {
	IntervalNs int64

	started     bool
	bucketStart int64
	sum         float64
	n           int
	samples     []SNMPSample
}

// SNMPSample is one poll result.
type SNMPSample struct {
	Time   int64   // poll bucket start
	MeanNs float64 // average latency over the interval
	Count  int
}

// NewSNMPPoller creates a poller with the given interval (default 5min).
func NewSNMPPoller(intervalNs int64) *SNMPPoller {
	if intervalNs <= 0 {
		intervalNs = 300e9
	}
	return &SNMPPoller{IntervalNs: intervalNs}
}

// Offer consumes one latency sample.
func (p *SNMPPoller) Offer(ts int64, latencyNs int64) {
	if !p.started {
		p.started = true
		p.bucketStart = ts - ts%p.IntervalNs
	}
	for ts >= p.bucketStart+p.IntervalNs {
		p.close()
	}
	p.sum += float64(latencyNs)
	p.n++
}

// Flush closes the open interval.
func (p *SNMPPoller) Flush() { p.close() }

func (p *SNMPPoller) close() {
	if p.n > 0 {
		p.samples = append(p.samples, SNMPSample{
			Time: p.bucketStart, MeanNs: p.sum / float64(p.n), Count: p.n,
		})
	}
	p.sum, p.n = 0, 0
	p.bucketStart += p.IntervalNs
}

// Samples returns all closed poll intervals.
func (p *SNMPPoller) Samples() []SNMPSample { return p.samples }
