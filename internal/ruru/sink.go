package ruru

// The sharded sink stage: everything downstream of the enricher.
//
// PR 1 made the ingest side (ring → nic → core) batched and lossless, but
// the storage/visualization side still funnelled every enriched measurement
// through a single goroutine into a TSDB guarded by one global mutex — the
// "collector can't keep up" failure mode that silently invalidates a
// measurement system's output. This file replaces that consumer with a pool
// of sink workers:
//
//	sinkSub ──► dispatcher ──► shard 0 worker ──► { WriteBatch, detectors,
//	           (decode+hash)   shard 1 worker       arc ring, WS frame }
//	                           ...
//
// Measurements are partitioned by a hash of the src_city→dst_city pair, so
// each anomaly-detector key and each TSDB latency series keeps single-worker
// affinity: per-key processing order is preserved and per-key state never
// crosses workers. Workers drain their shard channel in bursts of up to
// SinkBatch, write the TSDB points with one batched, stripe-locked call, and
// coalesce the burst into one WebSocket frame — skipping JSON marshalling
// entirely when no client is connected.

import (
	"context"
	"encoding/json"
	"sort"

	"ruru/internal/analytics"
	"ruru/internal/hashx"
	"ruru/internal/mq"
	"ruru/internal/tsdb"
)

// sinkItem is one decoded enriched measurement routed to a sink worker,
// with the detector key precomputed by the dispatcher.
type sinkItem struct {
	e    analytics.Enriched
	pair string
}

// sinkShardDepth is the per-worker channel capacity. Together with the
// subscription HWM it bounds in-flight measurements; a stalled worker
// backpressures the dispatcher, which surfaces as SinkDrop at the HWM.
const sinkShardDepth = 4096

// pairKey is the detector/shard-routing key of a measurement. The format
// is load-bearing: it decides both worker affinity and anomaly-detector
// state keys, so every ingress path must build it through this helper.
func pairKey(e *analytics.Enriched) string {
	return e.Src.City + "→" + e.Dst.City
}

// shardFor routes a detector key to its sink shard.
func (p *Pipeline) shardFor(pair string) *sinkShard {
	return p.sinkShards[hashx.FNV1a32(pair)%uint32(len(p.sinkShards))]
}

// runSinkDispatcher drains the enriched subscription, decodes each message
// and hands it to its shard's worker. Decode failures are counted in
// Stats().SinkDecodeErrors (they used to be silently discarded);
// subscription HWM overflow is visible as Stats().SinkDrop.
func (p *Pipeline) runSinkDispatcher(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case msg, ok := <-p.sinkSub.C():
			if !ok {
				return
			}
			p.routeSink(ctx, msg)
		}
	}
}

func (p *Pipeline) routeSink(ctx context.Context, msg mq.Message) {
	var it sinkItem
	if err := analytics.UnmarshalEnriched(msg.Payload, &it.e); err != nil {
		p.sinkDecodeErrors.Add(1)
		return
	}
	it.pair = pairKey(&it.e)
	sh := p.shardFor(it.pair)
	select {
	case sh.ch <- it:
	case <-ctx.Done():
	}
}

// runSinkWorker owns one shard: it drains the shard channel in bursts of up
// to SinkBatch and dispatches each burst to every output.
func (p *Pipeline) runSinkWorker(ctx context.Context, sh *sinkShard) {
	batch := make([]sinkItem, 0, p.cfg.SinkBatch)
	// Shard channels are never closed: the worker's only exit is ctx
	// cancellation, which abandons whatever is still queued (see the
	// Stats ledger doc).
	for {
		select {
		case <-ctx.Done():
			return
		case it := <-sh.ch:
			batch = append(batch[:0], it)
		fill:
			for len(batch) < cap(batch) {
				select {
				case it := <-sh.ch:
					batch = append(batch, it)
				default:
					break fill
				}
			}
			p.consumeBatch(sh, batch)
		}
	}
}

// seriesRefFor returns the interned TSDB handle for e's latency series,
// consulting the shard's worker-private cache. Steady state is one key
// build into reused scratch plus a no-alloc map probe; only a
// never-seen identity takes the Ref slow path.
func (p *Pipeline) seriesRefFor(sh *sinkShard, e *analytics.Enriched) (tsdb.SeriesRef, error) {
	sh.keyBuf = analytics.AppendLatencyKey(sh.keyBuf[:0], e)
	if ref, ok := sh.refs[string(sh.keyBuf)]; ok {
		return ref, nil
	}
	pt := analytics.LatencyPoint(e)
	ref, err := p.DB.Ref(pt.Name, pt.Tags, analytics.LatencyFieldKeys()...)
	if err != nil {
		return 0, err
	}
	sh.refs[string(sh.keyBuf)] = ref
	return ref, nil
}

// writeSinkBatch converts one burst into RefPoints backed by the shard's
// value arena and writes them through the interned-handle TSDB path. The
// steady state (arena warm, refs interned) must not allocate — the noalloc
// analyzer enforces the construct-level discipline; the sink benchmark
// gates the measured allocs/op.
//
//ruru:noalloc
func (p *Pipeline) writeSinkBatch(sh *sinkShard, batch []sinkItem) {
	// Reserve the value arena up front so Vals subslices stay valid while
	// the arena fills.
	need := len(batch) * 3
	if cap(sh.vals) < need {
		sh.vals = make([]float64, 0, need)
	}
	vals := sh.vals[:0]
	rpts := sh.rpts[:0]
	for i := range batch {
		e := &batch[i].e
		ref, err := p.seriesRefFor(sh, e)
		if err != nil {
			// Only a Close racing this worker can fail here; the point is
			// unwritable, so account for it immediately.
			p.sinkWriteErrors.Add(1)
			continue
		}
		n := len(vals)
		vals = analytics.AppendLatencyVals(vals, e)
		rpts = append(rpts, tsdb.RefPoint{Ref: ref, Time: e.Time, Vals: vals[n:len(vals):len(vals)]})
	}
	sh.vals, sh.rpts = vals, rpts
	if applied, err := p.DB.WriteBatchRef(rpts); err != nil {
		// Count exactly the unapplied remainder — points in stripes written
		// before the failure are already in DBPoints — so the ledger stays
		// honest.
		p.sinkWriteErrors.Add(uint64(len(rpts) - applied))
	}
}

// consumeBatch dispatches one burst to all sinks: a single striped-lock
// TSDB batch write through interned series handles (zero-alloc at steady
// state), one coalesced WebSocket frame (only marshalled when a client is
// connected, into the shard's reusable frame buffer), the anomaly
// detectors in arrival order, and the shard's arc ring.
func (p *Pipeline) consumeBatch(sh *sinkShard, batch []sinkItem) {
	p.writeSinkBatch(sh, batch)

	if p.Hub.LiveClients() > 0 {
		sh.mu.Lock()
		frame := sh.frameBuf[:0]
		for i := range batch {
			frame = append(frame, batch[i].e)
		}
		sh.frameBuf = frame
		data, err := json.Marshal(frame)
		sh.mu.Unlock()
		if err == nil {
			// data is freshly allocated per call — the Hub retains it in
			// client queues, so only the frame scratch is reusable.
			p.Hub.Broadcast(data)
		}
	}

	if p.Hub.RollupClients() > 0 {
		// Rollup-stream audience: fold the burst into per-(pair, bucket)
		// delta cells instead of marshalling events — the flusher coalesces
		// everything into one frame per interval for all rollup clients.
		for i := range batch {
			p.Delta.Add(&batch[i].e)
		}
	}

	for i := range batch {
		p.offerDetectors(&batch[i].e, batch[i].pair)
	}

	if p.pairTop != nil {
		// One lock round per burst: the city-pair latency summary is a
		// leaf lock shared by all sink workers (pairs cross shards only
		// via Feed, but the summary is global either way).
		p.pairTopMu.Lock()
		for i := range batch {
			p.pairTop.UpdateLat(batch[i].pair, 1, float64(batch[i].e.TotalNs)/1e6)
		}
		p.pairTopMu.Unlock()
	}

	sh.mu.Lock()
	for i := range batch {
		sh.pushArcLocked(&batch[i].e)
	}
	sh.mu.Unlock()
}

// offerDetectors feeds one measurement to the anomaly detectors and the
// SNMP strawman. The detectors are safe for concurrent use (internal
// locks); single-worker shard affinity additionally keeps per-key offer
// order deterministic.
func (p *Pipeline) offerDetectors(e *analytics.Enriched, pair string) {
	if ev := p.Spikes.Offer(pair, e.Time, e.TotalNs); ev != nil {
		p.spikeEventsMu.Lock()
		p.spikeEvents = append(p.spikeEvents, *ev)
		p.spikeEventsMu.Unlock()
	}
	p.Surge.Observe(pair, e.Time)
	if p.SNMP != nil {
		p.snmpMu.Lock()
		p.SNMP.Offer(e.Time, e.TotalNs)
		p.snmpMu.Unlock()
	}
}

// pushArcLocked appends one measurement to the shard's arc ring. Caller
// holds sh.mu.
func (sh *sinkShard) pushArcLocked(e *analytics.Enriched) {
	if len(sh.arcsBuf) < cap(sh.arcsBuf) {
		sh.arcsBuf = append(sh.arcsBuf, *e)
	} else {
		sh.arcsBuf[sh.arcsPos] = *e
		sh.arcsPos = (sh.arcsPos + 1) % cap(sh.arcsBuf)
	}
}

// orderedArcsLocked returns the shard ring's contents oldest→newest.
// Caller holds sh.mu.
func (sh *sinkShard) orderedArcsLocked() []analytics.Enriched {
	out := make([]analytics.Enriched, 0, len(sh.arcsBuf))
	if len(sh.arcsBuf) < cap(sh.arcsBuf) {
		return append(out, sh.arcsBuf...)
	}
	out = append(out, sh.arcsBuf[sh.arcsPos:]...)
	return append(out, sh.arcsBuf[:sh.arcsPos]...)
}

// Feed injects an enriched measurement directly into the sink stage,
// bypassing packet processing and the worker pool — synchronous, used by
// harnesses and the quickstart example to exercise storage/visualization in
// isolation. Safe concurrently with a running pipeline: it takes the same
// per-shard lock as the owning worker, though cross-call ordering against
// bus-delivered measurements on the same key is then unspecified.
func (p *Pipeline) Feed(e *analytics.Enriched) {
	pair := pairKey(e)
	sh := p.shardFor(pair)
	pt := analytics.LatencyPoint(e)
	if err := p.DB.Write(&pt); err != nil {
		p.sinkWriteErrors.Add(1)
	}
	if p.Hub.LiveClients() > 0 {
		// Reuse the shard's frame buffer under its lock instead of
		// marshalling a fresh one-element slice per call; the marshalled
		// bytes stay per-call (the Hub retains them).
		sh.mu.Lock()
		sh.frameBuf = append(sh.frameBuf[:0], *e)
		data, err := json.Marshal(sh.frameBuf)
		sh.mu.Unlock()
		if err == nil {
			p.Hub.Broadcast(data)
		}
	}
	if p.Hub.RollupClients() > 0 {
		p.Delta.Add(e)
	}
	p.offerDetectors(e, pair)
	if p.pairTop != nil {
		p.pairTopMu.Lock()
		p.pairTop.UpdateLat(pair, 1, float64(e.TotalNs)/1e6)
		p.pairTopMu.Unlock()
	}
	sh.mu.Lock()
	sh.pushArcLocked(e)
	sh.mu.Unlock()
}

// RecentArcs returns up to n of the most recent enriched measurements for
// the live map, merged across the per-worker arc rings by measurement time
// (n <= 0: everything retained, at most SinkWorkers × ArcsBuffer).
// "Most recent" is approximate when completion timestamps arrive slightly
// out of order within a shard: the per-shard tail is taken in arrival
// order before the cross-shard sort — fine for a live visualization feed,
// and it avoids copying every ring on each request.
func (p *Pipeline) RecentArcs(n int) []analytics.Enriched {
	var all []analytics.Enriched
	for _, sh := range p.sinkShards {
		sh.mu.Lock()
		arcs := sh.orderedArcsLocked()
		// The newest n of the merged set can only come from the newest n
		// of each shard, so drop each shard's older remainder before the
		// cross-shard sort instead of copying the whole ring.
		if n > 0 && n < len(arcs) {
			arcs = arcs[len(arcs)-n:]
		}
		all = append(all, arcs...)
		sh.mu.Unlock()
	}
	// Each shard is already oldest→newest; a stable sort by time merges
	// them without reordering same-timestamp entries within a shard.
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	if n > 0 && n < len(all) {
		all = all[len(all)-n:]
	}
	return all
}
