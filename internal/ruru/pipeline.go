// Package ruru assembles the full pipeline from the paper's Figure 2:
//
//	traffic → [nic: RSS → per-core queues] → [core: handshake engine]
//	        → (mq "ZeroMQ" bus, raw topic) → [analytics: geo enrich + anonymize]
//	        → (mq bus, enriched topic) → { tsdb sink, WebSocket hub,
//	                                        anomaly detectors, arc feed }
//
// This is the public-facing entry point a downstream user embeds: construct
// a Pipeline, inject traffic into Pipeline.Port (from the generator, a pcap
// trace, or any frame source), and consume results from the TSDB, the
// WebSocket hub, the HTTP API, or the anomaly event streams.
package ruru

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/anomaly"
	"ruru/internal/core"
	"ruru/internal/fed"
	"ruru/internal/geo"
	"ruru/internal/mq"
	"ruru/internal/nic"
	"ruru/internal/sketch"
	"ruru/internal/tsdb"
	"ruru/internal/ws"
)

// Config configures a Pipeline. Zero values get production-shaped defaults.
type Config struct {
	// GeoDB is the geolocation database. Required.
	GeoDB *geo.DB

	// Queues is the number of RSS queues / measurement cores (default 4).
	Queues int
	// QueueDepth is the per-queue ring size (default 4096).
	QueueDepth int
	// PoolSize is the packet mempool size (default 16384 buffers).
	PoolSize int
	// BufSize is the packet buffer size (default 2048).
	BufSize int
	// Burst is the RxBurst size (default 64).
	Burst int
	// Poll tunes the measurement workers' adaptive idle ladder
	// (spin → yield → decaying sleep; zero values get defaults).
	Poll core.PollConfig
	// PollSleep is the legacy fixed idle-sleep knob; when set it becomes
	// Poll.SleepMax. Prefer Poll.
	PollSleep time.Duration

	// Overflow selects what injection does when an RX queue is full:
	// nic.Drop (default, NIC-faithful: frame lost, counted Imissed) or
	// nic.Block (lossless sources: injection waits for queue space).
	Overflow nic.OverflowPolicy
	// BlockTimeout bounds how long Block-policy injection waits (zero:
	// indefinitely).
	BlockTimeout time.Duration
	// MultiConsumer switches RX queues to the multi-consumer-safe CAS
	// rings so several workers may drain one queue.
	MultiConsumer bool

	// TableCapacity is the per-queue handshake table size (default 64k).
	TableCapacity int
	// HandshakeTimeout evicts incomplete handshakes (default 10s).
	HandshakeTimeout int64

	// FlowTableBytes, when > 0, enables the bounded-memory sketch tier
	// and is the hard byte cap across all per-flow state: per-queue
	// count-min sketches and heavy-hitter summaries (fixed overhead), the
	// city-pair latency summary, and every exact table entry (handshake
	// plus both continuous-RTT trackers) charged at its struct size. When
	// the cap is reached, new flows live sketch-only — volume still
	// estimated, heavy hitters still ranked, but no per-flow record —
	// and the induced error is surfaced in Stats.Sketch. Must be at
	// least MinFlowTableBytes(Queues). Zero keeps exact-only mode.
	FlowTableBytes int64

	// EnrichWorkers is the analytics pool size (default 4).
	EnrichWorkers int

	// SinkWorkers is the number of sharded sink workers draining the
	// enriched stream (default 4). Measurements are partitioned by a hash
	// of the src_city→dst_city pair, so every anomaly-detector key and
	// every TSDB latency series keeps single-worker affinity.
	SinkWorkers int
	// SinkBatch is the maximum measurements one sink worker drains per
	// wakeup — one TSDB batch write and at most one coalesced WebSocket
	// frame per batch (default 64).
	SinkBatch int

	// TSDB options. ShardDuration is the width of one storage time shard
	// and Retention the raw-point horizon, both in nanoseconds of the
	// data's own clock (zero values keep tsdb defaults: 1h shards,
	// keep-everything).
	ShardDuration int64
	Retention     int64
	// DBStripes is the TSDB lock-stripe count: concurrent sink workers
	// contend only within a stripe (default 8; 1 restores a single global
	// write lock).
	DBStripes int
	// Rollups configures the TSDB's multi-resolution downsampling tiers
	// (see tsdb.RollupTier): every stored measurement additionally feeds
	// each tier's pre-aggregates, and aligned dashboard queries are served
	// from the coarsest usable tier instead of re-scanning raw points.
	// Nil disables rollups; tsdb.DefaultRollups() gives the standard
	// 1s/10s/1m ladder.
	Rollups []tsdb.RollupTier
	// Persist enables durable TSDB storage when Persist.Dir is non-empty:
	// measurements are written through a WAL, checkpointed periodically,
	// and restored (checkpoint + WAL replay, rollup tiers rebuilt) the
	// next time a pipeline opens the same directory. New fails if the
	// directory is locked by another live process. Zero value keeps the
	// TSDB in-memory. See tsdb.PersistOptions for the fsync/checkpoint
	// knobs and docs/OPERATIONS.md for tuning guidance.
	Persist tsdb.PersistOptions

	// QueryCacheBytes, when > 0, enables the TSDB's query result cache with
	// that byte budget (LRU, bit-exact with uncached execution, incremental
	// tail refresh for advancing dashboard windows — see tsdb.Options).
	// Zero disables caching.
	QueryCacheBytes int64

	// HubQueue is the per-WebSocket-client queue depth (default 256).
	HubQueue int

	// RollupStreamWidth is the bucket width (ns) of the /ws?stream=rollup
	// delta feed (default 1s, matching the standard ladder's finest tier).
	RollupStreamWidth int64
	// RollupStreamInterval is how often accumulated rollup deltas are
	// coalesced into one frame for the rollup audience (default 250ms).
	RollupStreamInterval time.Duration

	// Detector configs (defaults applied by the anomaly package).
	Spike anomaly.SpikeConfig
	Flood anomaly.FloodConfig
	Surge anomaly.SurgeConfig
	// SNMPInterval enables the conventional-monitoring baseline poller
	// when > 0 (used by experiment E4).
	SNMPInterval int64

	// ArcsBuffer is how many recent measurements the live-map arc feed
	// retains (default 4096).
	ArcsBuffer int

	// TrackTimestamps enables continuous RTT measurement from TCP
	// timestamp echoes (the pping-style extension). Samples are
	// geo-enriched (IPs dropped, like measurements) and written to the
	// TSDB measurement "rtt_stream" with tags echoer_city/peer_city and
	// mode=ts.
	TrackTimestamps bool

	// TrackSeq enables continuous RTT from data→ACK sequence matching
	// plus retransmit/RTO/dupack loss classification — the flows the
	// timestamp tracker cannot see (no TS option negotiated). Samples
	// join "rtt_stream" tagged mode=seq; loss events are written to the
	// "tcp_loss" measurement with tags src_city/dst_city/kind. When both
	// trackers run, timestamp-bearing flows are sampled only by the
	// timestamp tracker (no double counting) while loss classification
	// stays on for every flow.
	TrackSeq bool
	// OneDirection switches the seq tracker to asymmetric-tap mode for
	// taps that see only one side of each conversation: samples become
	// round-trip *response* latencies self-paired within the visible
	// direction, tagged mode=onedir. Implies TrackSeq.
	OneDirection bool

	// RemoteWrite, when Addr is set, turns this pipeline into a federation
	// probe: every enriched measurement additionally streams to a central
	// aggregator as acked, spooled, CRC-framed batches (see internal/fed).
	// The local TSDB keeps working — the probe remains fully queryable on
	// its own.
	RemoteWrite fed.ProbeConfig
	// Federate, when Listen is set, turns this pipeline into a federation
	// aggregator: remote probes' measurements are ingested into DB through
	// the normal WriteBatch→rollup→WAL path, each series tagged
	// probe=<probe id>, deduplicated by per-probe sequence number.
	Federate fed.AggConfig
}

// Measurement topics re-exported for consumers wiring extra modules in.
const (
	TopicRaw      = analytics.TopicRaw
	TopicEnriched = analytics.TopicEnriched
)

// pairTopKeys is the capacity of the city-pair latency summary: enough for
// every pair among ~16 cities, bounded regardless of traffic.
const pairTopKeys = 256

// MinFlowTableBytes returns the smallest Config.FlowTableBytes able to host
// the sketch tier for the given queue count: each queue's minimum tier
// (smallest count-min sketch plus smallest heavy-hitter summaries) plus the
// fixed city-pair summary. At exactly this budget the exact tables get a
// zero byte allowance — every flow lives sketch-only — which tests use as a
// deterministic floor.
func MinFlowTableBytes(queues int) int64 {
	if queues <= 0 {
		queues = 4
	}
	return int64(queues)*sketch.MinBudgetBytes() + sketch.NewTopK[string](pairTopKeys).Bytes()
}

// Pipeline is an assembled Ruru instance. The exported stage fields are
// the embedding points for callers: inject traffic into Port, read
// aggregates from DB, attach WebSocket clients via Hub, subscribe to Bus
// topics for custom modules. Each stage is individually safe for
// concurrent use (see ARCHITECTURE.md for the per-package contracts); the
// fields themselves must be treated as read-only after New returns.
type Pipeline struct {
	cfg Config

	Pool     *nic.Mempool        // packet buffer pool shared by all queues
	Port     *nic.Port           // ingest: Inject*/RxBurst and per-queue stats
	Engine   *core.Engine        // per-queue handshake measurement workers
	Bus      *mq.Bus             // PUB/SUB bus carrying raw + enriched topics
	Enricher *analytics.Enricher // geo/AS enrichment worker pool
	DB       *tsdb.DB            // embedded TSDB (queries, snapshot, rollups)
	Hub      *ws.Hub             // WebSocket fan-out to live frontends
	Delta    *RollupDelta        // rollup-delta accumulator behind /ws?stream=rollup

	Spikes *anomaly.SpikeBank     // per-city-pair latency spike detectors
	Flood  *anomaly.FloodDetector // SYN-flood detector (expiry-fed)
	Surge  *anomaly.SurgeDetector // per-pair connection-rate surge detector
	SNMP   *anomaly.SNMPPoller    // coarse "conventional monitoring" baseline

	Remote *fed.Probe      // remote-write client (nil unless Config.RemoteWrite)
	Agg    *fed.Aggregator // federation endpoint (nil unless Config.Federate)

	// Sketch holds the per-queue bounded-memory flow tiers (nil unless
	// Config.FlowTableBytes > 0). Each tier is owned by its queue worker;
	// external readers may only use Snapshot() (see /api/topk).
	Sketch []*sketch.FlowTier

	// pairTop is the bounded per-(src_city,dst_city) latency summary, fed
	// by the sink workers under pairTopMu (a leaf lock: nothing is ever
	// acquired while holding it — see internal/lint spec).
	pairTop   *sketch.TopK[string]
	pairTopMu sync.Mutex

	floodMu sync.Mutex
	snmpMu  sync.Mutex

	spikeEventsMu sync.Mutex
	spikeEvents   []anomaly.Event

	tsSamples  atomic.Uint64
	seqSamples atomic.Uint64
	lossPoints atomic.Uint64

	sinkSub          *mq.Subscription
	sinkShards       []*sinkShard
	sinkDecodeErrors atomic.Uint64
	sinkWriteErrors  atomic.Uint64
}

// sinkShard is the state owned by one sink worker: its routing channel,
// the worker-private write scratch (SeriesRef cache keyed by geo/AS
// identity, reusable RefPoint/value buffers — touched only by the owning
// worker, never under mu), and the mu-guarded state shared with Feed and
// RecentArcs (arc ring, WebSocket frame buffer).
type sinkShard struct {
	ch chan sinkItem

	// Worker-private: per-identity interned TSDB handles and batch scratch.
	refs   map[string]tsdb.SeriesRef
	keyBuf []byte
	rpts   []tsdb.RefPoint
	vals   []float64

	mu       sync.Mutex
	arcsBuf  []analytics.Enriched
	arcsPos  int
	frameBuf []analytics.Enriched // reusable WS frame scratch (marshalled under mu)
}

// New assembles a pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.GeoDB == nil {
		return nil, errors.New("ruru: Config.GeoDB is required")
	}
	if cfg.Queues <= 0 {
		cfg.Queues = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 16384
	}
	if cfg.BufSize <= 0 {
		cfg.BufSize = 2048
	}
	if cfg.TableCapacity <= 0 {
		cfg.TableCapacity = 1 << 16
	}
	if cfg.EnrichWorkers <= 0 {
		cfg.EnrichWorkers = 4
	}
	if cfg.SinkWorkers <= 0 {
		cfg.SinkWorkers = 4
	}
	if cfg.SinkBatch <= 0 {
		cfg.SinkBatch = 64
	}
	if cfg.ArcsBuffer <= 0 {
		cfg.ArcsBuffer = 4096
	}

	p := &Pipeline{cfg: cfg}
	p.Pool = nic.NewMempool(cfg.PoolSize, cfg.BufSize)
	var err error
	p.Port, err = nic.NewPort(nic.PortConfig{
		Queues: cfg.Queues, QueueDepth: cfg.QueueDepth, Pool: p.Pool,
		Policy: cfg.Overflow, BlockTimeout: cfg.BlockTimeout,
		MultiConsumer: cfg.MultiConsumer,
	})
	if err != nil {
		return nil, err
	}
	p.Bus = mq.NewBus()
	p.Flood = anomaly.NewFloodDetector(cfg.Flood)
	p.Spikes = anomaly.NewSpikeBank(cfg.Spike, 0)
	p.Surge = anomaly.NewSurgeDetector(cfg.Surge)
	if cfg.SNMPInterval > 0 {
		p.SNMP = anomaly.NewSNMPPoller(cfg.SNMPInterval)
	}

	sink := analytics.NewBusSink(p.Bus)
	engCfg := core.EngineConfig{
		Port: p.Port,
		Sink: sink,
		Table: core.TableConfig{
			Capacity: cfg.TableCapacity,
			Timeout:  cfg.HandshakeTimeout,
			OnExpire: p.onExpire,
		},
		Burst:     cfg.Burst,
		Poll:      cfg.Poll,
		PollSleep: cfg.PollSleep,
	}
	if cfg.TrackTimestamps {
		engCfg.TSSink = core.TSSinkFunc(p.onTSSample)
		engCfg.TSTable = core.TSConfig{
			Capacity: cfg.TableCapacity,
			Timeout:  cfg.HandshakeTimeout,
		}
	}
	if cfg.TrackSeq || cfg.OneDirection {
		engCfg.SeqSink = seqSinkAdapter{p}
		engCfg.SeqTable = core.SeqConfig{
			Capacity:     cfg.TableCapacity,
			Timeout:      cfg.HandshakeTimeout,
			OneDirection: cfg.OneDirection,
			// DeferTS is decided by the engine: set iff the timestamp
			// tracker also runs and the tap sees both directions.
		}
	}
	if cfg.FlowTableBytes > 0 {
		if min := MinFlowTableBytes(cfg.Queues); cfg.FlowTableBytes < min {
			return nil, fmt.Errorf("ruru: Config.FlowTableBytes %d below minimum %d for %d queues",
				cfg.FlowTableBytes, min, cfg.Queues)
		}
		p.pairTop = sketch.NewTopK[string](pairTopKeys)
		perQ := (cfg.FlowTableBytes - p.pairTop.Bytes()) / int64(cfg.Queues)
		p.Sketch = make([]*sketch.FlowTier, cfg.Queues)
		for q := range p.Sketch {
			tier, terr := sketch.NewFlowTier(sketch.TierConfig{BudgetBytes: perQ, Queue: q})
			if terr != nil {
				return nil, fmt.Errorf("ruru: sketch tier %d: %w", q, terr)
			}
			p.Sketch[q] = tier
		}
		engCfg.NewAdmitter = func(q int) core.Admitter { return p.Sketch[q] }
	}
	p.Engine, err = core.NewEngine(engCfg)
	if err != nil {
		return nil, err
	}
	p.Enricher, err = analytics.NewEnricher(analytics.Config{
		DB: cfg.GeoDB, Bus: p.Bus, Workers: cfg.EnrichWorkers, HWM: 1 << 15,
	})
	if err != nil {
		return nil, err
	}
	var persist *tsdb.PersistOptions
	if cfg.Persist.Dir != "" {
		pp := cfg.Persist
		persist = &pp
	}
	p.DB, err = tsdb.OpenDB(tsdb.Options{
		ShardDuration: cfg.ShardDuration, Retention: cfg.Retention,
		Stripes: cfg.DBStripes, Rollups: cfg.Rollups, Persist: persist,
		QueryCache: cfg.QueryCacheBytes,
	})
	if err != nil {
		return nil, err
	}
	p.Hub = ws.NewHub(cfg.HubQueue)
	p.Delta = NewRollupDelta(cfg.RollupStreamWidth)
	p.sinkShards = make([]*sinkShard, cfg.SinkWorkers)
	for i := range p.sinkShards {
		p.sinkShards[i] = &sinkShard{
			ch:      make(chan sinkItem, sinkShardDepth),
			refs:    make(map[string]tsdb.SeriesRef),
			arcsBuf: make([]analytics.Enriched, 0, cfg.ArcsBuffer),
		}
	}

	p.sinkSub, err = p.Bus.Subscribe(TopicEnriched, 1<<15)
	if err != nil {
		return nil, err
	}
	if cfg.RemoteWrite.Addr != "" {
		p.Remote, err = fed.NewProbe(cfg.RemoteWrite, p.Bus)
		if err != nil {
			return nil, errors.Join(err, p.DB.Close())
		}
	}
	if cfg.Federate.Listen != "" {
		p.Agg, err = fed.NewAggregator(cfg.Federate, p.DB)
		if err != nil {
			if p.Remote != nil {
				err = errors.Join(err, p.Remote.Close())
			}
			return nil, errors.Join(err, p.DB.Close())
		}
	}
	return p, nil
}

// onExpire feeds incomplete-handshake evictions to the flood detector.
// Called from queue workers; the detector is guarded by a mutex (expiries
// are rare relative to packets).
func (p *Pipeline) onExpire(lastTS int64, awaitingSYNACK bool) {
	if !awaitingSYNACK {
		return
	}
	p.floodMu.Lock()
	p.Flood.ObserveUnanswered(lastTS)
	p.floodMu.Unlock()
}

// onTSSample stores one continuous RTT sample: geo-enriched, anonymized
// (only city/country tags reach storage, like measurements), written to the
// "rtt_stream" measurement. Called from queue workers; the TSDB write path
// has its own lock.
func (p *Pipeline) onTSSample(s *core.TSSample) {
	echoCity, peerCity := "Unknown", "Unknown"
	if rec, ok := p.cfg.GeoDB.Lookup(s.Echoer); ok {
		echoCity = rec.City
	}
	if rec, ok := p.cfg.GeoDB.Lookup(s.Peer); ok {
		peerCity = rec.City
	}
	pt := tsdb.Point{
		Name: "rtt_stream",
		Tags: []tsdb.Tag{
			{Key: "echoer_city", Value: echoCity},
			{Key: "peer_city", Value: peerCity},
			{Key: "mode", Value: "ts"},
		},
		Fields: []tsdb.Field{{Key: "rtt_ms", Value: float64(s.RTT) / 1e6}},
		Time:   s.At,
	}
	if err := p.DB.Write(&pt); err != nil {
		// Same ledger as the sink: a lost sample (DB closing under a
		// late queue worker) must show up in DBWriteErrors, not vanish.
		p.sinkWriteErrors.Add(1)
		return
	}
	p.tsSamples.Add(1)
}

// seqSinkAdapter routes seq-tracker output from the engine's queue workers
// into the pipeline's storage path.
type seqSinkAdapter struct{ p *Pipeline }

func (a seqSinkAdapter) EmitSeq(s *core.SeqSample) { a.p.onSeqSample(s) }

func (a seqSinkAdapter) EmitLoss(ev *core.LossEvent) { a.p.onLossEvent(ev) }

// onSeqSample stores one sequence-matched RTT sample into the same
// "rtt_stream" measurement as timestamp samples — geo-enriched, IPs
// dropped — distinguished by the mode tag (seq, or onedir for
// asymmetric-tap estimates), so rollups, anomaly detection, dashboards and
// federation consume the new series unchanged. The ACK sender (for onedir,
// the invisible peer) fills the echoer_city position: both trackers put
// the measured side of the path in that tag.
func (p *Pipeline) onSeqSample(s *core.SeqSample) {
	respCity, peerCity := "Unknown", "Unknown"
	if rec, ok := p.cfg.GeoDB.Lookup(s.Responder); ok {
		respCity = rec.City
	}
	if rec, ok := p.cfg.GeoDB.Lookup(s.Peer); ok {
		peerCity = rec.City
	}
	mode := "seq"
	if s.OneDir {
		mode = "onedir"
	}
	pt := tsdb.Point{
		Name: "rtt_stream",
		Tags: []tsdb.Tag{
			{Key: "echoer_city", Value: respCity},
			{Key: "peer_city", Value: peerCity},
			{Key: "mode", Value: mode},
		},
		Fields: []tsdb.Field{{Key: "rtt_ms", Value: float64(s.RTT) / 1e6}},
		Time:   s.At,
	}
	if err := p.DB.Write(&pt); err != nil {
		p.sinkWriteErrors.Add(1)
		return
	}
	p.seqSamples.Add(1)
}

// onLossEvent stores one classified loss/quality event as a "tcp_loss"
// point (count=1 per event, so any time-window sum is an event count),
// tagged with the anonymized endpoints and the class: retrans, rto or
// dupack.
func (p *Pipeline) onLossEvent(ev *core.LossEvent) {
	srcCity, dstCity := "Unknown", "Unknown"
	if rec, ok := p.cfg.GeoDB.Lookup(ev.Src); ok {
		srcCity = rec.City
	}
	if rec, ok := p.cfg.GeoDB.Lookup(ev.Dst); ok {
		dstCity = rec.City
	}
	pt := tsdb.Point{
		Name: "tcp_loss",
		Tags: []tsdb.Tag{
			{Key: "src_city", Value: srcCity},
			{Key: "dst_city", Value: dstCity},
			{Key: "kind", Value: ev.Kind.String()},
		},
		Fields: []tsdb.Field{{Key: "count", Value: 1}},
		Time:   ev.At,
	}
	if err := p.DB.Write(&pt); err != nil {
		p.sinkWriteErrors.Add(1)
		return
	}
	p.lossPoints.Add(1)
}

// Run operates the pipeline until ctx is cancelled. It returns ctx.Err().
func (p *Pipeline) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	wg.Add(3 + len(p.sinkShards))
	go func() {
		defer wg.Done()
		p.Engine.Run(ctx)
	}()
	go func() {
		defer wg.Done()
		p.Enricher.Run(ctx)
	}()
	go func() {
		defer wg.Done()
		p.runSinkDispatcher(ctx)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.runRollupFlusher(ctx)
	}()
	for _, sh := range p.sinkShards {
		go func(sh *sinkShard) {
			defer wg.Done()
			p.runSinkWorker(ctx, sh)
		}(sh)
	}
	if p.Remote != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Remote.Run(ctx)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// runRollupFlusher coalesces accumulated rollup deltas into one frame per
// interval for the rollup-stream audience. A final flush on shutdown is
// deliberately skipped: the Hub is closing with the pipeline anyway.
func (p *Pipeline) runRollupFlusher(ctx context.Context) {
	iv := p.cfg.RollupStreamInterval
	if iv <= 0 {
		iv = 250 * time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.FlushRollupStream()
		}
	}
}

// FlushRollupStream immediately coalesces accumulated rollup deltas into
// one frame and broadcasts it to the rollup-stream audience (no-op when
// nothing accumulated). Called by the interval flusher; exported for
// end-of-trace harnesses that want the tail without waiting an interval.
func (p *Pipeline) FlushRollupStream() {
	if data := p.Delta.Flush(); data != nil {
		p.Hub.BroadcastRollup(data)
	}
}

// SpikeEvents returns latency-spike detections so far.
func (p *Pipeline) SpikeEvents() []anomaly.Event {
	p.spikeEventsMu.Lock()
	defer p.spikeEventsMu.Unlock()
	out := make([]anomaly.Event, len(p.spikeEvents))
	copy(out, p.spikeEvents)
	return out
}

// FloodEvents returns SYN-flood detections so far (thread-safe snapshot).
func (p *Pipeline) FloodEvents() []anomaly.Event {
	p.floodMu.Lock()
	defer p.floodMu.Unlock()
	evs := p.Flood.Events()
	out := make([]anomaly.Event, len(evs))
	copy(out, evs)
	return out
}

// FlushDetectors closes all open detector buckets (end of trace).
func (p *Pipeline) FlushDetectors() {
	p.floodMu.Lock()
	p.Flood.Flush()
	p.floodMu.Unlock()
	p.Surge.Flush()
	if p.SNMP != nil {
		p.snmpMu.Lock()
		p.SNMP.Flush()
		p.snmpMu.Unlock()
	}
}

// Stats is a full-pipeline counter snapshot. Together the sink counters
// account for every enriched measurement: while the pipeline runs, each one
// published on the bus is either stored (DBPoints), lost at the sink
// subscription's high-water mark (SinkDrop), malformed (SinkDecodeErrors),
// or behind the retention horizon at write time (DBDropped) — no steady-
// state loss class is silent. The ledger balances once the sink has drained;
// cancelling Run abandons whatever is still queued inside the sink stage
// uncounted (shutdown, like any crash, loses in-flight work).
type Stats struct {
	Port     nic.Stats
	Queues   []nic.QueueStats // per-RX-queue counters and ring watermarks
	Engine   core.TableStats
	Enricher analytics.Stats
	BusPub   uint64
	BusDrop  uint64
	HubSent  uint64
	HubDrop  uint64
	// RollupFrames counts coalesced delta frames broadcast to the
	// /ws?stream=rollup audience and RollupCells the per-(pair, bucket)
	// cells they carried — the read-side cost of the rollup feed, which is
	// O(cells per interval) regardless of event rate or client count.
	RollupFrames uint64
	RollupCells  uint64
	DBPoints     uint64
	// DBDropped counts points the TSDB refused at write time because they
	// were older than the retention horizon (previously discarded from
	// the snapshot entirely).
	DBDropped uint64
	// SinkDecodeErrors counts enriched bus messages the sink could not
	// decode (previously swallowed by a bare continue).
	SinkDecodeErrors uint64
	// SinkDrop counts enriched messages lost at the sink subscription's
	// high-water mark — the collector-can't-keep-up signal (previously
	// never surfaced).
	SinkDrop uint64
	// DBWriteErrors counts measurements whose TSDB write failed: a Close
	// racing a sink worker, or — on a persistent pipeline — a WAL append
	// failure (full disk) refusing the write. Counted so neither loss
	// class is silent.
	DBWriteErrors uint64
	TSSamples     uint64 // timestamp-echo RTT samples stored (when TrackTimestamps)
	// SeqSamples counts sequence-matched RTT samples stored (mode=seq and
	// mode=onedir) and LossPoints the stored tcp_loss events, both part of
	// the same must-not-vanish accounting as DBWriteErrors.
	SeqSamples uint64
	LossPoints uint64
	// TSRTT and Seq are the trackers' own counters (per-queue snapshots
	// aggregated at burst boundaries, zero when the tracker is off):
	// insert/match/unmatched/eviction behaviour plus the seq tracker's
	// retrans/rto/dupack classification totals.
	TSRTT core.TSStats
	Seq   core.SeqStats
	// Sketch is the bounded-memory tier's ledger (zero with BudgetBytes=0
	// when Config.FlowTableBytes is unset): promotions/demotions, flows
	// held sketch-only because the byte cap was reached, the induced error
	// bound, and the live/fixed byte accounting against the budget.
	Sketch core.SketchStats
	// QueryCache reports the TSDB query result cache counters. Zero value
	// with Enabled=false when Config.QueryCacheBytes is unset.
	QueryCache tsdb.CacheStats
	// Persist reports the TSDB durability counters (WAL appends/fsyncs,
	// what the last restart recovered, checkpoint age). Zero value with
	// Enabled=false when Config.Persist is unset.
	Persist tsdb.PersistStats
	// Remote reports the federation probe's remote-write counters —
	// connection health, acked/unacked/resent batches, spool footprint and
	// the backpressure loss class (Dropped). Enabled=false without
	// Config.RemoteWrite.
	Remote fed.ProbeStats
	// Fed reports the federation aggregator: totals plus per-probe
	// liveness, lag and sequence-dedup counters. Enabled=false without
	// Config.Federate.
	Fed fed.AggStats
}

// Stats snapshots every stage.
func (p *Pipeline) Stats() Stats {
	pub, drop := p.Bus.Stats()
	sent, hdrop := p.Hub.Stats()
	rframes, rcells := p.Delta.Stats()
	written, dbDropped := p.DB.WriteStats()
	queues := make([]nic.QueueStats, p.Port.NumQueues())
	for q := range queues {
		queues[q] = p.Port.QueueStats(q)
	}
	var remote fed.ProbeStats
	if p.Remote != nil {
		remote = p.Remote.Stats()
	}
	var agg fed.AggStats
	if p.Agg != nil {
		agg = p.Agg.Stats()
	}
	return Stats{
		Port:             p.Port.Stats(),
		Queues:           queues,
		Engine:           p.Engine.Stats(),
		Enricher:         p.Enricher.Stats(),
		BusPub:           pub,
		BusDrop:          drop,
		HubSent:          sent,
		HubDrop:          hdrop,
		RollupFrames:     rframes,
		RollupCells:      rcells,
		DBPoints:         written,
		DBDropped:        dbDropped,
		SinkDecodeErrors: p.sinkDecodeErrors.Load(),
		SinkDrop:         p.sinkSub.Dropped(),
		DBWriteErrors:    p.sinkWriteErrors.Load(),
		TSSamples:        p.tsSamples.Load(),
		SeqSamples:       p.seqSamples.Load(),
		LossPoints:       p.lossPoints.Load(),
		TSRTT:            p.Engine.TSStats(),
		Seq:              p.Engine.SeqStats(),
		Sketch:           p.Engine.SketchStats(),
		QueryCache:       p.DB.CacheStats(),
		Persist:          p.DB.PersistStats(),
		Remote:           remote,
		Fed:              agg,
	}
}

// Close releases resources (federation endpoints, bus, hub, DB). The
// aggregator closes first so no remote batch races the DB shutdown, then
// the probe (persisting its spool ack watermark), then the local stages.
// On a persistent pipeline the DB close flushes and fsyncs the WAL so a
// clean shutdown loses nothing; the returned error is the first failure.
func (p *Pipeline) Close() error {
	var err error
	if p.Agg != nil {
		err = p.Agg.Close()
	}
	if p.Remote != nil {
		if e := p.Remote.Close(); err == nil {
			err = e
		}
	}
	p.Bus.Close()
	p.Hub.Close()
	if e := p.DB.Close(); err == nil {
		err = e
	}
	return err
}
