package ruru

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/mq"
	"ruru/internal/tsdb"
)

// enrichedPayloads pre-marshals one enriched measurement per city pair so
// tests can publish straight onto the enriched topic (the bus does not copy
// payloads and the sink treats them as read-only, so reuse is safe).
func enrichedPayloads(pairs int) [][]byte {
	out := make([][]byte, pairs)
	for i := range out {
		e := analytics.Enriched{
			Time: 1e9, InternalNs: 15e6, ExternalNs: 130e6, TotalNs: 145e6,
			Src: analytics.Endpoint{City: fmt.Sprintf("SrcCity%d", i), CountryCode: "NZ",
				Lat: -36.85, Lon: 174.76, ASN: uint32(64000 + i)},
			Dst: analytics.Endpoint{City: fmt.Sprintf("DstCity%d", i), CountryCode: "US",
				Lat: 34.05, Lon: -118.24, ASN: 64500},
		}
		out[i] = analytics.MarshalEnriched(nil, &e)
	}
	return out
}

func sinkAccounted(st Stats) uint64 {
	return st.DBPoints + st.SinkDrop + st.SinkDecodeErrors + st.DBDropped + st.DBWriteErrors
}

func TestSinkShardedLosslessAndAccounted(t *testing.T) {
	// The tentpole contract: at a sustained load driven straight into the
	// enriched topic, the 4-worker sink stores every measurement — zero
	// subscription drops — and every decode failure is counted, so the
	// ledger published == stored + named-losses balances exactly.
	w := newWorld(t)
	p, err := New(Config{GeoDB: w.DB(), Queues: 1, SinkWorkers: 4, SinkBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx)
	}()

	const (
		total   = 1 << 16
		garbage = 64
	)
	payloads := enrichedPayloads(32)
	// Producer flow control: keep the in-flight window under half the sink
	// subscription HWM (1<<15), so overflow would indicate the sink losing
	// ground it never recovers — any HWM drop fails the test.
	published := 0
	for published < total {
		st := p.Stats()
		if uint64(published)-sinkAccounted(st) > 1<<14 {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		p.Bus.Publish(mq.Message{Topic: TopicEnriched, Payload: payloads[published%len(payloads)]})
		published++
	}
	// Malformed enriched messages must be counted, not silently skipped.
	for i := 0; i < garbage; i++ {
		p.Bus.Publish(mq.Message{Topic: TopicEnriched, Payload: []byte{0xff, 0x00, 0x01}})
	}

	deadline := time.After(30 * time.Second)
	for {
		st := p.Stats()
		if sinkAccounted(st) >= total+garbage {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("sink never drained: %+v", st)
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-done

	st := p.Stats()
	if st.SinkDrop != 0 {
		t.Fatalf("sink dropped %d measurements at the HWM", st.SinkDrop)
	}
	if st.DBPoints != total {
		t.Fatalf("stored %d/%d points", st.DBPoints, total)
	}
	if st.SinkDecodeErrors != garbage {
		t.Fatalf("decode errors = %d, want %d", st.SinkDecodeErrors, garbage)
	}
	if st.DBDropped != 0 {
		t.Fatalf("unexpected retention drops: %d", st.DBDropped)
	}
	// Every series landed, one per city pair.
	res, err := p.DB.Execute(tsdb.Query{
		Measurement: "latency", Field: "total_ms", Start: 0, End: 2e9,
		GroupBy: "src_city", Aggs: []tsdb.AggKind{tsdb.AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(payloads) {
		t.Fatalf("%d src_city groups, want %d", len(res), len(payloads))
	}
	counted := 0
	for _, r := range res {
		counted += r.Buckets[0].Count
	}
	if counted != total {
		t.Fatalf("query counts %d/%d points", counted, total)
	}
}

func TestSinkConcurrencyStress(t *testing.T) {
	// Race contract for the whole sink stage (run under -race in CI):
	// several producers publishing onto the enriched topic, the sharded
	// workers feeding spike/surge/flood detectors and per-shard arc rings,
	// while Stats, RecentArcs, SpikeEvents, FloodEvents and TSDB queries
	// all read concurrently — plus synchronous Feed calls racing the
	// workers on the same shards.
	w := newWorld(t)
	p, err := New(Config{GeoDB: w.DB(), Queues: 1, SinkWorkers: 4, SinkBatch: 32, ArcsBuffer: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx)
	}()

	const (
		producers   = 4
		perProducer = 8000
	)
	payloads := enrichedPayloads(16)
	var wg sync.WaitGroup
	for n := 0; n < producers; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				p.Bus.Publish(mq.Message{Topic: TopicEnriched, Payload: payloads[(n+i)%len(payloads)]})
				if i%97 == 0 { // sprinkle malformed frames in
					p.Bus.Publish(mq.Message{Topic: TopicEnriched, Payload: []byte("junk")})
				}
			}
		}(n)
	}
	var feeds uint64
	wg.Add(1)
	go func() { // synchronous Feed racing the workers
		defer wg.Done()
		e := analytics.Enriched{
			TotalNs: 145e6,
			Src:     analytics.Endpoint{City: "SrcCity0", Lat: 1, Lon: 2},
			Dst:     analytics.Endpoint{City: "DstCity0", Lat: 3, Lon: 4},
		}
		for i := 0; i < 2000; i++ {
			e.Time = int64(i) * 1e6
			p.Feed(&e)
			feeds++
		}
	}()
	readersStop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-readersStop:
				return
			default:
				p.Stats()
				p.RecentArcs(100)
				p.SpikeEvents()
				p.FloodEvents()
				p.DB.Execute(tsdb.Query{
					Measurement: "latency", Field: "total_ms",
					Start: 0, End: 10e9, GroupBy: "src_city",
					Aggs: []tsdb.AggKind{tsdb.AggCount, tsdb.AggP95},
				})
			}
		}
	}()
	wg.Wait()

	published := uint64(producers*perProducer) + uint64(producers)*(perProducer/97+1)
	deadline := time.After(30 * time.Second)
	for {
		st := p.Stats()
		// Feeds wrote synchronously, so they are already inside DBPoints;
		// wait for the bus-published remainder to drain through workers.
		if sinkAccounted(st) >= published+feeds {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("ledger never balanced: %+v (published %d + feeds %d)", st, published, feeds)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(readersStop)
	readers.Wait()
	cancel()
	<-done

	st := p.Stats()
	if got := sinkAccounted(st); got != published+feeds {
		t.Fatalf("ledger: accounted %d, want %d (stats %+v)", got, published+feeds, st)
	}
	if st.SinkDecodeErrors == 0 {
		t.Fatal("junk frames were not counted as decode errors")
	}
	if arcs := p.RecentArcs(0); len(arcs) == 0 {
		t.Fatal("no arcs retained")
	}
}

func TestSinkRetentionDropAccounted(t *testing.T) {
	// A point behind the retention horizon is refused at write time and
	// must surface in Stats().DBDropped (previously discarded silently).
	w := newWorld(t)
	p, err := New(Config{GeoDB: w.DB(), ShardDuration: 1e9, Retention: 10e9})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	e := analytics.Enriched{
		TotalNs: 145e6,
		Src:     analytics.Endpoint{City: "Auckland"},
		Dst:     analytics.Endpoint{City: "Los Angeles"},
	}
	e.Time = 100e9
	p.Feed(&e)
	e.Time = 1e9 // far behind the horizon set by the first point
	p.Feed(&e)
	st := p.Stats()
	if st.DBPoints != 1 || st.DBDropped != 1 {
		t.Fatalf("DBPoints=%d DBDropped=%d, want 1/1", st.DBPoints, st.DBDropped)
	}
}
