package ruru

// Sketch-tier golden replays: the bounded-memory tier must be invisible
// when the cap is generous — every measurement bit-identical to the
// exact-mode oracle — and fully accounted when the cap is the deterministic
// minimum (zero exact headroom: every flow refused into sketch-only state,
// none silently lost).

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ruru/internal/nic"
	"ruru/internal/pcap"
)

// TestGoldenSketchGenerousCap replays the ENTIRE corpus (handshake and
// continuous-RTT scenarios alike) with a 64MiB cap: admission admits every
// flow, so counters, measurements, RTT samples and loss events must all
// stay bit-identical to the exact-mode oracles, with zero sketch-only
// flows. This pins "the sketch tier does not perturb measurement" — the
// cap only starts trading accuracy when it binds.
func TestGoldenSketchGenerousCap(t *testing.T) {
	w := goldenWorld(t)
	ents, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden corpus missing (generate with RURU_UPDATE=1): %v", err)
	}
	ran := 0
	for _, ent := range ents {
		name, ok := cutSuffix(ent.Name(), ".pcap")
		if !ok {
			continue
		}
		ran++
		t.Run(name, func(t *testing.T) {
			var oracle goldenOracle
			oj, err := os.ReadFile(goldenPath(name, ".oracle.json"))
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(oj, &oracle); err != nil {
				t.Fatal(err)
			}
			replayGolden(t, w, goldenPath(name, ".pcap"), &oracle, 64<<20)
		})
	}
	if ran == 0 {
		t.Fatal("no golden captures found")
	}
}

// TestGoldenSketchTightCap replays the no-SYN-retransmission handshake
// captures with the MINIMUM legal cap: the tiers' fixed overhead consumes
// the whole budget, so the exact tables have zero byte headroom and every
// flow must live sketch-only. The ledger must balance exactly —
// Completed + SketchOnlyFlows == SYNs, nothing vanishes — while the heavy-
// hitter summaries still rank every flow by volume. (Captures with SYN
// retransmission are excluded by construction: a refused flow's
// retransmitted SYN is a second admission attempt, which the event-counted
// ledger would double-count relative to SYNs.)
func TestGoldenSketchTightCap(t *testing.T) {
	w := goldenWorld(t)
	const queues = 2
	cap := MinFlowTableBytes(queues)
	for _, name := range []string{"ipv4_basic", "ipv6", "vlan_qinq"} {
		t.Run(name, func(t *testing.T) {
			var oracle goldenOracle
			oj, err := os.ReadFile(goldenPath(name, ".oracle.json"))
			if err != nil {
				t.Fatalf("golden corpus missing (generate with RURU_UPDATE=1): %v", err)
			}
			if err := json.Unmarshal(oj, &oracle); err != nil {
				t.Fatal(err)
			}
			if oracle.SYNRetrans != 0 {
				t.Fatalf("capture %s has SYN retransmissions; tight-cap ledger requires none", name)
			}

			p, err := New(Config{
				GeoDB:  w.DB(),
				Queues: queues, Overflow: nic.Block, SinkWorkers: 2,
				FlowTableBytes: cap,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- p.Run(ctx) }()

			f, err := os.Open(goldenPath(name, ".pcap"))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			r, err := pcap.NewReader(f)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pcap.ReplayToPort(ctx, r, p.Port, pcap.ReplayOptions{Burst: 16}); err != nil {
				t.Fatalf("replay: %v", err)
			}

			// Drain: all TCP packets processed and every SYN's admission
			// refusal recorded.
			deadline := time.Now().Add(10 * time.Second)
			var st Stats
			for {
				st = p.Stats()
				if st.Engine.Packets == oracle.TCPPackets &&
					st.Sketch.SketchOnlyFlows == oracle.SYNs {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("drain timeout: packets %d/%d, sketch-only %d/%d",
						st.Engine.Packets, oracle.TCPPackets,
						st.Sketch.SketchOnlyFlows, oracle.SYNs)
				}
				time.Sleep(2 * time.Millisecond)
			}

			// Zero exact headroom: nothing completes, nothing is charged,
			// and the ledger accounts every flow: each SYN either completed
			// or went sketch-only.
			if st.Engine.Completed != 0 {
				t.Errorf("completed %d handshakes with zero exact headroom", st.Engine.Completed)
			}
			if st.Engine.Completed+st.Sketch.SketchOnlyFlows != oracle.SYNs {
				t.Errorf("ledger violated: completed %d + sketch-only %d != syns %d",
					st.Engine.Completed, st.Sketch.SketchOnlyFlows, oracle.SYNs)
			}
			if st.Sketch.LiveBytes != 0 {
				t.Errorf("live bytes %d with zero exact headroom", st.Sketch.LiveBytes)
			}
			if st.Sketch.SketchBytes > st.Sketch.BudgetBytes || st.Sketch.BudgetBytes > cap {
				t.Errorf("budget accounting: fixed %d, budget %d, cap %d",
					st.Sketch.SketchBytes, st.Sketch.BudgetBytes, cap)
			}
			if st.Sketch.Promoted != 0 || st.Sketch.Demoted != 0 {
				t.Errorf("promotions with zero headroom: %+v", st.Sketch)
			}

			// Shut down so the workers force-publish their final heavy-
			// hitter snapshots: the refused flows are still measured —
			// sketch-only means estimated, not dropped.
			cancel()
			<-done
			flows := p.TopFlows(0)
			if uint64(len(flows)) < oracle.SYNs {
				// Every scripted handshake flow must be ranked; captures may
				// carry extra TCP flows (orphan SYN-ACKs) that rank too.
				t.Fatalf("top-k tracks %d flows, want >= %d (one per scripted flow)",
					len(flows), oracle.SYNs)
			}
			for _, it := range flows {
				if it.Count == 0 {
					t.Errorf("flow %s ranked with zero volume", it.Key)
				}
			}
		})
	}
}
