package ruru

// delta.go — the rollup-delta accumulator behind /ws?stream=rollup.
//
// The live WebSocket feed scales O(measurements × clients): every enriched
// event is marshalled into a frame and queued for every connected browser,
// which is exactly the paper's firehose and exactly what falls over first
// when a wall of dashboards connects. Rollup-stream clients instead receive
// *pre-aggregated deltas*: sink workers fold each measurement into a
// per-(city-pair, time-bucket) cell, and a flusher coalesces everything
// accumulated over the flush interval into one frame for the whole rollup
// audience — O(buckets touched) per interval, independent of both the event
// rate and the client count. A client reconstructs the same per-pair tier
// state the TSDB's finest rollup holds by summing cells: deltas carry
// count/sum (additive) and min/max (monotone under merge), so
// incremental application is exact.

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"

	"ruru/internal/analytics"
)

// deltaKey identifies one accumulation cell: a city pair and the start of
// its time bucket (data clock, ns).
type deltaKey struct {
	pair  string
	start int64
}

// deltaCell is the increment accumulated for one key since the last flush.
type deltaCell struct {
	src, dst string
	count    uint64
	sum      float64 // ms
	min, max float64 // ms
}

// RollupBucket is one cell of a rollup-delta frame, JSON-shaped for the
// dashboard. Count/SumMs add across frames; MinMs/MaxMs merge by min/max.
type RollupBucket struct {
	Pair    string  `json:"pair"`
	SrcCity string  `json:"src_city"`
	DstCity string  `json:"dst_city"`
	Start   int64   `json:"start"`
	Count   uint64  `json:"count"`
	SumMs   float64 `json:"sum_ms"`
	MinMs   float64 `json:"min_ms"`
	MaxMs   float64 `json:"max_ms"`
}

// RollupFrame is the wire form of one flush: every cell touched since the
// previous frame, sorted by (pair, start).
type RollupFrame struct {
	Stream  string         `json:"stream"` // always "rollup"
	Width   int64          `json:"width"`  // bucket width, ns
	Buckets []RollupBucket `json:"buckets"`
}

// RollupDelta accumulates per-(pair, bucket) measurement increments between
// flushes. Safe for concurrent use: sink workers Add under an internal
// mutex (a leaf lock — nothing else is ever acquired under it), the flusher
// swaps the cell map out under the same lock and marshals outside it.
type RollupDelta struct {
	width int64

	mu    sync.Mutex
	cells map[deltaKey]*deltaCell

	frames atomic.Uint64 // frames flushed (non-empty only)
	fcells atomic.Uint64 // cells carried by those frames
}

// NewRollupDelta creates an accumulator with the given bucket width in
// nanoseconds (default 1s — the TSDB ladder's finest standard tier).
func NewRollupDelta(width int64) *RollupDelta {
	if width <= 0 {
		width = 1e9
	}
	return &RollupDelta{width: width, cells: make(map[deltaKey]*deltaCell)}
}

// Width returns the accumulator's bucket width in nanoseconds.
func (d *RollupDelta) Width() int64 { return d.width }

// Add folds one measurement into its cell.
func (d *RollupDelta) Add(e *analytics.Enriched) {
	ms := float64(e.TotalNs) / 1e6
	k := deltaKey{pair: pairKey(e), start: (e.Time / d.width) * d.width}
	d.mu.Lock()
	c := d.cells[k]
	if c == nil {
		c = &deltaCell{src: e.Src.City, dst: e.Dst.City, min: ms, max: ms}
		d.cells[k] = c
	} else {
		if ms < c.min {
			c.min = ms
		}
		if ms > c.max {
			c.max = ms
		}
	}
	c.count++
	c.sum += ms
	d.mu.Unlock()
}

// Flush drains every accumulated cell into one marshalled frame, returning
// nil when nothing accumulated since the last flush (no frame owed).
func (d *RollupDelta) Flush() []byte {
	d.mu.Lock()
	if len(d.cells) == 0 {
		d.mu.Unlock()
		return nil
	}
	cells := d.cells
	d.cells = make(map[deltaKey]*deltaCell, len(cells))
	d.mu.Unlock()

	frame := RollupFrame{Stream: "rollup", Width: d.width,
		Buckets: make([]RollupBucket, 0, len(cells))}
	for k, c := range cells {
		frame.Buckets = append(frame.Buckets, RollupBucket{
			Pair: k.pair, SrcCity: c.src, DstCity: c.dst, Start: k.start,
			Count: c.count, SumMs: c.sum, MinMs: c.min, MaxMs: c.max,
		})
	}
	sort.Slice(frame.Buckets, func(i, j int) bool {
		a, b := &frame.Buckets[i], &frame.Buckets[j]
		if a.Pair != b.Pair {
			return a.Pair < b.Pair
		}
		return a.Start < b.Start
	})
	data, err := json.Marshal(frame)
	if err != nil {
		return nil
	}
	d.frames.Add(1)
	d.fcells.Add(uint64(len(frame.Buckets)))
	return data
}

// Stats returns (frames flushed, total cells carried by them).
func (d *RollupDelta) Stats() (frames, cells uint64) {
	return d.frames.Load(), d.fcells.Load()
}
