package ruru

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/anomaly"
	"ruru/internal/core"
	"ruru/internal/gen"
	"ruru/internal/geo"
	"ruru/internal/nic"
	"ruru/internal/pcap"
	"ruru/internal/tsdb"
	"ruru/internal/ws"
)

func newWorld(t testing.TB) *geo.World {
	t.Helper()
	w, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil GeoDB accepted")
	}
}

func TestPipelineBackpressureKnobs(t *testing.T) {
	// The full pipeline assembled with every new ingest knob: Block
	// overflow (lossless source), multi-consumer rings, tuned adaptive
	// polling, burst drive. Deliberately small queues so the source
	// actually backpressures, which under Drop would lose frames.
	w := newWorld(t)
	p, err := New(Config{
		GeoDB:            w.DB(),
		Queues:           2,
		QueueDepth:       64,
		Burst:            16,
		Overflow:         nic.Block,
		MultiConsumer:    true,
		Poll:             core.PollConfig{Spin: 8, Yield: 4, SleepMax: 20 * time.Microsecond},
		HandshakeTimeout: 60e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx)
	}()

	g, err := gen.New(gen.Config{
		Seed: 5, World: w, FlowRate: 300, Duration: 2e9, DataSegments: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	injected := g.RunToPortBurst(p.Port, 32)
	if injected == 0 {
		t.Fatal("nothing injected")
	}
	completing := 0
	for _, tr := range g.Truths() {
		if tr.Completes {
			completing++
		}
	}
	deadline := time.After(15 * time.Second)
	for {
		st := p.Stats()
		if st.Engine.Completed >= uint64(completing) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("timeout: %d/%d completed (stats %+v)", st.Engine.Completed, completing, st)
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-done

	st := p.Stats()
	if st.Port.Imissed != 0 || st.Port.NoMbuf != 0 {
		t.Fatalf("block-policy source lost frames: %+v", st.Port)
	}
	if st.Port.Ipackets != uint64(injected) {
		t.Fatalf("port saw %d packets, injected %d", st.Port.Ipackets, injected)
	}
	// The per-queue snapshot must account for every packet and expose the
	// ring introspection (the tiny queues must have hit their watermark).
	var perQueue uint64
	sawPressure := false
	for _, qs := range st.Queues {
		perQueue += qs.Ipackets
		if qs.Capacity != 64 {
			t.Fatalf("queue capacity %d, want 64", qs.Capacity)
		}
		if qs.Watermark == qs.Capacity {
			sawPressure = true
		}
	}
	if perQueue != st.Port.Ipackets {
		t.Fatalf("per-queue sum %d != port total %d", perQueue, st.Port.Ipackets)
	}
	if !sawPressure {
		t.Logf("note: no queue ever filled (watermarks %+v)", st.Queues)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	w := newWorld(t)
	p, err := New(Config{
		GeoDB:            w.DB(),
		Queues:           4,
		HandshakeTimeout: 60e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx)
	}()

	g, err := gen.New(gen.Config{
		Seed: 1, World: w, FlowRate: 300, Duration: 3e9,
		DataSegments: 1, UDPRate: 100, MidstreamRate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	injected := g.RunToPort(p.Port, false)
	if injected == 0 {
		t.Fatal("nothing injected")
	}
	completing := 0
	for _, tr := range g.Truths() {
		if tr.Completes {
			completing++
		}
	}

	// Wait for all measurements to flow through to the TSDB.
	deadline := time.After(15 * time.Second)
	for {
		st := p.Stats()
		if st.DBPoints >= uint64(completing) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("timeout: %d/%d points (stats %+v)", st.DBPoints, completing, st)
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	<-done

	st := p.Stats()
	if st.Engine.Completed != uint64(completing) {
		t.Fatalf("engine completed %d, want %d", st.Engine.Completed, completing)
	}
	if st.Enricher.Out != uint64(completing) {
		t.Fatalf("enricher out %d, want %d", st.Enricher.Out, completing)
	}
	if st.Port.Imissed != 0 || st.Port.NoMbuf != 0 {
		t.Fatalf("packet loss in un-paced test: %+v", st.Port)
	}
	// Loss accounting: every completed measurement must be stored or show
	// up in a named drop/error counter — nothing silent.
	if st.Engine.Completed != st.DBPoints+st.SinkDrop+st.SinkDecodeErrors+st.DBDropped {
		t.Fatalf("measurement ledger does not balance: completed=%d db=%d sinkDrop=%d decodeErr=%d dbDropped=%d",
			st.Engine.Completed, st.DBPoints, st.SinkDrop, st.SinkDecodeErrors, st.DBDropped)
	}
	if st.SinkDrop != 0 || st.SinkDecodeErrors != 0 || st.DBDropped != 0 {
		t.Fatalf("unexpected sink losses: %+v", st)
	}

	// TSDB must answer a Grafana-style query over the virtual window.
	res, err := p.DB.Execute(tsdb.Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: 120e9,
		Aggs: []tsdb.AggKind{tsdb.AggCount, tsdb.AggMean, tsdb.AggMedian},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Buckets[0].Count != completing {
		t.Fatalf("query count = %+v, want %d", res, completing)
	}
	if mean := res[0].Buckets[0].Aggs[tsdb.AggMean]; mean <= 0 || mean > 2000 {
		t.Fatalf("mean latency %vms implausible", mean)
	}

	// Arc feed must hold recent measurements with real coordinates.
	arcs := p.RecentArcs(10)
	if len(arcs) == 0 {
		t.Fatal("no arcs")
	}
	for _, a := range arcs {
		if a.Src.Lat == 0 && a.Src.Lon == 0 {
			t.Fatalf("arc without coordinates: %+v", a)
		}
	}
}

func TestPipelineGroupByCityQueries(t *testing.T) {
	w := newWorld(t)
	p, err := New(Config{GeoDB: w.DB(), Queues: 2, HandshakeTimeout: 60e9})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)

	// Clients only in Auckland (city 0), servers only in LA (city 1):
	// the deployment scenario.
	g, err := gen.New(gen.Config{
		Seed: 2, World: w, FlowRate: 200, Duration: 2e9,
		ClientCities: []int{0}, ServerCities: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.RunToPort(p.Port, false)
	completing := 0
	for _, tr := range g.Truths() {
		if tr.Completes {
			completing++
		}
	}
	deadline := time.After(15 * time.Second)
	for p.Stats().DBPoints < uint64(completing) {
		select {
		case <-deadline:
			t.Fatalf("timeout: %+v", p.Stats())
		case <-time.After(10 * time.Millisecond):
		}
	}
	res, err := p.DB.Execute(tsdb.Query{
		Measurement: "latency", Field: "external_ms",
		Start: 0, End: 120e9, GroupBy: "src_city",
		Aggs: []tsdb.AggKind{tsdb.AggCount, tsdb.AggMedian},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Group != "Auckland" {
		t.Fatalf("groups: %+v", res)
	}
	// AKL→LA external RTT: ~10,480 km → propagation RTT ≈ 2·10480/200·1.8
	// ≈ 190ms; with last-mile it lands somewhere in 150..400ms.
	med := res[0].Buckets[0].Aggs[tsdb.AggMedian]
	if med < 100 || med > 500 {
		t.Fatalf("AKL→LAX median external %vms implausible", med)
	}
}

func TestPipelineFeedDirect(t *testing.T) {
	w := newWorld(t)
	p, err := New(Config{GeoDB: w.DB()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	e := analytics.Enriched{
		Time: 1e9, TotalNs: 145e6, InternalNs: 15e6, ExternalNs: 130e6,
		Src: analytics.Endpoint{City: "Auckland", CountryCode: "NZ", Lat: -36.85, Lon: 174.76},
		Dst: analytics.Endpoint{City: "Los Angeles", CountryCode: "US", Lat: 34.05, Lon: -118.24},
	}
	for i := 0; i < 100; i++ {
		e.Time = int64(i) * 1e9
		p.Feed(&e)
	}
	if st := p.Stats(); st.DBPoints != 100 {
		t.Fatalf("points = %d", st.DBPoints)
	}
	arcs := p.RecentArcs(0)
	if len(arcs) != 100 {
		t.Fatalf("arcs = %d", len(arcs))
	}
	// Ring buffer wraps at capacity.
	p2, _ := New(Config{GeoDB: w.DB(), ArcsBuffer: 8})
	defer p2.Close()
	for i := 0; i < 20; i++ {
		e.Time = int64(i)
		p2.Feed(&e)
	}
	arcs = p2.RecentArcs(0)
	if len(arcs) != 8 {
		t.Fatalf("wrapped arcs = %d", len(arcs))
	}
	if arcs[len(arcs)-1].Time != 19 {
		t.Fatalf("newest arc time = %d, want 19", arcs[len(arcs)-1].Time)
	}
	if arcs[0].Time != 12 {
		t.Fatalf("oldest arc time = %d, want 12", arcs[0].Time)
	}
}

func TestPipelineSpikeDetection(t *testing.T) {
	w := newWorld(t)
	p, err := New(Config{GeoDB: w.DB()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	e := analytics.Enriched{
		Src: analytics.Endpoint{City: "Auckland"},
		Dst: analytics.Endpoint{City: "Los Angeles"},
	}
	for i := 0; i < 500; i++ {
		e.Time = int64(i) * 1e8
		e.TotalNs = 145e6 + int64(i%7)*1e6
		p.Feed(&e)
	}
	e.Time = 501e8
	e.TotalNs = 4145e6 // the firewall glitch
	p.Feed(&e)
	evs := p.SpikeEvents()
	if len(evs) != 1 {
		t.Fatalf("%d spike events", len(evs))
	}
	if evs[0].Value != 4145e6 {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestPipelinePcapRoundTrip(t *testing.T) {
	// The replay path an operator uses: generate → pcap → read back →
	// inject → measure. Results must be identical to direct injection.
	w := newWorld(t)
	mkGen := func() *gen.Generator {
		g, err := gen.New(gen.Config{Seed: 31, World: w, FlowRate: 100, Duration: 2e9, UDPRate: 20})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	var buf bytes.Buffer
	if _, err := mkGen().WritePcap(&buf); err != nil {
		t.Fatal(err)
	}

	p, err := New(Config{GeoDB: w.DB(), Queues: 2, HandshakeTimeout: 60e9})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)

	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rp pcap.Packet
	injected := 0
	for {
		if err := r.ReadPacket(&rp); err != nil {
			break
		}
		for {
			before := p.Port.Stats()
			p.Port.Inject(rp.Data, rp.Timestamp)
			after := p.Port.Stats()
			if after.Ipackets > before.Ipackets || after.Ierrors > before.Ierrors {
				break
			}
		}
		injected++
	}
	completing := 0
	g2 := mkGen()
	var pk gen.Packet
	for g2.Next(&pk) {
	}
	for _, tr := range g2.Truths() {
		if tr.Completes {
			completing++
		}
	}
	deadline := time.After(15 * time.Second)
	for p.Stats().DBPoints < uint64(completing) {
		select {
		case <-deadline:
			t.Fatalf("timeout: %d/%d points after %d injected", p.Stats().DBPoints, completing, injected)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestPipelineWebSocketLiveFeedFromPackets(t *testing.T) {
	// Full path: packets → engine → bus → enricher → hub → real WS client.
	w := newWorld(t)
	p, err := New(Config{GeoDB: w.DB(), Queues: 2, HandshakeTimeout: 60e9})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)

	srv := httptest.NewServer(p.Hub)
	defer srv.Close()
	client, err := ws.Dial("ws://" + strings.TrimPrefix(srv.URL, "http://") + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	deadline := time.Now().Add(2 * time.Second)
	for p.Hub.Clients() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no hub client")
		}
		time.Sleep(5 * time.Millisecond)
	}

	g, err := gen.New(gen.Config{Seed: 37, World: w, FlowRate: 100, Duration: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	go g.RunToPort(p.Port, false)

	// Frames are JSON arrays: each sink worker coalesces up to SinkBatch
	// measurements per broadcast.
	client.SetReadDeadline(time.Now().Add(10 * time.Second))
	received := 0
	for received < 20 {
		op, msg, err := client.ReadMessage()
		if err != nil {
			t.Fatalf("after %d measurements: %v", received, err)
		}
		if op != ws.OpText {
			t.Fatalf("opcode %v", op)
		}
		var batch []analytics.Enriched
		if err := json.Unmarshal(msg, &batch); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if len(batch) == 0 {
			t.Fatal("empty broadcast frame")
		}
		for _, e := range batch {
			if e.TotalNs <= 0 || e.Src.City == "" {
				t.Fatalf("incomplete measurement: %+v", e)
			}
			received++
		}
	}
}

func TestPipelineContinuousRTT(t *testing.T) {
	// TrackTimestamps: packets with TS options → TSTracker → geo-tagged
	// "rtt_stream" points in the TSDB.
	w := newWorld(t)
	p, err := New(Config{
		GeoDB: w.DB(), Queues: 2, HandshakeTimeout: 60e9,
		TrackTimestamps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)

	g, err := gen.New(gen.Config{
		Seed: 41, World: w, FlowRate: 100, Duration: 2e9,
		DataSegments: 2, DataSpacing: 300e6,
		MidstreamRate:     20,
		EmitTCPTimestamps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.RunToPort(p.Port, false)

	deadline := time.After(15 * time.Second)
	for p.Stats().TSSamples < 100 {
		select {
		case <-deadline:
			t.Fatalf("too few TS samples: %+v", p.Stats())
		case <-time.After(10 * time.Millisecond):
		}
	}
	// Give in-flight samples a moment, then query the stream measurement.
	time.Sleep(100 * time.Millisecond)
	res, err := p.DB.Execute(tsdb.Query{
		Measurement: "rtt_stream", Field: "rtt_ms",
		Start: 0, End: 120e9,
		GroupBy: "echoer_city",
		Aggs:    []tsdb.AggKind{tsdb.AggCount, tsdb.AggMedian},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 2 {
		t.Fatalf("only %d echoer cities", len(res))
	}
	totalCount := 0
	for _, r := range res {
		if r.Group == "" || r.Group == "Unknown" {
			t.Fatalf("unenriched group %q", r.Group)
		}
		totalCount += r.Buckets[0].Count
	}
	if totalCount < 100 {
		t.Fatalf("only %d stream points", totalCount)
	}
}

// TestTSSampleWriteErrorAccounting pins the onTSSample accounting fix: a
// stream sample that can no longer be written (DB closed under a late
// queue worker) must land in DBWriteErrors, not count as stored.
func TestTSSampleWriteErrorAccounting(t *testing.T) {
	w := newWorld(t)
	p, err := New(Config{GeoDB: w.DB(), Queues: 1, TrackTimestamps: true})
	if err != nil {
		t.Fatal(err)
	}
	s := &core.TSSample{RTT: 2e6, At: 1e9}
	p.onTSSample(s)
	if got := p.Stats().TSSamples; got != 1 {
		t.Fatalf("TSSamples = %d, want 1", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p.onTSSample(s)
	st := p.Stats()
	if st.TSSamples != 1 {
		t.Fatalf("TSSamples counted an unwritable sample: %d", st.TSSamples)
	}
	if st.DBWriteErrors != 1 {
		t.Fatalf("DBWriteErrors = %d, want 1", st.DBWriteErrors)
	}
}

func TestPipelineFloodDetectionViaExpiry(t *testing.T) {
	// SYN-flood packets (never answered) must travel: port → engine →
	// expiry → flood detector. Uses a short handshake timeout so eviction
	// happens within the trace.
	w := newWorld(t)
	p, err := New(Config{
		GeoDB:            w.DB(),
		Queues:           2,
		HandshakeTimeout: 1e9,
		Flood: anomaly.FloodConfig{
			BucketNs: 1e9, MinCount: 100, Ratio: 6, WarmupBuckets: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)

	g, err := gen.New(gen.Config{
		Seed: 3, World: w, FlowRate: 20, Duration: 25e9,
		Floods: []gen.FloodSpec{
			// Ambient internet scanning noise: a few unanswered SYNs/s
			// throughout, which is what the detector's baseline learns.
			{Start: 0, Duration: 25e9, Rate: 5, SrcCity: 7, DstCity: 2},
			// The attack.
			{Start: 10e9, Duration: 3e9, Rate: 2000, SrcCity: 4, DstCity: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.RunToPort(p.Port, false)

	// Wait until the engine has drained and evicted the flood entries.
	deadline := time.After(15 * time.Second)
	for {
		st := p.Stats()
		if st.Engine.ExpiredAwait > 3000 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("flood entries never expired: %+v", st.Engine)
		case <-time.After(20 * time.Millisecond):
		}
	}
	p.FlushDetectors()
	if evs := p.FloodEvents(); len(evs) == 0 {
		t.Fatal("SYN flood not detected")
	}
}
