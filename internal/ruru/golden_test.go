package ruru

// The golden pcap corpus: small synthetic captures checked in under
// testdata/golden/*.pcap, each paired with a hand-scripted per-flow oracle
// (*.oracle.json) — exact engine counters, exact per-flow latencies, exact
// loss-accounting ledger. TestGoldenCorpus replays each capture through
// the FULL pipeline (nic classify → engine → enricher → sharded sink →
// TSDB) and compares bit-exact, which pins the end-to-end measurement
// semantics: VLAN/QinQ decapsulation, IPv6, SYN|RST handling, retransmit
// timestamping ("measure from the first SYN"), midstream/orphan
// classification, and the Completed == DBPoints + losses ledger.
//
// The oracles are computed from the capture SCRIPTS (the timestamps the
// frames were built with), never from pipeline output — a regression in
// the pipeline cannot regenerate itself into the expectation. Regenerate
// both artifacts after an intentional format change with RURU_UPDATE=1
// (see docs/TESTING.md).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"ruru/internal/geo"
	"ruru/internal/nic"
	"ruru/internal/pcap"
	"ruru/internal/pkt"
)

// goldenFlow is one expected completed measurement.
type goldenFlow struct {
	SrcCity    string `json:"src_city"`
	SrcCC      string `json:"src_cc"`
	DstCity    string `json:"dst_city"`
	DstCC      string `json:"dst_cc"`
	InternalNs int64  `json:"internal_ns"`
	ExternalNs int64  `json:"external_ns"`
	TotalNs    int64  `json:"total_ns"`
	Time       int64  `json:"time"`
	SYNRetrans uint8  `json:"syn_retrans"`
	IPv6       bool   `json:"ipv6"`
}

// goldenOracle is one capture's full expectation.
type goldenOracle struct {
	// Packets is the number of records in the capture file; Replayed how
	// many the replayer must deliver (fewer only for Truncated captures,
	// which must also surface pcap.ErrTruncated).
	Packets   int  `json:"packets"`
	Replayed  int  `json:"replayed"`
	Truncated bool `json:"truncated,omitempty"`
	// Deterministic engine counters (expiry-driven ones excluded — they
	// depend on amortized sweep timing, not on the capture).
	TCPPackets    uint64 `json:"tcp_packets"`
	SYNs          uint64 `json:"syns"`
	SYNRetrans    uint64 `json:"syn_retrans"`
	SYNACKs       uint64 `json:"synacks"`
	OrphanSYNACKs uint64 `json:"orphan_synacks"`
	Completed     uint64 `json:"completed"`
	Aborted       uint64 `json:"aborted"`
	MidstreamACKs uint64 `json:"midstream_acks"`
	InvalidACKs   uint64 `json:"invalid_acks"`
	// Flows are the expected measurements, sorted by (Time, SrcCity).
	Flows []goldenFlow `json:"flows"`
}

type goldenCapture struct {
	name   string
	pcap   []byte
	oracle goldenOracle
}

// capB scripts one capture: frames into an in-memory pcap, expectations
// into the oracle, both from the same arguments.
type capB struct {
	tb    testing.TB
	world *geo.World
	buf   bytes.Buffer
	pw    *pcap.Writer
	o     goldenOracle
}

func newCapB(tb testing.TB, w *geo.World) *capB {
	b := &capB{tb: tb, world: w}
	pw, err := pcap.NewWriter(&b.buf, 0)
	if err != nil {
		tb.Fatal(err)
	}
	b.pw = pw
	return b
}

// tcp builds one TCP frame (optionally QinQ-encapsulated) and records it.
func (b *capB) tcp(ts int64, qinq bool, spec pkt.TCPFrameSpec) {
	spec.SrcMAC, spec.DstMAC = pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}
	buf := make([]byte, pkt.TCPFrameLen(&spec)+pkt.VLANTagLen)
	n, err := pkt.BuildTCPFrame(buf, &spec)
	if err != nil {
		b.tb.Fatal(err)
	}
	frame := buf[:n]
	if qinq {
		// Splice an outer 802.1ad tag ahead of the inner 802.1Q one the
		// builder emitted: [MACs][0x88a8 outer][0x8100 inner][payload].
		q := make([]byte, 0, n+pkt.VLANTagLen)
		q = append(q, frame[:12]...)
		q = append(q, 0x88, 0xa8, 0x00, 200)
		q = append(q, frame[12:]...)
		frame = q
	}
	if err := b.pw.WritePacket(ts, frame); err != nil {
		b.tb.Fatal(err)
	}
	b.o.Packets++
	b.o.TCPPackets++
}

// udp writes one UDP background frame (parsed, ignored by the engine).
func (b *capB) udp(ts int64, src, dst int) {
	buf := make([]byte, 256)
	n, err := pkt.BuildUDPFrame(buf, pkt.MAC{2, 1}, pkt.MAC{2, 2},
		b.world.Addr(src, 1, 9), b.world.Addr(dst, 1, 9), 5353, 5353, []byte("mdns"))
	if err != nil {
		b.tb.Fatal(err)
	}
	if err := b.pw.WritePacket(ts, buf[:n]); err != nil {
		b.tb.Fatal(err)
	}
	b.o.Packets++
}

// hsOpts tweaks one scripted handshake.
type hsOpts struct {
	v6        bool
	vlan      uint16
	qinq      bool
	retransAt int64 // retransmit the SYN at this ts (0 = no retransmit)
	rstAt     int64 // abort with a server RST at this ts instead of completing
	dataAt    int64 // client data segment after completion (counts midstream)
	synOnly   bool  // leave the handshake dangling after the SYN
}

// handshake scripts one flow: SYN at t0, SYN-ACK after extNs, ACK after a
// further intNs — and the oracle rows those frames must produce.
func (b *capB) handshake(t0 int64, srcCity, dstCity int, host uint32, cport, sport uint16, extNs, intNs int64, o hsOpts) {
	var cAddr, sAddr = b.world.Addr(srcCity, 0, host), b.world.Addr(dstCity, 0, host+1000)
	if o.v6 {
		cAddr, sAddr = b.world.Addr6(srcCity, 0, uint64(host)), b.world.Addr6(dstCity, 0, uint64(host)+1000)
	}
	clientISN := 1000 + host
	serverISN := 900000 + host
	retrans := uint8(0)

	b.tcp(t0, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: cAddr, Dst: sAddr,
		SrcPort: cport, DstPort: sport, Seq: clientISN, Flags: pkt.TCPSyn, Window: 65535})
	b.o.SYNs++
	if o.synOnly {
		return
	}
	if o.retransAt > 0 {
		b.tcp(o.retransAt, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: cAddr, Dst: sAddr,
			SrcPort: cport, DstPort: sport, Seq: clientISN, Flags: pkt.TCPSyn, Window: 65535})
		b.o.SYNRetrans++
		retrans = 1
	}
	b.tcp(t0+extNs, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: sAddr, Dst: cAddr,
		SrcPort: sport, DstPort: cport, Seq: serverISN, Ack: clientISN + 1,
		Flags: pkt.TCPSyn | pkt.TCPAck, Window: 65535})
	b.o.SYNACKs++
	if o.rstAt > 0 {
		b.tcp(o.rstAt, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: sAddr, Dst: cAddr,
			SrcPort: sport, DstPort: cport, Seq: serverISN + 1, Flags: pkt.TCPRst})
		b.o.Aborted++
		return
	}
	ackTS := t0 + extNs + intNs
	b.tcp(ackTS, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: cAddr, Dst: sAddr,
		SrcPort: cport, DstPort: sport, Seq: clientISN + 1, Ack: serverISN + 1,
		Flags: pkt.TCPAck, Window: 65535})
	b.o.Completed++
	srcC, dstC := &b.world.Cities[srcCity], &b.world.Cities[dstCity]
	b.o.Flows = append(b.o.Flows, goldenFlow{
		SrcCity: srcC.Name, SrcCC: srcC.CountryCode,
		DstCity: dstC.Name, DstCC: dstC.CountryCode,
		InternalNs: intNs, ExternalNs: extNs, TotalNs: extNs + intNs,
		Time: ackTS, SYNRetrans: retrans, IPv6: o.v6,
	})
	if o.dataAt > 0 {
		b.tcp(o.dataAt, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: cAddr, Dst: sAddr,
			SrcPort: cport, DstPort: sport, Seq: clientISN + 1, Ack: serverISN + 1,
			Flags: pkt.TCPAck, Window: 65535, Payload: []byte("GET /")})
		b.o.MidstreamACKs++
	}
}

// orphanSYNACK scripts a SYN-ACK with no pending SYN (asymmetric route).
func (b *capB) orphanSYNACK(ts int64, srcCity, dstCity int, host uint32) {
	b.tcp(ts, false, pkt.TCPFrameSpec{
		Src: b.world.Addr(srcCity, 0, host), Dst: b.world.Addr(dstCity, 0, host+1),
		SrcPort: 443, DstPort: 55555, Seq: 1, Ack: 2,
		Flags: pkt.TCPSyn | pkt.TCPAck})
	b.o.OrphanSYNACKs++
}

func (b *capB) finish(name string) goldenCapture {
	if err := b.pw.Flush(); err != nil {
		b.tb.Fatal(err)
	}
	o := b.o
	o.Replayed = o.Packets
	sort.SliceStable(o.Flows, func(i, j int) bool {
		if o.Flows[i].Time != o.Flows[j].Time {
			return o.Flows[i].Time < o.Flows[j].Time
		}
		return o.Flows[i].SrcCity < o.Flows[j].SrcCity
	})
	return goldenCapture{name: name, pcap: append([]byte(nil), b.buf.Bytes()...), oracle: o}
}

// goldenWorld is the deterministic geo mapping the captures are scripted
// against: no mislabels, so CityOf ground truth equals DB lookups.
func goldenWorld(tb testing.TB) *geo.World {
	w, err := geo.NewWorld(geo.WorldOptions{Seed: 1, MislabelFraction: 0})
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

// goldenCaptures scripts the whole corpus. City indexes: 0 Auckland,
// 1 Los Angeles, 4 Sydney, 12 Tokyo.
func goldenCaptures(tb testing.TB) []goldenCapture {
	w := goldenWorld(tb)
	var caps []goldenCapture

	// Plain IPv4: three complete handshakes, one trailing data segment,
	// one orphan SYN-ACK, one UDP background frame.
	b := newCapB(tb, w)
	b.handshake(0, 0, 1, 10, 40001, 443, 140e6, 15e6, hsOpts{dataAt: 170e6})
	b.handshake(5e6, 4, 1, 20, 40002, 443, 40e6, 10e6, hsOpts{})
	b.handshake(10e6, 0, 12, 30, 40003, 8443, 180e6, 20e6, hsOpts{})
	b.orphanSYNACK(60e6, 1, 0, 70)
	b.udp(65e6, 0, 1)
	caps = append(caps, b.finish("ipv4_basic"))

	// IPv6: two complete handshakes.
	b = newCapB(tb, w)
	b.handshake(0, 0, 1, 40, 50001, 443, 130e6, 12e6, hsOpts{v6: true})
	b.handshake(8e6, 12, 4, 50, 50002, 443, 95e6, 18e6, hsOpts{v6: true})
	caps = append(caps, b.finish("ipv6"))

	// VLAN + QinQ: one 802.1Q flow, one double-tagged flow.
	b = newCapB(tb, w)
	b.handshake(0, 0, 1, 60, 41001, 443, 150e6, 16e6, hsOpts{vlan: 42})
	b.handshake(4e6, 4, 12, 61, 41002, 443, 110e6, 14e6, hsOpts{vlan: 100, qinq: true})
	caps = append(caps, b.finish("vlan_qinq"))

	// SYN|RST abort semantics: a handshake aborted by RST after the
	// SYN-ACK, a lone SYN|RST (must not insert), a dangling SYN, and one
	// complete flow to prove the table survived.
	b = newCapB(tb, w)
	b.handshake(0, 0, 1, 80, 42001, 443, 50e6, 10e6, hsOpts{rstAt: 65e6})
	b.tcp(5e6, false, pkt.TCPFrameSpec{ // SYN|RST: the PR-2 regression
		Src: w.Addr(1, 0, 81), Dst: w.Addr(0, 0, 82),
		SrcPort: 43001, DstPort: 443, Seq: 7, Flags: pkt.TCPSyn | pkt.TCPRst})
	b.handshake(10e6, 4, 1, 83, 42002, 443, 45e6, 9e6, hsOpts{synOnly: true})
	b.handshake(15e6, 0, 12, 84, 42003, 443, 175e6, 21e6, hsOpts{})
	caps = append(caps, b.finish("syn_rst"))

	// Retransmitted handshake: latency measured from the FIRST SYN.
	b = newCapB(tb, w)
	b.handshake(0, 0, 1, 90, 44001, 443, 90e6, 13e6, hsOpts{retransAt: 30e6})
	b.handshake(6e6, 4, 1, 91, 44002, 443, 60e6, 11e6, hsOpts{})
	caps = append(caps, b.finish("retrans"))

	// Truncated capture: the ipv4-shaped script cut mid-record (tcpdump
	// killed mid-write). Everything before the cut must still be measured
	// and the replayer must report pcap.ErrTruncated, not fail.
	b = newCapB(tb, w)
	b.handshake(0, 0, 1, 95, 45001, 443, 120e6, 17e6, hsOpts{})
	b.handshake(5e6, 4, 12, 96, 45002, 443, 85e6, 12e6, hsOpts{})
	full := b.finish("truncated")
	full.pcap = full.pcap[:len(full.pcap)-9] // tear the final record
	full.oracle.Truncated = true
	full.oracle.Replayed = full.oracle.Packets - 1
	// The torn final frame was the second handshake's ACK: unwind that
	// flow's completion (it sorts FIRST by time, so filter by identity).
	full.oracle.TCPPackets--
	full.oracle.Completed--
	kept := full.oracle.Flows[:0]
	for _, fl := range full.oracle.Flows {
		if fl.SrcCity != "Sydney" {
			kept = append(kept, fl)
		}
	}
	full.oracle.Flows = kept
	caps = append(caps, full)

	return caps
}

func goldenPath(name, ext string) string {
	return filepath.Join("testdata", "golden", name+ext)
}

// TestWriteGoldenCorpus regenerates testdata/golden from the scripts.
// Run with RURU_UPDATE=1; skipped otherwise.
func TestWriteGoldenCorpus(t *testing.T) {
	if os.Getenv("RURU_UPDATE") == "" {
		t.Skip("set RURU_UPDATE=1 to regenerate the golden corpus")
	}
	if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCaptures(t) {
		if err := os.WriteFile(goldenPath(c.name, ".pcap"), c.pcap, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := json.MarshalIndent(c.oracle, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(c.name, ".oracle.json"), append(j, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenCorpus replays every checked-in capture through the full
// pipeline and compares engine counters, per-flow measurements and the
// loss ledger bit-exact against the checked-in oracle.
func TestGoldenCorpus(t *testing.T) {
	w := goldenWorld(t)
	ents, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden corpus missing (generate with RURU_UPDATE=1): %v", err)
	}
	ran := 0
	for _, ent := range ents {
		name, ok := cutSuffix(ent.Name(), ".pcap")
		if !ok {
			continue
		}
		ran++
		t.Run(name, func(t *testing.T) {
			var oracle goldenOracle
			oj, err := os.ReadFile(goldenPath(name, ".oracle.json"))
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(oj, &oracle); err != nil {
				t.Fatal(err)
			}
			replayGolden(t, w, goldenPath(name, ".pcap"), &oracle)
		})
	}
	if ran == 0 {
		t.Fatal("no golden captures found")
	}
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) < len(suffix) || s[len(s)-len(suffix):] != suffix {
		return s, false
	}
	return s[:len(s)-len(suffix)], true
}

func replayGolden(t *testing.T, w *geo.World, path string, oracle *goldenOracle) {
	t.Helper()
	p, err := New(Config{
		GeoDB:  w.DB(),
		Queues: 2, Overflow: nic.Block, SinkWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	n, err := pcap.ReplayToPort(ctx, r, p.Port, pcap.ReplayOptions{Burst: 16})
	if oracle.Truncated {
		if !errors.Is(err, pcap.ErrTruncated) {
			t.Fatalf("replay err = %v, want ErrTruncated", err)
		}
	} else if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != oracle.Replayed {
		t.Fatalf("replayed %d frames, want %d", n, oracle.Replayed)
	}

	// Drain: every completed measurement must land in the TSDB (Block
	// policy + tiny load = zero loss anywhere downstream).
	deadline := time.Now().Add(10 * time.Second)
	var st Stats
	for {
		st = p.Stats()
		if st.Engine.Completed == oracle.Completed && st.DBPoints == oracle.Completed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain timeout: engine completed %d / db %d, want %d",
				st.Engine.Completed, st.DBPoints, oracle.Completed)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Engine counters, bit-exact.
	checks := []struct {
		name      string
		got, want uint64
	}{
		{"tcp packets", st.Engine.Packets, oracle.TCPPackets},
		{"syns", st.Engine.SYNs, oracle.SYNs},
		{"syn retrans", st.Engine.SYNRetrans, oracle.SYNRetrans},
		{"synacks", st.Engine.SYNACKs, oracle.SYNACKs},
		{"orphan synacks", st.Engine.OrphanSYNACKs, oracle.OrphanSYNACKs},
		{"completed", st.Engine.Completed, oracle.Completed},
		{"aborted", st.Engine.Aborted, oracle.Aborted},
		{"midstream acks", st.Engine.MidstreamACKs, oracle.MidstreamACKs},
		{"invalid acks", st.Engine.InvalidACKs, oracle.InvalidACKs},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("engine %s = %d, want %d", c.name, c.got, c.want)
		}
	}

	// Loss-accounting ledger: nothing silently lost downstream.
	if st.Engine.Completed != st.DBPoints+st.SinkDrop+st.SinkDecodeErrors+st.DBDropped+st.DBWriteErrors {
		t.Errorf("ledger violated: completed %d != db %d + drops %d/%d/%d/%d",
			st.Engine.Completed, st.DBPoints, st.SinkDrop, st.SinkDecodeErrors, st.DBDropped, st.DBWriteErrors)
	}

	// Per-flow measurements, bit-exact, in (Time, SrcCity) order.
	arcs := p.RecentArcs(0)
	sort.SliceStable(arcs, func(i, j int) bool {
		if arcs[i].Time != arcs[j].Time {
			return arcs[i].Time < arcs[j].Time
		}
		return arcs[i].Src.City < arcs[j].Src.City
	})
	if len(arcs) != len(oracle.Flows) {
		t.Fatalf("measured %d flows, want %d", len(arcs), len(oracle.Flows))
	}
	for i, want := range oracle.Flows {
		got := goldenFlow{
			SrcCity: arcs[i].Src.City, SrcCC: arcs[i].Src.CountryCode,
			DstCity: arcs[i].Dst.City, DstCC: arcs[i].Dst.CountryCode,
			InternalNs: arcs[i].InternalNs, ExternalNs: arcs[i].ExternalNs,
			TotalNs: arcs[i].TotalNs, Time: arcs[i].Time,
			SYNRetrans: arcs[i].SYNRetrans, IPv6: arcs[i].IPv6,
		}
		if got != want {
			t.Errorf("flow %d:\n got  %+v\n want %+v", i, got, want)
		}
	}
}
