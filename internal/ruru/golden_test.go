package ruru

// The golden pcap corpus: small synthetic captures checked in under
// testdata/golden/*.pcap, each paired with a hand-scripted per-flow oracle
// (*.oracle.json) — exact engine counters, exact per-flow latencies, exact
// loss-accounting ledger. TestGoldenCorpus replays each capture through
// the FULL pipeline (nic classify → engine → enricher → sharded sink →
// TSDB) and compares bit-exact, which pins the end-to-end measurement
// semantics: VLAN/QinQ decapsulation, IPv6, SYN|RST handling, retransmit
// timestamping ("measure from the first SYN"), midstream/orphan
// classification, and the completed == stored + losses ledger.
//
// The continuous-RTT scenarios (seq_rtt, retrans_rto, onedir,
// ts_seq_mixed) extend the same discipline to the PR-8 trackers: the
// oracle carries the tracker configuration plus every expected rtt_stream
// sample and tcp_loss event, and the test reads them back out of a TSDB
// snapshot — pinning sequence-matched sampling, Karn's rule, fast-retrans
// vs RTO classification, asymmetric-tap (onedir) self-pairing, and the
// no-double-counting contract when both trackers share a pipeline.
//
// The oracles are computed from the capture SCRIPTS (the timestamps the
// frames were built with), never from pipeline output — a regression in
// the pipeline cannot regenerate itself into the expectation. Regenerate
// both artifacts after an intentional format change with RURU_UPDATE=1
// (see docs/TESTING.md).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"ruru/internal/geo"
	"ruru/internal/nic"
	"ruru/internal/pcap"
	"ruru/internal/pkt"
	"ruru/internal/tsdb"
)

// goldenRTT is one expected continuous-RTT sample as stored in the TSDB's
// "rtt_stream" measurement: the measured side of the path (the timestamp
// echoer, the ACK sender, or — mode=onedir — the invisible peer) fills the
// echoer_city tag for every mode. RTTs are scripted in whole milliseconds
// so the ns→ms float conversion is exact and the comparison can be
// bit-exact.
type goldenRTT struct {
	Mode       string  `json:"mode"`
	EchoerCity string  `json:"echoer_city"`
	PeerCity   string  `json:"peer_city"`
	RTTMs      float64 `json:"rtt_ms"`
	Time       int64   `json:"time"`
}

// goldenLoss is one expected loss/quality event as stored in "tcp_loss".
type goldenLoss struct {
	SrcCity string `json:"src_city"`
	DstCity string `json:"dst_city"`
	Kind    string `json:"kind"`
	Time    int64  `json:"time"`
}

// goldenFlow is one expected completed measurement.
type goldenFlow struct {
	SrcCity    string `json:"src_city"`
	SrcCC      string `json:"src_cc"`
	DstCity    string `json:"dst_city"`
	DstCC      string `json:"dst_cc"`
	InternalNs int64  `json:"internal_ns"`
	ExternalNs int64  `json:"external_ns"`
	TotalNs    int64  `json:"total_ns"`
	Time       int64  `json:"time"`
	SYNRetrans uint8  `json:"syn_retrans"`
	IPv6       bool   `json:"ipv6"`
}

// goldenOracle is one capture's full expectation.
type goldenOracle struct {
	// Packets is the number of records in the capture file; Replayed how
	// many the replayer must deliver (fewer only for Truncated captures,
	// which must also surface pcap.ErrTruncated).
	Packets   int  `json:"packets"`
	Replayed  int  `json:"replayed"`
	Truncated bool `json:"truncated,omitempty"`
	// Deterministic engine counters (expiry-driven ones excluded — they
	// depend on amortized sweep timing, not on the capture).
	TCPPackets    uint64 `json:"tcp_packets"`
	SYNs          uint64 `json:"syns"`
	SYNRetrans    uint64 `json:"syn_retrans"`
	SYNACKs       uint64 `json:"synacks"`
	OrphanSYNACKs uint64 `json:"orphan_synacks"`
	Completed     uint64 `json:"completed"`
	Aborted       uint64 `json:"aborted"`
	MidstreamACKs uint64 `json:"midstream_acks"`
	InvalidACKs   uint64 `json:"invalid_acks"`
	// Flows are the expected measurements, sorted by (Time, SrcCity).
	Flows []goldenFlow `json:"flows"`

	// Continuous-RTT scenario knobs and expectations. TrackSeq/TrackTS/
	// OneDirection configure the replay pipeline (the oracle, not the
	// test code, decides how its capture must be measured); zero values
	// keep the original handshake-only replay. The sample and loss lists
	// are asserted bit-exact against a TSDB snapshot.
	TrackSeq     bool `json:"track_seq,omitempty"`
	TrackTS      bool `json:"track_ts,omitempty"`
	OneDirection bool `json:"one_direction,omitempty"`
	// Tracker counters, oracle-exact.
	TSSamples  uint64 `json:"ts_samples,omitempty"`
	SeqSamples uint64 `json:"seq_samples,omitempty"`
	Retrans    uint64 `json:"retrans,omitempty"`
	RTO        uint64 `json:"rto,omitempty"`
	DupACK     uint64 `json:"dupack,omitempty"`
	// RTTSamples sorted by (Time, EchoerCity, Mode); LossEvents by
	// (Time, SrcCity, Kind).
	RTTSamples []goldenRTT  `json:"rtt_samples,omitempty"`
	LossEvents []goldenLoss `json:"loss_events,omitempty"`
}

type goldenCapture struct {
	name   string
	pcap   []byte
	oracle goldenOracle
}

// capB scripts one capture: frames into an in-memory pcap, expectations
// into the oracle, both from the same arguments.
type capB struct {
	tb    testing.TB
	world *geo.World
	buf   bytes.Buffer
	pw    *pcap.Writer
	o     goldenOracle
}

func newCapB(tb testing.TB, w *geo.World) *capB {
	b := &capB{tb: tb, world: w}
	pw, err := pcap.NewWriter(&b.buf, 0)
	if err != nil {
		tb.Fatal(err)
	}
	b.pw = pw
	return b
}

// tcp builds one TCP frame (optionally QinQ-encapsulated) and records it.
func (b *capB) tcp(ts int64, qinq bool, spec pkt.TCPFrameSpec) {
	spec.SrcMAC, spec.DstMAC = pkt.MAC{2, 0, 0, 0, 0, 1}, pkt.MAC{2, 0, 0, 0, 0, 2}
	buf := make([]byte, pkt.TCPFrameLen(&spec)+pkt.VLANTagLen)
	n, err := pkt.BuildTCPFrame(buf, &spec)
	if err != nil {
		b.tb.Fatal(err)
	}
	frame := buf[:n]
	if qinq {
		// Splice an outer 802.1ad tag ahead of the inner 802.1Q one the
		// builder emitted: [MACs][0x88a8 outer][0x8100 inner][payload].
		q := make([]byte, 0, n+pkt.VLANTagLen)
		q = append(q, frame[:12]...)
		q = append(q, 0x88, 0xa8, 0x00, 200)
		q = append(q, frame[12:]...)
		frame = q
	}
	if err := b.pw.WritePacket(ts, frame); err != nil {
		b.tb.Fatal(err)
	}
	b.o.Packets++
	b.o.TCPPackets++
}

// udp writes one UDP background frame (parsed, ignored by the engine).
func (b *capB) udp(ts int64, src, dst int) {
	buf := make([]byte, 256)
	n, err := pkt.BuildUDPFrame(buf, pkt.MAC{2, 1}, pkt.MAC{2, 2},
		b.world.Addr(src, 1, 9), b.world.Addr(dst, 1, 9), 5353, 5353, []byte("mdns"))
	if err != nil {
		b.tb.Fatal(err)
	}
	if err := b.pw.WritePacket(ts, buf[:n]); err != nil {
		b.tb.Fatal(err)
	}
	b.o.Packets++
}

// hsOpts tweaks one scripted handshake.
type hsOpts struct {
	v6        bool
	vlan      uint16
	qinq      bool
	retransAt int64 // retransmit the SYN at this ts (0 = no retransmit)
	rstAt     int64 // abort with a server RST at this ts instead of completing
	dataAt    int64 // client data segment after completion (counts midstream)
	synOnly   bool  // leave the handshake dangling after the SYN
}

// handshake scripts one flow: SYN at t0, SYN-ACK after extNs, ACK after a
// further intNs — and the oracle rows those frames must produce.
func (b *capB) handshake(t0 int64, srcCity, dstCity int, host uint32, cport, sport uint16, extNs, intNs int64, o hsOpts) {
	var cAddr, sAddr = b.world.Addr(srcCity, 0, host), b.world.Addr(dstCity, 0, host+1000)
	if o.v6 {
		cAddr, sAddr = b.world.Addr6(srcCity, 0, uint64(host)), b.world.Addr6(dstCity, 0, uint64(host)+1000)
	}
	clientISN := 1000 + host
	serverISN := 900000 + host
	retrans := uint8(0)

	b.tcp(t0, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: cAddr, Dst: sAddr,
		SrcPort: cport, DstPort: sport, Seq: clientISN, Flags: pkt.TCPSyn, Window: 65535})
	b.o.SYNs++
	if o.synOnly {
		return
	}
	if o.retransAt > 0 {
		b.tcp(o.retransAt, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: cAddr, Dst: sAddr,
			SrcPort: cport, DstPort: sport, Seq: clientISN, Flags: pkt.TCPSyn, Window: 65535})
		b.o.SYNRetrans++
		retrans = 1
	}
	b.tcp(t0+extNs, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: sAddr, Dst: cAddr,
		SrcPort: sport, DstPort: cport, Seq: serverISN, Ack: clientISN + 1,
		Flags: pkt.TCPSyn | pkt.TCPAck, Window: 65535})
	b.o.SYNACKs++
	if o.rstAt > 0 {
		b.tcp(o.rstAt, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: sAddr, Dst: cAddr,
			SrcPort: sport, DstPort: cport, Seq: serverISN + 1, Flags: pkt.TCPRst})
		b.o.Aborted++
		return
	}
	ackTS := t0 + extNs + intNs
	b.tcp(ackTS, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: cAddr, Dst: sAddr,
		SrcPort: cport, DstPort: sport, Seq: clientISN + 1, Ack: serverISN + 1,
		Flags: pkt.TCPAck, Window: 65535})
	b.o.Completed++
	srcC, dstC := &b.world.Cities[srcCity], &b.world.Cities[dstCity]
	b.o.Flows = append(b.o.Flows, goldenFlow{
		SrcCity: srcC.Name, SrcCC: srcC.CountryCode,
		DstCity: dstC.Name, DstCC: dstC.CountryCode,
		InternalNs: intNs, ExternalNs: extNs, TotalNs: extNs + intNs,
		Time: ackTS, SYNRetrans: retrans, IPv6: o.v6,
	})
	if o.dataAt > 0 {
		b.tcp(o.dataAt, o.qinq, pkt.TCPFrameSpec{VLAN: o.vlan, Src: cAddr, Dst: sAddr,
			SrcPort: cport, DstPort: sport, Seq: clientISN + 1, Ack: serverISN + 1,
			Flags: pkt.TCPAck, Window: 65535, Payload: []byte("GET /")})
		b.o.MidstreamACKs++
	}
}

// seg writes one mid-stream segment of an established flow (the seq/ts
// trackers need no handshake) and accounts the handshake engine's view of
// it: every ACK-flagged, non-SYN, non-RST frame of an untracked flow is a
// midstream ACK. tsval/tsecr, when either is non-zero, attach a TCP
// timestamp option.
func (b *capB) seg(ts int64, src, dst netip.Addr, sp, dp uint16, flags uint8, seq, ack uint32, payload int, tsval, tsecr uint32) {
	spec := pkt.TCPFrameSpec{Src: src, Dst: dst, SrcPort: sp, DstPort: dp,
		Seq: seq, Ack: ack, Flags: flags, Window: 65535}
	if payload > 0 {
		spec.Payload = bytes.Repeat([]byte{0x5a}, payload)
	}
	if tsval != 0 || tsecr != 0 {
		var opt [pkt.TimestampOptionLen]byte
		spec.Options = append([]byte(nil), pkt.PutTimestampOption(opt[:], tsval, tsecr)...)
	}
	b.tcp(ts, false, spec)
	if flags&pkt.TCPRst == 0 && flags&pkt.TCPSyn == 0 && flags&pkt.TCPAck != 0 {
		b.o.MidstreamACKs++
	}
}

// expectRTT appends one hand-computed rtt_stream expectation.
func (b *capB) expectRTT(mode string, echoerCity, peerCity int, rttNs, at int64) {
	e, p := &b.world.Cities[echoerCity], &b.world.Cities[peerCity]
	b.o.RTTSamples = append(b.o.RTTSamples, goldenRTT{
		Mode: mode, EchoerCity: e.Name, PeerCity: p.Name,
		RTTMs: float64(rttNs) / 1e6, Time: at,
	})
	if mode == "ts" {
		b.o.TSSamples++
	} else {
		b.o.SeqSamples++
	}
}

// expectLoss appends one hand-computed tcp_loss expectation.
func (b *capB) expectLoss(kind string, srcCity, dstCity int, at int64) {
	s, d := &b.world.Cities[srcCity], &b.world.Cities[dstCity]
	b.o.LossEvents = append(b.o.LossEvents, goldenLoss{
		SrcCity: s.Name, DstCity: d.Name, Kind: kind, Time: at,
	})
	switch kind {
	case "retrans":
		b.o.Retrans++
	case "rto":
		b.o.RTO++
	default:
		b.o.DupACK++
	}
}

// orphanSYNACK scripts a SYN-ACK with no pending SYN (asymmetric route).
func (b *capB) orphanSYNACK(ts int64, srcCity, dstCity int, host uint32) {
	b.tcp(ts, false, pkt.TCPFrameSpec{
		Src: b.world.Addr(srcCity, 0, host), Dst: b.world.Addr(dstCity, 0, host+1),
		SrcPort: 443, DstPort: 55555, Seq: 1, Ack: 2,
		Flags: pkt.TCPSyn | pkt.TCPAck})
	b.o.OrphanSYNACKs++
}

func (b *capB) finish(name string) goldenCapture {
	if err := b.pw.Flush(); err != nil {
		b.tb.Fatal(err)
	}
	o := b.o
	o.Replayed = o.Packets
	sort.SliceStable(o.Flows, func(i, j int) bool {
		if o.Flows[i].Time != o.Flows[j].Time {
			return o.Flows[i].Time < o.Flows[j].Time
		}
		return o.Flows[i].SrcCity < o.Flows[j].SrcCity
	})
	sortGoldenRTT(o.RTTSamples)
	sortGoldenLoss(o.LossEvents)
	return goldenCapture{name: name, pcap: append([]byte(nil), b.buf.Bytes()...), oracle: o}
}

// sortGoldenRTT orders samples by (Time, EchoerCity, Mode) — the shared
// order of oracle and replay output.
func sortGoldenRTT(s []goldenRTT) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Time != s[j].Time {
			return s[i].Time < s[j].Time
		}
		if s[i].EchoerCity != s[j].EchoerCity {
			return s[i].EchoerCity < s[j].EchoerCity
		}
		return s[i].Mode < s[j].Mode
	})
}

// sortGoldenLoss orders loss events by (Time, SrcCity, Kind).
func sortGoldenLoss(s []goldenLoss) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Time != s[j].Time {
			return s[i].Time < s[j].Time
		}
		if s[i].SrcCity != s[j].SrcCity {
			return s[i].SrcCity < s[j].SrcCity
		}
		return s[i].Kind < s[j].Kind
	})
}

// goldenWorld is the deterministic geo mapping the captures are scripted
// against: no mislabels, so CityOf ground truth equals DB lookups.
func goldenWorld(tb testing.TB) *geo.World {
	w, err := geo.NewWorld(geo.WorldOptions{Seed: 1, MislabelFraction: 0})
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

// goldenCaptures scripts the whole corpus. City indexes: 0 Auckland,
// 1 Los Angeles, 4 Sydney, 12 Tokyo.
func goldenCaptures(tb testing.TB) []goldenCapture {
	w := goldenWorld(tb)
	var caps []goldenCapture

	// Plain IPv4: three complete handshakes, one trailing data segment,
	// one orphan SYN-ACK, one UDP background frame.
	b := newCapB(tb, w)
	b.handshake(0, 0, 1, 10, 40001, 443, 140e6, 15e6, hsOpts{dataAt: 170e6})
	b.handshake(5e6, 4, 1, 20, 40002, 443, 40e6, 10e6, hsOpts{})
	b.handshake(10e6, 0, 12, 30, 40003, 8443, 180e6, 20e6, hsOpts{})
	b.orphanSYNACK(60e6, 1, 0, 70)
	b.udp(65e6, 0, 1)
	caps = append(caps, b.finish("ipv4_basic"))

	// IPv6: two complete handshakes.
	b = newCapB(tb, w)
	b.handshake(0, 0, 1, 40, 50001, 443, 130e6, 12e6, hsOpts{v6: true})
	b.handshake(8e6, 12, 4, 50, 50002, 443, 95e6, 18e6, hsOpts{v6: true})
	caps = append(caps, b.finish("ipv6"))

	// VLAN + QinQ: one 802.1Q flow, one double-tagged flow.
	b = newCapB(tb, w)
	b.handshake(0, 0, 1, 60, 41001, 443, 150e6, 16e6, hsOpts{vlan: 42})
	b.handshake(4e6, 4, 12, 61, 41002, 443, 110e6, 14e6, hsOpts{vlan: 100, qinq: true})
	caps = append(caps, b.finish("vlan_qinq"))

	// SYN|RST abort semantics: a handshake aborted by RST after the
	// SYN-ACK, a lone SYN|RST (must not insert), a dangling SYN, and one
	// complete flow to prove the table survived.
	b = newCapB(tb, w)
	b.handshake(0, 0, 1, 80, 42001, 443, 50e6, 10e6, hsOpts{rstAt: 65e6})
	b.tcp(5e6, false, pkt.TCPFrameSpec{ // SYN|RST: the PR-2 regression
		Src: w.Addr(1, 0, 81), Dst: w.Addr(0, 0, 82),
		SrcPort: 43001, DstPort: 443, Seq: 7, Flags: pkt.TCPSyn | pkt.TCPRst})
	b.handshake(10e6, 4, 1, 83, 42002, 443, 45e6, 9e6, hsOpts{synOnly: true})
	b.handshake(15e6, 0, 12, 84, 42003, 443, 175e6, 21e6, hsOpts{})
	caps = append(caps, b.finish("syn_rst"))

	// Retransmitted handshake: latency measured from the FIRST SYN.
	b = newCapB(tb, w)
	b.handshake(0, 0, 1, 90, 44001, 443, 90e6, 13e6, hsOpts{retransAt: 30e6})
	b.handshake(6e6, 4, 1, 91, 44002, 443, 60e6, 11e6, hsOpts{})
	caps = append(caps, b.finish("retrans"))

	// Truncated capture: the ipv4-shaped script cut mid-record (tcpdump
	// killed mid-write). Everything before the cut must still be measured
	// and the replayer must report pcap.ErrTruncated, not fail.
	b = newCapB(tb, w)
	b.handshake(0, 0, 1, 95, 45001, 443, 120e6, 17e6, hsOpts{})
	b.handshake(5e6, 4, 12, 96, 45002, 443, 85e6, 12e6, hsOpts{})
	full := b.finish("truncated")
	full.pcap = full.pcap[:len(full.pcap)-9] // tear the final record
	full.oracle.Truncated = true
	full.oracle.Replayed = full.oracle.Packets - 1
	// The torn final frame was the second handshake's ACK: unwind that
	// flow's completion (it sorts FIRST by time, so filter by identity).
	full.oracle.TCPPackets--
	full.oracle.Completed--
	kept := full.oracle.Flows[:0]
	for _, fl := range full.oracle.Flows {
		if fl.SrcCity != "Sydney" {
			kept = append(kept, fl)
		}
	}
	full.oracle.Flows = kept
	caps = append(caps, full)

	// --- Continuous-RTT scenarios (PR 8). Mid-stream flows only: the seq
	// tracker needs no handshake, and every ACK-flagged frame lands in the
	// engine's midstream counter (accounted by seg). All RTTs are whole
	// milliseconds so stored rtt_ms values compare exactly.

	// seq_rtt: two established flows WITHOUT the TCP timestamp option —
	// invisible to the timestamp tracker — measured from data→ACK
	// sequence matching alone. Covers both directions of one flow, a
	// cumulative ACK carried on a FIN, and a second concurrent flow.
	b = newCapB(tb, w)
	b.o.TrackSeq = true
	{
		c, s := w.Addr(0, 0, 200), w.Addr(1, 0, 1200) // Auckland ↔ Los Angeles
		b.seg(0, c, s, 40100, 443, pkt.TCPAck, 1000, 5000, 120, 0, 0)
		b.seg(30e6, s, c, 443, 40100, pkt.TCPAck, 5000, 1120, 0, 0, 0)
		b.expectRTT("seq", 1, 0, 30e6, 30e6) // ACK covers [1000,1120): LA's side
		b.seg(35e6, s, c, 443, 40100, pkt.TCPAck, 5000, 1120, 400, 0, 0)
		b.seg(47e6, c, s, 40100, 443, pkt.TCPAck, 1120, 5400, 0, 0, 0)
		b.expectRTT("seq", 0, 1, 12e6, 47e6) // ACK covers [5000,5400): Auckland's side
		b.seg(50e6, c, s, 40100, 443, pkt.TCPAck, 1120, 5400, 80, 0, 0)
		b.seg(75e6, s, c, 443, 40100, pkt.TCPFin|pkt.TCPAck, 5400, 1200, 0, 0, 0)
		b.expectRTT("seq", 1, 0, 25e6, 75e6) // FIN's ACK covers [1120,1200)

		c2, s2 := w.Addr(4, 0, 210), w.Addr(12, 0, 1210) // Sydney ↔ Tokyo
		b.seg(5e6, c2, s2, 40110, 443, pkt.TCPAck, 9000, 100, 50, 0, 0)
		b.seg(45e6, s2, c2, 443, 40110, pkt.TCPAck, 100, 9050, 0, 0, 0)
		b.expectRTT("seq", 12, 4, 40e6, 45e6)
	}
	caps = append(caps, b.finish("seq_rtt"))

	// retrans_rto: the loss-classification scenario. A healthy sample,
	// then a hole at 2100: three duplicate ACKs, a fast retransmit 35ms
	// after the original (< the 200ms RTO threshold), recovery — and a
	// second hole repaired only after 300ms (> threshold: RTO class),
	// whose ACK must NOT become a sample (Karn's rule, pinned here).
	b = newCapB(tb, w)
	b.o.TrackSeq = true
	{
		c, s := w.Addr(0, 0, 220), w.Addr(4, 0, 1220) // Auckland ↔ Sydney
		b.seg(0, c, s, 40200, 443, pkt.TCPAck, 2000, 7000, 100, 0, 0)
		b.seg(20e6, s, c, 443, 40200, pkt.TCPAck, 7000, 2100, 0, 0, 0)
		b.expectRTT("seq", 4, 0, 20e6, 20e6)
		b.seg(25e6, c, s, 40200, 443, pkt.TCPAck, 2100, 7000, 100, 0, 0)
		b.seg(30e6, c, s, 40200, 443, pkt.TCPAck, 2200, 7000, 100, 0, 0)
		// [2100,2200) is lost beyond the tap: Sydney repeats ack 2100.
		b.seg(45e6, s, c, 443, 40200, pkt.TCPAck, 7000, 2100, 0, 0, 0)
		b.expectLoss("dupack", 4, 0, 45e6)
		b.seg(50e6, s, c, 443, 40200, pkt.TCPAck, 7000, 2100, 0, 0, 0)
		b.expectLoss("dupack", 4, 0, 50e6)
		b.seg(55e6, s, c, 443, 40200, pkt.TCPAck, 7000, 2100, 0, 0, 0)
		b.expectLoss("dupack", 4, 0, 55e6)
		// Fast retransmit of [2100,2200): 35ms after the original.
		b.seg(60e6, c, s, 40200, 443, pkt.TCPAck, 2100, 7000, 100, 0, 0)
		b.expectLoss("retrans", 0, 4, 60e6)
		// Recovery ACK covers through 2300; the re-sent range is
		// disqualified, the sample comes from [2200,2300) sent at 30ms.
		b.seg(80e6, s, c, 443, 40200, pkt.TCPAck, 7000, 2300, 0, 0, 0)
		b.expectRTT("seq", 4, 0, 50e6, 80e6)
		// RTO-class hole: [2300,2400) re-sent 300ms later.
		b.seg(100e6, c, s, 40200, 443, pkt.TCPAck, 2300, 7000, 100, 0, 0)
		b.seg(400e6, c, s, 40200, 443, pkt.TCPAck, 2300, 7000, 100, 0, 0)
		b.expectLoss("rto", 0, 4, 400e6)
		// Karn: the ACK of the re-sent range yields NO sample.
		b.seg(430e6, s, c, 443, 40200, pkt.TCPAck, 7000, 2400, 0, 0, 0)
	}
	caps = append(caps, b.finish("retrans_rto"))

	// onedir: an asymmetric tap — only the client→server direction of
	// each flow is on the mirrored link. Samples are round-trip response
	// latencies self-paired within the visible direction: closed by the
	// sender's cumulative ACK advancing (first flow) or, where the ACK
	// number is useless, by its echoed TSecr advancing (second flow).
	b = newCapB(tb, w)
	b.o.TrackSeq = true
	b.o.OneDirection = true
	{
		c, s := w.Addr(1, 0, 230), w.Addr(12, 0, 1230) // LA → Tokyo visible
		b.seg(0, c, s, 40300, 443, pkt.TCPAck, 3000, 600, 200, 0, 0)
		b.seg(70e6, c, s, 40300, 443, pkt.TCPAck, 3200, 900, 100, 0, 0)
		b.expectRTT("onedir", 12, 1, 70e6, 70e6) // ack 600→900: Tokyo answered
		b.seg(150e6, c, s, 40300, 443, pkt.TCPAck, 3300, 1400, 0, 0, 0)
		b.expectRTT("onedir", 12, 1, 80e6, 150e6) // ack 900→1400

		c2, s2 := w.Addr(4, 0, 240), w.Addr(0, 0, 1240) // Sydney → Auckland visible
		b.seg(10e6, c2, s2, 40310, 443, pkt.TCPAck, 500, 100, 50, 1000, 50)
		b.seg(80e6, c2, s2, 40310, 443, pkt.TCPAck, 550, 100, 50, 1070, 77)
		b.expectRTT("onedir", 0, 4, 70e6, 80e6) // tsecr 50→77: Auckland answered
	}
	caps = append(caps, b.finish("onedir"))

	// ts_seq_mixed: both trackers on one pipeline. The first flow carries
	// timestamps — ALL its RTT samples must come from the timestamp
	// tracker (mode=ts, no seq double counting) while its retransmission
	// is still classified by the seq tracker. The second flow has no
	// timestamps and is sampled by sequence matching alone.
	b = newCapB(tb, w)
	b.o.TrackSeq = true
	b.o.TrackTS = true
	{
		c, s := w.Addr(0, 0, 250), w.Addr(1, 0, 1250) // Auckland ↔ LA, with TS
		b.seg(0, c, s, 40400, 443, pkt.TCPAck, 4000, 8000, 100, 100, 0)
		b.seg(40e6, s, c, 443, 40400, pkt.TCPAck, 8000, 4100, 0, 500, 100)
		b.expectRTT("ts", 1, 0, 40e6, 40e6) // echo of TSval 100 — and no seq sample
		b.seg(55e6, c, s, 40400, 443, pkt.TCPAck, 4100, 8000, 100, 155, 500)
		b.expectRTT("ts", 0, 1, 15e6, 55e6) // echo of TSval 500
		// Retransmission of [4100,4200): no TS sample (same TSval, first
		// kept), no seq sample (deferred), but the loss IS classified.
		b.seg(70e6, c, s, 40400, 443, pkt.TCPAck, 4100, 8000, 100, 155, 500)
		b.expectLoss("retrans", 0, 1, 70e6)
		b.seg(100e6, s, c, 443, 40400, pkt.TCPAck, 8000, 4200, 0, 540, 155)
		b.expectRTT("ts", 1, 0, 45e6, 100e6) // TSval 155 from its FIRST send at 55ms

		c2, s2 := w.Addr(4, 0, 260), w.Addr(12, 0, 1260) // Sydney ↔ Tokyo, no TS
		b.seg(5e6, c2, s2, 40410, 443, pkt.TCPAck, 6000, 300, 150, 0, 0)
		b.seg(65e6, s2, c2, 443, 40410, pkt.TCPAck, 300, 6150, 0, 0, 0)
		b.expectRTT("seq", 12, 4, 60e6, 65e6)
	}
	caps = append(caps, b.finish("ts_seq_mixed"))

	return caps
}

func goldenPath(name, ext string) string {
	return filepath.Join("testdata", "golden", name+ext)
}

// TestWriteGoldenCorpus regenerates testdata/golden from the scripts.
// Run with RURU_UPDATE=1; skipped otherwise.
func TestWriteGoldenCorpus(t *testing.T) {
	if os.Getenv("RURU_UPDATE") == "" {
		t.Skip("set RURU_UPDATE=1 to regenerate the golden corpus")
	}
	if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCaptures(t) {
		if err := os.WriteFile(goldenPath(c.name, ".pcap"), c.pcap, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := json.MarshalIndent(c.oracle, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(c.name, ".oracle.json"), append(j, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenCorpus replays every checked-in capture through the full
// pipeline and compares engine counters, per-flow measurements and the
// loss ledger bit-exact against the checked-in oracle.
func TestGoldenCorpus(t *testing.T) {
	w := goldenWorld(t)
	ents, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden corpus missing (generate with RURU_UPDATE=1): %v", err)
	}
	ran := 0
	for _, ent := range ents {
		name, ok := cutSuffix(ent.Name(), ".pcap")
		if !ok {
			continue
		}
		ran++
		t.Run(name, func(t *testing.T) {
			var oracle goldenOracle
			oj, err := os.ReadFile(goldenPath(name, ".oracle.json"))
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(oj, &oracle); err != nil {
				t.Fatal(err)
			}
			replayGolden(t, w, goldenPath(name, ".pcap"), &oracle, 0)
		})
	}
	if ran == 0 {
		t.Fatal("no golden captures found")
	}
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) < len(suffix) || s[len(s)-len(suffix):] != suffix {
		return s, false
	}
	return s[:len(s)-len(suffix)], true
}

// replayGolden replays one capture through a full pipeline and compares
// bit-exact. flowBytes > 0 additionally enables the sketch tier with that
// cap — a generous cap must leave every measurement identical (admission
// admits everything) while the tier's ledger stays clean.
func replayGolden(t *testing.T, w *geo.World, path string, oracle *goldenOracle, flowBytes int64) {
	t.Helper()
	p, err := New(Config{
		GeoDB:  w.DB(),
		Queues: 2, Overflow: nic.Block, SinkWorkers: 2,
		TrackTimestamps: oracle.TrackTS,
		TrackSeq:        oracle.TrackSeq,
		OneDirection:    oracle.OneDirection,
		FlowTableBytes:  flowBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	n, err := pcap.ReplayToPort(ctx, r, p.Port, pcap.ReplayOptions{Burst: 16})
	if oracle.Truncated {
		if !errors.Is(err, pcap.ErrTruncated) {
			t.Fatalf("replay err = %v, want ErrTruncated", err)
		}
	} else if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != oracle.Replayed {
		t.Fatalf("replayed %d frames, want %d", n, oracle.Replayed)
	}

	// Drain: every completed measurement, every tracker sample and every
	// loss event must land in the TSDB (Block policy + tiny load = zero
	// loss anywhere downstream). The engine publishes tracker snapshots at
	// burst boundaries, so the predicate also waits for the per-queue Seq
	// counters to reach the oracle before asserting on them.
	lossTotal := oracle.Retrans + oracle.RTO + oracle.DupACK
	expectedDB := oracle.Completed + oracle.TSSamples + oracle.SeqSamples + lossTotal
	deadline := time.Now().Add(10 * time.Second)
	var st Stats
	for {
		st = p.Stats()
		if st.Engine.Completed == oracle.Completed && st.DBPoints == expectedDB &&
			st.TSSamples == oracle.TSSamples && st.SeqSamples == oracle.SeqSamples &&
			st.LossPoints == lossTotal &&
			st.Seq.Retrans == oracle.Retrans && st.Seq.RTO == oracle.RTO &&
			st.Seq.DupACK == oracle.DupACK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain timeout: engine completed %d / db %d / ts %d / seq %d / loss %d, want %d / %d / %d / %d / %d",
				st.Engine.Completed, st.DBPoints, st.TSSamples, st.SeqSamples, st.LossPoints,
				oracle.Completed, expectedDB, oracle.TSSamples, oracle.SeqSamples, lossTotal)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Engine counters, bit-exact.
	checks := []struct {
		name      string
		got, want uint64
	}{
		{"tcp packets", st.Engine.Packets, oracle.TCPPackets},
		{"syns", st.Engine.SYNs, oracle.SYNs},
		{"syn retrans", st.Engine.SYNRetrans, oracle.SYNRetrans},
		{"synacks", st.Engine.SYNACKs, oracle.SYNACKs},
		{"orphan synacks", st.Engine.OrphanSYNACKs, oracle.OrphanSYNACKs},
		{"completed", st.Engine.Completed, oracle.Completed},
		{"aborted", st.Engine.Aborted, oracle.Aborted},
		{"midstream acks", st.Engine.MidstreamACKs, oracle.MidstreamACKs},
		{"invalid acks", st.Engine.InvalidACKs, oracle.InvalidACKs},
		// Tracker counters: what the trackers emitted (tracker-level) and
		// what reached storage (pipeline-level) must both equal the oracle —
		// a write that vanished between the two is a ledger bug.
		{"ts samples (tracker)", st.TSRTT.Samples, oracle.TSSamples},
		{"ts samples (stored)", st.TSSamples, oracle.TSSamples},
		{"seq samples (tracker)", st.Seq.Samples, oracle.SeqSamples},
		{"seq samples (stored)", st.SeqSamples, oracle.SeqSamples},
		{"retrans", st.Seq.Retrans, oracle.Retrans},
		{"rto", st.Seq.RTO, oracle.RTO},
		{"dupack", st.Seq.DupACK, oracle.DupACK},
		{"loss points (stored)", st.LossPoints, lossTotal},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("engine %s = %d, want %d", c.name, c.got, c.want)
		}
	}

	// Sketch-tier ledger under a generous cap: every flow admitted, no
	// bytes leaked (handshake entries released on completion; tracker
	// entries may legitimately remain live), budget never exceeded.
	if flowBytes > 0 {
		if st.Sketch.SketchOnlyFlows != 0 {
			t.Errorf("generous cap refused %d flows", st.Sketch.SketchOnlyFlows)
		}
		if st.Sketch.LiveBytes+st.Sketch.SketchBytes > st.Sketch.BudgetBytes {
			t.Errorf("sketch budget exceeded: live %d + fixed %d > %d",
				st.Sketch.LiveBytes, st.Sketch.SketchBytes, st.Sketch.BudgetBytes)
		}
		if st.Sketch.BudgetBytes > flowBytes {
			t.Errorf("per-queue budgets %d exceed the configured cap %d",
				st.Sketch.BudgetBytes, flowBytes)
		}
	}

	// Loss-accounting ledger: nothing silently lost downstream. DBPoints
	// counts every stored point, so the completed-handshake share is what
	// remains after the continuous-RTT and loss streams are subtracted.
	completedStored := st.DBPoints - st.TSSamples - st.SeqSamples - st.LossPoints
	if st.Engine.Completed != completedStored+st.SinkDrop+st.SinkDecodeErrors+st.DBDropped+st.DBWriteErrors {
		t.Errorf("ledger violated: completed %d != stored %d + drops %d/%d/%d/%d",
			st.Engine.Completed, completedStored, st.SinkDrop, st.SinkDecodeErrors, st.DBDropped, st.DBWriteErrors)
	}

	// Per-flow measurements, bit-exact, in (Time, SrcCity) order.
	arcs := p.RecentArcs(0)
	sort.SliceStable(arcs, func(i, j int) bool {
		if arcs[i].Time != arcs[j].Time {
			return arcs[i].Time < arcs[j].Time
		}
		return arcs[i].Src.City < arcs[j].Src.City
	})
	if len(arcs) != len(oracle.Flows) {
		t.Fatalf("measured %d flows, want %d", len(arcs), len(oracle.Flows))
	}
	for i, want := range oracle.Flows {
		got := goldenFlow{
			SrcCity: arcs[i].Src.City, SrcCC: arcs[i].Src.CountryCode,
			DstCity: arcs[i].Dst.City, DstCC: arcs[i].Dst.CountryCode,
			InternalNs: arcs[i].InternalNs, ExternalNs: arcs[i].ExternalNs,
			TotalNs: arcs[i].TotalNs, Time: arcs[i].Time,
			SYNRetrans: arcs[i].SYNRetrans, IPv6: arcs[i].IPv6,
		}
		if got != want {
			t.Errorf("flow %d:\n got  %+v\n want %+v", i, got, want)
		}
	}

	// Continuous-RTT series, bit-exact, read back from the TSDB itself: a
	// snapshot is parsed line-by-line and every rtt_stream / tcp_loss point
	// must match the oracle in tags, value and timestamp. Whole-millisecond
	// scripted RTTs make the float comparison exact.
	var snap bytes.Buffer
	if _, err := p.DB.Snapshot(&snap); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var gotRTT []goldenRTT
	var gotLoss []goldenLoss
	var pt tsdb.Point
	for _, line := range strings.Split(snap.String(), "\n") {
		if line == "" {
			continue
		}
		if err := tsdb.ParseLine(line, &pt); err != nil {
			t.Fatalf("snapshot line %q: %v", line, err)
		}
		switch pt.Name {
		case "rtt_stream":
			gotRTT = append(gotRTT, goldenRTT{
				Mode:       tagVal(&pt, "mode"),
				EchoerCity: tagVal(&pt, "echoer_city"),
				PeerCity:   tagVal(&pt, "peer_city"),
				RTTMs:      pt.Fields[0].Value,
				Time:       pt.Time,
			})
		case "tcp_loss":
			gotLoss = append(gotLoss, goldenLoss{
				SrcCity: tagVal(&pt, "src_city"),
				DstCity: tagVal(&pt, "dst_city"),
				Kind:    tagVal(&pt, "kind"),
				Time:    pt.Time,
			})
		}
	}
	sortGoldenRTT(gotRTT)
	sortGoldenLoss(gotLoss)
	if len(gotRTT) != len(oracle.RTTSamples) {
		t.Fatalf("stored %d rtt_stream points, want %d:\n got  %+v\n want %+v",
			len(gotRTT), len(oracle.RTTSamples), gotRTT, oracle.RTTSamples)
	}
	for i, want := range oracle.RTTSamples {
		if gotRTT[i] != want {
			t.Errorf("rtt sample %d:\n got  %+v\n want %+v", i, gotRTT[i], want)
		}
	}
	if len(gotLoss) != len(oracle.LossEvents) {
		t.Fatalf("stored %d tcp_loss points, want %d:\n got  %+v\n want %+v",
			len(gotLoss), len(oracle.LossEvents), gotLoss, oracle.LossEvents)
	}
	for i, want := range oracle.LossEvents {
		if gotLoss[i] != want {
			t.Errorf("loss event %d:\n got  %+v\n want %+v", i, gotLoss[i], want)
		}
	}
}

// tagVal extracts one tag by key from a parsed point.
func tagVal(p *tsdb.Point, key string) string {
	for _, tg := range p.Tags {
		if tg.Key == key {
			return tg.Value
		}
	}
	return ""
}
