package ruru

// Read-side accessors for the bounded-memory sketch tier: merged top-K
// views across the per-queue tiers plus the global city-pair summary.
// These back GET /api/topk.

import (
	"net/netip"
	"sort"

	"ruru/internal/sketch"
)

// SketchEnabled reports whether the bounded-memory sketch tier is running
// (Config.FlowTableBytes > 0).
func (p *Pipeline) SketchEnabled() bool { return p.Sketch != nil }

// sortItemsDesc orders heavy-hitter items by Count descending (ties by
// Err, matching TopK.Top).
func sortItemsDesc[K comparable](items []sketch.Item[K]) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Err > items[j].Err
	})
}

// TopFlows returns up to n highest-volume flows (bytes) across all queues
// (n <= 0: all tracked). RSS gives every flow single-queue affinity, so the
// per-queue summaries hold disjoint keys and concatenation is an exact
// merge. Reads the workers' published snapshots; nil without the sketch
// tier.
func (p *Pipeline) TopFlows(n int) []sketch.Item[sketch.FlowID] {
	if p.Sketch == nil {
		return nil
	}
	var all []sketch.Item[sketch.FlowID]
	for _, t := range p.Sketch {
		all = append(all, t.Snapshot().Flows...)
	}
	sortItemsDesc(all)
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}

// TopPrefixes returns up to n highest-volume source prefixes (/24 for v4,
// /48 for v6) across all queues. Unlike flows, one prefix spans many flows
// and therefore many queues, so entries are merged by key — counts and
// error bounds sum (both remain valid overestimate bounds).
func (p *Pipeline) TopPrefixes(n int) []sketch.Item[netip.Prefix] {
	if p.Sketch == nil {
		return nil
	}
	merged := make(map[netip.Prefix]sketch.Item[netip.Prefix])
	for _, t := range p.Sketch {
		for _, it := range t.Snapshot().Prefixes {
			m, ok := merged[it.Key]
			if !ok {
				merged[it.Key] = it
				continue
			}
			m.Count += it.Count
			m.Err += it.Err
			merged[it.Key] = m
		}
	}
	all := make([]sketch.Item[netip.Prefix], 0, len(merged))
	for _, it := range merged {
		all = append(all, it)
	}
	sortItemsDesc(all)
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}

// TopPairs returns up to n (src_city,dst_city) pairs by measurement count,
// each with its latency aggregate (count/min/max/sum over the pair's tenure
// in the summary). Fed by the sink stage; nil without the sketch tier.
func (p *Pipeline) TopPairs(n int) []sketch.Item[string] {
	if p.pairTop == nil {
		return nil
	}
	p.pairTopMu.Lock()
	out := p.pairTop.Top(nil, n)
	p.pairTopMu.Unlock()
	return out
}
