package pkt

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// String formats the address in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// IsMulticast reports whether the group bit (LSB of the first octet) is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// Ethernet is a decoded Ethernet II header, including up to two stacked
// 802.1Q/802.1ad VLAN tags.
type Ethernet struct {
	Dst, Src  MAC
	Type      EtherType // EtherType after any VLAN tags
	VLANs     [2]uint16 // VLAN IDs, outermost first
	VLANCount int       // number of valid entries in VLANs
	HeaderLen int       // total bytes consumed incl. VLAN tags
}

// Decode parses an Ethernet header (and stacked VLAN tags) from data.
// It returns the number of bytes consumed.
func (e *Ethernet) Decode(data []byte) (int, error) {
	if len(data) < EthernetHeaderLen {
		return 0, ErrFrameTooShort
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	t := EtherType(binary.BigEndian.Uint16(data[12:14]))
	off := EthernetHeaderLen
	e.VLANCount = 0
	for (t == EtherTypeVLAN || t == EtherTypeQinQ) && e.VLANCount < 2 {
		if len(data) < off+VLANTagLen {
			return 0, ErrHeaderTooShort
		}
		tci := binary.BigEndian.Uint16(data[off : off+2])
		e.VLANs[e.VLANCount] = tci & 0x0fff
		e.VLANCount++
		t = EtherType(binary.BigEndian.Uint16(data[off+2 : off+4]))
		off += VLANTagLen
	}
	e.Type = t
	e.HeaderLen = off
	return off, nil
}

// Encode serializes the header into buf, which must have room for
// EncodedLen bytes. It returns the number of bytes written.
func (e *Ethernet) Encode(buf []byte) (int, error) {
	n := e.EncodedLen()
	if len(buf) < n {
		return 0, ErrFrameTooShort
	}
	copy(buf[0:6], e.Dst[:])
	copy(buf[6:12], e.Src[:])
	off := 12
	for i := 0; i < e.VLANCount; i++ {
		binary.BigEndian.PutUint16(buf[off:], uint16(EtherTypeVLAN))
		binary.BigEndian.PutUint16(buf[off+2:], e.VLANs[i]&0x0fff)
		off += VLANTagLen
	}
	binary.BigEndian.PutUint16(buf[off:], uint16(e.Type))
	off += 2
	return off, nil
}

// EncodedLen returns the number of bytes Encode will write.
func (e *Ethernet) EncodedLen() int {
	return EthernetHeaderLen + e.VLANCount*VLANTagLen
}
