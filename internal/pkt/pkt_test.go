package pkt

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"
)

func mac(b byte) MAC { return MAC{b, b, b, b, b, b} }

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: mac(1), Src: mac(2), Type: EtherTypeIPv4}
	buf := make([]byte, 64)
	n, err := e.Encode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != EthernetHeaderLen {
		t.Fatalf("encoded len = %d, want %d", n, EthernetHeaderLen)
	}
	var d Ethernet
	m, err := d.Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if m != n || d.Dst != e.Dst || d.Src != e.Src || d.Type != e.Type || d.VLANCount != 0 {
		t.Fatalf("decode mismatch: %+v", d)
	}
}

func TestEthernetVLAN(t *testing.T) {
	e := Ethernet{Dst: mac(1), Src: mac(2), Type: EtherTypeIPv6, VLANCount: 1}
	e.VLANs[0] = 42
	buf := make([]byte, 64)
	n, err := e.Encode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != EthernetHeaderLen+VLANTagLen {
		t.Fatalf("encoded len = %d", n)
	}
	var d Ethernet
	if _, err := d.Decode(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if d.VLANCount != 1 || d.VLANs[0] != 42 || d.Type != EtherTypeIPv6 {
		t.Fatalf("vlan decode mismatch: %+v", d)
	}
	if d.HeaderLen != n {
		t.Fatalf("HeaderLen = %d, want %d", d.HeaderLen, n)
	}
}

func TestEthernetQinQ(t *testing.T) {
	// Hand-build an 802.1ad outer + 802.1Q inner tag stack.
	buf := make([]byte, 22)
	d9, s8 := mac(9), mac(8)
	copy(buf[0:6], d9[:])
	copy(buf[6:12], s8[:])
	binary.BigEndian.PutUint16(buf[12:], uint16(EtherTypeQinQ))
	binary.BigEndian.PutUint16(buf[14:], 100)
	binary.BigEndian.PutUint16(buf[16:], uint16(EtherTypeVLAN))
	binary.BigEndian.PutUint16(buf[18:], 200)
	binary.BigEndian.PutUint16(buf[20:], uint16(EtherTypeIPv4))
	var d Ethernet
	n, err := d.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 22 || d.VLANCount != 2 || d.VLANs[0] != 100 || d.VLANs[1] != 200 || d.Type != EtherTypeIPv4 {
		t.Fatalf("qinq decode mismatch: n=%d %+v", n, d)
	}
}

func TestEthernetTooShort(t *testing.T) {
	var d Ethernet
	if _, err := d.Decode(make([]byte, 13)); err != ErrFrameTooShort {
		t.Fatalf("err = %v, want ErrFrameTooShort", err)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Fatalf("String() = %q", got)
	}
	if !(MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}).IsBroadcast() {
		t.Fatal("broadcast not detected")
	}
	if !(MAC{0x01, 0, 0, 0, 0, 0}).IsMulticast() {
		t.Fatal("multicast not detected")
	}
	if m.IsMulticast() {
		t.Fatal("unicast flagged multicast")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		TOS: 0x10, TotalLen: 40, ID: 0x1234, Flags: IPv4DontFragment,
		TTL: 63, Protocol: IPProtoTCP,
		Src: netip.MustParseAddr("192.0.2.1"),
		Dst: netip.MustParseAddr("198.51.100.7"),
	}
	buf := make([]byte, 64)
	n, err := ip.Encode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != IPv4MinHeaderLen {
		t.Fatalf("encoded %d bytes", n)
	}
	var d IPv4
	m, err := d.Decode(buf[:40])
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("decode consumed %d, want %d", m, n)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.TTL != 63 || d.Protocol != IPProtoTCP ||
		d.ID != 0x1234 || d.Flags != IPv4DontFragment || d.TOS != 0x10 {
		t.Fatalf("decode mismatch: %+v", d)
	}
	if !d.VerifyChecksum(buf[:40]) {
		t.Fatal("checksum did not verify")
	}
	buf[8] ^= 0xff // corrupt TTL
	if d.VerifyChecksum(buf[:40]) {
		t.Fatal("corrupted header passed checksum")
	}
}

func TestIPv4Fragment(t *testing.T) {
	ip := IPv4{TotalLen: 20, TTL: 1, Protocol: IPProtoUDP,
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		Flags: IPv4MoreFragments}
	buf := make([]byte, 20)
	if _, err := ip.Encode(buf); err != nil {
		t.Fatal(err)
	}
	var d IPv4
	if _, err := d.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if !d.IsFragment() {
		t.Fatal("MF fragment not detected")
	}
	// Non-first fragment.
	ip.Flags = 0
	ip.FragOffset = 100
	if _, err := ip.Encode(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if !d.IsFragment() || d.FragOffset != 100 {
		t.Fatalf("fragment offset mismatch: %+v", d)
	}
}

func TestIPv4Malformed(t *testing.T) {
	var d IPv4
	if _, err := d.Decode(make([]byte, 10)); err != ErrHeaderTooShort {
		t.Fatalf("short: %v", err)
	}
	b := make([]byte, 20)
	b[0] = 6 << 4
	if _, err := d.Decode(b); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	b[0] = 4<<4 | 3 // IHL below minimum
	if _, err := d.Decode(b); err != ErrBadHeaderLen {
		t.Fatalf("ihl: %v", err)
	}
	b[0] = 4<<4 | 15 // IHL beyond buffer
	if _, err := d.Decode(b); err != ErrHeaderTooShort {
		t.Fatalf("ihl long: %v", err)
	}
	// TotalLen smaller than header length.
	b[0] = 4<<4 | 5
	binary.BigEndian.PutUint16(b[2:], 10)
	if _, err := d.Decode(b); err != ErrBadHeaderLen {
		t.Fatalf("totallen: %v", err)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	ip := IPv6{
		TrafficClass: 7, FlowLabel: 0xabcde, PayloadLen: 20,
		Protocol: IPProtoTCP, HopLimit: 42,
		Src: netip.MustParseAddr("2001:db8::1"),
		Dst: netip.MustParseAddr("2001:db8::2"),
	}
	buf := make([]byte, 80)
	n, err := ip.Encode(buf)
	if err != nil {
		t.Fatal(err)
	}
	var d IPv6
	m, err := d.Decode(buf[:n+20])
	if err != nil {
		t.Fatal(err)
	}
	if m != IPv6HeaderLen {
		t.Fatalf("consumed %d", m)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.Protocol != IPProtoTCP ||
		d.HopLimit != 42 || d.TrafficClass != 7 || d.FlowLabel != 0xabcde {
		t.Fatalf("decode mismatch: %+v", d)
	}
}

func TestIPv6ExtensionHeaders(t *testing.T) {
	// Fixed header with hop-by-hop -> dst opts -> TCP chain.
	buf := make([]byte, IPv6HeaderLen+8+8+TCPMinHeaderLen)
	ip := IPv6{
		PayloadLen: uint16(8 + 8 + TCPMinHeaderLen),
		Protocol:   IPProtoHopByHop, HopLimit: 64,
		Src: netip.MustParseAddr("2001:db8::10"),
		Dst: netip.MustParseAddr("2001:db8::20"),
	}
	if _, err := ip.Encode(buf); err != nil {
		t.Fatal(err)
	}
	off := IPv6HeaderLen
	buf[off] = uint8(IPProtoDstOpts) // next header
	buf[off+1] = 0                   // 8 bytes total
	off += 8
	buf[off] = uint8(IPProtoTCP)
	buf[off+1] = 0
	var d IPv6
	n, err := d.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != IPv6HeaderLen+16 {
		t.Fatalf("consumed %d, want %d", n, IPv6HeaderLen+16)
	}
	if d.Protocol != IPProtoTCP {
		t.Fatalf("protocol = %v", d.Protocol)
	}
}

func TestIPv6Fragment(t *testing.T) {
	buf := make([]byte, IPv6HeaderLen+8)
	ip := IPv6{PayloadLen: 8, Protocol: IPProtoFragment, HopLimit: 64,
		Src: netip.MustParseAddr("2001:db8::1"), Dst: netip.MustParseAddr("2001:db8::2")}
	if _, err := ip.Encode(buf); err != nil {
		t.Fatal(err)
	}
	buf[IPv6HeaderLen] = uint8(IPProtoTCP)
	var d IPv6
	if _, err := d.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if !d.Fragmented {
		t.Fatal("fragment header not flagged")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tc := TCP{
		SrcPort: 443, DstPort: 51234,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: TCPSyn | TCPAck, Window: 65535, Urgent: 7,
		Options: []byte{TCPOptMSS, 4, 0x05, 0xb4},
	}
	buf := make([]byte, 64)
	n, err := tc.Encode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 {
		t.Fatalf("encoded %d", n)
	}
	var d TCP
	m, err := d.Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if m != n || d.SrcPort != 443 || d.DstPort != 51234 || d.Seq != 0xdeadbeef ||
		d.Ack != 0x01020304 || d.Window != 65535 || d.Urgent != 7 {
		t.Fatalf("decode mismatch: %+v", d)
	}
	if !d.IsSYNACK() || d.IsSYN() {
		t.Fatal("flag classification wrong")
	}
	if d.MSS() != 1460 {
		t.Fatalf("MSS = %d", d.MSS())
	}
}

func TestTCPFlagHelpers(t *testing.T) {
	cases := []struct {
		flags            uint8
		syn, synack, ack bool
	}{
		{TCPSyn, true, false, false},
		{TCPSyn | TCPAck, false, true, true},
		{TCPAck, false, false, true},
		{TCPFin | TCPAck, false, false, true},
	}
	for _, c := range cases {
		tc := TCP{Flags: c.flags}
		if tc.IsSYN() != c.syn || tc.IsSYNACK() != c.synack || tc.ACK() != c.ack {
			t.Errorf("flags %08b: IsSYN=%v IsSYNACK=%v ACK=%v", c.flags, tc.IsSYN(), tc.IsSYNACK(), tc.ACK())
		}
	}
}

func TestTCPTimestampOption(t *testing.T) {
	opts := []byte{
		TCPOptNop, TCPOptNop,
		TCPOptTimestamp, 10, 0, 0, 0, 1, 0, 0, 0, 2,
	}
	tc := TCP{SrcPort: 1, DstPort: 2, Options: opts}
	buf := make([]byte, 64)
	n, err := tc.Encode(buf)
	if err != nil {
		t.Fatal(err)
	}
	var d TCP
	if _, err := d.Decode(buf[:n]); err != nil {
		t.Fatal(err)
	}
	tsval, tsecr, ok := d.TimestampOption()
	if !ok || tsval != 1 || tsecr != 2 {
		t.Fatalf("timestamp = %d,%d,%v", tsval, tsecr, ok)
	}
	if d.MSS() != 0 {
		t.Fatal("MSS should be absent")
	}
}

func TestTCPMalformedOptions(t *testing.T) {
	// Option with length 0 must not loop forever or panic.
	d := TCP{Options: []byte{TCPOptMSS, 0, 0}}
	if d.MSS() != 0 {
		t.Fatal("zero-length option")
	}
	if _, _, ok := d.TimestampOption(); ok {
		t.Fatal("zero-length option timestamp")
	}
	// Truncated option.
	d.Options = []byte{TCPOptMSS}
	if d.MSS() != 0 {
		t.Fatal("truncated option")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 53, DstPort: 5353, Length: 16}
	buf := make([]byte, 16)
	if _, err := u.Encode(buf); err != nil {
		t.Fatal(err)
	}
	var d UDP
	n, err := d.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != UDPHeaderLen || d.SrcPort != 53 || d.DstPort != 5353 || d.Length != 16 {
		t.Fatalf("decode mismatch: %+v", d)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d
	// (complement of 0xddf2).
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != 0x220d {
		t.Fatalf("checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Trailing odd byte is padded on the right.
	a := Checksum([]byte{0x01, 0x02, 0x03}, 0)
	b := Checksum([]byte{0x01, 0x02, 0x03, 0x00}, 0)
	if a != b {
		t.Fatalf("odd-length checksum mismatch: %#x vs %#x", a, b)
	}
}

func TestChecksumProperty(t *testing.T) {
	// Inserting the computed checksum makes the data sum to 0xffff —
	// the invariant IP stacks rely on.
	f := func(data []byte) bool {
		if len(data)%2 != 0 {
			data = append(data, 0)
		}
		cs := Checksum(data, 0)
		buf := make([]byte, len(data)+2)
		copy(buf, data)
		buf[len(data)] = byte(cs >> 8)
		buf[len(data)+1] = byte(cs)
		return uint16(foldChecksum(partialChecksum(buf, 0))) == 0xffff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAndParseTCPFrame(t *testing.T) {
	spec := &TCPFrameSpec{
		SrcMAC: mac(0xaa), DstMAC: mac(0xbb),
		Src: netip.MustParseAddr("203.0.113.5"), Dst: netip.MustParseAddr("192.0.2.9"),
		SrcPort: 40000, DstPort: 443,
		Seq: 1000, Flags: TCPSyn, Window: 64240,
		Options: []byte{TCPOptMSS, 4, 0x05, 0xb4},
	}
	buf := make([]byte, 128)
	n, err := BuildTCPFrame(buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	if n != TCPFrameLen(spec) {
		t.Fatalf("frame len %d, want %d", n, TCPFrameLen(spec))
	}
	var p Parser
	p.VerifyChecksums = true
	var s Summary
	if err := p.Parse(buf[:n], &s); err != nil {
		t.Fatal(err)
	}
	if !s.IsTCP() {
		t.Fatal("TCP not decoded")
	}
	if s.Src() != spec.Src || s.Dst() != spec.Dst {
		t.Fatalf("addr mismatch: %v -> %v", s.Src(), s.Dst())
	}
	if s.TCP.SrcPort != 40000 || s.TCP.DstPort != 443 || !s.TCP.IsSYN() {
		t.Fatalf("tcp mismatch: %+v", s.TCP)
	}
	// Verify the TCP checksum end-to-end.
	src4, dst4 := spec.Src.As4(), spec.Dst.As4()
	seg := buf[EthernetHeaderLen+IPv4MinHeaderLen : n]
	if !VerifyTransportChecksum(src4[:], dst4[:], IPProtoTCP, seg) {
		t.Fatal("TCP checksum invalid")
	}
}

func TestBuildAndParseTCPFrameIPv6(t *testing.T) {
	spec := &TCPFrameSpec{
		SrcMAC: mac(1), DstMAC: mac(2),
		Src: netip.MustParseAddr("2001:db8::5"), Dst: netip.MustParseAddr("2001:db8::9"),
		SrcPort: 50000, DstPort: 80,
		Flags: TCPSyn | TCPAck,
	}
	buf := make([]byte, 128)
	n, err := BuildTCPFrame(buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	var s Summary
	if err := p.Parse(buf[:n], &s); err != nil {
		t.Fatal(err)
	}
	if !s.IsTCP() || !s.IPv6 {
		t.Fatalf("decode = %v ipv6=%v", s.Decoded, s.IPv6)
	}
	if !s.TCP.IsSYNACK() {
		t.Fatal("flags lost")
	}
	src16, dst16 := spec.Src.As16(), spec.Dst.As16()
	seg := buf[EthernetHeaderLen+IPv6HeaderLen : n]
	if !VerifyTransportChecksum(src16[:], dst16[:], IPProtoTCP, seg) {
		t.Fatal("TCPv6 checksum invalid")
	}
}

func TestBuildVLANFrame(t *testing.T) {
	spec := &TCPFrameSpec{
		SrcMAC: mac(1), DstMAC: mac(2), VLAN: 300,
		Src: netip.MustParseAddr("10.1.1.1"), Dst: netip.MustParseAddr("10.2.2.2"),
		SrcPort: 1234, DstPort: 80, Flags: TCPAck,
	}
	buf := make([]byte, 128)
	n, err := BuildTCPFrame(buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	var s Summary
	if err := p.Parse(buf[:n], &s); err != nil {
		t.Fatal(err)
	}
	if s.Eth.VLANCount != 1 || s.Eth.VLANs[0] != 300 {
		t.Fatalf("vlan lost: %+v", s.Eth)
	}
	if !s.IsTCP() {
		t.Fatal("TCP not decoded through VLAN")
	}
}

func TestBuildUDPFrame(t *testing.T) {
	buf := make([]byte, 256)
	payload := []byte("dns query")
	n, err := BuildUDPFrame(buf, mac(1), mac(2),
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), 5000, 53, payload)
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	var s Summary
	if err := p.Parse(buf[:n], &s); err != nil {
		t.Fatal(err)
	}
	if s.Decoded&LayerUDP == 0 {
		t.Fatal("UDP not decoded")
	}
	if string(s.Payload) != "dns query" {
		t.Fatalf("payload = %q", s.Payload)
	}
}

func TestParserNonIP(t *testing.T) {
	var p Parser
	var s Summary
	buf := make([]byte, 64)
	e := Ethernet{Dst: mac(1), Src: mac(2), Type: EtherTypeARP}
	n, _ := e.Encode(buf)
	if err := p.Parse(buf[:n], &s); err != nil {
		t.Fatal(err)
	}
	if s.Decoded != LayerEthernet {
		t.Fatalf("decoded = %v", s.Decoded)
	}
	if p.Stats.NonIP != 1 {
		t.Fatalf("stats = %+v", p.Stats)
	}
}

func TestParserTruncatedTCP(t *testing.T) {
	spec := &TCPFrameSpec{
		SrcMAC: mac(1), DstMAC: mac(2),
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: 1, DstPort: 2, Flags: TCPSyn,
	}
	buf := make([]byte, 128)
	n, err := BuildTCPFrame(buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	var s Summary
	if err := p.Parse(buf[:n-10], &s); err == nil {
		t.Fatal("truncated TCP should error")
	}
	if p.Stats.Errors != 1 {
		t.Fatalf("stats = %+v", p.Stats)
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	// Any frame built by BuildTCPFrame parses back to the same 4-tuple,
	// flags and payload.
	f := func(srcIP, dstIP [4]byte, sp, dp uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		src := netip.AddrFrom4(srcIP)
		dst := netip.AddrFrom4(dstIP)
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		spec := &TCPFrameSpec{
			SrcMAC: mac(1), DstMAC: mac(2),
			Src: src, Dst: dst, SrcPort: sp, DstPort: dp,
			Seq: seq, Ack: ack, Flags: flags, Payload: payload,
		}
		buf := make([]byte, 1600)
		n, err := BuildTCPFrame(buf, spec)
		if err != nil {
			return false
		}
		var p Parser
		p.VerifyChecksums = true
		var s Summary
		if err := p.Parse(buf[:n], &s); err != nil {
			return false
		}
		if !s.IsTCP() || s.Src() != src || s.Dst() != dst {
			return false
		}
		if s.TCP.SrcPort != sp || s.TCP.DstPort != dp || s.TCP.Seq != seq ||
			s.TCP.Ack != ack || s.TCP.Flags != flags {
			return false
		}
		return string(s.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParserZeroAlloc(t *testing.T) {
	spec := &TCPFrameSpec{
		SrcMAC: mac(1), DstMAC: mac(2),
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: 1, DstPort: 2, Flags: TCPSyn,
	}
	buf := make([]byte, 128)
	n, err := BuildTCPFrame(buf, spec)
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	var s Summary
	allocs := testing.AllocsPerRun(1000, func() {
		if err := p.Parse(buf[:n], &s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Parse allocates %v times per frame; fast path must not allocate", allocs)
	}
}

func TestEtherTypeProtoStrings(t *testing.T) {
	if EtherTypeIPv4.String() != "IPv4" || EtherTypeIPv6.String() != "IPv6" ||
		EtherTypeVLAN.String() != "802.1Q" || EtherType(0x1234).String() != "unknown" {
		t.Fatal("EtherType strings")
	}
	if IPProtoTCP.String() != "TCP" || IPProtoUDP.String() != "UDP" || IPProto(200).String() != "unknown" {
		t.Fatal("IPProto strings")
	}
}
