// Package pkt implements wire-format decoding and encoding for the protocol
// stack Ruru observes on the tap: Ethernet (with optional 802.1Q tags), IPv4,
// IPv6, TCP and UDP.
//
// The package is designed for the measurement fast path. The central type is
// Parser, which decodes a raw frame into caller-owned header structs without
// allocating (the gopacket DecodingLayerParser pattern): the same Parser is
// reused for every frame on a receive queue, and decoded headers reference the
// frame buffer rather than copying it. Serialization helpers build valid
// frames for the traffic generator and for tests.
//
// All multi-byte fields are big-endian (network order) as on the wire.
package pkt

import "errors"

// EtherType identifies the protocol carried in an Ethernet frame payload.
type EtherType uint16

// EtherType values understood by the parser.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeVLAN EtherType = 0x8100 // 802.1Q tag
	EtherTypeQinQ EtherType = 0x88a8 // 802.1ad service tag
	EtherTypeIPv6 EtherType = 0x86dd
)

// String returns the conventional name of the EtherType.
func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypeVLAN:
		return "802.1Q"
	case EtherTypeQinQ:
		return "802.1ad"
	case EtherTypeIPv6:
		return "IPv6"
	}
	return "unknown"
}

// IPProto identifies the transport protocol in an IP header
// (the IPv4 Protocol field / IPv6 Next Header field).
type IPProto uint8

// IPProto values understood by the parser.
const (
	IPProtoICMP     IPProto = 1
	IPProtoTCP      IPProto = 6
	IPProtoUDP      IPProto = 17
	IPProtoICMPv6   IPProto = 58
	IPProtoHopByHop IPProto = 0  // IPv6 extension
	IPProtoRouting  IPProto = 43 // IPv6 extension
	IPProtoFragment IPProto = 44 // IPv6 extension
	IPProtoDstOpts  IPProto = 60 // IPv6 extension
	IPProtoNoNext   IPProto = 59 // IPv6: no next header
)

// String returns the conventional name of the protocol.
func (p IPProto) String() string {
	switch p {
	case IPProtoICMP:
		return "ICMP"
	case IPProtoTCP:
		return "TCP"
	case IPProtoUDP:
		return "UDP"
	case IPProtoICMPv6:
		return "ICMPv6"
	}
	return "unknown"
}

// Frame size constants for the link layer.
const (
	EthernetHeaderLen = 14 // dst MAC + src MAC + EtherType
	VLANTagLen        = 4  // TPID + TCI
	IPv4MinHeaderLen  = 20
	IPv6HeaderLen     = 40
	TCPMinHeaderLen   = 20
	UDPHeaderLen      = 8

	// MinFrameLen is the minimum Ethernet frame length excluding FCS.
	MinFrameLen = 60
	// MaxStandardFrameLen is the maximum non-jumbo frame length excluding FCS.
	MaxStandardFrameLen = 1514
)

// Decoding errors. The parser wraps these with no further allocation, so
// callers can compare with errors.Is.
var (
	ErrFrameTooShort  = errors.New("pkt: frame too short")
	ErrHeaderTooShort = errors.New("pkt: header truncated")
	ErrBadVersion     = errors.New("pkt: bad IP version")
	ErrBadHeaderLen   = errors.New("pkt: bad header length field")
	ErrNotSupported   = errors.New("pkt: unsupported protocol")
	ErrBadChecksum    = errors.New("pkt: bad checksum")
)
