package pkt

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

// A tap parses whatever the wire delivers; the parser must never panic and
// must never claim success on garbage it could not actually decode.

func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		var p Parser
		var s Summary
		// Must not panic; error or success both acceptable.
		_ = p.Parse(data, &s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestParserNeverPanicsOnMutatedFrames(t *testing.T) {
	// Start from valid frames and flip bytes — the adversarial middle
	// ground where malformed-but-plausible headers live.
	rng := rand.New(rand.NewSource(99))
	spec := &TCPFrameSpec{
		SrcMAC: MAC{1}, DstMAC: MAC{2},
		Src: mustAddr("10.0.0.1"), Dst: mustAddr("192.0.2.1"),
		SrcPort: 40000, DstPort: 443, Flags: TCPSyn,
		Options: []byte{TCPOptMSS, 4, 0x05, 0xb4},
		Payload: []byte("0123456789abcdef"),
	}
	base := make([]byte, 256)
	n, err := BuildTCPFrame(base, spec)
	if err != nil {
		t.Fatal(err)
	}
	base = base[:n]
	var p Parser
	var s Summary
	frame := make([]byte, n)
	for i := 0; i < 20000; i++ {
		copy(frame, base)
		// 1-4 random byte mutations.
		for m := 0; m <= rng.Intn(4); m++ {
			frame[rng.Intn(n)] = byte(rng.Uint32())
		}
		// Random truncation 1/4 of the time.
		f := frame
		if rng.Intn(4) == 0 {
			f = frame[:rng.Intn(n+1)]
		}
		_ = p.Parse(f, &s) // must not panic
	}
}

func TestIPv6ExtensionHeaderBombs(t *testing.T) {
	// Deep/looping extension chains must terminate with an error, not
	// hang or overread.
	var p Parser
	var s Summary
	frame := make([]byte, 1024)
	eth := Ethernet{Dst: MAC{1}, Src: MAC{2}, Type: EtherTypeIPv6}
	off, _ := eth.Encode(frame)
	ip := IPv6{PayloadLen: 900, Protocol: IPProtoHopByHop, HopLimit: 64,
		Src: mustAddr("2001:db8::1"), Dst: mustAddr("2001:db8::2")}
	ipn, _ := ip.Encode(frame[off:])
	// 20 chained hop-by-hop headers, each pointing at another.
	pos := off + ipn
	for i := 0; i < 20; i++ {
		frame[pos] = byte(IPProtoHopByHop)
		frame[pos+1] = 0
		pos += 8
	}
	if err := p.Parse(frame[:pos], &s); err == nil {
		t.Fatal("unbounded extension chain accepted")
	}
}

func TestTCPOptionParsingBounds(t *testing.T) {
	// Every possible 1-3 byte option prefix must parse without panic.
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b += 7 {
			tc := TCP{Options: []byte{byte(a), byte(b), 0xff}}
			_ = tc.MSS()
			_, _, _ = tc.TimestampOption()
		}
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
