package pkt

import "encoding/binary"

// TCP flag bits as they appear in the 13th/14th header bytes.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
	TCPUrg uint8 = 1 << 5
	TCPEce uint8 = 1 << 6
	TCPCwr uint8 = 1 << 7
)

// TCP option kinds the parser understands.
const (
	TCPOptEnd       = 0
	TCPOptNop       = 1
	TCPOptMSS       = 2
	TCPOptWScale    = 3
	TCPOptSAckOK    = 4
	TCPOptTimestamp = 8
)

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte // references the frame buffer; nil if none
	HeaderLen        int
}

// Convenience flag accessors used pervasively by the handshake engine.

// SYN reports whether the SYN flag is set.
func (t *TCP) SYN() bool { return t.Flags&TCPSyn != 0 }

// ACK reports whether the ACK flag is set.
func (t *TCP) ACK() bool { return t.Flags&TCPAck != 0 }

// RST reports whether the RST flag is set.
func (t *TCP) RST() bool { return t.Flags&TCPRst != 0 }

// FIN reports whether the FIN flag is set.
func (t *TCP) FIN() bool { return t.Flags&TCPFin != 0 }

// IsSYN reports a pure SYN (connection request, first packet of a handshake).
func (t *TCP) IsSYN() bool { return t.Flags&(TCPSyn|TCPAck) == TCPSyn }

// IsSYNACK reports a SYN-ACK (second packet of a handshake).
func (t *TCP) IsSYNACK() bool { return t.Flags&(TCPSyn|TCPAck) == TCPSyn|TCPAck }

// Decode parses a TCP header from data, returning bytes consumed.
func (t *TCP) Decode(data []byte) (int, error) {
	if len(data) < TCPMinHeaderLen {
		return 0, ErrHeaderTooShort
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	hlen := int(t.DataOffset) * 4
	if hlen < TCPMinHeaderLen {
		return 0, ErrBadHeaderLen
	}
	if len(data) < hlen {
		return 0, ErrHeaderTooShort
	}
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	if hlen > TCPMinHeaderLen {
		t.Options = data[TCPMinHeaderLen:hlen]
	} else {
		t.Options = nil
	}
	t.HeaderLen = hlen
	return hlen, nil
}

// MSS returns the Maximum Segment Size option value, or 0 if absent.
func (t *TCP) MSS() uint16 {
	opts := t.Options
	for len(opts) > 0 {
		switch opts[0] {
		case TCPOptEnd:
			return 0
		case TCPOptNop:
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return 0
			}
			if opts[0] == TCPOptMSS && opts[1] == 4 {
				return binary.BigEndian.Uint16(opts[2:4])
			}
			opts = opts[opts[1]:]
		}
	}
	return 0
}

// TimestampOption returns the TSval/TSecr pair from the TCP timestamp option
// and whether it was present.
func (t *TCP) TimestampOption() (tsval, tsecr uint32, ok bool) {
	opts := t.Options
	for len(opts) > 0 {
		switch opts[0] {
		case TCPOptEnd:
			return 0, 0, false
		case TCPOptNop:
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return 0, 0, false
			}
			if opts[0] == TCPOptTimestamp && opts[1] == 10 {
				return binary.BigEndian.Uint32(opts[2:6]), binary.BigEndian.Uint32(opts[6:10]), true
			}
			opts = opts[opts[1]:]
		}
	}
	return 0, 0, false
}

// Encode serializes the header into buf without a checksum (use
// TransportChecksum and PutChecksum afterwards, once the payload is in
// place). Options must be padded to a multiple of 4 bytes. Returns bytes
// written.
func (t *TCP) Encode(buf []byte) (int, error) {
	if len(t.Options)%4 != 0 {
		return 0, ErrBadHeaderLen
	}
	hlen := TCPMinHeaderLen + len(t.Options)
	if len(buf) < hlen {
		return 0, ErrFrameTooShort
	}
	binary.BigEndian.PutUint16(buf[0:], t.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], t.DstPort)
	binary.BigEndian.PutUint32(buf[4:], t.Seq)
	binary.BigEndian.PutUint32(buf[8:], t.Ack)
	buf[12] = uint8(hlen/4) << 4
	buf[13] = t.Flags
	binary.BigEndian.PutUint16(buf[14:], t.Window)
	buf[16], buf[17] = 0, 0
	binary.BigEndian.PutUint16(buf[18:], t.Urgent)
	copy(buf[TCPMinHeaderLen:], t.Options)
	return hlen, nil
}

// EncodedLen returns the number of bytes Encode will write.
func (t *TCP) EncodedLen() int { return TCPMinHeaderLen + len(t.Options) }

// PutTCPChecksum stores a computed checksum into an encoded TCP header.
func PutTCPChecksum(segment []byte, cs uint16) {
	binary.BigEndian.PutUint16(segment[16:18], cs)
}

// TimestampOptionLen is the encoded size of PutTimestampOption's output
// (NOP, NOP, then the 10-byte timestamp option — the standard padding).
const TimestampOptionLen = 12

// PutTimestampOption writes the RFC 7323 timestamp option (padded with two
// NOPs to a 4-byte multiple) into buf and returns the 12-byte slice.
func PutTimestampOption(buf []byte, tsval, tsecr uint32) []byte {
	buf[0], buf[1] = TCPOptNop, TCPOptNop
	buf[2], buf[3] = TCPOptTimestamp, 10
	binary.BigEndian.PutUint32(buf[4:], tsval)
	binary.BigEndian.PutUint32(buf[8:], tsecr)
	return buf[:TimestampOptionLen]
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// Decode parses a UDP header from data, returning bytes consumed.
func (u *UDP) Decode(data []byte) (int, error) {
	if len(data) < UDPHeaderLen {
		return 0, ErrHeaderTooShort
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	return UDPHeaderLen, nil
}

// Encode serializes the header into buf without a checksum. Length must be
// set by the caller. Returns bytes written.
func (u *UDP) Encode(buf []byte) (int, error) {
	if len(buf) < UDPHeaderLen {
		return 0, ErrFrameTooShort
	}
	binary.BigEndian.PutUint16(buf[0:], u.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], u.DstPort)
	binary.BigEndian.PutUint16(buf[4:], u.Length)
	buf[6], buf[7] = 0, 0
	return UDPHeaderLen, nil
}
