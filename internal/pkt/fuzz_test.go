package pkt

// Native fuzz target for the frame parser — the first code in the pipeline
// to touch attacker-controlled bytes. The parser's contract under garbage
// is: never panic, never reference memory outside the frame, always keep
// Decoded/Stats consistent. Seeds cover every decode path (IPv4, IPv6,
// VLAN, QinQ, TCP options, UDP, fragments, non-IP) and the checked-in
// corpus under testdata/fuzz/FuzzParsePacket adds truncated and bit-flipped
// variants; plain `go test` replays all of them, CI additionally runs a
// short `-fuzz` smoke. Regenerate the corpus files with RURU_UPDATE=1
// (see docs/TESTING.md).

import (
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSeedFrames builds one representative frame per parser path.
func fuzzSeedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	buf := make([]byte, 256)
	var seeds [][]byte
	add := func(n int, err error) {
		if err != nil {
			tb.Fatalf("building seed frame: %v", err)
		}
		seeds = append(seeds, append([]byte(nil), buf[:n]...))
	}

	v4a := netip.MustParseAddr("16.1.2.3")
	v4b := netip.MustParseAddr("17.64.0.9")
	v6a := netip.MustParseAddr("2001:db8::1")
	v6b := netip.MustParseAddr("2001:db8:0:1::9")

	// IPv4 SYN.
	add(BuildTCPFrame(buf, &TCPFrameSpec{
		Src: v4a, Dst: v4b, SrcPort: 40000, DstPort: 443,
		Seq: 1000, Flags: TCPSyn, Window: 65535,
	}))
	// IPv4 ACK with options and payload.
	add(BuildTCPFrame(buf, &TCPFrameSpec{
		Src: v4b, Dst: v4a, SrcPort: 443, DstPort: 40000,
		Seq: 2000, Ack: 1001, Flags: TCPAck, Window: 1024,
		Options: []byte{8, 10, 0, 0, 0, 1, 0, 0, 0, 2, 1, 1},
		Payload: []byte("GET / HTTP/1.1"),
	}))
	// VLAN-tagged SYN.
	add(BuildTCPFrame(buf, &TCPFrameSpec{
		VLAN: 42, Src: v4a, Dst: v4b, SrcPort: 40001, DstPort: 80,
		Seq: 7, Flags: TCPSyn,
	}))
	// QinQ: encode a two-tag Ethernet header by hand, then an IPv4/TCP
	// frame body spliced after it.
	n, err := BuildTCPFrame(buf, &TCPFrameSpec{
		VLAN: 100, Src: v4a, Dst: v4b, SrcPort: 40002, DstPort: 80,
		Seq: 9, Flags: TCPSyn,
	})
	if err != nil {
		tb.Fatal(err)
	}
	qinq := make([]byte, 0, n+VLANTagLen)
	qinq = append(qinq, buf[:12]...)           // MACs
	qinq = append(qinq, 0x88, 0xa8, 0x00, 200) // outer 802.1ad tag, VID 200
	qinq = append(qinq, buf[12:n]...)          // inner 802.1Q tag + rest
	seeds = append(seeds, qinq)
	// IPv6 SYN.
	add(BuildTCPFrame(buf, &TCPFrameSpec{
		Src: v6a, Dst: v6b, SrcPort: 50000, DstPort: 443,
		Seq: 77, Flags: TCPSyn,
	}))
	// UDP.
	add(BuildUDPFrame(buf, MAC{1}, MAC{2}, v4a, v4b, 5353, 5353, []byte("dns?")))
	// Non-IP ethertype (ARP).
	arp := append([]byte(nil), buf[:EthernetHeaderLen]...)
	arp[12], arp[13] = 0x08, 0x06
	seeds = append(seeds, arp)
	// IPv4 fragment: rebuild the SYN with a fragment offset and fixed
	// checksum bytes zeroed (the parser only checksums when asked).
	fragN, err := BuildTCPFrame(buf, &TCPFrameSpec{
		Src: v4a, Dst: v4b, SrcPort: 40003, DstPort: 443, Seq: 1, Flags: TCPSyn,
	})
	if err != nil {
		tb.Fatal(err)
	}
	frag := append([]byte(nil), buf[:fragN]...)
	frag[EthernetHeaderLen+6] = 0x20 // more-fragments, offset 8
	frag[EthernetHeaderLen+7] = 0x01
	seeds = append(seeds, frag)
	return seeds
}

func FuzzParsePacket(f *testing.F) {
	for _, s := range fuzzSeedFrames(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, verify := range []bool{false, true} {
			p := Parser{VerifyChecksums: verify}
			var s Summary
			err := p.Parse(data, &s)
			if p.Stats.Frames != 1 {
				t.Fatalf("Frames = %d after one Parse", p.Stats.Frames)
			}
			if err != nil {
				continue
			}
			// Decoded-layer consistency: transport implies network,
			// network implies Ethernet, and the IPv6 flag matches.
			if s.Decoded&(LayerTCP|LayerUDP) != 0 && s.Decoded&(LayerIPv4|LayerIPv6) == 0 {
				t.Fatalf("transport decoded without network: %b", s.Decoded)
			}
			if s.Decoded&(LayerIPv4|LayerIPv6) != 0 && s.Decoded&LayerEthernet == 0 {
				t.Fatalf("network decoded without Ethernet: %b", s.Decoded)
			}
			if s.Decoded&LayerIPv4 != 0 && s.IPv6 || s.Decoded&LayerIPv6 != 0 && !s.IPv6 {
				t.Fatalf("IPv6 flag inconsistent with Decoded %b", s.Decoded)
			}
			// Payload must be a view into the frame, never larger than it.
			if len(s.Payload) > len(data) {
				t.Fatalf("payload %d bytes from a %d-byte frame", len(s.Payload), len(data))
			}
			if s.Decoded&(LayerIPv4|LayerIPv6) != 0 {
				if !s.Src().IsValid() || !s.Dst().IsValid() {
					t.Fatalf("decoded network layer with invalid addresses")
				}
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus
// (testdata/fuzz/FuzzParsePacket) from the builder seeds plus truncated
// and bit-flipped variants. Run with RURU_UPDATE=1; skipped otherwise.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("RURU_UPDATE") == "" {
		t.Skip("set RURU_UPDATE=1 to regenerate the fuzz corpus")
	}
	seeds := fuzzSeedFrames(t)
	var all [][]byte
	for _, s := range seeds {
		all = append(all, s)
		if len(s) > 15 {
			all = append(all, s[:len(s)/2], s[:15]) // truncations
			flip := append([]byte(nil), s...)
			flip[len(flip)/3] ^= 0xff // corrupt a header byte
			all = append(all, flip)
		}
	}
	writeCorpusFiles(t, "FuzzParsePacket", all)
}

// writeCorpusFiles emits Go fuzz corpus files (version 1 encoding, one
// []byte argument) under testdata/fuzz/<name>/seed-NNN.
func writeCorpusFiles(t *testing.T, name string, seeds [][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		path := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d corpus files to %s", len(seeds), dir)
}
