package pkt

import "net/netip"

// Layer identifies which headers a Parser successfully decoded.
type Layer uint8

// Layers reported in Summary.Decoded as a bitmask.
const (
	LayerEthernet Layer = 1 << iota
	LayerIPv4
	LayerIPv6
	LayerTCP
	LayerUDP
)

// Summary is the flattened result of parsing one frame on the fast path.
// It holds exactly the fields the Ruru measurement engine needs, decoded in
// one pass with zero allocation. Slices inside the embedded headers reference
// the frame buffer, so a Summary is only valid until the buffer is recycled.
type Summary struct {
	Eth  Ethernet
	IP4  IPv4
	IP6  IPv6
	TCP  TCP
	UDP  UDP
	IPv6 bool // which IP struct is valid

	Decoded Layer // bitmask of successfully decoded layers

	// Payload references the transport payload within the frame buffer.
	Payload []byte
}

// Src returns the network-layer source address.
func (s *Summary) Src() netip.Addr {
	if s.IPv6 {
		return s.IP6.Src
	}
	return s.IP4.Src
}

// Dst returns the network-layer destination address.
func (s *Summary) Dst() netip.Addr {
	if s.IPv6 {
		return s.IP6.Dst
	}
	return s.IP4.Dst
}

// Proto returns the transport protocol carried by the network layer.
func (s *Summary) Proto() IPProto {
	if s.IPv6 {
		return s.IP6.Protocol
	}
	return s.IP4.Protocol
}

// IsTCP reports whether a TCP header was decoded.
func (s *Summary) IsTCP() bool { return s.Decoded&LayerTCP != 0 }

// Parser decodes Ethernet/IPv4/IPv6/TCP/UDP stacks into a caller-owned
// Summary without allocating. One Parser per receive queue; Parsers are not
// safe for concurrent use (they are cheap — embed one per worker).
type Parser struct {
	// VerifyChecksums enables IPv4 header checksum validation. Transport
	// checksums are not verified on the fast path (the tap sees segments
	// the end hosts will themselves validate), matching Ruru's DPDK app.
	VerifyChecksums bool

	// Stats counts parse outcomes since creation.
	Stats ParserStats
}

// ParserStats counts parse outcomes.
type ParserStats struct {
	Frames    uint64 // frames presented
	TCPOK     uint64 // frames parsed through a TCP header
	UDPOK     uint64 // frames parsed through a UDP header
	NonIP     uint64 // ARP and friends
	OtherIP   uint64 // IP but not TCP/UDP (ICMP, etc.)
	Fragments uint64 // IP fragments that hid the transport header
	Errors    uint64 // malformed/truncated frames
	BadCsum   uint64 // IPv4 header checksum failures (when enabled)
}

// Parse decodes data into s. It returns nil when the frame was understood at
// least through the network layer; transport-layer absence (e.g. ICMP or a
// fragment) is not an error — check s.Decoded. Errors indicate a frame the
// pipeline should drop.
//
// Parse is on the per-frame hot path and must not allocate (the Summary is
// caller-owned scratch; sub-decoders return sentinel errors).
//
//ruru:noalloc
func (p *Parser) Parse(data []byte, s *Summary) error {
	p.Stats.Frames++
	s.Decoded = 0
	s.Payload = nil

	n, err := s.Eth.Decode(data)
	if err != nil {
		p.Stats.Errors++
		return err
	}
	s.Decoded |= LayerEthernet
	rest := data[n:]

	var (
		src, dst  netip.Addr
		proto     IPProto
		transport []byte
	)
	switch s.Eth.Type {
	case EtherTypeIPv4:
		hn, err := s.IP4.Decode(rest)
		if err != nil {
			p.Stats.Errors++
			return err
		}
		if p.VerifyChecksums && !s.IP4.VerifyChecksum(rest) {
			p.Stats.BadCsum++
			return ErrBadChecksum
		}
		s.Decoded |= LayerIPv4
		s.IPv6 = false
		if s.IP4.IsFragment() && s.IP4.FragOffset != 0 {
			// Transport header lives in the first fragment only.
			p.Stats.Fragments++
			return nil
		}
		src, dst, proto = s.IP4.Src, s.IP4.Dst, s.IP4.Protocol
		end := hn + s.IP4.PayloadLen
		if end > len(rest) {
			end = len(rest)
		}
		transport = rest[hn:end]
	case EtherTypeIPv6:
		hn, err := s.IP6.Decode(rest)
		if err != nil {
			p.Stats.Errors++
			return err
		}
		s.Decoded |= LayerIPv6
		s.IPv6 = true
		if s.IP6.Fragmented {
			p.Stats.Fragments++
			return nil
		}
		src, dst, proto = s.IP6.Src, s.IP6.Dst, s.IP6.Protocol
		transport = rest[hn:]
	default:
		p.Stats.NonIP++
		return nil
	}
	_ = src
	_ = dst

	switch proto {
	case IPProtoTCP:
		tn, err := s.TCP.Decode(transport)
		if err != nil {
			p.Stats.Errors++
			return err
		}
		s.Decoded |= LayerTCP
		s.Payload = transport[tn:]
		p.Stats.TCPOK++
	case IPProtoUDP:
		un, err := s.UDP.Decode(transport)
		if err != nil {
			p.Stats.Errors++
			return err
		}
		s.Decoded |= LayerUDP
		s.Payload = transport[un:]
		p.Stats.UDPOK++
	default:
		p.Stats.OtherIP++
	}
	return nil
}
