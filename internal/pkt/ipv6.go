package pkt

import (
	"encoding/binary"
	"net/netip"
)

// IPv6 is a decoded IPv6 header. The decoder walks well-known extension
// headers (hop-by-hop, routing, destination options, fragment) so that
// Protocol reflects the upper-layer protocol and HeaderLen covers the whole
// chain, the way a flow classifier needs it.
type IPv6 struct {
	Version      uint8 // always 6 after a successful Decode
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16 // as carried in the fixed header
	NextHeader   IPProto
	HopLimit     uint8
	Src, Dst     netip.Addr
	Protocol     IPProto // upper-layer protocol after extension headers
	HeaderLen    int     // fixed header + extension headers consumed
	Fragmented   bool    // a fragment header was present
}

// Decode parses the fixed IPv6 header and any leading extension headers,
// returning total bytes consumed.
func (ip *IPv6) Decode(data []byte) (int, error) {
	if len(data) < IPv6HeaderLen {
		return 0, ErrHeaderTooShort
	}
	vtf := binary.BigEndian.Uint32(data[0:4])
	ip.Version = uint8(vtf >> 28)
	if ip.Version != 6 {
		return 0, ErrBadVersion
	}
	ip.TrafficClass = uint8(vtf >> 20)
	ip.FlowLabel = vtf & 0x000fffff
	ip.PayloadLen = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = IPProto(data[6])
	ip.HopLimit = data[7]
	ip.Src = netip.AddrFrom16([16]byte(data[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(data[24:40]))
	ip.Fragmented = false

	off := IPv6HeaderLen
	next := ip.NextHeader
	// Walk extension headers to the upper-layer protocol. The chain is
	// bounded to defend against crafted loops.
	for hops := 0; hops < 8; hops++ {
		switch next {
		case IPProtoHopByHop, IPProtoRouting, IPProtoDstOpts:
			if len(data) < off+8 {
				return 0, ErrHeaderTooShort
			}
			n := IPProto(data[off])
			extLen := 8 + int(data[off+1])*8
			if len(data) < off+extLen {
				return 0, ErrHeaderTooShort
			}
			next = n
			off += extLen
		case IPProtoFragment:
			if len(data) < off+8 {
				return 0, ErrHeaderTooShort
			}
			ip.Fragmented = true
			next = IPProto(data[off])
			off += 8
		default:
			ip.Protocol = next
			ip.HeaderLen = off
			return off, nil
		}
	}
	return 0, ErrNotSupported
}

// Encode serializes the fixed header into buf (extension headers are not
// emitted; Protocol is written as the next-header value). PayloadLen must be
// set by the caller. Returns bytes written.
func (ip *IPv6) Encode(buf []byte) (int, error) {
	if len(buf) < IPv6HeaderLen {
		return 0, ErrFrameTooShort
	}
	if !ip.Src.Is6() || ip.Src.Is4In6() || !ip.Dst.Is6() || ip.Dst.Is4In6() {
		return 0, ErrBadVersion
	}
	binary.BigEndian.PutUint32(buf[0:], 6<<28|uint32(ip.TrafficClass)<<20|ip.FlowLabel&0x000fffff)
	binary.BigEndian.PutUint16(buf[4:], ip.PayloadLen)
	buf[6] = uint8(ip.Protocol)
	buf[7] = ip.HopLimit
	src, dst := ip.Src.As16(), ip.Dst.As16()
	copy(buf[8:24], src[:])
	copy(buf[24:40], dst[:])
	return IPv6HeaderLen, nil
}

// EncodedLen returns the number of bytes Encode will write.
func (ip *IPv6) EncodedLen() int { return IPv6HeaderLen }
