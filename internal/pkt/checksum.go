package pkt

import "encoding/binary"

// Checksum computes the RFC 1071 Internet checksum of data with the given
// initial partial sum. The returned value is the one's-complement of the
// one's-complement sum, ready to be stored in a header checksum field.
func Checksum(data []byte, initial uint32) uint16 {
	return ^uint16(foldChecksum(partialChecksum(data, initial)))
}

// partialChecksum accumulates the 16-bit one's-complement sum of data into
// sum without the final fold/complement, so sums can be chained across the
// pseudo-header and payload.
func partialChecksum(data []byte, sum uint32) uint32 {
	n := len(data)
	i := 0
	// Sum 16-bit words; unrolled by 4 words for throughput on large payloads.
	for ; i+8 <= n; i += 8 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
		sum += uint32(binary.BigEndian.Uint16(data[i+2:]))
		sum += uint32(binary.BigEndian.Uint16(data[i+4:]))
		sum += uint32(binary.BigEndian.Uint16(data[i+6:]))
	}
	for ; i+2 <= n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if i < n { // odd trailing byte is padded with zero on the right
		sum += uint32(data[i]) << 8
	}
	return sum
}

// foldChecksum reduces a 32-bit partial sum to 16 bits with end-around carry.
func foldChecksum(sum uint32) uint32 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return sum
}

// pseudoHeaderSum computes the partial checksum of the IPv4/IPv6 pseudo
// header used by TCP and UDP. src and dst must both be 4 or 16 bytes.
func pseudoHeaderSum(src, dst []byte, proto IPProto, length int) uint32 {
	var sum uint32
	sum = partialChecksum(src, sum)
	sum = partialChecksum(dst, sum)
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// TransportChecksum computes the TCP/UDP checksum over the pseudo header and
// the full transport segment (header + payload). The checksum field inside
// segment must be zeroed by the caller before computing.
func TransportChecksum(src, dst []byte, proto IPProto, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	return ^uint16(foldChecksum(partialChecksum(segment, sum)))
}

// VerifyTransportChecksum reports whether the transport segment (with its
// checksum field populated) checksums to zero under the pseudo header, i.e.
// whether the packet is intact.
func VerifyTransportChecksum(src, dst []byte, proto IPProto, segment []byte) bool {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	return uint16(foldChecksum(partialChecksum(segment, sum))) == 0xffff
}
