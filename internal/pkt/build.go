package pkt

import "net/netip"

// TCPFrameSpec describes a TCP/IP frame to serialize. It is the generator's
// interface to the wire format.
type TCPFrameSpec struct {
	SrcMAC, DstMAC   MAC
	VLAN             uint16 // 0 = untagged
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	TTL              uint8 // hop limit for IPv6; 0 means 64
	Payload          []byte
	Options          []byte // TCP options, padded to 4-byte multiple
}

// BuildTCPFrame serializes spec into buf, computing IP and TCP checksums.
// It returns the frame length. buf must be large enough
// (EthernetHeaderLen + optional VLAN + IP header + TCP header + payload);
// BuildTCPFrame returns ErrFrameTooShort otherwise. Frames shorter than the
// Ethernet minimum are NOT padded — the nic layer owns padding policy.
func BuildTCPFrame(buf []byte, spec *TCPFrameSpec) (int, error) {
	eth := Ethernet{Dst: spec.DstMAC, Src: spec.SrcMAC}
	if spec.VLAN != 0 {
		eth.VLANCount = 1
		eth.VLANs[0] = spec.VLAN
	}
	v6 := spec.Src.Is6() && !spec.Src.Is4In6()
	if v6 {
		eth.Type = EtherTypeIPv6
	} else {
		eth.Type = EtherTypeIPv4
	}

	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	tcp := TCP{
		SrcPort: spec.SrcPort, DstPort: spec.DstPort,
		Seq: spec.Seq, Ack: spec.Ack,
		Flags: spec.Flags, Window: spec.Window,
		Options: spec.Options,
	}
	tcpLen := tcp.EncodedLen() + len(spec.Payload)

	ethLen, err := eth.Encode(buf)
	if err != nil {
		return 0, err
	}

	var ipLen int
	var srcB, dstB []byte
	var src4, dst4 [4]byte
	var src16, dst16 [16]byte
	if v6 {
		ip := IPv6{
			PayloadLen: uint16(tcpLen),
			Protocol:   IPProtoTCP,
			HopLimit:   ttl,
			Src:        spec.Src, Dst: spec.Dst,
		}
		ipLen, err = ip.Encode(buf[ethLen:])
		if err != nil {
			return 0, err
		}
		src16, dst16 = spec.Src.As16(), spec.Dst.As16()
		srcB, dstB = src16[:], dst16[:]
	} else {
		ip := IPv4{
			TotalLen: uint16(IPv4MinHeaderLen + tcpLen),
			TTL:      ttl,
			Protocol: IPProtoTCP,
			Src:      spec.Src.Unmap(), Dst: spec.Dst.Unmap(),
		}
		ipLen, err = ip.Encode(buf[ethLen:])
		if err != nil {
			return 0, err
		}
		src4, dst4 = spec.Src.Unmap().As4(), spec.Dst.Unmap().As4()
		srcB, dstB = src4[:], dst4[:]
	}

	off := ethLen + ipLen
	if len(buf) < off+tcpLen {
		return 0, ErrFrameTooShort
	}
	tn, err := tcp.Encode(buf[off:])
	if err != nil {
		return 0, err
	}
	copy(buf[off+tn:], spec.Payload)
	segment := buf[off : off+tcpLen]
	PutTCPChecksum(segment, TransportChecksum(srcB, dstB, IPProtoTCP, segment))
	return off + tcpLen, nil
}

// TCPFrameLen returns the length BuildTCPFrame will produce for spec.
func TCPFrameLen(spec *TCPFrameSpec) int {
	n := EthernetHeaderLen
	if spec.VLAN != 0 {
		n += VLANTagLen
	}
	if spec.Src.Is6() && !spec.Src.Is4In6() {
		n += IPv6HeaderLen
	} else {
		n += IPv4MinHeaderLen
	}
	return n + TCPMinHeaderLen + len(spec.Options) + len(spec.Payload)
}

// BuildUDPFrame serializes a UDP/IPv4 frame into buf (used for non-TCP
// background traffic in the generator). Returns the frame length.
func BuildUDPFrame(buf []byte, srcMAC, dstMAC MAC, src, dst netip.Addr, srcPort, dstPort uint16, payload []byte) (int, error) {
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4}
	ethLen, err := eth.Encode(buf)
	if err != nil {
		return 0, err
	}
	udpLen := UDPHeaderLen + len(payload)
	ip := IPv4{
		TotalLen: uint16(IPv4MinHeaderLen + udpLen),
		TTL:      64,
		Protocol: IPProtoUDP,
		Src:      src.Unmap(), Dst: dst.Unmap(),
	}
	ipLen, err := ip.Encode(buf[ethLen:])
	if err != nil {
		return 0, err
	}
	off := ethLen + ipLen
	if len(buf) < off+udpLen {
		return 0, ErrFrameTooShort
	}
	u := UDP{SrcPort: srcPort, DstPort: dstPort, Length: uint16(udpLen)}
	if _, err := u.Encode(buf[off:]); err != nil {
		return 0, err
	}
	copy(buf[off+UDPHeaderLen:], payload)
	src4, dst4 := src.Unmap().As4(), dst.Unmap().As4()
	segment := buf[off : off+udpLen]
	cs := TransportChecksum(src4[:], dst4[:], IPProtoUDP, segment)
	segment[6] = byte(cs >> 8)
	segment[7] = byte(cs)
	return off + udpLen, nil
}
