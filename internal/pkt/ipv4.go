package pkt

import (
	"encoding/binary"
	"net/netip"
)

// IPv4 is a decoded IPv4 header.
type IPv4 struct {
	Version    uint8 // always 4 after a successful Decode
	IHL        uint8 // header length in 32-bit words
	TOS        uint8
	TotalLen   uint16
	ID         uint16
	Flags      uint8  // 3 bits: reserved, DF, MF
	FragOffset uint16 // in 8-byte units
	TTL        uint8
	Protocol   IPProto
	Checksum   uint16
	Src, Dst   netip.Addr
	Options    []byte // references the frame buffer; nil if none
	HeaderLen  int    // bytes consumed by the header
	PayloadLen int    // TotalLen - HeaderLen (clamped to available data)
}

// IPv4 flag bits (in the 3-bit Flags field).
const (
	IPv4DontFragment  = 0b010
	IPv4MoreFragments = 0b001
)

// IsFragment reports whether the packet is a non-first fragment or has more
// fragments coming (i.e. transport headers may be absent or split).
func (ip *IPv4) IsFragment() bool {
	return ip.FragOffset != 0 || ip.Flags&IPv4MoreFragments != 0
}

// Decode parses an IPv4 header from data, returning bytes consumed.
// Options, Src and Dst reference/copy from the frame buffer; the buffer must
// stay valid while the struct is in use.
func (ip *IPv4) Decode(data []byte) (int, error) {
	if len(data) < IPv4MinHeaderLen {
		return 0, ErrHeaderTooShort
	}
	vihl := data[0]
	ip.Version = vihl >> 4
	if ip.Version != 4 {
		return 0, ErrBadVersion
	}
	ip.IHL = vihl & 0x0f
	hlen := int(ip.IHL) * 4
	if hlen < IPv4MinHeaderLen {
		return 0, ErrBadHeaderLen
	}
	if len(data) < hlen {
		return 0, ErrHeaderTooShort
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProto(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	if hlen > IPv4MinHeaderLen {
		ip.Options = data[IPv4MinHeaderLen:hlen]
	} else {
		ip.Options = nil
	}
	ip.HeaderLen = hlen
	if int(ip.TotalLen) < hlen {
		return 0, ErrBadHeaderLen
	}
	ip.PayloadLen = int(ip.TotalLen) - hlen
	if avail := len(data) - hlen; ip.PayloadLen > avail {
		ip.PayloadLen = avail // truncated capture; keep what we have
	}
	return hlen, nil
}

// VerifyChecksum reports whether the header checksum over data (the header
// bytes including the stored checksum) is valid.
func (ip *IPv4) VerifyChecksum(data []byte) bool {
	hlen := int(ip.IHL) * 4
	if len(data) < hlen {
		return false
	}
	return uint16(foldChecksum(partialChecksum(data[:hlen], 0))) == 0xffff
}

// Encode serializes the header into buf and computes the header checksum.
// TotalLen must already be set by the caller. Returns bytes written.
func (ip *IPv4) Encode(buf []byte) (int, error) {
	hlen := IPv4MinHeaderLen + len(ip.Options)
	if hlen%4 != 0 {
		return 0, ErrBadHeaderLen
	}
	if len(buf) < hlen {
		return 0, ErrFrameTooShort
	}
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return 0, ErrBadVersion
	}
	buf[0] = 4<<4 | uint8(hlen/4)
	buf[1] = ip.TOS
	binary.BigEndian.PutUint16(buf[2:], ip.TotalLen)
	binary.BigEndian.PutUint16(buf[4:], ip.ID)
	binary.BigEndian.PutUint16(buf[6:], uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	buf[8] = ip.TTL
	buf[9] = uint8(ip.Protocol)
	buf[10], buf[11] = 0, 0
	src, dst := ip.Src.As4(), ip.Dst.As4()
	copy(buf[12:16], src[:])
	copy(buf[16:20], dst[:])
	copy(buf[IPv4MinHeaderLen:], ip.Options)
	cs := Checksum(buf[:hlen], 0)
	binary.BigEndian.PutUint16(buf[10:], cs)
	ip.Checksum = cs
	return hlen, nil
}

// EncodedLen returns the number of bytes Encode will write.
func (ip *IPv4) EncodedLen() int { return IPv4MinHeaderLen + len(ip.Options) }
