package ws

import (
	"net/http"
	"sync"
	"sync/atomic"
)

// Hub broadcasts messages to every connected WebSocket client. Each client
// has a buffered outbound queue; when a client falls behind by more than its
// queue depth, messages for it are dropped (counted), so the live map keeps
// its real-time property no matter how slow an individual browser is —
// matching the paper's "visualizes multiple thousands of connections per
// second ... on-the-fly" requirement.
type Hub struct {
	queue int

	mu      sync.Mutex
	clients map[*hubClient]struct{}
	closed  bool

	// count mirrors len(clients) so Clients() is lock-free: the pipeline's
	// sink workers probe it per batch to skip JSON marshalling entirely
	// when nobody is connected.
	count atomic.Int64

	sent    atomic.Uint64
	dropped atomic.Uint64
}

type hubClient struct {
	conn *Conn
	ch   chan []byte
	once sync.Once
}

// NewHub creates a hub with the given per-client queue depth (default 256).
func NewHub(queue int) *Hub {
	if queue <= 0 {
		queue = 256
	}
	return &Hub{queue: queue, clients: make(map[*hubClient]struct{})}
}

// ServeHTTP upgrades the request and services the client until it leaves.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	conn, err := Upgrade(w, r)
	if err != nil {
		return
	}
	c := &hubClient{conn: conn, ch: make(chan []byte, h.queue)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		conn.Close()
		return
	}
	h.clients[c] = struct{}{}
	h.count.Store(int64(len(h.clients)))
	h.mu.Unlock()

	// Reader goroutine: clients don't send data, but reading services
	// ping/pong and detects disconnects.
	go func() {
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				h.drop(c)
				return
			}
		}
	}()
	for msg := range c.ch {
		if err := conn.WriteMessage(OpText, msg); err != nil {
			h.drop(c)
			return
		}
		h.sent.Add(1)
	}
	conn.Close()
}

func (h *Hub) drop(c *hubClient) {
	h.mu.Lock()
	if _, ok := h.clients[c]; ok {
		delete(h.clients, c)
		h.count.Store(int64(len(h.clients)))
		c.once.Do(func() { close(c.ch) })
	}
	h.mu.Unlock()
	c.conn.Close()
}

// Broadcast queues msg for every connected client without blocking.
// Clients over their queue depth miss the message.
func (h *Hub) Broadcast(msg []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for c := range h.clients {
		select {
		case c.ch <- msg:
		default:
			h.dropped.Add(1)
		}
	}
}

// Clients returns the current client count. Lock-free: safe to call from
// every sink worker on every batch.
func (h *Hub) Clients() int {
	return int(h.count.Load())
}

// Stats returns (messages sent, messages dropped to slow clients).
func (h *Hub) Stats() (sent, dropped uint64) {
	return h.sent.Load(), h.dropped.Load()
}

// Close disconnects all clients and refuses new ones.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	clients := make([]*hubClient, 0, len(h.clients))
	for c := range h.clients {
		clients = append(clients, c)
	}
	h.clients = map[*hubClient]struct{}{}
	h.count.Store(0)
	h.mu.Unlock()
	for _, c := range clients {
		c.once.Do(func() { close(c.ch) })
		c.conn.Close()
	}
}
