package ws

import (
	"net/http"
	"sync"
	"sync/atomic"
)

// Stream modes a client can subscribe to via the `stream` query parameter.
// The zero/default mode receives the per-event live feed; "rollup" receives
// coalesced rollup-delta frames instead, so a wall of dashboards costs the
// pipeline O(buckets touched) per flush rather than O(events × clients).
const (
	StreamLive   = ""
	StreamRollup = "rollup"
)

// Hub broadcasts messages to every connected WebSocket client. Each client
// has a buffered outbound queue; when a client falls behind by more than its
// queue depth, messages for it are dropped (counted), so the live map keeps
// its real-time property no matter how slow an individual browser is —
// matching the paper's "visualizes multiple thousands of connections per
// second ... on-the-fly" requirement.
//
// Clients subscribe to exactly one stream (StreamLive or StreamRollup);
// Broadcast reaches the live audience, BroadcastRollup the rollup audience.
type Hub struct {
	queue int

	mu      sync.Mutex
	clients map[*hubClient]struct{}
	closed  bool

	// Per-stream client counts mirror the clients map so the audience
	// probes are lock-free: the pipeline's sink workers check them per
	// batch to skip JSON marshalling (live) or delta accumulation (rollup)
	// entirely when nobody is watching that stream.
	nLive   atomic.Int64
	nRollup atomic.Int64

	sent    atomic.Uint64
	dropped atomic.Uint64
}

type hubClient struct {
	conn   *Conn
	ch     chan []byte
	stream string
	once   sync.Once
}

// NewHub creates a hub with the given per-client queue depth (default 256).
func NewHub(queue int) *Hub {
	if queue <= 0 {
		queue = 256
	}
	return &Hub{queue: queue, clients: make(map[*hubClient]struct{})}
}

// ServeHTTP upgrades the request and services the client until it leaves.
// The `stream` query parameter picks the subscription: absent/empty for the
// live event feed, "rollup" for coalesced delta frames; anything else is
// rejected with 400 before the upgrade.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	stream := r.URL.Query().Get("stream")
	if stream != StreamLive && stream != StreamRollup {
		http.Error(w, "unknown stream (want empty or \"rollup\")", http.StatusBadRequest)
		return
	}
	conn, err := Upgrade(w, r)
	if err != nil {
		return
	}
	c := &hubClient{conn: conn, ch: make(chan []byte, h.queue), stream: stream}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		conn.Close()
		return
	}
	h.clients[c] = struct{}{}
	h.recountLocked()
	h.mu.Unlock()

	// Reader goroutine: clients don't send data, but reading services
	// ping/pong and detects disconnects.
	go func() {
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				h.drop(c)
				return
			}
		}
	}()
	for msg := range c.ch {
		if err := conn.WriteMessage(OpText, msg); err != nil {
			h.drop(c)
			return
		}
		h.sent.Add(1)
	}
	conn.Close()
}

// recountLocked refreshes the lock-free per-stream counts. Caller holds mu.
func (h *Hub) recountLocked() {
	var live, rollup int64
	for c := range h.clients {
		if c.stream == StreamRollup {
			rollup++
		} else {
			live++
		}
	}
	h.nLive.Store(live)
	h.nRollup.Store(rollup)
}

func (h *Hub) drop(c *hubClient) {
	h.mu.Lock()
	if _, ok := h.clients[c]; ok {
		delete(h.clients, c)
		h.recountLocked()
		c.once.Do(func() { close(c.ch) })
	}
	h.mu.Unlock()
	c.conn.Close()
}

// Broadcast queues msg for every live-stream client without blocking.
// Clients over their queue depth miss the message.
func (h *Hub) Broadcast(msg []byte) {
	h.broadcast(msg, StreamLive)
}

// BroadcastRollup queues a rollup-delta frame for every rollup-stream
// client without blocking.
func (h *Hub) BroadcastRollup(msg []byte) {
	h.broadcast(msg, StreamRollup)
}

func (h *Hub) broadcast(msg []byte, stream string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for c := range h.clients {
		if c.stream != stream {
			continue
		}
		select {
		case c.ch <- msg:
		default:
			h.dropped.Add(1)
		}
	}
}

// Clients returns the current client count across all streams. Lock-free:
// safe to call from every sink worker on every batch.
func (h *Hub) Clients() int {
	return int(h.nLive.Load() + h.nRollup.Load())
}

// LiveClients returns the live-stream audience size, lock-free.
func (h *Hub) LiveClients() int {
	return int(h.nLive.Load())
}

// RollupClients returns the rollup-stream audience size, lock-free.
func (h *Hub) RollupClients() int {
	return int(h.nRollup.Load())
}

// Stats returns (messages sent, messages dropped to slow clients).
func (h *Hub) Stats() (sent, dropped uint64) {
	return h.sent.Load(), h.dropped.Load()
}

// Close disconnects all clients and refuses new ones.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	clients := make([]*hubClient, 0, len(h.clients))
	for c := range h.clients {
		clients = append(clients, c)
	}
	h.clients = map[*hubClient]struct{}{}
	h.nLive.Store(0)
	h.nRollup.Store(0)
	h.mu.Unlock()
	for _, c := range clients {
		c.once.Do(func() { close(c.ch) })
		c.conn.Close()
	}
}
