package ws

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func startEchoServer(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			op, msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(op, msg); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return "ws://" + strings.TrimPrefix(srv.URL, "http://") + "/"
}

func TestHandshakeAndEcho(t *testing.T) {
	url := startEchoServer(t)
	c, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, msg := range []string{"hello", "", "multi word message"} {
		if err := c.WriteMessage(OpText, []byte(msg)); err != nil {
			t.Fatal(err)
		}
		op, got, err := c.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if op != OpText || string(got) != msg {
			t.Fatalf("echo = %v %q, want %q", op, got, msg)
		}
	}
}

func TestBinaryAndLargeMessages(t *testing.T) {
	url := startEchoServer(t)
	c, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Cover all three length encodings: <126, 16-bit, 64-bit.
	for _, size := range []int{0, 125, 126, 65535, 65536, 200_000} {
		msg := bytes.Repeat([]byte{0xab}, size)
		if err := c.WriteMessage(OpBinary, msg); err != nil {
			t.Fatal(err)
		}
		op, got, err := c.ReadMessage()
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if op != OpBinary || !bytes.Equal(got, msg) {
			t.Fatalf("size %d corrupted (got %d bytes)", size, len(got))
		}
	}
}

func TestEchoProperty(t *testing.T) {
	url := startEchoServer(t)
	c, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := func(msg []byte) bool {
		if len(msg) > 10000 {
			msg = msg[:10000]
		}
		if err := c.WriteMessage(OpBinary, msg); err != nil {
			return false
		}
		_, got, err := c.ReadMessage()
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPingPong(t *testing.T) {
	url := startEchoServer(t)
	c, err := Dial(url)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Ping; server must answer with pong which ReadMessage consumes
	// transparently — follow with an echo to prove the stream advanced.
	if err := c.Ping([]byte("keepalive")); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteMessage(OpText, []byte("after-ping")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, got, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "after-ping" {
		t.Fatalf("got %q", got)
	}
}

func TestCloseHandshake(t *testing.T) {
	done := make(chan error, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		_, _, err = conn.ReadMessage()
		done <- err
	}))
	defer srv.Close()
	c, err := Dial("ws://" + strings.TrimPrefix(srv.URL, "http://") + "/")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("server read err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not observe close")
	}
}

func TestUpgradeRejectsPlainHTTP(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Error("plain GET upgraded")
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestUpgradeRejectsBadVersion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		Upgrade(w, r)
	}))
	defer srv.Close()
	req, _ := http.NewRequest("GET", srv.URL, nil)
	req.Header.Set("Connection", "Upgrade")
	req.Header.Set("Upgrade", "websocket")
	req.Header.Set("Sec-WebSocket-Key", "x")
	req.Header.Set("Sec-WebSocket-Version", "8")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestAcceptKeyRFCVector(t *testing.T) {
	// RFC 6455 §1.3 example.
	if got := acceptKey("dGhlIHNhbXBsZSBub25jZQ=="); got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("acceptKey = %q", got)
	}
}

func TestMessageSizeLimit(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		conn.MaxMessage = 1024
		_, _, err = conn.ReadMessage()
		if err != ErrMessageTooBig {
			t.Errorf("server err = %v, want ErrMessageTooBig", err)
		}
		conn.Close()
	}))
	defer srv.Close()
	c, err := Dial("ws://" + strings.TrimPrefix(srv.URL, "http://") + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.WriteMessage(OpBinary, make([]byte, 4096))
	time.Sleep(100 * time.Millisecond)
}

func TestHubBroadcast(t *testing.T) {
	hub := NewHub(64)
	defer hub.Close()
	srv := httptest.NewServer(hub)
	defer srv.Close()
	url := "ws://" + strings.TrimPrefix(srv.URL, "http://") + "/"

	const nClients = 5
	conns := make([]*Conn, nClients)
	for i := range conns {
		c, err := Dial(url)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	deadline := time.Now().Add(2 * time.Second)
	for hub.Clients() < nClients {
		if time.Now().After(deadline) {
			t.Fatalf("only %d clients registered", hub.Clients())
		}
		time.Sleep(5 * time.Millisecond)
	}
	const nMsgs = 20
	for i := 0; i < nMsgs; i++ {
		hub.Broadcast([]byte(fmt.Sprintf("m%d", i)))
	}
	for ci, c := range conns {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		for i := 0; i < nMsgs; i++ {
			_, msg, err := c.ReadMessage()
			if err != nil {
				t.Fatalf("client %d msg %d: %v", ci, i, err)
			}
			if string(msg) != fmt.Sprintf("m%d", i) {
				t.Fatalf("client %d msg %d = %q", ci, i, msg)
			}
		}
	}
	sent, dropped := hub.Stats()
	if sent != nClients*nMsgs || dropped != 0 {
		t.Fatalf("stats: sent=%d dropped=%d", sent, dropped)
	}
}

func TestHubSlowClientDoesNotBlockBroadcast(t *testing.T) {
	hub := NewHub(4)
	defer hub.Close()
	srv := httptest.NewServer(hub)
	defer srv.Close()
	c, err := Dial("ws://" + strings.TrimPrefix(srv.URL, "http://") + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for hub.Clients() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("client never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Never read from the client; broadcast far beyond its queue.
	start := time.Now()
	for i := 0; i < 10000; i++ {
		hub.Broadcast([]byte("x"))
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("broadcast blocked on slow client")
	}
	if _, dropped := hub.Stats(); dropped == 0 {
		t.Fatal("no drops recorded for slow client")
	}
}

func TestHubClientDisconnectCleanup(t *testing.T) {
	hub := NewHub(16)
	defer hub.Close()
	srv := httptest.NewServer(hub)
	defer srv.Close()
	c, err := Dial("ws://" + strings.TrimPrefix(srv.URL, "http://") + "/")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for hub.Clients() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("client never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Close()
	deadline = time.Now().Add(2 * time.Second)
	for hub.Clients() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never cleaned up")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConcurrentBroadcasters(t *testing.T) {
	hub := NewHub(1 << 12)
	defer hub.Close()
	srv := httptest.NewServer(hub)
	defer srv.Close()
	c, err := Dial("ws://" + strings.TrimPrefix(srv.URL, "http://") + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for hub.Clients() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no client")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var received atomic.Uint64
	go func() {
		for {
			if _, _, err := c.ReadMessage(); err != nil {
				return
			}
			received.Add(1)
		}
	}()
	var wg sync.WaitGroup
	const perWorker = 500
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				hub.Broadcast([]byte("data"))
			}
		}()
	}
	wg.Wait()
	deadline = time.Now().Add(5 * time.Second)
	for {
		sent, dropped := hub.Stats()
		if received.Load() == sent && sent+dropped == 4*perWorker {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sent=%d dropped=%d received=%d", sent, dropped, received.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func BenchmarkBroadcastFanout8(b *testing.B) {
	hub := NewHub(1 << 16)
	defer hub.Close()
	srv := httptest.NewServer(hub)
	defer srv.Close()
	url := "ws://" + strings.TrimPrefix(srv.URL, "http://") + "/"
	for i := 0; i < 8; i++ {
		c, err := Dial(url)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		go func() {
			for {
				if _, _, err := c.ReadMessage(); err != nil {
					return
				}
			}
		}()
	}
	for hub.Clients() < 8 {
		time.Sleep(time.Millisecond)
	}
	msg := []byte(`{"time":1,"total_ns":145000000,"src":{"city":"Auckland"},"dst":{"city":"Los Angeles"}}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Broadcast(msg)
	}
}

// TestHubStreamRouting pins the per-client stream subscription: live and
// rollup audiences are disjoint, each Broadcast* reaches exactly its own
// stream, and the per-stream counts track connects and disconnects.
func TestHubStreamRouting(t *testing.T) {
	hub := NewHub(64)
	defer hub.Close()
	srv := httptest.NewServer(hub)
	defer srv.Close()
	base := "ws://" + strings.TrimPrefix(srv.URL, "http://")

	live, err := Dial(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	rollup, err := Dial(base + "/?stream=rollup")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for hub.LiveClients() < 1 || hub.RollupClients() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("counts: live=%d rollup=%d", hub.LiveClients(), hub.RollupClients())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if hub.Clients() != 2 {
		t.Fatalf("Clients() = %d, want 2", hub.Clients())
	}

	hub.Broadcast([]byte("live-frame"))
	hub.BroadcastRollup([]byte("rollup-frame"))

	live.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, msg, err := live.ReadMessage(); err != nil || string(msg) != "live-frame" {
		t.Fatalf("live client read %q, %v; want live-frame", msg, err)
	}
	rollup.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, msg, err := rollup.ReadMessage(); err != nil || string(msg) != "rollup-frame" {
		t.Fatalf("rollup client read %q, %v; want rollup-frame", msg, err)
	}
	// Neither client may see the other stream's frame: send a second frame
	// on each stream and check it arrives next (nothing interleaved).
	hub.Broadcast([]byte("live-2"))
	hub.BroadcastRollup([]byte("rollup-2"))
	if _, msg, err := live.ReadMessage(); err != nil || string(msg) != "live-2" {
		t.Fatalf("live client read %q, %v; want live-2", msg, err)
	}
	if _, msg, err := rollup.ReadMessage(); err != nil || string(msg) != "rollup-2" {
		t.Fatalf("rollup client read %q, %v; want rollup-2", msg, err)
	}

	rollup.Close()
	deadline = time.Now().Add(2 * time.Second)
	for hub.RollupClients() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rollup count stuck at %d after disconnect", hub.RollupClients())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if hub.LiveClients() != 1 || hub.Clients() != 1 {
		t.Fatalf("after disconnect: live=%d total=%d", hub.LiveClients(), hub.Clients())
	}
}

// TestHubRejectsUnknownStream: an unrecognized stream parameter is a 400
// before any upgrade, so a typo fails loudly instead of silently joining
// the live feed.
func TestHubRejectsUnknownStream(t *testing.T) {
	hub := NewHub(64)
	defer hub.Close()
	srv := httptest.NewServer(hub)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/?stream=firehose")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if _, err := Dial("ws://" + strings.TrimPrefix(srv.URL, "http://") + "/?stream=firehose"); err == nil {
		t.Fatal("Dial with unknown stream succeeded, want handshake failure")
	}
	if hub.Clients() != 0 {
		t.Fatalf("rejected client counted: %d", hub.Clients())
	}
}
