// Package ws implements the WebSocket protocol (RFC 6455) server and client
// used to stream enriched measurements to Ruru's live frontends (paper §2:
// results are "sent ... to the frontend (using WebSockets) that displays the
// results in real-time").
//
// Only what the pipeline needs is implemented, but implemented properly:
// the HTTP upgrade handshake, frame encode/decode with 7/16/64-bit lengths,
// client-to-server masking (enforced), fragmentation reassembly with limits,
// ping/pong keepalive, and the close handshake. The Hub (hub.go) fans
// broadcast messages out to every connected frontend with per-client send
// budgets so one slow browser cannot stall the pipeline.
package ws

import (
	"bufio"
	crand "crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Opcode is a WebSocket frame opcode.
type Opcode byte

// RFC 6455 §5.2 opcodes.
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xA
)

// Errors returned by the package.
var (
	ErrNotWebSocket   = errors.New("ws: not a websocket handshake")
	ErrBadFrame       = errors.New("ws: malformed frame")
	ErrMessageTooBig  = errors.New("ws: message exceeds limit")
	ErrUnmaskedClient = errors.New("ws: client frame not masked")
	ErrClosed         = errors.New("ws: connection closed")
)

const websocketGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// DefaultMaxMessage bounds reassembled message size.
const DefaultMaxMessage = 1 << 20

// acceptKey computes the Sec-WebSocket-Accept header value.
func acceptKey(key string) string {
	h := sha1.New()
	io.WriteString(h, key)
	io.WriteString(h, websocketGUID)
	return base64.StdEncoding.EncodeToString(h.Sum(nil))
}

// Conn is an established WebSocket connection. Reads and writes may proceed
// concurrently with each other (one reader + one writer goroutine).
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	server bool // server side: expect masked frames, send unmasked

	writeMu sync.Mutex
	closed  bool

	MaxMessage int
	rng        *rand.Rand
}

// Upgrade performs the server-side handshake on an http request and returns
// the connection. The http.ResponseWriter must support hijacking.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if !strings.EqualFold(r.Method, "GET") ||
		!headerContainsToken(r.Header, "Connection", "upgrade") ||
		!headerContainsToken(r.Header, "Upgrade", "websocket") {
		http.Error(w, "not a websocket handshake", http.StatusBadRequest)
		return nil, ErrNotWebSocket
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "unsupported websocket version", http.StatusUpgradeRequired)
		return nil, ErrNotWebSocket
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, ErrNotWebSocket
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "cannot hijack", http.StatusInternalServerError)
		return nil, ErrNotWebSocket
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, err
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := conn.Write([]byte(resp)); err != nil {
		conn.Close()
		return nil, err
	}
	return &Conn{conn: conn, br: rw.Reader, server: true, MaxMessage: DefaultMaxMessage}, nil
}

func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Dial connects a client to a ws:// URL (host:port/path form).
func Dial(url string) (*Conn, error) {
	rest, ok := strings.CutPrefix(url, "ws://")
	if !ok {
		return nil, fmt.Errorf("ws: unsupported url %q", url)
	}
	host, path, _ := strings.Cut(rest, "/")
	path = "/" + path
	conn, err := net.Dial("tcp", host)
	if err != nil {
		return nil, err
	}
	// RFC 6455 §4.1: the Sec-WebSocket-Key nonce must be "selected
	// randomly" — unpredictably, so a server cannot be confused by a
	// replayed or guessed handshake. math/rand (the previous source) is
	// seedable and predictable; use the CSPRNG.
	var keyBytes [16]byte
	if _, err := crand.Read(keyBytes[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake nonce: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\n"+
		"Upgrade: websocket\r\nConnection: Upgrade\r\n"+
		"Sec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n", path, host, key)
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !strings.Contains(status, "101") {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake rejected: %s", strings.TrimSpace(status))
	}
	var accept string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(k, "Sec-WebSocket-Accept") {
			accept = strings.TrimSpace(v)
		}
	}
	if accept != acceptKey(key) {
		conn.Close()
		return nil, errors.New("ws: bad Sec-WebSocket-Accept")
	}
	// Masking keys need not be cryptographically strong (they defeat
	// proxy cache poisoning, not an observer), but seed the fast PRNG
	// from the CSPRNG so distinct connections never share a mask stream.
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: mask seed: %w", err)
	}
	return &Conn{
		conn: conn, br: br, server: false,
		MaxMessage: DefaultMaxMessage,
		rng:        rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(seed[:])))),
	}, nil
}

// frame header scratch: opcode+len(9)+mask(4)
type frameHeader struct {
	fin    bool
	opcode Opcode
	masked bool
	length int64
	mask   [4]byte
}

func (c *Conn) readHeader(h *frameHeader) error {
	var b [2]byte
	if _, err := io.ReadFull(c.br, b[:]); err != nil {
		return err
	}
	h.fin = b[0]&0x80 != 0
	if b[0]&0x70 != 0 {
		return ErrBadFrame // RSV bits without negotiated extension
	}
	h.opcode = Opcode(b[0] & 0x0f)
	h.masked = b[1]&0x80 != 0
	n := int64(b[1] & 0x7f)
	switch n {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return err
		}
		n = int64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return err
		}
		v := binary.BigEndian.Uint64(ext[:])
		if v > 1<<40 {
			return ErrMessageTooBig
		}
		n = int64(v)
	}
	h.length = n
	if h.masked {
		if _, err := io.ReadFull(c.br, h.mask[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadMessage returns the next complete data message (reassembling
// fragments) and its opcode (OpText or OpBinary). Control frames are
// handled transparently: pings are answered, pongs ignored; a close frame
// completes the close handshake and returns ErrClosed.
func (c *Conn) ReadMessage() (Opcode, []byte, error) {
	var (
		msg    []byte
		msgOp  Opcode
		inFrag bool
	)
	for {
		var h frameHeader
		if err := c.readHeader(&h); err != nil {
			return 0, nil, err
		}
		if c.server && !h.masked && h.length > 0 {
			return 0, nil, ErrUnmaskedClient
		}
		if h.length > int64(c.MaxMessage) || int64(len(msg))+h.length > int64(c.MaxMessage) {
			return 0, nil, ErrMessageTooBig
		}
		payload := make([]byte, h.length)
		if _, err := io.ReadFull(c.br, payload); err != nil {
			return 0, nil, err
		}
		if h.masked {
			maskBytes(h.mask, 0, payload)
		}
		switch h.opcode {
		case OpPing:
			if !h.fin {
				return 0, nil, ErrBadFrame
			}
			if err := c.writeFrame(OpPong, payload, true); err != nil {
				return 0, nil, err
			}
		case OpPong:
			if !h.fin {
				return 0, nil, ErrBadFrame
			}
			// keepalive response; ignore
		case OpClose:
			// Echo the close and report.
			c.writeFrame(OpClose, payload, true)
			c.conn.Close()
			return 0, nil, ErrClosed
		case OpText, OpBinary:
			if inFrag {
				return 0, nil, ErrBadFrame // new message before continuation end
			}
			if h.fin {
				return h.opcode, payload, nil
			}
			inFrag = true
			msgOp = h.opcode
			msg = append(msg, payload...)
		case OpContinuation:
			if !inFrag {
				return 0, nil, ErrBadFrame
			}
			msg = append(msg, payload...)
			if h.fin {
				return msgOp, msg, nil
			}
		default:
			return 0, nil, ErrBadFrame
		}
	}
}

func maskBytes(mask [4]byte, offset int, b []byte) {
	for i := range b {
		b[i] ^= mask[(offset+i)&3]
	}
}

// writeFrame emits a single frame. Client connections mask their payload
// (a copy is made so the caller's buffer is untouched).
func (c *Conn) writeFrame(op Opcode, payload []byte, fin bool) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	var hdr [14]byte
	b0 := byte(op)
	if fin {
		b0 |= 0x80
	}
	hdr[0] = b0
	n := 2
	switch {
	case len(payload) < 126:
		hdr[1] = byte(len(payload))
	case len(payload) <= 0xffff:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:], uint64(len(payload)))
		n = 10
	}
	if !c.server {
		hdr[1] |= 0x80
		var mask [4]byte
		binary.LittleEndian.PutUint32(mask[:], c.rng.Uint32())
		copy(hdr[n:], mask[:])
		n += 4
		masked := make([]byte, len(payload))
		copy(masked, payload)
		maskBytes(mask, 0, masked)
		payload = masked
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := c.conn.Write(payload)
	return err
}

// WriteMessage sends one unfragmented data message.
func (c *Conn) WriteMessage(op Opcode, payload []byte) error {
	if op != OpText && op != OpBinary {
		return ErrBadFrame
	}
	return c.writeFrame(op, payload, true)
}

// Ping sends a ping control frame.
func (c *Conn) Ping(data []byte) error { return c.writeFrame(OpPing, data, true) }

// Close performs the closing handshake (best-effort) and closes the socket.
func (c *Conn) Close() error {
	c.writeMu.Lock()
	if c.closed {
		c.writeMu.Unlock()
		return nil
	}
	c.closed = true
	c.writeMu.Unlock()
	// Best-effort close frame with status 1000 (normal).
	var payload [2]byte
	binary.BigEndian.PutUint16(payload[:], 1000)
	hdr := []byte{byte(OpClose) | 0x80, 2}
	if !c.server {
		hdr[1] |= 0x80
		var mask [4]byte
		masked := payload
		maskBytes(mask, 0, masked[:])
		c.conn.Write(append(append(hdr, mask[:]...), masked[:]...))
	} else {
		c.conn.Write(append(hdr, payload[:]...))
	}
	c.conn.SetDeadline(time.Now().Add(100 * time.Millisecond))
	return c.conn.Close()
}

// SetReadDeadline bounds the next read.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }
