package pcap

import (
	"bytes"
	"context"
	"net/netip"
	"testing"

	"ruru/internal/nic"
	"ruru/internal/pkt"
)

func buildTestCapture(t *testing.T, n int, base int64) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 128)
	for i := 0; i < n; i++ {
		spec := &pkt.TCPFrameSpec{
			SrcMAC: pkt.MAC{1}, DstMAC: pkt.MAC{2},
			Src:     netip.AddrFrom4([4]byte{10, 0, 0, byte(i%250 + 1)}),
			Dst:     netip.AddrFrom4([4]byte{192, 0, 2, 1}),
			SrcPort: uint16(1024 + i), DstPort: 443, Flags: pkt.TCPSyn,
		}
		ln, err := pkt.BuildTCPFrame(frame, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(base+int64(i)*1000, frame[:ln]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestReplayToPort(t *testing.T) {
	const frames = 300
	// A nonzero capture epoch: replay must rebase timestamps to 0.
	capture := buildTestCapture(t, frames, 1_700_000_000_000_000_000)
	r, err := NewReader(capture)
	if err != nil {
		t.Fatal(err)
	}
	pool := nic.NewMempool(1024, 2048)
	port, err := nic.NewPort(nic.PortConfig{Queues: 2, QueueDepth: 512, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	n, err := ReplayToPort(context.Background(), r, port, ReplayOptions{Burst: 32})
	if err != nil {
		t.Fatal(err)
	}
	if n != frames {
		t.Fatalf("accepted %d, want %d", n, frames)
	}
	if st := port.Stats(); st.Ipackets != frames || st.Imissed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Drain: timestamps must be rebased (first frame at 0, 1µs spacing)
	// and per-queue arrival order preserved.
	bufs := make([]*nic.Buf, 64)
	seen := 0
	for q := 0; q < port.NumQueues(); q++ {
		last := int64(-1)
		for {
			k, _ := port.RxBurst(q, bufs)
			if k == 0 {
				break
			}
			for i := 0; i < k; i++ {
				ts := bufs[i].Timestamp
				if ts < 0 || ts >= frames*1000 {
					t.Fatalf("timestamp %d not rebased", ts)
				}
				if ts <= last {
					t.Fatalf("queue %d out of order: %d after %d", q, ts, last)
				}
				last = ts
				bufs[i].Free()
				seen++
			}
		}
	}
	if seen != frames {
		t.Fatalf("drained %d, want %d", seen, frames)
	}
	if pool.Available() != pool.Size() {
		t.Fatal("buffers leaked")
	}
}

func TestReplayToPortCancelled(t *testing.T) {
	capture := buildTestCapture(t, 100, 0)
	r, err := NewReader(capture)
	if err != nil {
		t.Fatal(err)
	}
	pool := nic.NewMempool(256, 2048)
	port, err := nic.NewPort(nic.PortConfig{Queues: 1, QueueDepth: 256, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReplayToPort(ctx, r, port, ReplayOptions{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReplayToPortDropOverflow(t *testing.T) {
	// A tiny Drop-policy port must lose exactly the overflow and count it.
	capture := buildTestCapture(t, 100, 0)
	r, err := NewReader(capture)
	if err != nil {
		t.Fatal(err)
	}
	pool := nic.NewMempool(256, 2048)
	port, err := nic.NewPort(nic.PortConfig{Queues: 1, QueueDepth: 16, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	n, err := ReplayToPort(context.Background(), r, port, ReplayOptions{Burst: 50})
	if err != nil {
		t.Fatal(err)
	}
	st := port.Stats()
	if n != 16 || st.Ipackets != 16 || st.Imissed != 84 {
		t.Fatalf("accepted %d, stats %+v", n, st)
	}
}
