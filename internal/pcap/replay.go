package pcap

import (
	"context"
	"errors"
	"io"
	"time"

	"ruru/internal/nic"
)

// ReplayOptions configures ReplayToPort.
type ReplayOptions struct {
	// Burst is the number of frames injected per InjectBurst (default 64).
	Burst int
	// Pace replays the capture against the wall clock: frame N is
	// injected no earlier than its offset from the first frame's
	// timestamp. Without pacing the capture streams as fast as the port
	// accepts it.
	Pace bool
}

// ReplayToPort streams a capture into a port in bursts, the batched
// counterpart of a per-packet Inject loop. Timestamps are rebased so the
// first frame is at 0 on the port's clock. The number of frames the port
// accepted is returned; the difference from the capture's record count
// shows up in the port's Imissed/Ierrors/NoMbuf counters.
//
// Replay honours the port's overflow policy: on a Block-policy port the
// replay is lossless (injection waits for the pipeline), on a Drop port it
// behaves like a NIC under overload. Returns ctx.Err() when cancelled
// mid-capture.
func ReplayToPort(ctx context.Context, r *Reader, port *nic.Port, opts ReplayOptions) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := nic.NewBurstStager(port, opts.Burst)
	var (
		pk    Packet
		first int64 = -1
		start       = time.Now()
	)
	for {
		if err := ctx.Err(); err != nil {
			s.Flush()
			return s.Accepted(), err
		}
		err := r.ReadPacket(&pk)
		if errors.Is(err, io.EOF) {
			s.Flush()
			return s.Accepted(), nil
		}
		if err != nil {
			s.Flush()
			return s.Accepted(), err
		}
		if first < 0 {
			first = pk.Timestamp
		}
		rel := pk.Timestamp - first
		if opts.Pace {
			// Flush what's pending before sleeping so earlier frames go
			// out on time, then wait until this frame is due.
			if ahead := rel - time.Since(start).Nanoseconds(); ahead > 2e6 {
				s.Flush()
				select {
				case <-time.After(time.Duration(ahead)):
				case <-ctx.Done():
					return s.Accepted(), ctx.Err()
				}
			}
		}
		s.Add(pk.Data, rel)
	}
}
