package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		{0x01, 0x02, 0x03},
		bytes.Repeat([]byte{0xaa}, 1514),
		{},
	}
	stamps := []int64{0, 1_700_000_000_123_456_789, 42}
	for i, f := range frames {
		if err := w.WritePacket(stamps[i], f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Nanos() {
		t.Fatal("writer should emit nanosecond precision")
	}
	var p Packet
	for i := range frames {
		if err := r.ReadPacket(&p); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if p.Timestamp != stamps[i] {
			t.Fatalf("packet %d: ts = %d, want %d", i, p.Timestamp, stamps[i])
		}
		if !bytes.Equal(p.Data, frames[i]) {
			t.Fatalf("packet %d: data mismatch", i)
		}
		if p.OrigLen != len(frames[i]) {
			t.Fatalf("packet %d: origlen = %d", i, p.OrigLen)
		}
	}
	if err := r.ReadPacket(&p); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderMicrosecondBigEndian(t *testing.T) {
	// Hand-build a big-endian microsecond file: one 4-byte packet.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:], MagicMicros)
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], 65535)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeEther)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:], 100)  // sec
	binary.BigEndian.PutUint32(rec[4:], 2500) // usec
	binary.BigEndian.PutUint32(rec[8:], 4)
	binary.BigEndian.PutUint32(rec[12:], 4)
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3, 4})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nanos() {
		t.Fatal("file is microsecond precision")
	}
	var p Packet
	if err := r.ReadPacket(&p); err != nil {
		t.Fatal(err)
	}
	want := int64(100)*1e9 + 2500*1e3
	if p.Timestamp != want {
		t.Fatalf("ts = %d, want %d", p.Timestamp, want)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 10))); err != ErrTruncated {
		t.Fatalf("err = %v", err)
	}
}

func TestReaderBadLinkType(t *testing.T) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], MagicNanos)
	binary.LittleEndian.PutUint32(hdr[20:], 101) // raw IP
	_, err := NewReader(bytes.NewReader(hdr))
	if err == nil {
		t.Fatal("accepted non-Ethernet link type")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.WritePacket(1, []byte{1, 2, 3, 4, 5})
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := r.ReadPacket(&p); err != ErrTruncated {
		t.Fatalf("err = %v", err)
	}
}

func TestWriterSnaplenEnforced(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 100)
	if err := w.WritePacket(1, make([]byte, 101)); err != ErrSnaplen {
		t.Fatalf("err = %v", err)
	}
}

func TestRecordLenExceedsSnaplen(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], MagicNanos)
	binary.LittleEndian.PutUint32(hdr[16:], 64) // snaplen 64
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEther)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[8:], 100) // incl_len 100 > snaplen
	binary.LittleEndian.PutUint32(rec[12:], 100)
	buf.Write(rec)
	buf.Write(make([]byte, 100))
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := r.ReadPacket(&p); err != ErrBadRecordLen {
		t.Fatalf("err = %v", err)
	}
}

func TestNegativeTimestampNormalized(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	// A slightly negative timestamp (before epoch) still round-trips in
	// the nsec field; sec wraps but sub-second part must stay in range.
	if err := w.WritePacket(-1, []byte{1}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, _ := NewReader(&buf)
	var p Packet
	if err := r.ReadPacket(&p); err != nil {
		t.Fatal(err)
	}
	// sec = -1 stored as uint32 wraps; we only assert the reader does not
	// reject the record and the sub-second part is < 1e9.
	if p.Timestamp%1e9 >= 1e9 {
		t.Fatal("nsec out of range")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(stamps []int64, payload []byte) bool {
		if len(stamps) > 50 {
			stamps = stamps[:50]
		}
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		// The classic pcap format stores 32-bit seconds; constrain
		// timestamps to the representable range.
		const maxTS = int64(1<<32-1) * 1e9
		norm := func(ts int64) int64 {
			if ts < 0 {
				ts = -ts
			}
			if ts < 0 { // MinInt64
				ts = 0
			}
			return ts % maxTS
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 0)
		if err != nil {
			return false
		}
		for _, ts := range stamps {
			if err := w.WritePacket(norm(ts), payload); err != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var p Packet
		for _, raw := range stamps {
			ts := norm(raw)
			if err := r.ReadPacket(&p); err != nil {
				return false
			}
			if p.Timestamp != ts || !bytes.Equal(p.Data, payload) {
				return false
			}
		}
		return r.ReadPacket(&p) == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWritePacket(b *testing.B) {
	w, _ := NewWriter(io.Discard, 0)
	frame := make([]byte, 128)
	b.SetBytes(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.WritePacket(int64(i), frame)
	}
	w.Flush()
}
