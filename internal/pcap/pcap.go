// Package pcap reads and writes classic libpcap capture files (the pcap(4)
// format, not pcapng). Ruru's pipeline can tap a live source or replay a
// trace; traces are how experiments are made reproducible, and how the
// generator's output can be inspected with standard tools.
//
// Both microsecond (magic 0xa1b2c3d4) and nanosecond (magic 0xa1b23c4d)
// timestamp precision are supported, in either byte order. The writer emits
// nanosecond little-endian files, preserving the sub-microsecond resolution
// the measurement engine records.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// File-format constants.
const (
	MagicMicros   = 0xa1b2c3d4
	MagicNanos    = 0xa1b23c4d
	VersionMajor  = 2
	VersionMinor  = 4
	LinkTypeEther = 1

	globalHeaderLen = 24
	recordHeaderLen = 16
)

// Errors returned by the package.
var (
	ErrBadMagic     = errors.New("pcap: bad magic number")
	ErrBadLinkType  = errors.New("pcap: unsupported link type")
	ErrTruncated    = errors.New("pcap: truncated file")
	ErrSnaplen      = errors.New("pcap: packet exceeds snap length")
	ErrBadRecordLen = errors.New("pcap: record length exceeds snaplen")
)

// Packet is one captured record.
type Packet struct {
	// Timestamp in nanoseconds since the Unix epoch (or the capture's
	// arbitrary epoch — Ruru treats it as an opaque monotonic clock).
	Timestamp int64
	// Data is the captured bytes. For the Reader, Data references an
	// internal buffer that is reused by the next ReadPacket; copy it to
	// retain. OrigLen may exceed len(Data) if the capture truncated.
	Data    []byte
	OrigLen int
}

// Writer writes a pcap file.
type Writer struct {
	w       *bufio.Writer
	snaplen uint32
	hdr     [recordHeaderLen]byte
	wrote   bool
}

// NewWriter creates a Writer emitting a nanosecond-precision Ethernet pcap
// with the given snap length (0 means 65535).
func NewWriter(w io.Writer, snaplen uint32) (*Writer, error) {
	if snaplen == 0 {
		snaplen = 65535
	}
	pw := &Writer{w: bufio.NewWriterSize(w, 1<<16), snaplen: snaplen}
	var hdr [globalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], MagicNanos)
	binary.LittleEndian.PutUint16(hdr[4:], VersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], VersionMinor)
	// thiszone and sigfigs are zero.
	binary.LittleEndian.PutUint32(hdr[16:], snaplen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEther)
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return pw, nil
}

// WritePacket appends one record with the given timestamp (ns) and frame.
func (w *Writer) WritePacket(ts int64, frame []byte) error {
	if uint32(len(frame)) > w.snaplen {
		return ErrSnaplen
	}
	sec := ts / 1e9
	nsec := ts % 1e9
	if nsec < 0 { // normalize negative timestamps
		sec--
		nsec += 1e9
	}
	binary.LittleEndian.PutUint32(w.hdr[0:], uint32(sec))
	binary.LittleEndian.PutUint32(w.hdr[4:], uint32(nsec))
	binary.LittleEndian.PutUint32(w.hdr[8:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(w.hdr[12:], uint32(len(frame)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(frame)
	w.wrote = true
	return err
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader reads a pcap file.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nanos    bool
	snaplen  uint32
	linkType uint32
	buf      []byte
	hdr      [recordHeaderLen]byte
}

// NewReader parses the global header and prepares to read records.
func NewReader(r io.Reader) (*Reader, error) {
	pr := &Reader{r: bufio.NewReaderSize(r, 1<<16)}
	var hdr [globalHeaderLen]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTruncated
		}
		return nil, err
	}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == MagicMicros:
		pr.order, pr.nanos = binary.LittleEndian, false
	case magicLE == MagicNanos:
		pr.order, pr.nanos = binary.LittleEndian, true
	case magicBE == MagicMicros:
		pr.order, pr.nanos = binary.BigEndian, false
	case magicBE == MagicNanos:
		pr.order, pr.nanos = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	pr.snaplen = pr.order.Uint32(hdr[16:20])
	pr.linkType = pr.order.Uint32(hdr[20:24])
	if pr.linkType != LinkTypeEther {
		return nil, fmt.Errorf("%w: %d", ErrBadLinkType, pr.linkType)
	}
	if pr.snaplen == 0 || pr.snaplen > 1<<20 {
		pr.snaplen = 1 << 20
	}
	pr.buf = make([]byte, 0, 2048)
	return pr, nil
}

// Snaplen returns the capture snap length from the file header.
func (r *Reader) Snaplen() uint32 { return r.snaplen }

// Nanos reports whether the file carries nanosecond timestamps.
func (r *Reader) Nanos() bool { return r.nanos }

// ReadPacket reads the next record into p. It returns io.EOF cleanly at end
// of file. p.Data references an internal buffer reused on the next call.
func (r *Reader) ReadPacket(p *Packet) error {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return ErrTruncated
		}
		return err
	}
	sec := int64(r.order.Uint32(r.hdr[0:4]))
	sub := int64(r.order.Uint32(r.hdr[4:8]))
	inclLen := r.order.Uint32(r.hdr[8:12])
	origLen := r.order.Uint32(r.hdr[12:16])
	if inclLen > r.snaplen {
		return ErrBadRecordLen
	}
	if cap(r.buf) < int(inclLen) {
		r.buf = make([]byte, inclLen)
	}
	r.buf = r.buf[:inclLen]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return ErrTruncated
	}
	if r.nanos {
		p.Timestamp = sec*1e9 + sub
	} else {
		p.Timestamp = sec*1e9 + sub*1e3
	}
	p.Data = r.buf
	p.OrigLen = int(origLen)
	return nil
}
