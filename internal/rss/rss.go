// Package rss implements Receive Side Scaling hashing in software: the
// Toeplitz hash from the Microsoft RSS specification, computed over the IP
// 4-tuple exactly as a NIC computes it when dispatching packets to receive
// queues.
//
// Ruru (§2) configures *symmetric* RSS so both directions of a TCP flow land
// on the same queue — the SYN (C→S) and the SYN-ACK (S→C) must reach the same
// per-queue hash table or the handshake can never be matched without costly
// cross-core communication. Symmetry is obtained with the Woo/Zilberman key:
// the 16-bit pattern 0x6d5a repeated across the 40-byte key, which makes
// hash(src,dst,sport,dport) == hash(dst,src,dport,sport).
//
// The asymmetric (default Microsoft) key is also provided for the E7 ablation
// experiment, which quantifies how many handshakes are lost when the two
// directions are scattered across queues.
package rss

import "net/netip"

// KeyLen is the RSS secret key length in bytes (the standard 40-byte key
// covers IPv6 4-tuples: 16+16+2+2 + 4 spare).
const KeyLen = 40

// SymmetricKey is the 0x6d5a-repeating key that makes the Toeplitz hash
// symmetric in (src,dst) and (sport,dport).
var SymmetricKey = [KeyLen]byte{
	0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
	0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
	0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
	0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
	0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a, 0x6d, 0x5a,
}

// MicrosoftKey is the default asymmetric key from the Microsoft RSS
// specification (as shipped by ixgbe/i40e drivers). Used for the E7 ablation.
var MicrosoftKey = [KeyLen]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// Hasher computes Toeplitz hashes with a fixed key. Construct with New; a
// Hasher is immutable and safe for concurrent use.
type Hasher struct {
	key [KeyLen]byte
}

// New returns a Hasher using the given 40-byte key.
func New(key [KeyLen]byte) *Hasher { return &Hasher{key: key} }

// NewSymmetric returns a Hasher with the symmetric 0x6d5a key, the
// configuration Ruru uses in production.
func NewSymmetric() *Hasher { return New(SymmetricKey) }

// Hash computes the Toeplitz hash of input per the Microsoft RSS spec: for
// each set bit i (MSB-first) of the input, XOR in the 32-bit window of the
// key starting at bit i.
func (h *Hasher) Hash(input []byte) uint32 {
	var result uint32
	// window holds the leftmost 32 bits of the key shifted left by the
	// number of input bits consumed so far.
	window := uint64(h.key[0])<<56 | uint64(h.key[1])<<48 |
		uint64(h.key[2])<<40 | uint64(h.key[3])<<32 |
		uint64(h.key[4])<<24 | uint64(h.key[5])<<16 |
		uint64(h.key[6])<<8 | uint64(h.key[7])
	nextKeyByte := 8
	for _, b := range input {
		for bit := 7; bit >= 0; bit-- {
			if b&(1<<uint(bit)) != 0 {
				result ^= uint32(window >> 32)
			}
			window <<= 1
		}
		// Refill the low byte of the 64-bit window every 8 shifts.
		if nextKeyByte < KeyLen {
			window |= uint64(h.key[nextKeyByte])
			nextKeyByte++
		}
	}
	return result
}

// HashTuple computes the RSS hash of an IPv4/IPv6 4-tuple. The layout matches
// hardware RSS input: src addr, dst addr, src port, dst port, all big-endian.
func (h *Hasher) HashTuple(src, dst netip.Addr, srcPort, dstPort uint16) uint32 {
	var buf [36]byte
	var n int
	if src.Is4() || src.Is4In6() {
		a, b := src.Unmap().As4(), dst.Unmap().As4()
		copy(buf[0:4], a[:])
		copy(buf[4:8], b[:])
		n = 8
	} else {
		a, b := src.As16(), dst.As16()
		copy(buf[0:16], a[:])
		copy(buf[16:32], b[:])
		n = 32
	}
	buf[n] = byte(srcPort >> 8)
	buf[n+1] = byte(srcPort)
	buf[n+2] = byte(dstPort >> 8)
	buf[n+3] = byte(dstPort)
	return h.Hash(buf[:n+4])
}

// Queue maps a hash to one of n receive queues the way NIC indirection
// tables do (modulo over the low bits).
//
// Note a structural limit of the symmetric 0x6d5a key: because the key
// repeats with a 16-bit period, the Toeplitz hash is a linear function of
// the 16-bit XOR-fold of the tuple bytes — 16 bits of effective entropy,
// and adversarially structured tuples (e.g. srcPort and address
// incrementing together) can fold to a single value, putting every flow on
// one queue. No indirection mapping can spread identical hashes; sources
// that must not lose packets under such skew should run the port's Block
// overflow policy instead.
func Queue(hash uint32, n int) int {
	if n <= 1 {
		return 0
	}
	return int(hash % uint32(n))
}
