package rss

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"
)

// Known-answer vectors from the Microsoft RSS verification suite
// (the canonical test data every RSS implementation validates against).
func TestToeplitzKnownVectors(t *testing.T) {
	h := New(MicrosoftKey)
	cases := []struct {
		name             string
		src, dst         string
		srcPort, dstPort uint16
		want             uint32
	}{
		// IPv4 with TCP ports.
		{"v4-1", "66.9.149.187", "161.142.100.80", 2794, 1766, 0x51ccc178},
		{"v4-2", "199.92.111.2", "65.69.140.83", 14230, 4739, 0xc626b0ea},
		{"v4-3", "24.19.198.95", "12.22.207.184", 12898, 38024, 0x5c2b394a},
		{"v4-4", "38.27.205.30", "209.142.163.6", 48228, 2217, 0xafc7327f},
		{"v4-5", "153.39.163.191", "202.188.127.2", 44251, 1303, 0x10e828a2},
		// IPv6 with TCP ports.
		{"v6-1", "3ffe:2501:200:1fff::7", "3ffe:2501:200:3::1", 2794, 1766, 0x40207d3d},
		{"v6-2", "3ffe:501:8::260:97ff:fe40:efab", "ff02::1", 14230, 4739, 0xdde51bbf},
		{"v6-3", "3ffe:1900:4545:3:200:f8ff:fe21:67cf", "fe80::200:f8ff:fe21:67cf", 44251, 38024, 0x02d1feef},
	}
	for _, c := range cases {
		src := netip.MustParseAddr(c.src)
		dst := netip.MustParseAddr(c.dst)
		got := h.HashTuple(src, dst, c.srcPort, c.dstPort)
		if got != c.want {
			t.Errorf("%s: hash = %#08x, want %#08x", c.name, got, c.want)
		}
	}
}

func TestSymmetricKeyIsSymmetric(t *testing.T) {
	h := NewSymmetric()
	f := func(a, b [4]byte, sp, dp uint16) bool {
		src := netip.AddrFrom4(a)
		dst := netip.AddrFrom4(b)
		return h.HashTuple(src, dst, sp, dp) == h.HashTuple(dst, src, dp, sp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	f6 := func(a, b [16]byte, sp, dp uint16) bool {
		src := netip.AddrFrom16(a)
		dst := netip.AddrFrom16(b)
		return h.HashTuple(src, dst, sp, dp) == h.HashTuple(dst, src, dp, sp)
	}
	if err := quick.Check(f6, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMicrosoftKeyIsAsymmetric(t *testing.T) {
	// The default key must NOT be symmetric — this is exactly why Ruru
	// needs the symmetric key (E7 ablation depends on this difference).
	h := New(MicrosoftKey)
	src := netip.MustParseAddr("66.9.149.187")
	dst := netip.MustParseAddr("161.142.100.80")
	if h.HashTuple(src, dst, 2794, 1766) == h.HashTuple(dst, src, 1766, 2794) {
		t.Fatal("Microsoft key unexpectedly symmetric for the test tuple")
	}
}

func TestV4MappedEqualsV4(t *testing.T) {
	h := NewSymmetric()
	v4 := netip.MustParseAddr("192.0.2.1")
	mapped := netip.MustParseAddr("::ffff:192.0.2.1")
	dst := netip.MustParseAddr("198.51.100.1")
	if h.HashTuple(v4, dst, 80, 443) != h.HashTuple(mapped, dst, 80, 443) {
		t.Fatal("v4-mapped address hashed differently from plain v4")
	}
}

func TestQueueBounds(t *testing.T) {
	for _, n := range []int{0, 1, 2, 4, 7, 16} {
		for _, hash := range []uint32{0, 1, math.MaxUint32, 0xdeadbeef} {
			q := Queue(hash, n)
			if q < 0 || (n > 0 && q >= n) || (n <= 1 && q != 0) {
				t.Errorf("Queue(%#x, %d) = %d out of range", hash, n, q)
			}
		}
	}
}

func TestQueueDistribution(t *testing.T) {
	// Hashing distinct flows over 8 queues should be roughly uniform —
	// within 25% of the mean per queue for 8k flows. This is the load
	// balance property Fig. 2's multi-queue design relies on.
	h := NewSymmetric()
	const queues = 8
	const flows = 8192
	var counts [queues]int
	for i := 0; i < flows; i++ {
		src := netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1})
		dst := netip.AddrFrom4([4]byte{192, 0, 2, 1})
		hash := h.HashTuple(src, dst, uint16(1024+i), 443)
		counts[Queue(hash, queues)]++
	}
	mean := float64(flows) / queues
	for q, c := range counts {
		if math.Abs(float64(c)-mean) > 0.25*mean {
			t.Errorf("queue %d has %d flows (mean %.0f): distribution too skewed", q, c, mean)
		}
	}
}

func TestHashDeterminism(t *testing.T) {
	h := NewSymmetric()
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	a := h.HashTuple(src, dst, 1, 2)
	for i := 0; i < 100; i++ {
		if h.HashTuple(src, dst, 1, 2) != a {
			t.Fatal("hash not deterministic")
		}
	}
}

func TestHashZeroInput(t *testing.T) {
	h := New(MicrosoftKey)
	if got := h.Hash(nil); got != 0 {
		t.Fatalf("Hash(nil) = %#x, want 0", got)
	}
	if got := h.Hash(make([]byte, 12)); got != 0 {
		t.Fatalf("Hash(zeros) = %#x, want 0 (no set bits)", got)
	}
}

func BenchmarkHashTupleV4(b *testing.B) {
	h := NewSymmetric()
	src := netip.MustParseAddr("66.9.149.187")
	dst := netip.MustParseAddr("161.142.100.80")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.HashTuple(src, dst, 2794, 1766)
	}
}

func BenchmarkHashTupleV6(b *testing.B) {
	h := NewSymmetric()
	src := netip.MustParseAddr("3ffe:2501:200:1fff::7")
	dst := netip.MustParseAddr("3ffe:2501:200:3::1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.HashTuple(src, dst, 2794, 1766)
	}
}
