// Package gen synthesizes the live traffic Ruru taps in production: TCP
// flows between world cities crossing a tap located on the Auckland–Los
// Angeles link, with realistic handshakes, data segments, retransmissions,
// background UDP noise, and injectable anomalies (the nightly firewall
// glitch, SYN floods, connection surges from the paper's §3).
//
// The generator is a discrete-event simulation on a virtual nanosecond
// clock. Per-flow path delays are drawn once (propagation from great-circle
// distance plus last-mile and jitter components) and then held fixed, so the
// exact measurement a correct tap must report is known for every flow:
// package gen is simultaneously the workload and the oracle. Experiments
// E1/E2/E4/E5/E7 all consume both the packet stream and the FlowTruth
// records.
//
// Determinism: the same Config (including Seed) produces the same packet
// stream, byte for byte.
package gen

import (
	"container/heap"
	"errors"
	"math"
	"math/rand"
	"net/netip"

	"ruru/internal/core"
	"ruru/internal/geo"
	"ruru/internal/pkt"
)

// PacketKind labels generated packets for debugging and tests.
type PacketKind uint8

// Packet kinds.
const (
	KindSYN PacketKind = iota
	KindSYNACK
	KindACK
	KindData
	KindFIN
	KindUDP
	KindMidstream
)

// Packet is one generated frame as seen at the tap.
type Packet struct {
	TS    int64  // tap capture timestamp, ns on the virtual clock
	Frame []byte // wire-format frame; references a buffer reused by Next
	Kind  PacketKind

	// Flow 4-tuple as transmitted (source of THIS packet first).
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
}

// FlowTruth is the oracle record for one generated flow.
type FlowTruth struct {
	Key                    core.FlowKey
	ClientCity, ServerCity int
	Start                  int64 // T0: client sends SYN (not yet at tap)

	// ExpectedInternal/External are exactly what a correct tap-based
	// engine must measure (first SYN, first SYN-ACK, first ACK at tap),
	// including any retransmission delays.
	ExpectedInternal, ExpectedExternal int64

	// PathInternal/External are the loss-free physical RTTs
	// (2× the one-way leg delays) — the "true" network latency.
	PathInternal, PathExternal int64

	SYNRetrans    int
	SYNACKRetrans int
	Anomalous     bool // an anomaly window inflated this flow's delay
	Flood         bool // SYN-flood flow: never completes
	Midstream     bool // no handshake observed (pre-existing flow)
	Completes     bool // a valid handshake appears in the stream

	// TCP-timestamp oracle (populated when Config.EmitTCPTimestamps):
	// TSDataEchoes is the number of server echoes of distinct client data
	// timestamps — the expected count of continuous external RTT samples —
	// and TSDataRTT their exact expected value (2×dTS). TSClean is false
	// when millisecond-clock collisions make per-sample prediction
	// unreliable for this flow (the tracker still behaves correctly;
	// only the oracle arithmetic is skipped).
	TSDataEchoes int
	TSDataRTT    int64
	TSClean      bool
}

// Window describes a periodic anomaly window: for flows whose SYN leaves the
// client within [Offset+k·Every, Offset+k·Every+Length), Extra nanoseconds
// are added to the external leg (the paper's nightly firewall update added
// ~4000 ms for flows started in a short window).
type Window struct {
	Every  int64 // period, ns (0 = single window at Offset)
	Offset int64 // start of the first window, ns from run start
	Length int64 // window length, ns
	Extra  int64 // added delay, ns
}

// contains reports whether t (ns since run start) is inside the window.
func (w Window) contains(t int64) bool {
	if w.Length <= 0 {
		return false
	}
	if w.Every <= 0 {
		return t >= w.Offset && t < w.Offset+w.Length
	}
	if t < w.Offset {
		return false
	}
	phase := (t - w.Offset) % w.Every
	return phase < w.Length
}

// FloodSpec injects a SYN flood: Rate SYNs/s from spoofed hosts in SrcCity
// toward one victim host in DstCity during [Start, Start+Duration).
type FloodSpec struct {
	Start, Duration  int64
	Rate             float64
	SrcCity, DstCity int
}

// SurgeSpec injects a connection-count surge: extra (completing) flows
// between a city pair during a window, for the paper's "unusual number of
// TCP connections between two locations" use case.
type SurgeSpec struct {
	Start, Duration  int64
	Rate             float64
	SrcCity, DstCity int
}

// Config parameterizes a Generator.
type Config struct {
	Seed  int64
	World *geo.World // required

	// FlowRate is the mean new-connection rate, flows/s (Poisson).
	FlowRate float64
	// Duration is the virtual capture length in ns. Flow arrivals stop at
	// Duration; in-flight flows run to completion.
	Duration int64

	// TapCity is the city index where the tap sits (default 0, Auckland).
	TapCity int
	// ClientCities optionally restricts client locations (default: all).
	ClientCities []int
	// ServerCities optionally restricts server locations (default: all).
	ServerCities []int

	// DataSegments is the mean number of post-handshake data segments per
	// flow (exponential; 0 disables data traffic).
	DataSegments float64
	// DataSpacing is the mean gap between data segments in ns
	// (exponential, default 5ms — a streaming transfer; set ≥ the path
	// RTT for request/response traffic).
	DataSpacing int64
	// UDPRate is background UDP noise in packets/s.
	UDPRate float64
	// MidstreamRate is the rate (flows/s) of pre-established flows that
	// emit ACK/data traffic with no observable handshake.
	MidstreamRate float64
	// IPv6Fraction of flows use IPv6 (default 0).
	IPv6Fraction float64

	// SYNLoss is the probability the SYN is lost tap-side→server and
	// retransmitted by the client after RTO. SYNACKLoss likewise for the
	// SYN-ACK on the client leg.
	SYNLoss, SYNACKLoss float64
	// RTO is the retransmission timeout (default 1s).
	RTO int64

	// JitterFrac scales per-flow lognormal jitter on each leg (default
	// 0.1). LastMileMean is the mean exponential last-mile delay added to
	// each leg one-way (default 2 ms).
	JitterFrac   float64
	LastMileMean int64

	// ServerDelay is the mean server SYN→SYN-ACK think time (exponential,
	// default 0: pure network latency, keeps E1 exact).
	ServerDelay int64

	// EmitTCPTimestamps attaches RFC 7323 timestamp options to every TCP
	// packet, with millisecond sender clocks and correct echo semantics —
	// the signal the continuous (pping-style) RTT tracker consumes.
	EmitTCPTimestamps bool

	// Anomaly injection.
	FirewallWindows []Window
	Floods          []FloodSpec
	Surges          []SurgeSpec
}

// Generator produces the packet stream. Not safe for concurrent use.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	evq    eventQueue
	buf    [2048]byte
	optBuf [pkt.TimestampOptionLen]byte
	seqP   uint16 // rolling client port
	host   uint32 // rolling client host counter

	nextArrival  int64
	arrivalsDone bool

	truths []FlowTruth

	floodNext []int64
	surgeNext []int64
	midNext   int64
	udpNext   int64

	macA, macB pkt.MAC
}

type event struct {
	ts   int64
	flow int32 // index into truths, -1 for noise
	kind PacketKind
	seq  uint32
	ack  uint32
	// endpoint info snapshot
	src, dst         netip.Addr
	srcPort, dstPort uint16
	payloadLen       uint16
	flags            uint8
	// TCP timestamp option (attached when hasTS).
	hasTS        bool
	tsval, tsecr uint32
}

type eventQueue []event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].ts < q[j].ts }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// New validates cfg and returns a Generator.
func New(cfg Config) (*Generator, error) {
	if cfg.World == nil {
		return nil, errors.New("gen: Config.World is required")
	}
	if cfg.FlowRate < 0 || cfg.Duration < 0 {
		return nil, errors.New("gen: negative rate or duration")
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 1e9
	}
	if cfg.JitterFrac == 0 {
		cfg.JitterFrac = 0.1
	}
	if cfg.LastMileMean == 0 {
		cfg.LastMileMean = 2e6
	}
	g := &Generator{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		macA: pkt.MAC{0x02, 0, 0, 0, 0, 0xaa},
		macB: pkt.MAC{0x02, 0, 0, 0, 0, 0xbb},
		seqP: 1024,
	}
	heap.Init(&g.evq)
	if cfg.FlowRate > 0 {
		g.nextArrival = g.expDelay(cfg.FlowRate)
	} else {
		g.arrivalsDone = true
	}
	g.floodNext = make([]int64, len(cfg.Floods))
	for i, f := range cfg.Floods {
		g.floodNext[i] = f.Start
	}
	g.surgeNext = make([]int64, len(cfg.Surges))
	for i, s := range cfg.Surges {
		g.surgeNext[i] = s.Start
	}
	if cfg.MidstreamRate > 0 {
		g.midNext = g.expDelay(cfg.MidstreamRate)
	} else {
		g.midNext = math.MaxInt64
	}
	if cfg.UDPRate > 0 {
		g.udpNext = g.expDelay(cfg.UDPRate)
	} else {
		g.udpNext = math.MaxInt64
	}
	return g, nil
}

// expDelay draws an exponential inter-arrival gap for the given rate/s.
func (g *Generator) expDelay(rate float64) int64 {
	d := g.rng.ExpFloat64() / rate * 1e9
	if d < 1 {
		d = 1
	}
	if d > 1e15 {
		d = 1e15
	}
	return int64(d)
}

// legDelay draws the fixed one-way delay between city a and city b:
// propagation at 200 km/ms × route factor 1.8, plus exponential last-mile,
// plus lognormal jitter. Minimum 200µs.
func (g *Generator) legDelay(a, b int) int64 {
	distKm := g.cfg.World.Distance(a, b)
	prop := distKm / 200.0 * 1.8 * 1e6 // ns
	lastMile := g.rng.ExpFloat64() * float64(g.cfg.LastMileMean)
	jitter := math.Exp(g.rng.NormFloat64() * g.cfg.JitterFrac) // ~1.0 ×
	d := int64((prop + lastMile) * jitter)
	if d < 200_000 {
		d = 200_000
	}
	return d
}

func (g *Generator) pickCity(list []int) int {
	if len(list) > 0 {
		return list[g.rng.Intn(len(list))] % len(g.cfg.World.Cities)
	}
	return g.rng.Intn(len(g.cfg.World.Cities))
}

func (g *Generator) nextClientAddr(city int, v6 bool) (netip.Addr, uint16) {
	g.host++
	g.seqP++
	if g.seqP < 1024 {
		g.seqP = 1024
	}
	slot := int(g.host) % 4
	if v6 {
		return g.cfg.World.Addr6(city, slot, uint64(g.host)), g.seqP
	}
	return g.cfg.World.Addr(city, slot, g.host), g.seqP
}

// scheduleFlow creates a full flow starting (client-side) at t0 and pushes
// its tap events. Returns the truth index.
func (g *Generator) scheduleFlow(t0 int64, clientCity, serverCity int, surge bool) int32 {
	cfg := &g.cfg
	v6 := g.rng.Float64() < cfg.IPv6Fraction
	clientAddr, clientPort := g.nextClientAddr(clientCity, v6)
	var serverAddr netip.Addr
	if v6 {
		serverAddr = cfg.World.Addr6(serverCity, g.rng.Intn(4), uint64(g.rng.Intn(1<<16)))
	} else {
		serverAddr = cfg.World.Addr(serverCity, g.rng.Intn(4), uint32(g.rng.Intn(1<<16)))
	}
	serverPort := uint16(443)
	if g.rng.Float64() < 0.3 {
		serverPort = 80
	}

	dCT := g.legDelay(clientCity, cfg.TapCity) // client ↔ tap one-way
	dTS := g.legDelay(cfg.TapCity, serverCity) // tap ↔ server one-way

	// Firewall anomaly: extra delay on the external (tap↔server) leg for
	// flows whose SYN leaves within a window. Applied to the SYN-ACK
	// response path (one-way), mimicking a middlebox holding the SYN.
	var extra int64
	anomalous := false
	for _, w := range cfg.FirewallWindows {
		if w.contains(t0) {
			extra += w.Extra
			anomalous = true
		}
	}

	serverThink := int64(0)
	if cfg.ServerDelay > 0 {
		serverThink = int64(g.rng.ExpFloat64() * float64(cfg.ServerDelay))
	}

	clientISN := g.rng.Uint32()
	serverISN := g.rng.Uint32()

	truth := FlowTruth{
		Key: core.FlowKey{Client: clientAddr, Server: serverAddr,
			ClientPort: clientPort, ServerPort: serverPort},
		ClientCity: clientCity, ServerCity: serverCity,
		Start:        t0,
		PathInternal: 2 * dCT,
		PathExternal: 2*dTS + serverThink + extra,
		Anomalous:    anomalous,
		Completes:    true,
	}
	idx := int32(len(g.truths))
	_ = surge

	// TCP timestamp clocks: millisecond sender-local time. Collision
	// tracking keeps the per-flow oracle honest (see FlowTruth.TSClean).
	useTS := cfg.EmitTCPTimestamps
	ms := func(t int64) uint32 { return uint32(t / 1e6) }
	var cliVals, srvVals []uint32
	truth.TSClean = useTS
	noteVal := func(vals *[]uint32, v uint32) {
		for _, x := range *vals {
			if x == v {
				truth.TSClean = false
				return
			}
		}
		*vals = append(*vals, v)
	}

	// --- SYN leg ---
	synAtTap := t0 + dCT
	firstSYNAtTap := synAtTap
	synArriveServer := synAtTap + dTS
	synTSvalAtServer := ms(t0) // tsval the server will echo
	if useTS {
		noteVal(&cliVals, ms(t0))
	}
	if g.rng.Float64() < cfg.SYNLoss {
		// Lost between tap and server; client retransmits after RTO.
		truth.SYNRetrans = 1
		retransTap := t0 + cfg.RTO + dCT
		synTSvalAtServer = ms(t0 + cfg.RTO)
		if useTS {
			noteVal(&cliVals, synTSvalAtServer)
		}
		g.push(event{ts: retransTap, flow: idx, kind: KindSYN, seq: clientISN,
			src: clientAddr, dst: serverAddr, srcPort: clientPort, dstPort: serverPort,
			flags: pkt.TCPSyn, hasTS: useTS, tsval: synTSvalAtServer})
		synArriveServer = retransTap + dTS
	}
	g.push(event{ts: firstSYNAtTap, flow: idx, kind: KindSYN, seq: clientISN,
		src: clientAddr, dst: serverAddr, srcPort: clientPort, dstPort: serverPort,
		flags: pkt.TCPSyn, hasTS: useTS, tsval: ms(t0)})

	// --- SYN-ACK leg ---
	synackSent := synArriveServer + serverThink + extra
	synackAtTap := synackSent + dTS
	firstSYNACKAtTap := synackAtTap
	synackArriveClient := synackAtTap + dCT
	saTSvalAtClient := ms(synackSent) // tsval the client will echo
	if useTS {
		noteVal(&srvVals, ms(synackSent))
	}
	if g.rng.Float64() < cfg.SYNACKLoss {
		// Lost between tap and client; server retransmits after RTO.
		truth.SYNACKRetrans = 1
		resent := synackSent + cfg.RTO
		saTSvalAtClient = ms(resent)
		if useTS {
			noteVal(&srvVals, saTSvalAtClient)
		}
		g.push(event{ts: resent + dTS, flow: idx, kind: KindSYNACK,
			seq: serverISN, ack: clientISN + 1,
			src: serverAddr, dst: clientAddr, srcPort: serverPort, dstPort: clientPort,
			flags: pkt.TCPSyn | pkt.TCPAck,
			hasTS: useTS, tsval: saTSvalAtClient, tsecr: synTSvalAtServer})
		synackArriveClient = resent + dTS + dCT
	}
	g.push(event{ts: firstSYNACKAtTap, flow: idx, kind: KindSYNACK,
		seq: serverISN, ack: clientISN + 1,
		src: serverAddr, dst: clientAddr, srcPort: serverPort, dstPort: clientPort,
		flags: pkt.TCPSyn | pkt.TCPAck,
		hasTS: useTS, tsval: ms(synackSent), tsecr: synTSvalAtServer})

	// --- ACK leg ---
	ackAtTap := synackArriveClient + dCT
	ackSend := synackArriveClient
	if useTS {
		noteVal(&cliVals, ms(ackSend))
	}
	g.push(event{ts: ackAtTap, flow: idx, kind: KindACK,
		seq: clientISN + 1, ack: serverISN + 1,
		src: clientAddr, dst: serverAddr, srcPort: clientPort, dstPort: serverPort,
		flags: pkt.TCPAck, hasTS: useTS, tsval: ms(ackSend), tsecr: saTSvalAtClient})

	truth.ExpectedExternal = firstSYNACKAtTap - firstSYNAtTap
	truth.ExpectedInternal = ackAtTap - firstSYNACKAtTap

	// --- Data + FIN ---
	if cfg.DataSegments > 0 {
		n := int(g.rng.ExpFloat64() * cfg.DataSegments)
		if n > 64 {
			n = 64
		}
		t := ackAtTap
		seq := clientISN + 1
		// Echo state: the newest server tsval that has reached the client
		// by a given send time, plus the one still in flight.
		curSrvVal := saTSvalAtClient
		var pendSrvVal uint32
		var pendSrvArrive int64 = -1
		spacing := cfg.DataSpacing
		if spacing <= 0 {
			spacing = 5e6
		}
		for i := 0; i < n; i++ {
			t += int64(g.rng.ExpFloat64() * float64(spacing))
			plen := uint16(100 + g.rng.Intn(1200))
			cliSend := t - dCT
			if pendSrvArrive >= 0 && cliSend >= pendSrvArrive {
				curSrvVal = pendSrvVal
				pendSrvArrive = -1
			}
			dataVal := ms(cliSend)
			if useTS {
				noteVal(&cliVals, dataVal)
				truth.TSDataEchoes++ // server echoes each data segment
			}
			g.push(event{ts: t, flow: idx, kind: KindData,
				seq: seq, ack: serverISN + 1,
				src: clientAddr, dst: serverAddr, srcPort: clientPort, dstPort: serverPort,
				payloadLen: plen, flags: pkt.TCPAck | pkt.TCPPsh,
				hasTS: useTS, tsval: dataVal, tsecr: curSrvVal})
			seq += uint32(plen)
			// Server ACK back through the tap.
			srvSend := t + dTS
			srvVal := ms(srvSend)
			if useTS {
				noteVal(&srvVals, srvVal)
				pendSrvVal = srvVal
				pendSrvArrive = srvSend + dTS + dCT
			}
			g.push(event{ts: t + dTS + dTS, flow: idx, kind: KindData,
				seq: serverISN + 1, ack: seq,
				src: serverAddr, dst: clientAddr, srcPort: serverPort, dstPort: clientPort,
				flags: pkt.TCPAck,
				hasTS: useTS, tsval: srvVal, tsecr: dataVal})
		}
		finSend := t + 1e6 - dCT
		if useTS {
			noteVal(&cliVals, ms(finSend))
			if pendSrvArrive >= 0 && finSend >= pendSrvArrive {
				curSrvVal = pendSrvVal
			}
		}
		g.push(event{ts: t + 1e6, flow: idx, kind: KindFIN,
			seq: seq, ack: serverISN + 1,
			src: clientAddr, dst: serverAddr, srcPort: clientPort, dstPort: serverPort,
			flags: pkt.TCPFin | pkt.TCPAck,
			hasTS: useTS, tsval: ms(finSend), tsecr: curSrvVal})
	}
	truth.TSDataRTT = 2 * dTS

	g.truths = append(g.truths, truth)
	return idx
}

// scheduleFloodSYN pushes one never-answered SYN from a spoofed source.
func (g *Generator) scheduleFloodSYN(t0 int64, f FloodSpec) {
	src := g.cfg.World.Addr(f.SrcCity, g.rng.Intn(4), g.rng.Uint32())
	dst := g.cfg.World.Addr(f.DstCity, 0, 80)
	sport := uint16(1024 + g.rng.Intn(60000))
	dCT := g.legDelay(f.SrcCity, g.cfg.TapCity)
	idx := int32(len(g.truths))
	g.truths = append(g.truths, FlowTruth{
		Key:        core.FlowKey{Client: src, Server: dst, ClientPort: sport, ServerPort: 80},
		ClientCity: f.SrcCity, ServerCity: f.DstCity,
		Start: t0, Flood: true,
	})
	g.push(event{ts: t0 + dCT, flow: idx, kind: KindSYN, seq: g.rng.Uint32(),
		src: src, dst: dst, srcPort: sport, dstPort: 80, flags: pkt.TCPSyn})
}

// scheduleMidstream pushes data traffic for a flow whose handshake predates
// the capture — the handshake engine can never measure it. With
// EmitTCPTimestamps, the segments carry timestamp options and the server
// acknowledges through the tap, so the continuous-RTT tracker CAN measure
// it; the truth records the oracle values like a normal flow's data phase.
func (g *Generator) scheduleMidstream(t0 int64) {
	cfg := &g.cfg
	c := g.pickCity(cfg.ClientCities)
	s := g.pickCity(cfg.ServerCities)
	src, sport := g.nextClientAddr(c, false)
	dst := cfg.World.Addr(s, 0, uint32(g.rng.Intn(1<<16)))
	dCT := g.legDelay(c, cfg.TapCity)
	dTS := g.legDelay(cfg.TapCity, s)
	idx := int32(len(g.truths))
	truth := FlowTruth{
		Key:        core.FlowKey{Client: src, Server: dst, ClientPort: sport, ServerPort: 443},
		ClientCity: c, ServerCity: s, Start: t0, Midstream: true,
		TSDataRTT: 2 * dTS, TSClean: cfg.EmitTCPTimestamps,
	}
	useTS := cfg.EmitTCPTimestamps
	ms := func(t int64) uint32 { return uint32(t / 1e6) }
	var cliVals, srvVals []uint32
	noteVal := func(vals *[]uint32, v uint32) {
		for _, x := range *vals {
			if x == v {
				truth.TSClean = false
				return
			}
		}
		*vals = append(*vals, v)
	}
	spacing := cfg.DataSpacing
	if spacing <= 0 {
		spacing = 10e6
	}
	seq := g.rng.Uint32()
	ack := g.rng.Uint32()
	t := t0
	for i := 0; i < 3; i++ {
		t += int64(g.rng.ExpFloat64() * float64(spacing))
		dataVal := ms(t - dCT)
		if useTS {
			noteVal(&cliVals, dataVal)
			truth.TSDataEchoes++
		}
		g.push(event{ts: t, flow: idx, kind: KindMidstream, seq: seq, ack: ack,
			src: src, dst: dst, srcPort: sport, dstPort: 443,
			payloadLen: 512, flags: pkt.TCPAck,
			hasTS: useTS, tsval: dataVal, tsecr: dataVal - 1000})
		seq += 512
		if useTS {
			srvVal := ms(t + dTS)
			noteVal(&srvVals, srvVal)
			g.push(event{ts: t + 2*dTS, flow: idx, kind: KindMidstream,
				seq: ack, ack: seq,
				src: dst, dst: src, srcPort: 443, dstPort: sport,
				flags: pkt.TCPAck, hasTS: true, tsval: srvVal, tsecr: dataVal})
		}
	}
	g.truths = append(g.truths, truth)
}

func (g *Generator) push(e event) { heap.Push(&g.evq, e) }

// advanceSchedulers materializes all scheduled arrivals (flows, floods,
// surges, noise) up to and including time limit.
func (g *Generator) advanceSchedulers(limit int64) {
	cfg := &g.cfg
	for !g.arrivalsDone && g.nextArrival <= limit {
		t0 := g.nextArrival
		if t0 >= cfg.Duration {
			g.arrivalsDone = true
			break
		}
		c := g.pickCity(cfg.ClientCities)
		s := g.pickCity(cfg.ServerCities)
		g.scheduleFlow(t0, c, s, false)
		g.nextArrival = t0 + g.expDelay(cfg.FlowRate)
	}
	for i := range cfg.Floods {
		f := cfg.Floods[i]
		for g.floodNext[i] <= limit && g.floodNext[i] < f.Start+f.Duration {
			g.scheduleFloodSYN(g.floodNext[i], f)
			g.floodNext[i] += g.expDelay(f.Rate)
		}
	}
	for i := range cfg.Surges {
		s := cfg.Surges[i]
		for g.surgeNext[i] <= limit && g.surgeNext[i] < s.Start+s.Duration {
			g.scheduleFlow(g.surgeNext[i], s.SrcCity, s.DstCity, true)
			g.surgeNext[i] += g.expDelay(s.Rate)
		}
	}
	for g.midNext <= limit && g.midNext < cfg.Duration {
		g.scheduleMidstream(g.midNext)
		g.midNext += g.expDelay(cfg.MidstreamRate)
	}
	for g.udpNext <= limit && g.udpNext < cfg.Duration {
		c := g.pickCity(nil)
		s := g.pickCity(nil)
		src := cfg.World.Addr(c, g.rng.Intn(4), g.rng.Uint32())
		dst := cfg.World.Addr(s, g.rng.Intn(4), g.rng.Uint32())
		g.push(event{ts: g.udpNext, flow: -1, kind: KindUDP,
			src: src, dst: dst,
			srcPort: uint16(1024 + g.rng.Intn(60000)), dstPort: 53,
			payloadLen: uint16(40 + g.rng.Intn(400))})
		g.udpNext += g.expDelay(cfg.UDPRate)
	}
}

var udpPayload = make([]byte, 1500)
var tcpPayload = make([]byte, 1500)

// Next produces the next packet in timestamp order into p, returning false
// when the stream is exhausted. p.Frame references an internal buffer valid
// until the following call.
//
// Ordering invariant: a scheduler arrival at time t only creates events with
// ts > t (every packet needs at least one leg delay to reach the tap), so
// once every scheduler's next arrival is later than the heap head, the head
// is globally next.
func (g *Generator) Next(p *Packet) bool {
	for {
		next := g.earliestSchedulerTime()
		if len(g.evq) == 0 {
			if next == math.MaxInt64 {
				return false
			}
			g.advanceSchedulers(next)
			continue
		}
		if next <= g.evq[0].ts {
			g.advanceSchedulers(g.evq[0].ts)
			continue
		}
		e := heap.Pop(&g.evq).(event)
		g.emit(&e, p)
		return true
	}
}

// earliestSchedulerTime returns the next pending scheduler arrival, or
// math.MaxInt64 when every scheduler is exhausted.
func (g *Generator) earliestSchedulerTime() int64 {
	t := int64(math.MaxInt64)
	if !g.arrivalsDone && g.nextArrival < t {
		t = g.nextArrival
	}
	for i, f := range g.cfg.Floods {
		if g.floodNext[i] < f.Start+f.Duration && g.floodNext[i] < t {
			t = g.floodNext[i]
		}
	}
	for i, s := range g.cfg.Surges {
		if g.surgeNext[i] < s.Start+s.Duration && g.surgeNext[i] < t {
			t = g.surgeNext[i]
		}
	}
	if g.midNext < g.cfg.Duration && g.midNext < t {
		t = g.midNext
	}
	if g.udpNext < g.cfg.Duration && g.udpNext < t {
		t = g.udpNext
	}
	return t
}

// emit serializes event e into p using the scratch buffer.
func (g *Generator) emit(e *event, p *Packet) {
	p.TS = e.ts
	p.Kind = e.kind
	p.Src, p.Dst = e.src, e.dst
	p.SrcPort, p.DstPort = e.srcPort, e.dstPort
	if e.kind == KindUDP {
		n, err := pkt.BuildUDPFrame(g.buf[:], g.macA, g.macB,
			e.src, e.dst, e.srcPort, e.dstPort, udpPayload[:e.payloadLen])
		if err != nil {
			panic("gen: udp frame build failed: " + err.Error())
		}
		p.Frame = g.buf[:n]
		return
	}
	spec := pkt.TCPFrameSpec{
		SrcMAC: g.macA, DstMAC: g.macB,
		Src: e.src, Dst: e.dst,
		SrcPort: e.srcPort, DstPort: e.dstPort,
		Seq: e.seq, Ack: e.ack, Flags: e.flags, Window: 65535,
	}
	if e.hasTS {
		spec.Options = pkt.PutTimestampOption(g.optBuf[:], e.tsval, e.tsecr)
	}
	if e.payloadLen > 0 {
		spec.Payload = tcpPayload[:e.payloadLen]
	}
	n, err := pkt.BuildTCPFrame(g.buf[:], &spec)
	if err != nil {
		panic("gen: tcp frame build failed: " + err.Error())
	}
	p.Frame = g.buf[:n]
}

// Truths returns the oracle records for all flows scheduled so far. Only
// complete after the stream is exhausted.
func (g *Generator) Truths() []FlowTruth { return g.truths }
