package gen

import (
	"testing"

	"ruru/internal/nic"
)

// drainPort empties every queue, freeing buffers, and returns the count.
func drainPort(t *testing.T, port *nic.Port) int {
	t.Helper()
	bufs := make([]*nic.Buf, 256)
	total := 0
	for q := 0; q < port.NumQueues(); q++ {
		for {
			n, err := port.RxBurst(q, bufs)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				bufs[i].Free()
			}
			total += n
		}
	}
	return total
}

func TestRunToPortLossless(t *testing.T) {
	// The retry drive must deliver the exact generated stream on a
	// default (Drop-policy) port when the queues have room.
	g, err := New(Config{Seed: 7, World: world(t), FlowRate: 300, Duration: 2e9})
	if err != nil {
		t.Fatal(err)
	}
	pool := nic.NewMempool(16384, 2048)
	port, err := nic.NewPort(nic.PortConfig{Queues: 2, QueueDepth: 8192, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	injected := g.RunToPort(port, false)
	if injected == 0 {
		t.Fatal("nothing injected")
	}
	st := port.Stats()
	if st.Ipackets != uint64(injected) || st.Imissed != 0 {
		t.Fatalf("stats: %+v (injected %d)", st, injected)
	}
	if got := drainPort(t, port); got != injected {
		t.Fatalf("drained %d, injected %d", got, injected)
	}
}

func TestRunToPortBurstMatchesPerPacket(t *testing.T) {
	// The burst drive must deliver the same stream as the per-packet
	// drive: same packet count, same per-queue totals, zero loss on a
	// Block-policy port.
	mk := func() *Generator {
		g, err := New(Config{Seed: 11, World: world(t), FlowRate: 300, Duration: 2e9})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	newPort := func(policy nic.OverflowPolicy) *nic.Port {
		pool := nic.NewMempool(16384, 2048)
		port, err := nic.NewPort(nic.PortConfig{
			Queues: 2, QueueDepth: 8192, Pool: pool, Policy: policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		return port
	}

	pp := newPort(nic.Drop)
	ppInjected := mk().RunToPort(pp, false)

	bp := newPort(nic.Block)
	bpInjected := mk().RunToPortBurst(bp, 32)

	if ppInjected != bpInjected {
		t.Fatalf("per-packet injected %d, burst injected %d", ppInjected, bpInjected)
	}
	if st := bp.Stats(); st.Imissed != 0 || st.Ipackets != uint64(bpInjected) {
		t.Fatalf("burst drive lost frames: %+v", st)
	}
	for q := 0; q < 2; q++ {
		a, b := pp.QueueStats(q), bp.QueueStats(q)
		if a.Ipackets != b.Ipackets || a.Ibytes != b.Ibytes {
			t.Fatalf("queue %d diverged: per-packet %+v vs burst %+v", q, a, b)
		}
	}
	if got := drainPort(t, bp); got != bpInjected {
		t.Fatalf("drained %d, injected %d", got, bpInjected)
	}
}
