package gen

import (
	"io"
	"runtime"

	"ruru/internal/nic"
	"ruru/internal/pcap"
)

// RunToPort streams the whole generated trace into port via the fast
// InjectTuple path (the generator already knows each packet's 4-tuple).
// Returns the number of packets injected. If pace is true, injection
// fires and forgets so queue overflow reflects worker speed rather than
// arrival order; with pace false (default for correctness tests) the
// drive is lossless: on a Block-policy port each packet is a single
// blocking call, and on a Drop-policy port transient rejections
// (queue full, pool empty) are retried until accepted.
func (g *Generator) RunToPort(port *nic.Port, pace bool) int {
	var p Packet
	n := 0
	retryable := port.Policy() == nic.Drop
	for g.Next(&p) {
		if pace {
			port.InjectTuple(p.Frame, p.TS, p.Src, p.Dst, p.SrcPort, p.DstPort)
			n++
			continue
		}
		for {
			st := port.InjectTuple(p.Frame, p.TS, p.Src, p.Dst, p.SrcPort, p.DstPort)
			// On a Block port a rejection means the port already waited
			// and gave up (Stop or BlockTimeout) — retrying would spin
			// forever and defeat both mechanisms. Only Drop-policy
			// rejections are transient backpressure worth retrying.
			if !st.Retryable() || !retryable {
				break
			}
			runtime.Gosched() // let workers catch up
		}
		n++
	}
	return n
}

// RunToPortBurst streams the generated trace into port in bursts of the
// given size (default 64) via InjectBurst, amortizing ring synchronization
// across each batch. Combine with a Block-policy port for a lossless
// drive; on a Drop port frames that don't fit are dropped and counted, as
// on a real NIC. Returns the number of packets accepted by the port.
func (g *Generator) RunToPortBurst(port *nic.Port, burst int) int {
	s := nic.NewBurstStager(port, burst)
	var p Packet
	for g.Next(&p) {
		s.Add(p.Frame, p.TS)
	}
	s.Flush()
	return s.Accepted()
}

// WritePcap streams the whole generated trace into a pcap file.
// Returns the number of packets written.
func (g *Generator) WritePcap(w io.Writer) (int, error) {
	pw, err := pcap.NewWriter(w, 0)
	if err != nil {
		return 0, err
	}
	var p Packet
	n := 0
	for g.Next(&p) {
		if err := pw.WritePacket(p.TS, p.Frame); err != nil {
			return n, err
		}
		n++
	}
	return n, pw.Flush()
}

// TracePacket is one pre-rendered packet with its own frame copy, used by
// benchmarks that need to replay the identical stream repeatedly without
// paying generation cost inside the timed region.
type TracePacket struct {
	TS               int64
	Frame            []byte
	Src, Dst         [16]byte // netip bytes to keep the struct flat
	SrcPort, DstPort uint16
	Is6              bool
	Kind             PacketKind
}

// Render materializes the full stream into memory.
func (g *Generator) Render() []TracePacket {
	var out []TracePacket
	var p Packet
	for g.Next(&p) {
		frame := make([]byte, len(p.Frame))
		copy(frame, p.Frame)
		tp := TracePacket{
			TS: p.TS, Frame: frame,
			SrcPort: p.SrcPort, DstPort: p.DstPort,
			Is6:  p.Src.Is6() && !p.Src.Is4In6(),
			Kind: p.Kind,
		}
		tp.Src = p.Src.As16()
		tp.Dst = p.Dst.As16()
		out = append(out, tp)
	}
	return out
}
