package gen

import (
	"io"

	"ruru/internal/nic"
	"ruru/internal/pcap"
)

// RunToPort streams the whole generated trace into port via the fast
// InjectTuple path (the generator already knows each packet's 4-tuple).
// Returns the number of packets injected. If pace is true, injection
// busy-waits so queue overflow reflects worker speed rather than arrival
// order; with pace false (default for correctness tests) injection retries
// until the port accepts each packet, so nothing is lost.
func (g *Generator) RunToPort(port *nic.Port, pace bool) int {
	var p Packet
	n := 0
	for g.Next(&p) {
		if pace {
			port.InjectTuple(p.Frame, p.TS, p.Src, p.Dst, p.SrcPort, p.DstPort)
			n++
			continue
		}
		for {
			before := port.Stats()
			port.InjectTuple(p.Frame, p.TS, p.Src, p.Dst, p.SrcPort, p.DstPort)
			after := port.Stats()
			if after.Ipackets > before.Ipackets || after.Ierrors > before.Ierrors {
				break
			}
		}
		n++
	}
	return n
}

// WritePcap streams the whole generated trace into a pcap file.
// Returns the number of packets written.
func (g *Generator) WritePcap(w io.Writer) (int, error) {
	pw, err := pcap.NewWriter(w, 0)
	if err != nil {
		return 0, err
	}
	var p Packet
	n := 0
	for g.Next(&p) {
		if err := pw.WritePacket(p.TS, p.Frame); err != nil {
			return n, err
		}
		n++
	}
	return n, pw.Flush()
}

// TracePacket is one pre-rendered packet with its own frame copy, used by
// benchmarks that need to replay the identical stream repeatedly without
// paying generation cost inside the timed region.
type TracePacket struct {
	TS               int64
	Frame            []byte
	Src, Dst         [16]byte // netip bytes to keep the struct flat
	SrcPort, DstPort uint16
	Is6              bool
	Kind             PacketKind
}

// Render materializes the full stream into memory.
func (g *Generator) Render() []TracePacket {
	var out []TracePacket
	var p Packet
	for g.Next(&p) {
		frame := make([]byte, len(p.Frame))
		copy(frame, p.Frame)
		tp := TracePacket{
			TS: p.TS, Frame: frame,
			SrcPort: p.SrcPort, DstPort: p.DstPort,
			Is6:  p.Src.Is6() && !p.Src.Is4In6(),
			Kind: p.Kind,
		}
		tp.Src = p.Src.As16()
		tp.Dst = p.Dst.As16()
		out = append(out, tp)
	}
	return out
}
