package gen

import (
	"bytes"
	"testing"

	"ruru/internal/core"
	"ruru/internal/geo"
	"ruru/internal/pcap"
	"ruru/internal/pkt"
	"ruru/internal/rss"
)

func world(t testing.TB) *geo.World {
	t.Helper()
	w, err := geo.NewWorld(geo.WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil world accepted")
	}
	if _, err := New(Config{World: world(t), FlowRate: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestStreamIsTimeOrdered(t *testing.T) {
	g, err := New(Config{
		Seed: 1, World: world(t), FlowRate: 500, Duration: 2e9,
		DataSegments: 2, UDPRate: 100, MidstreamRate: 20,
		SYNLoss: 0.05, SYNACKLoss: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	last := int64(-1)
	n := 0
	for g.Next(&p) {
		if p.TS < last {
			t.Fatalf("packet %d out of order: %d after %d", n, p.TS, last)
		}
		last = p.TS
		n++
	}
	if n < 2000 {
		t.Fatalf("only %d packets generated", n)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		Seed: 42, World: world(t), FlowRate: 200, Duration: 1e9,
		DataSegments: 1, UDPRate: 50, SYNLoss: 0.1,
	}
	render := func() ([]TracePacket, []FlowTruth) {
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr := g.Render()
		return tr, g.Truths()
	}
	a, ta := render()
	b, tb := render()
	if len(a) != len(b) || len(ta) != len(tb) {
		t.Fatalf("stream lengths differ: %d/%d pkts, %d/%d truths", len(a), len(b), len(ta), len(tb))
	}
	for i := range a {
		if a[i].TS != b[i].TS || !bytes.Equal(a[i].Frame, b[i].Frame) {
			t.Fatalf("packet %d differs between runs", i)
		}
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("truth %d differs between runs", i)
		}
	}
}

func TestFramesAreParseable(t *testing.T) {
	g, err := New(Config{
		Seed: 3, World: world(t), FlowRate: 300, Duration: 1e9,
		DataSegments: 2, UDPRate: 100, MidstreamRate: 10, IPv6Fraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	var parser pkt.Parser
	parser.VerifyChecksums = true
	var p Packet
	var s pkt.Summary
	kinds := map[PacketKind]int{}
	for g.Next(&p) {
		if err := parser.Parse(p.Frame, &s); err != nil {
			t.Fatalf("unparseable %v frame: %v", p.Kind, err)
		}
		kinds[p.Kind]++
		switch p.Kind {
		case KindUDP:
			if s.Decoded&pkt.LayerUDP == 0 {
				t.Fatal("UDP frame did not decode as UDP")
			}
		default:
			if !s.IsTCP() {
				t.Fatalf("%v frame did not decode as TCP", p.Kind)
			}
			if s.Src() != p.Src || s.TCP.SrcPort != p.SrcPort {
				t.Fatal("frame tuple mismatch with Packet metadata")
			}
		}
	}
	for _, k := range []PacketKind{KindSYN, KindSYNACK, KindACK, KindData, KindUDP, KindMidstream} {
		if kinds[k] == 0 {
			t.Errorf("no packets of kind %d generated", k)
		}
	}
}

// replayThroughTable runs the full stream through one handshake table
// (single queue) and returns measurements keyed by flow.
func replayThroughTable(t testing.TB, g *Generator) map[core.FlowKey]core.Measurement {
	t.Helper()
	tbl := core.NewHandshakeTable(core.TableConfig{Capacity: 1 << 18, Timeout: 300e9})
	h := rss.NewSymmetric()
	var parser pkt.Parser
	var p Packet
	var s pkt.Summary
	var m core.Measurement
	out := map[core.FlowKey]core.Measurement{}
	for g.Next(&p) {
		if err := parser.Parse(p.Frame, &s); err != nil || !s.IsTCP() {
			continue
		}
		hash := h.HashTuple(s.Src(), s.Dst(), s.TCP.SrcPort, s.TCP.DstPort)
		if tbl.Process(&s, p.TS, hash, &m) {
			out[m.Flow] = m
		}
	}
	return out
}

func TestGroundTruthMatchesEngineExactly(t *testing.T) {
	// E1 in miniature: every completing flow's measured internal/external
	// must equal the oracle EXACTLY (the generator holds per-flow leg
	// delays fixed).
	g, err := New(Config{
		Seed: 7, World: world(t), FlowRate: 400, Duration: 3e9,
		DataSegments: 1, UDPRate: 200, MidstreamRate: 20,
		SYNLoss: 0.05, SYNACKLoss: 0.05, IPv6Fraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := replayThroughTable(t, g)
	truths := g.Truths()
	completing := 0
	for i := range truths {
		tr := &truths[i]
		if !tr.Completes {
			continue
		}
		completing++
		m, ok := got[tr.Key]
		if !ok {
			t.Fatalf("flow %v never measured", tr.Key)
		}
		if m.External != tr.ExpectedExternal {
			t.Fatalf("flow %v: external %d != expected %d", tr.Key, m.External, tr.ExpectedExternal)
		}
		if m.Internal != tr.ExpectedInternal {
			t.Fatalf("flow %v: internal %d != expected %d", tr.Key, m.Internal, tr.ExpectedInternal)
		}
		if m.Total != tr.ExpectedInternal+tr.ExpectedExternal {
			t.Fatalf("flow %v: total mismatch", tr.Key)
		}
		if int(m.SYNRetrans) != tr.SYNRetrans {
			t.Fatalf("flow %v: retrans %d != %d", tr.Key, m.SYNRetrans, tr.SYNRetrans)
		}
	}
	if completing < 500 {
		t.Fatalf("only %d completing flows", completing)
	}
	// Flood and midstream flows must NOT appear in measurements.
	for i := range truths {
		tr := &truths[i]
		if tr.Completes {
			continue
		}
		if _, ok := got[tr.Key]; ok {
			t.Fatalf("non-completing flow %v was measured", tr.Key)
		}
	}
}

func TestLossFreeTruthEqualsPathRTT(t *testing.T) {
	// With no loss and no server delay, expected == path exactly.
	g, err := New(Config{Seed: 9, World: world(t), FlowRate: 200, Duration: 2e9})
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	for g.Next(&p) {
	}
	for _, tr := range g.Truths() {
		if !tr.Completes {
			continue
		}
		if tr.ExpectedExternal != tr.PathExternal || tr.ExpectedInternal != tr.PathInternal {
			t.Fatalf("loss-free flow: expected %d/%d != path %d/%d",
				tr.ExpectedExternal, tr.ExpectedInternal, tr.PathExternal, tr.PathInternal)
		}
		if tr.SYNRetrans != 0 || tr.SYNACKRetrans != 0 {
			t.Fatal("retransmission without loss")
		}
	}
}

func TestFirewallWindowInflatesExternal(t *testing.T) {
	// Flows starting inside the window get +4000ms external; others not.
	const extra = 4000e6
	g, err := New(Config{
		Seed: 11, World: world(t), FlowRate: 500, Duration: 3e9,
		FirewallWindows: []Window{{Every: 1e9, Offset: 0, Length: 100e6, Extra: extra}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	for g.Next(&p) {
	}
	anomalous, normal := 0, 0
	for _, tr := range g.Truths() {
		if tr.Anomalous {
			anomalous++
			if tr.ExpectedExternal < extra {
				t.Fatalf("anomalous flow external %d < %d", tr.ExpectedExternal, int64(extra))
			}
		} else {
			normal++
			if tr.ExpectedExternal > 1e9 {
				t.Fatalf("normal flow external suspiciously high: %d", tr.ExpectedExternal)
			}
		}
	}
	if anomalous == 0 || normal == 0 {
		t.Fatalf("anomalous=%d normal=%d: window not exercised", anomalous, normal)
	}
	// Window covers 10% of each second: anomalous share should be near
	// 10%, give or take Poisson noise.
	frac := float64(anomalous) / float64(anomalous+normal)
	if frac < 0.03 || frac > 0.25 {
		t.Fatalf("anomalous fraction %.3f implausible for a 10%% window", frac)
	}
}

func TestSYNFloodFlowsNeverComplete(t *testing.T) {
	g, err := New(Config{
		Seed: 13, World: world(t), FlowRate: 50, Duration: 2e9,
		Floods: []FloodSpec{{Start: 500e6, Duration: 1e9, Rate: 1000, SrcCity: 4, DstCity: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	syns := 0
	for g.Next(&p) {
		if p.Kind == KindSYN {
			syns++
		}
	}
	floods := 0
	for _, tr := range g.Truths() {
		if tr.Flood {
			floods++
			if tr.Completes {
				t.Fatal("flood flow marked completing")
			}
		}
	}
	if floods < 500 {
		t.Fatalf("only %d flood flows for a 1000/s flood over 1s", floods)
	}
	if syns < floods {
		t.Fatalf("syns=%d < floods=%d", syns, floods)
	}
}

func TestSurgeAddsFlowsBetweenPair(t *testing.T) {
	g, err := New(Config{
		Seed: 17, World: world(t), FlowRate: 50, Duration: 2e9,
		Surges: []SurgeSpec{{Start: 0, Duration: 1e9, Rate: 500, SrcCity: 2, DstCity: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	for g.Next(&p) {
	}
	pair := 0
	for _, tr := range g.Truths() {
		if tr.ClientCity == 2 && tr.ServerCity == 3 && tr.Completes {
			pair++
		}
	}
	if pair < 300 {
		t.Fatalf("only %d surge flows", pair)
	}
}

func TestWritePcapRoundTrip(t *testing.T) {
	g, err := New(Config{Seed: 19, World: world(t), FlowRate: 100, Duration: 1e9, UDPRate: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := g.WritePcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var parser pkt.Parser
	var rp pcap.Packet
	var s pkt.Summary
	count := 0
	last := int64(-1)
	for {
		if err := r.ReadPacket(&rp); err != nil {
			break
		}
		if rp.Timestamp < last {
			t.Fatal("pcap out of order")
		}
		last = rp.Timestamp
		if err := parser.Parse(rp.Data, &s); err != nil {
			t.Fatalf("packet %d unparseable: %v", count, err)
		}
		count++
	}
	if count != n {
		t.Fatalf("wrote %d, read %d", n, count)
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Every: 100, Offset: 10, Length: 5}
	cases := []struct {
		t    int64
		want bool
	}{
		{0, false}, {9, false}, {10, true}, {14, true}, {15, false},
		{109, false}, {110, true}, {114, true}, {115, false},
	}
	for _, c := range cases {
		if w.contains(c.t) != c.want {
			t.Errorf("contains(%d) = %v", c.t, !c.want)
		}
	}
	one := Window{Offset: 50, Length: 10}
	if one.contains(45) || !one.contains(55) || one.contains(65) {
		t.Fatal("single window")
	}
	if (Window{Every: 10, Length: 0}).contains(0) {
		t.Fatal("zero-length window matched")
	}
}

func TestUniqueFlowKeys(t *testing.T) {
	// Harnesses index truths by FlowKey; generated keys must be unique.
	g, err := New(Config{Seed: 23, World: world(t), FlowRate: 2000, Duration: 2e9})
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	for g.Next(&p) {
	}
	seen := map[core.FlowKey]bool{}
	for _, tr := range g.Truths() {
		if seen[tr.Key] {
			t.Fatalf("duplicate flow key %v", tr.Key)
		}
		seen[tr.Key] = true
	}
}

func TestTCPTimestampEmission(t *testing.T) {
	g, err := New(Config{
		Seed: 29, World: world(t), FlowRate: 200, Duration: 2e9,
		DataSegments: 2, EmitTCPTimestamps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var parser pkt.Parser
	var p Packet
	var s pkt.Summary
	withTS := 0
	tcpPkts := 0
	for g.Next(&p) {
		if err := parser.Parse(p.Frame, &s); err != nil || !s.IsTCP() {
			continue
		}
		tcpPkts++
		if _, _, ok := s.TCP.TimestampOption(); ok {
			withTS++
		}
	}
	if tcpPkts == 0 || withTS != tcpPkts {
		t.Fatalf("%d/%d TCP packets carry timestamps", withTS, tcpPkts)
	}
	// Echo semantics: for each flow the SYN-ACK's TSecr must equal the
	// SYN's TSval. Verify on a fresh identical run.
	g2, _ := New(Config{
		Seed: 29, World: world(t), FlowRate: 200, Duration: 2e9,
		DataSegments: 2, EmitTCPTimestamps: true,
	})
	synVals := map[core.FlowKey]uint32{}
	checked := 0
	for g2.Next(&p) {
		if err := parser.Parse(p.Frame, &s); err != nil || !s.IsTCP() {
			continue
		}
		tsval, tsecr, _ := s.TCP.TimestampOption()
		if s.TCP.IsSYN() {
			key := core.FlowKey{Client: s.Src(), Server: s.Dst(),
				ClientPort: s.TCP.SrcPort, ServerPort: s.TCP.DstPort}
			synVals[key] = tsval
		} else if s.TCP.IsSYNACK() {
			key := core.FlowKey{Client: s.Dst(), Server: s.Src(),
				ClientPort: s.TCP.DstPort, ServerPort: s.TCP.SrcPort}
			if v, ok := synVals[key]; ok {
				if tsecr != v {
					t.Fatalf("SYN-ACK TSecr %d != SYN TSval %d", tsecr, v)
				}
				checked++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d handshakes checked", checked)
	}
	// Without the flag, no timestamps.
	g3, _ := New(Config{Seed: 29, World: world(t), FlowRate: 100, Duration: 1e9})
	for g3.Next(&p) {
		if err := parser.Parse(p.Frame, &s); err != nil || !s.IsTCP() {
			continue
		}
		if _, _, ok := s.TCP.TimestampOption(); ok {
			t.Fatal("timestamp emitted without EmitTCPTimestamps")
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	w := world(b)
	g, err := New(Config{Seed: 1, World: w, FlowRate: 10000, Duration: 1e15, DataSegments: 2, UDPRate: 1000})
	if err != nil {
		b.Fatal(err)
	}
	var p Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !g.Next(&p) {
			b.Fatal("stream exhausted")
		}
	}
}
