package fed

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/mq"
	"ruru/internal/tsdb"
)

func TestProtocolCodecs(t *testing.T) {
	id, err := parseHello(appendHello(nil, "probe-7"))
	if err != nil || id != "probe-7" {
		t.Fatalf("hello round trip: %q %v", id, err)
	}
	for _, bad := range [][]byte{nil, {0}, {2, 1, 'x'}, {1}, {1, 0}, {1, 5, 'a'}} {
		if _, err := parseHello(bad); err == nil {
			t.Fatalf("parseHello(%v) accepted", bad)
		}
	}
	seq, err := parseSeq(appendSeq(nil, 42))
	if err != nil || seq != 42 {
		t.Fatalf("seq round trip: %d %v", seq, err)
	}
	if _, err := parseSeq([]byte{1, 2, 3}); err == nil {
		t.Fatal("short seq accepted")
	}

	rec := []byte("hello record")
	frame := appendBatch(nil, 9, rec)
	gotSeq, gotRec, err := parseBatch(frame)
	if err != nil || gotSeq != 9 || string(gotRec) != string(rec) {
		t.Fatalf("batch round trip: %d %q %v", gotSeq, gotRec, err)
	}
	frame[len(frame)-1] ^= 0xff
	if _, _, err := parseBatch(frame); err != ErrBadCRC {
		t.Fatalf("corrupt batch: got %v, want ErrBadCRC", err)
	}
	if _, _, err := parseBatch(frame[:11]); err != ErrBadFrame {
		t.Fatalf("short batch: got %v, want ErrBadFrame", err)
	}
}

func spoolPoints(n, base int) []tsdb.Point {
	pts := make([]tsdb.Point, n)
	for i := range pts {
		pts[i] = tsdb.Point{
			Name:   "latency",
			Tags:   []tsdb.Tag{{Key: "src_city", Value: fmt.Sprintf("C%d", i%3)}},
			Fields: []tsdb.Field{{Key: "total_ms", Value: float64(base + i)}},
			Time:   int64(base+i) * 1e6,
		}
	}
	return pts
}

func TestSpoolRecoversPending(t *testing.T) {
	dir := t.TempDir()
	sp, pending, err := openSpool(dir, 256) // tiny segments force rotation
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh spool has %d pending", len(pending))
	}
	var enc tsdb.RecordEncoder
	payloads := map[uint64][]byte{}
	for seq := uint64(1); seq <= 20; seq++ {
		payload := enc.AppendRecord(nil, spoolPoints(4, int(seq)*10))
		if err := sp.append(seq, payload); err != nil {
			t.Fatal(err)
		}
		sp.nextSeq = seq + 1
		payloads[seq] = payload
	}
	sp.ack(12)
	if err := sp.close(); err != nil {
		t.Fatal(err)
	}

	sp2, pending, err := openSpool(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.close()
	if sp2.nextSeq != 21 {
		t.Fatalf("nextSeq = %d, want 21", sp2.nextSeq)
	}
	want := uint64(13)
	for _, r := range pending {
		if r.seq != want {
			t.Fatalf("pending seq %d, want %d", r.seq, want)
		}
		if string(r.payload) != string(payloads[r.seq]) {
			t.Fatalf("payload for seq %d corrupted", r.seq)
		}
		want++
	}
	if want != 21 {
		t.Fatalf("recovered up to seq %d, want 21", want-1)
	}
}

func TestSpoolToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	sp, _, err := openSpool(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := sp.append(seq, []byte("record-payload")); err != nil {
			t.Fatal(err)
		}
	}
	seg := sp.f.Name()
	sp.close()
	// Crash mid-append: cut the final record's bytes.
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	// Remove ACKED so every surviving record is pending.
	os.Remove(filepath.Join(dir, ackedName))

	sp2, pending, err := openSpool(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.close()
	if len(pending) != 2 || pending[0].seq != 1 || pending[1].seq != 2 {
		t.Fatalf("pending after tear = %+v, want seqs 1,2", pending)
	}
	if sp2.tornTail == 0 {
		t.Fatal("torn tail not counted")
	}
}

// mkEnriched builds a deterministic enriched measurement.
func mkEnriched(i int) analytics.Enriched {
	return analytics.Enriched{
		Time:       int64(i+1) * 1e6,
		InternalNs: 10e6,
		ExternalNs: 20e6,
		TotalNs:    30e6 + int64(i)*1e3,
		Src: analytics.Endpoint{City: fmt.Sprintf("City%d", i%4), CountryCode: "NZ",
			Country: "New Zealand", ASN: 4500},
		Dst: analytics.Endpoint{City: "Los Angeles", CountryCode: "US",
			Country: "United States", ASN: 100},
	}
}

func publishEnriched(bus *mq.Bus, i int) {
	e := mkEnriched(i)
	bus.Publish(mq.Message{Topic: analytics.TopicEnriched,
		Payload: analytics.MarshalEnriched(nil, &e)})
}

// countPoints queries the aggregator DB for the total applied count, and
// per-probe counts via the probe tag.
func countPoints(t *testing.T, db *tsdb.DB, probe string) int {
	t.Helper()
	q := tsdb.Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: 1 << 60,
		Aggs: []tsdb.AggKind{tsdb.AggCount},
	}
	if probe != "" {
		q.Where = []tsdb.Tag{{Key: "probe", Value: probe}}
	}
	res, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, sr := range res {
		for _, b := range sr.Buckets {
			n += b.Count
		}
	}
	return n
}

func waitFor(t *testing.T, d time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFederationEndToEnd(t *testing.T) {
	db := tsdb.Open(tsdb.Options{})
	defer db.Close()
	agg, err := NewAggregator(AggConfig{Listen: "127.0.0.1:0"}, db)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	const nProbes, perProbe = 2, 500
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var probes []*Probe
	for pi := 0; pi < nProbes; pi++ {
		bus := mq.NewBus()
		defer bus.Close()
		pr, err := NewProbe(ProbeConfig{
			Addr: agg.Addr().String(), ID: fmt.Sprintf("probe-%d", pi),
			SpoolDir: t.TempDir(), BatchSize: 32, FlushEvery: 10 * time.Millisecond,
		}, bus)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, pr)
		go pr.Run(ctx)
		go func() {
			for i := 0; i < perProbe; i++ {
				publishEnriched(bus, i)
			}
		}()
	}

	waitFor(t, 10*time.Second, "all points applied", func() bool {
		written, _ := db.WriteStats()
		return written == uint64(nProbes*perProbe)
	})
	// Mid-stream disconnect: drop every connection, publish more, verify
	// replay delivers everything exactly once.
	agg.DropConnections()
	for pi := 0; pi < nProbes; pi++ {
		pr := probes[pi]
		go func() {
			for i := perProbe; i < 2*perProbe; i++ {
				e := mkEnriched(i)
				pr.feedForTest(&e)
			}
		}()
	}
	waitFor(t, 10*time.Second, "post-disconnect points applied", func() bool {
		written, _ := db.WriteStats()
		return written == uint64(2*nProbes*perProbe)
	})

	// Exactly once: total and per-probe counts match what was sent.
	if got := countPoints(t, db, ""); got != 2*nProbes*perProbe {
		t.Fatalf("total points = %d, want %d", got, 2*nProbes*perProbe)
	}
	for pi := 0; pi < nProbes; pi++ {
		if got := countPoints(t, db, fmt.Sprintf("probe-%d", pi)); got != 2*perProbe {
			t.Fatalf("probe-%d points = %d, want %d", pi, got, 2*perProbe)
		}
	}
	// Grouping by the probe tag splits the fleet.
	res, err := db.Execute(tsdb.Query{
		Measurement: "latency", Field: "total_ms",
		Start: 0, End: 1 << 60, GroupBy: "probe",
		Aggs: []tsdb.AggKind{tsdb.AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != nProbes {
		t.Fatalf("group_by=probe groups = %d, want %d", len(res), nProbes)
	}

	st := agg.Stats()
	if len(st.Probes) != nProbes {
		t.Fatalf("agg stats probes = %d", len(st.Probes))
	}
	for _, ps := range st.Probes {
		if !ps.Connected {
			t.Fatalf("probe %s not connected after recovery", ps.ID)
		}
	}
	cancel()
	for _, pr := range probes {
		pr.Close()
	}
}

// feedForTest injects one measurement through the probe's batch path
// without a bus (test-only shortcut used after the sub's bus is drained).
func (p *Probe) feedForTest(e *analytics.Enriched) {
	var enc tsdb.RecordEncoder
	pts := []tsdb.Point{analytics.LatencyPoint(e)}
	p.flush(context.Background(), &enc, pts)
}

func TestProbeCrashRecoveryResendsOnlyUnacked(t *testing.T) {
	db := tsdb.Open(tsdb.Options{})
	defer db.Close()
	agg, err := NewAggregator(AggConfig{Listen: "127.0.0.1:0"}, db)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	spoolDir := t.TempDir()
	bus := mq.NewBus()
	defer bus.Close()
	pr, err := NewProbe(ProbeConfig{
		Addr: agg.Addr().String(), ID: "p0", SpoolDir: spoolDir,
		BatchSize: 16, FlushEvery: 5 * time.Millisecond,
	}, bus)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { pr.Run(ctx); close(runDone) }()

	const first = 300
	for i := 0; i < first; i++ {
		publishEnriched(bus, i)
	}
	waitFor(t, 10*time.Second, "first wave applied", func() bool {
		written, _ := db.WriteStats()
		return written == first
	})

	// kill -9: cancel without Close — the spool is left as the crash
	// left it (stale ACKED and all), goroutines reaped.
	cancel()
	<-runDone

	// Restart from the same spool with the same identity.
	bus2 := mq.NewBus()
	defer bus2.Close()
	pr2, err := NewProbe(ProbeConfig{
		Addr: agg.Addr().String(), ID: "p0", SpoolDir: spoolDir,
		BatchSize: 16, FlushEvery: 5 * time.Millisecond,
	}, bus2)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go pr2.Run(ctx2)

	const second = 200
	for i := first; i < first+second; i++ {
		publishEnriched(bus2, i)
	}
	waitFor(t, 10*time.Second, "second wave applied exactly once", func() bool {
		written, _ := db.WriteStats()
		return written == first+second
	})
	// Give any stray resends a moment to land, then re-assert no dups.
	time.Sleep(50 * time.Millisecond)
	if written, _ := db.WriteStats(); written != first+second {
		t.Fatalf("written = %d, want %d (duplicate applies)", written, first+second)
	}
	if got := countPoints(t, db, "p0"); got != first+second {
		t.Fatalf("queryable points = %d, want %d", got, first+second)
	}
	cancel2()
	pr2.Close()
}

// TestDuplicateBatchDeduped drives the aggregator over a raw connection
// and pins the sequence-dedup contract directly: a batch frame replayed
// verbatim (same seq) must be acked but not applied a second time, and a
// stale seq must never regress the cumulative ack.
func TestDuplicateBatchDeduped(t *testing.T) {
	db := tsdb.Open(tsdb.Options{})
	defer db.Close()
	agg, err := NewAggregator(AggConfig{Listen: "127.0.0.1:0"}, db)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	conn, err := net.Dial("tcp", agg.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := mq.WriteFrame(conn, mq.Message{Topic: topicHello,
		Payload: appendHello(nil, "dup-probe")}); err != nil {
		t.Fatal(err)
	}
	fr := mq.NewFrameReader(conn)
	readAck := func() uint64 {
		t.Helper()
		msg, err := fr.Read()
		if err != nil || msg.Topic != topicAck {
			t.Fatalf("ack read: %v %q", err, msg.Topic)
		}
		seq, err := parseSeq(msg.Payload)
		if err != nil {
			t.Fatal(err)
		}
		return seq
	}
	if got := readAck(); got != 0 {
		t.Fatalf("hello ack = %d, want 0", got)
	}

	var enc tsdb.RecordEncoder
	send := func(seq uint64, n int) {
		t.Helper()
		rec := enc.AppendRecord(nil, spoolPoints(n, int(seq)*100))
		if err := mq.WriteFrame(conn, mq.Message{Topic: topicBatch,
			Payload: appendBatch(nil, seq, rec)}); err != nil {
			t.Fatal(err)
		}
	}
	send(1, 10)
	if got := readAck(); got != 1 {
		t.Fatalf("ack = %d, want 1", got)
	}
	send(2, 5)
	if got := readAck(); got != 2 {
		t.Fatalf("ack = %d, want 2", got)
	}
	// Exact replay of seq 2 and a stale seq 1: acked at the watermark,
	// applied zero times.
	send(2, 5)
	if got := readAck(); got != 2 {
		t.Fatalf("dup ack = %d, want 2", got)
	}
	send(1, 10)
	if got := readAck(); got != 2 {
		t.Fatalf("stale ack = %d, want 2 (must not regress)", got)
	}

	if written, _ := db.WriteStats(); written != 15 {
		t.Fatalf("db has %d points, want 15 (duplicates applied)", written)
	}
	st := agg.Stats()
	if st.DupBatches != 2 || st.Batches != 2 || st.Points != 15 {
		t.Fatalf("agg stats: %+v", st)
	}
	if len(st.Probes) != 1 || st.Probes[0].LastSeq != 2 || st.Probes[0].DupBatches != 2 {
		t.Fatalf("probe stats: %+v", st.Probes)
	}
}

// TestFlushSplitsOversizedBatch pins the wire-bound guard: a batch whose
// record would exceed maxRecordBytes must split into several records (the
// aggregator rejects oversized frames on every resend — a livelock — and
// the spool scanner discards them as torn after a restart).
func TestFlushSplitsOversizedBatch(t *testing.T) {
	bus := mq.NewBus()
	defer bus.Close()
	pr, err := NewProbe(ProbeConfig{
		Addr: "127.0.0.1:1", ID: "big", SpoolDir: t.TempDir(),
	}, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()

	big := make([]byte, 3<<20)
	for i := range big {
		big[i] = 'a' + byte(i%26)
	}
	pts := make([]tsdb.Point, 4)
	for i := range pts {
		pts[i] = tsdb.Point{
			Name:   string(big) + fmt.Sprint(i), // distinct shapes: no delta wins
			Fields: []tsdb.Field{{Key: "v", Value: float64(i)}},
			Time:   int64(i),
		}
	}
	var enc tsdb.RecordEncoder
	pr.flush(context.Background(), &enc, pts)

	pr.mu.Lock()
	defer pr.mu.Unlock()
	if len(pr.pending) < 2 {
		t.Fatalf("oversized batch spooled as %d record(s), want a split", len(pr.pending))
	}
	total := 0
	for _, rec := range pr.pending {
		if len(rec.payload) > maxRecordBytes {
			t.Fatalf("record of %d bytes exceeds the %d wire bound", len(rec.payload), maxRecordBytes)
		}
		if err := tsdb.DecodeRecord(rec.payload, func(*tsdb.Point) error { total++; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if total != len(pts) {
		t.Fatalf("split records decode to %d points, want %d", total, len(pts))
	}
}

// TestFieldlessPointSkippedNotLivelocked pins the aggregator against the
// one deterministic WriteBatch failure reachable from the wire: a
// CRC-valid record containing a fieldless point must not wedge the stream
// (ErrNoFields fails a whole batch) — the point is dropped and counted,
// the rest of the batch applies, and the batch is acked.
func TestFieldlessPointSkippedNotLivelocked(t *testing.T) {
	db := tsdb.Open(tsdb.Options{})
	defer db.Close()
	agg, err := NewAggregator(AggConfig{Listen: "127.0.0.1:0"}, db)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	conn, err := net.Dial("tcp", agg.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := mq.WriteFrame(conn, mq.Message{Topic: topicHello,
		Payload: appendHello(nil, "hostile")}); err != nil {
		t.Fatal(err)
	}
	fr := mq.NewFrameReader(conn)
	if msg, err := fr.Read(); err != nil || msg.Topic != topicAck {
		t.Fatalf("hello ack: %v %q", err, msg.Topic)
	}

	var enc tsdb.RecordEncoder
	rec := enc.AppendRecord(nil, []tsdb.Point{
		{Name: "latency", Fields: []tsdb.Field{{Key: "total_ms", Value: 1}}, Time: 1},
		{Name: "empty", Time: 2}, // no fields: would fail WriteBatch outright
		{Name: "latency", Fields: []tsdb.Field{{Key: "total_ms", Value: 2}}, Time: 3},
	})
	if err := mq.WriteFrame(conn, mq.Message{Topic: topicBatch,
		Payload: appendBatch(nil, 1, rec)}); err != nil {
		t.Fatal(err)
	}
	msg, err := fr.Read()
	if err != nil || msg.Topic != topicAck {
		t.Fatalf("batch not acked: %v %q (stream wedged)", err, msg.Topic)
	}
	if seq, _ := parseSeq(msg.Payload); seq != 1 {
		t.Fatalf("ack = %d, want 1", seq)
	}
	if written, _ := db.WriteStats(); written != 2 {
		t.Fatalf("db has %d points, want 2", written)
	}
	st := agg.Stats()
	if st.DecodeErrors != 1 || st.WriteErrors != 0 || st.Points != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestReusedIdentityWipedSpoolAdoptsWatermark pins the connect-time seq
// adoption: a probe whose spool was wiped under a reused identity must
// start numbering ABOVE the aggregator's remembered watermark, or its new
// measurements would be silently discarded as presumed resends.
func TestReusedIdentityWipedSpoolAdoptsWatermark(t *testing.T) {
	db := tsdb.Open(tsdb.Options{})
	defer db.Close()
	agg, err := NewAggregator(AggConfig{Listen: "127.0.0.1:0"}, db)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	// First incarnation delivers some batches, then shuts down cleanly.
	bus := mq.NewBus()
	pr, err := NewProbe(ProbeConfig{
		Addr: agg.Addr().String(), ID: "reused", SpoolDir: t.TempDir(),
		BatchSize: 8, FlushEvery: 2 * time.Millisecond,
	}, bus)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { pr.Run(ctx); close(done) }()
	const first = 64
	for i := 0; i < first; i++ {
		publishEnriched(bus, i)
	}
	waitFor(t, 10*time.Second, "first incarnation applied", func() bool {
		written, _ := db.WriteStats()
		return written == first
	})
	cancel()
	<-done
	pr.Close()
	bus.Close()

	// Second incarnation: same ID, brand-new spool directory.
	bus2 := mq.NewBus()
	defer bus2.Close()
	pr2, err := NewProbe(ProbeConfig{
		Addr: agg.Addr().String(), ID: "reused", SpoolDir: t.TempDir(),
		BatchSize: 8, FlushEvery: 2 * time.Millisecond,
	}, bus2)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done2 := make(chan struct{})
	go func() { pr2.Run(ctx2); close(done2) }()
	// Wait for the hello to adopt the watermark before publishing, so no
	// batch is collected in the pre-connect window the doc warns about.
	waitFor(t, 10*time.Second, "reconnect", func() bool { return pr2.Stats().Connected })
	const second = 32
	for i := first; i < first+second; i++ {
		publishEnriched(bus2, i)
	}
	waitFor(t, 10*time.Second, "second incarnation applied (not dedup-dropped)", func() bool {
		written, _ := db.WriteStats()
		return written == first+second
	})
	if st := agg.Stats(); st.Probes[0].LastSeq <= uint64(first/8) {
		t.Fatalf("watermark not adopted: lastseq %d", st.Probes[0].LastSeq)
	}
	cancel2()
	<-done2
	pr2.Close()
}

// TestSpoolPoisonedSegmentRotates pins the failed-append discipline: after
// a write error the segment tail may hold a partial frame, so the next
// append must rotate to a fresh segment — otherwise the crash scanner,
// which stops at the first bad frame, would silently discard every record
// appended after the tear.
func TestSpoolPoisonedSegmentRotates(t *testing.T) {
	dir := t.TempDir()
	sp, _, err := openSpool(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.append(1, []byte("first-record")); err != nil {
		t.Fatal(err)
	}
	// Simulate a failed append that left a partial frame on disk: garbage
	// bytes at the tail plus the poisoned flag (append sets it whenever
	// the Write errors).
	if _, err := sp.f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	sp.poisoned = true
	firstSeg := sp.f.Name()
	if err := sp.append(2, []byte("second-record")); err != nil {
		t.Fatal(err)
	}
	if sp.f.Name() == firstSeg {
		t.Fatal("append after poisoning stayed on the torn segment")
	}
	sp.close()
	os.Remove(filepath.Join(dir, ackedName))

	_, pending, err := openSpool(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 || pending[0].seq != 1 || pending[1].seq != 2 {
		t.Fatalf("recovered %+v, want seqs 1 and 2 (record behind the tear lost?)", pending)
	}
	if string(pending[1].payload) != "second-record" {
		t.Fatalf("seq 2 payload corrupted: %q", pending[1].payload)
	}
}

// TestProbeIdentityCap pins the MaxProbes bound: the protocol is
// unauthenticated, so distinct-identity registration must be capped or
// any peer could grow the registry and series cardinality without bound.
func TestProbeIdentityCap(t *testing.T) {
	db := tsdb.Open(tsdb.Options{})
	defer db.Close()
	agg, err := NewAggregator(AggConfig{Listen: "127.0.0.1:0", MaxProbes: 2}, db)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	hello := func(id string) (acked bool) {
		conn, err := net.Dial("tcp", agg.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := mq.WriteFrame(conn, mq.Message{Topic: topicHello,
			Payload: appendHello(nil, id)}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, err = mq.NewFrameReader(conn).Read()
		return err == nil
	}
	if !hello("a") || !hello("b") {
		t.Fatal("probes under the cap rejected")
	}
	if hello("c") {
		t.Fatal("third distinct identity accepted beyond MaxProbes=2")
	}
	if !hello("a") {
		t.Fatal("known identity rejected at the cap")
	}
	st := agg.Stats()
	if st.Rejected != 1 || len(st.Probes) != 2 {
		t.Fatalf("stats: rejected %d probes %d", st.Rejected, len(st.Probes))
	}
	// Oversized identity: rejected as a bad frame, never registered.
	if hello(string(make([]byte, maxProbeIDBytes+1))) {
		t.Fatal("oversized identity accepted")
	}
	if st := agg.Stats(); st.BadFrames == 0 {
		t.Fatal("oversized identity not counted as a bad frame")
	}
}
