package fed

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ruru/internal/analytics"
	"ruru/internal/mq"
	"ruru/internal/tsdb"
)

// ProbeConfig configures the remote-write client. Addr, ID and SpoolDir
// are required; zero values elsewhere get production-shaped defaults.
type ProbeConfig struct {
	// Addr is the aggregator's TCP address (host:port).
	Addr string
	// ID is this probe's stable identity; the aggregator tags every series
	// with probe=<ID> and keys its dedup state on it. Restarts must reuse
	// the same ID and SpoolDir TOGETHER: an ID reused over a wiped spool
	// is detected at connect (sequence numbers jump past the aggregator's
	// watermark), but batches collected before that first connect may be
	// discarded by the dedup as presumed resends.
	ID string
	// SpoolDir holds the unacked-batch spool (created if absent).
	SpoolDir string
	// BatchSize is the number of measurements per remote-write batch
	// (default 256); FlushEvery bounds how long a partial batch waits
	// (default 200ms).
	BatchSize  int
	FlushEvery time.Duration
	// MaxUnacked bounds in-flight batches (default 512) and MaxSpoolBytes
	// the on-disk spool (default 128 MiB). At either bound the collector
	// stops draining the bus and measurements shed at the subscription
	// HWM, counted in ProbeStats.Dropped.
	MaxUnacked    int
	MaxSpoolBytes int64
	// MaxSegmentBytes caps one spool segment file (default 4 MiB).
	MaxSegmentBytes int64
	// HWM is the enriched-topic subscription high-water mark
	// (default mq.DefaultHWM).
	HWM int
	// DialBackoffMax caps the reconnect backoff ladder (default 2s; the
	// ladder starts at 50ms and doubles).
	DialBackoffMax time.Duration
}

// Probe streams the pipeline's enriched measurements to an aggregator:
// batch → spool (sequence number assigned) → send → ack → forget. Create
// with NewProbe, drive with Run, release with Close.
type Probe struct {
	cfg ProbeConfig
	sub *mq.Subscription

	mu      sync.Mutex
	cond    *sync.Cond
	sp      *spool
	pending []spoolRec // unacked batches, ascending seq
	next    int        // index into pending of the next batch to send
	conn    net.Conn   // live connection, nil while down
	closed  bool

	connected    atomic.Bool
	ackedSeq     atomic.Uint64
	connects     atomic.Uint64
	disconnects  atomic.Uint64
	batchesSent  atomic.Uint64
	resent       atomic.Uint64
	pointsOut    atomic.Uint64
	decodeErrors atomic.Uint64
	spoolErrors  atomic.Uint64
	closeDropped atomic.Uint64
}

// ProbeStats is a snapshot of the remote-write client's counters — the
// backpressure ledger of the federation edge, surfaced in ruru.Stats.
type ProbeStats struct {
	Enabled   bool   `json:",omitempty"`
	ID        string `json:",omitempty"`
	Addr      string `json:",omitempty"`
	Connected bool
	// Connects/Disconnects count session transitions (a healthy probe has
	// Connects == Disconnects+1).
	Connects, Disconnects uint64
	// BatchesSent counts batch frames written (including resends);
	// BatchesResent the subset sent more than once; PointsOut the
	// measurements handed to the spool.
	BatchesSent, BatchesResent, PointsOut uint64
	// LastSeq is the newest assigned sequence number, AckedSeq the highest
	// the aggregator has acknowledged; Unacked = batches between them
	// still owed, SpoolBytes the on-disk footprint backing them.
	LastSeq, AckedSeq uint64
	Unacked           int
	SpoolBytes        int64
	// Dropped counts measurements shed at the subscription HWM while the
	// probe was at its unacked/spool bound or simply behind — the
	// backpressure loss class. DecodeErrors counts undecodable bus
	// messages; SpoolErrors counts spool append failures (batch still sent,
	// crash-safety degraded); SpoolTornTails counts torn records tolerated
	// when the spool was last opened; CloseDropped counts measurements
	// discarded because Close sealed the spool before the collector's
	// final flush (run Close after Run has returned to keep it zero).
	Dropped, DecodeErrors, SpoolErrors, SpoolTornTails, CloseDropped uint64
}

// NewProbe opens (or recovers) the spool and subscribes to the bus's
// enriched topic. Unacked batches from a previous run are loaded and will
// be resent once Run connects.
func NewProbe(cfg ProbeConfig, bus *mq.Bus) (*Probe, error) {
	if cfg.Addr == "" || cfg.ID == "" || cfg.SpoolDir == "" {
		return nil, errors.New("fed: ProbeConfig requires Addr, ID and SpoolDir")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 200 * time.Millisecond
	}
	if cfg.MaxUnacked <= 0 {
		cfg.MaxUnacked = 512
	}
	if cfg.MaxSpoolBytes <= 0 {
		cfg.MaxSpoolBytes = 128 << 20
	}
	if cfg.DialBackoffMax <= 0 {
		cfg.DialBackoffMax = 2 * time.Second
	}
	sp, pending, err := openSpool(cfg.SpoolDir, cfg.MaxSegmentBytes)
	if err != nil {
		return nil, err
	}
	sub, err := bus.Subscribe(analytics.TopicEnriched, cfg.HWM)
	if err != nil {
		sp.close()
		return nil, err
	}
	p := &Probe{cfg: cfg, sub: sub, sp: sp, pending: pending}
	p.cond = sync.NewCond(&p.mu)
	if sp.acked > 0 {
		p.ackedSeq.Store(sp.acked)
	}
	return p, nil
}

// Run operates the collector (bus → batches → spool) and the sender
// (spool → aggregator, with reconnect and replay) until ctx is cancelled.
func (p *Probe) Run(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.collect(ctx)
	}()
	go func() {
		defer wg.Done()
		p.sendLoop(ctx)
	}()
	wg.Wait()
	return ctx.Err()
}

// collect drains the enriched subscription into batches. A full batch (or
// the flush ticker on a partial one) is encoded, spooled and queued.
func (p *Probe) collect(ctx context.Context) {
	var enc tsdb.RecordEncoder
	var e analytics.Enriched
	pts := make([]tsdb.Point, 0, p.cfg.BatchSize)
	t := time.NewTicker(p.cfg.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			// Clean shutdown spools the partial batch so nothing measured
			// is lost; it is sent after the next start.
			p.flush(ctx, &enc, pts)
			return
		case <-t.C:
			if len(pts) > 0 {
				p.flush(ctx, &enc, pts)
				pts = pts[:0]
			}
		case msg, ok := <-p.sub.C():
			if !ok {
				p.flush(ctx, &enc, pts)
				return
			}
			if err := analytics.UnmarshalEnriched(msg.Payload, &e); err != nil {
				p.decodeErrors.Add(1)
				continue
			}
			pts = append(pts, analytics.LatencyPoint(&e))
			if len(pts) >= p.cfg.BatchSize {
				p.flush(ctx, &enc, pts)
				pts = pts[:0]
			}
		}
	}
}

// flush seals one batch: assign the next sequence number, append to the
// spool, queue for sending. Blocks (holding back the collector — the
// backpressure point) while the probe is at its unacked or spool bound.
// A batch whose record would exceed the wire frame bound splits in half
// (mirroring the WAL writer's logBatch): an oversized record would be
// rejected by the aggregator's parseBatch on every resend — a delivery
// livelock — and discarded as a torn tail by the spool scanner after a
// restart.
func (p *Probe) flush(ctx context.Context, enc *tsdb.RecordEncoder, pts []tsdb.Point) {
	if len(pts) == 0 {
		return
	}
	payload := enc.AppendRecord(make([]byte, 0, 32*len(pts)), pts)
	if len(payload) > maxRecordBytes && len(pts) > 1 {
		p.flush(ctx, enc, pts[:len(pts)/2])
		p.flush(ctx, enc, pts[len(pts)/2:])
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.closed && ctx.Err() == nil &&
		(len(p.pending) >= p.cfg.MaxUnacked || p.sp.bytes > p.cfg.MaxSpoolBytes) {
		p.cond.Wait()
	}
	if p.closed {
		// Close already sealed the spool (it won the race against the
		// collector's shutdown flush): these measurements are lost — like
		// any crash loses in-flight work — but never silently.
		p.closeDropped.Add(uint64(len(pts)))
		return
	}
	seq := p.sp.nextSeq
	if err := p.sp.append(seq, payload); err != nil {
		// Spool write failed (disk trouble): the batch still rides the
		// in-memory queue — delivery continues, crash-safety is degraded
		// and the counter says so.
		p.spoolErrors.Add(1)
	}
	p.sp.nextSeq = seq + 1
	p.pending = append(p.pending, spoolRec{seq: seq, payload: payload})
	p.pointsOut.Add(uint64(len(pts)))
	p.cond.Broadcast()
}

// sendLoop dials, replays unacked batches, then streams new ones,
// reconnecting with exponential backoff forever. The backoff resets only
// after a session actually reaches the streaming phase: a peer that
// accepts and then immediately fails the handshake (a mispointed
// -remote-write, a health-checked port) must not turn the loop into a
// zero-delay connection churn.
func (p *Probe) sendLoop(ctx context.Context) {
	backoff := 50 * time.Millisecond
	for ctx.Err() == nil && !p.isClosed() {
		established := false
		if conn, err := net.DialTimeout("tcp", p.cfg.Addr, 5*time.Second); err == nil {
			before := p.connects.Load()
			if p.session(ctx, conn) {
				return
			}
			established = p.connects.Load() != before
		}
		if established {
			backoff = 50 * time.Millisecond
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > p.cfg.DialBackoffMax {
			backoff = p.cfg.DialBackoffMax
		}
	}
}

// session runs one connection: hello, ack-driven replay cursor reset, then
// the send stream. Returns true when the probe is shutting down.
func (p *Probe) session(ctx context.Context, conn net.Conn) (done bool) {
	defer conn.Close()
	if err := mq.WriteFrame(conn, mq.Message{Topic: topicHello,
		Payload: appendHello(nil, p.cfg.ID)}); err != nil {
		return false
	}
	// Acks are 8-byte frames read byte-at-a-time for the header: buffer
	// the read side so each is not several raw read(2) calls. Single
	// reader per conn (the hello ack here, then the ack goroutine).
	fr := mq.NewFrameReader(bufio.NewReaderSize(conn, 4<<10))
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := fr.Read()
	conn.SetReadDeadline(time.Time{})
	if err != nil || msg.Topic != topicAck {
		return false
	}
	remote, err := parseSeq(msg.Payload)
	if err != nil {
		return false
	}
	// The aggregator's applied watermark prunes anything it already has
	// (heals a stale spool ACKED) and the send cursor rewinds to replay
	// the rest.
	p.ackTo(remote)
	p.mu.Lock()
	if p.closed || ctx.Err() != nil {
		p.mu.Unlock()
		return true
	}
	if remote+1 > p.sp.nextSeq {
		// The aggregator remembers this identity at a HIGHER sequence than
		// the spool knows (the spool was wiped or replaced under a reused
		// probe id): future batches must start above the watermark, or the
		// dedup would silently discard brand-new measurements as stale
		// resends.
		p.sp.nextSeq = remote + 1
	}
	p.conn = conn
	p.next = 0
	p.mu.Unlock()
	p.connected.Store(true)
	p.connects.Add(1)

	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			msg, err := fr.Read()
			if err != nil {
				break
			}
			if msg.Topic == topicAck {
				if seq, err := parseSeq(msg.Payload); err == nil {
					p.ackTo(seq)
				}
			}
		}
		// The read side died (peer hung up or severed): the stream may be
		// idle-parked in cond.Wait with everything sent and some of it
		// unacked, and no new batch may ever arrive to surface the write
		// error — so tear the session down from here: invalidate the
		// connection and wake the stream so the send loop reconnects and
		// replays the unacked tail.
		conn.Close()
		p.mu.Lock()
		if p.conn == conn {
			p.conn = nil
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}()

	p.stream(ctx, conn)

	conn.Close()
	<-ackDone
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
	}
	done = p.closed || ctx.Err() != nil
	p.mu.Unlock()
	p.connected.Store(false)
	p.disconnects.Add(1)
	return done
}

// stream writes pending batches in order until the connection fails or the
// probe stops. Frames are buffered and flushed when the queue drains.
func (p *Probe) stream(ctx context.Context, conn net.Conn) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	var frame []byte
	// idle reports "nothing to send and no reason to stop" — the FULL wait
	// predicate. It must be re-checked in whole after the unlocked Flush
	// window below: a shutdown or teardown Broadcast landing during Flush
	// would otherwise be missed and cond.Wait would sleep forever.
	// Caller holds p.mu.
	idle := func() bool {
		return p.next >= len(p.pending) && !p.closed && ctx.Err() == nil && p.conn == conn
	}
	for {
		p.mu.Lock()
		for idle() {
			// Queue empty: push buffered frames out before sleeping.
			p.mu.Unlock()
			if err := bw.Flush(); err != nil {
				return
			}
			p.mu.Lock()
			if idle() {
				p.cond.Wait()
			}
		}
		if p.closed || ctx.Err() != nil || p.conn != conn {
			p.mu.Unlock()
			bw.Flush()
			return
		}
		rec := p.pending[p.next]
		wasSent := rec.sent
		p.pending[p.next].sent = true
		p.next++
		p.mu.Unlock()
		if wasSent {
			p.resent.Add(1)
		}
		frame = appendBatch(frame[:0], rec.seq, rec.payload)
		if err := mq.WriteFrame(bw, mq.Message{Topic: topicBatch, Payload: frame}); err != nil {
			return
		}
		p.batchesSent.Add(1)
	}
}

// ackTo processes a cumulative ack: forget pending batches ≤ seq, advance
// the spool watermark, wake backpressured flushes.
func (p *Probe) ackTo(seq uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for n < len(p.pending) && p.pending[n].seq <= seq {
		n++
	}
	if n > 0 {
		p.pending = p.pending[n:]
		if p.next -= n; p.next < 0 {
			p.next = 0
		}
	}
	if seq > p.sp.acked {
		p.sp.ack(seq)
	}
	if cur := p.ackedSeq.Load(); seq > cur {
		p.ackedSeq.Store(seq)
	}
	if n > 0 {
		p.cond.Broadcast()
	}
}

func (p *Probe) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Stats snapshots the probe counters.
func (p *Probe) Stats() ProbeStats {
	p.mu.Lock()
	unacked := len(p.pending)
	spoolBytes := p.sp.bytes
	lastSeq := p.sp.nextSeq - 1
	torn := p.sp.tornTail
	p.mu.Unlock()
	return ProbeStats{
		Enabled:        true,
		ID:             p.cfg.ID,
		Addr:           p.cfg.Addr,
		Connected:      p.connected.Load(),
		Connects:       p.connects.Load(),
		Disconnects:    p.disconnects.Load(),
		BatchesSent:    p.batchesSent.Load(),
		BatchesResent:  p.resent.Load(),
		PointsOut:      p.pointsOut.Load(),
		LastSeq:        lastSeq,
		AckedSeq:       p.ackedSeq.Load(),
		Unacked:        unacked,
		SpoolBytes:     spoolBytes,
		Dropped:        p.sub.Dropped(),
		DecodeErrors:   p.decodeErrors.Load(),
		SpoolErrors:    p.spoolErrors.Load(),
		SpoolTornTails: torn,
		CloseDropped:   p.closeDropped.Load(),
	}
}

// Close releases the subscription and the spool (persisting the ack
// watermark). Call after Run has returned.
func (p *Probe) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	if p.conn != nil {
		p.conn.Close()
	}
	err := p.sp.close()
	p.cond.Broadcast()
	p.mu.Unlock()
	p.sub.Close()
	return err
}
